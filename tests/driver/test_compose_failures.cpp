// Composition failure paths (paper §VI-A: "the modular analyses cannot
// guarantee every pair of independently-developed extensions composes"):
// the translator must reject bad compositions with structured diagnostics
// naming the offending extension, never crash or mis-parse.
#include <gtest/gtest.h>

#include "driver/translator.hpp"
#include "ext/extension.hpp"
#include "ext_matrix/matrix_ext.hpp"

namespace mmx::driver {
namespace {

/// An extension whose only production duplicates the host's
/// `Primary -> '(' Expr ')'` under a different label. Both reductions are
/// viable in every state that completes the parenthesised form, so the
/// composed grammar has a guaranteed reduce-reduce conflict.
class ParenCloneExtension : public ext::LanguageExtension {
public:
  std::string name() const override { return "parenclone"; }
  ext::GrammarFragment grammarFragment() const override {
    ext::GrammarFragment f;
    f.name = name();
    f.productions.push_back({"Primary", {"'('", "Expr", "')'"}, "clone_paren"});
    return f;
  }
  void installSemantics(cm::Sema&) const override {}
};

/// Grammatically empty extension used for duplicate-registration tests.
class EmptyExtension : public ext::LanguageExtension {
public:
  explicit EmptyExtension(std::string n) : name_(std::move(n)) {}
  std::string name() const override { return name_; }
  ext::GrammarFragment grammarFragment() const override {
    ext::GrammarFragment f;
    f.name = name_;
    return f;
  }
  void installSemantics(cm::Sema&) const override {}

private:
  std::string name_;
};

TEST(ComposeFailure, LalrConflictingExtensionIsRejected) {
  Translator t;
  t.addExtension(std::make_unique<ParenCloneExtension>());
  EXPECT_FALSE(t.compose());
  const auto& diags = t.composeDiagnostics();
  ASSERT_FALSE(diags.empty());
  bool sawConflict = false;
  for (const auto& d : diags) {
    EXPECT_EQ(d.severity, Severity::Error);
    if (d.message.find("not LALR(1)") != std::string::npos) sawConflict = true;
  }
  EXPECT_TRUE(sawConflict) << t.renderComposeDiagnostics();
}

TEST(ComposeFailure, DuplicateExtensionRegistrationIsRejected) {
  Translator t;
  t.addExtension(ext_matrix::matrixExtension());
  t.addExtension(ext_matrix::matrixExtension());
  EXPECT_FALSE(t.compose());
  const auto& diags = t.composeDiagnostics();
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].severity, Severity::Error);
  EXPECT_NE(diags[0].message.find("registered more than once"),
            std::string::npos);
  // The structured diagnostic names the offending extension.
  EXPECT_EQ(diags[0].extension, "matrix");
}

TEST(ComposeFailure, DuplicateNameAcrossDistinctExtensionsIsRejected) {
  Translator t;
  t.addExtension(std::make_unique<EmptyExtension>("twin"));
  t.addExtension(std::make_unique<EmptyExtension>("twin"));
  EXPECT_FALSE(t.compose());
  EXPECT_NE(t.renderComposeDiagnostics().find("'twin'"), std::string::npos);
}

TEST(ComposeFailure, TerminalClashNamesBothExtensions) {
  // Two extensions declaring the same terminal: the fragment-level clash
  // diagnostic carries the second fragment as its origin.
  class KwExtension : public ext::LanguageExtension {
  public:
    explicit KwExtension(std::string n) : name_(std::move(n)) {}
    std::string name() const override { return name_; }
    ext::GrammarFragment grammarFragment() const override {
      ext::GrammarFragment f;
      f.name = name_;
      f.terminals.push_back({"'gadget'", "gadget", true, 1, false});
      return f;
    }
    void installSemantics(cm::Sema&) const override {}

  private:
    std::string name_;
  };

  Translator t;
  t.addExtension(std::make_unique<KwExtension>("gizmoA"));
  t.addExtension(std::make_unique<KwExtension>("gizmoB"));
  EXPECT_FALSE(t.compose());
  bool sawClash = false;
  for (const auto& d : t.composeDiagnostics())
    if (d.message.find("'gadget'") != std::string::npos) {
      sawClash = true;
      EXPECT_EQ(d.extension, "gizmoB"); // stamped by the composing fragment
    }
  EXPECT_TRUE(sawClash) << t.renderComposeDiagnostics();
}

TEST(ComposeFailure, FailedComposeDoesNotPoisonAFreshTranslator) {
  {
    Translator bad;
    bad.addExtension(std::make_unique<ParenCloneExtension>());
    EXPECT_FALSE(bad.compose());
  }
  Translator good;
  good.addExtension(ext_matrix::matrixExtension());
  EXPECT_TRUE(good.compose()) << good.renderComposeDiagnostics();
}

} // namespace
} // namespace mmx::driver
