// CompilerInvocation: the declarative flag table behind mmc. Parsing,
// defaulting, error paths, and the generated help text.
#include "driver/invocation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mmx::driver {
namespace {

CompilerInvocation::ParseResult parse(CompilerInvocation& inv,
                                      std::vector<const char*> args) {
  args.insert(args.begin(), "mmc");
  return inv.parseArgv(static_cast<int>(args.size()), args.data());
}

TEST(CompilerInvocation, DefaultsMatchTranslateOptions) {
  CompilerInvocation inv;
  auto r = parse(inv, {"prog.xc"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(inv.inputPath, "prog.xc");
  EXPECT_TRUE(inv.opts.fusion);
  EXPECT_TRUE(inv.opts.sliceElimination);
  EXPECT_TRUE(inv.opts.autoParallel);
  EXPECT_TRUE(inv.opts.warnParallel);
  EXPECT_FALSE(inv.opts.strictParallel);
  EXPECT_EQ(inv.threads, 1u);
  EXPECT_FALSE(inv.emitIr);
  EXPECT_FALSE(inv.metricsRequested());
}

TEST(CompilerInvocation, AblationFlagsMapOntoOptions) {
  CompilerInvocation inv;
  auto r = parse(inv, {"p.xc", "--no-fusion", "--no-slice-elim",
                       "--no-parallel", "--strict-parallel", "-Wno-parallel"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(inv.opts.fusion);
  EXPECT_FALSE(inv.opts.sliceElimination);
  EXPECT_FALSE(inv.opts.autoParallel);
  EXPECT_FALSE(inv.opts.warnParallel);
  EXPECT_TRUE(inv.opts.strictParallel);
}

TEST(CompilerInvocation, ThreadsAndExecutorSelection) {
  CompilerInvocation inv;
  auto r = parse(inv, {"p.xc", "--threads", "4"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(inv.threads, 4u);
  EXPECT_EQ(inv.makeExecutor()->name(), "forkjoin");

  CompilerInvocation one;
  ASSERT_TRUE(parse(one, {"p.xc"}).ok);
  EXPECT_EQ(one.makeExecutor()->name(), "serial");

  CompilerInvocation naive;
  ASSERT_TRUE(parse(naive, {"p.xc", "--threads", "4", "--executor",
                            "naive"}).ok);
  EXPECT_EQ(naive.makeExecutor()->name(), "naive");
}

TEST(CompilerInvocation, ObservabilityFlags) {
  CompilerInvocation inv;
  auto r = parse(inv, {"p.xc", "--time-report", "--stats-json", "s.json",
                       "--trace-json", "t.json"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(inv.timeReport);
  EXPECT_EQ(inv.statsJsonPath, "s.json");
  EXPECT_EQ(inv.traceJsonPath, "t.json");
  EXPECT_TRUE(inv.metricsRequested());
}

TEST(CompilerInvocation, PerfCountersFlagImpliesMetrics) {
  // --perf-counters alone must light up the registry: its pmu.* rows land
  // there, and without metrics they would be sampled into the void.
  CompilerInvocation inv;
  EXPECT_FALSE(inv.perfCounters);
  auto r = parse(inv, {"p.xc", "--perf-counters"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(inv.perfCounters);
  EXPECT_TRUE(inv.metricsRequested());
}

TEST(CompilerInvocation, EqualsJoinedValuesParseLikeSeparateArgs) {
  CompilerInvocation inv;
  auto r = parse(inv, {"p.xc", "--stats-json=s.json", "--trace-json=t.json",
                       "--threads=8", "--bounds-checks=off"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(inv.statsJsonPath, "s.json");
  EXPECT_EQ(inv.traceJsonPath, "t.json");
  EXPECT_EQ(inv.threads, 8u);
  EXPECT_EQ(inv.opts.boundsChecks, ir::BoundsCheckMode::Off);

  // Joined values still validate...
  CompilerInvocation bad;
  EXPECT_FALSE(parse(bad, {"p.xc", "--threads=zero"}).ok);
  // ...valueless flags reject one...
  CompilerInvocation val;
  EXPECT_FALSE(parse(val, {"p.xc", "--time-report=yes"}).ok);
  // ...and a positional with '=' is not treated as a flag.
  CompilerInvocation pos;
  ASSERT_TRUE(parse(pos, {"a=b.xc"}).ok);
  EXPECT_EQ(pos.inputPath, "a=b.xc");
}

TEST(CompilerInvocation, InstrumentFlag) {
  CompilerInvocation inv;
  ASSERT_TRUE(parse(inv, {"p.xc"}).ok);
  EXPECT_EQ(inv.instrument, ir::InstrumentMode::Off);

  CompilerInvocation cnt;
  ASSERT_TRUE(parse(cnt, {"p.xc", "--instrument", "counters"}).ok);
  EXPECT_EQ(cnt.instrument, ir::InstrumentMode::Counters);

  CompilerInvocation trc;
  ASSERT_TRUE(parse(trc, {"p.xc", "--instrument=trace"}).ok);
  EXPECT_EQ(trc.instrument, ir::InstrumentMode::Trace);

  CompilerInvocation off;
  ASSERT_TRUE(parse(off, {"p.xc", "--instrument=off"}).ok);
  EXPECT_EQ(off.instrument, ir::InstrumentMode::Off);

  CompilerInvocation bad;
  EXPECT_FALSE(parse(bad, {"p.xc", "--instrument", "everything"}).ok);
}

TEST(CompilerInvocation, ErrorsOnUnknownFlagMissingValueExtraInput) {
  CompilerInvocation a;
  EXPECT_FALSE(parse(a, {"p.xc", "--frobnicate"}).ok);

  CompilerInvocation b;
  EXPECT_FALSE(parse(b, {"p.xc", "--threads"}).ok);

  CompilerInvocation c;
  EXPECT_FALSE(parse(c, {"p.xc", "q.xc"}).ok);

  CompilerInvocation d;
  EXPECT_FALSE(parse(d, {}).ok); // input required without --help

  CompilerInvocation e;
  EXPECT_FALSE(parse(e, {"p.xc", "--executor", "quantum"}).ok);

  CompilerInvocation f;
  EXPECT_FALSE(parse(f, {"p.xc", "--threads", "zero"}).ok);
}

TEST(CompilerInvocation, HelpWorksWithoutInput) {
  CompilerInvocation inv;
  auto r = parse(inv, {"--help"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(inv.showHelp);
}

TEST(CompilerInvocation, HelpTextListsEveryFlagOnce) {
  std::string help = CompilerInvocation::helpText();
  for (const char* flag :
       {"--emit-ir", "--emit-c", "--analyze", "--threads", "--executor",
        "--no-fusion", "--no-parallel", "--no-slice-elim", "--strict-parallel",
        "-Wparallel", "-Wno-parallel", "--time-report", "--stats-json",
        "--trace-json", "--instrument", "--backend", "--help"}) {
    size_t first = help.find(flag);
    EXPECT_NE(first, std::string::npos) << flag << " missing from help";
  }
}

TEST(CompilerInvocation, BackendFlagParsesBothArgvSpellings) {
  // ISSUE 7 bugfix: --backend must accept the =-joined and the
  // space-separated spelling alike.
  CompilerInvocation joined;
  auto r = parse(joined, {"p.xc", "--backend=sse"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(joined.backend, "sse");

  CompilerInvocation spaced;
  r = parse(spaced, {"p.xc", "--backend", "scalar"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(spaced.backend, "scalar");

  CompilerInvocation missing;
  r = parse(missing, {"p.xc", "--backend"});
  EXPECT_FALSE(r.ok);

  // Names are not validated at parse time (the driver renders a
  // structured diagnostic); any token is accepted into the field.
  CompilerInvocation unknown;
  r = parse(unknown, {"p.xc", "--backend=definitely-not-a-backend"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(unknown.backend, "definitely-not-a-backend");
}

TEST(CompilerInvocation, HelpListsRegisteredBackendNames) {
  std::string help = CompilerInvocation::helpText();
  for (const char* name : {"scalar", "sse", "avx", "avx2fma", "auto"})
    EXPECT_NE(help.find(name), std::string::npos)
        << name << " missing from --backend help";
}

TEST(CompilerInvocation, AllocFlagParsesBothArgvSpellings) {
  // ISSUE 9: --alloc selects the matrix allocator, mirroring --backend.
  CompilerInvocation joined;
  auto r = parse(joined, {"p.xc", "--alloc=arena"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(joined.alloc, "arena");

  CompilerInvocation spaced;
  r = parse(spaced, {"p.xc", "--alloc", "cache"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(spaced.alloc, "cache");

  CompilerInvocation dflt;
  ASSERT_TRUE(parse(dflt, {"p.xc"}).ok);
  EXPECT_EQ(dflt.alloc, "auto");

  CompilerInvocation missing;
  EXPECT_FALSE(parse(missing, {"p.xc", "--alloc"}).ok);

  // Like --backend, names validate in the driver (structured diagnostic
  // with the available list), not at argv-parse time.
  CompilerInvocation unknown;
  r = parse(unknown, {"p.xc", "--alloc=definitely-not-an-allocator"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(unknown.alloc, "definitely-not-an-allocator");
}

TEST(CompilerInvocation, HelpListsRegisteredAllocatorNames) {
  std::string help = CompilerInvocation::helpText();
  EXPECT_NE(help.find("--alloc"), std::string::npos);
  for (const char* name : {"system", "cache", "arena"})
    EXPECT_NE(help.find(name), std::string::npos)
        << name << " missing from --alloc help";
}

TEST(CompilerInvocation, RuntimeConfigCarriesAllocator) {
  CompilerInvocation inv;
  auto r = parse(inv, {"p.xc", "--alloc=cache"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(inv.runtimeConfig().alloc, "cache");

  CompilerInvocation dflt;
  ASSERT_TRUE(parse(dflt, {"p.xc"}).ok);
  EXPECT_EQ(dflt.runtimeConfig().alloc, "auto");
}

TEST(CompilerInvocation, RuntimeConfigCarriesBackendAndExecutor) {
  CompilerInvocation inv;
  auto r = parse(inv, {"p.xc", "--threads", "4", "--backend=scalar"});
  ASSERT_TRUE(r.ok) << r.error;
  rt::RuntimeConfig cfg = inv.runtimeConfig();
  EXPECT_EQ(cfg.executor, rt::ExecutorKind::ForkJoin);
  EXPECT_EQ(cfg.threads, 4u);
  EXPECT_EQ(cfg.backend, "scalar");

  CompilerInvocation dflt;
  ASSERT_TRUE(parse(dflt, {"p.xc"}).ok);
  rt::RuntimeConfig d = dflt.runtimeConfig();
  EXPECT_EQ(d.executor, rt::ExecutorKind::Serial);
  EXPECT_EQ(d.backend, "auto");
}

} // namespace
} // namespace mmx::driver
