// Translator pipeline behaviour: composition guards, option plumbing,
// extension selection (the §II "pick extensions like libraries" story),
// and error paths.
#include "driver/translator.hpp"

#include <gtest/gtest.h>

#include "ext_matrix/matrix_ext.hpp"
#include "ext_refcount/refcount_ext.hpp"
#include "ext_transform/transform_ext.hpp"
#include "ext_tuple/tuple_ext.hpp"
#include "interp/interp.hpp"

namespace mmx::driver {
namespace {

TEST(Translator, HostOnlyProgramsWork) {
  Translator t;
  ASSERT_TRUE(t.compose()) << t.renderComposeDiagnostics();
  auto res = t.translate("p.xc",
                         "int main() { printInt(6 * 7); return 0; }");
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  rt::SerialExecutor ex;
  interp::Machine vm(*res.module, ex);
  EXPECT_EQ(vm.runMain(), 0);
  EXPECT_EQ(vm.output(), "42\n");
}

TEST(Translator, MatrixSyntaxUnavailableWithoutTheExtension) {
  // Extensions are opt-in: without ext_matrix, `Matrix` is just an
  // identifier and the program fails to parse as a declaration.
  Translator t;
  ASSERT_TRUE(t.compose());
  auto res = t.translate(
      "p.xc", "int main() { Matrix float <1> v = init(Matrix float <1>, 2); "
              "return 0; }");
  EXPECT_FALSE(res.ok);
}

TEST(Translator, TransformWithoutMatrixFailsToCompose) {
  // The transform extension bridges into the matrix extension's WithTail;
  // composing it alone must be rejected, not crash.
  Translator t;
  t.addExtension(ext_transform::transformExtension());
  EXPECT_FALSE(t.compose());
  EXPECT_NE(t.renderComposeDiagnostics().find("WithTail"), std::string::npos);
}

TEST(Translator, ExtensionOrderIrrelevantForSemantics) {
  auto run = [](bool matrixFirst) {
    Translator t;
    if (matrixFirst) {
      t.addExtension(ext_matrix::matrixExtension());
      t.addExtension(ext_refcount::refcountExtension());
    } else {
      t.addExtension(ext_refcount::refcountExtension());
      t.addExtension(ext_matrix::matrixExtension());
    }
    EXPECT_TRUE(t.compose()) << t.renderComposeDiagnostics();
    auto res = t.translate("p.xc", R"(
int main() {
  refptr float p = rcalloc(float, 3);
  p[1] = 2.5;
  Matrix float <1> v = init(Matrix float <1>, 2);
  v[0] = p[1] * 2.0;
  printFloat(v[0]);
  return 0;
})");
    EXPECT_TRUE(res.ok) << res.renderDiagnostics();
    rt::SerialExecutor ex;
    interp::Machine vm(*res.module, ex);
    vm.runMain();
    return vm.output();
  };
  EXPECT_EQ(run(true), "5\n");
  EXPECT_EQ(run(false), "5\n");
}

TEST(Translator, AltTupleExtensionComposesAndRuns) {
  Translator t;
  t.addExtension(ext_tuple::tupleAltExtension());
  ASSERT_TRUE(t.compose()) << t.renderComposeDiagnostics();
  auto res = t.translate("p.xc", R"(
(| int, int |) two() { return (| 3, 4 |); }
int main() {
  int a = 0;
  int b = 0;
  (a, b) = two();
  printInt(a * 10 + b);
  return 0;
})");
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  rt::SerialExecutor ex;
  interp::Machine vm(*res.module, ex);
  vm.runMain();
  EXPECT_EQ(vm.output(), "34\n");
}

TEST(Translator, TranslateBeforeComposeIsAnError) {
  Translator t;
  auto res = t.translate("p.xc", "int main() { return 0; }");
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.renderDiagnostics().find("not composed"), std::string::npos);
}

TEST(Translator, ParseErrorsCarryLocations) {
  Translator t;
  ASSERT_TRUE(t.compose());
  auto res = t.translate("bad.xc", "int main() { int x = ; return 0; }");
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.renderDiagnostics().find("bad.xc:1:"), std::string::npos)
      << res.renderDiagnostics();
}

TEST(Translator, MultipleTranslationsAreIndependent) {
  Translator t;
  t.addExtension(ext_matrix::matrixExtension());
  ASSERT_TRUE(t.compose());
  // An erroneous program must not poison later translations.
  EXPECT_FALSE(t.translate("a.xc", "int main() { return nope; }").ok);
  auto res = t.translate("b.xc", "int main() { return 0; }");
  EXPECT_TRUE(res.ok) << res.renderDiagnostics();
  // Same function names across programs are fine (fresh Sema each time).
  auto res2 = t.translate("c.xc", "int f() { return 1; } "
                                  "int main() { return f(); }");
  EXPECT_TRUE(res2.ok) << res2.renderDiagnostics();
}

TEST(Translator, OptionsReachTheLowering) {
  Translator t;
  t.addExtension(ext_matrix::matrixExtension());
  TranslateOptions opts;
  opts.autoParallel = false;
  ASSERT_TRUE(t.compose(opts));
  auto res = t.translate("p.xc", R"(
int main() {
  Matrix int <1> v = with ([0] <= [i] < [4]) genarray([4], i);
  printInt(v[3]);
  return 0;
})");
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(ir::dump(*res.module).find("#pragma parallel"),
            std::string::npos);
}

TEST(Translator, GrammarAccessorsExposeComposition) {
  Translator t;
  t.addExtension(ext_matrix::matrixExtension());
  ASSERT_TRUE(t.compose());
  // Host + tuple + matrix productions present.
  bool sawWith = false, sawTuple = false;
  for (const auto& p : t.grammar().productions()) {
    if (p.name == "prim_with") sawWith = true;
    if (p.name == "prim_tuple") sawTuple = true;
  }
  EXPECT_TRUE(sawWith);
  EXPECT_TRUE(sawTuple);
  EXPECT_TRUE(t.parser()->tables().conflicts().empty());
}

} // namespace
} // namespace mmx::driver
