// End-to-end observability (ISSUE 2 acceptance): translating and running
// a program with metrics enabled must produce phase spans for
// compose/parse/typecheck/optimize/lower plus one pool `parallelFor` span
// per region, and the Chrome trace / stats JSON renders must be valid.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "driver/translator.hpp"
#include "ext_matrix/matrix_ext.hpp"
#include "interp/interp.hpp"
#include "runtime/backend.hpp"
#include "support/metrics.hpp"

namespace mmx::driver {
namespace {

constexpr const char* kProgram = R"(
int main() {
  Matrix float <2> m = with ([0,0] <= [i,j] < [8,8])
      genarray([8,8], (float)(i + j));
  printFloat(m[3, 4]);
  return 0;
})";

class ObservabilityTest : public ::testing::Test {
protected:
  void SetUp() override {
    metrics::enable(true);
    metrics::reset();
  }
  void TearDown() override {
    metrics::reset();
    metrics::enable(false);
  }

  /// Full pipeline with metrics on; returns the snapshot.
  metrics::Snapshot runPipeline(unsigned threads) {
    Translator t;
    t.addExtension(ext_matrix::matrixExtension());
    EXPECT_TRUE(t.compose()) << t.renderComposeDiagnostics();
    auto res = t.translate("obs.xc", kProgram);
    EXPECT_TRUE(res.ok) << res.renderDiagnostics();
    auto exec = rt::makeExecutor(threads > 1 ? rt::ExecutorKind::ForkJoin
                                             : rt::ExecutorKind::Serial,
                                 threads);
    interp::Machine vm(*res.module, *exec);
    EXPECT_EQ(vm.runMain(), 0);
    return metrics::snapshot();
  }

  static size_t countSpans(const metrics::Snapshot& s,
                           const std::string& name) {
    size_t n = 0;
    for (const auto& e : s.events)
      if (e.name == name) ++n;
    return n;
  }
};

TEST_F(ObservabilityTest, TraceHasAllPhaseSpansAndAPoolSpanPerRegion) {
  metrics::Snapshot s = runPipeline(/*threads=*/2);
  for (const char* phase :
       {"compose", "parse", "typecheck", "optimize", "lower"})
    EXPECT_EQ(countSpans(s, phase), 1u) << "missing phase span: " << phase;
  // The program has exactly one auto-parallelized with-loop region.
  EXPECT_EQ(countSpans(s, "parallelFor"), 1u);
  uint64_t regions = 0;
  for (const auto& row : s.counters)
    if (row.name == "pool.regions") regions = row.value;
  EXPECT_EQ(regions, 1u);
}

TEST_F(ObservabilityTest, SerialExecutorStillTracesRegions) {
  // mmc defaults to the serial executor at one thread; region spans must
  // not silently disappear there.
  metrics::Snapshot s = runPipeline(/*threads=*/1);
  EXPECT_EQ(countSpans(s, "parallelFor"), 1u);
}

TEST_F(ObservabilityTest, PipelineCountersAreRecorded) {
  metrics::Snapshot s = runPipeline(/*threads=*/2);
  auto value = [&](const std::string& name) -> uint64_t {
    for (const auto& row : s.counters)
      if (row.name == name) return row.value;
    return 0;
  };
  EXPECT_GT(value("lex.tokens"), 0u);
  EXPECT_GT(value("parse.shifts"), 0u);
  EXPECT_GT(value("parse.reduces"), 0u);
  EXPECT_GT(value("parse.lalrStates"), 0u);
  EXPECT_GT(value("interp.stmts"), 0u);
  EXPECT_EQ(value("matrix.autoParallel"), 1u);
  EXPECT_EQ(value("parallel.checked"), 1u);
  EXPECT_EQ(value("parallel.demoted"), 0u);
}

TEST_F(ObservabilityTest, TraceJsonIsWellFormedChromeFormat) {
  metrics::Snapshot s = runPipeline(/*threads=*/2);
  std::string json = metrics::renderTraceJson(s);
  // Shape: {"traceEvents":[{...,"ph":"X",...}, ...]}
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 80);
  for (const char* key : {"\"name\":", "\"cat\":", "\"ph\":\"X\"", "\"ts\":",
                          "\"dur\":", "\"pid\":", "\"tid\":"})
    EXPECT_NE(json.find(key), std::string::npos) << key;
  for (const char* phase :
       {"\"compose\"", "\"parse\"", "\"typecheck\"", "\"optimize\"",
        "\"lower\"", "\"parallelFor\""})
    EXPECT_NE(json.find(phase), std::string::npos) << phase;
  // Balanced braces/brackets (cheap structural validity check; CI runs a
  // real JSON parser over the mmc-produced files).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(ObservabilityTest, OptimizerCountersAppearAsExplicitZeros) {
  // ISSUE 6 satellite: `--analyze --stats-json` used to emit an empty
  // opt.* section when no pass fired. The optimizer registers its
  // counters on every translation (even at -O0), so the include-zeros
  // snapshot the analyze path takes must carry the full section.
  runPipeline(/*threads=*/1);
  metrics::Snapshot s = metrics::snapshot(/*includeZeros=*/true);
  std::set<std::string> names;
  for (const auto& row : s.counters) names.insert(row.name);
  for (const char* key : {"opt.fusion.fused", "opt.temps.eliminated",
                          "opt.inplace.converted", "opt.alias.blocked"})
    EXPECT_TRUE(names.count(key)) << "missing counter: " << key;
  std::set<std::string> timers;
  for (const auto& row : s.timers) timers.insert(row.name);
  EXPECT_TRUE(timers.count("optimizer"));
}

TEST_F(ObservabilityTest, TimersCoverThePhases) {
  metrics::Snapshot s = runPipeline(/*threads=*/2);
  std::set<std::string> names;
  for (const auto& row : s.timers) names.insert(row.name);
  for (const char* phase :
       {"compose", "parse", "typecheck", "optimize", "lower"})
    EXPECT_TRUE(names.count(phase)) << "missing timer: " << phase;
}

TEST_F(ObservabilityTest, BackendSelectionReachesStatsJson) {
  // ISSUE 7 satellite: a program that multiplies matrices must surface
  // which kernel backend served it — backend.selected.<name> plus the
  // per-backend kernel.matmul.<name> timer next to the generic one.
  constexpr const char* kMatmulProgram = R"(
int main() {
  int n = 40;
  Matrix float <2> a = with ([0,0] <= [i,j] < [n,n])
      genarray([n,n], (float)((i * 7 + j) % 97) / 8.0);
  Matrix float <2> c = a * a;
  printFloat(c[1, 2]);
  return 0;
})";
  Translator t;
  t.addExtension(ext_matrix::matrixExtension());
  ASSERT_TRUE(t.compose()) << t.renderComposeDiagnostics();
  auto res = t.translate("obs_mm.xc", kMatmulProgram);
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  rt::RuntimeConfig cfg;
  cfg.backend = "sse";
  auto exec = cfg.make();
  interp::Machine vm(*res.module, *exec);
  EXPECT_EQ(vm.runMain(), 0);
  rt::selectBackend("auto"); // undo the process-wide pin

  metrics::Snapshot s = metrics::snapshot();
  std::string json = metrics::renderStatsJson(s);
  EXPECT_NE(json.find("\"backend.selected.sse\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"kernel.matmul.ns\""), std::string::npos);
  EXPECT_NE(json.find("\"kernel.matmul.sse.ns\""), std::string::npos);
  std::string report = metrics::renderTimeReport(s);
  EXPECT_NE(report.find("kernel.matmul.sse"), std::string::npos);
  EXPECT_NE(report.find("backend.selected.sse"), std::string::npos);
}

} // namespace
} // namespace mmx::driver
