// Figure-by-figure reproduction of the paper's code listings (DESIGN.md
// experiment index F1-F11). Programs are written in extended C, run
// through the composed translator + interpreter, and checked against the
// independent C++ oracles in runtime/.
#include <cstdio>

#include "runtime/conncomp.hpp"
#include "runtime/eddy.hpp"
#include "runtime/kernels.hpp"
#include "runtime/matio.hpp"
#include "runtime/ssh_synth.hpp"
#include "xc_helper.hpp"

namespace mmx::test {
namespace {

struct TempPath {
  std::string path;
  explicit TempPath(const char* name)
      : path(std::string(::testing::TempDir()) + name) {}
  ~TempPath() { std::remove(path.c_str()); }
};

// ---- F1 + F3: the temporal-mean program of Fig. 1 ------------------------

const char* kFig1 = R"(
// Fig. 1, with readMatrix replaced by the synthetic SSH source.
int main() {
  Matrix float <3> mat = synthSsh(6, 7, 9, 42, 2);
  int m = dimSize(mat, 0);
  int n = dimSize(mat, 1);
  int p = dimSize(mat, 2);
  Matrix float <2> means = init(Matrix float <2>, m, n);
  means = with ([0,0] <= [i,j] < [m,n])
    genarray([m,n],
      (with ([0] <= [k] < [p]) fold(+, 0.0, mat[i,j,k])) / p);
  writeMatrix("%OUT%", means);
  return 0;
}
)";

std::string fig1Program(const std::string& out) {
  std::string src = kFig1;
  src.replace(src.find("%OUT%"), 5, out);
  return src;
}

TEST(Fig1, TemporalMeanMatchesOracle) {
  TempPath out("fig1_means.mmx");
  EXPECT_EQ(runOk(fig1Program(out.path)), "");

  rt::SshParams p;
  p.nlat = 6;
  p.nlon = 7;
  p.ntime = 9;
  p.seed = 42;
  p.numEddies = 2;
  rt::Matrix ssh = rt::synthesizeSsh(p);
  rt::SerialExecutor ex;
  rt::Matrix sums;
  rt::sumInnermost3D(ex, ssh, sums, false);
  rt::Matrix expect;
  rt::ewBinaryScalarF(ex, rt::BinOp::Div, sums, 9.f, expect, false);

  rt::Matrix got = rt::readMatrixFile(out.path);
  EXPECT_TRUE(got.equals(expect, 1e-4f))
      << "got " << got.shapeString() << ", expected "
      << expect.shapeString();
}

TEST(Fig1, ParallelRunMatchesSerial) {
  TempPath a("fig1_ser.mmx"), b("fig1_par.mmx");
  runOk(fig1Program(a.path), 1);
  runOk(fig1Program(b.path), 4);
  EXPECT_TRUE(rt::readMatrixFile(a.path).equals(rt::readMatrixFile(b.path)));
}

TEST(Fig3, GeneratedLoopStructure) {
  // The internal expansion (Fig. 3): the genarray is two nested for-loops
  // over i and j, the fold one inner loop over k, the assignment fused
  // (no extra copy), the innermost access a direct flat load (the slice
  // was eliminated), and the outer loop parallel.
  auto res = translateXc(fig1Program("/dev/null"));
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  std::string irText = ir::dump(*res.module);

  EXPECT_NE(irText.find("for (i"), std::string::npos) << irText;
  EXPECT_NE(irText.find("for (j"), std::string::npos);
  EXPECT_NE(irText.find("for (k"), std::string::npos);
  EXPECT_NE(irText.find("#pragma parallel"), std::string::npos);
  EXPECT_NE(irText.find(".data["), std::string::npos); // direct flat access
  EXPECT_EQ(irText.find("cloneMatrix"), std::string::npos); // fused
}

TEST(Fig3, AblationsChangeTheGeneratedCode) {
  driver::TranslateOptions noFusion;
  noFusion.fusion = false;
  auto res = translateXc(fig1Program("/dev/null"), noFusion);
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  EXPECT_NE(ir::dump(*res.module).find("cloneMatrix"), std::string::npos);

  driver::TranslateOptions noPar;
  noPar.autoParallel = false;
  auto res2 = translateXc(fig1Program("/dev/null"), noPar);
  ASSERT_TRUE(res2.ok) << res2.renderDiagnostics();
  EXPECT_EQ(ir::dump(*res2.module).find("#pragma parallel"),
            std::string::npos);

  driver::TranslateOptions noSlice;
  noSlice.sliceElimination = false;
  auto res3 = translateXc(fig1Program("/dev/null"), noSlice);
  ASSERT_TRUE(res3.ok) << res3.renderDiagnostics();
  // Unoptimized scalar indexing goes through the selector machinery,
  // visible as bracketed index expressions instead of .data[] loads.
  EXPECT_EQ(ir::dump(*res3.module).find("mat.data["), std::string::npos);
}

// ---- F4 + F5: connected components over thresholds ----------------------

TEST(Fig4, ConnCompMatrixMapProgram) {
  TempPath out("fig4_labels.mmx");
  std::string src = R"(
    // Fig. 4's shape: for each time step, label connected components of
    // the thresholded SSH field.
    Matrix int <2> connCompAt(Matrix float <2> ssh) {
      Matrix int <2> labels = init(Matrix int <2>,
                                   dimSize(ssh, 0), dimSize(ssh, 1));
      Matrix bool <2> binary = ssh < -0.5;
      labels = connComp(binary);
      return labels;
    }
    int main() {
      Matrix float <3> ssh = synthSsh(12, 12, 6, 9, 3);
      Matrix int <3> all = init(Matrix int <3>, 12, 12, 6);
      // Fig. 5's semantically equivalent loop over the third dimension.
      for (int t = 0; t < dimSize(ssh, 2); t++) {
        all[:, :, t] = connCompAt(ssh[:, :, t]);
      }
      writeMatrix(")" + out.path + R"(", all);
      return 0;
    })";
  runOk(src);

  rt::SshParams p;
  p.nlat = 12;
  p.nlon = 12;
  p.ntime = 6;
  p.seed = 9;
  p.numEddies = 3;
  rt::Matrix ssh = rt::synthesizeSsh(p);
  rt::Matrix got = rt::readMatrixFile(out.path);
  ASSERT_EQ(got.rank(), 3u);

  // Oracle: per time step, threshold + label.
  for (int64_t t = 0; t < p.ntime; ++t) {
    rt::Matrix bin = rt::Matrix::zeros(rt::Elem::Bool, {p.nlat, p.nlon});
    for (int64_t i = 0; i < p.nlat; ++i)
      for (int64_t j = 0; j < p.nlon; ++j)
        bin.boolean()[i * p.nlon + j] =
            ssh.f32()[(i * p.nlon + j) * p.ntime + t] < -0.5f;
    rt::Matrix lab = rt::connectedComponents(bin);
    for (int64_t i = 0; i < p.nlat; ++i)
      for (int64_t j = 0; j < p.nlon; ++j)
        ASSERT_EQ(got.i32()[(i * p.nlon + j) * p.ntime + t],
                  lab.i32()[i * p.nlon + j])
            << "t=" << t << " i=" << i << " j=" << j;
  }
}

// ---- F8: the full ocean-eddy scoring program ----------------------------

std::string fig8Program(const std::string& out, int nlat, int nlon,
                        int ntime, int seed) {
  return R"(
(Matrix float <1>, int, int) getTrough(Matrix float <1> ts, int i) {
  int beginning = i;
  int n = dimSize(ts, 0);
  while (i + 1 < n && ts[i] >= ts[i + 1]) { i = i + 1; }
  while (i + 1 < n && ts[i] < ts[i + 1]) { i = i + 1; }
  return (ts[beginning : i], beginning, i);
}

Matrix float <1> computeArea(Matrix float <1> areaOfInterest) {
  float y1 = areaOfInterest[0];
  float y2 = areaOfInterest[end];
  int x1 = 0;
  int x2 = dimSize(areaOfInterest, 0) - 1;
  float slope = 0.0;
  if (x2 > x1) { slope = (y1 - y2) / ((float)(x1 - x2)); }
  float b = y1 - slope * x1;
  Matrix float <1> Line = (x1 :: x2) * slope + b;
  float area = with ([0] <= [q] < [dimSize(Line, 0)])
      fold(+, 0.0, Line[q] - areaOfInterest[q]);
  return with ([0] <= [q] < [dimSize(Line, 0)])
      genarray([dimSize(Line, 0)], area);
}

Matrix float <1> scoreTS(Matrix float <1> ts) {
  Matrix float <1> scores = init(Matrix float <1>, dimSize(ts, 0));
  int i = 0;
  int n = dimSize(ts, 0);
  while (i + 1 < n && ts[i] < ts[i + 1]) { i = i + 1; }  // trimming
  Matrix float <1> trough = init(Matrix float <1>, 1);
  int beginning = 0;
  while (i < n - 1) {
    (trough, beginning, i) = getTrough(ts, i);
    if (i <= beginning) { return scores; }
    scores[beginning : i] = computeArea(trough);
  }
  return scores;
}

int main() {
  Matrix float <3> data = synthSsh()" +
         std::to_string(nlat) + ", " + std::to_string(nlon) + ", " +
         std::to_string(ntime) + ", " + std::to_string(seed) + R"(, 2);
  Matrix float <3> scores = matrixMap(scoreTS, data, [2]);
  writeMatrix(")" + out + R"(", scores);
  return 0;
}
)";
}

TEST(Fig8, EddyScoringMatchesOracle) {
  TempPath out("fig8_scores.mmx");
  runOk(fig8Program(out.path, 5, 6, 24, 17));

  rt::SshParams p;
  p.nlat = 5;
  p.nlon = 6;
  p.ntime = 24;
  p.seed = 17;
  p.numEddies = 2;
  rt::Matrix ssh = rt::synthesizeSsh(p);
  rt::SerialExecutor ex;
  rt::Matrix expect = rt::scoreAllSeries(ex, ssh);

  rt::Matrix got = rt::readMatrixFile(out.path);
  EXPECT_TRUE(got.equals(expect, 1e-3f))
      << "extended-C scoring diverges from the C++ oracle";
}

TEST(Fig8, ParallelMatrixMapMatchesSerial) {
  TempPath a("fig8_ser.mmx"), b("fig8_par.mmx");
  runOk(fig8Program(a.path, 4, 5, 20, 3), 1);
  runOk(fig8Program(b.path, 4, 5, 20, 3), 4);
  EXPECT_TRUE(rt::readMatrixFile(a.path).equals(rt::readMatrixFile(b.path)));
}

// ---- F9 / F10 / F11: explicit transformations ----------------------------

std::string fig9Program(const std::string& out, const std::string& clauses) {
  return R"(
int main() {
  Matrix float <3> mat = synthSsh(6, 16, 12, 5, 2);
  int m = dimSize(mat, 0);
  int n = dimSize(mat, 1);
  int p = dimSize(mat, 2);
  Matrix float <2> means = init(Matrix float <2>, m, n);
  means = with ([0,0] <= [i,j] < [m,n])
    genarray([m,n],
      (with ([0] <= [k] < [p]) fold(+, 0.0, mat[i,j,k])) / p))" +
         clauses + R"(;
  writeMatrix(")" + out + R"(", means);
  return 0;
}
)";
}

TEST(Fig9, TransformedResultEqualsUntransformed) {
  TempPath plain("fig9_plain.mmx"), tf("fig9_tf.mmx");
  runOk(fig9Program(plain.path, ""));
  runOk(fig9Program(tf.path, R"(
    transform {
      split j by 4, jin, jout;
      vectorize jin;
      parallelize i;
    })"),
        4);
  EXPECT_TRUE(
      rt::readMatrixFile(plain.path)
          .equals(rt::readMatrixFile(tf.path), 1e-4f));
}

TEST(Fig10, SplitProducesTwoLoopsWithReconstruction) {
  auto res = translateXc(fig9Program("/dev/null", R"(
    transform { split j by 4, jin, jout; })"));
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  std::string irText = ir::dump(*res.module);
  // Fig. 10: the j loop is replaced by jout/jin loops and j is rebuilt
  // as jout*4 + jin.
  EXPECT_NE(irText.find("for (%jout"), std::string::npos) << irText;
  EXPECT_NE(irText.find("for (%jin"), std::string::npos);
  EXPECT_NE(irText.find("(%jout * 4)"), std::string::npos);
  // The original single j loop is gone.
  EXPECT_EQ(irText.find("for (j ="), std::string::npos);
}

TEST(Fig11, VectorizeAndParallelizeAnnotate) {
  auto res = translateXc(fig9Program("/dev/null", R"(
    transform {
      split j by 4, jin, jout;
      vectorize jin;
      parallelize i;
    })"));
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  std::string irText = ir::dump(*res.module);
  EXPECT_NE(irText.find("#pragma vectorize 4"), std::string::npos) << irText;
  EXPECT_NE(irText.find("#pragma parallel"), std::string::npos);
}

TEST(Fig9, NonDivisibleExtentsStayCorrect) {
  // n = 16 is divisible by 4; n = 7 is not — the min() remainder guard
  // must keep results exact (the paper assumes divisibility).
  std::string prog = R"(
int main() {
  Matrix float <2> mat = with ([0,0] <= [i,j] < [5,7])
      genarray([5,7], (float)(i * 7 + j));
  Matrix float <2> twice = init(Matrix float <2>, 5, 7);
  twice = with ([0,0] <= [i,j] < [5,7])
      genarray([5,7], mat[i,j] * 2.0)
      transform { split j by 4, jin, jout; vectorize jin; };
  float diff = with ([0,0] <= [i,j] < [5,7])
      fold(max, 0.0, max(twice[i,j] - mat[i,j] * 2.0,
                         mat[i,j] * 2.0 - twice[i,j]));
  printFloat(diff);
  return 0;
})";
  EXPECT_EQ(runOk(prog), "0\n");
}

TEST(Transform, TileIsDerivedFromSplitsAndReorder) {
  std::string prog = R"(
int main() {
  Matrix float <2> a = with ([0,0] <= [i,j] < [8,8])
      genarray([8,8], (float)(i * 8 + j));
  Matrix float <2> b = init(Matrix float <2>, 8, 8);
  b = with ([0,0] <= [i,j] < [8,8])
      genarray([8,8], a[i,j] + 1.0)
      transform { tile i, j by 4, 4; };
  float diff = with ([0,0] <= [i,j] < [8,8])
      fold(max, 0.0, max(b[i,j] - a[i,j] - 1.0, a[i,j] + 1.0 - b[i,j]));
  printFloat(diff);
  return 0;
})";
  EXPECT_EQ(runOk(prog), "0\n");

  auto res = translateXc(prog);
  ASSERT_TRUE(res.ok);
  std::string irText = ir::dump(*res.module);
  // Four loops, tiled order: iout, jout, iin, jin.
  size_t iout = irText.find("for (%iout");
  size_t jout = irText.find("for (%jout");
  size_t iin = irText.find("for (%iin");
  size_t jin = irText.find("for (%jin");
  ASSERT_NE(iout, std::string::npos) << irText;
  ASSERT_NE(jout, std::string::npos);
  ASSERT_NE(iin, std::string::npos);
  ASSERT_NE(jin, std::string::npos);
  EXPECT_LT(iout, jout);
  EXPECT_LT(jout, iin);
  EXPECT_LT(iin, jin);
}

TEST(Transform, ReorderSwapsLoops) {
  std::string prog = R"(
int main() {
  Matrix float <2> a = init(Matrix float <2>, 4, 6);
  a = with ([0,0] <= [i,j] < [4,6])
      genarray([4,6], (float)(i + j))
      transform { reorder j, i; };
  printFloat(a[3, 5]);
  return 0;
})";
  EXPECT_EQ(runOk(prog), "8\n");
  auto res = translateXc(prog);
  ASSERT_TRUE(res.ok);
  std::string irText = ir::dump(*res.module);
  size_t jpos = irText.find("for (j");
  size_t ipos = irText.find("for (i");
  ASSERT_NE(jpos, std::string::npos);
  ASSERT_NE(ipos, std::string::npos);
  EXPECT_LT(jpos, ipos); // j is now outermost
}

TEST(TransformErrors, UnknownLoopIndexReported) {
  // "to detect, for example, that the loop indices in the transformations
  // correspond to loops in the code being transformed".
  expectError(fig9Program("/dev/null",
                          "transform { split z by 4, zin, zout; }"),
              "no loop named 'z'");
}

TEST(TransformErrors, VectorizeRejectsControlFlow) {
  std::string prog = R"(
int f(int x) { return x; }
int main() {
  Matrix int <1> v = with ([0] <= [i] < [8])
      genarray([8], f(i))
      transform { vectorize i; };
  return 0;
})";
  expectError(prog, "vectorize");
}

} // namespace
} // namespace mmx::test
