// C emitter tests: the emitted "plain parallel C" must (a) contain the
// structures of Figs. 10-11 (OpenMP pragma, SSE intrinsics, split loops),
// and (b) actually compile with the system C compiler and produce the
// same results as the interpreter.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include <sys/wait.h>

#include "ir/cemit.hpp"
#include "runtime/backend.hpp"
#include "runtime/memsys.hpp"
#include "runtime/matio.hpp"
#include "runtime/ssh_synth.hpp"
#include "xc_helper.hpp"

namespace mmx::test {
namespace {

struct TempPath {
  std::string path;
  explicit TempPath(const std::string& name)
      : path(std::string(::testing::TempDir()) + name) {}
  ~TempPath() { std::remove(path.c_str()); }
};

std::string emitOk(const std::string& src,
                   driver::TranslateOptions opts = {}) {
  auto res = translateXc(src, opts);
  EXPECT_TRUE(res.ok) << res.renderDiagnostics();
  if (!res.ok) return {};
  auto c = ir::emitC(*res.module);
  EXPECT_TRUE(c.ok) << (c.errors.empty() ? "" : c.errors.front());
  return c.code;
}

/// Compiles the C text with the system compiler and runs it; returns the
/// program stdout. Registers a test failure on any step going wrong.
/// `ccExtra` lets tests drop -fopenmp (the emitted C must also build as
/// plain serial C); `envPrefix` lets them pin OMP_NUM_THREADS.
std::string compileAndRun(const std::string& cCode, const char* tag,
                          const std::string& ccExtra = "-fopenmp",
                          const std::string& envPrefix = "") {
  std::string base = std::string(::testing::TempDir()) + "cemit_" + tag;
  std::string cPath = base + ".c";
  std::string binPath = base + ".bin";
  std::ofstream(cPath) << cCode;
  std::string cmd = "cc -O2 -std=gnu99 -msse4.2 " + ccExtra + " " + cPath +
                    " -o " + binPath + " -lm 2>" + base + ".err";
  if (std::system(cmd.c_str()) != 0) {
    std::ifstream err(base + ".err");
    std::string msg((std::istreambuf_iterator<char>(err)),
                    std::istreambuf_iterator<char>());
    ADD_FAILURE() << "cc failed:\n" << msg << "\n--- code:\n" << cCode;
    return {};
  }
  std::string outPath = base + ".out";
  if (std::system((envPrefix + binPath + " >" + outPath).c_str()) != 0) {
    ADD_FAILURE() << "emitted binary exited nonzero";
    return {};
  }
  std::ifstream out(outPath);
  std::string text((std::istreambuf_iterator<char>(out)),
                   std::istreambuf_iterator<char>());
  std::remove(cPath.c_str());
  std::remove(binPath.c_str());
  std::remove(outPath.c_str());
  std::remove((base + ".err").c_str());
  return text;
}

TEST(CEmit, ScalarProgramCompilesAndMatchesInterpreter) {
  const char* src = R"(
    int fib(int n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    int main() {
      printInt(fib(15));
      printFloat(2.5 * 4.0);
      printBool(3 < 4 && !(2 == 2) || true);
      return 0;
    })";
  std::string c = emitOk(src);
  ASSERT_FALSE(c.empty());
  EXPECT_EQ(compileAndRun(c, "scalar"), runOk(src));
}

TEST(CEmit, TupleFunctionsUseOutParameters) {
  const char* src = R"(
    (int, int) divmod(int a, int b) { return (a / b, a % b); }
    int main() {
      int d = 0;
      int r = 0;
      (d, r) = divmod(47, 7);
      printInt(d);
      printInt(r);
      return 0;
    })";
  std::string c = emitOk(src);
  ASSERT_FALSE(c.empty());
  EXPECT_NE(c.find("int* __out0"), std::string::npos);
  EXPECT_EQ(compileAndRun(c, "tuple"), runOk(src));
}

std::string meansProgram(const std::string& in, const std::string& out,
                         const std::string& clauses) {
  return R"(
int main() {
  Matrix float <3> mat = readMatrix(")" + in + R"(");
  int m = dimSize(mat, 0);
  int n = dimSize(mat, 1);
  int p = dimSize(mat, 2);
  Matrix float <2> means = init(Matrix float <2>, m, n);
  means = with ([0,0] <= [i,j] < [m,n])
    genarray([m,n],
      (with ([0] <= [k] < [p]) fold(+, 0.0, mat[i,j,k])) / p))" + clauses + R"(;
  writeMatrix(")" + out + R"(", means);
  printFloat(means[0, 0]);
  return 0;
})";
}

TEST(CEmit, TemporalMeanCompiledMatchesInterpreter) {
  TempPath in("cemit_in.mmx"), outC("cemit_c.mmx"), outI("cemit_i.mmx");
  rt::SshParams p;
  p.nlat = 6;
  p.nlon = 9;
  p.ntime = 11;
  rt::writeMatrixFile(in.path, rt::synthesizeSsh(p));

  std::string interpOut = runOk(meansProgram(in.path, outI.path, ""));
  std::string c = emitOk(meansProgram(in.path, outC.path, ""));
  ASSERT_FALSE(c.empty());
  std::string compiledOut = compileAndRun(c, "means");
  EXPECT_EQ(compiledOut, interpOut);
  EXPECT_TRUE(rt::readMatrixFile(outC.path)
                  .equals(rt::readMatrixFile(outI.path), 1e-4f));
}

TEST(CEmit, Fig11TransformedProgramEmitsOmpAndSse) {
  TempPath in("cemit_in11.mmx"), out("cemit_o11.mmx");
  rt::SshParams p;
  p.nlat = 4;
  p.nlon = 16;
  p.ntime = 8;
  rt::writeMatrixFile(in.path, rt::synthesizeSsh(p));

  std::string prog = meansProgram(in.path, out.path, R"(
    transform {
      split j by 4, jin, jout;
      vectorize jin;
      parallelize i;
    })");
  std::string c = emitOk(prog);
  ASSERT_FALSE(c.empty());
  // Fig. 11's artifacts: an OpenMP parallel-for on the outer loop and
  // 128-bit SSE operations in the vectorized inner loop.
  EXPECT_NE(c.find("#pragma omp parallel for"), std::string::npos);
  EXPECT_NE(c.find("_mm_add_ps"), std::string::npos);
  EXPECT_NE(c.find("_mm_div_ps"), std::string::npos);
  EXPECT_NE(c.find("mmx_vscatter_f"), std::string::npos);
  // Fig. 10's artifact: the split loops with the index reconstruction.
  EXPECT_NE(c.find("jout"), std::string::npos);
  EXPECT_NE(c.find("jin"), std::string::npos);

  std::string interpOut = runOk(prog);
  EXPECT_EQ(compileAndRun(c, "fig11"), interpOut);
}

TEST(CEmit, IndexingAndRangesCompile) {
  TempPath in("cemit_idx.mmx");
  rt::writeMatrixFile(in.path,
                      rt::Matrix::fromF32({3, 4}, {0, 1, 2, 3, 10, 11, 12, 13,
                                                   20, 21, 22, 23}));
  std::string src = R"(
int main() {
  Matrix float <2> m = readMatrix(")" + in.path + R"(");
  Matrix float <1> row = m[1, :];
  printFloat(row[2]);
  Matrix float <2> blk = m[0 : 1, 1 : 2];
  printFloat(blk[1, 1]);
  m[2, 0 : 1] = 99.0;
  printFloat(m[2, 0] + m[2, 1]);
  Matrix float <1> line = (0 :: 3) * 2.0 + 1.0;
  printFloat(line[3]);
  printFloat(m[0, end]);
  return 0;
})";
  std::string c = emitOk(src);
  ASSERT_FALSE(c.empty());
  EXPECT_EQ(compileAndRun(c, "idx"), runOk(src));
}

TEST(CEmit, LogicalIndexingCompiles) {
  std::string src = R"(
int main() {
  Matrix int <1> v = (1 :: 8);
  Matrix int <1> odd = v[v % 2 == 1];
  printInt(dimSize(odd, 0));
  printInt(odd[3]);
  v[v > 4] = 0;
  printInt(v[3] + v[6]);
  return 0;
})";
  std::string c = emitOk(src);
  ASSERT_FALSE(c.empty());
  EXPECT_EQ(compileAndRun(c, "logical"), runOk(src));
}

/// Compiles the C text and runs it expecting a runtime guard to fire:
/// returns the binary's exit code (mmx_fail exits 3) and its stderr text.
struct FailRun {
  int exitCode = -1;
  std::string err;
};
FailRun compileAndRunFail(const std::string& cCode, const char* tag) {
  FailRun fr;
  std::string base = std::string(::testing::TempDir()) + "cemitf_" + tag;
  std::string cPath = base + ".c";
  std::string binPath = base + ".bin";
  std::ofstream(cPath) << cCode;
  std::string cmd = "cc -O2 -std=gnu99 -msse4.2 -fopenmp " + cPath + " -o " +
                    binPath + " -lm 2>" + base + ".err";
  if (std::system(cmd.c_str()) != 0) {
    ADD_FAILURE() << "cc failed for " << tag;
    return fr;
  }
  int rc = std::system((binPath + " >/dev/null 2>" + base + ".err").c_str());
  fr.exitCode = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  std::ifstream err(base + ".err");
  fr.err.assign(std::istreambuf_iterator<char>(err),
                std::istreambuf_iterator<char>());
  std::remove(cPath.c_str());
  std::remove(binPath.c_str());
  std::remove((base + ".err").c_str());
  return fr;
}

TEST(CEmit, RangeToEndCompiledMatchesInterpreter) {
  // `lo:end` with a runtime lower bound — the range path the guards
  // protect — must agree between interpreter and emitted C.
  std::string src = R"(
int main() {
  Matrix float <1> v = (0 :: 9) * 1.5;
  int lo = dimSize(v, 0) - 4;
  Matrix float <1> tail = v[lo : end];
  printInt(dimSize(tail, 0));
  printFloat(tail[0] + tail[3]);
  v[lo : end] = 0.0;
  printFloat(v[5] + v[6]);
  return 0;
})";
  std::string c = emitOk(src);
  ASSERT_FALSE(c.empty());
  EXPECT_EQ(compileAndRun(c, "rangeend"), runOk(src));
}

TEST(CEmit, RangePastEndFailsAtRuntime) {
  // v[2:n] with n == dimSize: one past `end`. The interpreter raises a
  // RuntimeError; the emitted binary hits the same guard and exits 3.
  std::string src = R"(
int main() {
  Matrix float <1> v = (0 :: 5) * 1.0;
  int n = dimSize(v, 0);
  Matrix float <1> bad = v[2 : n];
  printFloat(bad[0]);
  return 0;
})";
  RunOutcome interp = runXc(src);
  ASSERT_TRUE(interp.translated) << interp.diagnostics;
  EXPECT_FALSE(interp.ran);
  EXPECT_FALSE(interp.runtimeError.empty());

  auto res = translateXc(src);
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  auto c = ir::emitC(*res.module);
  ASSERT_TRUE(c.ok);
  FailRun fr = compileAndRunFail(c.code, "rangeoob");
  EXPECT_EQ(fr.exitCode, 3) << fr.err;
  EXPECT_NE(fr.err.find("runtime error"), std::string::npos) << fr.err;
}

TEST(CEmit, MaskLengthMismatchFailsAtRuntime) {
  // Logical indexing with a mask shorter than the indexed dimension must
  // be rejected by both backends, not silently read out of bounds.
  std::string src = R"(
int main() {
  Matrix int <1> v = (1 :: 8);
  Matrix int <1> w = (1 :: 5);
  Matrix int <1> sel = v[w > 3];
  printInt(dimSize(sel, 0));
  return 0;
})";
  RunOutcome interp = runXc(src);
  ASSERT_TRUE(interp.translated) << interp.diagnostics;
  EXPECT_FALSE(interp.ran);
  EXPECT_FALSE(interp.runtimeError.empty());

  auto res = translateXc(src);
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  auto c = ir::emitC(*res.module);
  ASSERT_TRUE(c.ok);
  FailRun fr = compileAndRunFail(c.code, "maskoob");
  EXPECT_EQ(fr.exitCode, 3) << fr.err;
  EXPECT_NE(fr.err.find("runtime error"), std::string::npos) << fr.err;
}

TEST(CEmit, MaskStoreCompiledMatchesInterpreter) {
  // Masked assignment with a runtime threshold (float mask path).
  std::string src = R"(
int main() {
  Matrix float <1> v = (0 :: 9) * 0.5;
  float cut = v[6];
  v[v > cut] = -1.0;
  printFloat(v[5] + v[6] + v[9]);
  Matrix float <1> kept = v[v > 0.0];
  printInt(dimSize(kept, 0));
  return 0;
})";
  std::string c = emitOk(src);
  ASSERT_FALSE(c.empty());
  EXPECT_EQ(compileAndRun(c, "maskstore"), runOk(src));
}

TEST(CEmit, SimulatorBuiltinsAreRejectedWithClearMessage) {
  auto res = translateXc("int main() { Matrix float <3> m = "
                         "synthSsh(2, 2, 2, 1, 1); printShape(m); return 0; }");
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  auto c = ir::emitC(*res.module);
  EXPECT_FALSE(c.ok);
  ASSERT_FALSE(c.errors.empty());
  EXPECT_NE(c.errors.front().find("interpreter-only"), std::string::npos);
}

rt::Matrix lcgF32(int64_t rows, int64_t cols, uint32_t seed) {
  rt::Matrix m = rt::Matrix::zeros(rt::Elem::F32, {rows, cols});
  uint32_t s = seed * 2654435761u + 1;
  for (int64_t i = 0; i < m.size(); ++i) {
    s = s * 1664525u + 1013904223u;
    m.f32()[i] = static_cast<float>(static_cast<int32_t>(s >> 16) % 97) / 8.0f;
  }
  return m;
}

rt::Matrix lcgI32(int64_t rows, int64_t cols, uint32_t seed) {
  rt::Matrix m = rt::Matrix::zeros(rt::Elem::I32, {rows, cols});
  uint32_t s = seed * 2246822519u + 7;
  for (int64_t i = 0; i < m.size(); ++i) {
    s = s * 1664525u + 1013904223u;
    m.i32()[i] = static_cast<int32_t>(s >> 24) - 128;
  }
  return m;
}

std::string matmulProgram(const char* elem, const std::string& aPath,
                          const std::string& bPath, const char* printFn) {
  return std::string(R"(
int main() {
  Matrix )") + elem + R"( <2> a = readMatrix(")" + aPath + R"(");
  Matrix )" + elem + R"( <2> b = readMatrix(")" + bPath + R"(");
  Matrix )" + elem + R"( <2> c = a * b;
  )" + printFn + R"((c[0, 0]);
  )" + printFn + R"((c[dimSize(c, 0) - 1, dimSize(c, 1) - 1]);
  )" + printFn + R"((c[dimSize(c, 0) / 2, dimSize(c, 1) / 2]);
  return 0;
})";
}

TEST(CEmit, MatmulCompiledMatchesInterpreter) {
  // Prime, off-tile shapes through both element kinds: the blocked
  // emitted-C cores must agree with the interpreter's tiled engine. Both
  // accumulate each output element in ascending-k order (k < KC here),
  // so the printed values match bit for bit.
  TempPath af("cemit_mma.mmx"), bf("cemit_mmb.mmx");
  rt::writeMatrixFile(af.path, lcgF32(17, 31, 5));
  rt::writeMatrixFile(bf.path, lcgF32(31, 13, 9));
  std::string srcF = matmulProgram("float", af.path, bf.path, "printFloat");
  std::string cF = emitOk(srcF);
  ASSERT_FALSE(cF.empty());
  EXPECT_NE(cF.find("mmx_matmul_coref"), std::string::npos);
  EXPECT_EQ(compileAndRun(cF, "mmf"), runOk(srcF));

  TempPath ai("cemit_mmai.mmx"), bi("cemit_mmbi.mmx");
  rt::writeMatrixFile(ai.path, lcgI32(23, 19, 3));
  rt::writeMatrixFile(bi.path, lcgI32(19, 29, 7));
  std::string srcI = matmulProgram("int", ai.path, bi.path, "printInt");
  std::string cI = emitOk(srcI);
  ASSERT_FALSE(cI.empty());
  EXPECT_NE(cI.find("mmx_matmul_corei"), std::string::npos);
  EXPECT_EQ(compileAndRun(cI, "mmi"), runOk(srcI));
}

TEST(CEmit, MatmulRunsWithAndWithoutOpenmp) {
  // The emitted matmul must build as plain serial C (pragma ignored) and,
  // under OpenMP, produce the same bytes at any thread count: each row
  // panel is owned by one thread and accumulated in a fixed order.
  TempPath a("cemit_mmo_a.mmx"), b("cemit_mmo_b.mmx");
  rt::writeMatrixFile(a.path, lcgF32(70, 80, 11));
  rt::writeMatrixFile(b.path, lcgF32(80, 90, 13));
  std::string src = matmulProgram("float", a.path, b.path, "printFloat");
  std::string c = emitOk(src);
  ASSERT_FALSE(c.empty());
  EXPECT_NE(c.find("#pragma omp parallel for"), std::string::npos);

  std::string interp = runOk(src);
  ASSERT_FALSE(interp.empty());
  EXPECT_EQ(compileAndRun(c, "mmo_serial", ""), interp);
  EXPECT_EQ(compileAndRun(c, "mmo_omp1", "-fopenmp", "OMP_NUM_THREADS=1 "),
            interp);
  EXPECT_EQ(compileAndRun(c, "mmo_omp4", "-fopenmp", "OMP_NUM_THREADS=4 "),
            interp);
}

TEST(CEmit, MatmulBackendSelectableViaEnv) {
  // The emitted program carries the backend registry mirror: every name
  // accepted by $MMX_BACKEND must run and agree with the interpreter on
  // exactly-representable data (products are exact, so the FMA core
  // rounds identically — see DESIGN.md "Kernel backend registry").
  TempPath a("cemit_be_a.mmx"), b("cemit_be_b.mmx");
  rt::writeMatrixFile(a.path, lcgF32(37, 41, 17));
  rt::writeMatrixFile(b.path, lcgF32(41, 23, 19));
  std::string src = matmulProgram("float", a.path, b.path, "printFloat");
  std::string c = emitOk(src);
  ASSERT_FALSE(c.empty());
  EXPECT_NE(c.find("mmx_backend_select"), std::string::npos);

  std::string interp = runOk(src);
  ASSERT_FALSE(interp.empty());
  for (const char* be : {"scalar", "sse", "avx", "avx2fma"}) {
    if (std::string(be) == "avx2fma" && !rt::findBackend("avx2fma")->available())
      continue; // graceful skip on hosts without AVX2/FMA
    EXPECT_EQ(compileAndRun(c, (std::string("be_") + be).c_str(), "-fopenmp",
                            std::string("MMX_BACKEND=") + be + " "),
              interp)
        << "backend " << be;
  }
}

TEST(CEmit, MatmulBackendUnknownEnvNameFails) {
  TempPath a("cemit_beu_a.mmx"), b("cemit_beu_b.mmx");
  rt::writeMatrixFile(a.path, lcgF32(5, 7, 1));
  rt::writeMatrixFile(b.path, lcgF32(7, 3, 2));
  std::string c =
      emitOk(matmulProgram("float", a.path, b.path, "printFloat"));
  ASSERT_FALSE(c.empty());

  std::string base = std::string(::testing::TempDir()) + "cemit_beu";
  std::ofstream(base + ".c") << c;
  ASSERT_EQ(std::system(("cc -O2 -std=gnu99 -msse4.2 -fopenmp " + base +
                         ".c -o " + base + ".bin -lm 2>" + base + ".err")
                            .c_str()),
            0);
  int rc = std::system(("MMX_BACKEND=bogus " + base + ".bin >" + base +
                        ".out 2>" + base + ".err2")
                           .c_str());
  ASSERT_TRUE(WIFEXITED(rc));
  EXPECT_EQ(WEXITSTATUS(rc), 3); // mmx_fail's runtime-error exit code
  std::ifstream err(base + ".err2");
  std::string msg((std::istreambuf_iterator<char>(err)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(msg.find("unknown backend 'bogus'"), std::string::npos);
  for (const char* ext : {".c", ".bin", ".err", ".err2", ".out"})
    std::remove((base + ext).c_str());
}

TEST(CEmit, MatmulBackendPinnedAtEmitTime) {
  // --backend=<name> bakes MMX_BACKEND_DEFAULT into the program: the
  // compiled-in pin wins over the environment.
  TempPath a("cemit_bep_a.mmx"), b("cemit_bep_b.mmx");
  rt::writeMatrixFile(a.path, lcgF32(11, 13, 23));
  rt::writeMatrixFile(b.path, lcgF32(13, 9, 29));
  std::string src = matmulProgram("float", a.path, b.path, "printFloat");
  auto res = translateXc(src);
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  ir::CEmitOptions eo;
  eo.backend = "scalar";
  auto c = ir::emitC(*res.module, eo);
  ASSERT_TRUE(c.ok) << (c.errors.empty() ? "" : c.errors.front());
  EXPECT_NE(c.code.find("#define MMX_BACKEND_DEFAULT \"scalar\""),
            std::string::npos);
  // Runs fine even when the environment names a different (or bogus)
  // backend — the pin is consulted first.
  EXPECT_EQ(compileAndRun(c.code, "bep", "-fopenmp", "MMX_BACKEND=bogus "),
            runOk(src));

  // The default "auto" emits no pin (the prelude's #ifndef fallback is
  // all that remains), keeping the output stable.
  EXPECT_EQ(c.code.rfind("#define MMX_BACKEND_DEFAULT \"scalar\"", 0), 0u);
  auto cAuto = ir::emitC(*res.module);
  ASSERT_TRUE(cAuto.ok);
  EXPECT_NE(cAuto.code.rfind("#define MMX_BACKEND_DEFAULT", 0), 0u);

  ir::CEmitOptions bad;
  bad.backend = "no\"good";
  auto cBad = ir::emitC(*res.module, bad);
  EXPECT_FALSE(cBad.ok);
}

// ---- memory subsystem (ISSUE 9) -----------------------------------------

std::string slurpFile(const std::string& path) {
  std::ifstream in(path);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Extracts one "key": N counter from flat stats JSON; -1 when absent.
long long jsonCounter(const std::string& json, const std::string& key) {
  size_t pos = json.find("\"" + key + "\"");
  if (pos == std::string::npos) return -1;
  pos = json.find(':', pos);
  if (pos == std::string::npos) return -1;
  return std::strtoll(json.c_str() + pos + 1, nullptr, 10);
}

/// A program whose matrices live and die inside a called function: the
/// emitted C releases its temps at function cleanup, so its alloc/free
/// sequence (and thus the cache counters) lines up with the interpreter's
/// eager releases exactly.
const char* kAllocChurnProgram = R"(
float work(int n) {
  Matrix float <1> t = init(Matrix float <1>, n);
  t = with ([0] <= [i] < [n]) genarray([n], i * 0.5);
  float s = with ([0] <= [j] < [n]) fold(+, 0.0, t[j]);
  return s;
}

int main() {
  float acc = 0.0;
  for (int r = 0; r < 6; r = r + 1) {
    acc = acc + work(32 + r);
  }
  printFloat(acc);
  return 0;
})";

TEST(CEmit, AllocSystemEmissionIsByteIdenticalToGolden) {
  // --alloc=system is the compatibility pin: its output must match the
  // pre-memsys emitter byte for byte (golden captured from the seed).
  std::string src = slurpFile(std::string(MMX_GOLDEN_DIR) + "/memsys_pin.xc");
  std::string golden = slurpFile(std::string(MMX_GOLDEN_DIR) + "/memsys_pin.c");
  ASSERT_FALSE(src.empty());
  ASSERT_FALSE(golden.empty());
  auto res = translateXc(src);
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  ir::CEmitOptions sys;
  sys.boundsChecks = res.boundsChecks;
  sys.plan = res.guardPlan;
  sys.alloc = "system";
  auto c = ir::emitC(*res.module, sys);
  ASSERT_TRUE(c.ok) << (c.errors.empty() ? "" : c.errors.front());
  EXPECT_EQ(c.code, golden);
  EXPECT_EQ(c.code.find("mmx_ms_"), std::string::npos);

  // The default (auto) emission carries the thread-caching runtime and
  // the uninitialized path for the proven fully-written genarrays.
  ir::CEmitOptions dflt;
  dflt.boundsChecks = res.boundsChecks;
  dflt.plan = res.guardPlan;
  auto cMs = ir::emitC(*res.module, dflt);
  ASSERT_TRUE(cMs.ok);
  EXPECT_NE(cMs.code.find("mmx_ms_alloc"), std::string::npos);
  EXPECT_NE(cMs.code.find("mmx_allocv_u"), std::string::npos);
  EXPECT_EQ(cMs.code.find("calloc"), std::string::npos);
}

TEST(CEmit, AllocSelectableViaEnvAndNumericallyIdentical) {
  // Every $MMX_ALLOC strategy must run and print the same bytes as the
  // interpreter — the allocator may never change numerics.
  std::string c = emitOk(kAllocChurnProgram);
  ASSERT_FALSE(c.empty());
  EXPECT_NE(c.find("mmx_ms_select"), std::string::npos);
  std::string interp = runOk(kAllocChurnProgram);
  ASSERT_FALSE(interp.empty());
  for (const char* alloc : {"system", "cache", "arena", "auto"})
    EXPECT_EQ(compileAndRun(c, (std::string("alloc_") + alloc).c_str(),
                            "-fopenmp", std::string("MMX_ALLOC=") + alloc + " "),
              interp)
        << "allocator " << alloc;
}

TEST(CEmit, AllocUnknownEnvNameFailsAtStartup) {
  std::string c = emitOk(kAllocChurnProgram);
  ASSERT_FALSE(c.empty());
  std::string base = std::string(::testing::TempDir()) + "cemit_msu";
  std::ofstream(base + ".c") << c;
  ASSERT_EQ(std::system(("cc -O2 -std=gnu99 -msse4.2 -fopenmp " + base +
                         ".c -o " + base + ".bin -lm 2>" + base + ".err")
                            .c_str()),
            0);
  int rc = std::system(("MMX_ALLOC=bogus " + base + ".bin >" + base +
                        ".out 2>" + base + ".err2")
                           .c_str());
  ASSERT_TRUE(WIFEXITED(rc));
  EXPECT_EQ(WEXITSTATUS(rc), 3); // mmx_fail's runtime-error exit code
  std::string msg = slurpFile(base + ".err2");
  EXPECT_NE(msg.find("unknown allocator 'bogus'"), std::string::npos) << msg;
  // Fails at startup: nothing was printed before the diagnostic.
  EXPECT_EQ(slurpFile(base + ".out"), "");
  for (const char* ext : {".c", ".bin", ".err", ".err2", ".out"})
    std::remove((base + ext).c_str());
}

TEST(CEmit, AllocPinnedAtEmitTime) {
  // --alloc=<name> bakes MMX_ALLOC_DEFAULT into the program: the
  // compiled-in pin wins over the environment.
  auto res = translateXc(kAllocChurnProgram);
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  ir::CEmitOptions eo;
  eo.boundsChecks = res.boundsChecks;
  eo.plan = res.guardPlan;
  eo.alloc = "arena";
  auto c = ir::emitC(*res.module, eo);
  ASSERT_TRUE(c.ok) << (c.errors.empty() ? "" : c.errors.front());
  EXPECT_EQ(c.code.rfind("#define MMX_ALLOC_DEFAULT \"arena\"", 0), 0u);
  EXPECT_EQ(compileAndRun(c.code, "msp", "-fopenmp", "MMX_ALLOC=bogus "),
            runOk(kAllocChurnProgram));

  ir::CEmitOptions bad;
  bad.alloc = "no\"good";
  auto cBad = ir::emitC(*res.module, bad);
  EXPECT_FALSE(cBad.ok);
}

TEST(CEmit, CacheCountersMatchInterpreterExactly) {
  // The machine-independent rt.alloc.cache.* counters must agree between
  // the interpreter and the emitted C on a single-threaded run: the
  // emitted mmx_ms_* runtime mirrors memsys.cpp's size-class math and
  // magazine/depot policy verbatim (classifying on bytes + 32 so both
  // backends see identical class sequences).
  rt::AllocatorOverride pin("cache");
  rt::msTrim(); // empty magazines: the same cold start the binary gets
  rt::MsCacheStats before = rt::msCacheStats();
  RunOutcome interp = runXc(kAllocChurnProgram);
  ASSERT_TRUE(interp.ran) << interp.diagnostics << interp.runtimeError;
  rt::MsCacheStats after = rt::msCacheStats();

  auto res = translateXc(kAllocChurnProgram);
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  ir::CEmitOptions eo;
  eo.boundsChecks = res.boundsChecks;
  eo.plan = res.guardPlan;
  eo.instrument = ir::InstrumentMode::Counters;
  auto c = ir::emitC(*res.module, eo);
  ASSERT_TRUE(c.ok) << (c.errors.empty() ? "" : c.errors.front());

  TempPath json("cemit_mspar.json");
  // MMX_ALLOC pinned explicitly: the ambient environment (the CI
  // sanitizer matrix exports MMX_ALLOC) must not steer the binary away
  // from the strategy the interpreter side was measured under.
  EXPECT_EQ(compileAndRun(c.code, "mspar", "-fopenmp",
                          "MMX_ALLOC=cache OMP_NUM_THREADS=1 MMX_PROF_JSON=" +
                              json.path + " "),
            interp.output);
  std::string stats = slurpFile(json.path);
  ASSERT_FALSE(stats.empty());
  EXPECT_EQ(jsonCounter(stats, "rt.alloc.cache.hits"),
            static_cast<long long>(after.hits - before.hits));
  EXPECT_EQ(jsonCounter(stats, "rt.alloc.cache.misses"),
            static_cast<long long>(after.misses - before.misses));
  EXPECT_EQ(jsonCounter(stats, "rt.alloc.cache.flushes"),
            static_cast<long long>(after.flushes - before.flushes));
  // Both sides snapshot after every program matrix died, with magazines
  // intact: the parked bytes agree too (cachedBytes was 0 post-trim).
  EXPECT_EQ(jsonCounter(stats, "rt.alloc.cache.cachedBytes"),
            static_cast<long long>(after.cachedBytes));
}

TEST(CEmit, RefcountProgramCompiles) {
  std::string src = R"(
int main() {
  refptr float p = rcalloc(float, 4);
  p[0] = 2.0;
  refptr float q = p;
  q[1] = 3.0;
  printFloat(p[0] + p[1]);
  return 0;
})";
  std::string c = emitOk(src);
  ASSERT_FALSE(c.empty());
  EXPECT_EQ(compileAndRun(c, "refcount"), runOk(src));
}

} // namespace
} // namespace mmx::test
