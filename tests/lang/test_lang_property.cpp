// Parameterized property sweeps over the matrix language: with-loop
// identities across ranks/shapes, indexing equivalence against a C++
// reference, matmul against the runtime kernel, and thread-count
// invariance of every parallel construct.
#include <unistd.h>

#include "runtime/kernels.hpp"
#include "runtime/matio.hpp"
#include "xc_helper.hpp"

namespace mmx::test {
namespace {

struct TempPath {
  std::string path;
  // The pid keeps parameterized instances of one test apart when ctest
  // runs them as concurrent processes sharing TempDir.
  explicit TempPath(const std::string& name)
      : path(std::string(::testing::TempDir()) + std::to_string(::getpid()) +
             "_" + name) {}
  ~TempPath() { std::remove(path.c_str()); }
};

// ---- with-loop identity across ranks -------------------------------------

class GenarrayRankP : public ::testing::TestWithParam<int> {};

TEST_P(GenarrayRankP, LinearIndexIdentity) {
  int rank = GetParam();
  // dims 3,4,2,3,... ; element = its own row-major linear index.
  std::vector<int> dims;
  for (int d = 0; d < rank; ++d) dims.push_back(3 + (d % 2));

  std::string dimList, idList, flat = "0";
  for (int d = 0; d < rank; ++d) {
    dimList += (d ? "," : "") + std::to_string(dims[d]);
    idList += (d ? "," : "") + std::string(1, static_cast<char>('a' + d));
    flat = "(" + flat + " * " + std::to_string(dims[d]) + " + " +
           std::string(1, static_cast<char>('a' + d)) + ")";
  }
  std::string zeros;
  for (int d = 0; d < rank; ++d) zeros += (d ? ",0" : "0");

  int64_t total = 1;
  for (int d : dims) total *= d;

  std::string src = "int main() {\n  Matrix int <" + std::to_string(rank) +
                    "> m = with ([" + zeros + "] <= [" + idList + "] < [" +
                    dimList + "]) genarray([" + dimList + "], " + flat +
                    ");\n";
  // Check the last element equals total-1 and a middle one matches.
  std::string lastIdx;
  for (int d = 0; d < rank; ++d)
    lastIdx += (d ? "," : "") + std::to_string(dims[d] - 1);
  src += "  printInt(m[" + lastIdx + "]);\n  return 0;\n}\n";

  EXPECT_EQ(runOk(src), std::to_string(total - 1) + "\n") << src;
}

INSTANTIATE_TEST_SUITE_P(Ranks, GenarrayRankP, ::testing::Values(1, 2, 3, 4),
                         [](const auto& info) {
                           return "rank" + std::to_string(info.param);
                         });

// ---- indexing equivalence against C++ reference slices -----------------

struct SliceCase {
  const char* name;
  const char* selector;        // e.g. "1, 0 : 2, :"
  std::vector<int64_t> expectDims;
  // Expected values computed from m[i][j][k] = 100 i + 10 j + k.
  std::vector<float> expect;
};

class SliceP : public ::testing::TestWithParam<SliceCase> {};

TEST_P(SliceP, MatchesReference) {
  const SliceCase& c = GetParam();
  TempPath out(std::string("slice_") + c.name + ".mmx");
  std::string src = R"(
int main() {
  Matrix float <3> m = with ([0,0,0] <= [i,j,k] < [3,4,5])
      genarray([3,4,5], (float)(i * 100 + j * 10 + k));
  writeMatrix(")" + out.path + R"(", m[)" + c.selector + R"(]);
  return 0;
})";
  runOk(src);
  rt::Matrix got = rt::readMatrixFile(out.path);
  rt::Matrix expect = rt::Matrix::fromF32(c.expectDims, c.expect);
  EXPECT_TRUE(got.equals(expect)) << c.name << ": got " << got.shapeString();
}

INSTANTIATE_TEST_SUITE_P(
    Selectors, SliceP,
    ::testing::Values(
        SliceCase{"row_vector", "1, 2, :", {5}, {120, 121, 122, 123, 124}},
        SliceCase{"mid_plane", "1, :, 2",
                  {4},
                  {102, 112, 122, 132}},
        SliceCase{"block", "0 : 1, 1 : 2, 0 : 1",
                  {2, 2, 2},
                  {10, 11, 20, 21, 110, 111, 120, 121}},
        SliceCase{"full_dim_drop2", ":, 0, 0", {3}, {0, 100, 200}},
        SliceCase{"end_arith", "end, end - 1 : end, 4",
                  {2},
                  {224, 234}},
        SliceCase{"range_single", "2, 1 : 1, :",
                  {1, 5},
                  {210, 211, 212, 213, 214}}),
    [](const auto& info) { return info.param.name; });

// ---- matrix multiply vs the runtime kernel ------------------------------

class MatmulP
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulP, MatchesKernel) {
  auto [m, k, n] = GetParam();
  TempPath ain("mm_a.mmx"), bin("mm_b.mmx"), out("mm_c.mmx");
  rt::Matrix A = rt::Matrix::zeros(rt::Elem::F32, {m, k});
  rt::Matrix B = rt::Matrix::zeros(rt::Elem::F32, {k, n});
  for (int64_t i = 0; i < A.size(); ++i)
    A.f32()[i] = static_cast<float>((i * 7 % 11) - 5) * 0.5f;
  for (int64_t i = 0; i < B.size(); ++i)
    B.f32()[i] = static_cast<float>((i * 5 % 13) - 6) * 0.25f;
  rt::writeMatrixFile(ain.path, A);
  rt::writeMatrixFile(bin.path, B);

  std::string src = R"(
int main() {
  Matrix float <2> a = readMatrix(")" + ain.path + R"(");
  Matrix float <2> b = readMatrix(")" + bin.path + R"(");
  Matrix float <2> c = a * b;
  writeMatrix(")" + out.path + R"(", c);
  return 0;
})";
  runOk(src);
  rt::SerialExecutor ex;
  rt::Matrix expect = rt::matmul(ex, A, B);
  EXPECT_TRUE(rt::readMatrixFile(out.path).equals(expect, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulP,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(2, 3, 4),
                                           std::make_tuple(5, 5, 5),
                                           std::make_tuple(7, 2, 9),
                                           std::make_tuple(16, 16, 16)));

// ---- thread-count invariance --------------------------------------------

class ThreadsP : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThreadsP, ParallelConstructsAreDeterministic) {
  unsigned threads = GetParam();
  const char* src = R"(
Matrix float <1> centre(Matrix float <1> ts) {
  float mean = with ([0] <= [k] < [dimSize(ts, 0)]) fold(+, 0.0, ts[k])
               / dimSize(ts, 0);
  return ts - mean;
}
int main() {
  Matrix float <3> m = synthSsh(6, 5, 12, 33, 2);
  Matrix float <3> c = matrixMap(centre, m, [2]);
  Matrix float <2> sums = with ([0,0] <= [i,j] < [6,5])
      genarray([6,5],
        with ([0] <= [k] < [12]) fold(+, 0.0, c[i,j,k]));
  float worst = with ([0,0] <= [i,j] < [6,5])
      fold(max, 0.0, max(sums[i,j], 0.0 - sums[i,j]));
  printBool(worst < 0.001);
  return 0;
})";
  EXPECT_EQ(runOk(src, threads), "true\n");
}

INSTANTIATE_TEST_SUITE_P(Counts, ThreadsP,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

// ---- fold/genarray algebraic properties -----------------------------

TEST(LangProperty, FoldOverGenarrayIsClosedForm) {
  // sum over genarray(i) for i in [0,n) == n(n-1)/2, several n.
  for (int n : {1, 2, 7, 32, 100}) {
    std::string N = std::to_string(n);
    std::string src = "int main() { Matrix int <1> v = with ([0] <= [i] < [" +
                      N + "]) genarray([" + N +
                      "], i);\n  printFloat(with ([0] <= [i] < [" + N +
                      "]) fold(+, 0.0, (float)(v[i])));\n  return 0; }";
    EXPECT_EQ(runOk(src), std::to_string(n * (n - 1) / 2) + "\n") << n;
  }
}

TEST(LangProperty, EwOpsCommuteWithIndexing) {
  // (a + b)[sel] == a[sel] + b[sel] for a random range selector.
  const char* src = R"(
int main() {
  Matrix float <1> a = with ([0] <= [i] < [40])
      genarray([40], (float)(i) * 0.5);
  Matrix float <1> b = with ([0] <= [i] < [40])
      genarray([40], (float)(40 - i));
  Matrix float <1> lhs = (a + b)[5 : 20];
  Matrix float <1> rhs = a[5 : 20] + b[5 : 20];
  float diff = with ([0] <= [i] < [16])
      fold(max, 0.0, max(lhs[i] - rhs[i], rhs[i] - lhs[i]));
  printFloat(diff);
  return 0;
})";
  EXPECT_EQ(runOk(src), "0\n");
}

TEST(LangProperty, LogicalIndexPartition) {
  // v[mask] and v[!mask-equivalent] partition v: sizes sum to n.
  const char* src = R"(
int main() {
  Matrix int <1> v = (0 :: 30);
  Matrix int <1> small = v[v < 11];
  Matrix int <1> large = v[v >= 11];
  printInt(dimSize(small, 0) + dimSize(large, 0));
  printInt(small[end]);
  printInt(large[0]);
  return 0;
})";
  EXPECT_EQ(runOk(src), "31\n10\n11\n");
}

} // namespace
} // namespace mmx::test
