// Golden source for the --alloc=system byte-identity pin (see
// test_cemit.cpp AllocSystemEmissionIsByteIdenticalToGolden). Deterministic
// and file-free: a parallel genarray chain, a matmul, and a fold, so the
// emitted program exercises mmx_alloc/mmx_release, the with-loop
// lowering, and the kernel prelude without embedding any host paths.
// memsys_pin.c next to this file is the seed emission at default flags;
// emitting with alloc="system" must reproduce it byte for byte.
int main() {
  int n = 24;
  Matrix float <2> a = init(Matrix float <2>, n, n);
  Matrix float <2> b = init(Matrix float <2>, n, n);
  a = with ([0,0] <= [i,j] < [n,n]) genarray([n,n], i * 0.5 + j * 0.25);
  b = with ([0,0] <= [i,j] < [n,n]) genarray([n,n], (i + 1) * 1.0 / (j + 1));
  Matrix float <2> c = a * b;
  float total = with ([0,0] <= [x,y] < [n,n]) fold(+, 0.0, c[x, y]);
  printFloat(total / (n * n));
  return 0;
}
