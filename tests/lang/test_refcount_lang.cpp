// Refcount extension coverage (paper §III-B): allocation, sharing,
// counts, automatic free at zero (observed through rclive()).
#include "xc_helper.hpp"

namespace mmx::test {
namespace {

TEST(RefcountLang, AllocIndexAndStore) {
  const char* src = R"(
    int main() {
      refptr float p = rcalloc(float, 5);
      p[0] = 1.5;
      p[4] = 2.5;
      printFloat(p[0] + p[4]);
      return 0;
    })";
  EXPECT_EQ(runOk(src), "4\n");
}

TEST(RefcountLang, CopySharesAndCounts) {
  const char* src = R"(
    int main() {
      refptr int p = rcalloc(int, 3);
      printInt(rccount(p));
      refptr int q = p;
      printInt(rccount(p));
      q[1] = 42;
      printInt(p[1]);  // shared storage
      return 0;
    })";
  EXPECT_EQ(runOk(src), "1\n2\n42\n");
}

TEST(RefcountLang, ReassignmentReleasesOldBuffer) {
  const char* src = R"(
    int main() {
      int before = rclive();
      refptr int p = rcalloc(int, 8);
      refptr int q = rcalloc(int, 8);
      printInt(rclive() - before);  // 2 live buffers
      q = p;                        // old q buffer freed at count 0
      printInt(rclive() - before);  // 1 live buffer
      printInt(rccount(p));         // p and q share it
      return 0;
    })";
  EXPECT_EQ(runOk(src), "2\n1\n2\n");
}

TEST(RefcountLang, FunctionReturnKeepsBufferAlive) {
  const char* src = R"(
    refptr float make(int n) {
      refptr float p = rcalloc(float, n);
      p[0] = 3.5;
      return p;
    }
    int main() {
      int before = rclive();
      refptr float p = make(4);
      printFloat(p[0]);
      printInt(rclive() - before);
      return 0;
    })";
  EXPECT_EQ(runOk(src), "3.5\n1\n");
}

TEST(RefcountLang, MatricesAreBuiltOnTheSameCells) {
  // §III-C: "we build the underlying implementation of matrices on top of
  // the reference counting pointers" — rccount works on matrices too.
  const char* src = R"(
    int main() {
      Matrix float <1> a = init(Matrix float <1>, 4);
      printInt(rccount(a));
      Matrix float <1> b = a;
      printInt(rccount(a));
      return 0;
    })";
  EXPECT_EQ(runOk(src), "1\n2\n");
}

TEST(RefcountLangErrors, TypeChecked) {
  expectError("int main() { refptr int p = rcalloc(float, 3); return 0; }",
              "type mismatch");
}

TEST(RefcountLangErrors, CountNeedsRefptr) {
  expectError("int main() { printInt(rccount(5)); return 0; }",
              "rccount needs");
}

} // namespace
} // namespace mmx::test
