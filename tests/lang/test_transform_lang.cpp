// Transformation-extension edge cases beyond the figure reproductions:
// every clause on divisible and non-divisible extents, clause pipelines,
// the derived specs (tile, unroll), and the semantic checks.
#include "xc_helper.hpp"

namespace mmx::test {
namespace {

/// Builds a program computing out[i] = a[i]*3 + 1 over `n` elements with
/// the given transform clauses, then printing the max abs deviation from
/// the untransformed formula (0 when the transform preserved semantics).
std::string scaled1D(int n, const std::string& clauses) {
  std::string N = std::to_string(n);
  return R"(
int main() {
  Matrix float <1> a = with ([0] <= [i] < [)" + N + R"(])
      genarray([)" + N + R"(], (float)(i) * 0.25);
  Matrix float <1> b = init(Matrix float <1>, )" + N + R"();
  b = with ([0] <= [i] < [)" + N + R"(])
      genarray([)" + N + R"(], a[i] * 3.0 + 1.0)
      )" + clauses + R"(;
  float diff = with ([0] <= [i] < [)" + N + R"(])
      fold(max, 0.0, max(b[i] - (a[i] * 3.0 + 1.0),
                         (a[i] * 3.0 + 1.0) - b[i]));
  printFloat(diff);
  return 0;
})";
}

struct TransformCase {
  const char* name;
  const char* clauses;
  int n;
};

class TransformP : public ::testing::TestWithParam<TransformCase> {};

TEST_P(TransformP, PreservesSemantics) {
  EXPECT_EQ(runOk(scaled1D(GetParam().n, GetParam().clauses)), "0\n")
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Clauses, TransformP,
    ::testing::Values(
        TransformCase{"split_divisible",
                      "transform { split i by 4, iin, iout; }", 64},
        TransformCase{"split_nondivisible",
                      "transform { split i by 4, iin, iout; }", 61},
        TransformCase{"split_by_1",
                      "transform { split i by 1, iin, iout; }", 17},
        TransformCase{"split_larger_than_extent",
                      "transform { split i by 64, iin, iout; }", 10},
        TransformCase{"vectorize_direct", "transform { vectorize i; }", 37},
        TransformCase{"vectorize_tiny", "transform { vectorize i; }", 3},
        TransformCase{"unroll_divisible", "transform { unroll i by 4; }",
                      64},
        TransformCase{"unroll_nondivisible", "transform { unroll i by 4; }",
                      63},
        TransformCase{"unroll_by_1", "transform { unroll i by 1; }", 9},
        TransformCase{"parallelize", "transform { parallelize i; }", 50},
        TransformCase{"split_then_vectorize_out",
                      "transform { split i by 8, iin, iout; vectorize iin; }",
                      77},
        TransformCase{"split_then_unroll_inner",
                      "transform { split i by 8, iin, iout; unroll iin by "
                      "2; }",
                      80},
        TransformCase{"split_parallel_out_vector_in",
                      "transform { split i by 4, iin, iout; vectorize iin; "
                      "parallelize iout; }",
                      53}),
    [](const auto& info) { return info.param.name; });

TEST(TransformLang, UnrollReplicatesBodyInIr) {
  auto res = translateXc(scaled1D(32, "transform { unroll i by 4; }"));
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  std::string irText = ir::dump(*res.module);
  // Coarsened loop plus a remainder loop over the original name.
  EXPECT_NE(irText.find("for (%i_u"), std::string::npos) << irText;
  // Four replicated index reconstructions inside the main loop.
  int count = 0;
  size_t pos = 0;
  while ((pos = irText.find("(%i_u * 4)", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_GE(count, 4);
}

TEST(TransformLang, TransformOnInnerFoldLoop) {
  // Clauses may target the fold's k loop generated inside the genarray.
  const char* src = R"(
int main() {
  Matrix float <3> mat = synthSsh(4, 6, 32, 5, 2);
  Matrix float <2> a = init(Matrix float <2>, 4, 6);
  a = with ([0,0] <= [i,j] < [4,6])
      genarray([4,6],
        with ([0] <= [k] < [32]) fold(+, 0.0, mat[i,j,k]))
      transform { split k by 8, kin, kout; unroll kin by 2; };
  Matrix float <2> b = with ([0,0] <= [i,j] < [4,6])
      genarray([4,6],
        with ([0] <= [k] < [32]) fold(+, 0.0, mat[i,j,k]));
  float diff = with ([0,0] <= [i,j] < [4,6])
      fold(max, 0.0, max(a[i,j] - b[i,j], b[i,j] - a[i,j]));
  printFloat(diff);
  return 0;
})";
  EXPECT_EQ(runOk(src), "0\n");
}

TEST(TransformLang, StridedVectorAccessUsesGatherCorrectly) {
  // Vectorized loop reading with stride 2: exercises the non-contiguous
  // (gather) path of the 4-wide interpreter mode.
  const char* src = R"(
int main() {
  Matrix float <1> a = with ([0] <= [i] < [64])
      genarray([64], (float)(i));
  Matrix float <1> b = init(Matrix float <1>, 32);
  b = with ([0] <= [i] < [32])
      genarray([32], a[i * 2])
      transform { vectorize i; };
  float diff = with ([0] <= [i] < [32])
      fold(max, 0.0, max(b[i] - (float)(i * 2), (float)(i * 2) - b[i]));
  printFloat(diff);
  return 0;
})";
  EXPECT_EQ(runOk(src), "0\n");
}

TEST(TransformLang, IntVectorization) {
  const char* src = R"(
int main() {
  Matrix int <1> a = (0 :: 49);
  Matrix int <1> b = init(Matrix int <1>, 50);
  b = with ([0] <= [i] < [50])
      genarray([50], a[i] * 2 - 3)
      transform { vectorize i; };
  printInt(b[0]);
  printInt(b[49]);
  return 0;
})";
  EXPECT_EQ(runOk(src), "-3\n95\n");
}

TEST(TransformLang, ReorderRequiresPerfectNest) {
  // j is not nested inside i here (i is the only loop).
  expectError(scaled1D(16, "transform { reorder i, j; }"), "no loop named");
}

TEST(TransformLang, SplitFactorValidated) {
  expectError(scaled1D(16, "transform { split i by 0, a, b; }"),
              "split factor must be positive");
}

TEST(TransformLang, UnrollFactorValidated) {
  expectError(scaled1D(16, "transform { unroll i by 0; }"),
              "unroll factor must be positive");
}

TEST(TransformLang, UnknownUnrollTarget) {
  expectError(scaled1D(16, "transform { unroll z by 2; }"),
              "no loop named 'z'");
}

TEST(TransformLang, ClausesApplyInOrder) {
  // Splitting twice: the second split targets a loop created by the first.
  EXPECT_EQ(runOk(scaled1D(64,
                           "transform { split i by 16, iin, iout; "
                           "split iin by 4, iii, iio; }")),
            "0\n");
}

TEST(TransformLang, TransformKeywordsAreContextual) {
  // `split`, `by`, `tile`, `unroll` remain usable as identifiers in host
  // code — the context-aware scanner only recognizes them inside
  // transform blocks.
  const char* src = R"(
int main() {
  int split = 2;
  int by = 3;
  int tile = 4;
  int unroll = 5;
  printInt(split * by + tile * unroll);
  return 0;
})";
  EXPECT_EQ(runOk(src), "26\n");
}

} // namespace
} // namespace mmx::test
