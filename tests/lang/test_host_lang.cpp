// Host-language (CMINUS) feature coverage: scalars, operators, control
// flow, functions, scoping, and the diagnostics the type checker must
// produce.
#include "xc_helper.hpp"

namespace mmx::test {
namespace {

TEST(HostLang, ArithmeticAndPrecedence) {
  EXPECT_EQ(runOk("int main() { printInt(2 + 3 * 4); return 0; }"), "14\n");
  EXPECT_EQ(runOk("int main() { printInt((2 + 3) * 4); return 0; }"),
            "20\n");
  EXPECT_EQ(runOk("int main() { printInt(10 % 3); printInt(10 / 3); "
                  "return 0; }"),
            "1\n3\n");
  EXPECT_EQ(runOk("int main() { printInt(2 - 3 - 4); return 0; }"), "-5\n");
}

TEST(HostLang, FloatArithmeticAndCast) {
  EXPECT_EQ(runOk("int main() { printFloat(1.5 + 2.25); return 0; }"),
            "3.75\n");
  EXPECT_EQ(runOk("int main() { printFloat((float)(7) / 2.0); return 0; }"),
            "3.5\n");
  EXPECT_EQ(runOk("int main() { printInt((int)(3.99)); return 0; }"),
            "3\n");
  // int widens to float implicitly.
  EXPECT_EQ(runOk("int main() { printFloat(1 + 0.5); return 0; }"),
            "1.5\n");
}

TEST(HostLang, BooleansAndShortCircuit) {
  EXPECT_EQ(runOk("int main() { printBool(true && false); "
                  "printBool(true || false); printBool(!false); "
                  "return 0; }"),
            "false\ntrue\ntrue\n");
  EXPECT_EQ(runOk("int main() { printBool(1 < 2 && 2.5 >= 2.5); return 0; }"),
            "true\n");
}

TEST(HostLang, IfElseChains) {
  const char* src = R"(
    int classify(int x) {
      if (x < 0) { return 0 - 1; }
      else if (x == 0) { return 0; }
      else { return 1; }
    }
    int main() {
      printInt(classify(0 - 5));
      printInt(classify(0));
      printInt(classify(9));
      return 0;
    })";
  EXPECT_EQ(runOk(src), "-1\n0\n1\n");
}

TEST(HostLang, DanglingElseBindsToNearestIf) {
  const char* src = R"(
    int main() {
      int x = 5;
      if (x > 0)
        if (x > 10) printInt(1);
        else printInt(2);
      return 0;
    })";
  EXPECT_EQ(runOk(src), "2\n");
}

TEST(HostLang, WhileAndForLoops) {
  EXPECT_EQ(runOk("int main() { int s = 0; int i = 0; "
                  "while (i < 5) { s = s + i; i = i + 1; } "
                  "printInt(s); return 0; }"),
            "10\n");
  EXPECT_EQ(runOk("int main() { int s = 0; "
                  "for (int i = 0; i < 10; i++) { s = s + i; } "
                  "printInt(s); return 0; }"),
            "45\n");
}

TEST(HostLang, NonCanonicalForLowersToWhile) {
  EXPECT_EQ(runOk("int main() { int s = 0; "
                  "for (int i = 10; i > 0; i = i - 2) { s = s + i; } "
                  "printInt(s); return 0; }"),
            "30\n");
}

TEST(HostLang, BreakAndContinue) {
  EXPECT_EQ(runOk("int main() { int s = 0; "
                  "for (int i = 0; i < 100; i++) { "
                  "  if (i >= 5) { break; } "
                  "  if (i % 2 == 0) { continue; } "
                  "  s = s + i; } "
                  "printInt(s); return 0; }"),
            "4\n"); // 1 + 3
}

TEST(HostLang, FunctionsAndRecursion) {
  const char* src = R"(
    int fib(int n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    int main() { printInt(fib(12)); return 0; })";
  EXPECT_EQ(runOk(src), "144\n");
}

TEST(HostLang, VoidFunctions) {
  const char* src = R"(
    void shout(int n) {
      printInt(n * 2);
      return;
    }
    int main() { shout(21); return 0; })";
  EXPECT_EQ(runOk(src), "42\n");
}

TEST(HostLang, ScopingAndShadowing) {
  const char* src = R"(
    int main() {
      int x = 1;
      {
        int x = 2;
        printInt(x);
      }
      printInt(x);
      return 0;
    })";
  EXPECT_EQ(runOk(src), "2\n1\n");
}

TEST(HostLang, IncrementDecrementStatements) {
  EXPECT_EQ(runOk("int main() { int i = 5; i++; i++; i--; printInt(i); "
                  "return 0; }"),
            "6\n");
}

TEST(HostLang, Comments) {
  EXPECT_EQ(runOk("// leading comment\n"
                  "int main() { /* block */ printInt(1); // eol\n"
                  "return 0; }"),
            "1\n");
}

// ---- tuples (host-packaged, §III-B) -------------------------------------

TEST(HostLang, TupleReturnAndDestructuring) {
  const char* src = R"(
    (int, int) divmod(int a, int b) {
      return (a / b, a % b);
    }
    int main() {
      int d = 0;
      int r = 0;
      (d, r) = divmod(17, 5);
      printInt(d);
      printInt(r);
      return 0;
    })";
  EXPECT_EQ(runOk(src), "3\n2\n");
}

TEST(HostLang, TupleVariableDeclarationAndUse) {
  const char* src = R"(
    (int, float, bool) triple() { return (7, 2.5, true); }
    int main() {
      (int, float, bool) t = triple();
      int a = 0;
      float b = 0.0;
      bool c = false;
      (a, b, c) = t;
      printInt(a);
      printFloat(b);
      printBool(c);
      return 0;
    })";
  EXPECT_EQ(runOk(src), "7\n2.5\ntrue\n");
}

TEST(HostLang, TupleLiteralSwap) {
  const char* src = R"(
    int main() {
      int a = 1;
      int b = 2;
      (a, b) = (b, a);
      printInt(a);
      printInt(b);
      return 0;
    })";
  EXPECT_EQ(runOk(src), "2\n1\n");
}

// ---- diagnostics ----------------------------------------------------------

TEST(HostLangErrors, UndeclaredVariable) {
  expectError("int main() { printInt(nope); return 0; }",
              "undeclared variable 'nope'");
}

TEST(HostLangErrors, TypeMismatchInAssignment) {
  expectError("int main() { int x = 0; x = 1.5; return 0; }",
              "type mismatch");
}

TEST(HostLangErrors, RedeclarationInSameScope) {
  expectError("int main() { int x = 0; int x = 1; return 0; }",
              "already declared");
}

TEST(HostLangErrors, CallArityChecked) {
  expectError("int f(int a) { return a; } int main() { return f(1, 2); }",
              "expected 1 arguments, found 2");
}

TEST(HostLangErrors, UnknownFunction) {
  expectError("int main() { return zap(); }", "undeclared function 'zap'");
}

TEST(HostLangErrors, ReturnTypeChecked) {
  expectError("int main() { return true; }", "type mismatch");
}

TEST(HostLangErrors, VoidReturnWithValue) {
  expectError("void f() { return 3; } int main() { return 0; }",
              "void function cannot return a value");
}

TEST(HostLangErrors, MissingMain) {
  expectError("int f() { return 0; }", "no main function");
}

TEST(HostLangErrors, ConditionMustBeBool) {
  expectError("int main() { if (3) { } return 0; }", "expected bool");
}

TEST(HostLangErrors, TupleArityMismatch) {
  expectError("(int, int) f() { return (1, 2); }"
              "int main() { int a = 0; int b = 0; int c = 0;"
              "(a, b, c) = f(); return 0; }",
              "tuple");
}

TEST(HostLangErrors, TupleUsedAsScalar) {
  expectError("int main() { (int, int) t = (1, 2); printInt(t); return 0; }",
              "destructured");
}

TEST(HostLangErrors, SyntaxErrorHasExpectedSet) {
  auto res = translateXc("int main() { int x = ; return 0; }");
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.renderDiagnostics().find("expected one of"), std::string::npos);
}

TEST(HostLangErrors, DuplicateFunction) {
  expectError("int f() { return 0; } int f() { return 1; } "
              "int main() { return 0; }",
              "declared twice");
}

} // namespace
} // namespace mmx::test
