// Shared helper for language-level tests: translate an extended-C source
// with the full default extension set (matrix + refcount + transform) and
// optionally run it on the interpreter.
#pragma once

#include <gtest/gtest.h>

#include "driver/translator.hpp"
#include "ext_matrix/matrix_ext.hpp"
#include "ext_refcount/refcount_ext.hpp"
#include "ext_transform/transform_ext.hpp"
#include "interp/interp.hpp"

namespace mmx::test {

inline driver::Translator& sharedTranslator(driver::TranslateOptions opts = {}) {
  // Cache translators per option set: table construction is the slow part.
  struct Key {
    bool fusion, slice, par, warnPar, strictPar, analyze;
    bool warnShape, strictShape, warnTransform, strictTransform;
    bool optFuse, optElimTemp, optInplace, optAutopar, warnDeadMatrix;
    bool operator<(const Key& o) const {
      return std::tie(fusion, slice, par, warnPar, strictPar, analyze,
                      warnShape, strictShape, warnTransform, strictTransform,
                      optFuse, optElimTemp, optInplace, optAutopar,
                      warnDeadMatrix) <
             std::tie(o.fusion, o.slice, o.par, o.warnPar, o.strictPar,
                      o.analyze, o.warnShape, o.strictShape, o.warnTransform,
                      o.strictTransform, o.optFuse, o.optElimTemp,
                      o.optInplace, o.optAutopar, o.warnDeadMatrix);
    }
  };
  static std::map<Key, std::unique_ptr<driver::Translator>> cache;
  Key k{opts.fusion, opts.sliceElimination, opts.autoParallel,
        opts.warnParallel, opts.strictParallel, opts.analyze,
        opts.warnShape, opts.strictShape, opts.warnTransform,
        opts.strictTransform, opts.optFuse, opts.optElimTemp,
        opts.optInplace, opts.optAutopar, opts.warnDeadMatrix};
  auto it = cache.find(k);
  if (it == cache.end()) {
    auto t = std::make_unique<driver::Translator>();
    t->addExtension(ext_matrix::matrixExtension());
    t->addExtension(ext_refcount::refcountExtension());
    t->addExtension(ext_transform::transformExtension());
    EXPECT_TRUE(t->compose(opts)) << t->renderComposeDiagnostics();
    it = cache.emplace(k, std::move(t)).first;
  }
  return *it->second;
}

inline driver::TranslateResult translateXc(const std::string& src,
                                           driver::TranslateOptions opts = {}) {
  return sharedTranslator(opts).translate("test.xc", src);
}

struct RunOutcome {
  bool translated = false;
  bool ran = false;
  int exitCode = -1;
  std::string output;
  std::string diagnostics; // rendered, for assertion messages
  std::string runtimeError;
};

inline RunOutcome runXc(const std::string& src, unsigned threads = 1,
                        driver::TranslateOptions opts = {}) {
  RunOutcome out;
  auto res = translateXc(src, opts);
  out.diagnostics = res.renderDiagnostics();
  if (!res.ok) return out;
  out.translated = true;
  std::unique_ptr<rt::Executor> exec = rt::makeExecutor(
      threads > 1 ? rt::ExecutorKind::ForkJoin : rt::ExecutorKind::Serial,
      threads);
  interp::Machine vm(*res.module, *exec);
  try {
    out.exitCode = vm.runMain();
    out.ran = true;
  } catch (const std::exception& e) {
    out.runtimeError = e.what();
  }
  out.output = vm.output();
  return out;
}

/// Expects successful translation + run; returns the program output.
inline std::string runOk(const std::string& src, unsigned threads = 1,
                         driver::TranslateOptions opts = {}) {
  RunOutcome o = runXc(src, threads, opts);
  EXPECT_TRUE(o.translated) << o.diagnostics;
  EXPECT_TRUE(o.ran) << o.runtimeError;
  EXPECT_EQ(o.exitCode, 0) << o.output;
  return o.output;
}

/// Expects a translation-time error mentioning `needle`.
inline void expectError(const std::string& src, const std::string& needle) {
  auto res = translateXc(src);
  EXPECT_FALSE(res.ok) << "program unexpectedly translated";
  std::string rendered = res.renderDiagnostics();
  EXPECT_NE(rendered.find(needle), std::string::npos)
      << "diagnostics were:\n" << rendered;
}

} // namespace mmx::test
