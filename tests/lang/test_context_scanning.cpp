// Context-aware scanning at the language level (paper §VI-A): extension
// keywords are recognized only where the composed parser's state admits
// them, so extensions can reuse words that host programs use as
// identifiers — "it is possible that two different languages will want to
// use the same keyword".
#include "xc_helper.hpp"

namespace mmx::test {
namespace {

TEST(ContextScanning, MinMaxAreOrdinaryIdentifiersInHostCode) {
  // `min`/`max` are matrix-extension fold operators; in expression and
  // declaration positions they scan as identifiers (and the min/max
  // builtin calls still work by name).
  const char* src = R"(
int main() {
  int min = 10;
  int max = 3;
  printInt(min - max);
  Matrix float <1> v = init(Matrix float <1>, 3);
  v[0] = 5.0; v[1] = -2.0; v[2] = 8.0;
  printFloat(with ([0] <= [i] < [3]) fold(min, 99.0, v[i]));
  printFloat(with ([0] <= [i] < [3]) fold(max, -99.0, v[i]));
  return 0;
})";
  EXPECT_EQ(runOk(src), "7\n-2\n8\n");
}

TEST(ContextScanning, MatrixKeywordVsIdentifier) {
  // `Matrix` opens type syntax, which is only admitted in declaration and
  // cast positions; everywhere else the scanner yields an identifier, so
  // a variable named `Matrix` coexists with the matrix type.
  const char* src = R"(
int main() {
  int Matrix = 6;
  Matrix float <1> v = init(Matrix float <1>, 2);
  int doubled = Matrix * 2;   // plain expression: identifier
  v[0] = (float)(doubled);
  printFloat(v[0]);
  return 0;
})";
  EXPECT_EQ(runOk(src), "12\n");
}

TEST(ContextScanning, GenarrayFoldUsableAsVariableNames) {
  // `genarray`/`fold` only follow a with-loop's generator, so they remain
  // free identifiers everywhere else. (`with` itself *starts* extension
  // expressions, so — like `end` — it is effectively reserved wherever an
  // expression may begin; that asymmetry is inherent to the approach.)
  const char* src = R"(
int main() {
  int genarray = 1;
  int fold = 2;
  printInt(genarray + fold);
  printInt(with ([0] <= [i] < [3]) fold(+, 0, genarray + i));
  return 0;
})";
  EXPECT_EQ(runOk(src), "3\n6\n");
}

TEST(ContextScanning, RefcountKeywordsContextual) {
  // `refptr` only opens type syntax; a variable of that name works in
  // expressions. (`rcalloc` starts expressions and is thus reserved
  // there, like `with`.)
  const char* src = R"(
int main() {
  int refptr = 5;
  refptr float p = rcalloc(float, 2);
  p[0] = (float)(2 * refptr);  // after '*' only expressions start
  printFloat(p[0]);
  return 0;
})";
  EXPECT_EQ(runOk(src), "10\n");
}

TEST(ContextScanning, EndShadowedInsideIndices) {
  // `end` can be *declared* (declaration positions admit only ID), but in
  // expressions the extension keyword wins — inside an index it means
  // last-element; elsewhere the extension's own check rejects it, so a
  // variable named `end` is effectively unusable in expressions, exactly
  // like MATLAB (documented behaviour).
  const char* src = R"(
int main() {
  int end = 0;
  Matrix int <1> v = (5 :: 9);
  printInt(v[end]);     // keyword: v[4] = 9
  return 0;
})";
  EXPECT_EQ(runOk(src), "9\n");
  expectError("int main() { int end = 0; printInt(end + 1); return 0; }",
              "inside a matrix index");
}

TEST(ContextScanning, MaximalMunchPrefixedIdentifiers) {
  // Identifiers that merely start with a keyword never get split.
  const char* src = R"(
int main() {
  int withdrawal = 1;
  int formula = 2;     // starts with 'for'
  int interest = 3;    // starts with 'int'
  int ending = 4;      // starts with 'end'
  int minute = 5;      // starts with 'min'
  printInt(withdrawal + formula + interest + ending + minute);
  return 0;
})";
  EXPECT_EQ(runOk(src), "15\n");
}

TEST(ContextScanning, TransformBlockKeywordsDontLeak) {
  const char* src = R"(
int main() {
  int vectorize = 7;
  int parallelize = 8;
  Matrix float <1> a = with ([0] <= [i] < [8])
      genarray([8], (float)(i + vectorize))
      transform { vectorize i; parallelize i; };
  printFloat(a[1]);
  printInt(parallelize);
  return 0;
})";
  EXPECT_EQ(runOk(src), "8\n8\n");
}

} // namespace
} // namespace mmx::test
