// Runtime-profiling tests (mmc --instrument): zero overhead when off,
// source-attributed spans and counter parity with the interpreter's
// metrics registry when on.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "ir/cemit.hpp"
#include "support/metrics.hpp"
#include "xc_helper.hpp"

namespace mmx::test {
namespace {

// A file-free workload touching every instrumented surface: two parallel
// with-loops (lines 4 and 5 of this source), one matmul (line 6), plus
// the allocator/refcount traffic they imply. 96x96 is large enough that
// both backends route the multiply through their tiled engines (the
// interpreter skips tiling counters for tiny operands).
const char* kWorkload = R"(int main() {
  int n = 96;
  Matrix float <2> a = init(Matrix float <2>, n, n);
  a = with ([0,0] <= [i,j] < [n,n]) genarray([n,n], i * 1.0 + j);
  Matrix float <2> b = with ([0,0] <= [i,j] < [n,n]) genarray([n,n], i - j * 0.5);
  Matrix float <2> c = a * b;
  printFloat(c[3, 4]);
  return 0;
})";

ir::CEmitResult emitWith(const std::string& src, ir::InstrumentMode mode) {
  auto res = translateXc(src);
  EXPECT_TRUE(res.ok) << res.renderDiagnostics();
  ir::CEmitOptions eo;
  eo.boundsChecks = res.boundsChecks;
  eo.plan = res.guardPlan;
  eo.instrument = mode;
  eo.sourceManager = res.sourceManager;
  return ir::emitC(*res.module, eo);
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// Compiles emitted C and runs it with MMX_PROF_JSON/MMX_PROF_TRACE
/// pointed at temp files; returns their contents.
struct ProfRun {
  std::string stdoutText, statsJson, traceJson;
};

ProfRun compileAndProfile(const std::string& cCode, const char* tag) {
  ProfRun r;
  std::string base = std::string(::testing::TempDir()) + "instr_" + tag;
  std::ofstream(base + ".c") << cCode;
  std::string cmd = "cc -O2 -std=gnu99 -msse4.2 -fopenmp " + base + ".c -o " +
                    base + ".bin -lm 2>" + base + ".err";
  if (std::system(cmd.c_str()) != 0) {
    ADD_FAILURE() << "cc failed:\n" << readFile(base + ".err");
    return r;
  }
  cmd = "MMX_PROF_JSON=" + base + ".stats MMX_PROF_TRACE=" + base +
        ".trace OMP_NUM_THREADS=2 " + base + ".bin >" + base + ".out";
  if (std::system(cmd.c_str()) != 0) {
    ADD_FAILURE() << "instrumented binary exited nonzero";
    return r;
  }
  r.stdoutText = readFile(base + ".out");
  r.statsJson = readFile(base + ".stats");
  r.traceJson = readFile(base + ".trace");
  for (const char* ext : {".c", ".bin", ".err", ".out", ".stats", ".trace"})
    std::remove((base + ext).c_str());
  return r;
}

/// Pulls the integer value of `"key": N` out of a flat stats JSON text.
long long statValue(const std::string& json, const std::string& key) {
  std::string needle = "\"" + key + "\": ";
  size_t at = json.find(needle);
  if (at == std::string::npos) return -1;
  return std::atoll(json.c_str() + at + needle.size());
}

TEST(Instrument, OffModeIsByteIdenticalAndHookFree) {
  auto res = translateXc(kWorkload);
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  // The two ways of asking for no instrumentation agree byte for byte
  // (same bounds-check mode; only the instrument default differs)...
  ir::CEmitOptions eo;
  eo.boundsChecks = res.boundsChecks;
  eo.plan = res.guardPlan;
  auto plain = ir::emitC(*res.module, eo);
  auto off = emitWith(kWorkload, ir::InstrumentMode::Off);
  ASSERT_TRUE(plain.ok && off.ok);
  EXPECT_EQ(plain.code, off.code);
  // ...and neither leaks any profiling hook or runtime into the output.
  EXPECT_EQ(plain.code.find("MMX_PROF"), std::string::npos);
  EXPECT_EQ(plain.code.find("mmx_prof"), std::string::npos);
}

TEST(Instrument, CountersModeMatchesInterpreterRegistry) {
  // Interpreter side: run the same program with the metrics registry on
  // and capture the runtime counters.
  metrics::reset();
  metrics::enable(true);
  runOk(kWorkload);
  auto snap = metrics::snapshot();
  metrics::enable(false);
  auto counter = [&](const std::string& name) -> long long {
    for (const auto& c : snap.counters)
      if (c.name == name) return static_cast<long long>(c.value);
    return -1;
  };
  auto timerCount = [&](const std::string& name) -> long long {
    for (const auto& t : snap.timers)
      if (t.name == name) return static_cast<long long>(t.count);
    return -1;
  };

  // Emitted-C side: same program, instrumented binary, MMX_PROF_JSON dump.
  auto c = emitWith(kWorkload, ir::InstrumentMode::Counters);
  ASSERT_TRUE(c.ok) << (c.errors.empty() ? "" : c.errors.front());
  ProfRun run = compileAndProfile(c.code, "parity");
  ASSERT_FALSE(run.statsJson.empty());
  EXPECT_TRUE(run.traceJson.empty()) << "counters mode must not trace";

  // Counter parity: both backends report the same schema and agree on the
  // machine-independent values (alloc events, kernel invocations, tiling).
  EXPECT_EQ(statValue(run.statsJson, "rt.alloc.count"),
            counter("rt.alloc.count"));
  EXPECT_EQ(statValue(run.statsJson, "kernel.matmul.tiles"),
            counter("kernel.matmul.tiles"));
  EXPECT_EQ(statValue(run.statsJson, "kernel.matmul.count"),
            timerCount("kernel.matmul"));
  EXPECT_EQ(statValue(run.statsJson, "kernel.matmul.count"), 1);
  // Refcount traffic exists on both sides (exact counts differ by design:
  // the C emitter's borrowed-parameter elision drops retain/release pairs
  // the interpreter performs).
  EXPECT_GT(statValue(run.statsJson, "rt.rc.retains"), 0);
  EXPECT_GT(statValue(run.statsJson, "rt.rc.releases"), 0);
  EXPECT_GT(counter("rt.rc.retains"), 0);
  // Everything allocated was released: live settles at zero, peak above.
  EXPECT_EQ(statValue(run.statsJson, "rt.alloc.liveBytes"), 0);
  EXPECT_GT(statValue(run.statsJson, "rt.alloc.peakBytes"), 0);
}

TEST(Instrument, TraceModeEmitsSourceAttributedSpans) {
  auto c = emitWith(kWorkload, ir::InstrumentMode::Trace);
  ASSERT_TRUE(c.ok);
  // Span labels carry file:line of the originating construct.
  EXPECT_NE(c.code.find("\"with-loop@test.xc:4\""), std::string::npos)
      << c.code.substr(0, 2000);
  EXPECT_NE(c.code.find("\"with-loop@test.xc:5\""), std::string::npos);
  EXPECT_NE(c.code.find("\"matmul@test.xc:6\""), std::string::npos);

  ProfRun run = compileAndProfile(c.code, "trace");
  ASSERT_FALSE(run.traceJson.empty());
  ASSERT_FALSE(run.statsJson.empty()) << "trace mode also dumps stats";
  // The trace is the runtime half of a mergeable timeline: pid 2, named.
  EXPECT_NE(run.traceJson.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(run.traceJson.find("\"mmx runtime\""), std::string::npos);
  EXPECT_NE(run.traceJson.find("with-loop@test.xc:4"), std::string::npos);
  EXPECT_NE(run.traceJson.find("matmul@test.xc:6"), std::string::npos);
  EXPECT_NE(run.traceJson.find("kernel.matmul"), std::string::npos);
  // Attributed spans also aggregate into the stats dump.
  EXPECT_EQ(statValue(run.statsJson, "with-loop@test.xc:4.count"), 1);
  EXPECT_EQ(statValue(run.statsJson, "matmul@test.xc:6.count"), 1);
}

TEST(Instrument, InstrumentedOutputMatchesUninstrumented) {
  // Profiling must not change program behavior: all three modes print the
  // same result the interpreter does.
  std::string expected = runOk(kWorkload);
  auto off = emitWith(kWorkload, ir::InstrumentMode::Off);
  auto cnt = emitWith(kWorkload, ir::InstrumentMode::Counters);
  auto trc = emitWith(kWorkload, ir::InstrumentMode::Trace);
  ASSERT_TRUE(off.ok && cnt.ok && trc.ok);
  EXPECT_EQ(compileAndProfile(off.code, "beh_off").stdoutText, expected);
  EXPECT_EQ(compileAndProfile(cnt.code, "beh_cnt").stdoutText, expected);
  EXPECT_EQ(compileAndProfile(trc.code, "beh_trc").stdoutText, expected);
}

} // namespace
} // namespace mmx::test
