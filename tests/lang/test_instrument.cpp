// Runtime-profiling tests (mmc --instrument): zero overhead when off,
// source-attributed spans and counter parity with the interpreter's
// metrics registry when on.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "ir/cemit.hpp"
#include "support/metrics.hpp"
#include "xc_helper.hpp"

namespace mmx::test {
namespace {

// A file-free workload touching every instrumented surface: two parallel
// with-loops (lines 4 and 5 of this source), one matmul (line 6), plus
// the allocator/refcount traffic they imply. 96x96 is large enough that
// both backends route the multiply through their tiled engines (the
// interpreter skips tiling counters for tiny operands).
const char* kWorkload = R"(int main() {
  int n = 96;
  Matrix float <2> a = init(Matrix float <2>, n, n);
  a = with ([0,0] <= [i,j] < [n,n]) genarray([n,n], i * 1.0 + j);
  Matrix float <2> b = with ([0,0] <= [i,j] < [n,n]) genarray([n,n], i - j * 0.5);
  Matrix float <2> c = a * b;
  printFloat(c[3, 4]);
  return 0;
})";

ir::CEmitResult emitWith(const std::string& src, ir::InstrumentMode mode) {
  auto res = translateXc(src);
  EXPECT_TRUE(res.ok) << res.renderDiagnostics();
  ir::CEmitOptions eo;
  eo.boundsChecks = res.boundsChecks;
  eo.plan = res.guardPlan;
  eo.instrument = mode;
  eo.sourceManager = res.sourceManager;
  return ir::emitC(*res.module, eo);
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// Compiles emitted C and runs it with MMX_PROF_JSON/MMX_PROF_TRACE
/// pointed at temp files; returns their contents.
struct ProfRun {
  std::string stdoutText, statsJson, traceJson;
};

ProfRun compileAndProfile(const std::string& cCode, const char* tag) {
  ProfRun r;
  std::string base = std::string(::testing::TempDir()) + "instr_" + tag;
  std::ofstream(base + ".c") << cCode;
  std::string cmd = "cc -O2 -std=gnu99 -msse4.2 -fopenmp " + base + ".c -o " +
                    base + ".bin -lm 2>" + base + ".err";
  if (std::system(cmd.c_str()) != 0) {
    ADD_FAILURE() << "cc failed:\n" << readFile(base + ".err");
    return r;
  }
  cmd = "MMX_PROF_JSON=" + base + ".stats MMX_PROF_TRACE=" + base +
        ".trace OMP_NUM_THREADS=2 " + base + ".bin >" + base + ".out";
  if (std::system(cmd.c_str()) != 0) {
    ADD_FAILURE() << "instrumented binary exited nonzero";
    return r;
  }
  r.stdoutText = readFile(base + ".out");
  r.statsJson = readFile(base + ".stats");
  r.traceJson = readFile(base + ".trace");
  for (const char* ext : {".c", ".bin", ".err", ".out", ".stats", ".trace"})
    std::remove((base + ext).c_str());
  return r;
}

/// Pulls the integer value of `"key": N` out of a flat stats JSON text.
long long statValue(const std::string& json, const std::string& key) {
  std::string needle = "\"" + key + "\": ";
  size_t at = json.find(needle);
  if (at == std::string::npos) return -1;
  return std::atoll(json.c_str() + at + needle.size());
}

TEST(Instrument, OffModeIsByteIdenticalAndHookFree) {
  auto res = translateXc(kWorkload);
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  // The two ways of asking for no instrumentation agree byte for byte
  // (same bounds-check mode; only the instrument default differs)...
  ir::CEmitOptions eo;
  eo.boundsChecks = res.boundsChecks;
  eo.plan = res.guardPlan;
  auto plain = ir::emitC(*res.module, eo);
  auto off = emitWith(kWorkload, ir::InstrumentMode::Off);
  ASSERT_TRUE(plain.ok && off.ok);
  EXPECT_EQ(plain.code, off.code);
  // ...and neither leaks any profiling hook or runtime into the output.
  EXPECT_EQ(plain.code.find("MMX_PROF"), std::string::npos);
  EXPECT_EQ(plain.code.find("mmx_prof"), std::string::npos);
}

TEST(Instrument, CountersModeMatchesInterpreterRegistry) {
  // Interpreter side: run the same program with the metrics registry on
  // and capture the runtime counters.
  metrics::reset();
  metrics::enable(true);
  runOk(kWorkload);
  auto snap = metrics::snapshot();
  metrics::enable(false);
  auto counter = [&](const std::string& name) -> long long {
    for (const auto& c : snap.counters)
      if (c.name == name) return static_cast<long long>(c.value);
    return -1;
  };
  auto timerCount = [&](const std::string& name) -> long long {
    for (const auto& t : snap.timers)
      if (t.name == name) return static_cast<long long>(t.count);
    return -1;
  };

  // Emitted-C side: same program, instrumented binary, MMX_PROF_JSON dump.
  auto c = emitWith(kWorkload, ir::InstrumentMode::Counters);
  ASSERT_TRUE(c.ok) << (c.errors.empty() ? "" : c.errors.front());
  ProfRun run = compileAndProfile(c.code, "parity");
  ASSERT_FALSE(run.statsJson.empty());
  EXPECT_TRUE(run.traceJson.empty()) << "counters mode must not trace";

  // Counter parity: both backends report the same schema and agree on the
  // machine-independent values (alloc events, kernel invocations, tiling).
  EXPECT_EQ(statValue(run.statsJson, "rt.alloc.count"),
            counter("rt.alloc.count"));
  EXPECT_EQ(statValue(run.statsJson, "kernel.matmul.tiles"),
            counter("kernel.matmul.tiles"));
  EXPECT_EQ(statValue(run.statsJson, "kernel.matmul.count"),
            timerCount("kernel.matmul"));
  EXPECT_EQ(statValue(run.statsJson, "kernel.matmul.count"), 1);
  // Refcount traffic exists on both sides (exact counts differ by design:
  // the C emitter's borrowed-parameter elision drops retain/release pairs
  // the interpreter performs).
  EXPECT_GT(statValue(run.statsJson, "rt.rc.retains"), 0);
  EXPECT_GT(statValue(run.statsJson, "rt.rc.releases"), 0);
  EXPECT_GT(counter("rt.rc.retains"), 0);
  // Everything allocated was released: live settles at zero, peak above.
  EXPECT_EQ(statValue(run.statsJson, "rt.alloc.liveBytes"), 0);
  EXPECT_GT(statValue(run.statsJson, "rt.alloc.peakBytes"), 0);
}

TEST(Instrument, TraceModeEmitsSourceAttributedSpans) {
  auto c = emitWith(kWorkload, ir::InstrumentMode::Trace);
  ASSERT_TRUE(c.ok);
  // Span labels carry file:line of the originating construct.
  EXPECT_NE(c.code.find("\"with-loop@test.xc:4\""), std::string::npos)
      << c.code.substr(0, 2000);
  EXPECT_NE(c.code.find("\"with-loop@test.xc:5\""), std::string::npos);
  EXPECT_NE(c.code.find("\"matmul@test.xc:6\""), std::string::npos);

  ProfRun run = compileAndProfile(c.code, "trace");
  ASSERT_FALSE(run.traceJson.empty());
  ASSERT_FALSE(run.statsJson.empty()) << "trace mode also dumps stats";
  // The trace is the runtime half of a mergeable timeline: pid 2, named.
  EXPECT_NE(run.traceJson.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(run.traceJson.find("\"mmx runtime\""), std::string::npos);
  EXPECT_NE(run.traceJson.find("with-loop@test.xc:4"), std::string::npos);
  EXPECT_NE(run.traceJson.find("matmul@test.xc:6"), std::string::npos);
  EXPECT_NE(run.traceJson.find("kernel.matmul"), std::string::npos);
  // Attributed spans also aggregate into the stats dump.
  EXPECT_EQ(statValue(run.statsJson, "with-loop@test.xc:4.count"), 1);
  EXPECT_EQ(statValue(run.statsJson, "matmul@test.xc:6.count"), 1);
}

TEST(Instrument, InstrumentedOutputMatchesUninstrumented) {
  // Profiling must not change program behavior: all three modes print the
  // same result the interpreter does.
  std::string expected = runOk(kWorkload);
  auto off = emitWith(kWorkload, ir::InstrumentMode::Off);
  auto cnt = emitWith(kWorkload, ir::InstrumentMode::Counters);
  auto trc = emitWith(kWorkload, ir::InstrumentMode::Trace);
  ASSERT_TRUE(off.ok && cnt.ok && trc.ok);
  EXPECT_EQ(compileAndProfile(off.code, "beh_off").stdoutText, expected);
  EXPECT_EQ(compileAndProfile(cnt.code, "beh_cnt").stdoutText, expected);
  EXPECT_EQ(compileAndProfile(trc.code, "beh_trc").stdoutText, expected);
}

TEST(Instrument, HistogramCountsMatchInterpreterRegistry) {
  // ISSUE 10 acceptance: the log2-bucketed histograms must report the same
  // event counts from the interpreter's metrics registry and the emitted
  // C mmx_prof layer when the program runs single-threaded.
  metrics::reset();
  metrics::enable(true);
  runOk(kWorkload);
  auto snap = metrics::snapshot();
  metrics::enable(false);
  auto histCount = [&](const std::string& name) -> long long {
    for (const auto& h : snap.histograms)
      if (h.name == name) return static_cast<long long>(h.count);
    return -1;
  };

  auto c = emitWith(kWorkload, ir::InstrumentMode::Counters);
  ASSERT_TRUE(c.ok) << (c.errors.empty() ? "" : c.errors.front());
  ProfRun run = compileAndProfile(c.code, "histparity");
  ASSERT_FALSE(run.statsJson.empty());

  // Allocation-size histogram: one record per rt alloc on both sides, so
  // the counts agree exactly (rt.alloc.count parity is already pinned).
  EXPECT_EQ(statValue(run.statsJson, "rt.alloc.size.count"),
            histCount("rt.alloc.size"));
  EXPECT_GT(statValue(run.statsJson, "rt.alloc.size.count"), 0);
  // Kernel-latency histogram: one record per matmul call on both sides.
  EXPECT_EQ(statValue(run.statsJson, "kernel.matmul.latency_ns.count"),
            histCount("kernel.matmul.latency_ns"));
  EXPECT_EQ(statValue(run.statsJson, "kernel.matmul.latency_ns.count"), 1);
  // Full quantile schema present in the emitted dump.
  for (const char* stem : {"rt.alloc.size", "kernel.matmul.latency_ns"})
    for (const char* suffix : {".sum", ".p50", ".p95", ".p99", ".max"})
      EXPECT_GE(statValue(run.statsJson, std::string(stem) + suffix), 0)
          << stem << suffix << " missing:\n"
          << run.statsJson;
}

TEST(Instrument, EmittedProgramWritesCrashJsonOnSegv) {
  // ISSUE 10 acceptance: the translated program's flight recorder produces
  // a valid $MMX_CRASH_JSON. MMX_DEBUG_CRASH=segv faults at dump time, so
  // the dump carries the finished run's counters.
  auto c = emitWith(kWorkload, ir::InstrumentMode::Counters);
  ASSERT_TRUE(c.ok);
  std::string base = std::string(::testing::TempDir()) + "instr_crash";
  std::ofstream(base + ".c") << c.code;
  std::string cmd = "cc -O2 -std=gnu99 -msse4.2 -fopenmp " + base +
                    ".c -o " + base + ".bin -lm 2>" + base + ".err";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << readFile(base + ".err");
  cmd = "MMX_CRASH_JSON=" + base + ".crash MMX_DEBUG_CRASH=segv " + base +
        ".bin >/dev/null 2>&1";
  EXPECT_NE(std::system(cmd.c_str()), 0) << "the run must die on SIGSEGV";
  std::string json = readFile(base + ".crash");
  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("\"crash.signal\": 11"), std::string::npos) << json;
  EXPECT_NE(json.find("\"crash.signalName\": \"SIGSEGV\""),
            std::string::npos);
  EXPECT_NE(json.find("\"rt.alloc.count\": "), std::string::npos)
      << "dump must carry the finished run's counters";
  EXPECT_NE(json.find("\"backtrace\": ["), std::string::npos);
  size_t lastNonWs = json.find_last_not_of(" \n\t");
  ASSERT_NE(lastNonWs, std::string::npos);
  EXPECT_EQ(json[lastNonWs], '}');
  for (const char* ext : {".c", ".bin", ".err", ".crash"})
    std::remove((base + ext).c_str());
}

TEST(Instrument, EmittedProgramIntervalExportEmitsJsonl) {
  // ISSUE 10 pillar 4 in the emitted runtime: $MMX_STATS_INTERVAL_MS spawns
  // the sampler thread; the stream must carry export.seq-stamped object
  // lines with the run's counters as deltas.
  auto c = emitWith(kWorkload, ir::InstrumentMode::Counters);
  ASSERT_TRUE(c.ok);
  std::string base = std::string(::testing::TempDir()) + "instr_export";
  std::ofstream(base + ".c") << c.code;
  std::string cmd = "cc -O2 -std=gnu99 -msse4.2 -fopenmp " + base +
                    ".c -o " + base + ".bin -lm 2>" + base + ".err";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << readFile(base + ".err");
  cmd = "MMX_STATS_INTERVAL_MS=5 MMX_STATS_JSONL=" + base + ".jsonl " +
        base + ".bin >/dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  std::ifstream in(base + ".jsonl");
  ASSERT_TRUE(in.good());
  size_t lines = 0;
  bool sawAlloc = false;
  for (std::string line; std::getline(in, line);) {
    if (line.empty()) continue;
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    std::string seqKey = "\"export.seq\": " + std::to_string(lines);
    EXPECT_NE(line.find(seqKey), std::string::npos) << line;
    if (line.find("\"rt.alloc.count\": ") != std::string::npos)
      sawAlloc = true;
    ++lines;
  }
  EXPECT_GE(lines, 2u) << "sync first line + final flush at minimum";
  EXPECT_TRUE(sawAlloc) << "alloc deltas never surfaced in the stream";
  for (const char* ext : {".c", ".bin", ".err", ".jsonl"})
    std::remove((base + ext).c_str());
}

TEST(Instrument, EmittedProgramPmuRowsOrGracefulSkip) {
  // --perf-counters parity in the emitted runtime: with MMX_PERF_COUNTERS
  // set, a capable host reports kernel.matmul.<backend>.pmu.* rows, every
  // other host reports only the presence-only pmu.skipped counter. Either
  // way the run succeeds and the dump stays well-formed.
  auto c = emitWith(kWorkload, ir::InstrumentMode::Counters);
  ASSERT_TRUE(c.ok);
  std::string base = std::string(::testing::TempDir()) + "instr_pmu";
  std::ofstream(base + ".c") << c.code;
  std::string cmd = "cc -O2 -std=gnu99 -msse4.2 -fopenmp " + base +
                    ".c -o " + base + ".bin -lm 2>" + base + ".err";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << readFile(base + ".err");
  cmd = "MMX_PERF_COUNTERS=1 MMX_PROF_JSON=" + base + ".stats " + base +
        ".bin >/dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  std::string json = readFile(base + ".stats");
  ASSERT_FALSE(json.empty());
  bool sampled = json.find(".pmu.cycles\": ") != std::string::npos;
  bool skipped = json.find("\"pmu.skipped\": ") != std::string::npos;
  EXPECT_TRUE(sampled != skipped)
      << "exactly one of sampled/skipped must hold:\n"
      << json;
  if (sampled) {
    EXPECT_NE(json.find(".pmu.instructions\": "), std::string::npos);
    EXPECT_NE(json.find(".pmu.cacheMisses\": "), std::string::npos);
    EXPECT_NE(json.find(".pmu.branchMisses\": "), std::string::npos);
  }
  for (const char* ext : {".c", ".bin", ".err", ".stats"})
    std::remove((base + ext).c_str());
}

} // namespace
} // namespace mmx::test
