// Transformation-legality verification (dependence analysis): legal
// clause pipelines must translate warning-free and agree between the
// interpreter and the emitted C at 1 and 8 threads; illegal clauses must
// be diagnosed with the witness access pair, escalate to errors under
// --strict-transform, and stay silent under -Wno-transform. Also covers
// the -O1 autopar promotion and the analyze-mode diagnostic dedup.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "analysis/dataflow.hpp"
#include "ir/cemit.hpp"
#include "xc_helper.hpp"

namespace mmx::test {
namespace {

/// 13x17 elementwise map with a clause pipeline appended — carries no
/// dependence, so every structurally valid pipeline is legal. Prints the
/// max abs deviation from the untransformed formula.
std::string mapped2D(const std::string& clauses) {
  return R"(
int main() {
  Matrix float <2> a = with ([0,0] <= [u,v] < [13,17])
      genarray([13,17], (float)(u * 17 + v) * 0.25);
  Matrix float <2> b = init(Matrix float <2>, 13, 17);
  b = with ([0,0] <= [i,j] < [13,17])
      genarray([13,17], a[i,j] * 3.0 + 1.0)
      )" + clauses + R"(;
  float diff = with ([0,0] <= [i,j] < [13,17])
      fold(max, 0.0, max(b[i,j] - (a[i,j] * 3.0 + 1.0),
                         (a[i,j] * 3.0 + 1.0) - b[i,j]));
  printFloat(diff);
  return 0;
})";
}

/// A nest whose body advances the recurrence v[i+1] = f(v[i]) through a
/// helper call: dependence carried by i with distance (1,*). The sum it
/// prints is deterministic at any thread count (the nest demotes to
/// serial), so illegal clauses applied in warning mode still run.
std::string recurrence2D(const std::string& clauses) {
  return R"(
float relax(Matrix float <1> v, int i) {
  v[i + 1] = v[i] * 0.5 + 1.0;
  return v[i + 1];
}
int main() {
  Matrix float <1> v = with ([0] <= [k] < [8]) genarray([8], (float)k);
  Matrix float <2> b = init(Matrix float <2>, 5, 7);
  b = with ([0,0] <= [i,j] < [5,7])
      genarray([5,7], relax(v, i) + (float)j)
      )" + clauses + R"(;
  printFloat(with ([0,0] <= [x,y] < [5,7]) fold(+, 0.0, b[x,y]));
  return 0;
})";
}

/// Compiles emitted C with the system compiler and runs it twice, with
/// OMP_NUM_THREADS pinned to 1 and 8; returns {out1, out8}.
std::pair<std::string, std::string> compileAndRunBoth(
    const std::string& cCode, const std::string& tag) {
  std::string base = std::string(::testing::TempDir()) + "legal_" + tag;
  std::string cPath = base + ".c";
  std::string binPath = base + ".bin";
  std::ofstream(cPath) << cCode;
  std::string cmd = "cc -O2 -std=gnu99 -msse4.2 -fopenmp " + cPath +
                    " -o " + binPath + " -lm 2>" + base + ".err";
  if (std::system(cmd.c_str()) != 0) {
    std::ifstream err(base + ".err");
    std::string msg((std::istreambuf_iterator<char>(err)),
                    std::istreambuf_iterator<char>());
    ADD_FAILURE() << "cc failed:\n" << msg;
    return {};
  }
  auto run = [&](const char* threads) {
    std::string outPath = base + ".out";
    std::string env = std::string("OMP_NUM_THREADS=") + threads + " ";
    if (std::system((env + binPath + " >" + outPath).c_str()) != 0) {
      ADD_FAILURE() << "emitted binary exited nonzero";
      return std::string();
    }
    std::ifstream out(outPath);
    return std::string((std::istreambuf_iterator<char>(out)),
                       std::istreambuf_iterator<char>());
  };
  std::string o1 = run("1");
  std::string o8 = run("8");
  std::remove(cPath.c_str());
  std::remove(binPath.c_str());
  std::remove((base + ".out").c_str());
  std::remove((base + ".err").c_str());
  return {o1, o8};
}

bool hasTransformWarning(const driver::TranslateResult& res) {
  for (const auto& d : res.diagnostics)
    if (d.extension == "transform" && d.severity != Severity::Note)
      return true;
  return false;
}

// --- clause-fuzz corpus --------------------------------------------------
//
// Pipelines drawn (seed 0x5eed) from the clause pool over the [i,j] nest;
// every combination is legal on the dependence-free mapped2D program.
// Each runs on the interpreter at 1 and 8 threads and as emitted C under
// OMP_NUM_THREADS=1/8; all four outputs must agree ("0\n": the transform
// preserved semantics).
struct FuzzCase {
  const char* name;
  const char* clauses;
};

class LegalityFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(LegalityFuzz, InterpAndEmittedCAgreeAt1And8Threads) {
  std::string src = mapped2D(GetParam().clauses);

  driver::TranslateOptions strict;
  strict.strictTransform = true;
  auto res = translateXc(src, strict);
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  EXPECT_FALSE(hasTransformWarning(res)) << res.renderDiagnostics();

  EXPECT_EQ(runOk(src), "0\n") << GetParam().name;
  EXPECT_EQ(runOk(src, 8), "0\n") << GetParam().name;

  auto c = ir::emitC(*res.module);
  ASSERT_TRUE(c.ok) << (c.errors.empty() ? "" : c.errors.front());
  auto [o1, o8] = compileAndRunBoth(c.code, GetParam().name);
  EXPECT_EQ(o1, "0\n") << GetParam().name;
  EXPECT_EQ(o8, "0\n") << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Pipelines, LegalityFuzz,
    ::testing::Values(
        FuzzCase{"split_i", "transform { split i by 4, iin, iout; }"},
        FuzzCase{"split_j_nondiv", "transform { split j by 5, jin, jout; }"},
        FuzzCase{"unroll_i", "transform { unroll i by 2; }"},
        FuzzCase{"unroll_j_nondiv", "transform { unroll j by 3; }"},
        FuzzCase{"interchange_ij", "transform { interchange i, j; }"},
        FuzzCase{"reorder_ji", "transform { reorder j, i; }"},
        FuzzCase{"tile_4x4", "transform { tile i, j by 4, 4; }"},
        FuzzCase{"vectorize_j", "transform { vectorize j; }"},
        FuzzCase{"parallelize_i", "transform { parallelize i; }"},
        FuzzCase{"split_vec_par",
                 "transform { split j by 4, jin, jout; vectorize jin; "
                 "parallelize i; }"},
        FuzzCase{"interchange_then_par",
                 "transform { interchange i, j; parallelize j; }"},
        FuzzCase{"tile_unroll",
                 "transform { tile i, j by 2, 8; unroll jin by 2; }"},
        FuzzCase{"reorder_roundtrip",
                 "transform { reorder j, i; reorder i, j; }"},
        FuzzCase{"split_interchange_in",
                 "transform { split i by 2, iin, iout; "
                 "interchange iin, j; }"},
        FuzzCase{"par_and_vec",
                 "transform { parallelize i; vectorize j; }"}),
    [](const auto& info) { return info.param.name; });

// --- illegal clauses: witness diagnostics --------------------------------

TEST(TransformLegality, ReorderReversingDependenceWarnsWithWitness) {
  auto res = translateXc(recurrence2D("transform { reorder j, i; }"));
  ASSERT_TRUE(res.ok) << res.renderDiagnostics(); // warning mode still ok
  std::string diag = res.renderDiagnostics();
  EXPECT_NE(diag.find("reorder: the new loop order reverses a dependence "
                      "on 'v' (distance (1,*))"),
            std::string::npos)
      << diag;
  EXPECT_NE(diag.find("witness: store to 'v' here"), std::string::npos)
      << diag;
  EXPECT_NE(diag.find("witness: load of 'v' here"), std::string::npos)
      << diag;
}

TEST(TransformLegality, InterchangeReversingDependenceWarns) {
  auto res = translateXc(recurrence2D("transform { interchange i, j; }"));
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  std::string diag = res.renderDiagnostics();
  EXPECT_NE(diag.find("interchange: the new loop order reverses a "
                      "dependence on 'v'"),
            std::string::npos)
      << diag;
}

TEST(TransformLegality, ParallelizeCarriedLoopWarns) {
  auto res = translateXc(recurrence2D("transform { parallelize i; }"));
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  std::string diag = res.renderDiagnostics();
  EXPECT_NE(diag.find("parallelize 'i': loop-carried dependence on 'v'"),
            std::string::npos)
      << diag;
  EXPECT_NE(diag.find("iterations are not independent"), std::string::npos)
      << diag;
}

TEST(TransformLegality, StrictTransformTurnsWarningIntoError) {
  driver::TranslateOptions strict;
  strict.strictTransform = true;
  auto res = translateXc(recurrence2D("transform { reorder j, i; }"), strict);
  EXPECT_FALSE(res.ok);
  bool sawError = false;
  for (const auto& d : res.diagnostics)
    if (d.severity == Severity::Error && d.extension == "transform")
      sawError = true;
  EXPECT_TRUE(sawError) << res.renderDiagnostics();
}

TEST(TransformLegality, WnoTransformSilencesTheWarning) {
  driver::TranslateOptions quiet;
  quiet.warnTransform = false;
  auto res = translateXc(recurrence2D("transform { reorder j, i; }"), quiet);
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  EXPECT_FALSE(hasTransformWarning(res)) << res.renderDiagnostics();
}

TEST(TransformLegality, IllegalClauseAppliedInWarningModeStaysDeterministic) {
  // Warning mode applies the clause anyway (the -Wshape precedent); the
  // reordered recurrence is deterministic, so 1- and 8-thread runs agree.
  std::string src = recurrence2D("transform { reorder j, i; }");
  RunOutcome o1 = runXc(src, 1);
  RunOutcome o8 = runXc(src, 8);
  ASSERT_TRUE(o1.ran && o8.ran);
  EXPECT_EQ(o1.output, o8.output);
}

TEST(TransformLegality, LegalityCheckingNeverChangesEmittedCode) {
  // The verifier only reads the IR: emitted C for a legal pipeline must
  // be byte-identical with checking on, off, and strict.
  std::string src = mapped2D(
      "transform { split j by 4, jin, jout; vectorize jin; parallelize i; }");
  driver::TranslateOptions def, quiet, strict;
  quiet.warnTransform = false;
  strict.strictTransform = true;
  auto emit = [&](driver::TranslateOptions o) {
    auto res = translateXc(src, o);
    EXPECT_TRUE(res.ok) << res.renderDiagnostics();
    if (!res.ok) return std::string();
    auto c = ir::emitC(*res.module);
    EXPECT_TRUE(c.ok);
    return c.code;
  };
  std::string base = emit(def);
  EXPECT_EQ(base, emit(quiet));
  EXPECT_EQ(base, emit(strict));
}

TEST(TransformLegality, InterchangeRejectsNonNestedLoops) {
  expectError(mapped2D("transform { interchange i, q; }"),
              "interchange: no loop named 'q'");
  expectError(mapped2D("transform { interchange i, i; }"),
              "interchange: loops must be distinct");
}

// --- -O1 autopar ---------------------------------------------------------

/// Host for-nest over matrices with no carried dependence: the §III-C
/// auto-parallelizer ignores host loops, so only -O1 autopar can promote
/// it. The scalar `s` is written and read within one iteration
/// (privatizable) and never read after the loop.
const char* kHostMapSrc = R"(
int main() {
  Matrix float <2> a = with ([0,0] <= [u,v] < [9,11])
      genarray([9,11], (float)(u * 11 + v));
  Matrix float <2> b = init(Matrix float <2>, 9, 11);
  for (int i = 0; i < 9; i++) {
    for (int j = 0; j < 11; j++) {
      float s = a[i, j] * 2.0;
      b[i, j] = s + 1.0;
    }
  }
  printFloat(with ([0,0] <= [x,y] < [9,11]) fold(+, 0.0, b[x,y]));
  return 0;
})";

TEST(Autopar, PromotesDependenceFreeHostNest) {
  driver::TranslateOptions o1;
  o1.optAutopar = true;
  auto res = translateXc(kHostMapSrc, o1);
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  bool promoted = false;
  for (auto& f : res.module->functions)
    analysis::forEachStmt(*f->body, [&](const ir::Stmt& s) {
      if (s.k == ir::Stmt::K::For && s.parallel &&
          s.parSrc == ir::Stmt::Par::Proven)
        promoted = true;
    });
  EXPECT_TRUE(promoted) << ir::dump(*res.module);
}

TEST(Autopar, PromotedNestAgreesAcrossBackendsAndThreadCounts) {
  driver::TranslateOptions o1;
  o1.optFuse = o1.optElimTemp = o1.optInplace = o1.optAutopar = true;
  std::string serial = runOk(kHostMapSrc);
  EXPECT_EQ(runOk(kHostMapSrc, 1, o1), serial);
  EXPECT_EQ(runOk(kHostMapSrc, 8, o1), serial);

  auto res = translateXc(kHostMapSrc, o1);
  ASSERT_TRUE(res.ok);
  auto c = ir::emitC(*res.module);
  ASSERT_TRUE(c.ok);
  auto [e1, e8] = compileAndRunBoth(c.code, "autopar_host");
  EXPECT_EQ(e1, serial);
  EXPECT_EQ(e8, serial);
}

TEST(Autopar, RecurrenceIsBlockedNotPromoted) {
  driver::TranslateOptions o1;
  o1.optAutopar = true;
  std::string src = R"(
int main() {
  Matrix float <1> v = with ([0] <= [k] < [64]) genarray([64], (float)k);
  for (int i = 0; i < 63; i++) {
    v[i + 1] = v[i] * 0.5 + 1.0;
  }
  printFloat(with ([0] <= [x] < [64]) fold(+, 0.0, v[x]));
  return 0;
})";
  auto res = translateXc(src, o1);
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  for (auto& f : res.module->functions)
    analysis::forEachStmt(*f->body, [&](const ir::Stmt& s) {
      EXPECT_NE(s.parSrc, ir::Stmt::Par::Proven) << ir::dump(*res.module);
    });
  EXPECT_EQ(runOk(src, 1, o1), runOk(src));
}

TEST(Autopar, OffByDefaultAndAtO0) {
  auto res = translateXc(kHostMapSrc); // defaults: every pass off
  ASSERT_TRUE(res.ok);
  for (auto& f : res.module->functions)
    analysis::forEachStmt(*f->body, [&](const ir::Stmt& s) {
      EXPECT_NE(s.parSrc, ir::Stmt::Par::Proven);
    });
}

// --- analyze-mode diagnostic dedup/ordering ------------------------------

TEST(TransformLegality, AnalyzeDiagnosticsSortedGroupedAndUnique) {
  // Two passes warn on this program (the legality verifier at sema time,
  // the parallel-safety demotion after optimization) out of source order;
  // analyze mode must deliver them sorted by location, with witness notes
  // still attached behind their parent, and with no exact duplicates.
  driver::TranslateOptions an;
  an.analyze = true;
  auto res = translateXc(
      recurrence2D("transform { parallelize i; reorder j, i; }"), an);
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();

  const auto& ds = res.diagnostics;
  ASSERT_FALSE(ds.empty());
  EXPECT_NE(ds[0].severity, Severity::Note);
  uint32_t lastHead = 0;
  for (size_t i = 0; i < ds.size(); ++i) {
    if (ds[i].severity == Severity::Note) continue;
    EXPECT_GE(ds[i].range.begin.offset, lastHead)
        << "analyze diagnostics not sorted by location:\n"
        << res.renderDiagnostics();
    lastHead = ds[i].range.begin.offset;
  }
  // No two warnings/errors may be exact duplicates. (Notes are excluded:
  // distinct findings can legitimately cite the same witness pair.)
  for (size_t i = 0; i < ds.size(); ++i) {
    if (ds[i].severity == Severity::Note) continue;
    for (size_t j = i + 1; j < ds.size(); ++j) {
      if (ds[j].severity == Severity::Note) continue;
      EXPECT_FALSE(ds[i].severity == ds[j].severity &&
                   ds[i].range.begin.offset == ds[j].range.begin.offset &&
                   ds[i].message == ds[j].message &&
                   ds[i].extension == ds[j].extension)
          << "duplicate diagnostic survived dedup: " << ds[i].message;
    }
  }
}

TEST(TransformLegality, AnalyzeReportCarriesDependSection) {
  driver::TranslateOptions an;
  an.analyze = true;
  auto res = translateXc(recurrence2D(""), an);
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  EXPECT_NE(res.analysisReport.find("depend:"), std::string::npos)
      << res.analysisReport;
  EXPECT_NE(res.analysisReport.find("autopar-promoted="), std::string::npos)
      << res.analysisReport;
}

} // namespace
} // namespace mmx::test
