// The -O1 whole-program optimizer (ir/optimize) end to end (ISSUE 6):
// with-loop fusion, temporary elimination, and in-place updates must
// never change observable behavior — interpreter output, emitted-C
// output, and refcount observations all agree with -O0 — while the
// analysisReport counters pin that each rewrite actually fired. A
// fuzz-style sweep over generated with-loop chains backs the examples.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>

#include "ir/cemit.hpp"
#include "xc_helper.hpp"

namespace mmx::test {
namespace {

driver::TranslateOptions o0() {
  driver::TranslateOptions opts;
  opts.analyze = true;
  return opts;
}

driver::TranslateOptions o1() {
  driver::TranslateOptions opts;
  opts.analyze = true;
  opts.optFuse = opts.optElimTemp = opts.optInplace = true;
  return opts;
}

/// Translate under `opts` and return the `optimizer:` counter line from
/// the analysis report.
std::string counterLine(const std::string& src,
                        driver::TranslateOptions opts) {
  auto res = translateXc(src, opts);
  EXPECT_TRUE(res.ok) << res.renderDiagnostics();
  std::istringstream in(res.analysisReport);
  for (std::string line; std::getline(in, line);)
    if (line.rfind("optimizer:", 0) == 0) return line;
  ADD_FAILURE() << "no optimizer line in:\n" << res.analysisReport;
  return {};
}

/// Runs `src` at -O0 and -O1 on 1 and 4 threads and expects identical
/// output everywhere; returns that output.
std::string expectAgreement(const std::string& src) {
  std::string base = runOk(src, 1, o0());
  EXPECT_EQ(runOk(src, 1, o1()), base) << src;
  EXPECT_EQ(runOk(src, 4, o0()), base) << src;
  EXPECT_EQ(runOk(src, 4, o1()), base) << src;
  return base;
}

// A producer/consumer chain: the consumer loop and the closing fold can
// both absorb their producer, and the intermediates die.
const char* kFusionChain = R"(
int main() {
  Matrix float <2> A = with ([0,0] <= [i,j] < [6,8])
      genarray([6,8], (float)(i * 8 + j));
  Matrix float <2> B = with ([0,0] <= [i,j] < [6,8])
      genarray([6,8], A[i,j] * 2.0 + 1.0);
  printFloat(with ([0,0] <= [x,y] < [6,8]) fold(+, 0.0, B[x,y]));
  return 0;
})";

// The declare-then-overwrite idiom every example uses: the second
// allocation can write straight into the first buffer.
const char* kInplace = R"(
int main() {
  int n = 6;
  Matrix float <2> a = init(Matrix float <2>, n, n);
  a = with ([0,0] <= [i,j] < [n,n]) genarray([n,n], i * 2.0 + j);
  printFloat(a[0, 0]);
  printFloat(a[5, 5]);
  printFloat(with ([0,0] <= [x,y] < [n,n]) fold(+, 0.0, a[x,y]));
  return 0;
})";

// `keep` shares A's buffer and the program *observes the refcount*, so
// the in-place rewrite must stand down (alias-blocked) — rccount still
// prints 2 at -O1.
const char* kAliasObserved = R"(
int main() {
  Matrix float <2> A = with ([0,0] <= [i,j] < [5,7])
      genarray([5,7], (float)(i + j));
  Matrix float <2> keep = A;
  A = with ([0,0] <= [i,j] < [5,7]) genarray([5,7], A[i,j] + 3.0);
  printFloat(A[2, 3]);
  printFloat(keep[2, 3]);
  printInt(rccount(keep));
  return 0;
})";

TEST(Optimize, FusionChainAgreesAndCounts) {
  expectAgreement(kFusionChain);
  EXPECT_EQ(counterLine(kFusionChain, o1()),
            "optimizer: fused=2 temps-eliminated=2 inplace=0 "
            "alias-blocked=0 autopar-promoted=0 autopar-blocked=0");
}

TEST(Optimize, InplaceUpdateAgreesAndCounts) {
  expectAgreement(kInplace);
  EXPECT_EQ(counterLine(kInplace, o1()),
            "optimizer: fused=0 temps-eliminated=0 inplace=1 "
            "alias-blocked=0 autopar-promoted=0 autopar-blocked=0");
}

TEST(Optimize, ObservedAliasBlocksInplace) {
  std::string out = expectAgreement(kAliasObserved);
  EXPECT_NE(out.find("2\n"), std::string::npos) << "rccount must print 2";
  EXPECT_EQ(counterLine(kAliasObserved, o1()),
            "optimizer: fused=1 temps-eliminated=0 inplace=0 "
            "alias-blocked=1 autopar-promoted=0 autopar-blocked=0");
}

TEST(Optimize, O0ReportsAllZeroCounters) {
  // The counters always appear — with explicit zeros when no pass ran.
  EXPECT_EQ(counterLine(kFusionChain, o0()),
            "optimizer: fused=0 temps-eliminated=0 inplace=0 "
            "alias-blocked=0 autopar-promoted=0 autopar-blocked=0");
}

TEST(Optimize, O1LeavesUnoptimizableProgramsByteIdentical) {
  // Scalar control flow and calls offer the passes nothing; -O1 must emit
  // exactly the C that -O0 emits (the stronger cross-version -O0 pin runs
  // in CI against the checked-in examples).
  const char* src = R"(
    int fib(int n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    int main() {
      int acc = 0;
      for (int i = 0; i < 10; i++) { acc = acc + fib(i); }
      printInt(acc);
      return 0;
    })";
  auto emit = [&](driver::TranslateOptions opts) -> std::string {
    auto res = translateXc(src, opts);
    EXPECT_TRUE(res.ok) << res.renderDiagnostics();
    if (!res.ok) return {};
    auto c = ir::emitC(*res.module);
    EXPECT_TRUE(c.ok);
    return c.code;
  };
  std::string base = emit(o0());
  ASSERT_FALSE(base.empty());
  EXPECT_EQ(emit(o1()), base);
}

/// test_cemit-style harness: compile the emitted C and return its stdout.
std::string compileAndRun(const std::string& cCode, const std::string& tag) {
  std::string base = std::string(::testing::TempDir()) + "opt_" + tag;
  std::string cPath = base + ".c";
  std::string binPath = base + ".bin";
  std::ofstream(cPath) << cCode;
  std::string cmd = "cc -O2 -std=gnu99 -msse4.2 -fopenmp " + cPath + " -o " +
                    binPath + " -lm 2>" + base + ".err";
  if (std::system(cmd.c_str()) != 0) {
    std::ifstream err(base + ".err");
    std::string msg((std::istreambuf_iterator<char>(err)),
                    std::istreambuf_iterator<char>());
    ADD_FAILURE() << "cc failed:\n" << msg;
    return {};
  }
  std::string outPath = base + ".out";
  if (std::system((binPath + " >" + outPath).c_str()) != 0) {
    ADD_FAILURE() << "emitted binary exited nonzero";
    return {};
  }
  std::ifstream out(outPath);
  std::string text((std::istreambuf_iterator<char>(out)),
                   std::istreambuf_iterator<char>());
  std::remove(cPath.c_str());
  std::remove(binPath.c_str());
  std::remove(outPath.c_str());
  std::remove((base + ".err").c_str());
  return text;
}

TEST(Optimize, EmittedCAgreesAcrossOptLevels) {
  // Compare the compiled -O1 C against the compiled -O0 C (same backend:
  // the C runtime legitimately differs from the interpreter on handle
  // counts, e.g. rccount prints one extra live handle under both opt
  // levels). Programs without refcount observation also match the
  // interpreter exactly.
  int n = 0;
  for (const char* src : {kFusionChain, kInplace, kAliasObserved}) {
    auto emit = [&](driver::TranslateOptions opts) -> std::string {
      auto res = translateXc(src, opts);
      EXPECT_TRUE(res.ok) << res.renderDiagnostics();
      if (!res.ok) return {};
      auto c = ir::emitC(*res.module);
      EXPECT_TRUE(c.ok) << (c.errors.empty() ? "" : c.errors.front());
      return c.code;
    };
    std::string tag = std::to_string(n++);
    std::string at0 = compileAndRun(emit(o0()), "c0agree_" + tag);
    std::string at1 = compileAndRun(emit(o1()), "c1agree_" + tag);
    EXPECT_EQ(at1, at0) << src;
    if (src != kAliasObserved)
      EXPECT_EQ(at1, runOk(src, 1, o0())) << src;
  }
}

/// Random with-loop chain generator for the fuzz sweep. Every value stays
/// a small integer-valued float, so results are exact and independent of
/// evaluation order; shapes are positive and reads stay in bounds.
std::string randomProgram(uint32_t seed) {
  std::mt19937 rng(seed);
  auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  int rows = pick(2, 7), cols = pick(2, 7);
  std::string shape =
      "[" + std::to_string(rows) + "," + std::to_string(cols) + "]";
  std::ostringstream p;
  p << "int main() {\n";
  int stages = pick(2, 4);
  for (int s = 0; s < stages; ++s) {
    std::string name = "m" + std::to_string(s);
    std::string cell;
    if (s == 0) {
      cell = "(float)(i * " + std::to_string(pick(1, 4)) + " + j)";
    } else {
      std::string prev = "m" + std::to_string(s - 1) + "[i,j]";
      switch (pick(0, 2)) {
        case 0:
          cell = prev + " * " + std::to_string(pick(1, 3)) + ".0 + " +
                 std::to_string(pick(0, 9)) + ".0";
          break;
        case 1:
          cell = prev + " + (float)(i + j * " + std::to_string(pick(1, 3)) +
                 ")";
          break;
        default:
          cell = prev + " - " + std::to_string(pick(1, 5)) + ".0";
          break;
      }
    }
    bool declareFirst = pick(0, 2) == 0; // the inplace-bait idiom
    if (declareFirst)
      p << "  Matrix float <2> " << name << " = init(Matrix float <2>, "
        << rows << ", " << cols << ");\n  " << name;
    else
      p << "  Matrix float <2> " << name;
    p << " = with ([0,0] <= [i,j] < " << shape << ") genarray(" << shape
      << ", " << cell << ");\n";
  }
  std::string last = "m" + std::to_string(stages - 1);
  p << "  printFloat(with ([0,0] <= [x,y] < " << shape
    << ") fold(+, 0.0, " << last << "[x,y]));\n";
  p << "  printFloat(" << last << "[" << pick(0, rows - 1) << ", "
    << pick(0, cols - 1) << "]);\n";
  p << "  return 0;\n}\n";
  return p.str();
}

TEST(Optimize, RandomProgramsAgreeAcrossOptLevels) {
  for (uint32_t seed = 0; seed < 12; ++seed) {
    std::string src = randomProgram(seed);
    SCOPED_TRACE("seed " + std::to_string(seed) + "\n" + src);
    expectAgreement(src);
  }
}

} // namespace
} // namespace mmx::test
