// Matrix extension feature coverage (paper §III): types, operators,
// indexing modes, with-loops, matrixMap, builtins, and the extension's
// semantic checks.
#include "xc_helper.hpp"

namespace mmx::test {
namespace {

TEST(MatrixLang, InitAndElementAccess) {
  const char* src = R"(
    int main() {
      Matrix int <2> m = init(Matrix int <2>, 2, 3);
      m[1, 2] = 7;
      m[0, 0] = m[1, 2] + 1;
      printInt(m[0, 0]);
      printInt(m[1, 2]);
      printInt(m[0, 1]);
      return 0;
    })";
  EXPECT_EQ(runOk(src), "8\n7\n0\n");
}

TEST(MatrixLang, DimSize) {
  const char* src = R"(
    int main() {
      Matrix float <3> m = init(Matrix float <3>, 4, 5, 6);
      printInt(dimSize(m, 0));
      printInt(dimSize(m, 1));
      printInt(dimSize(m, 2));
      return 0;
    })";
  EXPECT_EQ(runOk(src), "4\n5\n6\n");
}

TEST(MatrixLang, ElementWiseOperators) {
  const char* src = R"(
    int main() {
      Matrix float <1> a = init(Matrix float <1>, 3);
      Matrix float <1> b = init(Matrix float <1>, 3);
      a[0] = 1.0; a[1] = 2.0; a[2] = 3.0;
      b[0] = 10.0; b[1] = 20.0; b[2] = 30.0;
      Matrix float <1> c = a + b;
      Matrix float <1> d = b - a;
      Matrix float <1> e = a .* b;
      Matrix float <1> f = b / a;
      printFloat(c[1]);
      printFloat(d[2]);
      printFloat(e[0]);
      printFloat(f[1]);
      return 0;
    })";
  EXPECT_EQ(runOk(src), "22\n27\n10\n10\n");
}

TEST(MatrixLang, ScalarBroadcast) {
  const char* src = R"(
    int main() {
      Matrix float <1> a = init(Matrix float <1>, 3);
      a[0] = 1.0; a[1] = 2.0; a[2] = 3.0;
      Matrix float <1> b = a * 2.0 + 1.0;
      Matrix float <1> c = 10.0 - a;
      printFloat(b[2]);
      printFloat(c[0]);
      return 0;
    })";
  EXPECT_EQ(runOk(src), "7\n9\n");
}

TEST(MatrixLang, IntMatrixPromotesAgainstFloatScalar) {
  // Fig. 8's Line = (x1::x2) * m + b where m, b are floats.
  const char* src = R"(
    int main() {
      Matrix float <1> line = (0 :: 3) * 0.5 + 1.0;
      printFloat(line[0]);
      printFloat(line[3]);
      return 0;
    })";
  EXPECT_EQ(runOk(src), "1\n2.5\n");
}

TEST(MatrixLang, MatrixMultiplyVsElementWise) {
  const char* src = R"(
    int main() {
      Matrix float <2> a = init(Matrix float <2>, 2, 2);
      Matrix float <2> b = init(Matrix float <2>, 2, 2);
      a[0,0] = 1.0; a[0,1] = 2.0; a[1,0] = 3.0; a[1,1] = 4.0;
      b[0,0] = 5.0; b[0,1] = 6.0; b[1,0] = 7.0; b[1,1] = 8.0;
      Matrix float <2> mm = a * b;   // linear algebra
      Matrix float <2> ew = a .* b;  // element-wise
      printFloat(mm[0,0]);
      printFloat(mm[1,1]);
      printFloat(ew[0,0]);
      printFloat(ew[1,1]);
      return 0;
    })";
  EXPECT_EQ(runOk(src), "19\n50\n5\n32\n");
}

TEST(MatrixLang, ComparisonYieldsBoolMatrixForLogicalIndexing) {
  // The paper's §III-A3(d): v % 2 == 1 selects odd rows.
  const char* src = R"(
    int main() {
      Matrix int <1> v = (1 :: 4);       // 1 2 3 4
      Matrix int <2> m = init(Matrix int <2>, 4, 2);
      m[0,0] = 10; m[1,0] = 20; m[2,0] = 30; m[3,0] = 40;
      Matrix int <2> odd = m[v % 2 == 1, :];
      printInt(dimSize(odd, 0));
      printInt(odd[0, 0]);
      printInt(odd[1, 0]);
      return 0;
    })";
  EXPECT_EQ(runOk(src), "2\n10\n30\n");
}

TEST(MatrixLang, RangeAndColonIndexing) {
  const char* src = R"(
    int main() {
      Matrix int <2> m = init(Matrix int <2>, 3, 4);
      m = with ([0,0] <= [i,j] < [3,4]) genarray([3,4], i * 10 + j);
      Matrix int <2> blk = m[0 : 1, 1 : 3];
      printInt(dimSize(blk, 0));
      printInt(dimSize(blk, 1));
      printInt(blk[1, 2]);
      Matrix int <1> row = m[2, :];
      printInt(row[3]);
      Matrix int <1> col = m[:, 0];
      printInt(col[1]);
      return 0;
    })";
  // blk = rows 0..1, cols 1..3 (inclusive); blk[1,2] = m[1,3] = 13.
  EXPECT_EQ(runOk(src), "2\n3\n13\n23\n10\n");
}

TEST(MatrixLang, EndKeywordInIndices) {
  const char* src = R"(
    int main() {
      Matrix int <1> v = (10 :: 15);  // 10..15
      printInt(v[end]);
      printInt(v[end - 2]);
      Matrix int <1> tail = v[end - 1 : end];
      printInt(tail[0]);
      return 0;
    })";
  EXPECT_EQ(runOk(src), "15\n13\n14\n");
}

TEST(MatrixLang, EndIsAnOrdinaryNameOutsideIndices) {
  // Context-aware scanning: `end` can still be declared as a variable
  // (declaration positions only admit ID); only inside expressions does
  // the keyword win.
  const char* src = R"(
    int main() {
      int end = 42;
      Matrix int <1> v = (1 :: 3);
      printInt(v[end - end]);  // end inside an index = last element
      return 0;
    })";
  // end-end = 2-2 = 0 -> v[0] = 1... wait: inside the index, both `end`s
  // are the keyword (value 2), so index 0.
  EXPECT_EQ(runOk(src), "1\n");
}

TEST(MatrixLang, IndexedAssignmentForms) {
  const char* src = R"(
    int main() {
      Matrix float <1> v = init(Matrix float <1>, 6);
      v[:] = 1.0;                 // broadcast everywhere
      v[1 : 3] = 2.0;             // broadcast into a range
      Matrix float <1> w = init(Matrix float <1>, 2);
      w[0] = 8.0; w[1] = 9.0;
      v[4 : 5] = w;               // matrix into a range
      printFloat(v[0]);
      printFloat(v[2]);
      printFloat(v[4]);
      printFloat(v[5]);
      return 0;
    })";
  EXPECT_EQ(runOk(src), "1\n2\n8\n9\n");
}

TEST(MatrixLang, LogicalIndexedStore) {
  const char* src = R"(
    int main() {
      Matrix int <1> v = (1 :: 6);
      v[v % 2 == 0] = 0;
      printInt(v[0]);
      printInt(v[1]);
      printInt(v[5]);
      return 0;
    })";
  EXPECT_EQ(runOk(src), "1\n0\n0\n");
}

TEST(MatrixLang, WithLoopGenarray) {
  const char* src = R"(
    int main() {
      Matrix int <2> sq = with ([0,0] <= [i,j] < [3,3])
          genarray([3,3], i * j);
      printInt(sq[2, 2]);
      printInt(sq[1, 2]);
      return 0;
    })";
  EXPECT_EQ(runOk(src), "4\n2\n");
}

TEST(MatrixLang, WithLoopBoundForms) {
  // <= and < on either side of the generator.
  const char* src = R"(
    int main() {
      Matrix int <1> a = with ([0] <= [i] < [4]) genarray([4], i);
      Matrix int <1> b = with ([0] < [i] <= [3]) genarray([4], i);
      printInt(a[0]); printInt(a[3]);
      printInt(b[1]); printInt(b[3]); printInt(b[0]);
      return 0;
    })";
  // b fills indices 1..3; index 0 stays 0.
  EXPECT_EQ(runOk(src), "0\n3\n1\n3\n0\n");
}

TEST(MatrixLang, GenarrayPartialFill) {
  // Shape is a superset of the generator: untouched cells stay 0.
  const char* src = R"(
    int main() {
      Matrix int <1> v = with ([1] <= [i] < [3]) genarray([5], 9);
      printInt(v[0]); printInt(v[1]); printInt(v[2]);
      printInt(v[3]); printInt(v[4]);
      return 0;
    })";
  EXPECT_EQ(runOk(src), "0\n9\n9\n0\n0\n");
}

TEST(MatrixLang, WithLoopFoldOps) {
  const char* src = R"(
    int main() {
      Matrix float <1> v = init(Matrix float <1>, 4);
      v[0] = 3.0; v[1] = -7.0; v[2] = 2.0; v[3] = 5.0;
      printFloat(with ([0] <= [i] < [4]) fold(+, 100.0, v[i]));
      printFloat(with ([0] <= [i] < [4]) fold(min, 99.0, v[i]));
      printFloat(with ([0] <= [i] < [4]) fold(max, -99.0, v[i]));
      printFloat(with ([0] <= [i] < [3]) fold(*, 1.0, 2.0));
      return 0;
    })";
  EXPECT_EQ(runOk(src), "103\n-7\n5\n8\n");
}

TEST(MatrixLang, NestedWithLoops) {
  // Fig. 1's genarray-around-fold shape.
  const char* src = R"(
    int main() {
      Matrix float <2> m = with ([0,0] <= [i,j] < [3,4])
          genarray([3,4], (float)(i * 4 + j));
      Matrix float <1> rowsum = with ([0] <= [i] < [3])
          genarray([3],
            with ([0] <= [j] < [4]) fold(+, 0.0, m[i, j]));
      printFloat(rowsum[0]);
      printFloat(rowsum[2]);
      return 0;
    })";
  EXPECT_EQ(runOk(src), "6\n38\n"); // 0+1+2+3, 8+9+10+11
}

TEST(MatrixLang, MatrixMapOverThirdDimension) {
  // Fig. 5 equivalence: matrixMap(f, m, [0,1]) == slice loop.
  const char* src = R"(
    Matrix float <2> dbl(Matrix float <2> x) {
      return x * 2.0;
    }
    int main() {
      Matrix float <3> m = with ([0,0,0] <= [i,j,k] < [2,3,4])
          genarray([2,3,4], (float)(i + j + k));
      Matrix float <3> r = matrixMap(dbl, m, [0, 1]);
      printFloat(r[1, 2, 3]);
      printFloat(r[0, 0, 0]);
      return 0;
    })";
  EXPECT_EQ(runOk(src), "12\n0\n");
}

TEST(MatrixLang, MatrixMapParallelMatchesSerial) {
  const char* src = R"(
    Matrix float <1> norm(Matrix float <1> ts) {
      float total = with ([0] <= [i] < [dimSize(ts, 0)]) fold(+, 0.0, ts[i]);
      return ts - total / dimSize(ts, 0);
    }
    int main() {
      Matrix float <3> m = synthSsh(5, 4, 16, 11, 2);
      Matrix float <3> r = matrixMap(norm, m, [2]);
      float s = with ([0,0,0] <= [i,j,k] < [5,4,16]) fold(+, 0.0, r[i,j,k]);
      if (s < 0.001 && s > -0.001) { printStr("ok"); }
      return 0;
    })";
  EXPECT_EQ(runOk(src, 1), "ok\n");
  EXPECT_EQ(runOk(src, 4), "ok\n");
}

TEST(MatrixLang, ReadWriteRoundTrip) {
  std::string path = std::string(::testing::TempDir()) + "rt_lang.mmx";
  std::string src = R"(
    int main() {
      Matrix float <2> m = with ([0,0] <= [i,j] < [3,3])
          genarray([3,3], (float)(i * 3 + j));
      writeMatrix(")" + path + R"(", m);
      Matrix float <2> r = readMatrix(")" + path + R"(");
      printFloat(r[2, 2]);
      return 0;
    })";
  EXPECT_EQ(runOk(src), "8\n");
  std::remove(path.c_str());
}

TEST(MatrixLang, ReadMatrixMetadataCheckedAtRuntime) {
  std::string path = std::string(::testing::TempDir()) + "rt_meta.mmx";
  std::string src = R"(
    int main() {
      Matrix float <2> m = init(Matrix float <2>, 2, 2);
      writeMatrix(")" + path + R"(", m);
      Matrix int <3> bad = readMatrix(")" + path + R"(");
      return 0;
    })";
  RunOutcome o = runXc(src);
  EXPECT_TRUE(o.translated) << o.diagnostics;
  EXPECT_FALSE(o.ran);
  EXPECT_NE(o.runtimeError.find("metadata mismatch"), std::string::npos);
  std::remove(path.c_str());
}

// ---- semantic checks of the extension ----------------------------------

TEST(MatrixLangErrors, GeneratorArityChecked) {
  expectError("int main() { Matrix int <1> v = with ([0,0] <= [i] < [3]) "
              "genarray([3], i); return 0; }",
              "index variables");
}

TEST(MatrixLangErrors, GenarrayShapeArityChecked) {
  expectError("int main() { Matrix int <2> v = with ([0,0] <= [i,j] < "
              "[3,3]) genarray([3], i); return 0; }",
              "genarray shape");
}

TEST(MatrixLangErrors, RankMismatchInArithmetic) {
  expectError("int main() { Matrix float <1> a = init(Matrix float <1>, 2);"
              "Matrix float <2> b = init(Matrix float <2>, 2, 2);"
              "Matrix float <2> c = a + b; return 0; }",
              "same rank");
}

TEST(MatrixLangErrors, ElementTypeMismatch) {
  expectError("int main() { Matrix float <1> a = init(Matrix float <1>, 2);"
              "Matrix int <1> b = init(Matrix int <1>, 2);"
              "Matrix int <1> c = a + b; return 0; }",
              "same element type");
}

TEST(MatrixLangErrors, StarNeedsRank2) {
  expectError("int main() { Matrix float <1> a = init(Matrix float <1>, 2);"
              "Matrix float <1> c = a * a; return 0; }",
              "rank-2");
}

TEST(MatrixLangErrors, SelectorCountChecked) {
  expectError("int main() { Matrix int <2> m = init(Matrix int <2>, 2, 2);"
              "printInt(m[0]); return 0; }",
              "selectors");
}

TEST(MatrixLangErrors, EndOutsideIndexRejected) {
  expectError("int main() { printInt(end); return 0; }",
              "inside a matrix index");
}

TEST(MatrixLangErrors, GenarraySupersetCheckedAtRuntime) {
  // "the shape in the operation must be a superset of the indexes in the
  // generator, which is something that can be checked at runtime".
  RunOutcome o = runXc(
      "int main() { Matrix int <1> v = with ([0] <= [i] < [10]) "
      "genarray([5], i); return 0; }");
  EXPECT_TRUE(o.translated) << o.diagnostics;
  EXPECT_FALSE(o.ran);
  EXPECT_NE(o.runtimeError.find("superset"), std::string::npos);
}

TEST(MatrixLangErrors, MatrixMapSignatureChecked) {
  expectError("Matrix float <2> f(Matrix float <2> x) { return x; }"
              "int main() { Matrix float <3> m = synthSsh(2,2,4,1,1);"
              "Matrix float <3> r = matrixMap(f, m, [2]); return 0; }",
              "signature");
}

TEST(MatrixLangErrors, MatrixMapDimsValidated) {
  expectError("Matrix float <1> f(Matrix float <1> x) { return x; }"
              "int main() { Matrix float <3> m = synthSsh(2,2,4,1,1);"
              "Matrix float <3> r = matrixMap(f, m, [7]); return 0; }",
              "out of range");
}

TEST(MatrixLangErrors, MatrixNeedsInitializer) {
  expectError("int main() { Matrix float <1> v; return 0; }",
              "must be initialized");
}

TEST(MatrixLangErrors, InitDimensionCountChecked) {
  expectError("int main() { Matrix float <2> v = init(Matrix float <2>, 4);"
              " return 0; }",
              "dimension sizes");
}

TEST(MatrixLangErrors, IndexOutOfBoundsAtRuntime) {
  RunOutcome o = runXc(
      "int main() { Matrix int <1> v = init(Matrix int <1>, 3);"
      "printInt(v[7]); return 0; }");
  EXPECT_TRUE(o.translated) << o.diagnostics;
  EXPECT_FALSE(o.ran);
  EXPECT_NE(o.runtimeError.find("out of bounds"), std::string::npos);
}

} // namespace
} // namespace mmx::test
