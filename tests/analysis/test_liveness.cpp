// Backward may-liveness (analysis/liveness) over hand-built IR: live
// ranges end at the last use, branches keep may-reads alive, loop back
// edges carry liveness around, and statements the pass never saw report
// live (the conservative default the optimizer relies on).
#include "analysis/liveness.hpp"

#include <gtest/gtest.h>

#include "ir/ir.hpp"

namespace mmx {
namespace {

using analysis::computeLiveness;
using analysis::Liveness;

ir::ExprPtr mv(int32_t slot) { return ir::var(slot, ir::Ty::Mat); }
ir::ExprPtr iv(int32_t slot) { return ir::var(slot, ir::Ty::I32); }

ir::ExprPtr alloc() {
  std::vector<ir::ExprPtr> args;
  args.push_back(ir::constI(4));
  args.push_back(ir::constI(4));
  return ir::call("initMatrix", std::move(args), ir::Ty::Mat);
}

ir::ExprPtr loadM(int32_t matSlot) {
  return ir::loadFlat(mv(matSlot), ir::constI(0), ir::Ty::I32);
}

TEST(Liveness, LiveRangeEndsAtLastUse) {
  ir::Module m;
  ir::Function* f = m.add("f");
  f->addLocal("m", ir::Ty::Mat);  // 0
  f->addLocal("x", ir::Ty::I32);  // 1

  // m = initMatrix(...); x = m[0]; return x;
  std::vector<ir::StmtPtr> body;
  body.push_back(ir::assign(0, alloc()));
  body.push_back(ir::assign(1, loadM(0)));
  {
    std::vector<ir::ExprPtr> rv;
    rv.push_back(iv(1));
    body.push_back(ir::ret(std::move(rv)));
  }
  const ir::Stmt* s1 = body[0].get();
  const ir::Stmt* s2 = body[1].get();
  const ir::Stmt* s3 = body[2].get();
  f->body = ir::block(std::move(body));

  Liveness live = computeLiveness(*f);
  EXPECT_TRUE(live.isLiveAfter(s1, 0)) << "m is read by the load";
  EXPECT_FALSE(live.isLiveAfter(s1, 1)) << "x is written before any read";
  EXPECT_FALSE(live.isLiveAfter(s2, 0)) << "the load was m's last use";
  EXPECT_TRUE(live.isLiveAfter(s2, 1)) << "x is read by the return";
  EXPECT_FALSE(live.isLiveAfter(s3, 0));
  EXPECT_FALSE(live.isLiveAfter(s3, 1)) << "nothing is live at exit";
}

TEST(Liveness, BranchReadIsMayLive) {
  ir::Module m;
  ir::Function* f = m.add("f");
  f->addLocal("m", ir::Ty::Mat);  // 0
  f->addLocal("x", ir::Ty::I32);  // 1

  // m = initMatrix(...); if (x < 1) { x = m[0]; }  — a read on one path
  // keeps m live on both.
  std::vector<ir::StmtPtr> body;
  body.push_back(ir::assign(0, alloc()));
  ir::StmtPtr thenS = ir::assign(1, loadM(0));
  const ir::Stmt* inThen = thenS.get();
  body.push_back(ir::ifStmt(
      ir::cmp(ir::CmpKind::Lt, iv(1), ir::constI(1)), std::move(thenS),
      nullptr));
  const ir::Stmt* s1 = body[0].get();
  f->body = ir::block(std::move(body));

  Liveness live = computeLiveness(*f);
  EXPECT_TRUE(live.isLiveAfter(s1, 0)) << "may be read in the then-arm";
  EXPECT_FALSE(live.isLiveAfter(inThen, 0)) << "no reads remain";
}

TEST(Liveness, LoopBackEdgeCarriesLiveness) {
  ir::Module m;
  ir::Function* f = m.add("f");
  f->addLocal("m", ir::Ty::Mat);  // 0
  f->addLocal("x", ir::Ty::I32);  // 1
  f->addLocal("i", ir::Ty::I32);  // 2

  // m = initMatrix(...); for (i ...) { x = m[i]; }
  std::vector<ir::StmtPtr> body;
  body.push_back(ir::assign(0, alloc()));
  ir::StmtPtr rd =
      ir::assign(1, ir::loadFlat(mv(0), iv(2), ir::Ty::I32));
  const ir::Stmt* inLoop = rd.get();
  body.push_back(
      ir::forLoop(2, ir::constI(0), ir::constI(8), std::move(rd), "i"));
  const ir::Stmt* s1 = body[0].get();
  f->body = ir::block(std::move(body));

  Liveness live = computeLiveness(*f);
  EXPECT_TRUE(live.isLiveAfter(s1, 0));
  EXPECT_TRUE(live.isLiveAfter(inLoop, 0))
      << "the next iteration reads m again — only the back-edge fixpoint "
         "sees this";
  EXPECT_FALSE(live.isLiveAfter(inLoop, 1)) << "x is dead even in the loop";
}

TEST(Liveness, UnvisitedStatementsReportLive) {
  ir::Module m;
  ir::Function* f = m.add("f");
  f->addLocal("m", ir::Ty::Mat);
  f->body = ir::block({});

  // A statement the pass never saw (dead code, detached nodes) must get
  // the conservative answer: the optimizer then declines to rewrite.
  ir::StmtPtr orphan = ir::assign(0, alloc());
  Liveness live = computeLiveness(*f);
  EXPECT_TRUE(live.isLiveAfter(orphan.get(), 0));
}

} // namespace
} // namespace mmx
