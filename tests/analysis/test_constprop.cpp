// Direct tests for the constant/shape propagation pass
// (analysis/constprop): expression folding including the overflow and
// division edge cases, the shape-symbol kind of the lattice that
// shapecheck and parsafe consume, and joins across ifs / loop headers
// via ConstShapeProp over hand-built IR.
#include "analysis/constprop.hpp"

#include <gtest/gtest.h>

#include <climits>

#include "ir/ir.hpp"

namespace mmx {
namespace {

using analysis::ConstEnv;
using analysis::ConstShapeProp;
using analysis::ConstVal;
using analysis::evalConst;

/// f() with int locals n (0), a (1), b (2), matrices m (3), m2 (4),
/// and loop vars i (5), j (6).
ir::Function* scaffold(ir::Module& m) {
  ir::Function* f = m.add("f");
  f->numParams = 0;
  f->addLocal("n", ir::Ty::I32);
  f->addLocal("a", ir::Ty::I32);
  f->addLocal("b", ir::Ty::I32);
  f->addLocal("m", ir::Ty::Mat);
  f->addLocal("m2", ir::Ty::Mat);
  f->addLocal("i", ir::Ty::I32);
  f->addLocal("j", ir::Ty::I32);
  return f;
}

ir::ExprPtr iv(int32_t slot) { return ir::var(slot, ir::Ty::I32); }
ir::ExprPtr mv(int32_t slot) { return ir::var(slot, ir::Ty::Mat); }

ir::ExprPtr bin(ir::ArithOp op, ir::ExprPtr a, ir::ExprPtr b) {
  return ir::arith(op, std::move(a), std::move(b), ir::Ty::I32);
}

TEST(ConstProp, FoldsIntegerArithmetic) {
  ConstEnv env(8);
  env[0] = ConstVal::intVal(6);

  auto expectFold = [&](const ir::ExprPtr& e, int64_t want) {
    ConstVal v = evalConst(*e, env);
    ASSERT_TRUE(v.isInt());
    EXPECT_EQ(v.i, want);
  };

  expectFold(bin(ir::ArithOp::Add, iv(0), ir::constI(7)), 13);
  expectFold(bin(ir::ArithOp::Sub, ir::constI(3), iv(0)), -3);
  expectFold(bin(ir::ArithOp::Mul, iv(0), iv(0)), 36);
  expectFold(bin(ir::ArithOp::Div, ir::constI(20), iv(0)), 3);
  expectFold(bin(ir::ArithOp::Mod, ir::constI(20), iv(0)), 2);
  expectFold(bin(ir::ArithOp::Min, iv(0), ir::constI(2)), 2);
  expectFold(bin(ir::ArithOp::Max, iv(0), ir::constI(2)), 6);
  expectFold(ir::negE(iv(0), ir::Ty::I32), -6);
  expectFold(ir::cast(ir::Ty::I32, iv(0)), 6);

  // A slot with no binding stays unknown, and poisons any fold.
  EXPECT_FALSE(evalConst(*iv(1), env).isInt());
  EXPECT_FALSE(
      evalConst(*bin(ir::ArithOp::Add, iv(1), ir::constI(1)), env).isInt());
}

TEST(ConstProp, DivisionAndModuloByZeroAreUnknown) {
  // `n / 0` must not fold (and must not trap the compiler) — the runtime
  // error belongs to the program, so the analysis answers "unknown".
  ConstEnv env(8);
  env[0] = ConstVal::intVal(0);
  EXPECT_FALSE(
      evalConst(*bin(ir::ArithOp::Div, ir::constI(5), iv(0)), env).isInt());
  EXPECT_FALSE(
      evalConst(*bin(ir::ArithOp::Mod, ir::constI(5), iv(0)), env).isInt());
}

TEST(ConstProp, FoldsWidenPastInt32Overflow) {
  // The lattice carries int64: INT32_MAX + 1 folds to 2^31, it does not
  // wrap. parsafe relies on this when strides multiply out past 32 bits.
  ConstEnv env(8);
  env[0] = ConstVal::intVal(INT32_MAX);
  env[1] = ConstVal::intVal(INT32_MIN);

  ConstVal grow = evalConst(*bin(ir::ArithOp::Add, iv(0), ir::constI(1)), env);
  ASSERT_TRUE(grow.isInt());
  EXPECT_EQ(grow.i, int64_t{INT32_MAX} + 1);

  ConstVal sq = evalConst(*bin(ir::ArithOp::Mul, iv(0), iv(0)), env);
  ASSERT_TRUE(sq.isInt());
  EXPECT_EQ(sq.i, int64_t{INT32_MAX} * INT32_MAX);

  // -INT32_MIN is UB in 32-bit arithmetic; in the widened lattice it is
  // simply 2^31.
  ConstVal neg = evalConst(*ir::negE(iv(1), ir::Ty::I32), env);
  ASSERT_TRUE(neg.isInt());
  EXPECT_EQ(neg.i, -int64_t{INT32_MIN});

  // INT32_MIN / -1, the other classic trap, folds the same way.
  ConstVal div = evalConst(
      *bin(ir::ArithOp::Div, iv(1), ir::constI(-1)), env);
  ASSERT_TRUE(div.isInt());
  EXPECT_EQ(div.i, -int64_t{INT32_MIN});
}

TEST(ConstProp, ShapeSymbolsTrackDimensionIdentity) {
  // This is the half of the lattice shapecheck/parsafe consume: two slots
  // loaded from the same dimSize(m, d) compare equal; different matrices
  // or different dims do not.
  ConstEnv env(8);
  ConstVal s0 = evalConst(*ir::dimSize(mv(3), ir::constI(0)), env);
  ConstVal s0b = evalConst(*ir::dimSize(mv(3), ir::constI(0)), env);
  ConstVal s1 = evalConst(*ir::dimSize(mv(3), ir::constI(1)), env);
  ConstVal other = evalConst(*ir::dimSize(mv(4), ir::constI(0)), env);

  EXPECT_EQ(s0.k, ConstVal::K::Shape);
  EXPECT_TRUE(s0 == s0b);
  EXPECT_FALSE(s0 == s1) << "same matrix, different dimension";
  EXPECT_FALSE(s0 == other) << "different matrix";

  // The dimension index may itself be a propagated constant...
  env[0] = ConstVal::intVal(1);
  EXPECT_TRUE(evalConst(*ir::dimSize(mv(3), iv(0)), env) == s1);

  // ...but a variable dimension or a non-Var matrix is unknown, and
  // shape symbols do not participate in arithmetic folds.
  env[0] = ConstVal::unknown();
  EXPECT_EQ(evalConst(*ir::dimSize(mv(3), iv(0)), env).k,
            ConstVal::K::Unknown);
  EXPECT_FALSE(
      evalConst(
          *bin(ir::ArithOp::Add, ir::dimSize(mv(3), ir::constI(0)),
               ir::constI(1)),
          env)
          .isInt());
}

TEST(ConstProp, JoinAcrossIfKeepsOnlyAgreeingFacts) {
  ir::Module m;
  ir::Function* f = scaffold(m);
  // n = 7; a = dimSize(m, 0); b = dimSize(m, 0);
  // if (i < 1) { n = 7; a = dimSize(m, 0); b = dimSize(m2, 0); }
  // else       { b = 3; }
  // for (j ...) {}            <- query the env at this loop header
  std::vector<ir::StmtPtr> thenKids;
  thenKids.push_back(ir::assign(0, ir::constI(7)));
  thenKids.push_back(ir::assign(1, ir::dimSize(mv(3), ir::constI(0))));
  thenKids.push_back(ir::assign(2, ir::dimSize(mv(4), ir::constI(0))));

  std::vector<ir::StmtPtr> body;
  body.push_back(ir::assign(0, ir::constI(7)));
  body.push_back(ir::assign(1, ir::dimSize(mv(3), ir::constI(0))));
  body.push_back(ir::assign(2, ir::dimSize(mv(3), ir::constI(0))));
  body.push_back(ir::ifStmt(
      ir::cmp(ir::CmpKind::Lt, iv(5), ir::constI(1)),
      ir::block(std::move(thenKids)), ir::assign(2, ir::constI(3))));
  ir::StmtPtr loop =
      ir::forLoop(6, ir::constI(0), ir::constI(4), ir::block({}), "j");
  const ir::Stmt* loopPtr = loop.get();
  body.push_back(std::move(loop));
  f->body = ir::block(std::move(body));

  ConstShapeProp prop(*f);
  const ConstEnv* env = prop.atLoop(loopPtr);
  ASSERT_NE(env, nullptr);
  // n: both paths agree on 7.
  ASSERT_TRUE((*env)[0].isInt());
  EXPECT_EQ((*env)[0].i, 7);
  // a: both paths bind the same shape symbol.
  EXPECT_TRUE((*env)[1] == ConstVal::shape(3, 0));
  // b: shape(m,0) vs shape(m2,0) vs 3 — the join gives up.
  EXPECT_EQ((*env)[2].k, ConstVal::K::Unknown);
}

TEST(ConstProp, LoopHeaderEnvIsSoundOverTheBackEdge) {
  ir::Module m;
  ir::Function* f = scaffold(m);
  // n = 1; a = 2;
  // for (i = 0; i < 4; i++) {
  //   for (j = 0; j < n; j++) {}   <- inner header env
  //   n = 9;
  // }
  // The inner header sees a=2 (loop-invariant) but NOT n=1: the back edge
  // brings n=9, so only the joined fact — unknown — is sound. The outer
  // loop variable is likewise unknown inside.
  ir::StmtPtr inner =
      ir::forLoop(6, ir::constI(0), iv(0), ir::block({}), "j");
  const ir::Stmt* innerPtr = inner.get();
  std::vector<ir::StmtPtr> outerKids;
  outerKids.push_back(std::move(inner));
  outerKids.push_back(ir::assign(0, ir::constI(9)));
  ir::StmtPtr outer = ir::forLoop(5, ir::constI(0), ir::constI(4),
                                  ir::block(std::move(outerKids)), "i");
  const ir::Stmt* outerPtr = outer.get();

  std::vector<ir::StmtPtr> body;
  body.push_back(ir::assign(0, ir::constI(1)));
  body.push_back(ir::assign(1, ir::constI(2)));
  body.push_back(std::move(outer));
  f->body = ir::block(std::move(body));

  ConstShapeProp prop(*f);
  const ConstEnv* at = prop.atLoop(innerPtr);
  ASSERT_NE(at, nullptr);
  ASSERT_TRUE((*at)[1].isInt());
  EXPECT_EQ((*at)[1].i, 2);
  EXPECT_EQ((*at)[0].k, ConstVal::K::Unknown)
      << "n=1 only holds on the first iteration";
  EXPECT_EQ((*at)[5].k, ConstVal::K::Unknown) << "outer loop var varies";

  // The recorded header env is the post-fixpoint join over ALL iterations
  // (entry n=1 joins back-edge n=9), not the first-entry snapshot — the
  // only env parsafe may trust for every trip through the loop.
  const ConstEnv* atOuter = prop.atLoop(outerPtr);
  ASSERT_NE(atOuter, nullptr);
  EXPECT_EQ((*atOuter)[0].k, ConstVal::K::Unknown);
  ASSERT_TRUE((*atOuter)[1].isInt());
  EXPECT_EQ((*atOuter)[1].i, 2) << "loop-invariant facts survive";

  EXPECT_EQ(prop.atLoop(f->body.get()), nullptr)
      << "non-For statements have no header env";
}

} // namespace
} // namespace mmx
