// Experiment A2 (paper §VI-B): the modular well-definedness analysis over
// attribute-grammar declarations. All shipped extensions pass; synthetic
// broken extensions (missing equations, non-host attribute without a
// default) are caught.
#include "analysis/welldef.hpp"

#include <gtest/gtest.h>

#include "cminus/host_grammar.hpp"
#include "cminus/sema.hpp"
#include "ext_matrix/matrix_ext.hpp"
#include "ext_refcount/refcount_ext.hpp"
#include "ext_transform/transform_ext.hpp"

namespace mmx::analysis {
namespace {

/// Builds the composed grammar + attr registry as the Translator does.
struct Composition {
  grammar::Grammar g;
  attr::Registry reg;
  DiagnosticEngine diags;
  std::unique_ptr<cm::Sema> sema;

  explicit Composition(bool withExtensions) {
    auto host = cm::hostFragment();
    auto tuple = cm::tupleFragment();
    auto matrix = ext_matrix::matrixExtension()->grammarFragment();
    auto rc = ext_refcount::refcountExtension()->grammarFragment();
    auto tf = ext_transform::transformExtension()->grammarFragment();
    std::vector<const ext::GrammarFragment*> frags{&host, &tuple};
    if (withExtensions) {
      frags.push_back(&matrix);
      frags.push_back(&rc);
      frags.push_back(&tf);
    }
    EXPECT_TRUE(ext::composeGrammar(frags, g, diags));
    sema = std::make_unique<cm::Sema>(diags, reg);
    cm::installHostSemantics(*sema);
    if (withExtensions) {
      ext_matrix::matrixExtension()->installSemantics(*sema);
      ext_refcount::refcountExtension()->installSemantics(*sema);
      ext_transform::transformExtension()->installSemantics(*sema);
    }
  }
};

TEST(Welldef, HostAloneIsComplete) {
  Composition c(false);
  WelldefResult r = checkWellDefined(c.g, c.reg);
  EXPECT_TRUE(r.ok) << (r.problems.empty() ? "" : r.problems.front());
}

TEST(Welldef, FullCompositionIsComplete) {
  // "All extensions described above pass this analysis."
  Composition c(true);
  WelldefResult r = checkWellDefined(c.g, c.reg);
  EXPECT_TRUE(r.ok) << (r.problems.empty() ? "" : r.problems.front());
}

TEST(Welldef, MissingEquationIsReportedWithBothParties) {
  Composition c(true);
  // A new attribute that occurs on Primary but has equations nowhere.
  attr::AttrId orphan = c.reg.declareRaw(
      "orphanAttr", attr::AttrKind::Synthesized, "extX");
  c.reg.occursOn(orphan, "Primary");
  WelldefResult r = checkWellDefined(c.g, c.reg);
  ASSERT_FALSE(r.ok);
  // The report names the attribute's extension and a production's
  // extension, so composition failures are attributable.
  bool found = false;
  for (const auto& p : r.problems)
    if (p.find("orphanAttr") != std::string::npos &&
        p.find("extX") != std::string::npos)
      found = true;
  EXPECT_TRUE(found);
}

TEST(Welldef, DefaultEquationSatisfiesAllProductions) {
  Composition c(true);
  attr::AttrId a =
      c.reg.declareRaw("docString", attr::AttrKind::Synthesized, "extDocs");
  c.reg.occursOn(a, "Primary");
  c.reg.synDefault(a, [](const ast::NodePtr&, attr::Evaluator&) {
    return std::any(std::string());
  });
  WelldefResult r = checkWellDefined(c.g, c.reg);
  EXPECT_TRUE(r.ok) << (r.problems.empty() ? "" : r.problems.front());
}

TEST(Welldef, ModularRuleRequiresDefaultsForForeignAttributes) {
  // Even a *currently complete* extension attribute violates the modular
  // rule if it occurs on a host nonterminal without a default: some other
  // extension's productions could never supply equations.
  Composition c(true);
  attr::AttrId a =
      c.reg.declareRaw("cost", attr::AttrKind::Synthesized, "extCost");
  c.reg.occursOn(a, "Primary");
  // Exhaustively add equations for every current Primary production.
  for (const auto& p : c.g.productions())
    if (c.g.nonterminalName(p.lhs) == "Primary")
      c.reg.synRaw(p.name, a, [](const ast::NodePtr&, attr::Evaluator&) {
        return std::any(1);
      });
  EXPECT_TRUE(checkWellDefined(c.g, c.reg).ok);
  WelldefResult modular = checkModularWellDefined(c.g, c.reg);
  ASSERT_FALSE(modular.ok);
  bool mentionsDefault = false;
  for (const auto& p : modular.problems)
    if (p.find("default") != std::string::npos) mentionsDefault = true;
  EXPECT_TRUE(mentionsDefault);
}

TEST(Welldef, InheritedAttributesNeedSupplyOrAutocopy) {
  Composition c(false);
  attr::AttrId env =
      c.reg.declareRaw("env2", attr::AttrKind::Inherited, "host");
  c.reg.occursOn(env, "Expr");
  WelldefResult r = checkWellDefined(c.g, c.reg);
  ASSERT_FALSE(r.ok); // nobody supplies env2 to Expr children
  c.reg.inhAutoCopy(env);
  WelldefResult r2 = checkWellDefined(c.g, c.reg);
  EXPECT_TRUE(r2.ok) << (r2.problems.empty() ? "" : r2.problems.front());
}

TEST(Welldef, UnattachedAttributeIsVacuouslyFine) {
  Composition c(false);
  c.reg.declareRaw("unused", attr::AttrKind::Synthesized, "extY");
  EXPECT_TRUE(checkWellDefined(c.g, c.reg).ok);
  EXPECT_TRUE(checkModularWellDefined(c.g, c.reg).ok);
}

} // namespace
} // namespace mmx::analysis
