// IR lints (analysis/lint): definite initialization and dead stores on
// hand-built IR, plus the exemptions (compiler temps, effectful stores,
// matrix rebinds) and the translator wiring (lints only under --analyze).
#include "analysis/lint.hpp"

#include <gtest/gtest.h>

#include "ir/ir.hpp"
#include "support/diag.hpp"
#include "../lang/xc_helper.hpp"

namespace mmx {
namespace {

std::string lintOne(const ir::Function& f) {
  DiagnosticEngine diags;
  analysis::lintFunction(f, diags);
  SourceManager sm;
  sm.add("<test>", "x = 1;\n"); // file id 0 for hand-stamped ranges
  return diags.render(sm);
}

TEST(Lint, ReadBeforeAssignIsReported) {
  ir::Module m;
  ir::Function* f = m.add("f");
  f->numParams = 0;
  f->addLocal("x", ir::Ty::I32);
  f->addLocal("y", ir::Ty::I32);
  std::vector<ir::StmtPtr> body;
  // y = x + 1 with x never assigned.
  body.push_back(ir::assign(
      1, ir::arith(ir::ArithOp::Add, ir::var(0, ir::Ty::I32), ir::constI(1),
                   ir::Ty::I32)));
  std::vector<ir::ExprPtr> rv;
  rv.push_back(ir::var(1, ir::Ty::I32));
  body.push_back(ir::ret(std::move(rv)));
  f->body = ir::block(std::move(body));
  std::string out = lintOne(*f);
  EXPECT_NE(out.find("'x' may be used before it is assigned"),
            std::string::npos)
      << out;
  EXPECT_EQ(out.find("'y'"), std::string::npos) << out;
}

TEST(Lint, ParamsAndBranchJoinsAreHandled) {
  ir::Module m;
  ir::Function* f = m.add("f");
  f->numParams = 1; // slot 0 is a parameter: initialized by the caller
  f->addLocal("p", ir::Ty::I32);
  f->addLocal("a", ir::Ty::I32);
  f->addLocal("b", ir::Ty::I32);
  std::vector<ir::StmtPtr> body;
  // if (p < 0) { a = 1; } — a assigned on one arm only...
  body.push_back(ir::ifStmt(
      ir::cmp(ir::CmpKind::Lt, ir::var(0, ir::Ty::I32), ir::constI(0)),
      ir::assign(1, ir::constI(1)), nullptr));
  // ... so this read may see an unassigned a; p itself is fine.
  body.push_back(ir::assign(2, ir::arith(ir::ArithOp::Add,
                                         ir::var(1, ir::Ty::I32),
                                         ir::var(0, ir::Ty::I32),
                                         ir::Ty::I32)));
  std::vector<ir::ExprPtr> rv;
  rv.push_back(ir::var(2, ir::Ty::I32));
  body.push_back(ir::ret(std::move(rv)));
  f->body = ir::block(std::move(body));
  std::string out = lintOne(*f);
  EXPECT_NE(out.find("'a' may be used before it is assigned"),
            std::string::npos)
      << out;
  EXPECT_EQ(out.find("'p'"), std::string::npos) << out;
}

TEST(Lint, DeadStoreIsReportedOnce) {
  ir::Module m;
  ir::Function* f = m.add("f");
  f->numParams = 0;
  f->addLocal("x", ir::Ty::I32);
  std::vector<ir::StmtPtr> body;
  body.push_back(ir::assign(0, ir::constI(1))); // overwritten, never read
  body.push_back(ir::assign(0, ir::constI(2)));
  // Dead-store reports require a source range (range-less stores are
  // compiler-synthesized glue and exempt), so stamp one on each assign.
  body[0]->range = SourceRange{{0, 0}, 1};
  body[1]->range = SourceRange{{0, 2}, 3};
  std::vector<ir::ExprPtr> rv;
  rv.push_back(ir::var(0, ir::Ty::I32));
  body.push_back(ir::ret(std::move(rv)));
  f->body = ir::block(std::move(body));
  std::string out = lintOne(*f);
  // Exactly one report: the first store is dead, the second is returned.
  size_t first = out.find("value assigned to 'x' is never used");
  ASSERT_NE(first, std::string::npos) << out;
  EXPECT_EQ(out.find("value assigned to 'x'", first + 1), std::string::npos)
      << out;
}

TEST(Lint, SynthesizedRangelessStoreIsExempt) {
  // Lowering glue (e.g. the index reconstruction a `split` transform
  // inserts) is an Assign with no source range; dead or not, the user
  // never wrote it, so the dead-store lint must stay quiet.
  ir::Module m;
  ir::Function* f = m.add("f");
  f->numParams = 0;
  f->addLocal("q", ir::Ty::I32);
  std::vector<ir::StmtPtr> body;
  body.push_back(ir::assign(0, ir::constI(7))); // dead, but range-less
  body.push_back(ir::ret({ }));
  f->body = ir::block(std::move(body));
  EXPECT_EQ(lintOne(*f), "");
}

TEST(Lint, LoopCarriedUseKeepsStoreAlive) {
  ir::Module m;
  ir::Function* f = m.add("f");
  f->numParams = 0;
  f->addLocal("x", ir::Ty::I32);
  f->addLocal("i", ir::Ty::I32);
  std::vector<ir::StmtPtr> body;
  body.push_back(ir::assign(0, ir::constI(0)));
  // for (i...) { x = x + 1; } — the store feeds the next iteration's read
  // (only visible through the backward back-edge fixpoint).
  body.push_back(ir::forLoop(
      1, ir::constI(0), ir::constI(4),
      ir::assign(0, ir::arith(ir::ArithOp::Add, ir::var(0, ir::Ty::I32),
                              ir::constI(1), ir::Ty::I32)),
      "i"));
  body.push_back(ir::ret({ }));
  f->body = ir::block(std::move(body));
  // x's final value is never read after the loop, but every store IS read
  // by the following iteration (or could be) — no report for the body
  // store; the engine's join keeps it live via the back edge.
  std::string out = lintOne(*f);
  EXPECT_EQ(out.find("never used"), std::string::npos) << out;
}

TEST(Lint, TempsEffectfulStoresAndMatrixRebindsAreExempt) {
  ir::Module m;
  ir::Function* f = m.add("f");
  f->numParams = 0;
  f->addLocal("%t0", ir::Ty::I32);
  f->addLocal("x", ir::Ty::I32);
  f->addLocal("mat", ir::Ty::Mat);
  std::vector<ir::StmtPtr> body;
  // Compiler temp: dead but not user-visible.
  body.push_back(ir::assign(0, ir::constI(1)));
  // Effectful RHS: the store is dead but the call must run.
  std::vector<ir::ExprPtr> args;
  body.push_back(ir::assign(
      1, ir::call("numThreads", std::move(args), ir::Ty::I32)));
  // Matrix rebind: handle assignments manage buffers, never reported.
  body.push_back(ir::assign(
      2, ir::call("initMatrix", [] {
        std::vector<ir::ExprPtr> a;
        a.push_back(ir::constI(2));
        return a;
      }(), ir::Ty::Mat)));
  body.push_back(ir::ret({ }));
  f->body = ir::block(std::move(body));
  EXPECT_EQ(lintOne(*f), "");
}

TEST(LintLang, AnalyzeSurfacesLintsPlainTranslationDoesNot) {
  // `sum` is assigned and never used; `seed` is read before assignment.
  std::string src = R"(
int main() {
  int seed;
  int sum;
  sum = seed + 1;
  return 0;
}
)";
  auto plain = test::translateXc(src);
  ASSERT_TRUE(plain.ok) << plain.renderDiagnostics();
  EXPECT_TRUE(plain.diagnostics.empty()) << "lints must not fire without --analyze";

  driver::TranslateOptions opts;
  opts.analyze = true;
  auto analyzed = test::translateXc(src, opts);
  ASSERT_TRUE(analyzed.ok) << analyzed.renderDiagnostics();
  EXPECT_NE(analyzed.renderDiagnostics().find(
                "'seed' may be used before it is assigned"),
            std::string::npos)
      << analyzed.renderDiagnostics();
  EXPECT_NE(analyzed.renderDiagnostics().find(
                "value assigned to 'sum' is never used"),
            std::string::npos)
      << analyzed.renderDiagnostics();
}

TEST(LintLang, DeadMatrixIsReported) {
  // ISSUE 6 satellite: an allocated matrix nothing ever reads is exactly
  // the waste the optimizer's liveness pass can see — surface it.
  std::string src = R"(
int main() {
  int n = 4;
  Matrix float <2> unused = init(Matrix float <2>, n, n);
  Matrix float <2> a = init(Matrix float <2>, n, n);
  a = with ([0,0] <= [i,j] < [n,n]) genarray([n,n], i * 1.0 + j);
  printFloat(a[1, 2]);
  return 0;
}
)";
  driver::TranslateOptions opts;
  opts.analyze = true;
  auto res = test::translateXc(src, opts);
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  std::string diags = res.renderDiagnostics();
  EXPECT_NE(
      diags.find(
          "matrix 'unused' is allocated but never read [-Wdead-matrix]"),
      std::string::npos)
      << diags;
  // `a` is read; exactly one matrix is flagged.
  EXPECT_EQ(diags.find("matrix 'a'"), std::string::npos) << diags;
}

TEST(LintLang, WnoDeadMatrixSilencesTheLint) {
  std::string src = R"(
int main() {
  Matrix float <2> unused = init(Matrix float <2>, 3, 3);
  printInt(7);
  return 0;
}
)";
  driver::TranslateOptions on;
  on.analyze = true;
  auto loud = test::translateXc(src, on);
  ASSERT_TRUE(loud.ok);
  EXPECT_NE(loud.renderDiagnostics().find("-Wdead-matrix"),
            std::string::npos);

  driver::TranslateOptions off;
  off.analyze = true;
  off.warnDeadMatrix = false;
  auto quiet = test::translateXc(src, off);
  ASSERT_TRUE(quiet.ok);
  EXPECT_EQ(quiet.renderDiagnostics().find("dead-matrix"), std::string::npos)
      << quiet.renderDiagnostics();
}

TEST(LintLang, NoDeadStoreOnSplitVarInDemotedLoop) {
  // Regression (ISSUE 3): `split q by 8` lowers to a synthesized
  // `q = qout*8 + qin` in the loop body. When the fold body never reads
  // `q` and the parallelize clause is demoted (reduction), the dead-store
  // lint used to blame the user for a store the compiler inserted.
  std::string src = R"(
int main() {
  float acc = with ([0] <= [q] < [64]) fold(+, 0.0, 1.0) transform {
    split q by 8, qin, qout;
    parallelize qout;
  };
  printFloat(acc);
  return 0;
}
)";
  driver::TranslateOptions opts;
  opts.analyze = true;
  auto res = test::translateXc(src, opts);
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  std::string diags = res.renderDiagnostics();
  // The demotion itself still warns; the synthesized store must not.
  EXPECT_NE(diags.find("cannot parallelize loop 'qout'"), std::string::npos)
      << diags;
  EXPECT_EQ(diags.find("value assigned to 'q'"), std::string::npos) << diags;
}

} // namespace
} // namespace mmx
