// SaC-style uniqueness facts (analysis/uniqueness) over hand-built IR:
// fresh allocations mint uniqueness, handle copies transfer it only when
// the source dies, refcount observation poisons a buffer permanently, the
// if-join intersects, and the interprocedural summaries classify borrowed
// parameters and fresh returns (including through user-function calls).
#include "analysis/uniqueness.hpp"

#include <gtest/gtest.h>

#include "analysis/liveness.hpp"
#include "ir/ir.hpp"

namespace mmx {
namespace {

using analysis::analyzeUniqueness;
using analysis::computeLiveness;
using analysis::FnSummary;
using analysis::SummaryMap;
using analysis::summarizeModule;
using analysis::Uniqueness;

ir::ExprPtr mv(int32_t slot) { return ir::var(slot, ir::Ty::Mat); }
ir::ExprPtr iv(int32_t slot) { return ir::var(slot, ir::Ty::I32); }

ir::ExprPtr alloc() {
  std::vector<ir::ExprPtr> args;
  args.push_back(ir::constI(4));
  args.push_back(ir::constI(4));
  return ir::call("initMatrix", std::move(args), ir::Ty::Mat);
}

ir::ExprPtr loadM(int32_t matSlot) {
  return ir::loadFlat(mv(matSlot), ir::constI(0), ir::Ty::I32);
}

Uniqueness analyze(const ir::Module& m, const ir::Function& f) {
  return analyzeUniqueness(f, summarizeModule(m), computeLiveness(f));
}

TEST(Uniqueness, FreshAllocationMintsParametersDoNot) {
  ir::Module mod;
  ir::Function* f = mod.add("f");
  f->numParams = 1;
  f->addLocal("p", ir::Ty::Mat);  // 0, parameter
  f->addLocal("m", ir::Ty::Mat);  // 1
  f->addLocal("x", ir::Ty::I32);  // 2

  // (p is a param) m = initMatrix(...); x = p[0];
  std::vector<ir::StmtPtr> body;
  body.push_back(ir::assign(1, alloc()));
  body.push_back(ir::assign(2, loadM(0)));
  const ir::Stmt* s1 = body[0].get();
  const ir::Stmt* s2 = body[1].get();
  f->body = ir::block(std::move(body));

  Uniqueness u = analyze(mod, *f);
  EXPECT_FALSE(u.isUniqueBefore(s1, 0)) << "params enter shared";
  EXPECT_FALSE(u.isUniqueBefore(s1, 1)) << "not yet allocated";
  EXPECT_FALSE(u.isUniqueBefore(s2, 0));
  EXPECT_TRUE(u.isUniqueBefore(s2, 1)) << "freshly allocated";
}

TEST(Uniqueness, HandleCopyTransfersOnlyWhenSourceDies) {
  // The `A = %wres` pattern closing every with-loop: the temp's handle is
  // dead after the copy, so A absorbs uniqueness. If the temp stays live,
  // two handles share the buffer and neither is unique.
  auto build = [](bool readTempLater, const ir::Stmt*& copyOut,
                  const ir::Stmt*& afterOut) {
    auto mod = std::make_unique<ir::Module>();
    ir::Function* f = mod->add("f");
    f->addLocal("t", ir::Ty::Mat);  // 0
    f->addLocal("A", ir::Ty::Mat);  // 1
    f->addLocal("x", ir::Ty::I32);  // 2
    std::vector<ir::StmtPtr> body;
    body.push_back(ir::assign(0, alloc()));
    body.push_back(ir::assign(1, mv(0)));
    body.push_back(ir::assign(2, loadM(readTempLater ? 0 : 1)));
    copyOut = body[1].get();
    afterOut = body[2].get();
    f->body = ir::block(std::move(body));
    return mod;
  };

  const ir::Stmt *copy, *after;
  auto deadTemp = build(false, copy, after);
  Uniqueness u = analyze(*deadTemp, *deadTemp->find("f"));
  EXPECT_TRUE(u.isUniqueBefore(copy, 0));
  EXPECT_TRUE(u.isUniqueBefore(after, 1)) << "t died at the copy";
  EXPECT_FALSE(u.isUniqueBefore(after, 0));

  auto liveTemp = build(true, copy, after);
  Uniqueness u2 = analyze(*liveTemp, *liveTemp->find("f"));
  EXPECT_FALSE(u2.isUniqueBefore(after, 1)) << "t is still live: shared";
  EXPECT_FALSE(u2.isUniqueBefore(after, 0));
}

TEST(Uniqueness, RefcountObservationPoisonsTheBuffer) {
  ir::Module mod;
  ir::Function* f = mod.add("f");
  f->addLocal("m", ir::Ty::Mat);  // 0
  f->addLocal("x", ir::Ty::I32);  // 1

  // m = initMatrix(...); x = refCount(m); — a rewrite that stole m's
  // buffer would change what refCount prints, so m is never unique.
  std::vector<ir::StmtPtr> body;
  body.push_back(ir::assign(0, alloc()));
  {
    std::vector<ir::ExprPtr> args;
    args.push_back(mv(0));
    body.push_back(
        ir::assign(1, ir::call("refCount", std::move(args), ir::Ty::I32)));
  }
  const ir::Stmt* s2 = body[1].get();
  f->body = ir::block(std::move(body));

  Uniqueness u = analyze(mod, *f);
  EXPECT_TRUE(u.observed.get(0));
  EXPECT_FALSE(u.isUniqueBefore(s2, 0));
}

TEST(Uniqueness, IfJoinIntersects) {
  ir::Module mod;
  ir::Function* f = mod.add("f");
  f->addLocal("m", ir::Ty::Mat);  // 0
  f->addLocal("A", ir::Ty::Mat);  // 1
  f->addLocal("x", ir::Ty::I32);  // 2

  // m = initMatrix(...); if (x < 1) { A = m; } x = m[0];
  // The then-arm aliases m while it stays live, so after the join m is
  // unique on neither path's terms: intersection drops it.
  std::vector<ir::StmtPtr> body;
  body.push_back(ir::assign(0, alloc()));
  body.push_back(ir::ifStmt(
      ir::cmp(ir::CmpKind::Lt, iv(2), ir::constI(1)),
      ir::assign(1, mv(0)), nullptr));
  body.push_back(ir::assign(2, loadM(0)));
  const ir::Stmt* afterIf = body[2].get();
  f->body = ir::block(std::move(body));

  Uniqueness u = analyze(mod, *f);
  EXPECT_FALSE(u.isUniqueBefore(afterIf, 0));
  EXPECT_FALSE(u.isUniqueBefore(afterIf, 1));
}

/// Module with the three callee shapes the summaries must classify:
///   reader(p): only loads from p           -> borrows, (vacuously) fresh
///   maker():   returns a new allocation    -> returnsFresh
///   keeper(p): returns p itself            -> escapes, not fresh
ir::Module* buildCallees(ir::Module& mod) {
  {
    ir::Function* g = mod.add("reader");
    g->numParams = 1;
    g->addLocal("p", ir::Ty::Mat);
    g->rets = {ir::Ty::I32};
    std::vector<ir::ExprPtr> rv;
    rv.push_back(loadM(0));
    g->body = ir::ret(std::move(rv));
  }
  {
    ir::Function* g = mod.add("maker");
    g->rets = {ir::Ty::Mat};
    g->addLocal("r", ir::Ty::Mat);
    std::vector<ir::StmtPtr> body;
    body.push_back(ir::assign(0, alloc()));
    std::vector<ir::ExprPtr> rv;
    rv.push_back(mv(0));
    body.push_back(ir::ret(std::move(rv)));
    g->body = ir::block(std::move(body));
  }
  {
    ir::Function* g = mod.add("keeper");
    g->numParams = 1;
    g->addLocal("p", ir::Ty::Mat);
    g->rets = {ir::Ty::Mat};
    std::vector<ir::ExprPtr> rv;
    rv.push_back(mv(0));
    g->body = ir::ret(std::move(rv));
  }
  return &mod;
}

TEST(Uniqueness, SummariesClassifyBorrowAndFreshness) {
  ir::Module mod;
  buildCallees(mod);
  SummaryMap sums = summarizeModule(mod);

  ASSERT_EQ(sums.at("reader").borrowedParams.size(), 1u);
  EXPECT_TRUE(sums.at("reader").borrowedParams[0]);
  EXPECT_TRUE(sums.at("maker").returnsFresh);
  EXPECT_FALSE(sums.at("keeper").borrowedParams[0])
      << "the handle escapes through the return";
  EXPECT_FALSE(sums.at("keeper").returnsFresh);
}

TEST(Uniqueness, CallsUseSummariesInterprocedurally) {
  ir::Module mod;
  buildCallees(mod);
  ir::Function* f = mod.add("main");
  f->addLocal("a", ir::Ty::Mat);  // 0
  f->addLocal("b", ir::Ty::Mat);  // 1
  f->addLocal("c", ir::Ty::Mat);  // 2
  f->addLocal("d", ir::Ty::Mat);  // 3
  f->addLocal("x", ir::Ty::I32);  // 4

  // a = initMatrix(...);
  // x = reader(a);   -- borrows: a stays unique
  // b = maker();     -- fresh return: b unique
  // d = initMatrix(...);
  // c = keeper(d);   -- d escapes, c aliases it: both shared
  // (keeper gets its own matrix: the escape taint is flow-insensitive,
  // so passing `a` there would un-unique `a` everywhere.)
  std::vector<ir::StmtPtr> body;
  body.push_back(ir::assign(0, alloc()));
  {
    std::vector<ir::ExprPtr> args;
    args.push_back(mv(0));
    body.push_back(ir::callAssign({4}, "reader", std::move(args)));
  }
  body.push_back(ir::callAssign({1}, "maker", {}));
  body.push_back(ir::assign(3, alloc()));
  {
    std::vector<ir::ExprPtr> args;
    args.push_back(mv(3));
    body.push_back(ir::callAssign({2}, "keeper", std::move(args)));
  }
  body.push_back(ir::ret({}));
  const ir::Stmt* afterReader = body[2].get();
  const ir::Stmt* afterMaker = body[3].get();
  const ir::Stmt* atRet = body[5].get();
  f->body = ir::block(std::move(body));

  Uniqueness u = analyze(mod, *f);
  EXPECT_TRUE(u.isUniqueBefore(afterReader, 0)) << "reader only borrowed a";
  EXPECT_TRUE(u.isUniqueBefore(afterMaker, 1)) << "maker's result is fresh";
  EXPECT_TRUE(u.isUniqueBefore(atRet, 0)) << "a was never captured";
  EXPECT_FALSE(u.isUniqueBefore(atRet, 3)) << "keeper kept an alias";
  EXPECT_FALSE(u.isUniqueBefore(atRet, 2));
}

} // namespace
} // namespace mmx
