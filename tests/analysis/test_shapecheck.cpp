// Symbolic shape & bounds verification (analysis/shapecheck, ISSUE 3):
// guard classification on affine kernels, compile-time rejection of proven
// violations under --strict-shape, borrowed-parameter retain/release
// elision, and the backend contract that --bounds-checks=on output is the
// historical (default) output while auto drops only blessed guards.
#include "analysis/shapecheck.hpp"

#include <gtest/gtest.h>

#include "interp/interp.hpp"
#include "ir/cemit.hpp"
#include "../lang/xc_helper.hpp"

namespace mmx::test {
namespace {

// The temporal-mean shape: affine indexes fully covered by the with-loop
// bounds, dims flowing straight from init(). Everything is provable.
const char* kAffineKernel = R"(
int main() {
  int m = 8;
  int n = 10;
  int p = 6;
  Matrix float <3> mat = init(Matrix float <3>, m, n, p);
  Matrix float <2> means = with ([0,0] <= [i,j] < [m,n])
    genarray([m,n], (with ([0] <= [k] < [p]) fold(+, 0.0, mat[i,j,k])) / p);
  printFloat(means[0, 0]);
  return 0;
}
)";

// Reads v[q] under a caller-supplied bound k: q < k proves nothing about
// dimSize(v, 0), so the load guard must stay. v itself is only read —
// its retain/release pair is elidable (borrowed).
const char* kUnknownBoundKernel = R"(
float headSum(Matrix float <1> v, int k) {
  float acc = with ([0] <= [q] < [k]) fold(+, 0.0, v[q]);
  return acc;
}
int main() {
  Matrix float <1> v = (0 :: 9) * 1.5;
  printFloat(headSum(v, 4));
  return 0;
}
)";

// v has 6 elements, so v[2:6] runs one past `end`: provably violating.
const char* kProvenOobKernel = R"(
int main() {
  Matrix float <1> v = (0 :: 5) * 1.0;
  int n = dimSize(v, 0);
  Matrix float <1> bad = v[2 : n];
  printFloat(bad[0]);
  return 0;
}
)";

analysis::ShapeCheckStats checkModule(const ir::Module& m,
                                      ir::GuardPlan& plan,
                                      std::string* rendered = nullptr) {
  DiagnosticEngine diags;
  auto st = analysis::checkShapes(m, plan, diags);
  if (rendered) {
    SourceManager sm;
    *rendered = diags.render(sm);
  }
  return st;
}

TEST(ShapeCheck, AffineKernelGuardsFullyProven) {
  auto res = translateXc(kAffineKernel);
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  ir::GuardPlan plan;
  auto st = checkModule(*res.module, plan);
  EXPECT_GT(st.guardsTotal, 0u);
  EXPECT_EQ(st.guardsSafe, st.guardsTotal)
      << "kept " << st.guardsKept() << " of " << st.guardsTotal;
  EXPECT_EQ(st.guardsViolating, 0u);
  EXPECT_EQ(plan.safe.size(), st.guardsSafe);
}

TEST(ShapeCheck, UnknownBoundKeepsGuardAndBorrowsParam) {
  auto res = translateXc(kUnknownBoundKernel);
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  ir::GuardPlan plan;
  auto st = checkModule(*res.module, plan);
  // The fold's v[q] load cannot be proven against dimSize(v, 0).
  EXPECT_GE(st.guardsKept(), 1u);
  EXPECT_EQ(st.guardsViolating, 0u);
  // v is read-only in headSum: its per-call retain/release is elidable.
  EXPECT_GE(st.borrowedParams, 1u);
  EXPECT_FALSE(plan.borrowedParams.empty());
}

TEST(ShapeCheck, ProvenViolationWarnsByDefault) {
  auto res = translateXc(kProvenOobKernel);
  // -Wshape (default): the program still translates; the violation is a
  // located warning and the runtime guard stays armed.
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  std::string diags = res.renderDiagnostics();
  EXPECT_NE(diags.find("provably out of bounds"), std::string::npos) << diags;
  EXPECT_NE(diags.find("test.xc:"), std::string::npos)
      << "violation must carry the source range:\n" << diags;
  EXPECT_EQ(diags.find("error"), std::string::npos) << diags;
}

TEST(ShapeCheck, StrictShapeRejectsProvenViolationAtCompileTime) {
  driver::TranslateOptions opts;
  opts.strictShape = true;
  auto res = translateXc(kProvenOobKernel, opts);
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(res.hasErrors());
  std::string diags = res.renderDiagnostics();
  EXPECT_NE(diags.find("error"), std::string::npos) << diags;
  EXPECT_NE(diags.find("provably out of bounds"), std::string::npos) << diags;
  EXPECT_NE(diags.find("test.xc:"), std::string::npos) << diags;
}

TEST(ShapeCheck, OnModeEmitIsByteIdenticalToDefault) {
  auto res = translateXc(kAffineKernel);
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  auto plain = ir::emitC(*res.module);
  ASSERT_TRUE(plain.ok);
  ir::CEmitOptions on;
  on.boundsChecks = ir::BoundsCheckMode::On;
  on.plan = res.guardPlan; // a plan must not perturb On output
  auto withOpts = ir::emitC(*res.module, on);
  ASSERT_TRUE(withOpts.ok);
  EXPECT_EQ(plain.code, withOpts.code);
}

TEST(ShapeCheck, AutoModeElidesBlessedGuardsInEmittedC) {
  auto res = translateXc(kAffineKernel);
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  ASSERT_TRUE(res.guardPlan);
  ir::CEmitOptions autoOpts;
  autoOpts.boundsChecks = ir::BoundsCheckMode::Auto;
  autoOpts.plan = res.guardPlan;
  auto autoC = ir::emitC(*res.module, autoOpts);
  ASSERT_TRUE(autoC.ok);
  auto onC = ir::emitC(*res.module);
  ASSERT_TRUE(onC.ok);
  EXPECT_NE(autoC.code, onC.code);
  // Blessed flat loads read the payload directly instead of mmx_flat's
  // checked path.
  EXPECT_NE(autoC.code.find("_nc("), std::string::npos);
}

TEST(ShapeCheck, AutoModeInterpMatchesOnMode) {
  auto res = translateXc(kAffineKernel);
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  rt::SerialExecutor ex;

  interp::Machine on(*res.module, ex);
  on.setBoundsChecks(ir::BoundsCheckMode::On);
  EXPECT_EQ(on.runMain(), 0);

  interp::Machine autoVm(*res.module, ex);
  autoVm.setBoundsChecks(ir::BoundsCheckMode::Auto, res.guardPlan);
  EXPECT_EQ(autoVm.runMain(), 0);

  EXPECT_EQ(on.output(), autoVm.output());
  EXPECT_FALSE(on.output().empty());
}

TEST(ShapeCheck, KeptGuardStillFiresUnderAuto) {
  // The proven-violating range access is NOT blessed, so even under
  // --bounds-checks=auto the interpreter must reject it at run time.
  auto res = translateXc(kProvenOobKernel);
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  rt::SerialExecutor ex;
  interp::Machine vm(*res.module, ex);
  vm.setBoundsChecks(ir::BoundsCheckMode::Auto, res.guardPlan);
  EXPECT_THROW(vm.runMain(), interp::RuntimeError);
}

} // namespace
} // namespace mmx::test
