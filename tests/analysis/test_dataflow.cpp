// The dataflow engine (analysis/dataflow): syntactic helpers, structural
// expression equality, and the forward/backward engines driven by small
// hand-written policies over hand-built IR — straight-line composition,
// if-joins, loop fixpoints, and break/return edges.
#include "analysis/dataflow.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "ir/ir.hpp"

namespace mmx {
namespace {

using analysis::BackwardEngine;
using analysis::ForwardEngine;
using analysis::SlotSet;

/// f() with locals x (0), y (1), z (2), mat (3).
ir::Function* scaffold(ir::Module& m) {
  ir::Function* f = m.add("f");
  f->numParams = 0;
  f->addLocal("x", ir::Ty::I32);
  f->addLocal("y", ir::Ty::I32);
  f->addLocal("z", ir::Ty::I32);
  f->addLocal("mat", ir::Ty::Mat);
  return f;
}

bool contains(const std::vector<int32_t>& v, int32_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

TEST(Dataflow, ReadAndWrittenSlots) {
  // mat[x + y] = z reads x, y, z and the matrix handle; writes nothing
  // frame-visible.
  ir::StmtPtr st = ir::storeFlat(
      3,
      ir::arith(ir::ArithOp::Add, ir::var(0, ir::Ty::I32),
                ir::var(1, ir::Ty::I32), ir::Ty::I32),
      ir::var(2, ir::Ty::I32));
  auto reads = analysis::readSlots(*st);
  EXPECT_TRUE(contains(reads, 0));
  EXPECT_TRUE(contains(reads, 1));
  EXPECT_TRUE(contains(reads, 2));
  EXPECT_TRUE(contains(reads, 3)) << "the matrix handle is read";
  EXPECT_TRUE(analysis::writtenSlots(*st).empty())
      << "buffer stores do not write frame slots";

  ir::StmtPtr as = ir::assign(1, ir::var(0, ir::Ty::I32));
  auto w = analysis::writtenSlots(*as);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0], 1);
  EXPECT_TRUE(analysis::exprReadsSlot(*as->exprs[0], 0));
  EXPECT_FALSE(analysis::exprReadsSlot(*as->exprs[0], 1));
}

TEST(Dataflow, ExprEqualsIsStructural) {
  ir::ExprPtr a = ir::arith(ir::ArithOp::Add, ir::var(0, ir::Ty::I32),
                            ir::constI(1), ir::Ty::I32);
  ir::ExprPtr b = ir::arith(ir::ArithOp::Add, ir::var(0, ir::Ty::I32),
                            ir::constI(1), ir::Ty::I32);
  ir::ExprPtr c = ir::arith(ir::ArithOp::Add, ir::var(0, ir::Ty::I32),
                            ir::constI(2), ir::Ty::I32);
  ir::ExprPtr d = ir::arith(ir::ArithOp::Mul, ir::var(0, ir::Ty::I32),
                            ir::constI(1), ir::Ty::I32);
  EXPECT_TRUE(analysis::exprEquals(*a, *b));
  EXPECT_FALSE(analysis::exprEquals(*a, *c)) << "different constant";
  EXPECT_FALSE(analysis::exprEquals(*a, *d)) << "different operator";
  EXPECT_TRUE(analysis::exprEquals(*ir::cloneExpr(*a), *a));
}

// A forward must-analysis: "slots definitely assigned". Intersection join,
// so a slot survives an If only when both arms assign it.
struct DefAssigned {
  using State = SlotSet;
  State copy(const State& s) { return s; }
  bool join(State& into, const State& from) {
    return into.intersectWith(from);
  }
  void transfer(const ir::Stmt& s, State& st) {
    for (int32_t w : analysis::writtenSlots(s)) st.set(w);
  }
};

TEST(Dataflow, ForwardStraightLineComposes) {
  ir::Module m;
  ir::Function* f = scaffold(m);
  std::vector<ir::StmtPtr> body;
  body.push_back(ir::assign(0, ir::constI(1)));
  body.push_back(ir::assign(1, ir::var(0, ir::Ty::I32)));
  f->body = ir::block(std::move(body));

  DefAssigned t;
  ForwardEngine<DefAssigned> eng(t);
  auto out = eng.run(*f->body, SlotSet(f->locals.size()));
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->get(0));
  EXPECT_TRUE(out->get(1));
  EXPECT_FALSE(out->get(2));
}

TEST(Dataflow, ForwardIfJoinsWithIntersection) {
  ir::Module m;
  ir::Function* f = scaffold(m);
  // if (x < 1) { y = 1; z = 1; } else { y = 2; }
  std::vector<ir::StmtPtr> thenKids;
  thenKids.push_back(ir::assign(1, ir::constI(1)));
  thenKids.push_back(ir::assign(2, ir::constI(1)));
  ir::StmtPtr s = ir::ifStmt(
      ir::cmp(ir::CmpKind::Lt, ir::var(0, ir::Ty::I32), ir::constI(1)),
      ir::block(std::move(thenKids)), ir::assign(1, ir::constI(2)));
  DefAssigned t;
  ForwardEngine<DefAssigned> eng(t);
  auto out = eng.run(*s, SlotSet(f->locals.size()));
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->get(1)) << "assigned on both arms";
  EXPECT_FALSE(out->get(2)) << "assigned on one arm only";
}

TEST(Dataflow, ForwardLoopKeepsZeroIterationPath) {
  ir::Module m;
  ir::Function* f = scaffold(m);
  // for (x = 0; x < 8; x++) { y = 1; }
  ir::StmtPtr loop = ir::forLoop(0, ir::constI(0), ir::constI(8),
                                 ir::assign(1, ir::constI(1)), "x");
  DefAssigned t;
  ForwardEngine<DefAssigned> eng(t);
  auto out = eng.run(*loop, SlotSet(f->locals.size()));
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->get(0)) << "the loop header writes the loop variable";
  EXPECT_FALSE(out->get(1)) << "the body may run zero times";
}

TEST(Dataflow, ForwardRetFeedsExitStateNotFallThrough) {
  ir::Module m;
  ir::Function* f = scaffold(m);
  // x = 1; if (x < 1) { y = 1; return; } z = 1;
  std::vector<ir::StmtPtr> thenKids;
  thenKids.push_back(ir::assign(1, ir::constI(1)));
  thenKids.push_back(ir::ret({}));
  std::vector<ir::StmtPtr> body;
  body.push_back(ir::assign(0, ir::constI(1)));
  body.push_back(ir::ifStmt(
      ir::cmp(ir::CmpKind::Lt, ir::var(0, ir::Ty::I32), ir::constI(1)),
      ir::block(std::move(thenKids)), nullptr));
  body.push_back(ir::assign(2, ir::constI(1)));
  f->body = ir::block(std::move(body));

  DefAssigned t;
  ForwardEngine<DefAssigned> eng(t);
  auto out = eng.run(*f->body, SlotSet(f->locals.size()));
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(out->get(1)) << "the then-arm returned; its state must not "
                               "leak into the fall-through";
  EXPECT_TRUE(out->get(2));
  ASSERT_TRUE(eng.exitState.has_value());
  EXPECT_TRUE(eng.exitState->get(1)) << "state at the early return";
  EXPECT_FALSE(eng.exitState->get(2));
}

TEST(Dataflow, ForwardBreakJoinsAtLoopExit) {
  ir::Module m;
  ir::Function* f = scaffold(m);
  // for (x ...) { y = 1; if (x < 3) { z = 1; break; } }
  std::vector<ir::StmtPtr> thenKids;
  thenKids.push_back(ir::assign(2, ir::constI(1)));
  {
    auto br = std::make_unique<ir::Stmt>();
    br->k = ir::Stmt::K::Break;
    thenKids.push_back(std::move(br));
  }
  std::vector<ir::StmtPtr> bodyKids;
  bodyKids.push_back(ir::assign(1, ir::constI(1)));
  bodyKids.push_back(ir::ifStmt(
      ir::cmp(ir::CmpKind::Lt, ir::var(0, ir::Ty::I32), ir::constI(3)),
      ir::block(std::move(thenKids)), nullptr));
  ir::StmtPtr loop = ir::forLoop(0, ir::constI(0), ir::constI(8),
                                 ir::block(std::move(bodyKids)), "x");
  DefAssigned t;
  ForwardEngine<DefAssigned> eng(t);
  auto out = eng.run(*loop, SlotSet(f->locals.size()));
  ASSERT_TRUE(out.has_value());
  // z only on the break path, y only on iterating paths, neither definite.
  EXPECT_FALSE(out->get(1));
  EXPECT_FALSE(out->get(2));
  EXPECT_TRUE(out->get(0));
}

// Backward liveness: a slot is live before a statement if read by it, or
// live after it and not overwritten. Union join.
struct Liveness {
  using State = SlotSet;
  State copy(const State& s) { return s; }
  bool join(State& into, const State& from) { return into.unionWith(from); }
  void transfer(const ir::Stmt& s, State& st) {
    for (int32_t w : analysis::writtenSlots(s)) st.set(w, false);
    for (int32_t r : analysis::readSlots(s)) st.set(r);
  }
};

TEST(Dataflow, BackwardLivenessStraightLine) {
  ir::Module m;
  ir::Function* f = scaffold(m);
  // y = x + 1; with y live after: x must be live before, y must not.
  ir::StmtPtr s = ir::assign(
      1, ir::arith(ir::ArithOp::Add, ir::var(0, ir::Ty::I32), ir::constI(1),
                   ir::Ty::I32));
  SlotSet after(f->locals.size());
  after.set(1);
  Liveness t;
  BackwardEngine<Liveness> eng(t);
  SlotSet before =
      eng.run(*s, std::move(after), SlotSet(f->locals.size()));
  EXPECT_TRUE(before.get(0));
  EXPECT_FALSE(before.get(1)) << "killed by the assignment";
}

TEST(Dataflow, BackwardLoopCarriesLivenessAroundBackEdge) {
  ir::Module m;
  ir::Function* f = scaffold(m);
  // for (x ...) { y = z; z = 1; } — z is live into the loop: the first
  // iteration reads it before the body's own write (a loop-carried read
  // only the fixpoint over the back edge discovers).
  std::vector<ir::StmtPtr> bodyKids;
  bodyKids.push_back(ir::assign(1, ir::var(2, ir::Ty::I32)));
  bodyKids.push_back(ir::assign(2, ir::constI(1)));
  ir::StmtPtr loop = ir::forLoop(0, ir::constI(0), ir::constI(8),
                                 ir::block(std::move(bodyKids)), "x");
  Liveness t;
  BackwardEngine<Liveness> eng(t);
  SlotSet before = eng.run(*loop, SlotSet(f->locals.size()),
                           SlotSet(f->locals.size()));
  EXPECT_TRUE(before.get(2)) << "read on the first iteration";
  EXPECT_FALSE(before.get(1)) << "always written before any read";
}

} // namespace
} // namespace mmx
