// Experiment A1 (paper §VI-A): the modular determinism analysis.
//  - The matrix extension passes ("The domain-specific matrix extension
//    does pass this test").
//  - The bare-paren tuple extension FAILS because '(' is not a marking
//    terminal ("the tuples extension does not, however") and is therefore
//    packaged with the host.
//  - The "(| |)" variant the paper suggests passes.
//  - Compositions of passing extensions are conflict-free LALR(1) — the
//    theorem's conclusion, verified empirically.
#include "analysis/determinism.hpp"

#include <gtest/gtest.h>

#include "cminus/host_grammar.hpp"
#include "ext_matrix/matrix_ext.hpp"
#include "ext_refcount/refcount_ext.hpp"
#include "ext_transform/transform_ext.hpp"
#include "ext_tuple/tuple_ext.hpp"

namespace mmx::analysis {
namespace {

ext::GrammarFragment hostWithTuples() {
  // The Translator always packages the bare-paren tuple syntax with the
  // host, so the "host" other extensions compose against includes it.
  return ext::mergeFragments(cm::hostFragment(), cm::tupleFragment(),
                             "host");
}

TEST(Determinism, HostAloneIsLalr1) {
  auto host = hostWithTuples();
  auto conflicts = composedConflicts(host, {});
  EXPECT_TRUE(conflicts.empty()) << conflicts.front();
}

TEST(Determinism, MatrixExtensionPasses) {
  auto host = hostWithTuples();
  auto matrix = ext_matrix::matrixExtension()->grammarFragment();
  DeterminismResult r = isComposable(host, matrix);
  EXPECT_TRUE(r.composable)
      << (r.problems.empty() ? "" : r.problems.front());
}

TEST(Determinism, RefcountExtensionPasses) {
  auto host = hostWithTuples();
  auto rc = ext_refcount::refcountExtension()->grammarFragment();
  DeterminismResult r = isComposable(host, rc);
  EXPECT_TRUE(r.composable)
      << (r.problems.empty() ? "" : r.problems.front());
}

TEST(Determinism, BareParenTupleExtensionFails) {
  // Treat tuples as an independent extension of the plain host: its
  // initial '(' is a host terminal, so the marking condition fails —
  // exactly the paper's negative example.
  DeterminismResult r = isComposable(cm::hostFragment(), cm::tupleFragment());
  EXPECT_FALSE(r.composable);
  bool mentionsMarking = false;
  for (const auto& p : r.problems)
    if (p.find("marking terminal") != std::string::npos)
      mentionsMarking = true;
  EXPECT_TRUE(mentionsMarking);
}

TEST(Determinism, AltDelimiterTupleExtensionPasses) {
  // The paper: "One could modify the tuple terminals to be '(|' and '|)'
  // ... and thus pass this analysis."
  DeterminismResult r =
      isComposable(cm::hostFragment(), cm::tupleAltFragment());
  EXPECT_TRUE(r.composable)
      << (r.problems.empty() ? "" : r.problems.front());
}

TEST(Determinism, TransformExtensionPassesAgainstHostPlusMatrix) {
  // §V's transformation extension extends the matrix constructs; its base
  // language is host+matrix.
  auto base = ext::mergeFragments(
      hostWithTuples(), ext_matrix::matrixExtension()->grammarFragment(),
      "host+matrix");
  auto tf = ext_transform::transformExtension()->grammarFragment();
  DeterminismResult r = isComposable(base, tf);
  EXPECT_TRUE(r.composable)
      << (r.problems.empty() ? "" : r.problems.front());
}

TEST(Determinism, FullCompositionIsConflictFree) {
  // The theorem's conclusion, checked directly: host ∪ all passing
  // extensions is LALR(1).
  auto host = hostWithTuples();
  auto matrix = ext_matrix::matrixExtension()->grammarFragment();
  auto rc = ext_refcount::refcountExtension()->grammarFragment();
  auto tf = ext_transform::transformExtension()->grammarFragment();
  auto alt = cm::tupleAltFragment();
  auto conflicts = composedConflicts(host, {&matrix, &rc, &tf, &alt});
  EXPECT_TRUE(conflicts.empty()) << conflicts.front();
}

TEST(Determinism, NonMarkedExtensionIsRejected) {
  // An extension whose new statement begins with a host token.
  ext::GrammarFragment bad;
  bad.name = "bad";
  bad.terminals.push_back({"'atomic'", "atomic", true, 10, false});
  // Starts with host '{' instead of its own keyword: not marked.
  bad.productions.push_back(
      {"Simple", {"'{'", "'atomic'", "'}'"}, "bad_atomic"});
  DeterminismResult r = isComposable(cm::hostFragment(), bad);
  EXPECT_FALSE(r.composable);
}

TEST(Determinism, MarkerReuseInsideExtensionIsRejected) {
  ext::GrammarFragment bad;
  bad.name = "bad2";
  bad.terminals.push_back({"'gadget'", "gadget", true, 10, false});
  bad.nonterminals.push_back("GadgetBody");
  bad.productions.push_back(
      {"Simple", {"'gadget'", "GadgetBody", "';'"}, "g_stmt"});
  // Reuses the marking terminal in a non-initial position.
  bad.productions.push_back(
      {"GadgetBody", {"ID", "'gadget'", "ID"}, "g_body"});
  DeterminismResult r = isComposable(cm::hostFragment(), bad);
  EXPECT_FALSE(r.composable);
  bool mentionsReuse = false;
  for (const auto& p : r.problems)
    if (p.find("reused") != std::string::npos) mentionsReuse = true;
  EXPECT_TRUE(mentionsReuse);
}

TEST(Determinism, OperatorFormExtensionPasses) {
  // MulE -> MulE '.**' Unary: left-recursive with a fresh operator token.
  ext::GrammarFragment op;
  op.name = "powop";
  op.terminals.push_back({"'.**'", ".**", true, 6, false});
  op.productions.push_back({"MulE", {"MulE", "'.**'", "Unary"}, "mul_pow"});
  DeterminismResult r = isComposable(cm::hostFragment(), op);
  EXPECT_TRUE(r.composable)
      << (r.problems.empty() ? "" : r.problems.front());
}

TEST(Determinism, ConflictingExtensionReportedThroughLalrCheck) {
  // Extension that makes the composition ambiguous: a second production
  // for parenthesized expressions.
  ext::GrammarFragment amb;
  amb.name = "amb";
  amb.terminals.push_back({"'wrap'", "wrap", true, 10, false});
  amb.productions.push_back({"Primary", {"'('", "Expr", "')'"}, "prim_paren2"});
  DeterminismResult r = isComposable(cm::hostFragment(), amb);
  EXPECT_FALSE(r.composable);
  bool mentionsLalr = false;
  for (const auto& p : r.problems)
    if (p.find("LALR") != std::string::npos) mentionsLalr = true;
  EXPECT_TRUE(mentionsLalr);
}

TEST(Determinism, TwoIndependentKeywordExtensionsCompose) {
  // The point of the theorem: extensions that never saw each other
  // compose. Both also reuse the identifier-looking words as keywords
  // only in their own context.
  ext::GrammarFragment e1, e2;
  e1.name = "alpha";
  e1.terminals.push_back({"'alpha'", "alpha", true, 10, false});
  e1.productions.push_back({"Primary", {"'alpha'", "'('", "Expr", "')'"},
                            "prim_alpha"});
  e2.name = "beta";
  e2.terminals.push_back({"'beta'", "beta", true, 10, false});
  e2.productions.push_back({"Primary", {"'beta'", "'('", "Expr", "')'"},
                            "prim_beta"});
  auto host = cm::hostFragment();
  EXPECT_TRUE(isComposable(host, e1).composable);
  EXPECT_TRUE(isComposable(host, e2).composable);
  auto conflicts = composedConflicts(host, {&e1, &e2});
  EXPECT_TRUE(conflicts.empty()) << conflicts.front();
}

} // namespace
} // namespace mmx::analysis
