// Parallel-safety / race detection (analysis/parsafe): loop classification
// on hand-built IR, the enforcement policy (demotion + diagnostics), call
// summaries, and end-to-end behaviour through the translator on extended-C
// programs (safe nests stay parallel, racy `parallelize` targets are
// demoted and diagnosed, results are thread-count independent).
#include "analysis/parsafe.hpp"

#include <gtest/gtest.h>

#include "analysis/dataflow.hpp"
#include "ir/ir.hpp"
#include "support/diag.hpp"
#include "../lang/xc_helper.hpp"

namespace mmx {
namespace {

using analysis::LoopClass;
using analysis::ParSafe;
using analysis::ParSafeOptions;

std::vector<ir::ExprPtr> vecOf(ir::ExprPtr e) {
  std::vector<ir::ExprPtr> v;
  v.push_back(std::move(e));
  return v;
}

std::string renderDiags(DiagnosticEngine& diags) {
  SourceManager sm;
  return diags.render(sm);
}

/// f() with locals: out (Mat, slot 0), i (I32, slot 1), sum (F32, slot 2),
/// j (I32, slot 3, never assigned → loop-invariant).
ir::Function* scaffold(ir::Module& m) {
  ir::Function* f = m.add("f");
  f->numParams = 0;
  f->addLocal("out", ir::Ty::Mat);
  f->addLocal("i", ir::Ty::I32);
  f->addLocal("sum", ir::Ty::F32);
  f->addLocal("j", ir::Ty::I32);
  return f;
}

/// Wraps `inner` in `for (i = 0; i < 8; i++)` marked parallel.
ir::StmtPtr parLoop(ir::StmtPtr inner, ir::Stmt::Par src) {
  ir::StmtPtr loop = ir::forLoop(1, ir::constI(0), ir::constI(8),
                                 std::move(inner), "i");
  loop->parallel = true;
  loop->parSrc = src;
  return loop;
}

const ir::Stmt* findFor(const ir::Function& f) {
  const ir::Stmt* found = nullptr;
  analysis::forEachStmt(*f.body, [&](const ir::Stmt& s) {
    if (!found && s.k == ir::Stmt::K::For) found = &s;
  });
  return found;
}

TEST(ParSafe, AffineStoreIsSafeAndStaysParallel) {
  ir::Module m;
  ir::Function* f = scaffold(m);
  std::vector<ir::StmtPtr> body;
  // out[i] = 1.0 — distinct element every iteration.
  body.push_back(parLoop(
      ir::storeFlat(0, ir::var(1, ir::Ty::I32), ir::constF(1.f)),
      ir::Stmt::Par::Auto));
  f->body = ir::block(std::move(body));

  ParSafe ps(m);
  auto lf = ps.classifyLoop(*f, *findFor(*f));
  EXPECT_EQ(lf.cls, LoopClass::Safe) << lf.detail;

  DiagnosticEngine diags;
  auto demoted = analysis::enforceParallelSafety(m, diags, {});
  EXPECT_TRUE(demoted.empty());
  EXPECT_TRUE(findFor(*f)->parallel) << "safe loop must stay parallel";
  EXPECT_EQ(renderDiags(diags), "");
}

TEST(ParSafe, CarriedScalarIsDiagnosedWithLoopAndVariableNames) {
  ir::Module m;
  ir::Function* f = scaffold(m);
  std::vector<ir::StmtPtr> body;
  body.push_back(ir::assign(2, ir::constF(0.f)));
  // sum = sum - 1.0 — loop-carried, and not a recognized reduction op.
  body.push_back(parLoop(
      ir::assign(2, ir::arith(ir::ArithOp::Sub, ir::var(2, ir::Ty::F32),
                              ir::constF(1.f), ir::Ty::F32)),
      ir::Stmt::Par::Explicit));
  f->body = ir::block(std::move(body));

  DiagnosticEngine diags;
  auto demoted = analysis::enforceParallelSafety(m, diags, {});
  ASSERT_EQ(demoted.size(), 1u);
  EXPECT_EQ(demoted[0].cls, LoopClass::Unsafe);
  EXPECT_FALSE(findFor(*f)->parallel) << "unsafe loop must be demoted";
  // The acceptance bar: the diagnostic names the loop and the variable.
  std::string out = renderDiags(diags);
  EXPECT_NE(out.find("cannot parallelize loop 'i'"), std::string::npos) << out;
  EXPECT_NE(out.find("'sum'"), std::string::npos) << out;
  EXPECT_NE(out.find("carried"), std::string::npos) << out;
  // Slot 2 (sum) is reported as the offending variable.
  ASSERT_FALSE(demoted[0].vars.empty());
  EXPECT_EQ(demoted[0].vars[0], 2);
  EXPECT_FALSE(diags.hasErrors()) << "non-strict mode warns, not errors";
}

TEST(ParSafe, ReductionIsClassifiedAndStillDemoted) {
  ir::Module m;
  ir::Function* f = scaffold(m);
  std::vector<ir::StmtPtr> body;
  body.push_back(ir::assign(2, ir::constF(0.f)));
  // sum = sum + out[i] — the classic reduction shape.
  body.push_back(parLoop(
      ir::assign(2, ir::arith(ir::ArithOp::Add, ir::var(2, ir::Ty::F32),
                              ir::loadFlat(ir::var(0, ir::Ty::Mat),
                                           ir::var(1, ir::Ty::I32),
                                           ir::Ty::F32),
                              ir::Ty::F32)),
      ir::Stmt::Par::Explicit));
  f->body = ir::block(std::move(body));

  ParSafe ps(m);
  auto lf = ps.classifyLoop(*f, *findFor(*f));
  EXPECT_EQ(lf.cls, LoopClass::Reduction);
  EXPECT_NE(lf.detail.find("reduction into 'sum'"), std::string::npos)
      << lf.detail;

  // The interpreter's parallel-for discards worker scalar writes, so the
  // enforcement pass must still run reductions serially.
  DiagnosticEngine diags;
  auto demoted = analysis::enforceParallelSafety(m, diags, {});
  ASSERT_EQ(demoted.size(), 1u);
  EXPECT_FALSE(findFor(*f)->parallel);
  EXPECT_NE(renderDiags(diags).find("reduction into 'sum'"),
            std::string::npos);
}

TEST(ParSafe, OverlappingStoresAreUnsafe) {
  ir::Module m;
  ir::Function* f = scaffold(m);
  std::vector<ir::StmtPtr> inner;
  // out[i] and out[i + 1] overlap across adjacent iterations.
  inner.push_back(
      ir::storeFlat(0, ir::var(1, ir::Ty::I32), ir::constF(1.f)));
  inner.push_back(ir::storeFlat(
      0,
      ir::arith(ir::ArithOp::Add, ir::var(1, ir::Ty::I32), ir::constI(1),
                ir::Ty::I32),
      ir::constF(2.f)));
  std::vector<ir::StmtPtr> body;
  body.push_back(parLoop(ir::block(std::move(inner)), ir::Stmt::Par::Auto));
  f->body = ir::block(std::move(body));

  DiagnosticEngine diags;
  auto demoted = analysis::enforceParallelSafety(m, diags, {});
  ASSERT_EQ(demoted.size(), 1u);
  EXPECT_EQ(demoted[0].cls, LoopClass::Unsafe);
  std::string out = renderDiags(diags);
  EXPECT_NE(out.find("may overlap"), std::string::npos) << out;
  EXPECT_NE(out.find("not auto-parallelizing"), std::string::npos) << out;
}

TEST(ParSafe, InvariantIndexStoreIsUnsafe) {
  ir::Module m;
  ir::Function* f = scaffold(m);
  std::vector<ir::StmtPtr> body;
  // out[j] with j loop-invariant: every iteration hits the same cell.
  body.push_back(parLoop(
      ir::storeFlat(0, ir::var(3, ir::Ty::I32), ir::constF(1.f)),
      ir::Stmt::Par::Auto));
  f->body = ir::block(std::move(body));

  ParSafe ps(m);
  auto lf = ps.classifyLoop(*f, *findFor(*f));
  EXPECT_EQ(lf.cls, LoopClass::Unsafe);
  EXPECT_NE(lf.detail.find("same element"), std::string::npos) << lf.detail;
}

TEST(ParSafe, StrictParallelTurnsExplicitUnsafeIntoError) {
  ir::Module m;
  ir::Function* f = scaffold(m);
  std::vector<ir::StmtPtr> body;
  body.push_back(ir::assign(2, ir::constF(0.f)));
  body.push_back(parLoop(
      ir::assign(2, ir::arith(ir::ArithOp::Sub, ir::var(2, ir::Ty::F32),
                              ir::constF(1.f), ir::Ty::F32)),
      ir::Stmt::Par::Explicit));
  f->body = ir::block(std::move(body));

  DiagnosticEngine diags;
  ParSafeOptions po;
  po.strictParallel = true;
  analysis::enforceParallelSafety(m, diags, po);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(ParSafe, SummariesSeeIOAndParamWritesThroughCalls) {
  ir::Module m;
  // writer(mat): stores into its parameter.
  ir::Function* writer = m.add("writer");
  writer->numParams = 1;
  writer->addLocal("dst", ir::Ty::Mat);
  {
    std::vector<ir::StmtPtr> b;
    b.push_back(ir::storeFlat(0, ir::constI(0), ir::constF(1.f)));
    b.push_back(ir::ret({}));
    writer->body = ir::block(std::move(b));
  }
  // noisy(): performs IO.
  ir::Function* noisy = m.add("noisy");
  noisy->numParams = 0;
  {
    std::vector<ir::StmtPtr> b;
    b.push_back(ir::callStmt(
        ir::call("printInt", vecOf(ir::constI(1)), ir::Ty::Void)));
    b.push_back(ir::ret({}));
    noisy->body = ir::block(std::move(b));
  }

  auto sums = analysis::summarizeModule(m);
  ASSERT_TRUE(sums.count(writer));
  ASSERT_EQ(sums[writer].writesParam.size(), 1u);
  EXPECT_TRUE(sums[writer].writesParam[0]);
  EXPECT_FALSE(sums[writer].hasIO);
  ASSERT_TRUE(sums.count(noisy));
  EXPECT_TRUE(sums[noisy].hasIO);

  // A parallel loop calling writer(shared) must be rejected.
  ir::Function* f = scaffold(m);
  std::vector<ir::StmtPtr> body;
  body.push_back(parLoop(
      ir::callStmt(ir::call("writer", vecOf(ir::var(0, ir::Ty::Mat)),
                            ir::Ty::Void)),
      ir::Stmt::Par::Auto));
  f->body = ir::block(std::move(body));
  ParSafe ps(m);
  auto lf = ps.classifyLoop(*f, *findFor(*f));
  EXPECT_EQ(lf.cls, LoopClass::Unsafe);
  EXPECT_NE(lf.detail.find("writer"), std::string::npos) << lf.detail;
}

// ---------------------------------------------------------------------------
// End-to-end through the translator.

/// Fig. 9-shaped kernel (genarray of per-cell fold means) with a clause
/// tail, result folded to one printed number so runs are comparable.
std::string meansProgram(const std::string& clauses) {
  return R"(
int main() {
  Matrix float <3> mat = synthSsh(6, 16, 12, 5, 2);
  int m = dimSize(mat, 0);
  int n = dimSize(mat, 1);
  int p = dimSize(mat, 2);
  Matrix float <2> means = init(Matrix float <2>, m, n);
  means = with ([0,0] <= [i,j] < [m,n])
    genarray([m,n],
      (with ([0] <= [k] < [p]) fold(+, 0.0, mat[i,j,k])) / p))" +
         clauses + R"(;
  printFloat(with ([0,0] <= [x,y] < [m,n]) fold(+, 0.0, means[x,y]));
  return 0;
}
)";
}

TEST(ParSafeLang, SafeGenarrayNestStaysParallel) {
  auto res = test::translateXc(meansProgram(""));
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  EXPECT_TRUE(res.diagnostics.empty()) << res.renderDiagnostics();
  std::string irText = ir::dump(*res.module);
  EXPECT_NE(irText.find("#pragma parallel"), std::string::npos)
      << "auto-parallel nest was demoted:\n" << irText;
}

TEST(ParSafeLang, ParallelizeOnFoldAccumulatorWarnsAndDemotes) {
  // `parallelize k` targets the inner fold loop — a reduction the
  // interpreter cannot run in parallel (worker frames are private).
  // `parallelize i` is safe and must survive enforcement untouched.
  auto res = test::translateXc(
      meansProgram("\n    transform { parallelize i; parallelize k; }"));
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  EXPECT_NE(res.renderDiagnostics().find("cannot parallelize loop 'k'"),
            std::string::npos)
      << res.renderDiagnostics();
  EXPECT_NE(res.renderDiagnostics().find("reduction into"), std::string::npos)
      << res.renderDiagnostics();
  EXPECT_NE(res.renderDiagnostics().find("warning"), std::string::npos)
      << res.renderDiagnostics();
  // The fold loop lost its pragma; the safe explicit i loop keeps its own.
  std::string irText = ir::dump(*res.module);
  size_t pragmas = 0;
  for (size_t p = irText.find("#pragma parallel"); p != std::string::npos;
       p = irText.find("#pragma parallel", p + 1))
    ++pragmas;
  EXPECT_EQ(pragmas, 1u) << irText;
}

TEST(ParSafeLang, StrictParallelFailsTranslationOnUnsafeClause) {
  driver::TranslateOptions opts;
  opts.strictParallel = true;
  auto res = test::translateXc(
      meansProgram("\n    transform { parallelize k; }"), opts);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.renderDiagnostics().find("error"), std::string::npos)
      << res.renderDiagnostics();
}

TEST(ParSafeLang, WnoParallelSilencesAutoDemotionWarnings) {
  // matrixMap auto-parallelizes its slice loop; mapping an IO-performing
  // function makes it unsafe, so it is demoted — with a warning under the
  // default -Wparallel, silently under -Wno-parallel.
  std::string src = R"(
Matrix float <1> noisy(Matrix float <1> x) {
  printFloat(x[0]);
  return x * 1.0;
}
int main() {
  Matrix float <2> m = with ([0,0] <= [i,j] < [2,3])
      genarray([2,3], (float)(i + j));
  Matrix float <2> r = matrixMap(noisy, m, [1]);
  printFloat(r[0,0]);
  return 0;
}
)";
  auto res = test::translateXc(src);
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  EXPECT_NE(res.renderDiagnostics().find("not auto-parallelizing"), std::string::npos)
      << res.renderDiagnostics();
  EXPECT_NE(res.renderDiagnostics().find("'noisy'"), std::string::npos)
      << res.renderDiagnostics();

  driver::TranslateOptions opts;
  opts.warnParallel = false;
  auto quiet = test::translateXc(src, opts);
  ASSERT_TRUE(quiet.ok) << quiet.renderDiagnostics();
  EXPECT_TRUE(quiet.diagnostics.empty());
}

TEST(ParSafeLang, ResultsIdenticalAcrossThreadCounts) {
  std::string safe = meansProgram("");
  EXPECT_EQ(test::runOk(safe, 1), test::runOk(safe, 8));
  // Even when the user asks for an unsafe schedule, demotion keeps the
  // observable result identical to the serial one.
  std::string demoted = meansProgram("\n    transform { parallelize k; }");
  EXPECT_EQ(test::runOk(demoted, 1), test::runOk(demoted, 8));
  EXPECT_EQ(test::runOk(safe, 1), test::runOk(demoted, 8));
}

TEST(ParSafeLang, AnalyzeReportListsLoopClassifications) {
  driver::TranslateOptions opts;
  opts.analyze = true;
  auto res = test::translateXc(meansProgram(""), opts);
  ASSERT_TRUE(res.ok) << res.renderDiagnostics();
  EXPECT_NE(res.analysisReport.find("parallel-safety analysis:"),
            std::string::npos)
      << res.analysisReport;
  EXPECT_NE(res.analysisReport.find("function main:"), std::string::npos)
      << res.analysisReport;
  EXPECT_NE(res.analysisReport.find("reduction"), std::string::npos)
      << res.analysisReport;
  EXPECT_NE(res.analysisReport.find("[parallel]"), std::string::npos)
      << res.analysisReport;
}

} // namespace
} // namespace mmx
