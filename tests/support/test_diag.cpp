#include "support/diag.hpp"

#include <gtest/gtest.h>

namespace mmx {
namespace {

TEST(Diagnostics, ErrorsAreCounted) {
  DiagnosticEngine d;
  EXPECT_FALSE(d.hasErrors());
  d.warning({}, "w");
  EXPECT_FALSE(d.hasErrors());
  d.error({}, "e1");
  d.error({}, "e2");
  EXPECT_TRUE(d.hasErrors());
  EXPECT_EQ(d.errorCount(), 2u);
  EXPECT_EQ(d.all().size(), 3u);
}

TEST(Diagnostics, RenderIncludesLocation) {
  SourceManager sm;
  FileId f = sm.add("prog.xc", "int x\nfloat y;");
  DiagnosticEngine d;
  d.error({{f, 6}, 11}, "expected ';'");
  std::string out = d.render(sm);
  EXPECT_NE(out.find("prog.xc:2:1: error: expected ';'"), std::string::npos);
}

TEST(Diagnostics, RenderWithoutLocationOmitsIt) {
  SourceManager sm;
  DiagnosticEngine d;
  d.note({}, "composed 3 extensions");
  EXPECT_EQ(d.render(sm), "note: composed 3 extensions\n");
}

TEST(Diagnostics, ClearEmpties) {
  DiagnosticEngine d;
  d.error({}, "x");
  d.clear();
  EXPECT_FALSE(d.hasErrors());
  EXPECT_TRUE(d.all().empty());
}

} // namespace
} // namespace mmx
