// Tests for the crash-safe flight recorder and the PMU sampling layer
// (ISSUE 10 pillars 2 and 3). The recorder is exercised through a real
// SIGSEGV/SIGABRT in a gtest death-test child; the parent then inspects
// the dump the dying process left behind. PMU tests accept both outcomes
// — a real sample on capable hosts, the presence-only pmu.skipped counter
// everywhere else (containers and CI usually deny perf_event_open).
#include "support/crash.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "support/metrics.hpp"
#include "support/perf.hpp"

namespace mmx {
namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

#if defined(__unix__) || defined(__APPLE__)

class CrashRecorderTest : public ::testing::Test {
protected:
  void SetUp() override {
    // Death-test children may coexist with harness threads (the interval
    // exporter, pool workers from earlier suites).
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

/// Populates the registry and crashes through an armed recorder; run
/// inside a death-test child so the parent survives to read the dump.
[[noreturn]] void crashWithRecorder(const std::string& path, int how) {
  metrics::enable(true);
  metrics::counter("crash.test.counter").add(3);
  metrics::histogram("crash.test.hist").record(17);
  metrics::traceSpan("crash-test-span", "test", 0, 7);
  crash::install(path.c_str());
  if (how == 0) {
    volatile int* p = nullptr;
    *p = 42; // SIGSEGV
  }
  std::abort(); // SIGABRT
}

TEST_F(CrashRecorderTest, SegvDumpsCountersSpansAndBacktrace) {
  std::string path = ::testing::TempDir() + "mmx_crash_segv.json";
  std::remove(path.c_str());
  EXPECT_DEATH(crashWithRecorder(path, 0), "");
  std::string json = readFile(path);
  ASSERT_FALSE(json.empty()) << "handler did not write " << path;
  EXPECT_NE(json.find("\"crash.signal\": 11"), std::string::npos) << json;
  EXPECT_NE(json.find("\"crash.signalName\": \"SIGSEGV\""),
            std::string::npos);
  EXPECT_NE(json.find("\"crash.test.counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"crash.test.hist.count\": 1"), std::string::npos);
  EXPECT_NE(json.find("crash-test-span"), std::string::npos);
  EXPECT_NE(json.find("\"backtrace\": ["), std::string::npos);
  // Complete document: the handler reached the closing brace.
  size_t lastNonWs = json.find_last_not_of(" \n\t");
  ASSERT_NE(lastNonWs, std::string::npos);
  EXPECT_EQ(json[lastNonWs], '}');
  std::remove(path.c_str());
}

TEST_F(CrashRecorderTest, AbortDumpsSigabrt) {
  std::string path = ::testing::TempDir() + "mmx_crash_abort.json";
  std::remove(path.c_str());
  EXPECT_DEATH(crashWithRecorder(path, 1), "");
  std::string json = readFile(path);
  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("\"crash.signalName\": \"SIGABRT\""),
            std::string::npos)
      << json;
  std::remove(path.c_str());
}

TEST_F(CrashRecorderTest, InstallFromEnvWithoutVarIsNoop) {
  ::unsetenv("MMX_CRASH_JSON");
  EXPECT_FALSE(crash::installFromEnv());
}

TEST_F(CrashRecorderTest, InstallFromEnvArmsRecorderInChild) {
  std::string path = ::testing::TempDir() + "mmx_crash_env.json";
  std::remove(path.c_str());
  EXPECT_DEATH(
      {
        ::setenv("MMX_CRASH_JSON", path.c_str(), 1);
        if (!crash::installFromEnv()) _exit(97); // wrong kind of death
        volatile int* p = nullptr;
        *p = 1;
      },
      "");
  std::string json = readFile(path);
  EXPECT_NE(json.find("\"crash.signal\": 11"), std::string::npos) << json;
  std::remove(path.c_str());
}

#endif // __unix__ || __APPLE__

TEST(Perf, NotRequestedByDefault) { EXPECT_FALSE(perf::requested()); }

TEST(Perf, SamplesOrSkipsGracefully) {
  metrics::enable(true);
  metrics::reset();
  perf::setRequested(true);
  if (perf::begin()) {
    // Capable host: a measured busy loop must read back a live sample.
    volatile double x = 0;
    for (int i = 0; i < 100000; ++i) x += i * 0.5;
    perf::Sample s = perf::end();
    EXPECT_TRUE(s.ok);
    EXPECT_GT(s.instructions, 0u);
  } else {
    // Denied host (typical in containers): the only trace is the
    // presence-only skip counter — no error, no partial rows.
    metrics::Snapshot snap = metrics::snapshot();
    uint64_t skipped = 0;
    for (const auto& c : snap.counters)
      if (c.name == "pmu.skipped") skipped = c.value;
    EXPECT_GE(skipped, 1u);
    EXPECT_FALSE(perf::available());
  }
  perf::setRequested(false);
  metrics::reset();
  metrics::enable(false);
}

TEST(Perf, RepeatBeginEndIsStable) {
  // Whatever the host supports, begin/end pairs must stay cheap and
  // consistent: the state machine never flips between open and denied.
  bool first = perf::begin();
  perf::end();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(perf::begin(), first);
    perf::Sample s = perf::end();
    EXPECT_EQ(s.ok, first);
  }
}

} // namespace
} // namespace mmx
