#include "support/bitset.hpp"

#include <gtest/gtest.h>

namespace mmx {
namespace {

TEST(DynBitset, SetTestReset) {
  DynBitset b(100);
  EXPECT_FALSE(b.test(63));
  b.set(63);
  b.set(64);
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_TRUE(b.test(64));
}

TEST(DynBitset, CountAndAny) {
  DynBitset b(130);
  EXPECT_FALSE(b.any());
  EXPECT_EQ(b.count(), 0u);
  b.set(0);
  b.set(129);
  EXPECT_TRUE(b.any());
  EXPECT_EQ(b.count(), 2u);
}

TEST(DynBitset, MergeReportsChange) {
  DynBitset a(70), b(70);
  b.set(69);
  EXPECT_TRUE(a.merge(b));
  EXPECT_FALSE(a.merge(b)); // already merged
  EXPECT_TRUE(a.test(69));
}

TEST(DynBitset, MergeSmallerUniverseIsSafe) {
  DynBitset big(130), small(60);
  small.set(3);
  EXPECT_TRUE(big.merge(small));
  EXPECT_TRUE(big.test(3));
  // And the reverse direction only merges the overlapping words.
  big.set(10);
  EXPECT_TRUE(small.merge(big));
  EXPECT_TRUE(small.test(10));
}

TEST(DynBitset, ForEachVisitsAscending) {
  DynBitset b(200);
  b.set(5);
  b.set(64);
  b.set(199);
  std::vector<size_t> seen;
  b.forEach([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<size_t>{5, 64, 199}));
}

TEST(DynBitset, EqualityComparesContentAndSize) {
  DynBitset a(64), b(64), c(65);
  a.set(1);
  EXPECT_NE(a, b);
  b.set(1);
  EXPECT_EQ(a, b);
  c.set(1);
  EXPECT_NE(a, c); // different universes
}

TEST(DynBitset, ClearResetsAll) {
  DynBitset a(128);
  a.set(0);
  a.set(127);
  a.clear();
  EXPECT_FALSE(a.any());
}

} // namespace
} // namespace mmx
