// Tests for the pipeline observability layer: counters, timers, trace
// spans, the disabled no-op guarantee, cross-thread aggregation, and the
// three render formats.
#include "support/metrics.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace mmx::metrics {
namespace {

/// Re-enables metrics for one test and restores the prior state (tests
/// share one process-wide registry).
class MetricsGuard {
public:
  MetricsGuard() : was_(enabled()) {
    enable(true);
    reset();
  }
  ~MetricsGuard() {
    reset();
    enable(was_);
  }

private:
  bool was_;
};

TEST(Metrics, DisabledCountersAreNoops) {
  enable(false);
  Counter c = counter("test.disabled");
  c.add(42);
  EXPECT_EQ(c.value(), 0u);
  Timer t = timer("test.disabledTimer");
  t.record(1000);
  traceSpan("x", "y", 0, 10);
  Snapshot s = snapshot();
  for (const auto& row : s.counters) EXPECT_NE(row.name, "test.disabled");
  for (const auto& row : s.timers) EXPECT_NE(row.name, "test.disabledTimer");
  EXPECT_TRUE(s.events.empty());
}

TEST(Metrics, CounterAccumulates) {
  MetricsGuard g;
  Counter c = counter("test.counter");
  c.add();
  c.add(9);
  EXPECT_EQ(c.value(), 10u);
  Snapshot s = snapshot();
  bool found = false;
  for (const auto& row : s.counters)
    if (row.name == "test.counter") {
      found = true;
      EXPECT_EQ(row.value, 10u);
    }
  EXPECT_TRUE(found);
}

TEST(Metrics, SameNameSameHandle) {
  MetricsGuard g;
  counter("test.shared").add(3);
  counter("test.shared").add(4);
  EXPECT_EQ(counter("test.shared").value(), 7u);
}

TEST(Metrics, ResetZeroesButKeepsHandlesValid) {
  MetricsGuard g;
  Counter c = counter("test.reset");
  c.add(5);
  reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);
  EXPECT_EQ(c.value(), 2u);
}

TEST(Metrics, TimerRecordsCountTotalMax) {
  MetricsGuard g;
  Timer t = timer("test.timer");
  t.record(100);
  t.record(300);
  t.record(200);
  Snapshot s = snapshot();
  bool found = false;
  for (const auto& row : s.timers)
    if (row.name == "test.timer") {
      found = true;
      EXPECT_EQ(row.count, 3u);
      EXPECT_EQ(row.totalNs, 600u);
      EXPECT_EQ(row.maxNs, 300u);
    }
  EXPECT_TRUE(found);
}

TEST(Metrics, CountsSurviveThreadExit) {
  MetricsGuard g;
  Counter c = counter("test.threads");
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i)
    threads.emplace_back([&] {
      for (int k = 0; k < 1000; ++k) c.add();
    });
  for (auto& t : threads) t.join();
  // The worker shards were destroyed with the threads; their totals must
  // have been flushed into the registry.
  EXPECT_EQ(c.value(), 4000u);
}

TEST(Metrics, ScopedTimerEmitsTimerAndSpan) {
  MetricsGuard g;
  { ScopedTimer t("test.phase", "testcat"); }
  Snapshot s = snapshot();
  bool timerFound = false;
  for (const auto& row : s.timers)
    if (row.name == "test.phase") timerFound = true;
  EXPECT_TRUE(timerFound);
  ASSERT_EQ(s.events.size(), 1u);
  EXPECT_EQ(s.events[0].name, "test.phase");
  EXPECT_EQ(s.events[0].category, "testcat");
}

TEST(Metrics, NowNsIsMonotonic) {
  uint64_t a = nowNs();
  uint64_t b = nowNs();
  EXPECT_LE(a, b);
}

TEST(Metrics, StatsJsonIsFlatAndContainsRows) {
  MetricsGuard g;
  counter("test.json").add(7);
  timer("test.jsonTimer").record(1234);
  std::string json = renderStatsJson(snapshot());
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"test.json\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.jsonTimer.ns\": 1234"), std::string::npos);
  EXPECT_NE(json.find("\"test.jsonTimer.count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"test.jsonTimer.max_ns\": 1234"), std::string::npos);
}

TEST(Metrics, TraceJsonHasTraceEventsArray) {
  MetricsGuard g;
  traceSpan("spanA", "phase", 1000, 2000);
  std::string json = renderTraceJson(snapshot());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"spanA\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Microsecond timestamps: 1000ns -> 1.000us, 2000ns -> 2.000us.
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":2.000"), std::string::npos) << json;
}

TEST(Metrics, SteadyClockBacksTimestamps) {
  // The observability layer's timestamps must come from a monotonic
  // source — wall-clock (system_clock) would tear spans across NTP steps.
  // The compile-time assert lives in metrics.cpp; this documents and
  // pins the runtime guarantee.
  static_assert(std::chrono::steady_clock::is_steady);
  uint64_t a = nowNs();
  uint64_t b = nowNs();
  EXPECT_LE(a, b);
}

TEST(Metrics, JsonEscapesHostileNames) {
  // Span and counter names flow into JSON verbatim from instrumentation
  // sites (which may embed file paths); quotes, backslashes, newlines,
  // and control bytes must round-trip as valid JSON.
  MetricsGuard g;
  const char* hostile = "evil\"name\\with\nnewline\tand\x01" "ctrl";
  counter(hostile).add(7);
  traceSpan(hostile, "cat\"egory", 1000, 2000);
  auto snap = snapshot();

  std::string stats = renderStatsJson(snap);
  EXPECT_NE(stats.find("\"evil\\\"name\\\\with\\nnewline\\tand\\u0001ctrl\""),
            std::string::npos)
      << stats;
  // No raw quote/control byte survives inside any string literal.
  EXPECT_EQ(stats.find("evil\"name"), std::string::npos);

  std::string trace = renderTraceJson(snap);
  EXPECT_NE(trace.find("\"evil\\\"name\\\\with\\nnewline\\tand\\u0001ctrl\""),
            std::string::npos)
      << trace;
  EXPECT_NE(trace.find("\"cat\\\"egory\""), std::string::npos);
}

TEST(Metrics, GaugesArePolledAtSnapshot) {
  MetricsGuard g;
  static uint64_t value = 0;
  registerGauge("test.gauge", [] { return value; });
  // Zero-valued gauges stay out of the snapshot (they'd be noise in every
  // stats file); nonzero values appear as counter rows.
  auto empty = snapshot();
  for (const auto& c : empty.counters) EXPECT_NE(c.name, "test.gauge");
  value = 41;
  auto snap = snapshot();
  bool found = false;
  for (const auto& c : snap.counters)
    if (c.name == "test.gauge") {
      found = true;
      EXPECT_EQ(c.value, 41u);
    }
  EXPECT_TRUE(found);
  // Re-registering the same name replaces the callback instead of
  // duplicating the row.
  registerGauge("test.gauge", [] { return uint64_t{5}; });
  int rows = 0;
  for (const auto& c : snapshot().counters)
    if (c.name == "test.gauge") ++rows;
  EXPECT_EQ(rows, 1);
}

TEST(Metrics, SnapshotIncludeZerosKeepsExplicitZeroRows) {
  // `--analyze --stats-json` consumers diff runs against baselines, so a
  // pass that found nothing must still emit its counters as explicit
  // zeros (ISSUE 6): snapshot(true) keeps zero-valued rows the default
  // snapshot drops.
  MetricsGuard g;
  counter("test.zeroCounter");
  timer("test.zeroTimer");
  registerGauge("test.zeroGauge", [] { return uint64_t{0}; });
  counter("test.nonzero").add(2);

  auto names = [](const Snapshot& s) {
    std::set<std::string> out;
    for (const auto& c : s.counters) out.insert(c.name);
    for (const auto& t : s.timers) out.insert(t.name);
    return out;
  };

  auto dropped = names(snapshot());
  EXPECT_FALSE(dropped.count("test.zeroCounter"));
  EXPECT_FALSE(dropped.count("test.zeroTimer"));
  EXPECT_FALSE(dropped.count("test.zeroGauge"));
  EXPECT_TRUE(dropped.count("test.nonzero"));

  auto kept = names(snapshot(/*includeZeros=*/true));
  EXPECT_TRUE(kept.count("test.zeroCounter"));
  EXPECT_TRUE(kept.count("test.zeroTimer"));
  EXPECT_TRUE(kept.count("test.zeroGauge"));

  std::string json = renderStatsJson(snapshot(true));
  EXPECT_NE(json.find("\"test.zeroCounter\": 0"), std::string::npos) << json;
}

TEST(Metrics, TimeReportAlwaysShowsKernelCounters) {
  // The --time-report counter section pins the kernel/pool headline rows
  // even when they are zero, so a run that never hit the matmul engine
  // still renders a comparable table.
  MetricsGuard g;
  std::string report = renderTimeReport(snapshot());
  EXPECT_NE(report.find("kernel.matmul.tiles"), std::string::npos) << report;
  EXPECT_NE(report.find("kernel.matmul.packedBytes"), std::string::npos);
  EXPECT_NE(report.find("pool.inlinedDispatches"), std::string::npos);
}

TEST(Metrics, TimeReportMentionsPhaseAndCounter) {
  MetricsGuard g;
  counter("test.reportCounter").add(1);
  timer("test.reportPhase").record(5000);
  std::string report = renderTimeReport(snapshot());
  EXPECT_NE(report.find("test.reportPhase"), std::string::npos) << report;
  EXPECT_NE(report.find("test.reportCounter"), std::string::npos) << report;
}

// --- histograms (ISSUE 10 pillar 1) ---------------------------------------

TEST(Metrics, HistogramDisabledIsNoop) {
  enable(false);
  Histogram h = histogram("test.hist.disabled");
  h.record(123);
  enable(true);
  Snapshot s = snapshot();
  enable(false);
  for (const auto& row : s.histograms)
    EXPECT_NE(row.name, "test.hist.disabled");
}

TEST(Metrics, HistogramCountSumMax) {
  MetricsGuard g;
  Histogram h = histogram("test.hist.basic");
  h.record(3);
  h.record(5);
  h.record(100);
  Snapshot s = snapshot();
  bool found = false;
  for (const auto& row : s.histograms)
    if (row.name == "test.hist.basic") {
      found = true;
      EXPECT_EQ(row.count, 3u);
      EXPECT_EQ(row.sum, 108u);
      EXPECT_EQ(row.max, 100u);
      // Quantiles are log2-bucket estimates, but they are bounded by the
      // observed extremes and ordered.
      EXPECT_LE(row.p50, row.p95);
      EXPECT_LE(row.p95, row.p99);
      EXPECT_LE(row.p99, row.max);
    }
  EXPECT_TRUE(found);
}

TEST(Metrics, HistogramSingleValueQuantilesAreExact) {
  // One sample: every quantile clamps to the observed max — the estimate
  // must not invent values outside what was recorded.
  MetricsGuard g;
  Histogram h = histogram("test.hist.single");
  h.record(777);
  Snapshot s = snapshot();
  for (const auto& row : s.histograms)
    if (row.name == "test.hist.single") {
      EXPECT_EQ(row.p50, 777u);
      EXPECT_EQ(row.p95, 777u);
      EXPECT_EQ(row.p99, 777u);
      EXPECT_EQ(row.max, 777u);
    }
}

TEST(Metrics, HistogramZeroValuesLandInBucketZero) {
  MetricsGuard g;
  Histogram h = histogram("test.hist.zeros");
  h.record(0);
  h.record(0);
  Snapshot s = snapshot();
  for (const auto& row : s.histograms)
    if (row.name == "test.hist.zeros") {
      EXPECT_EQ(row.count, 2u);
      EXPECT_EQ(row.sum, 0u);
      EXPECT_EQ(row.max, 0u);
      EXPECT_EQ(row.p50, 0u);
      EXPECT_EQ(row.p99, 0u);
    }
}

TEST(Metrics, HistogramSkewedQuantilesSeparate) {
  // 90 small values and 10 huge ones: p50 must stay near the bulk while
  // p99/max see the tail — the property dashboards rely on.
  MetricsGuard g;
  Histogram h = histogram("test.hist.skew");
  for (int i = 0; i < 90; ++i) h.record(8);
  for (int i = 0; i < 10; ++i) h.record(1 << 20);
  Snapshot s = snapshot();
  for (const auto& row : s.histograms)
    if (row.name == "test.hist.skew") {
      EXPECT_LE(row.p50, 16u);
      EXPECT_GE(row.p99, 1u << 19);
      EXPECT_EQ(row.max, 1u << 20);
    }
}

TEST(Metrics, HistogramRowsRenderInStatsJsonAndTimeReport) {
  MetricsGuard g;
  histogram("test.hist.render").record(42);
  Snapshot s = snapshot();
  std::string json = renderStatsJson(s);
  EXPECT_NE(json.find("\"test.hist.render.count\": 1"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"test.hist.render.sum\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"test.hist.render.p50\": "), std::string::npos);
  EXPECT_NE(json.find("\"test.hist.render.p95\": "), std::string::npos);
  EXPECT_NE(json.find("\"test.hist.render.p99\": "), std::string::npos);
  EXPECT_NE(json.find("\"test.hist.render.max\": 42"), std::string::npos);
  std::string report = renderTimeReport(s);
  EXPECT_NE(report.find("=== histograms ==="), std::string::npos) << report;
  EXPECT_NE(report.find("test.hist.render"), std::string::npos);
}

TEST(Metrics, HistogramSameNameSameCell) {
  MetricsGuard g;
  Histogram a = histogram("test.hist.shared");
  Histogram b = histogram("test.hist.shared");
  a.record(1);
  b.record(2);
  Snapshot s = snapshot();
  for (const auto& row : s.histograms)
    if (row.name == "test.hist.shared") EXPECT_EQ(row.count, 2u);
}

// --- trace saturation (ISSUE 10 satellite) --------------------------------

TEST(Metrics, TraceBufferSaturationCountsDropsAndStaysWellFormed) {
  // Shrink the cap so the test can overflow it quickly, then emit more
  // spans than fit: every span past the cap must count into
  // trace.droppedEvents while the trace JSON stays parseable with exactly
  // `cap` events.
  MetricsGuard g;
  constexpr size_t kCap = 1u << 16; // the emitted-C ring size, shrunk here
  constexpr size_t kEmit = kCap + 300;
  detail::setTraceCapForTest(kCap);
  for (size_t i = 0; i < kEmit; ++i) traceSpan("span", "test", i, 1);
  Snapshot s = snapshot();
  EXPECT_EQ(s.events.size(), kCap);
  EXPECT_EQ(s.droppedEvents, kEmit - kCap);

  std::string json = renderStatsJson(s);
  EXPECT_NE(json.find("\"trace.droppedEvents\": 300"), std::string::npos)
      << json;
  std::string report = renderTimeReport(s);
  EXPECT_NE(report.find("trace buffer saturated"), std::string::npos)
      << report;

  // The trace JSON itself stays well-formed at the cap: one event object
  // per retained span, array closed, trailing newline intact.
  std::string trace = renderTraceJson(s);
  size_t events = 0;
  for (size_t p = trace.find("\"ph\""); p != std::string::npos;
       p = trace.find("\"ph\"", p + 1))
    ++events;
  EXPECT_EQ(events, kCap);
  EXPECT_EQ(trace.back(), '\n');
  EXPECT_NE(trace.find("\n],"), std::string::npos);
}

TEST(Metrics, DroppedEventsRowOmittedWhenZero) {
  MetricsGuard g;
  traceSpan("span", "test", 0, 1);
  std::string json = renderStatsJson(snapshot());
  EXPECT_EQ(json.find("trace.droppedEvents"), std::string::npos) << json;
}

// --- continuous export (ISSUE 10 pillar 4) --------------------------------

TEST(Metrics, IntervalExportWritesJsonlDeltas) {
  MetricsGuard g;
  std::string path = ::testing::TempDir() + "mmx_metrics_export_test.jsonl";
  counter("test.export.counter").add(5);
  ASSERT_TRUE(startIntervalExport(path, 5));
  counter("test.export.counter").add(3);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  stopIntervalExport();
  stopIntervalExport(); // idempotent

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) lines.push_back(line);
  // Synchronous first line plus at least the final flush.
  ASSERT_GE(lines.size(), 2u);
  EXPECT_NE(lines.front().find("\"export.seq\": 0"), std::string::npos)
      << lines.front();
  EXPECT_NE(lines.front().find("\"export.ts_ms\": "), std::string::npos);
  // The counter's 8 total ticks appear as deltas across the stream; every
  // line is one object on one line.
  uint64_t total = 0;
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    constexpr std::string_view kKey = "\"test.export.counter\": ";
    size_t p = line.find(kKey);
    if (p != std::string::npos)
      total += std::strtoull(line.c_str() + p + kKey.size(), nullptr, 10);
  }
  EXPECT_EQ(total, 8u);
  std::remove(path.c_str());
}

TEST(Metrics, IntervalExportRejectsUnwritablePath) {
  MetricsGuard g;
  EXPECT_FALSE(startIntervalExport("/nonexistent-dir/x/y/z.jsonl", 5));
  stopIntervalExport(); // harmless when nothing started
}

// --- crash snapshot writer (ISSUE 10 pillar 3) ----------------------------

#if defined(__unix__) || defined(__APPLE__)
TEST(Metrics, WriteCrashJsonSnapshotsRegistryWithoutLocks) {
  MetricsGuard g;
  counter("test.crash.counter").add(7);
  timer("test.crash.phase").record(1234);
  histogram("test.crash.hist").record(9);
  traceSpan("crash-span", "test", 0, 5);

  std::string path = ::testing::TempDir() + "mmx_metrics_crash_test.json";
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  void* frames[2];
  frames[0] = reinterpret_cast<void*>(&enable);
  frames[1] = nullptr;
  writeCrashJson(fd, 11, "SIGSEGV", frames, 1);
  ::close(fd);

  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string json = ss.str();
  EXPECT_NE(json.find("\"crash.signal\": 11"), std::string::npos) << json;
  EXPECT_NE(json.find("\"crash.signalName\": \"SIGSEGV\""),
            std::string::npos);
  EXPECT_NE(json.find("\"test.crash.counter\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"test.crash.phase.count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"test.crash.hist.count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"test.crash.hist.sum\": 9"), std::string::npos);
  EXPECT_NE(json.find("crash-span"), std::string::npos);
  EXPECT_NE(json.find("\"backtrace\": ["), std::string::npos);
  EXPECT_NE(json.find("\"events\": ["), std::string::npos);
  // Balanced object: opens with '{', the last non-whitespace char is '}'.
  EXPECT_EQ(json.front(), '{');
  size_t lastNonWs = json.find_last_not_of(" \n\t");
  ASSERT_NE(lastNonWs, std::string::npos);
  EXPECT_EQ(json[lastNonWs], '}');
  std::remove(path.c_str());
}
#endif

} // namespace
} // namespace mmx::metrics
