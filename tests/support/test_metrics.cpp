// Tests for the pipeline observability layer: counters, timers, trace
// spans, the disabled no-op guarantee, cross-thread aggregation, and the
// three render formats.
#include "support/metrics.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace mmx::metrics {
namespace {

/// Re-enables metrics for one test and restores the prior state (tests
/// share one process-wide registry).
class MetricsGuard {
public:
  MetricsGuard() : was_(enabled()) {
    enable(true);
    reset();
  }
  ~MetricsGuard() {
    reset();
    enable(was_);
  }

private:
  bool was_;
};

TEST(Metrics, DisabledCountersAreNoops) {
  enable(false);
  Counter c = counter("test.disabled");
  c.add(42);
  EXPECT_EQ(c.value(), 0u);
  Timer t = timer("test.disabledTimer");
  t.record(1000);
  traceSpan("x", "y", 0, 10);
  Snapshot s = snapshot();
  for (const auto& row : s.counters) EXPECT_NE(row.name, "test.disabled");
  for (const auto& row : s.timers) EXPECT_NE(row.name, "test.disabledTimer");
  EXPECT_TRUE(s.events.empty());
}

TEST(Metrics, CounterAccumulates) {
  MetricsGuard g;
  Counter c = counter("test.counter");
  c.add();
  c.add(9);
  EXPECT_EQ(c.value(), 10u);
  Snapshot s = snapshot();
  bool found = false;
  for (const auto& row : s.counters)
    if (row.name == "test.counter") {
      found = true;
      EXPECT_EQ(row.value, 10u);
    }
  EXPECT_TRUE(found);
}

TEST(Metrics, SameNameSameHandle) {
  MetricsGuard g;
  counter("test.shared").add(3);
  counter("test.shared").add(4);
  EXPECT_EQ(counter("test.shared").value(), 7u);
}

TEST(Metrics, ResetZeroesButKeepsHandlesValid) {
  MetricsGuard g;
  Counter c = counter("test.reset");
  c.add(5);
  reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);
  EXPECT_EQ(c.value(), 2u);
}

TEST(Metrics, TimerRecordsCountTotalMax) {
  MetricsGuard g;
  Timer t = timer("test.timer");
  t.record(100);
  t.record(300);
  t.record(200);
  Snapshot s = snapshot();
  bool found = false;
  for (const auto& row : s.timers)
    if (row.name == "test.timer") {
      found = true;
      EXPECT_EQ(row.count, 3u);
      EXPECT_EQ(row.totalNs, 600u);
      EXPECT_EQ(row.maxNs, 300u);
    }
  EXPECT_TRUE(found);
}

TEST(Metrics, CountsSurviveThreadExit) {
  MetricsGuard g;
  Counter c = counter("test.threads");
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i)
    threads.emplace_back([&] {
      for (int k = 0; k < 1000; ++k) c.add();
    });
  for (auto& t : threads) t.join();
  // The worker shards were destroyed with the threads; their totals must
  // have been flushed into the registry.
  EXPECT_EQ(c.value(), 4000u);
}

TEST(Metrics, ScopedTimerEmitsTimerAndSpan) {
  MetricsGuard g;
  { ScopedTimer t("test.phase", "testcat"); }
  Snapshot s = snapshot();
  bool timerFound = false;
  for (const auto& row : s.timers)
    if (row.name == "test.phase") timerFound = true;
  EXPECT_TRUE(timerFound);
  ASSERT_EQ(s.events.size(), 1u);
  EXPECT_EQ(s.events[0].name, "test.phase");
  EXPECT_EQ(s.events[0].category, "testcat");
}

TEST(Metrics, NowNsIsMonotonic) {
  uint64_t a = nowNs();
  uint64_t b = nowNs();
  EXPECT_LE(a, b);
}

TEST(Metrics, StatsJsonIsFlatAndContainsRows) {
  MetricsGuard g;
  counter("test.json").add(7);
  timer("test.jsonTimer").record(1234);
  std::string json = renderStatsJson(snapshot());
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"test.json\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.jsonTimer.ns\": 1234"), std::string::npos);
  EXPECT_NE(json.find("\"test.jsonTimer.count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"test.jsonTimer.max_ns\": 1234"), std::string::npos);
}

TEST(Metrics, TraceJsonHasTraceEventsArray) {
  MetricsGuard g;
  traceSpan("spanA", "phase", 1000, 2000);
  std::string json = renderTraceJson(snapshot());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"spanA\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Microsecond timestamps: 1000ns -> 1.000us, 2000ns -> 2.000us.
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":2.000"), std::string::npos) << json;
}

TEST(Metrics, SteadyClockBacksTimestamps) {
  // The observability layer's timestamps must come from a monotonic
  // source — wall-clock (system_clock) would tear spans across NTP steps.
  // The compile-time assert lives in metrics.cpp; this documents and
  // pins the runtime guarantee.
  static_assert(std::chrono::steady_clock::is_steady);
  uint64_t a = nowNs();
  uint64_t b = nowNs();
  EXPECT_LE(a, b);
}

TEST(Metrics, JsonEscapesHostileNames) {
  // Span and counter names flow into JSON verbatim from instrumentation
  // sites (which may embed file paths); quotes, backslashes, newlines,
  // and control bytes must round-trip as valid JSON.
  MetricsGuard g;
  const char* hostile = "evil\"name\\with\nnewline\tand\x01" "ctrl";
  counter(hostile).add(7);
  traceSpan(hostile, "cat\"egory", 1000, 2000);
  auto snap = snapshot();

  std::string stats = renderStatsJson(snap);
  EXPECT_NE(stats.find("\"evil\\\"name\\\\with\\nnewline\\tand\\u0001ctrl\""),
            std::string::npos)
      << stats;
  // No raw quote/control byte survives inside any string literal.
  EXPECT_EQ(stats.find("evil\"name"), std::string::npos);

  std::string trace = renderTraceJson(snap);
  EXPECT_NE(trace.find("\"evil\\\"name\\\\with\\nnewline\\tand\\u0001ctrl\""),
            std::string::npos)
      << trace;
  EXPECT_NE(trace.find("\"cat\\\"egory\""), std::string::npos);
}

TEST(Metrics, GaugesArePolledAtSnapshot) {
  MetricsGuard g;
  static uint64_t value = 0;
  registerGauge("test.gauge", [] { return value; });
  // Zero-valued gauges stay out of the snapshot (they'd be noise in every
  // stats file); nonzero values appear as counter rows.
  auto empty = snapshot();
  for (const auto& c : empty.counters) EXPECT_NE(c.name, "test.gauge");
  value = 41;
  auto snap = snapshot();
  bool found = false;
  for (const auto& c : snap.counters)
    if (c.name == "test.gauge") {
      found = true;
      EXPECT_EQ(c.value, 41u);
    }
  EXPECT_TRUE(found);
  // Re-registering the same name replaces the callback instead of
  // duplicating the row.
  registerGauge("test.gauge", [] { return uint64_t{5}; });
  int rows = 0;
  for (const auto& c : snapshot().counters)
    if (c.name == "test.gauge") ++rows;
  EXPECT_EQ(rows, 1);
}

TEST(Metrics, SnapshotIncludeZerosKeepsExplicitZeroRows) {
  // `--analyze --stats-json` consumers diff runs against baselines, so a
  // pass that found nothing must still emit its counters as explicit
  // zeros (ISSUE 6): snapshot(true) keeps zero-valued rows the default
  // snapshot drops.
  MetricsGuard g;
  counter("test.zeroCounter");
  timer("test.zeroTimer");
  registerGauge("test.zeroGauge", [] { return uint64_t{0}; });
  counter("test.nonzero").add(2);

  auto names = [](const Snapshot& s) {
    std::set<std::string> out;
    for (const auto& c : s.counters) out.insert(c.name);
    for (const auto& t : s.timers) out.insert(t.name);
    return out;
  };

  auto dropped = names(snapshot());
  EXPECT_FALSE(dropped.count("test.zeroCounter"));
  EXPECT_FALSE(dropped.count("test.zeroTimer"));
  EXPECT_FALSE(dropped.count("test.zeroGauge"));
  EXPECT_TRUE(dropped.count("test.nonzero"));

  auto kept = names(snapshot(/*includeZeros=*/true));
  EXPECT_TRUE(kept.count("test.zeroCounter"));
  EXPECT_TRUE(kept.count("test.zeroTimer"));
  EXPECT_TRUE(kept.count("test.zeroGauge"));

  std::string json = renderStatsJson(snapshot(true));
  EXPECT_NE(json.find("\"test.zeroCounter\": 0"), std::string::npos) << json;
}

TEST(Metrics, TimeReportAlwaysShowsKernelCounters) {
  // The --time-report counter section pins the kernel/pool headline rows
  // even when they are zero, so a run that never hit the matmul engine
  // still renders a comparable table.
  MetricsGuard g;
  std::string report = renderTimeReport(snapshot());
  EXPECT_NE(report.find("kernel.matmul.tiles"), std::string::npos) << report;
  EXPECT_NE(report.find("kernel.matmul.packedBytes"), std::string::npos);
  EXPECT_NE(report.find("pool.inlinedDispatches"), std::string::npos);
}

TEST(Metrics, TimeReportMentionsPhaseAndCounter) {
  MetricsGuard g;
  counter("test.reportCounter").add(1);
  timer("test.reportPhase").record(5000);
  std::string report = renderTimeReport(snapshot());
  EXPECT_NE(report.find("test.reportPhase"), std::string::npos) << report;
  EXPECT_NE(report.find("test.reportCounter"), std::string::npos) << report;
}

} // namespace
} // namespace mmx::metrics
