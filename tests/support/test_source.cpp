#include "support/source.hpp"

#include <gtest/gtest.h>

namespace mmx {
namespace {

TEST(SourceManager, SingleLineLineCol) {
  SourceManager sm;
  FileId f = sm.add("a.xc", "int x;");
  EXPECT_EQ(sm.lineCol({f, 0}).line, 1u);
  EXPECT_EQ(sm.lineCol({f, 0}).col, 1u);
  EXPECT_EQ(sm.lineCol({f, 4}).col, 5u);
}

TEST(SourceManager, MultiLineLineCol) {
  SourceManager sm;
  FileId f = sm.add("a.xc", "ab\ncd\nef");
  EXPECT_EQ(sm.lineCol({f, 0}).line, 1u);
  EXPECT_EQ(sm.lineCol({f, 3}).line, 2u);
  EXPECT_EQ(sm.lineCol({f, 3}).col, 1u);
  EXPECT_EQ(sm.lineCol({f, 7}).line, 3u);
  EXPECT_EQ(sm.lineCol({f, 7}).col, 2u);
}

TEST(SourceManager, LocationAtNewlineBelongsToItsLine) {
  SourceManager sm;
  FileId f = sm.add("a.xc", "ab\ncd");
  EXPECT_EQ(sm.lineCol({f, 2}).line, 1u); // the '\n' itself
  EXPECT_EQ(sm.lineCol({f, 2}).col, 3u);
}

TEST(SourceManager, SnippetExtractsRange) {
  SourceManager sm;
  FileId f = sm.add("a.xc", "Matrix float <3> mat;");
  SourceRange r{{f, 0}, 6};
  EXPECT_EQ(sm.snippet(r), "Matrix");
}

TEST(SourceManager, SnippetClampsOutOfRange) {
  SourceManager sm;
  FileId f = sm.add("a.xc", "abc");
  SourceRange r{{f, 2}, 99};
  EXPECT_EQ(sm.snippet(r), "c");
}

TEST(SourceManager, MultipleFilesIndependent) {
  SourceManager sm;
  FileId a = sm.add("a.xc", "aaa");
  FileId b = sm.add("b.xc", "bbbb");
  EXPECT_EQ(sm.name(a), "a.xc");
  EXPECT_EQ(sm.name(b), "b.xc");
  EXPECT_EQ(sm.text(b), "bbbb");
  EXPECT_EQ(sm.fileCount(), 2u);
}

TEST(SourceManager, InvalidLocGivesZeroLineCol) {
  SourceManager sm;
  EXPECT_EQ(sm.lineCol(SourceLoc{}).line, 0u);
}

} // namespace
} // namespace mmx
