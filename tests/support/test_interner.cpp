#include "support/interner.hpp"

#include <gtest/gtest.h>

namespace mmx {
namespace {

TEST(Interner, InternReturnsSameSymbolForSameString) {
  Interner in;
  Symbol a = in.intern("hello");
  Symbol b = in.intern("hello");
  EXPECT_EQ(a, b);
  EXPECT_EQ(in.size(), 1u);
}

TEST(Interner, DistinctStringsGetDistinctSymbols) {
  Interner in;
  Symbol a = in.intern("foo");
  Symbol b = in.intern("bar");
  EXPECT_NE(a, b);
  EXPECT_EQ(in.size(), 2u);
}

TEST(Interner, TextRoundTrips) {
  Interner in;
  Symbol a = in.intern("matrixMap");
  EXPECT_EQ(in.text(a), "matrixMap");
}

TEST(Interner, DefaultSymbolIsInvalid) {
  Symbol s;
  EXPECT_FALSE(s.valid());
  Interner in;
  EXPECT_NE(s, in.intern("x"));
}

TEST(Interner, TextOfInvalidSymbolThrows) {
  Interner in;
  EXPECT_THROW(in.text(Symbol{}), std::out_of_range);
}

// Regression guard for the SSO/reallocation pitfall: intern enough short
// strings to force repeated growth, then verify every lookup still works.
TEST(Interner, ManyShortStringsRemainStable) {
  Interner in;
  std::vector<Symbol> syms;
  for (int i = 0; i < 5000; ++i)
    syms.push_back(in.intern("s" + std::to_string(i)));
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(in.text(syms[i]), "s" + std::to_string(i));
    EXPECT_EQ(in.intern("s" + std::to_string(i)), syms[i]);
  }
}

TEST(Interner, EmptyStringIsInternable) {
  Interner in;
  Symbol e = in.intern("");
  EXPECT_TRUE(e.valid());
  EXPECT_EQ(in.text(e), "");
}

} // namespace
} // namespace mmx
