// MATLAB-style indexing semantics (paper §III-A3) executed through the IR:
// the four selector kinds on both sides of assignment, in combinations, on
// matrices of arbitrary rank.
#include <gtest/gtest.h>

#include "interp/interp.hpp"

namespace mmx::interp {
namespace {

using namespace mmx::ir;
using rt::Matrix;

/// Builds a function "idx" taking a matrix and returning expr-with-dims
/// applied to it, then runs it on `input`.
Value runIndex(std::vector<IndexDim> dims, const Matrix& input) {
  Module m;
  Function* f = m.add("idx");
  f->numParams = 1;
  f->rets = {Ty::Mat}; // checked loosely; scalar results also pass through
  f->addLocal("m", Ty::Mat);
  auto e = std::make_unique<Expr>();
  e->k = Expr::K::Index;
  e->ty = Ty::Mat;
  e->args.push_back(var(0, Ty::Mat));
  e->dims = std::move(dims);
  std::vector<ExprPtr> rv;
  rv.push_back(std::move(e));
  std::vector<StmtPtr> body;
  body.push_back(ret(std::move(rv)));
  f->body = block(std::move(body));
  rt::SerialExecutor ex;
  Machine vm(m, ex);
  return vm.call("idx", {input})[0];
}

IndexDim scalarD(int32_t v) {
  IndexDim d;
  d.kind = IndexDim::Kind::Scalar;
  d.a = constI(v);
  return d;
}
IndexDim rangeD(int32_t a, int32_t b) {
  IndexDim d;
  d.kind = IndexDim::Kind::Range;
  d.a = constI(a);
  d.b = constI(b);
  return d;
}
IndexDim allD() {
  IndexDim d;
  d.kind = IndexDim::Kind::All;
  return d;
}

Matrix m34() {
  // [[0,1,2,3],[10,11,12,13],[20,21,22,23]]
  std::vector<float> v;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 4; ++j) v.push_back(static_cast<float>(10 * i + j));
  return Matrix::fromF32({3, 4}, v);
}

TEST(Indexing, AllScalarsExtractElement) {
  std::vector<IndexDim> dims;
  dims.push_back(scalarD(1));
  dims.push_back(scalarD(2));
  Value r = runIndex(std::move(dims), m34());
  EXPECT_FLOAT_EQ(std::get<float>(r), 12.f);
}

TEST(Indexing, RangeIsInclusive) {
  // data[0:1, 1:3] -> 2x3 (paper: 0:4 yields five elements)
  std::vector<IndexDim> dims;
  dims.push_back(rangeD(0, 1));
  dims.push_back(rangeD(1, 3));
  Matrix r = std::get<Matrix>(runIndex(std::move(dims), m34()));
  EXPECT_TRUE(r.equals(Matrix::fromF32({2, 3}, {1, 2, 3, 11, 12, 13})));
}

TEST(Indexing, WholeDimensionColon) {
  // data[1, :] -> vector of row 1 (scalar dim dropped)
  std::vector<IndexDim> dims;
  dims.push_back(scalarD(1));
  dims.push_back(allD());
  Matrix r = std::get<Matrix>(runIndex(std::move(dims), m34()));
  EXPECT_EQ(r.rank(), 1u);
  EXPECT_TRUE(r.equals(Matrix::fromF32({4}, {10, 11, 12, 13})));
}

TEST(Indexing, ColumnExtraction) {
  std::vector<IndexDim> dims;
  dims.push_back(allD());
  dims.push_back(scalarD(0));
  Matrix r = std::get<Matrix>(runIndex(std::move(dims), m34()));
  EXPECT_TRUE(r.equals(Matrix::fromF32({3}, {0, 10, 20})));
}

TEST(Indexing, LogicalMaskSelectsRows) {
  // data[mask, :] with mask = {true,false,true} -> 2x4
  Module m;
  Function* f = m.add("idx");
  f->numParams = 2;
  f->rets = {Ty::Mat};
  f->addLocal("m", Ty::Mat);
  f->addLocal("mask", Ty::Mat);
  auto e = std::make_unique<Expr>();
  e->k = Expr::K::Index;
  e->ty = Ty::Mat;
  e->args.push_back(var(0, Ty::Mat));
  IndexDim d0;
  d0.kind = IndexDim::Kind::Mask;
  d0.a = var(1, Ty::Mat);
  e->dims.push_back(std::move(d0));
  e->dims.push_back(allD());
  std::vector<ExprPtr> rv;
  rv.push_back(std::move(e));
  std::vector<StmtPtr> body;
  body.push_back(ret(std::move(rv)));
  f->body = block(std::move(body));
  rt::SerialExecutor ex;
  Machine vm(m, ex);
  Matrix mask = Matrix::fromBool({3}, {1, 0, 1});
  Matrix r = std::get<Matrix>(vm.call("idx", {m34(), mask})[0]);
  EXPECT_TRUE(
      r.equals(Matrix::fromF32({2, 4}, {0, 1, 2, 3, 20, 21, 22, 23})));
}

TEST(Indexing, PaperCombination) {
  // Rank-3: data[0, end, :] — scalar, scalar(end), all → rank-1 of dim 2.
  Matrix d = Matrix::zeros(rt::Elem::F32, {2, 3, 4});
  for (int64_t i = 0; i < d.size(); ++i) d.f32()[i] = static_cast<float>(i);
  std::vector<IndexDim> dims;
  dims.push_back(scalarD(0));
  dims.push_back(scalarD(2)); // `end` of a 3-wide dim lowers to dimSize-1=2
  dims.push_back(allD());
  Matrix r = std::get<Matrix>(runIndex(std::move(dims), d));
  EXPECT_EQ(r.rank(), 1u);
  EXPECT_EQ(r.dim(0), 4);
  EXPECT_FLOAT_EQ(r.f32()[0], 8.f); // d[0,2,0] = 0*12 + 2*4 + 0
}

TEST(Indexing, SliceAlongThirdDimension) {
  // Fig. 1's mat[i, j, :]: the per-point time series.
  Matrix d = Matrix::zeros(rt::Elem::F32, {2, 2, 5});
  for (int64_t i = 0; i < d.size(); ++i) d.f32()[i] = static_cast<float>(i);
  std::vector<IndexDim> dims;
  dims.push_back(scalarD(1));
  dims.push_back(scalarD(0));
  dims.push_back(allD());
  Matrix r = std::get<Matrix>(runIndex(std::move(dims), d));
  EXPECT_TRUE(r.equals(Matrix::fromF32({5}, {10, 11, 12, 13, 14})));
}

TEST(Indexing, EmptyMaskYieldsEmptyMatrix) {
  Module m;
  Function* f = m.add("idx");
  f->numParams = 2;
  f->rets = {Ty::Mat};
  f->addLocal("m", Ty::Mat);
  f->addLocal("mask", Ty::Mat);
  auto e = std::make_unique<Expr>();
  e->k = Expr::K::Index;
  e->ty = Ty::Mat;
  e->args.push_back(var(0, Ty::Mat));
  IndexDim d0;
  d0.kind = IndexDim::Kind::Mask;
  d0.a = var(1, Ty::Mat);
  e->dims.push_back(std::move(d0));
  e->dims.push_back(allD());
  std::vector<ExprPtr> rv;
  rv.push_back(std::move(e));
  std::vector<StmtPtr> body;
  body.push_back(ret(std::move(rv)));
  f->body = block(std::move(body));
  rt::SerialExecutor ex;
  Machine vm(m, ex);
  Matrix mask = Matrix::fromBool({3}, {0, 0, 0});
  Matrix r = std::get<Matrix>(vm.call("idx", {m34(), mask})[0]);
  EXPECT_EQ(r.dim(0), 0);
}

TEST(Indexing, OutOfBoundsReported) {
  std::vector<IndexDim> dims;
  dims.push_back(scalarD(5));
  dims.push_back(scalarD(0));
  EXPECT_THROW(runIndex(std::move(dims), m34()), RuntimeError);
}

TEST(Indexing, RankMismatchReported) {
  std::vector<IndexDim> dims;
  dims.push_back(scalarD(0));
  EXPECT_THROW(runIndex(std::move(dims), m34()), RuntimeError);
}

// ---- range bounds (the `lo:hi` / `lo:end` selector path) ----------------

TEST(Indexing, RangeUpperBoundPastDimReported) {
  // data[0, 1:4] on a 4-wide dim: `end` is 3, so 4 is one past it.
  std::vector<IndexDim> dims;
  dims.push_back(scalarD(0));
  dims.push_back(rangeD(1, 4));
  EXPECT_THROW(runIndex(std::move(dims), m34()), RuntimeError);
}

TEST(Indexing, RangeNegativeLowerBoundReported) {
  std::vector<IndexDim> dims;
  dims.push_back(rangeD(-1, 1));
  dims.push_back(allD());
  EXPECT_THROW(runIndex(std::move(dims), m34()), RuntimeError);
}

TEST(Indexing, RangeReversedBoundsReported) {
  // lo may exceed hi by at most one (the empty range); 3:0 is an error.
  std::vector<IndexDim> dims;
  dims.push_back(scalarD(0));
  dims.push_back(rangeD(3, 0));
  EXPECT_THROW(runIndex(std::move(dims), m34()), RuntimeError);
}

TEST(Indexing, EmptyRangeIsAllowed) {
  // lo == hi+1 selects zero elements — legal, mirrors `1:0` slices.
  std::vector<IndexDim> dims;
  dims.push_back(scalarD(0));
  dims.push_back(rangeD(1, 0));
  Matrix r = std::get<Matrix>(runIndex(std::move(dims), m34()));
  EXPECT_EQ(r.rank(), 1u);
  EXPECT_EQ(r.dim(0), 0);
}

TEST(Indexing, RangeUpToEndSelectsTail) {
  // data[1, 1:end] where `end` has been lowered to dimSize-1 = 3.
  std::vector<IndexDim> dims;
  dims.push_back(scalarD(1));
  dims.push_back(rangeD(1, 3));
  Matrix r = std::get<Matrix>(runIndex(std::move(dims), m34()));
  EXPECT_TRUE(r.equals(Matrix::fromF32({3}, {11, 12, 13})));
}

// ---- logical-mask bounds -------------------------------------------------

TEST(Indexing, MaskLengthMismatchReported) {
  // A 4-long mask over a 3-row dimension must be rejected.
  Module m;
  Function* f = m.add("idx");
  f->numParams = 2;
  f->rets = {Ty::Mat};
  f->addLocal("m", Ty::Mat);
  f->addLocal("mask", Ty::Mat);
  auto e = std::make_unique<Expr>();
  e->k = Expr::K::Index;
  e->ty = Ty::Mat;
  e->args.push_back(var(0, Ty::Mat));
  IndexDim d0;
  d0.kind = IndexDim::Kind::Mask;
  d0.a = var(1, Ty::Mat);
  e->dims.push_back(std::move(d0));
  e->dims.push_back(allD());
  std::vector<ExprPtr> rv;
  rv.push_back(std::move(e));
  std::vector<StmtPtr> body;
  body.push_back(ret(std::move(rv)));
  f->body = block(std::move(body));
  rt::SerialExecutor ex;
  Machine vm(m, ex);
  Matrix mask = Matrix::fromBool({4}, {1, 0, 1, 0});
  EXPECT_THROW(vm.call("idx", {m34(), mask}), RuntimeError);
}

TEST(Indexing, NonBoolMaskReported) {
  Module m;
  Function* f = m.add("idx");
  f->numParams = 2;
  f->rets = {Ty::Mat};
  f->addLocal("m", Ty::Mat);
  f->addLocal("mask", Ty::Mat);
  auto e = std::make_unique<Expr>();
  e->k = Expr::K::Index;
  e->ty = Ty::Mat;
  e->args.push_back(var(0, Ty::Mat));
  IndexDim d0;
  d0.kind = IndexDim::Kind::Mask;
  d0.a = var(1, Ty::Mat);
  e->dims.push_back(std::move(d0));
  e->dims.push_back(allD());
  std::vector<ExprPtr> rv;
  rv.push_back(std::move(e));
  std::vector<StmtPtr> body;
  body.push_back(ret(std::move(rv)));
  f->body = block(std::move(body));
  rt::SerialExecutor ex;
  Machine vm(m, ex);
  Matrix mask = Matrix::fromI32({3}, {1, 0, 1});
  EXPECT_THROW(vm.call("idx", {m34(), mask}), RuntimeError);
}

// ---- indexed assignment (LHS) -------------------------------------------

/// Builds "upd(m, v)" performing m[dims] = v and returning m.
Value runIndexStore(std::vector<IndexDim> dims, const Matrix& input,
                    Value val) {
  Module m;
  Function* f = m.add("upd");
  f->numParams = 2;
  f->rets = {Ty::Mat};
  f->addLocal("m", Ty::Mat);
  f->addLocal("v", tyOf(val));
  auto st = std::make_unique<Stmt>();
  st->k = Stmt::K::IndexStore;
  st->slot = 0;
  st->dims = std::move(dims);
  st->exprs.push_back(var(1, tyOf(val)));
  std::vector<StmtPtr> body;
  body.push_back(std::move(st));
  std::vector<ExprPtr> rv;
  rv.push_back(var(0, Ty::Mat));
  body.push_back(ret(std::move(rv)));
  f->body = block(std::move(body));
  rt::SerialExecutor ex;
  Machine vm(m, ex);
  return vm.call("upd", {input.clone(), std::move(val)})[0];
}

TEST(IndexStore, ScalarElementAssignment) {
  std::vector<IndexDim> dims;
  dims.push_back(scalarD(0));
  dims.push_back(scalarD(3));
  Matrix r = std::get<Matrix>(runIndexStore(std::move(dims), m34(), 99.f));
  EXPECT_FLOAT_EQ(r.f32()[3], 99.f);
  EXPECT_FLOAT_EQ(r.f32()[4], 10.f); // neighbours untouched
}

TEST(IndexStore, ScalarBroadcastOverRange) {
  std::vector<IndexDim> dims;
  dims.push_back(allD());
  dims.push_back(rangeD(1, 2));
  Matrix r = std::get<Matrix>(runIndexStore(std::move(dims), m34(), 0.f));
  for (int i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(r.f32()[i * 4 + 1], 0.f);
    EXPECT_FLOAT_EQ(r.f32()[i * 4 + 2], 0.f);
    EXPECT_NE(r.f32()[i * 4 + 3], 0.f);
  }
}

TEST(IndexStore, MatrixValueIntoSlice) {
  // scores[beginning:i] = computeArea(...) of Fig. 8: a vector into an
  // inclusive range.
  std::vector<IndexDim> dims;
  dims.push_back(scalarD(1));
  dims.push_back(rangeD(1, 3));
  Matrix v = Matrix::fromF32({3}, {7, 8, 9});
  Matrix r = std::get<Matrix>(runIndexStore(std::move(dims), m34(), v));
  EXPECT_FLOAT_EQ(r.f32()[4 + 1], 7.f);
  EXPECT_FLOAT_EQ(r.f32()[4 + 2], 8.f);
  EXPECT_FLOAT_EQ(r.f32()[4 + 3], 9.f);
}

TEST(IndexStore, SizeMismatchReported) {
  std::vector<IndexDim> dims;
  dims.push_back(scalarD(1));
  dims.push_back(rangeD(1, 3));
  Matrix v = Matrix::fromF32({2}, {7, 8});
  EXPECT_THROW(runIndexStore(std::move(dims), m34(), v), RuntimeError);
}

TEST(IndexStore, ElementKindMismatchReported) {
  std::vector<IndexDim> dims;
  dims.push_back(scalarD(1));
  dims.push_back(rangeD(1, 3));
  Matrix v = Matrix::fromI32({3}, {7, 8, 9});
  EXPECT_THROW(runIndexStore(std::move(dims), m34(), v), RuntimeError);
}

TEST(IndexStore, RangePastEndReported) {
  // m[1, 2:4] = v: the range runs one past `end` (3) — rejected before
  // any element is written.
  std::vector<IndexDim> dims;
  dims.push_back(scalarD(1));
  dims.push_back(rangeD(2, 4));
  Matrix v = Matrix::fromF32({3}, {7, 8, 9});
  EXPECT_THROW(runIndexStore(std::move(dims), m34(), v), RuntimeError);
}

TEST(IndexStore, MaskBroadcastAssignsSelectedRows) {
  // m[mask, :] = 0 zeroes rows 0 and 2 only.
  Module m;
  Function* f = m.add("upd");
  f->numParams = 2;
  f->rets = {Ty::Mat};
  f->addLocal("m", Ty::Mat);
  f->addLocal("mask", Ty::Mat);
  auto st = std::make_unique<Stmt>();
  st->k = Stmt::K::IndexStore;
  st->slot = 0;
  IndexDim d0;
  d0.kind = IndexDim::Kind::Mask;
  d0.a = var(1, Ty::Mat);
  st->dims.push_back(std::move(d0));
  st->dims.push_back(allD());
  st->exprs.push_back(constF(0.f));
  std::vector<StmtPtr> body;
  body.push_back(std::move(st));
  std::vector<ExprPtr> rv;
  rv.push_back(var(0, Ty::Mat));
  body.push_back(ret(std::move(rv)));
  f->body = block(std::move(body));
  rt::SerialExecutor ex;
  Machine vm(m, ex);
  Matrix mask = Matrix::fromBool({3}, {1, 0, 1});
  Matrix r = std::get<Matrix>(vm.call("upd", {m34().clone(), mask})[0]);
  for (int j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(r.f32()[j], 0.f);
    EXPECT_FLOAT_EQ(r.f32()[4 + j], static_cast<float>(10 + j));
    EXPECT_FLOAT_EQ(r.f32()[8 + j], 0.f);
  }
}

TEST(IndexStore, MaskLengthMismatchReported) {
  Module m;
  Function* f = m.add("upd");
  f->numParams = 2;
  f->rets = {Ty::Mat};
  f->addLocal("m", Ty::Mat);
  f->addLocal("mask", Ty::Mat);
  auto st = std::make_unique<Stmt>();
  st->k = Stmt::K::IndexStore;
  st->slot = 0;
  IndexDim d0;
  d0.kind = IndexDim::Kind::Mask;
  d0.a = var(1, Ty::Mat);
  st->dims.push_back(std::move(d0));
  st->dims.push_back(allD());
  st->exprs.push_back(constF(0.f));
  std::vector<StmtPtr> body;
  body.push_back(std::move(st));
  std::vector<ExprPtr> rv;
  rv.push_back(var(0, Ty::Mat));
  body.push_back(ret(std::move(rv)));
  f->body = block(std::move(body));
  rt::SerialExecutor ex;
  Machine vm(m, ex);
  Matrix mask = Matrix::fromBool({2}, {1, 0});
  EXPECT_THROW(vm.call("upd", {m34().clone(), mask}), RuntimeError);
}

TEST(IndexStore, WholeMatrixThroughColons) {
  std::vector<IndexDim> dims;
  dims.push_back(allD());
  dims.push_back(allD());
  Matrix v = Matrix::zeros(rt::Elem::F32, {3, 4});
  Matrix r = std::get<Matrix>(runIndexStore(std::move(dims), m34(), v));
  for (int64_t i = 0; i < 12; ++i) EXPECT_FLOAT_EQ(r.f32()[i], 0.f);
}

} // namespace
} // namespace mmx::interp
