#include "interp/interp.hpp"

#include <gtest/gtest.h>

namespace mmx::interp {
namespace {

using namespace mmx::ir;
using rt::Matrix;

/// add(a, b) = a + b over i32.
void buildAdd(Module& m) {
  Function* f = m.add("add");
  f->numParams = 2;
  f->rets = {Ty::I32};
  f->addLocal("a", Ty::I32);
  f->addLocal("b", Ty::I32);
  std::vector<StmtPtr> body;
  std::vector<ExprPtr> rv;
  rv.push_back(arith(ArithOp::Add, var(0, Ty::I32), var(1, Ty::I32), Ty::I32));
  body.push_back(ret(std::move(rv)));
  f->body = block(std::move(body));
}

TEST(Interp, ScalarFunctionCall) {
  Module m;
  buildAdd(m);
  rt::SerialExecutor ex;
  Machine vm(m, ex);
  auto r = vm.call("add", {int32_t{2}, int32_t{40}});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(std::get<int32_t>(r[0]), 42);
}

TEST(Interp, ArgumentCountChecked) {
  Module m;
  buildAdd(m);
  rt::SerialExecutor ex;
  Machine vm(m, ex);
  EXPECT_THROW(vm.call("add", {int32_t{1}}), RuntimeError);
  EXPECT_THROW(vm.call("nosuch", {}), RuntimeError);
}

/// sumto(n): for-loop accumulation, tests For + Assign + Arith.
void buildSumTo(Module& m) {
  Function* f = m.add("sumto");
  f->numParams = 1;
  f->rets = {Ty::I32};
  f->addLocal("n", Ty::I32);
  int32_t acc = f->addLocal("acc", Ty::I32);
  int32_t i = f->addLocal("i", Ty::I32);
  std::vector<StmtPtr> body;
  body.push_back(assign(acc, constI(0)));
  body.push_back(forLoop(
      i, constI(0), var(0, Ty::I32),
      assign(acc, arith(ArithOp::Add, var(acc, Ty::I32), var(i, Ty::I32),
                        Ty::I32)),
      "i"));
  std::vector<ExprPtr> rv;
  rv.push_back(var(acc, Ty::I32));
  body.push_back(ret(std::move(rv)));
  f->body = block(std::move(body));
}

TEST(Interp, ForLoopAccumulates) {
  Module m;
  buildSumTo(m);
  rt::SerialExecutor ex;
  Machine vm(m, ex);
  EXPECT_EQ(std::get<int32_t>(vm.call("sumto", {int32_t{100}})[0]), 4950);
  EXPECT_EQ(std::get<int32_t>(vm.call("sumto", {int32_t{0}})[0]), 0);
}

TEST(Interp, WhileAndIf) {
  // collatz(n): steps to reach 1.
  Module m;
  Function* f = m.add("collatz");
  f->numParams = 1;
  f->rets = {Ty::I32};
  int32_t n = f->addLocal("n", Ty::I32);
  int32_t steps = f->addLocal("steps", Ty::I32);
  std::vector<StmtPtr> body;
  body.push_back(assign(steps, constI(0)));
  std::vector<StmtPtr> loop;
  loop.push_back(ifStmt(
      cmp(CmpKind::Eq,
          arith(ArithOp::Mod, var(n, Ty::I32), constI(2), Ty::I32), constI(0)),
      assign(n, arith(ArithOp::Div, var(n, Ty::I32), constI(2), Ty::I32)),
      assign(n, arith(ArithOp::Add,
                      arith(ArithOp::Mul, var(n, Ty::I32), constI(3), Ty::I32),
                      constI(1), Ty::I32))));
  loop.push_back(assign(
      steps, arith(ArithOp::Add, var(steps, Ty::I32), constI(1), Ty::I32)));
  body.push_back(whileLoop(cmp(CmpKind::Ne, var(n, Ty::I32), constI(1)),
                           block(std::move(loop))));
  std::vector<ExprPtr> rv;
  rv.push_back(var(steps, Ty::I32));
  body.push_back(ret(std::move(rv)));
  f->body = block(std::move(body));

  rt::SerialExecutor ex;
  Machine vm(m, ex);
  EXPECT_EQ(std::get<int32_t>(vm.call("collatz", {int32_t{6}})[0]), 8);
}

TEST(Interp, FloatArithmeticAndCasts) {
  Module m;
  Function* f = m.add("avg");
  f->numParams = 2;
  f->rets = {Ty::F32};
  f->addLocal("a", Ty::I32);
  f->addLocal("b", Ty::I32);
  std::vector<StmtPtr> body;
  std::vector<ExprPtr> rv;
  rv.push_back(arith(
      ArithOp::Div,
      cast(Ty::F32,
           arith(ArithOp::Add, var(0, Ty::I32), var(1, Ty::I32), Ty::I32)),
      constF(2.f), Ty::F32));
  body.push_back(ret(std::move(rv)));
  f->body = block(std::move(body));
  rt::SerialExecutor ex;
  Machine vm(m, ex);
  EXPECT_FLOAT_EQ(std::get<float>(vm.call("avg", {int32_t{3}, int32_t{4}})[0]),
                  3.5f);
}

TEST(Interp, MatrixWholeOpsViaArith) {
  // f(a, b) = a + b .* b  (element-wise), returns matrix.
  Module m;
  Function* f = m.add("f");
  f->numParams = 2;
  f->rets = {Ty::Mat};
  f->addLocal("a", Ty::Mat);
  f->addLocal("b", Ty::Mat);
  std::vector<StmtPtr> body;
  std::vector<ExprPtr> rv;
  rv.push_back(arith(ArithOp::Add, var(0, Ty::Mat),
                     arith(ArithOp::EwMul, var(1, Ty::Mat), var(1, Ty::Mat),
                           Ty::Mat),
                     Ty::Mat));
  body.push_back(ret(std::move(rv)));
  f->body = block(std::move(body));

  rt::SerialExecutor ex;
  Machine vm(m, ex);
  Matrix a = Matrix::fromF32({3}, {1, 2, 3});
  Matrix b = Matrix::fromF32({3}, {10, 20, 30});
  auto r = vm.call("f", {a, b});
  EXPECT_TRUE(std::get<Matrix>(r[0]).equals(
      Matrix::fromF32({3}, {101, 402, 903})));
}

TEST(Interp, MatMulViaStarOnRank2) {
  Module m;
  Function* f = m.add("mm");
  f->numParams = 2;
  f->rets = {Ty::Mat};
  f->addLocal("a", Ty::Mat);
  f->addLocal("b", Ty::Mat);
  std::vector<StmtPtr> body;
  std::vector<ExprPtr> rv;
  rv.push_back(arith(ArithOp::Mul, var(0, Ty::Mat), var(1, Ty::Mat), Ty::Mat));
  body.push_back(ret(std::move(rv)));
  f->body = block(std::move(body));
  rt::SerialExecutor ex;
  Machine vm(m, ex);
  Matrix a = Matrix::fromF32({2, 2}, {1, 2, 3, 4});
  Matrix b = Matrix::fromF32({2, 2}, {5, 6, 7, 8});
  auto r = vm.call("mm", {a, b});
  EXPECT_TRUE(
      std::get<Matrix>(r[0]).equals(Matrix::fromF32({2, 2}, {19, 22, 43, 50})));
}

TEST(Interp, MatrixScalarBroadcastBothOrders) {
  Module m;
  Function* f = m.add("g");
  f->numParams = 1;
  f->rets = {Ty::Mat, Ty::Mat};
  f->addLocal("a", Ty::Mat);
  std::vector<StmtPtr> body;
  std::vector<ExprPtr> rv;
  rv.push_back(arith(ArithOp::Sub, var(0, Ty::Mat), constF(1.f), Ty::Mat));
  rv.push_back(arith(ArithOp::Sub, constF(10.f), var(0, Ty::Mat), Ty::Mat));
  body.push_back(ret(std::move(rv)));
  f->body = block(std::move(body));
  rt::SerialExecutor ex;
  Machine vm(m, ex);
  auto r = vm.call("g", {Matrix::fromF32({2}, {3, 5})});
  EXPECT_TRUE(std::get<Matrix>(r[0]).equals(Matrix::fromF32({2}, {2, 4})));
  EXPECT_TRUE(std::get<Matrix>(r[1]).equals(Matrix::fromF32({2}, {7, 5})));
}

TEST(Interp, ComparisonOnMatrixProducesBoolMask) {
  Module m;
  Function* f = m.add("mask");
  f->numParams = 1;
  f->rets = {Ty::Mat};
  f->addLocal("v", Ty::Mat);
  std::vector<StmtPtr> body;
  std::vector<ExprPtr> rv;
  // v % 2 == 1, the paper's logical-indexing example.
  rv.push_back(cmp(CmpKind::Eq,
                   arith(ArithOp::Mod, var(0, Ty::Mat), constI(2), Ty::Mat),
                   constI(1), Ty::Mat));
  body.push_back(ret(std::move(rv)));
  f->body = block(std::move(body));
  rt::SerialExecutor ex;
  Machine vm(m, ex);
  auto r = vm.call("mask", {Matrix::fromI32({4}, {1, 2, 3, 4})});
  EXPECT_TRUE(
      std::get<Matrix>(r[0]).equals(Matrix::fromBool({4}, {1, 0, 1, 0})));
}

/// Fills out[i] = i*2 with a parallel loop over a preallocated matrix.
void buildParFill(Module& m, bool parallel) {
  Function* f = m.add(parallel ? "parfill" : "serfill");
  f->numParams = 1;
  f->rets = {Ty::Mat};
  int32_t n = 0;
  (void)n;
  f->addLocal("n", Ty::I32);
  int32_t out = f->addLocal("out", Ty::Mat);
  int32_t i = f->addLocal("i", Ty::I32);
  std::vector<StmtPtr> body;
  std::vector<ExprPtr> zargs;
  zargs.push_back(constI(0)); // Elem::I32
  zargs.push_back(var(0, Ty::I32));
  body.push_back(assign(out, call("initMatrix", std::move(zargs), Ty::Mat)));
  StmtPtr store = storeFlat(
      out, var(i, Ty::I32),
      arith(ArithOp::Mul, var(i, Ty::I32), constI(2), Ty::I32));
  StmtPtr loop = forLoop(i, constI(0), var(0, Ty::I32), std::move(store), "i");
  loop->parallel = parallel;
  body.push_back(std::move(loop));
  std::vector<ExprPtr> rv;
  rv.push_back(var(out, Ty::Mat));
  body.push_back(ret(std::move(rv)));
  f->body = block(std::move(body));
}

TEST(Interp, ParallelForMatchesSerial) {
  Module m;
  buildParFill(m, true);
  buildParFill(m, false);
  rt::ForkJoinPool pool(4);
  Machine vm(m, pool);
  auto rp = vm.call("parfill", {int32_t{1000}});
  auto rs = vm.call("serfill", {int32_t{1000}});
  EXPECT_TRUE(std::get<Matrix>(rp[0]).equals(std::get<Matrix>(rs[0])));
  EXPECT_EQ(std::get<Matrix>(rp[0]).i32()[999], 1998);
}

TEST(Interp, ParallelLoopErrorsPropagate) {
  // Out-of-bounds store inside a parallel loop must surface as
  // RuntimeError on the main thread, not crash a worker.
  Module m;
  Function* f = m.add("bad");
  f->numParams = 0;
  int32_t out = f->addLocal("out", Ty::Mat);
  int32_t i = f->addLocal("i", Ty::I32);
  std::vector<StmtPtr> body;
  std::vector<ExprPtr> zargs;
  zargs.push_back(constI(0));
  zargs.push_back(constI(4)); // only 4 elements
  body.push_back(assign(out, call("initMatrix", std::move(zargs), Ty::Mat)));
  StmtPtr loop = forLoop(i, constI(0), constI(100),
                         storeFlat(out, var(i, Ty::I32), constI(1)), "i");
  loop->parallel = true;
  body.push_back(std::move(loop));
  f->body = block(std::move(body));
  rt::ForkJoinPool pool(4);
  Machine vm(m, pool);
  EXPECT_THROW(vm.call("bad", {}), RuntimeError);
}

/// The Fig. 9-11 pattern: out[j] = sum_k mat[j*p + k], j-loop vectorized.
void buildVecSum(Module& m, int vecWidth) {
  Function* f = m.add(vecWidth > 1 ? "vecsum" : "scalsum");
  f->numParams = 2; // mat (n*p flat), p
  f->rets = {Ty::Mat};
  int32_t mat = 0;
  f->addLocal("mat", Ty::Mat);
  f->addLocal("p", Ty::I32);
  int32_t out = f->addLocal("out", Ty::Mat);
  int32_t n = f->addLocal("n", Ty::I32);
  int32_t j = f->addLocal("j", Ty::I32);
  int32_t k = f->addLocal("k", Ty::I32);
  int32_t sum = f->addLocal("sum", Ty::F32);

  std::vector<StmtPtr> body;
  body.push_back(assign(
      n, arith(ArithOp::Div, dimSize(var(mat, Ty::Mat), constI(0)),
               var(1, Ty::I32), Ty::I32)));
  std::vector<ExprPtr> zargs;
  zargs.push_back(constI(1)); // Elem::F32
  zargs.push_back(var(n, Ty::I32));
  body.push_back(assign(out, call("initMatrix", std::move(zargs), Ty::Mat)));

  // inner: sum = sum + mat[j*p + k]
  StmtPtr inner = assign(
      sum,
      arith(ArithOp::Add, var(sum, Ty::F32),
            loadFlat(var(mat, Ty::Mat),
                     arith(ArithOp::Add,
                           arith(ArithOp::Mul, var(j, Ty::I32),
                                 var(1, Ty::I32), Ty::I32),
                           var(k, Ty::I32), Ty::I32),
                     Ty::F32),
            Ty::F32));
  std::vector<StmtPtr> jbody;
  jbody.push_back(assign(sum, constF(0.f)));
  jbody.push_back(
      forLoop(k, constI(0), var(1, Ty::I32), std::move(inner), "k"));
  jbody.push_back(storeFlat(out, var(j, Ty::I32), var(sum, Ty::F32)));
  StmtPtr jloop =
      forLoop(j, constI(0), var(n, Ty::I32), block(std::move(jbody)), "j");
  jloop->vecWidth = vecWidth;
  body.push_back(std::move(jloop));

  std::vector<ExprPtr> rv;
  rv.push_back(var(out, Ty::Mat));
  body.push_back(ret(std::move(rv)));
  f->body = block(std::move(body));
}

TEST(Interp, VectorizedLoopWithInnerReductionMatchesScalar) {
  Module m;
  buildVecSum(m, 4);
  buildVecSum(m, 1);
  rt::SerialExecutor ex;
  Machine vm(m, ex);
  // 10 series of length 7 (odd count: vector remainder path).
  Matrix mat = Matrix::zeros(rt::Elem::F32, {70});
  for (int64_t i = 0; i < 70; ++i)
    mat.f32()[i] = static_cast<float>((i % 13) - 5) * 0.5f;
  auto rv = vm.call("vecsum", {mat, int32_t{7}});
  auto rs = vm.call("scalsum", {mat, int32_t{7}});
  EXPECT_TRUE(std::get<Matrix>(rv[0]).equals(std::get<Matrix>(rs[0]), 1e-4f));
}

TEST(Interp, TupleReturnAndCallAssign) {
  Module m;
  // divmod(a, b) -> (a/b, a%b)
  Function* f = m.add("divmod");
  f->numParams = 2;
  f->rets = {Ty::I32, Ty::I32};
  f->addLocal("a", Ty::I32);
  f->addLocal("b", Ty::I32);
  std::vector<StmtPtr> fb;
  std::vector<ExprPtr> rv;
  rv.push_back(arith(ArithOp::Div, var(0, Ty::I32), var(1, Ty::I32), Ty::I32));
  rv.push_back(arith(ArithOp::Mod, var(0, Ty::I32), var(1, Ty::I32), Ty::I32));
  fb.push_back(ret(std::move(rv)));
  f->body = block(std::move(fb));

  // caller() { (d, r) = divmod(17, 5); return d*100 + r; }
  Function* g = m.add("caller");
  g->numParams = 0;
  g->rets = {Ty::I32};
  int32_t d = g->addLocal("d", Ty::I32);
  int32_t r = g->addLocal("r", Ty::I32);
  std::vector<StmtPtr> gb;
  std::vector<ExprPtr> args;
  args.push_back(constI(17));
  args.push_back(constI(5));
  gb.push_back(callAssign({d, r}, "divmod", std::move(args)));
  std::vector<ExprPtr> grv;
  grv.push_back(arith(ArithOp::Add,
                      arith(ArithOp::Mul, var(d, Ty::I32), constI(100),
                            Ty::I32),
                      var(r, Ty::I32), Ty::I32));
  gb.push_back(ret(std::move(grv)));
  g->body = block(std::move(gb));

  rt::SerialExecutor ex;
  Machine vm(m, ex);
  EXPECT_EQ(std::get<int32_t>(vm.call("caller", {})[0]), 302);
}

TEST(Interp, BuiltinsPrintAndThreads) {
  Module m;
  Function* f = m.add("main");
  f->numParams = 0;
  f->rets = {Ty::I32};
  std::vector<StmtPtr> body;
  std::vector<ExprPtr> p1;
  p1.push_back(constI(7));
  body.push_back(callStmt(call("printInt", std::move(p1), Ty::Void)));
  std::vector<ExprPtr> p2;
  p2.push_back(constS("hello"));
  body.push_back(callStmt(call("printStr", std::move(p2), Ty::Void)));
  std::vector<ExprPtr> rv;
  rv.push_back(call("numThreads", {}, Ty::I32));
  body.push_back(ret(std::move(rv)));
  f->body = block(std::move(body));
  rt::ForkJoinPool pool(3);
  Machine vm(m, pool);
  EXPECT_EQ(vm.runMain(), 3);
  EXPECT_EQ(vm.output(), "7\nhello\n");
}

TEST(Interp, GenarrayBoundsBuiltinEnforcesSuperset) {
  Module m;
  Function* f = m.add("main");
  f->numParams = 0;
  std::vector<StmtPtr> body;
  std::vector<ExprPtr> args;
  args.push_back(constI(10)); // generator upper bound
  args.push_back(constI(5));  // result dimension
  body.push_back(callStmt(call("checkGenBounds", std::move(args), Ty::Void)));
  f->body = block(std::move(body));
  rt::SerialExecutor ex;
  Machine vm(m, ex);
  try {
    vm.runMain();
    FAIL() << "expected RuntimeError";
  } catch (const RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("superset"), std::string::npos);
  }
}

TEST(Interp, DivisionByZeroReported) {
  Module m;
  buildAdd(m);
  Function* f = m.add("div");
  f->numParams = 2;
  f->rets = {Ty::I32};
  f->addLocal("a", Ty::I32);
  f->addLocal("b", Ty::I32);
  std::vector<StmtPtr> body;
  std::vector<ExprPtr> rv;
  rv.push_back(arith(ArithOp::Div, var(0, Ty::I32), var(1, Ty::I32), Ty::I32));
  body.push_back(ret(std::move(rv)));
  f->body = block(std::move(body));
  rt::SerialExecutor ex;
  Machine vm(m, ex);
  EXPECT_THROW(vm.call("div", {int32_t{1}, int32_t{0}}), RuntimeError);
}

TEST(Interp, BreakAndContinue) {
  // Sum of odd i below first i >= 10: for i in 0..100 { if i>=10 break;
  // if i%2==0 continue; acc+=i }
  Module m;
  Function* f = m.add("f");
  f->numParams = 0;
  f->rets = {Ty::I32};
  int32_t acc = f->addLocal("acc", Ty::I32);
  int32_t i = f->addLocal("i", Ty::I32);
  std::vector<StmtPtr> loop;
  {
    auto br = std::make_unique<Stmt>();
    br->k = Stmt::K::Break;
    loop.push_back(ifStmt(cmp(CmpKind::Ge, var(i, Ty::I32), constI(10)),
                          std::move(br), nullptr));
  }
  {
    auto co = std::make_unique<Stmt>();
    co->k = Stmt::K::Continue;
    loop.push_back(ifStmt(
        cmp(CmpKind::Eq,
            arith(ArithOp::Mod, var(i, Ty::I32), constI(2), Ty::I32),
            constI(0)),
        std::move(co), nullptr));
  }
  loop.push_back(
      assign(acc, arith(ArithOp::Add, var(acc, Ty::I32), var(i, Ty::I32),
                        Ty::I32)));
  std::vector<StmtPtr> body;
  body.push_back(assign(acc, constI(0)));
  body.push_back(forLoop(i, constI(0), constI(100), block(std::move(loop)),
                         "i"));
  std::vector<ExprPtr> rv;
  rv.push_back(var(acc, Ty::I32));
  body.push_back(ret(std::move(rv)));
  f->body = block(std::move(body));
  rt::SerialExecutor ex;
  Machine vm(m, ex);
  EXPECT_EQ(std::get<int32_t>(vm.call("f", {})[0]), 1 + 3 + 5 + 7 + 9);
}

} // namespace
} // namespace mmx::interp
