// statslib: the JSON parsing / flattening / merge / diff / check logic
// behind the mmx-stats CLI.
#include "statslib.hpp"

#include <gtest/gtest.h>

namespace mmx::stats {
namespace {

Json parseOk(const std::string& text) {
  Json v;
  std::string err;
  EXPECT_TRUE(parseJson(text, v, err)) << err;
  return v;
}

TEST(StatsLib, ParsesScalarsStringsAndNesting) {
  Json v = parseOk(R"({"a": 1, "b": -2.5e3, "s": "x\"y\\zA",
                       "t": true, "n": null, "arr": [1, 2, {"k": 3}]})");
  ASSERT_EQ(v.kind, Json::Kind::Obj);
  EXPECT_EQ(v.get("a")->num, 1);
  EXPECT_EQ(v.get("b")->num, -2500);
  EXPECT_EQ(v.get("s")->str, "x\"y\\zA");
  EXPECT_TRUE(v.get("t")->b);
  EXPECT_EQ(v.get("n")->kind, Json::Kind::Null);
  ASSERT_EQ(v.get("arr")->arr.size(), 3u);
  EXPECT_EQ(v.get("arr")->arr[2].get("k")->num, 3);
}

TEST(StatsLib, RejectsMalformedInput) {
  Json v;
  std::string err;
  EXPECT_FALSE(parseJson("{\"a\": }", v, err));
  EXPECT_FALSE(parseJson("{\"a\": 1,}", v, err));
  EXPECT_FALSE(parseJson("{\"a\": 1} trailing", v, err));
  EXPECT_FALSE(parseJson("\"unterminated", v, err));
  EXPECT_FALSE(parseJson("", v, err));
}

TEST(StatsLib, RoundTripsEscapedNames) {
  // The names an instrumented run can emit (quotes, backslashes, control
  // bytes from hostile file paths) must survive render -> parse.
  Json obj;
  obj.kind = Json::Kind::Obj;
  Json num;
  num.kind = Json::Kind::Num;
  num.num = 3;
  obj.obj.emplace_back("evil\"key\\with\nnl\x02", num);
  Json back = parseOk(render(obj));
  ASSERT_EQ(back.obj.size(), 1u);
  EXPECT_EQ(back.obj[0].first, "evil\"key\\with\nnl\x02");
  EXPECT_EQ(back.obj[0].second.num, 3);
}

TEST(StatsLib, FlattensFlatStatsAndBenchmarkReports) {
  auto flat = flatten(parseOk(
      R"({"rt.alloc.count": 5, "host.cpu": "Xeon", "kernel.matmul.ns": 99})"));
  EXPECT_EQ(flat.size(), 2u); // strings don't flatten
  EXPECT_EQ(flat.at("rt.alloc.count"), 5);
  EXPECT_EQ(flat.at("kernel.matmul.ns"), 99);

  auto bench = flatten(parseOk(R"({
    "context": {"host.cpu": "Xeon"},
    "benchmarks": [
      {"name": "BM_Matmul/128", "family_index": 0, "repetitions": 1,
       "iterations": 10, "real_time": 1.5, "cpu_time": 1.4,
       "run_type": "iteration", "time_unit": "ms"},
      {"name": "BM_Matmul/128_mean", "run_type": "aggregate",
       "real_time": 1.5}
    ]})"));
  EXPECT_EQ(bench.at("BM_Matmul/128.real_time"), 1.5);
  EXPECT_EQ(bench.at("BM_Matmul/128.cpu_time"), 1.4);
  EXPECT_FALSE(bench.count("BM_Matmul/128.iterations")); // bookkeeping
  EXPECT_FALSE(bench.count("BM_Matmul/128_mean.real_time")); // aggregate
}

TEST(StatsLib, MergesTracesOntoOneTimeline) {
  Json compiler = parseOk(R"({"traceEvents": [
    {"name": "parse", "ph": "X", "pid": 1, "tid": 0, "ts": 1, "dur": 2}
  ], "displayTimeUnit": "ms"})");
  Json runtime = parseOk(R"({"traceEvents": [
    {"name": "kernel.matmul", "ph": "X", "pid": 2, "tid": 0, "ts": 5,
     "dur": 7}
  ], "displayTimeUnit": "ms"})");
  Json merged = mergeTraces({compiler, runtime});
  ASSERT_TRUE(isTrace(merged));
  const Json* evs = merged.get("traceEvents");
  ASSERT_EQ(evs->arr.size(), 2u);
  EXPECT_EQ(evs->arr[0].get("pid")->num, 1);
  EXPECT_EQ(evs->arr[1].get("pid")->num, 2);
  EXPECT_EQ(merged.get("displayTimeUnit")->str, "ms");
  // Rendered result is itself parseable (the CLI writes this verbatim).
  parseOk(render(merged));
}

TEST(StatsLib, DiffSplitsCommonAndExclusiveMetrics) {
  std::map<std::string, double> base{{"a", 10}, {"gone", 1}};
  std::map<std::string, double> cur{{"a", 15}, {"new", 2}};
  DiffResult r = diff(base, cur);
  ASSERT_EQ(r.common.size(), 1u);
  EXPECT_EQ(r.common[0].name, "a");
  EXPECT_DOUBLE_EQ(r.common[0].relative(), 0.5);
  ASSERT_EQ(r.onlyInBase.size(), 1u);
  EXPECT_EQ(r.onlyInBase[0], "gone");
  ASSERT_EQ(r.onlyInCurrent.size(), 1u);
  EXPECT_EQ(r.onlyInCurrent[0], "new");
}

TEST(StatsLib, CheckEnforcesPerMetricTolerance) {
  std::map<std::string, double> base{
      {"kernel.matmul.tiles", 100}, {"BM_X.real_time", 50}, {"gone", 1}};
  std::map<std::string, double> cur{
      {"kernel.matmul.tiles", 100}, {"BM_X.real_time", 80}, {"extra", 9}};

  // Exact default: the 60% time regression and the vanished metric fail;
  // the new metric never does.
  auto exact = check(base, cur, {}, 0);
  ASSERT_EQ(exact.size(), 2u);

  // A loose rule on the time metric lets it pass; presence still gates.
  auto loose = check(base, cur, {{"BM_X", 1.0}}, 0);
  ASSERT_EQ(loose.size(), 1u);
  EXPECT_TRUE(loose[0].missing);
  EXPECT_EQ(loose[0].name, "gone");

  // Presence-only default (cross-machine mode): values never fail, but a
  // metric disappearing still does.
  auto presence = check(base, cur, {}, -1);
  ASSERT_EQ(presence.size(), 1u);
  EXPECT_TRUE(presence[0].missing);

  // Later rules win: a specific override relaxes a strict general prefix.
  auto layered =
      check(base, cur, {{"BM_", 0.0}, {"BM_X.real_time", 2.0}}, -1);
  EXPECT_TRUE(layered.empty() ||
              (layered.size() == 1 && layered[0].missing));
  ASSERT_EQ(layered.size(), 1u);

  // Zero baseline with nonzero current reads as an infinite regression.
  auto zero = check({{"z", 0}}, {{"z", 3}}, {}, 0.5);
  ASSERT_EQ(zero.size(), 1u);
}

TEST(StatsLib, DiffExitCodeSeparatesSchemaFromNoise) {
  std::map<std::string, double> base{{"a", 1}, {"b", 2}};

  // Identical and value-drifted schemas are exit 0: diff reports, the
  // check gate judges.
  EXPECT_EQ(diffExitCode(diff(base, base)), 0);
  EXPECT_EQ(diffExitCode(diff(base, {{"a", 5}, {"b", 2}})), 0);

  // Current-only keys are informational (instrumentation grows; the
  // omp.tN.* counters depend on the machine's thread count).
  EXPECT_EQ(diffExitCode(diff(base, {{"a", 1}, {"b", 2}, {"omp.t8.x", 1}})),
            0);

  // A baseline key missing from current is a schema mismatch: exit 2.
  EXPECT_EQ(diffExitCode(diff(base, {{"a", 1}})), 2);
}

TEST(StatsLib, BackendMetricFamiliesFlowThroughCheck) {
  // ISSUE 7 schema coverage: the backend.selected.* presence counters and
  // the per-backend kernel.matmul.<name>.* timers gate like any other
  // family — presence-only rules (tol < 0) ignore value drift, a
  // backend-specific prefix rule scopes tolerance to one backend, and a
  // baseline backend disappearing is a schema failure.
  std::map<std::string, double> base{{"backend.selected.sse", 1},
                                     {"kernel.matmul.sse.ns", 1000},
                                     {"kernel.matmul.avx2fma.ns", 700}};
  std::map<std::string, double> cur{{"backend.selected.sse", 3},
                                    {"kernel.matmul.sse.ns", 1900},
                                    {"kernel.matmul.avx2fma.ns", 710}};

  // Presence-only on selection, loose rule on the sse timer: clean.
  EXPECT_TRUE(check(cur, cur, {}, 0).empty());
  auto gated = check(base, cur,
                     {{"backend.selected.", -1}, {"kernel.matmul.sse", 1.0}},
                     0.05);
  EXPECT_TRUE(gated.empty());

  // Without the sse rule the 90% regression fails under the 5% default.
  auto strict = check(base, cur, {{"backend.selected.", -1}}, 0.05);
  ASSERT_EQ(strict.size(), 1u);
  EXPECT_EQ(strict[0].name, "kernel.matmul.sse.ns");

  // A backend vanishing from the candidate is a schema mismatch (the CI
  // matrix produces the same row set on every leg via BackendOverride).
  std::map<std::string, double> vanished{{"backend.selected.sse", 1},
                                         {"kernel.matmul.sse.ns", 1000}};
  EXPECT_EQ(checkExitCode(check(base, vanished, {{"backend.selected.", -1}},
                                -1)),
            2);
}

TEST(StatsLib, DependAndAutoparFamiliesFlowThroughCheck) {
  // ISSUE 8 schema coverage: the dependence-analysis counters
  // (depend.nests/vectors/unknown) and the autopar pass counters
  // (opt.autopar.promoted/blocked) gate like any other family. The
  // baseline pins promoted as an exact value (tol 0: losing a promotion
  // is a regression) while the vector counts take a presence-only rule
  // (they grow as programs gain nests).
  std::map<std::string, double> base{{"depend.nests", 3},
                                     {"depend.vectors", 2},
                                     {"depend.unknown", 0},
                                     {"opt.autopar.promoted", 1},
                                     {"opt.autopar.blocked", 2}};
  std::map<std::string, double> cur{{"depend.nests", 4},
                                    {"depend.vectors", 5},
                                    {"depend.unknown", 1},
                                    {"opt.autopar.promoted", 1},
                                    {"opt.autopar.blocked", 3}};

  auto gated = check(base, cur,
                     {{"depend.", -1},
                      {"opt.autopar.blocked", -1},
                      {"opt.autopar.promoted", 0.0}},
                     0.05);
  EXPECT_TRUE(gated.empty());

  // A promotion disappearing (the -O1 autopar acceptance bar) fails the
  // exact rule even though every key is present.
  std::map<std::string, double> lost = cur;
  lost["opt.autopar.promoted"] = 0;
  auto failed = check(base, lost,
                      {{"depend.", -1},
                       {"opt.autopar.blocked", -1},
                       {"opt.autopar.promoted", 0.0}},
                      0.05);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0].name, "opt.autopar.promoted");

  // The depend.* family vanishing wholesale is a schema mismatch.
  std::map<std::string, double> vanished{{"opt.autopar.promoted", 1},
                                         {"opt.autopar.blocked", 2}};
  EXPECT_EQ(checkExitCode(check(base, vanished, {{"depend.", -1}}, -1)), 2);
}

TEST(StatsLib, CheckExitCodeRanksSchemaAboveTolerance) {
  std::map<std::string, double> base{{"a", 100}, {"b", 1}};

  EXPECT_EQ(checkExitCode(check(base, base, {}, 0)), 0);

  // Pure value drift past tolerance: exit 1.
  EXPECT_EQ(checkExitCode(check(base, {{"a", 200}, {"b", 1}}, {}, 0)), 1);

  // A vanished metric is a schema mismatch: exit 2, even when value
  // failures are present too.
  EXPECT_EQ(checkExitCode(check(base, {{"b", 1}}, {}, 0)), 2);
  EXPECT_EQ(checkExitCode(check(base, {{"b", 99}}, {}, 0)), 2);
}

TEST(StatsLib, SuffixRulesMatchNameEndings) {
  // '*SUFFIX' patterns cover histogram quantiles, whose stems vary.
  EXPECT_TRUE(ruleMatches("pool.task.latency_ns.p50", "*.p50"));
  EXPECT_TRUE(ruleMatches("rt.alloc.size.p50", "*.p50"));
  EXPECT_FALSE(ruleMatches("rt.alloc.size.p50x", "*.p50"));
  EXPECT_FALSE(ruleMatches("rt.alloc.size.count", "*.p50"));
  // Plain patterns still match as prefixes.
  EXPECT_TRUE(ruleMatches("pmu.skipped", "pmu."));
  EXPECT_FALSE(ruleMatches("kernel.pmu.skipped", "pmu."));

  EXPECT_EQ(toleranceFor("gemm.latency.p95", {{"*.p95", -1}}, 0), -1);
  EXPECT_EQ(toleranceFor("gemm.latency.count", {{"*.p95", -1}}, 0), 0);
}

TEST(StatsLib, TelemetryRulesGateSchemaNotValues) {
  // The telemetry preset keeps histogram counts exact (schema signal) but
  // lets the latency-valued fields float (they change every run).
  std::map<std::string, double> base{
      {"pool.task.latency_ns.count", 4},
      {"pool.task.latency_ns.p50", 1000},
      {"pool.task.latency_ns.p99", 9000},
      {"pool.task.latency_ns.max", 9500},
      {"pool.task.latency_ns.sum", 12000},
      {"kernel.matmul.sse.pmu.cycles", 123456},
  };
  std::map<std::string, double> current{
      {"pool.task.latency_ns.count", 4},       // exact, matches
      {"pool.task.latency_ns.p50", 2500},      // drifted: allowed
      {"pool.task.latency_ns.p99", 90000},     // drifted: allowed
      {"pool.task.latency_ns.max", 100000},    // drifted: allowed
      {"pool.task.latency_ns.sum", 180000},    // drifted: allowed
      {"kernel.matmul.sse.pmu.cycles", 99999}, // drifted: allowed
  };
  auto failures = check(base, current, telemetryTolRules(), 0);
  EXPECT_TRUE(failures.empty());

  // Count drift is NOT excused: a task that stopped running is a schema
  // regression, exactly what the gate exists for.
  current["pool.task.latency_ns.count"] = 3;
  failures = check(base, current, telemetryTolRules(), 0);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].name, "pool.task.latency_ns.count");

  // A vanished quantile row still fails: presence-only, not optional.
  current["pool.task.latency_ns.count"] = 4;
  current.erase("pool.task.latency_ns.p99");
  failures = check(base, current, telemetryTolRules(), 0);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_TRUE(failures[0].missing);
}

TEST(StatsLib, ValidatesIntervalExportJsonl) {
  JsonlSummary s;
  std::string err;
  std::string good =
      "{\"export.seq\": 0, \"export.ts_ms\": 100}\n"
      "{\"export.seq\": 1, \"export.ts_ms\": 120, \"rt.alloc.count\": 5, "
      "\"pool.task.latency_ns.p50\": 800}\n"
      "{\"export.seq\": 2, \"export.ts_ms\": 140, \"rt.alloc.count\": 3}\n";
  ASSERT_TRUE(validateJsonl(good, s, err)) << err;
  EXPECT_EQ(s.lines, 3u);
  EXPECT_EQ(s.firstSeq, 0);
  EXPECT_EQ(s.lastSeq, 2);
  // Monotonic deltas sum back to run totals.
  EXPECT_EQ(s.totals.at("rt.alloc.count"), 8);
  EXPECT_TRUE(s.totals.count("pool.task.latency_ns.p50"));
  EXPECT_FALSE(s.totals.count("export.ts_ms")) << "header keys excluded";

  // Failure modes name the offending line.
  EXPECT_FALSE(validateJsonl("", s, err));
  EXPECT_FALSE(validateJsonl("not json\n", s, err));
  EXPECT_NE(err.find("line 1"), std::string::npos) << err;
  EXPECT_FALSE(validateJsonl("{\"export.seq\": 0}\n", s, err));
  EXPECT_NE(err.find("export.ts_ms"), std::string::npos) << err;
  EXPECT_FALSE(validateJsonl("{\"export.ts_ms\": 1}\n", s, err));
  EXPECT_NE(err.find("export.seq"), std::string::npos) << err;
  std::string regressed =
      "{\"export.seq\": 1, \"export.ts_ms\": 100}\n"
      "{\"export.seq\": 1, \"export.ts_ms\": 120}\n";
  EXPECT_FALSE(validateJsonl(regressed, s, err));
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_NE(err.find("strictly increasing"), std::string::npos) << err;
}

} // namespace
} // namespace mmx::stats
