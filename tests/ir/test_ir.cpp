// IR utilities: construction helpers, deep cloning (the transformation
// extension's foundation), and the pseudo-C dump the structure tests
// assert against.
#include "ir/ir.hpp"

#include <gtest/gtest.h>

namespace mmx::ir {
namespace {

Function* makeFn(Module& m) {
  Function* f = m.add("f");
  f->numParams = 0;
  f->addLocal("x", Ty::I32);
  f->addLocal("y", Ty::F32);
  f->addLocal("mat", Ty::Mat);
  return f;
}

TEST(Ir, DumpRendersOperatorsAndTypes) {
  Module m;
  Function* f = makeFn(m);
  std::vector<StmtPtr> body;
  body.push_back(assign(
      0, arith(ArithOp::Add, constI(1),
               arith(ArithOp::Mul, constI(2), constI(3), Ty::I32), Ty::I32)));
  body.push_back(assign(1, cast(Ty::F32, var(0, Ty::I32))));
  f->body = block(std::move(body));
  std::string d = dump(*f);
  EXPECT_NE(d.find("x = (1 + (2 * 3));"), std::string::npos) << d;
  EXPECT_NE(d.find("y = (float)(x);"), std::string::npos);
}

TEST(Ir, DumpShowsLoopAnnotations) {
  Module m;
  Function* f = makeFn(m);
  StmtPtr loop = forLoop(0, constI(0), constI(8),
                         storeFlat(2, var(0, Ty::I32), constF(1.f)), "i");
  loop->parallel = true;
  loop->vecWidth = 4;
  std::vector<StmtPtr> body;
  body.push_back(std::move(loop));
  f->body = block(std::move(body));
  std::string d = dump(*f);
  EXPECT_NE(d.find("#pragma parallel"), std::string::npos);
  EXPECT_NE(d.find("#pragma vectorize 4"), std::string::npos);
  EXPECT_NE(d.find("for (x = 0; x < 8; x++)"), std::string::npos);
}

TEST(Ir, CloneStmtIsDeepAndPreservesAnnotations) {
  Module m;
  Function* f = makeFn(m);
  (void)f;
  StmtPtr loop = forLoop(0, constI(0), constI(10),
                         assign(1, arith(ArithOp::Add, var(1, Ty::F32),
                                         constF(2.f), Ty::F32)),
                         "i");
  loop->parallel = true;
  loop->vecWidth = 4;
  StmtPtr copy = cloneStmt(*loop);

  EXPECT_TRUE(copy->parallel);
  EXPECT_EQ(copy->vecWidth, 4);
  EXPECT_EQ(copy->loopName, "i");
  // Mutating the copy leaves the original untouched.
  copy->loopName = "j";
  copy->exprs[1]->i = 99;
  EXPECT_EQ(loop->loopName, "i");
  EXPECT_EQ(loop->exprs[1]->i, 10);
  // The body is a distinct allocation.
  EXPECT_NE(copy->kids[0].get(), loop->kids[0].get());
}

TEST(Ir, CloneExprCopiesIndexSelectors) {
  auto e = std::make_unique<Expr>();
  e->k = Expr::K::Index;
  e->ty = Ty::Mat;
  e->args.push_back(var(2, Ty::Mat));
  IndexDim d0;
  d0.kind = IndexDim::Kind::Range;
  d0.a = constI(1);
  d0.b = constI(5);
  e->dims.push_back(std::move(d0));
  IndexDim d1;
  d1.kind = IndexDim::Kind::All;
  e->dims.push_back(std::move(d1));

  ExprPtr c = cloneExpr(*e);
  ASSERT_EQ(c->dims.size(), 2u);
  EXPECT_EQ(c->dims[0].kind, IndexDim::Kind::Range);
  EXPECT_EQ(c->dims[0].b->i, 5);
  c->dims[0].b->i = 9;
  EXPECT_EQ(e->dims[0].b->i, 5);
}

TEST(Ir, ModuleFindByName) {
  Module m;
  m.add("alpha");
  m.add("beta");
  EXPECT_NE(m.find("alpha"), nullptr);
  EXPECT_NE(m.find("beta"), nullptr);
  EXPECT_EQ(m.find("gamma"), nullptr);
}

TEST(Ir, DumpMultiReturnSignature) {
  Module m;
  Function* f = m.add("pair");
  f->numParams = 1;
  f->rets = {Ty::I32, Ty::F32};
  f->addLocal("a", Ty::I32);
  std::vector<ExprPtr> rv;
  rv.push_back(var(0, Ty::I32));
  rv.push_back(constF(1.f));
  std::vector<StmtPtr> body;
  body.push_back(ret(std::move(rv)));
  f->body = block(std::move(body));
  std::string d = dump(*f);
  EXPECT_NE(d.find("int, float pair(int a)"), std::string::npos) << d;
  EXPECT_NE(d.find("return a, 1f;"), std::string::npos);
}

TEST(Ir, CloneStmtPreservesParallelProvenanceAndRange) {
  // The parallel-safety pass keys its policy off parSrc and reports
  // against the stamped range; transform clauses clone loops wholesale,
  // so both must survive cloneStmt.
  StmtPtr loop = forLoop(0, constI(0), constI(4),
                         storeFlat(2, var(0, Ty::I32), constF(1.f)), "i");
  loop->parallel = true;
  loop->parSrc = Stmt::Par::Explicit;
  loop->range.begin.file = FileId{1};
  loop->range.begin.offset = 7;
  loop->range.end = 21;
  StmtPtr copy = cloneStmt(*loop);
  EXPECT_EQ(copy->parSrc, Stmt::Par::Explicit);
  EXPECT_TRUE(copy->range.valid());
  EXPECT_EQ(copy->range.begin.offset, 7u);
  EXPECT_EQ(copy->range.end, 21u);
  copy->parSrc = Stmt::Par::Auto;
  EXPECT_EQ(loop->parSrc, Stmt::Par::Explicit);
}

TEST(Ir, DumpAnnotationRoundTripThroughClone) {
  // Printing a deep-cloned loop must render the same annotation lines as
  // the original (parallel + vectorize + the loop header).
  Module m;
  Function* f = makeFn(m);
  StmtPtr loop = forLoop(0, constI(0), constI(8),
                         storeFlat(2, var(0, Ty::I32), constF(2.f)), "row");
  loop->parallel = true;
  loop->vecWidth = 4;
  std::vector<StmtPtr> body;
  body.push_back(cloneStmt(*loop));
  f->body = block(std::move(body));
  std::string cloned = dump(*f);
  std::vector<StmtPtr> body2;
  body2.push_back(std::move(loop));
  f->body = block(std::move(body2));
  EXPECT_EQ(cloned, dump(*f));
  EXPECT_NE(cloned.find("#pragma parallel"), std::string::npos) << cloned;
  EXPECT_NE(cloned.find("#pragma vectorize 4"), std::string::npos);
  EXPECT_NE(cloned.find("for (x = 0; x < 8; x++)"), std::string::npos);
}

TEST(Ir, TyAndOpNames) {
  EXPECT_STREQ(tyName(Ty::Mat), "matrix");
  EXPECT_STREQ(arithName(ArithOp::EwMul), ".*");
  EXPECT_STREQ(cmpName(CmpKind::Ge), ">=");
}

} // namespace
} // namespace mmx::ir
