#include "attr/engine.hpp"

#include <gtest/gtest.h>

#include "parse/parser.hpp"
#include "../parse/exprlang.hpp"

namespace mmx::attr {
namespace {

using test::ExprLang;

struct Fixture : ::testing::Test {
  ExprLang lang;
  SourceManager sm;
  DiagnosticEngine diags;

  ast::NodePtr parse(const std::string& text) {
    parse::Parser parser(lang.g);
    FileId f = sm.add("t.xc", text);
    ast::NodePtr root = parser.parse(sm, f, diags);
    EXPECT_TRUE(root) << diags.render(sm);
    return root;
  }
};

/// Declares a synthesized integer "eval" attribute over the expression
/// grammar where each identifier's value is its length.
Attribute<int> declareEval(Registry& reg) {
  auto eval = reg.declare<int>("eval", AttrKind::Synthesized, "host");
  reg.occursOn(eval.id, "E");
  reg.occursOn(eval.id, "T");
  reg.occursOn(eval.id, "F");
  reg.syn("e_add", eval, [eval](const ast::NodePtr& n, Evaluator& ev) {
    return std::any(ev.get(n->child(0), eval) + ev.get(n->child(2), eval));
  });
  reg.syn("e_t", eval, [eval](const ast::NodePtr& n, Evaluator& ev) {
    return std::any(ev.get(n->child(0), eval));
  });
  reg.syn("t_mul", eval, [eval](const ast::NodePtr& n, Evaluator& ev) {
    return std::any(ev.get(n->child(0), eval) * ev.get(n->child(2), eval));
  });
  reg.syn("t_f", eval, [eval](const ast::NodePtr& n, Evaluator& ev) {
    return std::any(ev.get(n->child(0), eval));
  });
  reg.syn("f_paren", eval, [eval](const ast::NodePtr& n, Evaluator& ev) {
    return std::any(ev.get(n->child(1), eval));
  });
  reg.syn("f_id", eval, [](const ast::NodePtr& n, Evaluator&) {
    return std::any(static_cast<int>(n->child(0)->text().size()));
  });
  return eval;
}

TEST_F(Fixture, SynthesizedEvaluation) {
  Registry reg;
  auto eval = declareEval(reg);
  Evaluator ev(reg);
  // "ab + xyz * dd" -> 2 + 3*2 = 8
  EXPECT_EQ(ev.get(parse("ab + xyz * dd"), eval), 8);
}

TEST_F(Fixture, MemoizationEvaluatesOnce) {
  Registry reg;
  auto eval = declareEval(reg);
  int calls = 0;
  auto counter = reg.declare<int>("counter", AttrKind::Synthesized, "host");
  reg.synDefault(counter.id, [&calls, eval](const ast::NodePtr& n,
                                            Evaluator& ev) {
    ++calls;
    return std::any(ev.get(n, eval));
  });
  Evaluator ev(reg);
  auto root = parse("a + b");
  EXPECT_EQ(ev.get(root, counter), 2);
  EXPECT_EQ(ev.get(root, counter), 2);
  EXPECT_EQ(calls, 1);
}

TEST_F(Fixture, MissingEquationThrowsWithProductionName) {
  Registry reg;
  auto a = reg.declare<int>("orphan", AttrKind::Synthesized, "extX");
  Evaluator ev(reg);
  auto root = parse("x");
  try {
    ev.get(root, a);
    FAIL() << "expected MissingEquation";
  } catch (const MissingEquation& e) {
    EXPECT_NE(std::string(e.what()).find("orphan"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("e_t"), std::string::npos);
  }
}

TEST_F(Fixture, DefaultEquationUsedWhenNoSpecificOne) {
  Registry reg;
  auto a = reg.declare<int>("answer", AttrKind::Synthesized, "host");
  reg.synDefault(a.id, [](const ast::NodePtr&, Evaluator&) {
    return std::any(42);
  });
  Evaluator ev(reg);
  EXPECT_EQ(ev.get(parse("x"), a), 42);
}

TEST_F(Fixture, SpecificEquationBeatsDefault) {
  Registry reg;
  auto a = reg.declare<int>("answer", AttrKind::Synthesized, "host");
  reg.synDefault(a.id, [](const ast::NodePtr&, Evaluator&) {
    return std::any(42);
  });
  reg.syn("e_t", a, [](const ast::NodePtr&, Evaluator&) {
    return std::any(7);
  });
  Evaluator ev(reg);
  EXPECT_EQ(ev.get(parse("x"), a), 7);
}

TEST_F(Fixture, CycleDetected) {
  Registry reg;
  auto a = reg.declare<int>("selfloop", AttrKind::Synthesized, "host");
  reg.synDefault(a.id, [a](const ast::NodePtr& n, Evaluator& ev) {
    return std::any(ev.get(n, a)); // demands itself
  });
  Evaluator ev(reg);
  EXPECT_THROW(ev.get(parse("x"), a), CycleError);
}

TEST_F(Fixture, InheritedDepthViaAutoCopyAndEquations) {
  Registry reg;
  auto depth = reg.declare<int>("depth", AttrKind::Inherited, "host");
  // e_add increments depth for its operands; everything else copies.
  reg.inhAutoCopy(depth.id);
  reg.inh("e_add", 0, depth, [depth](const ast::NodePtr& parent, Evaluator& ev) {
    return std::any(ev.get(parent, depth) + 1);
  });
  reg.inh("e_add", 2, depth, [depth](const ast::NodePtr& parent, Evaluator& ev) {
    return std::any(ev.get(parent, depth) + 1);
  });
  Evaluator ev(reg);
  auto root = parse("a + b + c");
  ev.seed(root, depth, 0);
  // root=(e_add (e_add a b) c): the inner e_add has depth 1, 'c' subtree 1,
  // and a/b subtrees 2.
  auto inner = root->child(0);
  EXPECT_EQ(ev.get(inner, depth), 1);
  EXPECT_EQ(ev.get(inner->child(0), depth), 2); // through autocopy chain
  EXPECT_EQ(ev.get(root->child(2), depth), 1);
}

TEST_F(Fixture, UnseededInheritedOnRootThrows) {
  Registry reg;
  auto depth = reg.declare<int>("depth", AttrKind::Inherited, "host");
  reg.inhAutoCopy(depth.id);
  Evaluator ev(reg);
  EXPECT_THROW(ev.get(parse("x"), depth), MissingEquation);
}

TEST_F(Fixture, SeedOverridesForDetachedTrees) {
  Registry reg;
  auto depth = reg.declare<int>("depth", AttrKind::Inherited, "host");
  reg.inhAutoCopy(depth.id);
  Evaluator ev(reg);
  auto root = parse("x");
  ev.seed(root, depth, 9);
  EXPECT_EQ(ev.get(root, depth), 9);
  EXPECT_EQ(ev.get(root->child(0), depth), 9); // autocopy below the seed
}

// Higher-order attribute: an attribute whose value is a freshly built tree
// (paper §V uses these for the loop transformations). We synthesize a
// "mirror" tree that swaps the operands of every e_add and check we can
// evaluate attributes on it after seeding.
TEST_F(Fixture, HigherOrderAttributeTreesAreEvaluable) {
  Registry reg;
  auto eval = declareEval(reg);
  auto mirror =
      reg.declare<ast::NodePtr>("mirror", AttrKind::Synthesized, "host");
  reg.synDefault(mirror.id, [](const ast::NodePtr& n, Evaluator&) {
    return std::any(ast::cloneTree(n)); // default: a fresh copy
  });
  reg.syn("e_add", mirror, [mirror](const ast::NodePtr& n, Evaluator& ev) {
    // A new node with reversed operand order; children are clones, never
    // the original program tree (makeNode re-parents its children).
    auto m = ast::makeNode(n->prod,
                           {ev.get(n->child(2), mirror),
                            ast::cloneTree(n->child(1)),
                            ev.get(n->child(0), mirror)},
                           n->range);
    return std::any(m);
  });
  Evaluator ev(reg);
  auto root = parse("ab + xyz");
  auto m = ev.get(root, mirror);
  ASSERT_TRUE(m);
  EXPECT_TRUE(m->is("e_add"));
  // The mirrored tree's first child is the original RHS subtree ("xyz"->3).
  // Fresh nodes get fresh attribute stores; evaluation works on them.
  Evaluator ev2(reg);
  EXPECT_EQ(ev2.get(m, eval), 5);
}

TEST_F(Fixture, RegistryRejectsKindMismatches) {
  Registry reg;
  auto syn = reg.declare<int>("s", AttrKind::Synthesized, "host");
  auto inh = reg.declare<int>("i", AttrKind::Inherited, "host");
  EXPECT_THROW(reg.inhRaw("e_add", 0, syn.id, {}), std::logic_error);
  EXPECT_THROW(reg.synRaw("e_add", inh.id, {}), std::logic_error);
  EXPECT_THROW(reg.inhAutoCopy(syn.id), std::logic_error);
  Evaluator ev(reg);
  auto root = parse("x");
  EXPECT_THROW(ev.seedInherited(root, syn.id, std::any(1)), std::logic_error);
}

} // namespace
} // namespace mmx::attr
