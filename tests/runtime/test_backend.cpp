// Kernel backend registry (ISSUE 7): selection policy (priority order,
// $MMX_BACKEND, explicit pin), the per-backend oracle contract — every
// backend bit-matches the naive reference on exactly-representable data,
// including the FMA backend — and the element-wise/reduction strip ABI
// that must hold on *arbitrary* data. Also pins the deprecated wrapper
// shims and the backend observability counters.
#include "runtime/backend.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "runtime/gemm.hpp"
#include "runtime/kernels.hpp"
#include "support/metrics.hpp"

namespace mmx::rt {
namespace {

// Entries are small multiples of 1/8, so every product is an exact
// multiple of 1/64 below 2^14 and every k<=300 partial sum stays under
// 2^24 granules: all intermediate values are exactly representable, which
// makes mul-then-add and fused-multiply-add round identically. That is
// the data family the cross-backend bit-identity contract is pinned on.
Matrix exactF32(int64_t rows, int64_t cols, uint32_t seed) {
  Matrix m = Matrix::zeros(Elem::F32, {rows, cols});
  uint32_t s = seed * 2654435761u + 1;
  for (int64_t i = 0; i < m.size(); ++i) {
    s = s * 1664525u + 1013904223u;
    m.f32()[i] = static_cast<float>(static_cast<int32_t>(s >> 16) % 97) / 8.0f;
  }
  return m;
}

// Arbitrary (inexact) values: sums of these DO round, so tests using this
// generator check accumulation-order agreement, not just arithmetic.
Matrix noisyF32(int64_t rows, int64_t cols, uint32_t seed) {
  Matrix m = Matrix::zeros(Elem::F32, {rows, cols});
  uint32_t s = seed * 2246822519u + 3;
  for (int64_t i = 0; i < m.size(); ++i) {
    s = s * 1664525u + 1013904223u;
    m.f32()[i] = static_cast<float>(s) / 65536.0f - 32768.0f;
  }
  return m;
}

Matrix denseI32(int64_t rows, int64_t cols, uint32_t seed) {
  Matrix m = Matrix::zeros(Elem::I32, {rows, cols});
  uint32_t s = seed * 2246822519u + 7;
  for (int64_t i = 0; i < m.size(); ++i) {
    s = s * 1664525u + 1013904223u;
    m.i32()[i] = static_cast<int32_t>(s >> 20) - 2048;
  }
  return m;
}

bool sameBits(const Matrix& a, const Matrix& b) {
  if (a.size() != b.size() || a.elem() != b.elem()) return false;
  size_t bytes = static_cast<size_t>(a.size()) *
                 (a.elem() == Elem::Bool ? 1 : 4);
  return std::memcmp(a.data<char>(), b.data<char>(), bytes) == 0;
}

/// RAII guard restoring the lazy "auto" resolution (and a clean
/// environment) no matter how a test exits.
struct AutoRestore {
  ~AutoRestore() {
    ::unsetenv("MMX_BACKEND");
    selectBackend("auto");
  }
};

TEST(BackendRegistry, BuiltinsRegisteredInPriorityOrder) {
  auto all = backends();
  ASSERT_GE(all.size(), 4u);
  for (size_t i = 1; i < all.size(); ++i)
    EXPECT_GE(all[i - 1]->priority(), all[i]->priority());

  auto names = backendNames();
  ASSERT_GE(names.size(), 4u);
  EXPECT_EQ(names[0], "scalar");
  EXPECT_EQ(names[1], "sse");
  EXPECT_EQ(names[2], "avx");
  EXPECT_EQ(names[3], "avx2fma");

  ASSERT_NE(findBackend("scalar"), nullptr);
  EXPECT_TRUE(findBackend("scalar")->available());
  ASSERT_NE(findBackend("sse"), nullptr);
  EXPECT_TRUE(findBackend("sse")->available());
  EXPECT_EQ(findBackend("bogus"), nullptr);
}

TEST(BackendRegistry, ExplicitSelectionPinsAndRestores) {
  AutoRestore guard;
  {
    BackendOverride pin("scalar");
    EXPECT_EQ(activeBackend().name(), "scalar");
    {
      BackendOverride nested("sse");
      EXPECT_EQ(activeBackend().name(), "sse");
    }
    EXPECT_EQ(activeBackend().name(), "scalar");
  }
  // Back to auto: MMX_BACKEND wins if set (the CI matrix legs run this
  // whole binary under it); otherwise the highest-priority available
  // backend is active.
  const KernelBackend& be = activeBackend();
  if (const char* env = ::getenv("MMX_BACKEND")) {
    EXPECT_EQ(be.name(), std::string(env));
    return;
  }
  for (const KernelBackend* other : backends())
    if (other->available()) {
      EXPECT_EQ(be.name(), other->name());
      break;
    }
}

TEST(BackendRegistry, UnknownOrUnavailableSelectionThrows) {
  AutoRestore guard;
  try {
    selectBackend("bogus");
    FAIL() << "selectBackend(\"bogus\") did not throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown backend 'bogus'"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("registered:"), std::string::npos);
  }
}

TEST(BackendRegistry, EnvOverrideUnderAuto) {
  AutoRestore guard;
  ::setenv("MMX_BACKEND", "scalar", 1);
  selectBackend("auto"); // re-arm lazy resolution so the env is re-read
  EXPECT_EQ(activeBackend().name(), "scalar");

  // An explicit selection beats the environment.
  {
    BackendOverride pin("sse");
    EXPECT_EQ(activeBackend().name(), "sse");
  }
  EXPECT_EQ(activeBackend().name(), "scalar");

  // A bad environment value surfaces when (and only when) it is consulted.
  ::setenv("MMX_BACKEND", "bogus", 1);
  selectBackend("auto");
  EXPECT_THROW(activeBackend(), std::runtime_error);
}

TEST(BackendRegistry, SelectionErrorIsADryRun) {
  AutoRestore guard;
  BackendOverride pin("sse");
  EXPECT_FALSE(backendSelectionError("bogus").empty());
  EXPECT_NE(backendSelectionError("bogus").find("unknown backend"),
            std::string::npos);
  EXPECT_TRUE(backendSelectionError("scalar").empty());
  EXPECT_TRUE(backendSelectionError("auto").empty());
  // Probing never moved the actual selection.
  EXPECT_EQ(activeBackend().name(), "sse");
}

TEST(BackendRegistry, RuntimeConfigAppliesBackend) {
  AutoRestore guard;
  RuntimeConfig cfg;
  cfg.executor = ExecutorKind::Serial;
  cfg.threads = 1;
  cfg.backend = "scalar";
  auto exec = cfg.make();
  ASSERT_NE(exec, nullptr);
  EXPECT_EQ(activeBackend().name(), "scalar");

  cfg.backend = "bogus";
  EXPECT_THROW(cfg.make(), std::invalid_argument);
}

struct Shape {
  int64_t m, k, n;
};

// Degenerate, prime, off-tile, and >cutoff shapes; the two k=300 rows
// span multiple KC=256 panels, so they also pin the panel-boundary
// accumulation order.
const Shape kOracleShapes[] = {{1, 1, 1},   {2, 3, 4},    {5, 5, 5},
                               {17, 31, 13}, {97, 101, 89}, {1, 300, 1},
                               {33, 300, 17}};

TEST(BackendOracle, F32BitIdenticalToNaiveOnExactData) {
  AutoRestore guard;
  SerialExecutor ser;
  for (const Shape& s : kOracleShapes) {
    Matrix a = exactF32(s.m, s.k, static_cast<uint32_t>(s.m * 7 + s.k));
    Matrix b = exactF32(s.k, s.n, static_cast<uint32_t>(s.k * 3 + s.n));
    Matrix ref = matmulNaive(ser, a, b);
    for (const KernelBackend* be : backends()) {
      if (!be->available()) continue;
      BackendOverride pin(be->name());
      Matrix got = matmul(ser, a, b);
      EXPECT_TRUE(sameBits(got, ref))
          << be->name() << " f32 mismatch at " << s.m << "x" << s.k << "x"
          << s.n;
    }
  }
}

TEST(BackendOracle, I32BitIdenticalToNaive) {
  AutoRestore guard;
  SerialExecutor ser;
  for (const Shape& s : kOracleShapes) {
    Matrix a = denseI32(s.m, s.k, static_cast<uint32_t>(s.m + s.k));
    Matrix b = denseI32(s.k, s.n, static_cast<uint32_t>(s.k + s.n));
    Matrix ref = matmulNaive(ser, a, b);
    for (const KernelBackend* be : backends()) {
      if (!be->available()) continue;
      BackendOverride pin(be->name());
      Matrix got = matmul(ser, a, b);
      EXPECT_TRUE(sameBits(got, ref))
          << be->name() << " i32 mismatch at " << s.m << "x" << s.k << "x"
          << s.n;
    }
  }
}

TEST(BackendOracle, ParallelExecutorMatchesSerial) {
  AutoRestore guard;
  ForkJoinPool pool(4);
  SerialExecutor ser;
  Matrix a = exactF32(97, 101, 21);
  Matrix b = exactF32(101, 89, 22);
  for (const KernelBackend* be : backends()) {
    if (!be->available()) continue;
    BackendOverride pin(be->name());
    EXPECT_TRUE(sameBits(matmul(pool, a, b), matmul(ser, a, b)))
        << be->name() << " parallel/serial divergence";
  }
}

TEST(BackendOracle, F64InterfaceMatchesNaiveOnExactData) {
  SerialExecutor ser;
  const int64_t m = 13, k = 37, n = 11;
  std::vector<double> A(m * k), B(k * n);
  uint32_t s = 99;
  for (auto& v : A) {
    s = s * 1664525u + 1013904223u;
    v = static_cast<double>(static_cast<int32_t>(s >> 16) % 97) / 8.0;
  }
  for (auto& v : B) {
    s = s * 1664525u + 1013904223u;
    v = static_cast<double>(static_cast<int32_t>(s >> 16) % 97) / 8.0;
  }
  std::vector<double> ref(m * n, 0.0);
  for (int64_t i = 0; i < m; ++i)
    for (int64_t kk = 0; kk < k; ++kk)
      for (int64_t j = 0; j < n; ++j)
        ref[i * n + j] += A[i * k + kk] * B[kk * n + j];
  for (const KernelBackend* be : backends()) {
    if (!be->available()) continue;
    std::vector<double> C(m * n, 0.0);
    be->gemmF64(ser, A.data(), B.data(), C.data(), m, k, n);
    EXPECT_EQ(std::memcmp(C.data(), ref.data(), C.size() * sizeof(double)), 0)
        << be->name() << " f64 mismatch";
  }
}

TEST(BackendStrips, EwBitIdenticalAcrossBackendsOnArbitraryData) {
  // Element-wise ops are pure per-element work: the contract is exact
  // agreement on ANY data, not just exactly-representable values.
  AutoRestore guard;
  SerialExecutor ser;
  Matrix a = noisyF32(9, 13, 31);
  Matrix b = noisyF32(9, 13, 47);
  const BinOp ops[] = {BinOp::Add, BinOp::Sub, BinOp::Mul,
                       BinOp::Div, BinOp::Min, BinOp::Max};
  for (BinOp op : ops) {
    Matrix ref;
    {
      BackendOverride pin("scalar");
      ew(ser, op, a, b, ref);
    }
    for (const KernelBackend* be : backends()) {
      if (!be->available()) continue;
      BackendOverride pin(be->name());
      Matrix mm, ms;
      ew(ser, op, a, b, mm);
      ew(ser, op, a, 1.7f, ms);
      Matrix refS;
      {
        BackendOverride sc("scalar");
        ew(ser, op, a, 1.7f, refS);
      }
      EXPECT_TRUE(sameBits(mm, ref)) << be->name() << " ew op mismatch";
      EXPECT_TRUE(sameBits(ms, refS)) << be->name() << " ew scalar mismatch";
    }
  }
}

TEST(BackendStrips, ReduceBitIdenticalAcrossBackendsOnArbitraryData) {
  // The reduction ABI fixes the accumulation order (four striped lanes
  // combined pairwise, then the tail), so even rounding-sensitive sums
  // must agree bit-for-bit between the scalar emulation and the SSE path.
  AutoRestore guard;
  SerialExecutor ser;
  for (int64_t len : {1, 3, 4, 7, 64, 1001}) {
    Matrix m = noisyF32(1, len, static_cast<uint32_t>(len) * 5 + 1);
    float ref;
    {
      BackendOverride pin("scalar");
      ref = reduceF32(ser, BinOp::Add, 0.0f, m, /*simd=*/true);
    }
    for (const KernelBackend* be : backends()) {
      if (!be->available()) continue;
      BackendOverride pin(be->name());
      float got = reduceF32(ser, BinOp::Add, 0.0f, m, /*simd=*/true);
      EXPECT_EQ(got, ref) << be->name() << " reduce len " << len;
      // Min/Max are order-insensitive; still exercise the strip.
      EXPECT_EQ(reduceF32(ser, BinOp::Max, m.f32()[0], m, true),
                ([&] {
                  BackendOverride sc("scalar");
                  return reduceF32(ser, BinOp::Max, m.f32()[0], m, true);
                }()))
          << be->name();
    }
  }
}

TEST(BackendShims, DeprecatedWrappersMatchTemplatedEntry) {
  AutoRestore guard;
  SerialExecutor ser;
  Matrix a = noisyF32(6, 7, 3);
  Matrix b = noisyF32(6, 7, 4);
  Matrix ai = denseI32(6, 7, 5);

  Matrix viaShim, viaEw;
  ewBinary(ser, BinOp::Mul, a, b, viaShim, true);
  ew(ser, BinOp::Mul, a, b, viaEw, true);
  EXPECT_TRUE(sameBits(viaShim, viaEw));

  Matrix fShim, fEw;
  ewBinaryScalarF(ser, BinOp::Add, a, 0.5f, fShim, true);
  ew(ser, BinOp::Add, a, 0.5f, fEw, true);
  EXPECT_TRUE(sameBits(fShim, fEw));

  Matrix iShim, iEw;
  ewBinaryScalarI(ser, BinOp::Sub, ai, 9, iShim, true);
  ew(ser, BinOp::Sub, ai, int32_t{9}, iEw, true);
  EXPECT_TRUE(sameBits(iShim, iEw));
}

TEST(BackendMetrics, SelectionAndPerBackendMatmulCounters) {
  AutoRestore guard;
  metrics::enable(true);
  metrics::reset();
  {
    SerialExecutor ser;
    BackendOverride pin("sse");
    Matrix a = exactF32(8, 9, 1), b = exactF32(9, 7, 2);
    (void)matmul(ser, a, b);
  }
  metrics::Snapshot s = metrics::snapshot();
  metrics::enable(false);

  bool sawSelected = false;
  for (const auto& c : s.counters)
    if (c.name == "backend.selected.sse" && c.value > 0) sawSelected = true;
  EXPECT_TRUE(sawSelected) << "backend.selected.sse counter missing";

  bool sawGeneric = false, sawPerBackend = false;
  for (const auto& t : s.timers) {
    if (t.name == "kernel.matmul" && t.count == 1) sawGeneric = true;
    if (t.name == "kernel.matmul.sse" && t.count == 1) sawPerBackend = true;
  }
  EXPECT_TRUE(sawGeneric) << "kernel.matmul timer missing";
  EXPECT_TRUE(sawPerBackend) << "kernel.matmul.sse timer missing";
}

} // namespace
} // namespace mmx::rt
