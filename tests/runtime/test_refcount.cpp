#include "runtime/refcount.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace mmx::rt {
namespace {

TEST(Refcount, AllocStartsAtOne) {
  void* p = rcAlloc(64);
  EXPECT_EQ(rcCount(p), 1);
  EXPECT_TRUE(rcRelease(p));
}

TEST(Refcount, RetainReleaseBalance) {
  void* p = rcAlloc(16);
  rcRetain(p);
  rcRetain(p);
  EXPECT_EQ(rcCount(p), 3);
  EXPECT_FALSE(rcRelease(p));
  EXPECT_FALSE(rcRelease(p));
  EXPECT_EQ(rcCount(p), 1);
  EXPECT_TRUE(rcRelease(p)); // freed exactly at zero
}

TEST(Refcount, ReleaseNullIsNoop) { EXPECT_FALSE(rcRelease(nullptr)); }

TEST(Refcount, PayloadIs16ByteAligned) {
  for (size_t sz : {1u, 7u, 64u, 1000u}) {
    void* p = rcAlloc(sz);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 16, 0u) << sz;
    rcRelease(p);
  }
}

TEST(Refcount, LiveBlockAccounting) {
  int64_t before = rcLiveBlocks();
  void* a = rcAlloc(8);
  void* b = rcAlloc(8);
  EXPECT_EQ(rcLiveBlocks(), before + 2);
  rcRelease(a);
  rcRelease(b);
  EXPECT_EQ(rcLiveBlocks(), before);
}

TEST(Refcount, PayloadIsUsable) {
  auto* p = static_cast<int32_t*>(rcAlloc(4 * sizeof(int32_t)));
  for (int i = 0; i < 4; ++i) p[i] = i * 7;
  for (int i = 0; i < 4; ++i) EXPECT_EQ(p[i], i * 7);
  rcRelease(p);
}

TEST(Refcount, ConcurrentRetainRelease) {
  void* p = rcAlloc(8);
  constexpr int kThreads = 8, kIters = 5000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        rcRetain(p);
        rcRelease(p);
      }
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(rcCount(p), 1);
  EXPECT_TRUE(rcRelease(p));
}

TEST(RcPtr, CopySharesAndCounts) {
  auto a = RcPtr<float>::allocate(10);
  EXPECT_EQ(a.useCount(), 1);
  {
    RcPtr<float> b = a;
    EXPECT_EQ(a.useCount(), 2);
    EXPECT_EQ(b.get(), a.get());
  }
  EXPECT_EQ(a.useCount(), 1);
}

TEST(RcPtr, MoveTransfersWithoutCounting) {
  auto a = RcPtr<int32_t>::allocate(4);
  int32_t* raw = a.get();
  RcPtr<int32_t> b = std::move(a);
  EXPECT_FALSE(a);
  EXPECT_EQ(b.get(), raw);
  EXPECT_EQ(b.useCount(), 1);
}

TEST(RcPtr, AssignmentReleasesOldTarget) {
  int64_t before = rcLiveBlocks();
  {
    auto a = RcPtr<int32_t>::allocate(4);
    auto b = RcPtr<int32_t>::allocate(4);
    EXPECT_EQ(rcLiveBlocks(), before + 2);
    b = a; // old b buffer must be freed
    EXPECT_EQ(rcLiveBlocks(), before + 1);
    EXPECT_EQ(a.useCount(), 2);
  }
  EXPECT_EQ(rcLiveBlocks(), before);
}

TEST(RcPtr, SelfAssignmentSafe) {
  auto a = RcPtr<int32_t>::allocate(2);
  a[0] = 5;
  auto& ref = a;
  a = ref;
  EXPECT_EQ(a.useCount(), 1);
  EXPECT_EQ(a[0], 5);
}

TEST(RcPtr, AllocateZeroInitializes) {
  auto a = RcPtr<int32_t>::allocate(100);
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(a[i], 0);
}

} // namespace
} // namespace mmx::rt
