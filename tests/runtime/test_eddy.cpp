#include "runtime/eddy.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "runtime/ssh_synth.hpp"

namespace mmx::rt {
namespace {

TEST(GetTrough, WalksDownThenUp) {
  //            0    1    2    3    4   5
  float ts[] = {2.f, 1.f, 0.f, 1.f, 2.f, 1.f};
  Trough t = getTrough(ts, 6, 0);
  EXPECT_EQ(t.begin, 0);
  EXPECT_EQ(t.end, 4); // stops at the next local max
  ASSERT_EQ(t.values.size(), 5u);
  EXPECT_FLOAT_EQ(t.values[2], 0.f);
}

TEST(GetTrough, PlateauCountsAsDescent) {
  float ts[] = {1.f, 1.f, 0.f, 1.f};
  Trough t = getTrough(ts, 4, 0);
  EXPECT_EQ(t.begin, 0);
  EXPECT_EQ(t.end, 3);
}

TEST(GetTrough, TailClampsToSeriesEnd) {
  float ts[] = {2.f, 1.f, 0.f};
  Trough t = getTrough(ts, 3, 0);
  EXPECT_EQ(t.end, 2);
}

TEST(ComputeArea, SymmetricVee) {
  // Line from 2 to 2 over 5 points = flat at 2; data = 2,1,0,1,2.
  // Differences: 0,1,2,1,0 => area 4.
  EXPECT_FLOAT_EQ(computeArea({2, 1, 0, 1, 2}), 4.f);
}

TEST(ComputeArea, SlantedLine) {
  // Endpoints 0 and 4 over 5 points: line = 0,1,2,3,4; data 0,0,0,0,4.
  EXPECT_FLOAT_EQ(computeArea({0, 0, 0, 0, 4}), 1 + 2 + 3);
}

TEST(ComputeArea, DegenerateInputs) {
  EXPECT_FLOAT_EQ(computeArea({}), 0.f);
  EXPECT_FLOAT_EQ(computeArea({5.f}), 0.f);
  EXPECT_FLOAT_EQ(computeArea({1.f, 2.f}), 0.f); // line == data
}

TEST(ScoreTS, SingleTroughScoresItsExtent) {
  //             trim^  v-------trough-------v
  float ts[] = {0.f, 1.f, 0.f, -1.f, 0.f, 1.f, 0.5f};
  float out[7];
  scoreTS(ts, 7, out);
  // Trim ends at index 1 (first local max). Trough spans [1,5]; area of
  // {1,0,-1,0,1} vs flat line at 1: 0+1+2+1+0 = 4. The shared endpoint 5
  // is then overwritten by the next (degenerate) trough {1, 0.5} — the
  // paper's scores[beginning::i] assignment does exactly this.
  EXPECT_FLOAT_EQ(out[0], 0.f);
  for (int k = 1; k <= 4; ++k) EXPECT_FLOAT_EQ(out[k], 4.f) << k;
  EXPECT_FLOAT_EQ(out[5], 0.f);
  EXPECT_FLOAT_EQ(out[6], 0.f);
}

TEST(ScoreTS, DeepTroughOutscoresShallowOne) {
  // Two troughs: shallow then deep — the paper's ranking property.
  float ts[] = {0, 1, 0.5f, 1, 1, -2, 1, 0};
  float out[8];
  scoreTS(ts, 8, out);
  float shallow = out[2];
  float deep = out[5];
  EXPECT_GT(deep, shallow);
  EXPECT_GT(deep, 0.f);
}

TEST(ScoreTS, MonotoneSeriesScoresZero) {
  float up[] = {0, 1, 2, 3, 4};
  float out[5];
  scoreTS(up, 5, out);
  for (float v : out) EXPECT_FLOAT_EQ(v, 0.f);
}

TEST(ScoreTS, ShortSeries) {
  float one[] = {1.f};
  float out1[1] = {9.f};
  scoreTS(one, 1, out1);
  EXPECT_FLOAT_EQ(out1[0], 0.f);
}

TEST(ScoreAllSeries, MatchesPerSeriesOracle) {
  SshParams p;
  p.nlat = 6;
  p.nlon = 5;
  p.ntime = 40;
  p.numEddies = 2;
  Matrix ssh = synthesizeSsh(p);
  ForkJoinPool pool(4);
  Matrix scores = scoreAllSeries(pool, ssh);
  ASSERT_EQ(scores.rank(), 3u);

  std::vector<float> expect(p.ntime);
  for (int64_t ij = 0; ij < p.nlat * p.nlon; ++ij) {
    scoreTS(ssh.f32() + ij * p.ntime, static_cast<int>(p.ntime),
            expect.data());
    for (int64_t k = 0; k < p.ntime; ++k)
      ASSERT_FLOAT_EQ(scores.f32()[ij * p.ntime + k], expect[k])
          << "series " << ij << " step " << k;
  }
}

TEST(ScoreAllSeries, EddyPointsOutscoreQuietPoints) {
  // End-to-end sanity on synthetic data: the max trough score across the
  // map should sit on a point an eddy actually crossed.
  SshParams p;
  p.nlat = 24;
  p.nlon = 24;
  p.ntime = 64;
  p.numEddies = 3;
  p.noiseAmp = 0.02f;
  Matrix ssh = synthesizeSsh(p);
  SerialExecutor ex;
  Matrix scores = scoreAllSeries(ex, ssh);
  Matrix truth = eddyGroundTruth(p, 1.5f);

  // Max score per (lat, lon).
  float bestScore = -1.f;
  int64_t bestIdx = -1;
  for (int64_t ij = 0; ij < p.nlat * p.nlon; ++ij) {
    for (int64_t k = 0; k < p.ntime; ++k) {
      float s = scores.f32()[ij * p.ntime + k];
      if (s > bestScore) {
        bestScore = s;
        bestIdx = ij;
      }
    }
  }
  ASSERT_GE(bestIdx, 0);
  bool touched = false;
  for (int64_t k = 0; k < p.ntime; ++k)
    if (truth.boolean()[bestIdx * p.ntime + k]) touched = true;
  EXPECT_TRUE(touched) << "highest-scoring point never met an eddy";
}

} // namespace
} // namespace mmx::rt
