#include "runtime/alloc.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "runtime/refcount.hpp"

namespace mmx::rt {
namespace {

TEST(MutexAllocator, RoundTripAndReuse) {
  auto& a = MutexAllocator::instance();
  void* p = a.allocate(100);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xab, 100);
  a.deallocate(p);
  void* q = a.allocate(100); // same bucket: should reuse the block
  EXPECT_EQ(q, p);
  a.deallocate(q);
  a.trim();
}

TEST(MutexAllocator, PayloadAligned) {
  auto& a = MutexAllocator::instance();
  for (size_t sz : {1u, 17u, 4096u}) {
    void* p = a.allocate(sz);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 16, 0u);
    a.deallocate(p);
  }
  a.trim();
}

TEST(MutexAllocator, DistinctSizesDistinctBuckets) {
  auto& a = MutexAllocator::instance();
  void* small = a.allocate(10);
  void* big = a.allocate(100000);
  EXPECT_NE(small, big);
  a.deallocate(small);
  a.deallocate(big);
  void* small2 = a.allocate(10);
  EXPECT_EQ(small2, small);
  a.deallocate(small2);
  a.trim();
}

TEST(MutexAllocator, CountsLockAcquisitions) {
  auto& a = MutexAllocator::instance();
  uint64_t before = a.lockAcquisitions();
  void* p = a.allocate(8);
  a.deallocate(p);
  EXPECT_EQ(a.lockAcquisitions(), before + 2);
  a.trim();
}

TEST(MutexAllocator, ParallelChurnIsCorrect) {
  auto& a = MutexAllocator::instance();
  constexpr int kThreads = 4, kIters = 2000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&a, t] {
      for (int i = 0; i < kIters; ++i) {
        auto* p = static_cast<uint32_t*>(a.allocate(64));
        *p = static_cast<uint32_t>(t * kIters + i);
        EXPECT_EQ(*p, static_cast<uint32_t>(t * kIters + i));
        a.deallocate(p);
      }
    });
  for (auto& t : ts) t.join();
  a.trim();
}

TEST(ArenaAllocator, BumpAllocationsAreDisjoint) {
  auto& a = ArenaAllocator::instance();
  a.reset();
  char* p = static_cast<char*>(a.allocate(100));
  char* q = static_cast<char*>(a.allocate(100));
  EXPECT_NE(p, q);
  std::memset(p, 1, 100);
  std::memset(q, 2, 100);
  EXPECT_EQ(p[99], 1);
  EXPECT_EQ(q[0], 2);
  a.reset();
}

TEST(ArenaAllocator, Aligned16) {
  auto& a = ArenaAllocator::instance();
  a.reset();
  for (size_t sz : {1u, 5u, 31u, 100u}) {
    void* p = a.allocate(sz);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 16, 0u);
  }
  a.reset();
}

TEST(ArenaAllocator, LargeAllocationGetsOwnChunk) {
  auto& a = ArenaAllocator::instance();
  a.reset();
  void* big = a.allocate(4 << 20);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xcd, 4 << 20);
  a.reset();
  EXPECT_EQ(a.chunkCount(), 0u);
}

TEST(ArenaAllocator, ParallelThreadsGetPrivateArenas) {
  auto& a = ArenaAllocator::instance();
  a.reset();
  constexpr int kThreads = 4;
  std::vector<void*> firsts(kThreads, nullptr);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&, t] { firsts[t] = a.allocate(64); });
  for (auto& t : ts) t.join();
  for (int i = 0; i < kThreads; ++i)
    for (int j = i + 1; j < kThreads; ++j) EXPECT_NE(firsts[i], firsts[j]);
  a.reset();
}

TEST(RcAllocHooks, RefcountCellsRunOnArena) {
  auto& a = ArenaAllocator::instance();
  a.reset();
  setRcAllocHooks({arenaAllocHook, arenaFreeHook});
  void* p = rcAlloc(256);
  EXPECT_EQ(rcCount(p), 1);
  rcRelease(p); // arena free is a no-op; cell accounting still works
  setRcAllocHooks({});
  a.reset();
}

TEST(RcAllocHooks, RefcountCellsRunOnMutexAllocator) {
  setRcAllocHooks({mutexAllocHook, mutexFreeHook});
  void* p = rcAlloc(64);
  rcRetain(p);
  EXPECT_FALSE(rcRelease(p));
  EXPECT_TRUE(rcRelease(p));
  setRcAllocHooks({});
  MutexAllocator::instance().trim();
}

} // namespace
} // namespace mmx::rt
