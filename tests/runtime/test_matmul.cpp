// Tiled matmul engine vs the naive reference (ISSUE 4): the blocked,
// packed, register-tiled kernels must reproduce the naive results exactly
// for shapes that are not multiples of any tile size — including
// degenerate 1xN / Nx1 products and prime extents — for both f32 and
// i32, serial and parallel. f32 bit-identity holds whenever k <= KC (one
// packed panel, so the per-element accumulation order matches the naive
// loop); across KC panels the engine reassociates and only closeness is
// guaranteed (see DESIGN.md "Runtime kernels").
#include "runtime/gemm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "runtime/kernels.hpp"
#include "support/metrics.hpp"

namespace mmx::rt {
namespace {

Matrix denseF32(int64_t rows, int64_t cols, uint32_t seed) {
  Matrix m = Matrix::zeros(Elem::F32, {rows, cols});
  uint32_t s = seed * 2654435761u + 1;
  for (int64_t i = 0; i < m.size(); ++i) {
    s = s * 1664525u + 1013904223u;
    m.f32()[i] = static_cast<float>(static_cast<int32_t>(s >> 16) % 997) /
                 64.0f;
  }
  return m;
}

Matrix denseI32(int64_t rows, int64_t cols, uint32_t seed) {
  Matrix m = Matrix::zeros(Elem::I32, {rows, cols});
  uint32_t s = seed * 2246822519u + 7;
  for (int64_t i = 0; i < m.size(); ++i) {
    s = s * 1664525u + 1013904223u;
    m.i32()[i] = static_cast<int32_t>(s >> 20) - 2048;
  }
  return m;
}

struct Shape {
  int64_t m, k, n;
};

// Degenerate, prime, and off-tile shapes: nothing here is a multiple of
// MR=4, NR=8, MC=64, or NC=256 unless noted.
const Shape kAwkwardShapes[] = {
    {1, 1, 1},    {1, 7, 9},     {9, 7, 1},    {1, 33, 1},
    {17, 31, 13}, {31, 13, 17},  {5, 19, 23},  {4, 8, 8}, // exact micro-tile
    {67, 3, 11},  {3, 67, 259},  {65, 129, 9}, {130, 5, 263},
};

TEST(MatmulTiled, BitIdenticalToNaiveF32WithinOnePanel) {
  SerialExecutor ser;
  for (const Shape& s : kAwkwardShapes) {
    ASSERT_LE(s.k, GemmBlocking::KC); // one packed panel => exact order
    Matrix a = denseF32(s.m, s.k, 11);
    Matrix b = denseF32(s.k, s.n, 23);
    Matrix naive = matmulNaive(ser, a, b);
    Matrix tiled = matmulTiled(ser, a, b);
    EXPECT_TRUE(tiled.equals(naive, 0.0f))
        << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(MatmulTiled, BitIdenticalToNaiveI32) {
  SerialExecutor ser;
  // i32 addition wraps and is associative, so bit-identity holds even
  // across KC panel boundaries (k = 300 > KC).
  const Shape shapes[] = {{1, 300, 5}, {17, 31, 13}, {9, 257, 9},
                          {70, 300, 70}};
  for (const Shape& s : shapes) {
    Matrix a = denseI32(s.m, s.k, 3);
    Matrix b = denseI32(s.k, s.n, 5);
    EXPECT_TRUE(matmulTiled(ser, a, b).equals(matmulNaive(ser, a, b)))
        << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(MatmulTiled, AcrossPanelsF32StaysClose) {
  SerialExecutor ser;
  Matrix a = denseF32(7, 531, 2); // k spans three KC panels
  Matrix b = denseF32(531, 11, 4);
  Matrix naive = matmulNaive(ser, a, b);
  Matrix tiled = matmulTiled(ser, a, b);
  ASSERT_EQ(tiled.size(), naive.size());
  for (int64_t i = 0; i < naive.size(); ++i) {
    float ref = naive.f32()[i];
    EXPECT_NEAR(tiled.f32()[i], ref, 1e-3f * (std::fabs(ref) + 1.0f)) << i;
  }
}

TEST(MatmulTiled, ParallelBitIdenticalToSerial) {
  // The 2D tile grid assigns every output element to exactly one task, so
  // thread count must not change a single bit — f32 included.
  SerialExecutor ser;
  ForkJoinPool pool(4);
  Matrix a = denseF32(130, 300, 7);
  Matrix b = denseF32(300, 263, 9);
  EXPECT_TRUE(matmulTiled(pool, a, b).equals(matmulTiled(ser, a, b), 0.0f));
  Matrix ai = denseI32(65, 129, 1);
  Matrix bi = denseI32(129, 71, 2);
  EXPECT_TRUE(matmulTiled(pool, ai, bi).equals(matmulTiled(ser, ai, bi)));
}

TEST(MatmulTiled, TallSkinnyAndShortWide) {
  SerialExecutor ser;
  ForkJoinPool pool(3);
  Matrix tall = denseF32(1031, 5, 1);
  Matrix thin = denseF32(5, 3, 2);
  EXPECT_TRUE(matmulTiled(pool, tall, thin)
                  .equals(matmulNaive(ser, tall, thin), 0.0f));
  Matrix shortA = denseF32(3, 5, 3);
  Matrix wide = denseF32(5, 1031, 4);
  EXPECT_TRUE(matmulTiled(pool, shortA, wide)
                  .equals(matmulNaive(ser, shortA, wide), 0.0f));
}

TEST(MatmulDispatch, SmallAndLargeAgreeWithNaive) {
  // rt::matmul routes small products to the naive kernel and large ones
  // to the tiled engine; either way the result must match the reference.
  SerialExecutor ser;
  Matrix smallA = denseF32(3, 4, 1), smallB = denseF32(4, 5, 2);
  EXPECT_TRUE(matmul(ser, smallA, smallB)
                  .equals(matmulNaive(ser, smallA, smallB), 0.0f));
  Matrix bigA = denseF32(97, 101, 3), bigB = denseF32(101, 89, 4);
  EXPECT_TRUE(
      matmul(ser, bigA, bigB).equals(matmulNaive(ser, bigA, bigB), 0.0f));
}

TEST(MatmulTiled, ShapeAndKindErrors) {
  SerialExecutor ser;
  Matrix a = Matrix::zeros(Elem::F32, {2, 3});
  Matrix bad = Matrix::zeros(Elem::F32, {2, 3});
  EXPECT_THROW(matmulTiled(ser, a, bad), std::invalid_argument);
  Matrix boolM = Matrix::zeros(Elem::Bool, {3, 3});
  EXPECT_THROW(matmulTiled(ser, boolM, boolM), std::invalid_argument);
  Matrix vec = Matrix::zeros(Elem::F32, {3});
  EXPECT_THROW(matmulNaive(ser, a, vec), std::invalid_argument);
}

TEST(MatmulTiled, CountersRecordTilesAndPacking) {
  metrics::enable(true);
  metrics::reset();
  SerialExecutor ser;
  Matrix a = denseF32(70, 40, 1);
  Matrix b = denseF32(40, 300, 2);
  (void)matmulTiled(ser, a, b);
  uint64_t tiles = 0, packed = 0;
  for (const auto& row : metrics::snapshot().counters) {
    if (row.name == "kernel.matmul.tiles") tiles = row.value;
    if (row.name == "kernel.matmul.packedBytes") packed = row.value;
  }
  metrics::reset();
  metrics::enable(false);
  // 70 rows -> 2 row-panels, 300 cols -> 2 col-panels, one KC panel.
  EXPECT_EQ(tiles, 4u);
  EXPECT_GT(packed, 0u);
}

} // namespace
} // namespace mmx::rt
