#include "runtime/conncomp.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mmx::rt {
namespace {

Matrix grid(int64_t h, int64_t w, const std::vector<uint8_t>& cells) {
  return Matrix::fromBool({h, w}, cells);
}

TEST(ConnComp, EmptyGridHasNoComponents) {
  int32_t n = -1;
  Matrix l = connectedComponents(grid(3, 3, {0, 0, 0, 0, 0, 0, 0, 0, 0}), &n);
  EXPECT_EQ(n, 0);
  for (int64_t i = 0; i < 9; ++i) EXPECT_EQ(l.i32()[i], 0);
}

TEST(ConnComp, SingleBlob) {
  int32_t n = 0;
  Matrix l = connectedComponents(grid(3, 3,
                                      {1, 1, 0,
                                       1, 1, 0,
                                       0, 0, 0}),
                                 &n);
  EXPECT_EQ(n, 1);
  EXPECT_EQ(l.i32()[0], 1);
  EXPECT_EQ(l.i32()[4], 1);
  EXPECT_EQ(l.i32()[8], 0);
}

TEST(ConnComp, DiagonalIsNotConnected) {
  int32_t n = 0;
  connectedComponents(grid(2, 2, {1, 0, 0, 1}), &n);
  EXPECT_EQ(n, 2); // 4-connectivity
}

TEST(ConnComp, UShapeMergesViaUnionFind) {
  // A 'U': left and right columns get different provisional labels, the
  // bottom row unites them — the classic two-pass regression case.
  int32_t n = 0;
  Matrix l = connectedComponents(grid(3, 3,
                                      {1, 0, 1,
                                       1, 0, 1,
                                       1, 1, 1}),
                                 &n);
  EXPECT_EQ(n, 1);
  std::set<int32_t> labels;
  for (int64_t i = 0; i < 9; ++i)
    if (l.i32()[i]) labels.insert(l.i32()[i]);
  EXPECT_EQ(labels, std::set<int32_t>{1});
}

TEST(ConnComp, MultipleComponentsGetDenseLabels) {
  int32_t n = 0;
  Matrix l = connectedComponents(grid(1, 7, {1, 0, 1, 0, 1, 0, 1}), &n);
  EXPECT_EQ(n, 4);
  EXPECT_EQ(l.i32()[0], 1);
  EXPECT_EQ(l.i32()[2], 2);
  EXPECT_EQ(l.i32()[4], 3);
  EXPECT_EQ(l.i32()[6], 4);
}

TEST(ConnComp, SpiralSingleComponent) {
  int32_t n = 0;
  connectedComponents(grid(5, 5,
                           {1, 1, 1, 1, 1,
                            0, 0, 0, 0, 1,
                            1, 1, 1, 0, 1,
                            1, 0, 0, 0, 1,
                            1, 1, 1, 1, 1}),
                      &n);
  EXPECT_EQ(n, 1);
}

TEST(ConnComp, LabelsPartitionForeground) {
  // Property: every true cell gets a positive label, every false cell 0.
  Matrix g = Matrix::zeros(Elem::Bool, {16, 16});
  for (int64_t i = 0; i < g.size(); ++i)
    g.boolean()[i] = static_cast<uint8_t>((i * 2654435761u >> 7) & 1);
  Matrix l = connectedComponents(g);
  for (int64_t i = 0; i < g.size(); ++i) {
    if (g.boolean()[i])
      EXPECT_GT(l.i32()[i], 0);
    else
      EXPECT_EQ(l.i32()[i], 0);
  }
  // Adjacent foreground cells share labels.
  for (int64_t i = 0; i < 16; ++i)
    for (int64_t j = 0; j + 1 < 16; ++j)
      if (g.boolean()[i * 16 + j] && g.boolean()[i * 16 + j + 1])
        EXPECT_EQ(l.i32()[i * 16 + j], l.i32()[i * 16 + j + 1]);
}

TEST(ConnComp, RejectsWrongInput) {
  EXPECT_THROW(connectedComponents(Matrix::zeros(Elem::F32, {2, 2})),
               std::invalid_argument);
  EXPECT_THROW(connectedComponents(Matrix::zeros(Elem::Bool, {2, 2, 2})),
               std::invalid_argument);
}

TEST(DetectEddies, FindsDepressionOfRightSize) {
  // 8x8 field, flat at 0 with a 2x2 pit at depth -1.
  Matrix ssh = Matrix::zeros(Elem::F32, {8, 8});
  for (int64_t i = 3; i <= 4; ++i)
    for (int64_t j = 3; j <= 4; ++j) ssh.f32()[i * 8 + j] = -1.f;
  Matrix labels = detectEddies2D(ssh, -2.f, 0.f, 0.5f, 2, 10);
  int64_t labeled = 0;
  for (int64_t k = 0; k < 64; ++k)
    if (labels.i32()[k]) ++labeled;
  EXPECT_EQ(labeled, 4);
  EXPECT_NE(labels.i32()[3 * 8 + 3], 0);
}

TEST(DetectEddies, SizeCriteriaFilterNoise) {
  // Single-cell pits (noise) are rejected by minSize=2.
  Matrix ssh = Matrix::zeros(Elem::F32, {6, 6});
  ssh.f32()[7] = -1.f; // lone pixel
  Matrix labels = detectEddies2D(ssh, -2.f, 0.f, 0.5f, 2, 10);
  for (int64_t k = 0; k < 36; ++k) EXPECT_EQ(labels.i32()[k], 0);
}

TEST(DetectEddies, BadArgsThrow) {
  Matrix ssh = Matrix::zeros(Elem::F32, {4, 4});
  EXPECT_THROW(detectEddies2D(ssh, 0, 1, 0.f, 1, 2), std::invalid_argument);
  EXPECT_THROW(detectEddies2D(Matrix::zeros(Elem::I32, {4, 4}), 0, 1, 1, 1, 2),
               std::invalid_argument);
}

} // namespace
} // namespace mmx::rt
