// Memory-subsystem tests (ISSUE 9): selection policy, size-class /
// alignment contracts, magazine/depot behavior under single- and
// cross-thread churn, arena deferral, trim-at-quiescence, and the
// rcAlloc liveness invariants on top of a caching backing store.
#include "runtime/memsys.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/matrix.hpp"
#include "runtime/refcount.hpp"

namespace mmx::rt {
namespace {

TEST(Memsys, NamesAndSelectionErrors) {
  EXPECT_EQ(allocatorNames(),
            (std::vector<std::string>{"system", "cache", "arena"}));
  for (const std::string& n : allocatorNames())
    EXPECT_EQ(allocatorSelectionError(n), "") << n;
  EXPECT_EQ(allocatorSelectionError("auto"), "");
  std::string err = allocatorSelectionError("bogus");
  EXPECT_NE(err.find("unknown allocator 'bogus'"), std::string::npos) << err;
  EXPECT_NE(err.find("system, cache, arena"), std::string::npos) << err;
}

TEST(Memsys, SelectRejectsUnknownName) {
  EXPECT_THROW(selectAllocator("quantum"), std::invalid_argument);
  // A failed selection must not clobber the active strategy.
  EXPECT_NO_THROW(activeAllocator());
}

TEST(Memsys, OverrideRestoresPreviousSelection) {
  AllocKind before = activeAllocator();
  {
    AllocatorOverride pin("arena");
    EXPECT_EQ(activeAllocator(), AllocKind::Arena);
    {
      AllocatorOverride inner("system");
      EXPECT_EQ(activeAllocator(), AllocKind::System);
    }
    EXPECT_EQ(activeAllocator(), AllocKind::Arena);
  }
  EXPECT_EQ(activeAllocator(), before);
}

TEST(Memsys, EnvDrivesAutoResolutionAndBadValueThrows) {
  ::setenv("MMX_ALLOC", "arena", 1);
  selectAllocator("auto"); // re-arm lazy resolution
  EXPECT_EQ(activeAllocator(), AllocKind::Arena);

  ::setenv("MMX_ALLOC", "auto", 1); // "auto" in the env counts as unset
  selectAllocator("auto");
  EXPECT_EQ(activeAllocator(), AllocKind::Cache);

  ::setenv("MMX_ALLOC", "bogus", 1);
  selectAllocator("auto");
  try {
    activeAllocator();
    FAIL() << "expected std::runtime_error for MMX_ALLOC=bogus";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("MMX_ALLOC: unknown allocator"),
              std::string::npos)
        << e.what();
  }
  ::unsetenv("MMX_ALLOC");
  selectAllocator("auto");
  EXPECT_EQ(activeAllocator(), AllocKind::Cache); // the auto default
}

TEST(Memsys, PayloadAlignedAcrossEveryClassAndStrategy) {
  for (const char* strategy : {"system", "cache", "arena"}) {
    AllocatorOverride pin(strategy);
    // One size per cache class (payload = class capacity minus the
    // header) plus odd sizes straddling the class boundaries.
    for (uint32_t cls = 0; cls < 24; ++cls) {
      size_t cap = size_t{16} << cls;
      for (size_t bytes : {cap - 16, cap - 15, cap / 2 + 1}) {
        if (bytes == 0 || bytes > (size_t{16} << 20)) continue;
        void* p = msAlloc(bytes);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 16, 0u)
            << strategy << " class " << cls << " bytes " << bytes;
        // Touch both ends: the block must really own `bytes`.
        static_cast<char*>(p)[0] = 1;
        static_cast<char*>(p)[bytes - 1] = 2;
        msFree(p);
      }
    }
  }
  msTrim();
}

TEST(Memsys, CacheReusesFreedBlockAndCountsHit) {
  AllocatorOverride pin("cache");
  void* p = msAlloc(100);
  std::memset(p, 0xab, 100);
  msFree(p);
  MsCacheStats before = msCacheStats();
  void* q = msAlloc(100); // same class, LIFO magazine: the same block
  EXPECT_EQ(q, p);
  MsCacheStats after = msCacheStats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses);
  msFree(q);
  msTrim();
}

TEST(Memsys, ClassBoundarySizesLandInDistinctClasses) {
  AllocatorOverride pin("cache");
  msTrim(); // start from empty magazines
  // total = bytes + 16; bytes = 48 → total 64 (class 2 exactly) while
  // bytes = 49 → total 65 (class 3). Freeing the first must not satisfy
  // the second from the magazine.
  void* small = msAlloc(48);
  msFree(small);
  MsCacheStats before = msCacheStats();
  void* big = msAlloc(49);
  MsCacheStats after = msCacheStats();
  EXPECT_NE(big, small);
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses + 1);
  msFree(big);
  msTrim();
}

TEST(Memsys, MagazineOverflowFlushesToDepot) {
  AllocatorOverride pin("cache");
  msTrim();
  // Class for 1 KiB blocks holds 256 magazines... magCap = 256KiB/1KiB =
  // 256 → clamped 64. Free 65+ blocks of one class to force a flush.
  constexpr size_t kBytes = 1024 - 16; // total exactly 1 KiB, one class
  constexpr int kBlocks = 70;
  std::vector<void*> blocks;
  for (int i = 0; i < kBlocks; ++i) blocks.push_back(msAlloc(kBytes));
  MsCacheStats before = msCacheStats();
  for (void* p : blocks) msFree(p);
  MsCacheStats after = msCacheStats();
  EXPECT_GE(after.flushes, before.flushes + 1);
  EXPECT_GT(after.cachedBytes, before.cachedBytes);
  msTrim();
}

TEST(Memsys, CrossThreadFreeMigratesThroughDepot) {
  AllocatorOverride pin("cache");
  msTrim();
  constexpr int kBlocks = 32;
  constexpr size_t kBytes = 496; // total 512, one class
  std::vector<void*> handoff(kBlocks);
  std::thread producer([&] {
    for (int i = 0; i < kBlocks; ++i) {
      handoff[i] = msAlloc(kBytes);
      std::memset(handoff[i], i & 0xff, kBytes);
    }
  });
  producer.join();
  std::thread consumer([&] {
    for (void* p : handoff) msFree(p); // frees land in the consumer's
  });                                  // magazine, not the producer's
  consumer.join();
  // The blocks are parked in caches; a trim hands every byte back.
  EXPECT_GT(msCacheStats().cachedBytes, 0u);
  msTrim();
  EXPECT_EQ(msCacheStats().cachedBytes, 0u);
}

TEST(Memsys, TortureParallelChurnWithCrossThreadHandoff) {
  AllocatorOverride pin("cache");
  constexpr int kThreads = 4, kIters = 1500;
  std::mutex mu;
  std::vector<std::pair<uint32_t*, uint32_t>> mailbox;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        size_t bytes = 16 + static_cast<size_t>((t * 37 + i * 61) % 3000);
        auto* p = static_cast<uint32_t*>(msAlloc(bytes));
        uint32_t tag = static_cast<uint32_t>(t * kIters + i);
        *p = tag;
        if (i % 3 == 0) {
          // Hand one third of the blocks to whichever thread drains the
          // mailbox next: cross-thread frees must route via the depot.
          std::lock_guard<std::mutex> lock(mu);
          mailbox.emplace_back(p, tag);
          if (mailbox.size() > 64) {
            auto [q, qtag] = mailbox.back();
            mailbox.pop_back();
            EXPECT_EQ(*q, qtag);
            msFree(q);
          }
        } else {
          EXPECT_EQ(*p, tag);
          msFree(p);
        }
      }
    });
  for (auto& t : ts) t.join();
  for (auto [p, tag] : mailbox) {
    EXPECT_EQ(*p, tag);
    msFree(p);
  }
  msTrim();
  EXPECT_EQ(msCacheStats().cachedBytes, 0u);
}

TEST(Memsys, ArenaDefersFreesUntilTrim) {
  AllocatorOverride pin("arena");
  char* p = static_cast<char*>(msAlloc(100));
  char* q = static_cast<char*>(msAlloc(100));
  EXPECT_NE(p, q); // bump allocation: no reuse before trim
  std::memset(p, 0x11, 100);
  std::memset(q, 0x22, 100);
  msFree(p); // deferred: q's bytes must survive p's free
  EXPECT_EQ(q[0], 0x22);
  EXPECT_EQ(q[99], 0x22);
  msFree(q);
  msTrim();
}

TEST(Memsys, HeaderRoutesFreeToOriginAfterSelectionChange) {
  void* cacheBlock;
  {
    AllocatorOverride pin("cache");
    cacheBlock = msAlloc(200);
  }
  {
    AllocatorOverride pin("system");
    // Freed under a different active strategy: the block's header routes
    // it back to the cache, not to ::operator delete.
    MsCacheStats before = msCacheStats();
    msFree(cacheBlock);
    EXPECT_GT(msCacheStats().cachedBytes, before.cachedBytes);
  }
  msTrim();
}

TEST(Memsys, HugeAllocationsBypassTheCache) {
  AllocatorOverride pin("cache");
  MsCacheStats before = msCacheStats();
  constexpr size_t kHuge = (size_t{128} << 20) + 1; // past the last class
  void* p = msAlloc(kHuge);
  ASSERT_NE(p, nullptr);
  static_cast<char*>(p)[kHuge - 1] = 7;
  msFree(p);
  MsCacheStats after = msCacheStats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.cachedBytes, before.cachedBytes);
}

TEST(Memsys, RcLivenessInvariantsHoldUnderEveryStrategy) {
  for (const char* strategy : {"system", "cache", "arena"}) {
    AllocatorOverride pin(strategy);
    int64_t blocks0 = rcLiveBlocks();
    uint64_t bytes0 = rcLiveBytes();
    {
      std::vector<Matrix> live;
      for (int i = 1; i <= 8; ++i)
        live.push_back(Matrix::zeros(Elem::F32, {i * 7, i * 5}));
      EXPECT_EQ(rcLiveBlocks(), blocks0 + 8) << strategy;
      EXPECT_GT(rcLiveBytes(), bytes0) << strategy;
    }
    // Caching keeps the memory parked but the blocks are dead: the
    // liveness accounting must return to its baseline exactly.
    EXPECT_EQ(rcLiveBlocks(), blocks0) << strategy;
    EXPECT_EQ(rcLiveBytes(), bytes0) << strategy;
  }
  msTrim();
}

TEST(Memsys, TrimIsIdempotentAndSafeWhileBlocksLive) {
  AllocatorOverride pin("cache");
  void* live = msAlloc(333);
  std::memset(live, 0x5a, 333);
  msTrim(); // must not touch live blocks
  EXPECT_EQ(static_cast<unsigned char*>(live)[0], 0x5au);
  EXPECT_EQ(static_cast<unsigned char*>(live)[332], 0x5au);
  msTrim(); // idempotent on an empty cache
  EXPECT_EQ(msCacheStats().cachedBytes, 0u);
  msFree(live);
  msTrim();
}

} // namespace
} // namespace mmx::rt
