#include "runtime/ssh_synth.hpp"

#include <gtest/gtest.h>

namespace mmx::rt {
namespace {

TEST(SshSynth, ShapeMatchesParams) {
  SshParams p;
  p.nlat = 10;
  p.nlon = 20;
  p.ntime = 30;
  Matrix m = synthesizeSsh(p);
  EXPECT_EQ(m.rank(), 3u);
  EXPECT_EQ(m.dim(0), 10);
  EXPECT_EQ(m.dim(1), 20);
  EXPECT_EQ(m.dim(2), 30);
  EXPECT_EQ(m.elem(), Elem::F32);
}

TEST(SshSynth, DeterministicForSameSeed) {
  SshParams p;
  p.nlat = 8;
  p.nlon = 8;
  p.ntime = 16;
  EXPECT_TRUE(synthesizeSsh(p).equals(synthesizeSsh(p)));
}

TEST(SshSynth, DifferentSeedsDiffer) {
  SshParams a, b;
  a.nlat = b.nlat = 8;
  a.nlon = b.nlon = 8;
  a.ntime = b.ntime = 16;
  b.seed = 777;
  EXPECT_FALSE(synthesizeSsh(a).equals(synthesizeSsh(b)));
}

TEST(SshSynth, EddyCentresAreDepressed) {
  SshParams p;
  p.nlat = 32;
  p.nlon = 32;
  p.ntime = 48;
  p.noiseAmp = 0.01f;
  Matrix m = synthesizeSsh(p);
  auto tracks = makeTracks(p);
  ASSERT_FALSE(tracks.empty());

  // At an active timestep, the eddy centre must be well below the field
  // mean (depth >= 0.8 vs base amplitude 0.3).
  const EddyTrack& e = tracks[0];
  int t = (e.t0 + e.t1) / 2;
  int64_t ci = static_cast<int64_t>(e.lat0 + e.vlat * (t - e.t0));
  int64_t cj = static_cast<int64_t>(e.lon0 + e.vlon * (t - e.t0));
  ASSERT_GE(ci, 0);
  ASSERT_LT(ci, p.nlat);
  float centre = m.f32()[(ci * p.nlon + cj) * p.ntime + t];
  EXPECT_LT(centre, -0.3f);
}

TEST(SshSynth, TroughSignatureExistsInTimeSeries) {
  // Fig. 7's shape: at a point an eddy crosses, the series must dip and
  // recover (a strict interior minimum well below its neighbourhood max).
  SshParams p;
  p.nlat = 32;
  p.nlon = 32;
  p.ntime = 64;
  p.noiseAmp = 0.01f;
  Matrix m = synthesizeSsh(p);
  auto tracks = makeTracks(p);
  const EddyTrack& e = tracks[0];
  int tmid = (e.t0 + e.t1) / 2;
  int64_t ci = static_cast<int64_t>(e.lat0 + e.vlat * (tmid - e.t0));
  int64_t cj = static_cast<int64_t>(e.lon0 + e.vlon * (tmid - e.t0));
  const float* series = m.f32() + (ci * p.nlon + cj) * p.ntime;
  float minv = series[0], maxv = series[0];
  for (int64_t t = 0; t < p.ntime; ++t) {
    minv = std::min(minv, series[t]);
    maxv = std::max(maxv, series[t]);
  }
  EXPECT_GT(maxv - minv, 0.6f) << "no trough signature at eddy crossing";
}

TEST(SshSynth, TracksStayMostlyInGrid) {
  SshParams p;
  auto tracks = makeTracks(p);
  EXPECT_EQ(static_cast<int>(tracks.size()), p.numEddies);
  for (const auto& e : tracks) {
    EXPECT_GE(e.lat0, 0.f);
    EXPECT_LT(e.lat0, static_cast<float>(p.nlat));
    EXPECT_GT(e.depth, 0.f);
    EXPECT_GT(e.radius, 0.f);
    EXPECT_LE(e.t1, p.ntime);
    EXPECT_LT(e.t0, e.t1);
  }
}

TEST(SshSynth, GroundTruthMarksEddyCentres) {
  SshParams p;
  p.nlat = 32;
  p.nlon = 32;
  p.ntime = 48;
  Matrix truth = eddyGroundTruth(p);
  auto tracks = makeTracks(p);
  const EddyTrack& e = tracks[0];
  int t = (e.t0 + e.t1) / 2;
  int64_t ci = static_cast<int64_t>(e.lat0 + e.vlat * (t - e.t0));
  int64_t cj = static_cast<int64_t>(e.lon0 + e.vlon * (t - e.t0));
  EXPECT_TRUE(truth.boolean()[(ci * p.nlon + cj) * p.ntime + t]);
  // And plenty of the ocean is quiet.
  int64_t marked = 0;
  for (int64_t i = 0; i < truth.size(); ++i) marked += truth.boolean()[i];
  EXPECT_LT(marked, truth.size() / 4);
}

} // namespace
} // namespace mmx::rt
