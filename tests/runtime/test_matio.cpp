#include "runtime/matio.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace mmx::rt {
namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const char* name)
      : path(std::string(::testing::TempDir()) + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(MatIO, RoundTripF32) {
  TempFile f("roundtrip_f32.mmx");
  Matrix m = Matrix::fromF32({2, 3}, {1.5f, -2.f, 3.f, 0.f, 1e6f, -0.25f});
  writeMatrixFile(f.path, m);
  Matrix r = readMatrixFile(f.path);
  EXPECT_TRUE(m.equals(r));
}

TEST(MatIO, RoundTripI32AndBool) {
  TempFile fi("roundtrip_i32.mmx");
  Matrix mi = Matrix::fromI32({4}, {-1, 0, 7, 1 << 30});
  writeMatrixFile(fi.path, mi);
  EXPECT_TRUE(mi.equals(readMatrixFile(fi.path)));

  TempFile fb("roundtrip_bool.mmx");
  Matrix mb = Matrix::fromBool({2, 2}, {1, 0, 0, 1});
  writeMatrixFile(fb.path, mb);
  EXPECT_TRUE(mb.equals(readMatrixFile(fb.path)));
}

TEST(MatIO, RoundTripRank3) {
  TempFile f("roundtrip_r3.mmx");
  Matrix m = Matrix::zeros(Elem::F32, {3, 4, 5});
  for (int64_t i = 0; i < m.size(); ++i) m.f32()[i] = static_cast<float>(i);
  writeMatrixFile(f.path, m);
  EXPECT_TRUE(m.equals(readMatrixFile(f.path)));
}

TEST(MatIO, MissingFileThrows) {
  EXPECT_THROW(readMatrixFile("/nonexistent/nowhere.mmx"),
               std::runtime_error);
}

TEST(MatIO, BadMagicThrows) {
  TempFile f("badmagic.mmx");
  std::ofstream(f.path, std::ios::binary) << "NOPE data here";
  EXPECT_THROW(readMatrixFile(f.path), std::runtime_error);
}

TEST(MatIO, TruncatedDataThrows) {
  TempFile f("trunc.mmx");
  Matrix m = Matrix::zeros(Elem::F32, {100});
  writeMatrixFile(f.path, m);
  // Chop the file short.
  std::ifstream in(f.path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(f.path, std::ios::binary | std::ios::trunc)
      << bytes.substr(0, bytes.size() / 2);
  EXPECT_THROW(readMatrixFile(f.path), std::runtime_error);
}

TEST(MatIO, NullMatrixWriteThrows) {
  EXPECT_THROW(writeMatrixFile("/tmp/never.mmx", Matrix()),
               std::runtime_error);
}

} // namespace
} // namespace mmx::rt
