#include "runtime/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "support/metrics.hpp"

namespace mmx::rt {
namespace {

/// Shared checks for any Executor: full coverage, no overlap, correct sums.
void checkCoverage(Executor& ex, int64_t n) {
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  ex.run(0, n, [&](int64_t lo, int64_t hi, unsigned) {
    for (int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (int64_t i = 0; i < n; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "iteration " << i;
}

TEST(SerialExecutor, CoversRangeOnce) {
  SerialExecutor ex;
  checkCoverage(ex, 1000);
  EXPECT_EQ(ex.threads(), 1u);
}

TEST(ForkJoinPool, CoversRangeOnceManyThreads) {
  for (unsigned nt : {1u, 2u, 3u, 4u, 8u}) {
    ForkJoinPool pool(nt);
    checkCoverage(pool, 1013); // prime: uneven chunking
  }
}

TEST(ForkJoinPool, RepeatedRegionsReuseWorkers) {
  ForkJoinPool pool(4);
  std::atomic<int64_t> sum{0};
  for (int r = 0; r < 200; ++r)
    pool.run(0, 100, [&](int64_t lo, int64_t hi, unsigned) {
      int64_t s = 0;
      for (int64_t i = lo; i < hi; ++i) s += i;
      sum.fetch_add(s);
    });
  EXPECT_EQ(sum.load(), 200 * (99 * 100 / 2));
  EXPECT_EQ(pool.generation(), 200u); // one release per region
}

TEST(ForkJoinPool, EmptyRangeIsNoop) {
  ForkJoinPool pool(4);
  bool called = false;
  pool.run(5, 5, [&](int64_t, int64_t, unsigned) { called = true; });
  EXPECT_FALSE(called);
  pool.run(5, 3, [&](int64_t, int64_t, unsigned) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ForkJoinPool, RangeSmallerThanThreadCount) {
  ForkJoinPool pool(8);
  std::atomic<int> count{0};
  pool.run(0, 3, [&](int64_t lo, int64_t hi, unsigned) {
    count.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(count.load(), 3);
}

TEST(ForkJoinPool, TidsAreDistinctAndInRange) {
  ForkJoinPool pool(4);
  std::vector<std::atomic<int>> used(4);
  for (auto& u : used) u.store(0);
  pool.run(0, 4000, [&](int64_t, int64_t, unsigned tid) {
    ASSERT_LT(tid, 4u);
    used[tid].fetch_add(1);
  });
  // With 4000 iterations every thread gets a non-empty chunk.
  for (int t = 0; t < 4; ++t) EXPECT_EQ(used[t].load(), 1) << t;
}

TEST(ForkJoinPool, MainThreadParticipates) {
  ForkJoinPool pool(2);
  std::thread::id mainId = std::this_thread::get_id();
  std::atomic<bool> mainRan{false};
  pool.run(0, 2, [&](int64_t, int64_t, unsigned tid) {
    if (tid == 0) {
      EXPECT_EQ(std::this_thread::get_id(), mainId);
      mainRan.store(true);
    }
  });
  EXPECT_TRUE(mainRan.load());
}

TEST(ForkJoinPool, NonZeroLowerBound) {
  ForkJoinPool pool(3);
  std::atomic<int64_t> sum{0};
  pool.run(100, 200, [&](int64_t lo, int64_t hi, unsigned) {
    int64_t s = 0;
    for (int64_t i = lo; i < hi; ++i) s += i;
    sum.fetch_add(s);
  });
  int64_t expect = 0;
  for (int64_t i = 100; i < 200; ++i) expect += i;
  EXPECT_EQ(sum.load(), expect);
}

TEST(ForkJoinPool, StressManySmallRegions) {
  // The enhanced fork-join point: thousands of regions must be cheap and
  // correct (no lost generations, no deadlock).
  ForkJoinPool pool(4);
  std::atomic<int64_t> total{0};
  for (int r = 0; r < 2000; ++r)
    pool.run(0, 8, [&](int64_t lo, int64_t hi, unsigned) {
      total.fetch_add(hi - lo);
    });
  EXPECT_EQ(total.load(), 2000 * 8);
}

TEST(ForkJoinPool, GrainInlinesSmallRanges) {
  // A range below the grain runs on the calling thread as tid 0 without
  // waking the workers: the fork generation counter must not advance.
  ForkJoinPool pool(4);
  std::thread::id mainId = std::this_thread::get_id();
  uint64_t genBefore = pool.generation();
  int calls = 0;
  int64_t covered = 0;
  pool.run(0, 7, /*minGrain=*/16, [&](int64_t lo, int64_t hi, unsigned tid) {
    ++calls;
    covered += hi - lo;
    EXPECT_EQ(tid, 0u);
    EXPECT_EQ(std::this_thread::get_id(), mainId);
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(covered, 7);
  EXPECT_EQ(pool.generation(), genBefore);
}

TEST(ForkJoinPool, GrainStillForksLargeRanges) {
  ForkJoinPool pool(4);
  uint64_t genBefore = pool.generation();
  std::atomic<int64_t> covered{0};
  pool.run(0, 64, /*minGrain=*/16, [&](int64_t lo, int64_t hi, unsigned) {
    covered.fetch_add(hi - lo);
  });
  EXPECT_EQ(covered.load(), 64);
  EXPECT_EQ(pool.generation(), genBefore + 1); // a real fork happened
}

TEST(Executor, GrainCountsInlinedDispatches) {
  metrics::enable(true);
  metrics::reset();
  SerialExecutor ser;
  ser.run(0, 3, /*minGrain=*/8, [](int64_t, int64_t, unsigned) {});
  ser.run(0, 30, /*minGrain=*/8, [](int64_t, int64_t, unsigned) {});
  uint64_t inlined = 0;
  for (const auto& row : metrics::snapshot().counters)
    if (row.name == "pool.inlinedDispatches") inlined = row.value;
  metrics::reset();
  metrics::enable(false);
  EXPECT_EQ(inlined, 1u); // only the below-grain range was inlined
}

TEST(NaiveForkJoin, CoversRangeOnce) {
  NaiveForkJoin ex(4);
  checkCoverage(ex, 257);
}

TEST(NaiveForkJoin, MatchesPoolResults) {
  auto work = [](Executor& ex) {
    std::vector<int64_t> out(500, 0);
    ex.run(0, 500, [&](int64_t lo, int64_t hi, unsigned) {
      for (int64_t i = lo; i < hi; ++i) out[i] = i * i;
    });
    return out;
  };
  ForkJoinPool pool(3);
  NaiveForkJoin naive(3);
  SerialExecutor serial;
  auto a = work(pool), b = work(naive), c = work(serial);
  EXPECT_EQ(a, c);
  EXPECT_EQ(b, c);
}

TEST(ForkJoinPool, ZeroThreadsClampedToOne) {
  ForkJoinPool pool(0);
  EXPECT_EQ(pool.threads(), 1u);
  checkCoverage(pool, 10);
}

TEST(ExecutorFactory, MakesEachKindWithMatchingName) {
  auto serial = makeExecutor(ExecutorKind::Serial, 1);
  EXPECT_EQ(serial->name(), "serial");
  EXPECT_EQ(serial->threads(), 1u);
  checkCoverage(*serial, 100);

  auto fj = makeExecutor(ExecutorKind::ForkJoin, 3);
  EXPECT_EQ(fj->name(), "forkjoin");
  EXPECT_EQ(fj->threads(), 3u);
  checkCoverage(*fj, 1013);

  auto naive = makeExecutor(ExecutorKind::Naive, 2);
  EXPECT_EQ(naive->name(), "naive");
  EXPECT_EQ(naive->threads(), 2u);
  checkCoverage(*naive, 100);
}

TEST(ExecutorFactory, KindRoundTripsThroughStrings) {
  for (ExecutorKind k :
       {ExecutorKind::Serial, ExecutorKind::ForkJoin, ExecutorKind::Naive}) {
    auto parsed = executorKindFromString(toString(k));
    ASSERT_TRUE(parsed.has_value()) << toString(k);
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(executorKindFromString("quantum").has_value());
  EXPECT_FALSE(executorKindFromString("").has_value());
}

TEST(ExecutorFactory, NamesMatchConcreteClasses) {
  EXPECT_EQ(SerialExecutor().name(), "serial");
  EXPECT_EQ(ForkJoinPool(2).name(), "forkjoin");
  EXPECT_EQ(NaiveForkJoin(2).name(), "naive");
}

} // namespace
} // namespace mmx::rt
