#include "runtime/matrix.hpp"

#include <gtest/gtest.h>

#include "runtime/refcount.hpp"

namespace mmx::rt {
namespace {

TEST(Matrix, ZerosShapeAndContents) {
  Matrix m = Matrix::zeros(Elem::F32, {3, 4});
  EXPECT_EQ(m.rank(), 2u);
  EXPECT_EQ(m.dim(0), 3);
  EXPECT_EQ(m.dim(1), 4);
  EXPECT_EQ(m.size(), 12);
  for (int64_t i = 0; i < 12; ++i) EXPECT_EQ(m.f32()[i], 0.f);
}

TEST(Matrix, HandleCopySharesBuffer) {
  Matrix a = Matrix::zeros(Elem::I32, {2, 2});
  Matrix b = a; // O(1) retain, as the refcount extension specifies
  EXPECT_TRUE(a.sharesBufferWith(b));
  EXPECT_EQ(a.useCount(), 2);
  b.i32()[0] = 9;
  EXPECT_EQ(a.i32()[0], 9); // shared storage
}

TEST(Matrix, CloneIsDeep) {
  Matrix a = Matrix::fromF32({2, 2}, {1, 2, 3, 4});
  Matrix b = a.clone();
  EXPECT_FALSE(a.sharesBufferWith(b));
  b.f32()[0] = 99.f;
  EXPECT_EQ(a.f32()[0], 1.f);
  EXPECT_TRUE(a.equals(a.clone()));
}

TEST(Matrix, BuffersAreFreedWhenLastHandleDies) {
  int64_t before = rcLiveBlocks();
  {
    Matrix a = Matrix::zeros(Elem::F32, {16, 16});
    Matrix b = a;
    Matrix c = b.clone();
    EXPECT_EQ(rcLiveBlocks(), before + 2);
  }
  EXPECT_EQ(rcLiveBlocks(), before);
}

TEST(Matrix, OffsetOfIsRowMajor) {
  Matrix m = Matrix::zeros(Elem::F32, {3, 4, 5});
  int64_t idx[3] = {1, 2, 3};
  EXPECT_EQ(m.offsetOf(idx), 1 * 4 * 5 + 2 * 5 + 3);
}

TEST(Matrix, DataIs16ByteAligned) {
  Matrix m = Matrix::zeros(Elem::F32, {7});
  EXPECT_EQ(reinterpret_cast<uintptr_t>(m.f32()) % 16, 0u);
}

TEST(Matrix, EqualsDiscriminatesKindRankShapeContents) {
  Matrix f = Matrix::fromF32({2}, {1, 2});
  Matrix i = Matrix::fromI32({2}, {1, 2});
  EXPECT_FALSE(f.equals(i)); // kind
  Matrix f2 = Matrix::fromF32({2, 1}, {1, 2});
  EXPECT_FALSE(f.equals(f2)); // rank
  Matrix f3 = Matrix::fromF32({2}, {1, 3});
  EXPECT_FALSE(f.equals(f3)); // contents
  EXPECT_TRUE(f.equals(Matrix::fromF32({2}, {1, 2})));
}

TEST(Matrix, EqualsWithTolerance) {
  Matrix a = Matrix::fromF32({2}, {1.0f, 2.0f});
  Matrix b = Matrix::fromF32({2}, {1.0001f, 2.0f});
  EXPECT_FALSE(a.equals(b));
  EXPECT_TRUE(a.equals(b, 1e-3f));
}

TEST(Matrix, BoolMatrixNormalizesTruthiness) {
  Matrix a = Matrix::fromBool({2}, {1, 0});
  Matrix b = Matrix::fromBool({2}, {7, 0}); // any nonzero is true
  EXPECT_TRUE(a.equals(b));
}

TEST(Matrix, ZeroSizedDimensionAllowed) {
  Matrix m = Matrix::zeros(Elem::F32, {0, 5});
  EXPECT_EQ(m.size(), 0);
}

TEST(Matrix, InvalidConstructionThrows) {
  EXPECT_THROW(Matrix::zeros(Elem::F32, {}), std::invalid_argument);
  EXPECT_THROW(Matrix::zeros(Elem::F32, {1, 2, 3, 4, 5, 6, 7, 8, 9}),
               std::invalid_argument);
  EXPECT_THROW(Matrix::zeros(Elem::F32, {-1}), std::invalid_argument);
  EXPECT_THROW(Matrix::fromF32({2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Matrix, ShapeString) {
  Matrix m = Matrix::zeros(Elem::F32, {721, 1440, 954});
  EXPECT_EQ(m.shapeString(), "721x1440x954 float");
  EXPECT_EQ(Matrix().shapeString(), "<null>");
}

TEST(Matrix, NullHandleBehaviour) {
  Matrix m;
  EXPECT_TRUE(m.null());
  EXPECT_TRUE(m.equals(Matrix()));
  EXPECT_FALSE(m.equals(Matrix::zeros(Elem::F32, {1})));
}

} // namespace
} // namespace mmx::rt
