#include "runtime/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mmx::rt {
namespace {

Matrix iotaF32(const std::vector<int64_t>& dims, float scale = 1.f) {
  Matrix m = Matrix::zeros(Elem::F32, dims);
  for (int64_t i = 0; i < m.size(); ++i)
    m.f32()[i] = scale * static_cast<float>((i % 37) - 18);
  return m;
}

Matrix iotaI32(const std::vector<int64_t>& dims) {
  Matrix m = Matrix::zeros(Elem::I32, dims);
  for (int64_t i = 0; i < m.size(); ++i)
    m.i32()[i] = static_cast<int32_t>((i * 7) % 23) - 11;
  return m;
}

// ---- property sweep: scalar / SIMD / parallel must agree --------------

struct EwCase {
  BinOp op;
  const char* name;
};

class EwBinaryP : public ::testing::TestWithParam<EwCase> {};

TEST_P(EwBinaryP, ScalarSimdParallelAgreeF32) {
  BinOp op = GetParam().op;
  Matrix a = iotaF32({7, 13});
  Matrix b = iotaF32({7, 13}, 0.5f);
  // Avoid division by zero for Div/Mod.
  for (int64_t i = 0; i < b.size(); ++i)
    if (std::fabs(b.f32()[i]) < 0.25f) b.f32()[i] = 1.f;

  SerialExecutor ser;
  ForkJoinPool pool(4);
  Matrix r1, r2, r3, r4;
  ewBinary(ser, op, a, b, r1, /*simd=*/false);
  ewBinary(ser, op, a, b, r2, /*simd=*/true);
  ewBinary(pool, op, a, b, r3, /*simd=*/false);
  ewBinary(pool, op, a, b, r4, /*simd=*/true);
  EXPECT_TRUE(r1.equals(r2, 1e-5f)) << GetParam().name;
  EXPECT_TRUE(r1.equals(r3, 0.f)) << GetParam().name;
  EXPECT_TRUE(r1.equals(r4, 1e-5f)) << GetParam().name;
}

TEST_P(EwBinaryP, ScalarBroadcastAgreesF32) {
  BinOp op = GetParam().op;
  Matrix a = iotaF32({91});
  SerialExecutor ser;
  ForkJoinPool pool(3);
  Matrix r1, r2;
  ewBinaryScalarF(ser, op, a, 3.0f, r1, false);
  ewBinaryScalarF(pool, op, a, 3.0f, r2, true);
  EXPECT_TRUE(r1.equals(r2, 1e-5f)) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, EwBinaryP,
    ::testing::Values(EwCase{BinOp::Add, "add"}, EwCase{BinOp::Sub, "sub"},
                      EwCase{BinOp::Mul, "mul"}, EwCase{BinOp::Div, "div"},
                      EwCase{BinOp::Mod, "mod"}, EwCase{BinOp::Min, "min"},
                      EwCase{BinOp::Max, "max"}),
    [](const auto& info) { return info.param.name; });

TEST(Kernels, EwBinaryExactValues) {
  Matrix a = Matrix::fromF32({4}, {1, 2, 3, 4});
  Matrix b = Matrix::fromF32({4}, {10, 20, 30, 40});
  SerialExecutor ex;
  Matrix out;
  ewBinary(ex, BinOp::Add, a, b, out, true);
  EXPECT_TRUE(out.equals(Matrix::fromF32({4}, {11, 22, 33, 44})));
  ewBinary(ex, BinOp::Mul, a, b, out, true);
  EXPECT_TRUE(out.equals(Matrix::fromF32({4}, {10, 40, 90, 160})));
}

TEST(Kernels, EwBinaryI32SimdAgreesWithScalar) {
  Matrix a = iotaI32({129}); // odd size: exercises the scalar tail
  Matrix b = iotaI32({129});
  SerialExecutor ex;
  Matrix r1, r2;
  for (BinOp op : {BinOp::Add, BinOp::Sub, BinOp::Mul}) {
    ewBinary(ex, op, a, b, r1, false);
    ewBinary(ex, op, a, b, r2, true);
    EXPECT_TRUE(r1.equals(r2));
  }
}

TEST(Kernels, ShapeMismatchThrows) {
  Matrix a = Matrix::zeros(Elem::F32, {2, 3});
  Matrix b = Matrix::zeros(Elem::F32, {3, 2});
  SerialExecutor ex;
  Matrix out;
  EXPECT_THROW(ewBinary(ex, BinOp::Add, a, b, out, false),
               std::invalid_argument);
  Matrix c = Matrix::zeros(Elem::I32, {2, 3});
  EXPECT_THROW(ewBinary(ex, BinOp::Add, a, c, out, false),
               std::invalid_argument);
}

TEST(Kernels, BoolArithmeticRejected) {
  Matrix a = Matrix::zeros(Elem::Bool, {4});
  SerialExecutor ex;
  Matrix out;
  EXPECT_THROW(ewBinary(ex, BinOp::Add, a, a, out, false),
               std::invalid_argument);
}

TEST(Kernels, CompareProducesBool) {
  Matrix a = Matrix::fromF32({4}, {1, 5, 3, 7});
  Matrix b = Matrix::fromF32({4}, {2, 4, 3, 9});
  SerialExecutor ex;
  Matrix out;
  ewCompare(ex, CmpOp::Lt, a, b, out);
  EXPECT_EQ(out.elem(), Elem::Bool);
  EXPECT_TRUE(out.equals(Matrix::fromBool({4}, {1, 0, 0, 1})));
  ewCompare(ex, CmpOp::Eq, a, b, out);
  EXPECT_TRUE(out.equals(Matrix::fromBool({4}, {0, 0, 1, 0})));
}

TEST(Kernels, CompareScalarBroadcast) {
  // The `ssh < i` idiom of Fig. 4.
  Matrix ssh = Matrix::fromF32({5}, {-3, -1, 0, 1, 3});
  SerialExecutor ex;
  Matrix out;
  ewCompareScalarF(ex, CmpOp::Lt, ssh, 0.f, out);
  EXPECT_TRUE(out.equals(Matrix::fromBool({5}, {1, 1, 0, 0, 0})));
  Matrix v = Matrix::fromI32({4}, {1, 2, 3, 4});
  ewCompareScalarI(ex, CmpOp::Ge, v, 3, out);
  EXPECT_TRUE(out.equals(Matrix::fromBool({4}, {0, 0, 1, 1})));
}

TEST(Kernels, MatmulSmallKnown) {
  Matrix a = Matrix::fromF32({2, 3}, {1, 2, 3, 4, 5, 6});
  Matrix b = Matrix::fromF32({3, 2}, {7, 8, 9, 10, 11, 12});
  SerialExecutor ex;
  Matrix c = matmul(ex, a, b);
  EXPECT_TRUE(c.equals(Matrix::fromF32({2, 2}, {58, 64, 139, 154})));
}

TEST(Kernels, MatmulI32) {
  Matrix a = Matrix::fromI32({2, 2}, {1, 2, 3, 4});
  Matrix b = Matrix::fromI32({2, 2}, {5, 6, 7, 8});
  SerialExecutor ex;
  EXPECT_TRUE(matmul(ex, a, b).equals(Matrix::fromI32({2, 2}, {19, 22, 43, 50})));
}

TEST(Kernels, MatmulParallelMatchesSerial) {
  Matrix a = iotaF32({17, 23});
  Matrix b = iotaF32({23, 11});
  SerialExecutor ser;
  ForkJoinPool pool(4);
  EXPECT_TRUE(matmul(ser, a, b).equals(matmul(pool, a, b), 1e-4f));
}

TEST(Kernels, MatmulShapeErrors) {
  SerialExecutor ex;
  Matrix a = Matrix::zeros(Elem::F32, {2, 3});
  Matrix b = Matrix::zeros(Elem::F32, {2, 3});
  EXPECT_THROW(matmul(ex, a, b), std::invalid_argument);
  Matrix v = Matrix::zeros(Elem::F32, {3});
  EXPECT_THROW(matmul(ex, a, v), std::invalid_argument);
}

TEST(Kernels, ReduceSumMatchesLoop) {
  Matrix a = iotaF32({1001});
  double expect = 0;
  for (int64_t i = 0; i < a.size(); ++i) expect += a.f32()[i];
  SerialExecutor ser;
  ForkJoinPool pool(4);
  EXPECT_NEAR(reduceF32(ser, BinOp::Add, 0.f, a, false), expect, 1e-3);
  EXPECT_NEAR(reduceF32(ser, BinOp::Add, 0.f, a, true), expect, 1e-3);
  EXPECT_NEAR(reduceF32(pool, BinOp::Add, 0.f, a, true), expect, 1e-3);
}

TEST(Kernels, ReduceBaseValueAppliedExactlyOnce) {
  Matrix a = Matrix::fromF32({4}, {1, 1, 1, 1});
  ForkJoinPool pool(4);
  // fold(+, 100.0, ...) over four ones = 104, regardless of thread count.
  EXPECT_FLOAT_EQ(reduceF32(pool, BinOp::Add, 100.f, a, false), 104.f);
}

TEST(Kernels, ReduceMinMax) {
  Matrix a = Matrix::fromF32({5}, {3, -7, 2, 9, 0});
  ForkJoinPool pool(3);
  EXPECT_FLOAT_EQ(reduceF32(pool, BinOp::Min, 100.f, a, false), -7.f);
  EXPECT_FLOAT_EQ(reduceF32(pool, BinOp::Max, -100.f, a, false), 9.f);
  Matrix b = Matrix::fromI32({4}, {5, -2, 8, 1});
  EXPECT_EQ(reduceI32(pool, BinOp::Min, 99, b), -2);
  EXPECT_EQ(reduceI32(pool, BinOp::Add, 10, b), 22);
}

TEST(Kernels, ReduceRejectsNonAssociativeOps) {
  Matrix a = Matrix::fromF32({2}, {1, 2});
  SerialExecutor ex;
  EXPECT_THROW(reduceF32(ex, BinOp::Sub, 0.f, a, false),
               std::invalid_argument);
  EXPECT_THROW(reduceF32(ex, BinOp::Div, 0.f, a, false),
               std::invalid_argument);
}

TEST(Kernels, SumInnermost3DMatchesNaive) {
  Matrix a = iotaF32({5, 6, 7});
  SerialExecutor ser;
  ForkJoinPool pool(4);
  Matrix fused, fusedSimd, fusedPar;
  sumInnermost3D(ser, a, fused, false);
  sumInnermost3D(ser, a, fusedSimd, true);
  sumInnermost3D(pool, a, fusedPar, true);

  Matrix naive = Matrix::zeros(Elem::F32, {5, 6});
  for (int64_t i = 0; i < 5; ++i)
    for (int64_t j = 0; j < 6; ++j) {
      float s = 0;
      for (int64_t k = 0; k < 7; ++k) s += a.f32()[(i * 6 + j) * 7 + k];
      naive.f32()[i * 6 + j] = s;
    }
  EXPECT_TRUE(fused.equals(naive, 1e-4f));
  EXPECT_TRUE(fusedSimd.equals(naive, 1e-4f));
  EXPECT_TRUE(fusedPar.equals(naive, 1e-4f));
}

} // namespace
} // namespace mmx::rt
