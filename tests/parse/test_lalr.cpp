#include "parse/lalr.hpp"

#include <gtest/gtest.h>

#include "exprlang.hpp"

namespace mmx::parse {
namespace {

using grammar::GSym;
using test::ExprLang;

TEST(Grammar, FirstSetsOfExprGrammar) {
  ExprLang l;
  // FIRST(E) = FIRST(T) = FIRST(F) = { '(', id }
  for (auto nt : {l.E, l.T, l.F}) {
    EXPECT_TRUE(l.g.first(nt).test(l.tId));
    EXPECT_TRUE(l.g.first(nt).test(l.tLp));
    EXPECT_FALSE(l.g.first(nt).test(l.tPlus));
    EXPECT_FALSE(l.g.nullable(nt));
  }
}

TEST(Grammar, NullableDetection) {
  grammar::Grammar g;
  auto a = g.addTerminal({"a", "a", true, 0, false});
  auto A = g.addNonterminal("A");
  auto B = g.addNonterminal("B");
  g.addProduction(A, {GSym::nonterm(B), GSym::term(a)}, "p1", "host");
  g.addProduction(B, {}, "p2", "host");
  g.addProduction(B, {GSym::term(a)}, "p3", "host");
  g.setStart(A);
  g.computeFirstSets();
  EXPECT_TRUE(g.nullable(B));
  EXPECT_FALSE(g.nullable(A));
  EXPECT_TRUE(g.first(A).test(a)); // through nullable B
}

TEST(Lalr, ExprGrammarIsConflictFree) {
  ExprLang l;
  LalrTables t = LalrTables::build(l.g);
  EXPECT_TRUE(t.conflicts().empty());
  EXPECT_GT(t.stateCount(), 5u);
}

TEST(Lalr, ValidTerminalsMatchClassicTable) {
  ExprLang l;
  LalrTables t = LalrTables::build(l.g);
  // State 0 can start an expression: '(' and id only.
  const auto& v = t.validTerminals(0);
  EXPECT_TRUE(v.test(l.tId));
  EXPECT_TRUE(v.test(l.tLp));
  EXPECT_FALSE(v.test(l.tPlus));
  EXPECT_FALSE(v.test(l.tRp));
  EXPECT_FALSE(t.eofValid(0));
}

TEST(Lalr, ShiftReduceConflictDetectedAndShiftWins) {
  // Dangling-else skeleton: S -> i S | i S e S | x
  grammar::Grammar g;
  auto ti = g.addTerminal({"i", "i", true, 0, false});
  auto te = g.addTerminal({"e", "e", true, 0, false});
  auto tx = g.addTerminal({"x", "x", true, 0, false});
  auto S = g.addNonterminal("S");
  g.addProduction(S, {GSym::term(ti), GSym::nonterm(S)}, "s_if", "host");
  g.addProduction(S, {GSym::term(ti), GSym::nonterm(S), GSym::term(te),
                      GSym::nonterm(S)},
                  "s_ifelse", "host");
  g.addProduction(S, {GSym::term(tx)}, "s_x", "host");
  g.setStart(S);
  g.computeFirstSets();

  LalrTables t = LalrTables::build(g);
  ASSERT_FALSE(t.conflicts().empty());
  const Conflict& c = t.conflicts()[0];
  EXPECT_EQ(c.kind, Conflict::Kind::ShiftReduce);
  EXPECT_EQ(c.kept.kind, Action::Kind::Shift);
  EXPECT_EQ(c.terminal, te);
}

TEST(Lalr, ReduceReduceConflictDetected) {
  // S -> A | B ; A -> a ; B -> a
  grammar::Grammar g;
  auto ta = g.addTerminal({"a", "a", true, 0, false});
  auto S = g.addNonterminal("S");
  auto A = g.addNonterminal("A");
  auto B = g.addNonterminal("B");
  g.addProduction(S, {GSym::nonterm(A)}, "s_a", "host");
  g.addProduction(S, {GSym::nonterm(B)}, "s_b", "ext1");
  g.addProduction(A, {GSym::term(ta)}, "a_a", "host");
  g.addProduction(B, {GSym::term(ta)}, "b_a", "ext1");
  g.setStart(S);
  g.computeFirstSets();

  LalrTables t = LalrTables::build(g);
  ASSERT_FALSE(t.conflicts().empty());
  const Conflict& c = t.conflicts()[0];
  EXPECT_EQ(c.kind, Conflict::Kind::ReduceReduce);
  // Extension attribution feeds the modular determinism analysis.
  EXPECT_EQ(c.extensionA, "host");
  EXPECT_EQ(c.extensionB, "ext1");
}

TEST(Lalr, LalrNotSlr) {
  // Grammar that is LALR(1) but not SLR(1) (classic):
  //   S -> A a | b A c | d c | b d a ;  A -> d
  grammar::Grammar g;
  auto ta = g.addTerminal({"a", "a", true, 0, false});
  auto tb = g.addTerminal({"b", "b", true, 0, false});
  auto tc = g.addTerminal({"c", "c", true, 0, false});
  auto td = g.addTerminal({"d", "d", true, 0, false});
  auto S = g.addNonterminal("S");
  auto A = g.addNonterminal("A");
  g.addProduction(S, {GSym::nonterm(A), GSym::term(ta)}, "s1", "host");
  g.addProduction(S, {GSym::term(tb), GSym::nonterm(A), GSym::term(tc)}, "s2",
                  "host");
  g.addProduction(S, {GSym::term(td), GSym::term(tc)}, "s3", "host");
  g.addProduction(S, {GSym::term(tb), GSym::term(td), GSym::term(ta)}, "s4",
                  "host");
  g.addProduction(A, {GSym::term(td)}, "a1", "host");
  g.setStart(S);
  g.computeFirstSets();

  // SLR would conflict on 'a'/'c' after d; exact LALR(1) lookaheads do not.
  LalrTables t = LalrTables::build(g);
  EXPECT_TRUE(t.conflicts().empty());
}

TEST(Lalr, EofOnlyAcceptedAtEnd) {
  ExprLang l;
  LalrTables t = LalrTables::build(l.g);
  size_t statesAcceptingEof = 0;
  for (uint32_t s = 0; s < t.stateCount(); ++s)
    if (t.eofValid(s)) ++statesAcceptingEof;
  EXPECT_GT(statesAcceptingEof, 0u);
  EXPECT_LT(statesAcceptingEof, t.stateCount());
}

TEST(Lalr, ExpectedTerminalsRendersNames) {
  ExprLang l;
  LalrTables t = LalrTables::build(l.g);
  std::string e = t.expectedTerminals(l.g, 0);
  EXPECT_NE(e.find("id"), std::string::npos);
  EXPECT_NE(e.find("'('"), std::string::npos);
}

} // namespace
} // namespace mmx::parse
