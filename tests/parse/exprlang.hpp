// A tiny arithmetic language used by the parse/ unit tests: the classic
// LALR(1) expression grammar E -> E+T | T; T -> T*F | F; F -> (E) | id.
#pragma once

#include "grammar/grammar.hpp"

namespace mmx::test {

struct ExprLang {
  grammar::Grammar g;
  lex::TerminalId tId, tPlus, tStar, tLp, tRp;
  grammar::NonterminalId E, T, F;

  ExprLang() {
    g.addTerminal({"WS", "[ \\t\\n]+", false, 0, true});
    tId = g.addTerminal({"id", "[a-z]+", false, 0, false});
    tPlus = g.addTerminal({"'+'", "+", true, 10, false});
    tStar = g.addTerminal({"'*'", "*", true, 10, false});
    tLp = g.addTerminal({"'('", "(", true, 10, false});
    tRp = g.addTerminal({"')'", ")", true, 10, false});

    E = g.addNonterminal("E");
    T = g.addNonterminal("T");
    F = g.addNonterminal("F");

    using grammar::GSym;
    g.addProduction(E, {GSym::nonterm(E), GSym::term(tPlus), GSym::nonterm(T)},
                    "e_add", "host");
    g.addProduction(E, {GSym::nonterm(T)}, "e_t", "host");
    g.addProduction(T, {GSym::nonterm(T), GSym::term(tStar), GSym::nonterm(F)},
                    "t_mul", "host");
    g.addProduction(T, {GSym::nonterm(F)}, "t_f", "host");
    g.addProduction(F, {GSym::term(tLp), GSym::nonterm(E), GSym::term(tRp)},
                    "f_paren", "host");
    g.addProduction(F, {GSym::term(tId)}, "f_id", "host");

    g.setStart(E);
    g.computeFirstSets();
  }
};

} // namespace mmx::test
