#include "parse/parser.hpp"

#include <gtest/gtest.h>

#include "exprlang.hpp"

namespace mmx::parse {
namespace {

using test::ExprLang;

struct Parsed {
  SourceManager sm;
  DiagnosticEngine diags;
  ast::NodePtr root;
};

Parsed parseText(const grammar::Grammar& g, const std::string& text) {
  Parsed p;
  Parser parser(g);
  FileId f = p.sm.add("t.xc", text);
  p.root = parser.parse(p.sm, f, p.diags);
  return p;
}

TEST(Parser, SingleIdentifier) {
  ExprLang l;
  auto p = parseText(l.g, "x");
  ASSERT_TRUE(p.root);
  EXPECT_EQ(ast::toSexpr(p.root), "(e_t (t_f (f_id 'x')))");
}

TEST(Parser, PrecedenceViaGrammarStratification) {
  ExprLang l;
  auto p = parseText(l.g, "a + b * c");
  ASSERT_TRUE(p.root);
  EXPECT_EQ(ast::toSexpr(p.root),
            "(e_add (e_t (t_f (f_id 'a'))) '+' "
            "(t_mul (t_f (f_id 'b')) '*' (f_id 'c')))");
}

TEST(Parser, ParensOverridePrecedence) {
  ExprLang l;
  auto p = parseText(l.g, "(a + b) * c");
  ASSERT_TRUE(p.root);
  EXPECT_EQ(ast::toSexpr(p.root),
            "(e_t (t_mul (t_f (f_paren '(' (e_add (e_t (t_f (f_id 'a'))) '+' "
            "(t_f (f_id 'b'))) ')')) '*' (f_id 'c')))");
}

TEST(Parser, LeftAssociativity) {
  ExprLang l;
  auto p = parseText(l.g, "a + b + c");
  ASSERT_TRUE(p.root);
  // (a+b)+c, not a+(b+c)
  EXPECT_EQ(ast::toSexpr(p.root),
            "(e_add (e_add (e_t (t_f (f_id 'a'))) '+' (t_f (f_id 'b'))) '+' "
            "(t_f (f_id 'c')))");
}

TEST(Parser, SyntaxErrorReportsExpectedSet) {
  ExprLang l;
  auto p = parseText(l.g, "a + * b");
  EXPECT_FALSE(p.root);
  ASSERT_TRUE(p.diags.hasErrors());
  std::string msg = p.diags.all()[0].message;
  EXPECT_NE(msg.find("expected one of"), std::string::npos);
  EXPECT_NE(msg.find("id"), std::string::npos);
}

TEST(Parser, UnexpectedEofReported) {
  ExprLang l;
  auto p = parseText(l.g, "a +");
  EXPECT_FALSE(p.root);
  ASSERT_TRUE(p.diags.hasErrors());
  EXPECT_NE(p.diags.all()[0].message.find("unexpected end of input"),
            std::string::npos);
}

TEST(Parser, UnbalancedParenReported) {
  ExprLang l;
  auto p = parseText(l.g, "(a + b");
  EXPECT_FALSE(p.root);
  EXPECT_TRUE(p.diags.hasErrors());
}

TEST(Parser, NodeRangesCoverTheirText) {
  ExprLang l;
  auto p = parseText(l.g, "ab + cd");
  ASSERT_TRUE(p.root);
  EXPECT_EQ(p.sm.snippet(p.root->range), "ab + cd");
  // Left operand subtree covers "ab".
  EXPECT_EQ(p.sm.snippet(p.root->child(0)->range), "ab");
}

TEST(Parser, ParentPointersWired) {
  ExprLang l;
  auto p = parseText(l.g, "a * b");
  ASSERT_TRUE(p.root);
  EXPECT_EQ(p.root->child(0)->parent, p.root.get());
  EXPECT_EQ(p.root->child(0)->child(0)->parent, p.root->child(0).get());
  EXPECT_EQ(p.root->parent, nullptr);
}

TEST(Parser, FindHelpers) {
  ExprLang l;
  auto p = parseText(l.g, "a + b + c");
  ASSERT_TRUE(p.root);
  EXPECT_TRUE(ast::findFirst(p.root, "e_add"));
  EXPECT_EQ(ast::findAll(p.root, "f_id").size(), 3u);
  EXPECT_FALSE(ast::findFirst(p.root, "nonexistent"));
}

// Context-aware scanning through the full parser: a keyword of an
// "extension" is also usable as an identifier where the keyword isn't
// valid. Grammar: S -> 'loop' id | id. The word `loop` after `loop` must
// scan as id.
TEST(Parser, ContextAwareKeywordReuse) {
  grammar::Grammar g;
  g.addTerminal({"WS", "[ ]+", false, 0, true});
  auto tId = g.addTerminal({"id", "[a-z]+", false, 0, false});
  auto tLoop = g.addTerminal({"'loop'", "loop", true, 10, false});
  auto S = g.addNonterminal("S");
  using grammar::GSym;
  g.addProduction(S, {GSym::term(tLoop), GSym::term(tId)}, "s_loop", "ext");
  g.addProduction(S, {GSym::term(tId)}, "s_id", "host");
  g.setStart(S);
  g.computeFirstSets();

  // "loop loop": first `loop` is the keyword (state 0 allows both, keyword
  // precedence wins); second `loop` is scanned in a state where only id is
  // valid — context-aware scanning resolves it.
  auto p = parseText(g, "loop loop");
  ASSERT_TRUE(p.root) << p.diags.render(p.sm);
  EXPECT_EQ(ast::toSexpr(p.root), "(s_loop 'loop' 'loop')");
}

TEST(Parser, EmptyInputIsSyntaxError) {
  ExprLang l;
  auto p = parseText(l.g, "   ");
  EXPECT_FALSE(p.root);
  EXPECT_TRUE(p.diags.hasErrors());
}

} // namespace
} // namespace mmx::parse
