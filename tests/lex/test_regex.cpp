#include "lex/regex.hpp"

#include <gtest/gtest.h>

namespace mmx::lex {
namespace {

size_t match(const std::string& pattern, std::string_view text,
             size_t pos = 0) {
  auto re = parseRegex(pattern);
  Dfa d = compileRegex(*re);
  return d.longestMatch(text, pos);
}

size_t matchLit(const std::string& lit, std::string_view text,
                size_t pos = 0) {
  auto re = literalRegex(lit);
  Dfa d = compileRegex(*re);
  return d.longestMatch(text, pos);
}

TEST(Regex, LiteralMatchesExactly) {
  EXPECT_EQ(matchLit("with", "with (x)"), 4u);
  EXPECT_EQ(matchLit("with", "wit"), 0u);
  EXPECT_EQ(matchLit("with", "withy"), 4u); // prefix match; munch decided later
}

TEST(Regex, LiteralTreatsMetacharsLiterally) {
  EXPECT_EQ(matchLit("a*b", "a*b"), 3u);
  EXPECT_EQ(matchLit("a*b", "aab"), 0u);
  EXPECT_EQ(matchLit("(", "("), 1u);
}

TEST(Regex, CharClassRanges) {
  EXPECT_EQ(match("[a-z]+", "hello World"), 5u);
  EXPECT_EQ(match("[A-Za-z_][A-Za-z0-9_]*", "_id42+1"), 5u);
  EXPECT_EQ(match("[0-9]+", "12345"), 5u);
  EXPECT_EQ(match("[0-9]+", "x1"), 0u);
}

TEST(Regex, NegatedClass) {
  EXPECT_EQ(match("[^0-9]+", "abc123"), 3u);
}

TEST(Regex, DotMatchesAllButNewline) {
  EXPECT_EQ(match(".+", "ab\ncd"), 2u);
}

TEST(Regex, StarPlusOpt) {
  EXPECT_EQ(match("ab*", "a"), 1u);
  EXPECT_EQ(match("ab*", "abbb"), 4u);
  EXPECT_EQ(match("ab+", "a"), 0u);
  EXPECT_EQ(match("ab+", "abb"), 3u);
  EXPECT_EQ(match("ab?", "abb"), 2u);
}

TEST(Regex, Alternation) {
  EXPECT_EQ(match("foo|foobar", "foobar"), 6u); // longest wins inside one DFA
  EXPECT_EQ(match("cat|dog", "dog"), 3u);
}

TEST(Regex, GroupingWithPostfix) {
  EXPECT_EQ(match("(ab)+", "ababx"), 4u);
  EXPECT_EQ(match("(a|b)*c", "abbac"), 5u);
}

TEST(Regex, Escapes) {
  EXPECT_EQ(match("\\*", "*"), 1u);
  EXPECT_EQ(match("a\\+b", "a+b"), 3u);
  EXPECT_EQ(match("[\\t ]+", "\t  x"), 3u);
  EXPECT_EQ(match("\\n", "\n"), 1u);
}

TEST(Regex, CFloatLiteralPattern) {
  const std::string f = "[0-9]+\\.[0-9]+([eE][+\\-]?[0-9]+)?";
  EXPECT_EQ(match(f, "3.14"), 4u);
  EXPECT_EQ(match(f, "3.14e-2 "), 7u);
  EXPECT_EQ(match(f, "3"), 0u);
  EXPECT_EQ(match(f, "3."), 0u);
}

TEST(Regex, CStringLiteralPattern) {
  const std::string s = "\"([^\"\\\\\\n]|\\\\.)*\"";
  EXPECT_EQ(match(s, "\"ssh.data\" rest"), 10u);
  EXPECT_EQ(match(s, "\"a\\\"b\""), 6u); // embedded escaped quote
  EXPECT_EQ(match(s, "\"unterminated"), 0u);
}

TEST(Regex, LineCommentPattern) {
  EXPECT_EQ(match("//[^\\n]*", "// trim\nx"), 7u);
}

TEST(Regex, BlockCommentPattern) {
  const std::string c = "/\\*([^*]|\\*+[^*/])*\\*+/";
  EXPECT_EQ(match(c, "/* hi */ after"), 8u);
  EXPECT_EQ(match(c, "/* a * b */x"), 11u);
  EXPECT_EQ(match(c, "/* open"), 0u);
}

TEST(Regex, MatchFromOffset) {
  EXPECT_EQ(match("[0-9]+", "ab12cd", 2), 2u);
}

TEST(Regex, MalformedPatternsThrow) {
  EXPECT_THROW(parseRegex("(ab"), std::invalid_argument);
  EXPECT_THROW(parseRegex("[a-"), std::invalid_argument);
  EXPECT_THROW(parseRegex("*a"), std::invalid_argument);
  EXPECT_THROW(parseRegex("[z-a]"), std::invalid_argument);
  EXPECT_THROW(parseRegex("a\\"), std::invalid_argument);
}

TEST(Regex, EmptyRegexMatchesEmptyOnly) {
  auto re = parseRegex("");
  Dfa d = compileRegex(*re);
  EXPECT_EQ(d.longestMatch("abc", 0), 0u);
  EXPECT_TRUE(d.accepting[0]);
}

} // namespace
} // namespace mmx::lex
