#include "lex/scanner.hpp"

#include <gtest/gtest.h>

namespace mmx::lex {
namespace {

/// Builds the little vocabulary used across these tests:
/// layout, ID, INT, and the keywords `with` / `end`.
struct Vocab {
  LexSpec spec;
  TerminalId ws, id, num, kwWith, kwEnd, lbrack;

  Vocab() {
    ws = spec.add({"WS", "[ \\t\\r\\n]+", false, 0, true});
    id = spec.add({"ID", "[A-Za-z_][A-Za-z0-9_]*", false, 0, false});
    num = spec.add({"INT", "[0-9]+", false, 0, false});
    kwWith = spec.add({"'with'", "with", true, 10, false});
    kwEnd = spec.add({"'end'", "end", true, 10, false});
    lbrack = spec.add({"'['", "[", true, 10, false});
  }

  DynBitset allow(std::initializer_list<TerminalId> ts) const {
    DynBitset b(spec.count());
    for (auto t : ts) b.set(t);
    return b;
  }
};

TEST(Scanner, SkipsLayoutBeforeToken) {
  Vocab v;
  Scanner sc(v.spec);
  size_t pos = 0;
  auto r = sc.scan("   \t x", 0, pos, v.allow({v.id}));
  ASSERT_EQ(r.status, ScanResult::Status::Ok);
  EXPECT_EQ(r.token.text, "x");
  EXPECT_EQ(pos, 6u);
}

TEST(Scanner, KeywordBeatsIdentifierByPrecedence) {
  Vocab v;
  Scanner sc(v.spec);
  size_t pos = 0;
  auto r = sc.scan("with", 0, pos, v.allow({v.id, v.kwWith}));
  ASSERT_EQ(r.status, ScanResult::Status::Ok);
  EXPECT_EQ(r.token.term, v.kwWith);
}

TEST(Scanner, MaximalMunchBeatsPrecedence) {
  // `withloop` is an identifier even though `with` (higher precedence)
  // matches a prefix.
  Vocab v;
  Scanner sc(v.spec);
  size_t pos = 0;
  auto r = sc.scan("withloop", 0, pos, v.allow({v.id, v.kwWith}));
  ASSERT_EQ(r.status, ScanResult::Status::Ok);
  EXPECT_EQ(r.token.term, v.id);
  EXPECT_EQ(r.token.text, "withloop");
}

TEST(Scanner, ContextDisambiguatesEndKeywordFromIdentifier) {
  // THE context-aware scanning payoff (paper §VI-A): `end` is a keyword
  // where the parser allows it, an ordinary identifier elsewhere.
  Vocab v;
  Scanner sc(v.spec);

  size_t pos = 0; // context: inside matrix index — 'end' allowed, ID not
  auto r1 = sc.scan("end", 0, pos, v.allow({v.kwEnd, v.num}));
  ASSERT_EQ(r1.status, ScanResult::Status::Ok);
  EXPECT_EQ(r1.token.term, v.kwEnd);

  pos = 0; // context: expression — only ID allowed
  auto r2 = sc.scan("end", 0, pos, v.allow({v.id, v.num}));
  ASSERT_EQ(r2.status, ScanResult::Status::Ok);
  EXPECT_EQ(r2.token.term, v.id);
  EXPECT_EQ(r2.token.text, "end");
}

TEST(Scanner, DisallowedTerminalIsInvisible) {
  Vocab v;
  Scanner sc(v.spec);
  size_t pos = 0;
  auto r = sc.scan("42", 0, pos, v.allow({v.id})); // numbers not valid here
  EXPECT_EQ(r.status, ScanResult::Status::NoMatch);
}

TEST(Scanner, EofAfterTrailingLayout) {
  Vocab v;
  Scanner sc(v.spec);
  size_t pos = 0;
  auto r = sc.scan("  \n", 0, pos, v.allow({v.id}));
  EXPECT_EQ(r.status, ScanResult::Status::Eof);
  EXPECT_EQ(pos, 3u);
}

TEST(Scanner, AmbiguityReportedWhenSameLengthSamePrecedence) {
  LexSpec spec;
  spec.add({"A", "abc", true, 5, false});
  spec.add({"B", "ab[c]", false, 5, false});
  Scanner sc(spec);
  size_t pos = 0;
  DynBitset allow(spec.count());
  allow.set(0);
  allow.set(1);
  auto r = sc.scan("abc", 0, pos, allow);
  ASSERT_EQ(r.status, ScanResult::Status::Ambiguous);
  EXPECT_EQ(r.matched.size(), 2u);
}

TEST(Scanner, TokenRangeIsByteAccurate) {
  Vocab v;
  Scanner sc(v.spec);
  size_t pos = 0;
  auto r = sc.scan("  abc ", 7, pos, v.allow({v.id}));
  ASSERT_EQ(r.status, ScanResult::Status::Ok);
  EXPECT_EQ(r.token.range.begin.file, 7u);
  EXPECT_EQ(r.token.range.begin.offset, 2u);
  EXPECT_EQ(r.token.range.end, 5u);
}

TEST(Scanner, ScanAnyConsidersEverything) {
  Vocab v;
  Scanner sc(v.spec);
  size_t pos = 0;
  auto r = sc.scanAny("with", 0, pos);
  ASSERT_EQ(r.status, ScanResult::Status::Ok);
  EXPECT_EQ(r.token.term, v.kwWith);
}

TEST(Scanner, SequentialTokens) {
  Vocab v;
  Scanner sc(v.spec);
  size_t pos = 0;
  auto all = v.allow({v.id, v.num, v.kwWith, v.kwEnd, v.lbrack});
  std::vector<std::string> texts;
  for (;;) {
    auto r = sc.scan("with m [ end 42", 0, pos, all);
    if (r.status != ScanResult::Status::Ok) break;
    texts.emplace_back(r.token.text);
  }
  EXPECT_EQ(texts,
            (std::vector<std::string>{"with", "m", "[", "end", "42"}));
}

} // namespace
} // namespace mmx::lex
