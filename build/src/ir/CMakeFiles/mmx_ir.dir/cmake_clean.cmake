file(REMOVE_RECURSE
  "CMakeFiles/mmx_ir.dir/cemit.cpp.o"
  "CMakeFiles/mmx_ir.dir/cemit.cpp.o.d"
  "CMakeFiles/mmx_ir.dir/ir.cpp.o"
  "CMakeFiles/mmx_ir.dir/ir.cpp.o.d"
  "libmmx_ir.a"
  "libmmx_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
