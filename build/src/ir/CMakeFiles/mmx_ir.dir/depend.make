# Empty dependencies file for mmx_ir.
# This may be replaced when dependencies are built.
