file(REMOVE_RECURSE
  "libmmx_ir.a"
)
