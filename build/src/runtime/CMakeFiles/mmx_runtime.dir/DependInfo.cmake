
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/alloc.cpp" "src/runtime/CMakeFiles/mmx_runtime.dir/alloc.cpp.o" "gcc" "src/runtime/CMakeFiles/mmx_runtime.dir/alloc.cpp.o.d"
  "/root/repo/src/runtime/conncomp.cpp" "src/runtime/CMakeFiles/mmx_runtime.dir/conncomp.cpp.o" "gcc" "src/runtime/CMakeFiles/mmx_runtime.dir/conncomp.cpp.o.d"
  "/root/repo/src/runtime/eddy.cpp" "src/runtime/CMakeFiles/mmx_runtime.dir/eddy.cpp.o" "gcc" "src/runtime/CMakeFiles/mmx_runtime.dir/eddy.cpp.o.d"
  "/root/repo/src/runtime/kernels.cpp" "src/runtime/CMakeFiles/mmx_runtime.dir/kernels.cpp.o" "gcc" "src/runtime/CMakeFiles/mmx_runtime.dir/kernels.cpp.o.d"
  "/root/repo/src/runtime/matio.cpp" "src/runtime/CMakeFiles/mmx_runtime.dir/matio.cpp.o" "gcc" "src/runtime/CMakeFiles/mmx_runtime.dir/matio.cpp.o.d"
  "/root/repo/src/runtime/matrix.cpp" "src/runtime/CMakeFiles/mmx_runtime.dir/matrix.cpp.o" "gcc" "src/runtime/CMakeFiles/mmx_runtime.dir/matrix.cpp.o.d"
  "/root/repo/src/runtime/pool.cpp" "src/runtime/CMakeFiles/mmx_runtime.dir/pool.cpp.o" "gcc" "src/runtime/CMakeFiles/mmx_runtime.dir/pool.cpp.o.d"
  "/root/repo/src/runtime/refcount.cpp" "src/runtime/CMakeFiles/mmx_runtime.dir/refcount.cpp.o" "gcc" "src/runtime/CMakeFiles/mmx_runtime.dir/refcount.cpp.o.d"
  "/root/repo/src/runtime/ssh_synth.cpp" "src/runtime/CMakeFiles/mmx_runtime.dir/ssh_synth.cpp.o" "gcc" "src/runtime/CMakeFiles/mmx_runtime.dir/ssh_synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
