file(REMOVE_RECURSE
  "CMakeFiles/mmx_runtime.dir/alloc.cpp.o"
  "CMakeFiles/mmx_runtime.dir/alloc.cpp.o.d"
  "CMakeFiles/mmx_runtime.dir/conncomp.cpp.o"
  "CMakeFiles/mmx_runtime.dir/conncomp.cpp.o.d"
  "CMakeFiles/mmx_runtime.dir/eddy.cpp.o"
  "CMakeFiles/mmx_runtime.dir/eddy.cpp.o.d"
  "CMakeFiles/mmx_runtime.dir/kernels.cpp.o"
  "CMakeFiles/mmx_runtime.dir/kernels.cpp.o.d"
  "CMakeFiles/mmx_runtime.dir/matio.cpp.o"
  "CMakeFiles/mmx_runtime.dir/matio.cpp.o.d"
  "CMakeFiles/mmx_runtime.dir/matrix.cpp.o"
  "CMakeFiles/mmx_runtime.dir/matrix.cpp.o.d"
  "CMakeFiles/mmx_runtime.dir/pool.cpp.o"
  "CMakeFiles/mmx_runtime.dir/pool.cpp.o.d"
  "CMakeFiles/mmx_runtime.dir/refcount.cpp.o"
  "CMakeFiles/mmx_runtime.dir/refcount.cpp.o.d"
  "CMakeFiles/mmx_runtime.dir/ssh_synth.cpp.o"
  "CMakeFiles/mmx_runtime.dir/ssh_synth.cpp.o.d"
  "libmmx_runtime.a"
  "libmmx_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
