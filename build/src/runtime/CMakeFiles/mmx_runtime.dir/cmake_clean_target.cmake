file(REMOVE_RECURSE
  "libmmx_runtime.a"
)
