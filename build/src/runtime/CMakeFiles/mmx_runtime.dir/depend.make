# Empty dependencies file for mmx_runtime.
# This may be replaced when dependencies are built.
