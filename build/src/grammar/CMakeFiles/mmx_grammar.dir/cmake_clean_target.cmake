file(REMOVE_RECURSE
  "libmmx_grammar.a"
)
