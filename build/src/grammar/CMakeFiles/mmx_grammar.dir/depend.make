# Empty dependencies file for mmx_grammar.
# This may be replaced when dependencies are built.
