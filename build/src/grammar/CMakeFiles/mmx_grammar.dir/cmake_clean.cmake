file(REMOVE_RECURSE
  "CMakeFiles/mmx_grammar.dir/grammar.cpp.o"
  "CMakeFiles/mmx_grammar.dir/grammar.cpp.o.d"
  "libmmx_grammar.a"
  "libmmx_grammar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_grammar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
