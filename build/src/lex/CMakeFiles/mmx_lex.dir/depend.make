# Empty dependencies file for mmx_lex.
# This may be replaced when dependencies are built.
