file(REMOVE_RECURSE
  "CMakeFiles/mmx_lex.dir/regex.cpp.o"
  "CMakeFiles/mmx_lex.dir/regex.cpp.o.d"
  "CMakeFiles/mmx_lex.dir/scanner.cpp.o"
  "CMakeFiles/mmx_lex.dir/scanner.cpp.o.d"
  "libmmx_lex.a"
  "libmmx_lex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_lex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
