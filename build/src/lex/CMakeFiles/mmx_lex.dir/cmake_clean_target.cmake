file(REMOVE_RECURSE
  "libmmx_lex.a"
)
