file(REMOVE_RECURSE
  "CMakeFiles/mmx_ext_matrix.dir/grammar.cpp.o"
  "CMakeFiles/mmx_ext_matrix.dir/grammar.cpp.o.d"
  "CMakeFiles/mmx_ext_matrix.dir/sema.cpp.o"
  "CMakeFiles/mmx_ext_matrix.dir/sema.cpp.o.d"
  "libmmx_ext_matrix.a"
  "libmmx_ext_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_ext_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
