file(REMOVE_RECURSE
  "libmmx_ext_matrix.a"
)
