# Empty dependencies file for mmx_ext_matrix.
# This may be replaced when dependencies are built.
