# Empty compiler generated dependencies file for mmx_support.
# This may be replaced when dependencies are built.
