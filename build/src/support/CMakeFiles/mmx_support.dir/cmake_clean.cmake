file(REMOVE_RECURSE
  "CMakeFiles/mmx_support.dir/diag.cpp.o"
  "CMakeFiles/mmx_support.dir/diag.cpp.o.d"
  "CMakeFiles/mmx_support.dir/interner.cpp.o"
  "CMakeFiles/mmx_support.dir/interner.cpp.o.d"
  "CMakeFiles/mmx_support.dir/source.cpp.o"
  "CMakeFiles/mmx_support.dir/source.cpp.o.d"
  "libmmx_support.a"
  "libmmx_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
