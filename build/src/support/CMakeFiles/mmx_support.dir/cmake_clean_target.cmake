file(REMOVE_RECURSE
  "libmmx_support.a"
)
