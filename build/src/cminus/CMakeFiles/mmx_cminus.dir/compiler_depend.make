# Empty compiler generated dependencies file for mmx_cminus.
# This may be replaced when dependencies are built.
