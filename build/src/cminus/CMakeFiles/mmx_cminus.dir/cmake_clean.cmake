file(REMOVE_RECURSE
  "CMakeFiles/mmx_cminus.dir/host_grammar.cpp.o"
  "CMakeFiles/mmx_cminus.dir/host_grammar.cpp.o.d"
  "CMakeFiles/mmx_cminus.dir/host_sema.cpp.o"
  "CMakeFiles/mmx_cminus.dir/host_sema.cpp.o.d"
  "CMakeFiles/mmx_cminus.dir/sema.cpp.o"
  "CMakeFiles/mmx_cminus.dir/sema.cpp.o.d"
  "CMakeFiles/mmx_cminus.dir/types.cpp.o"
  "CMakeFiles/mmx_cminus.dir/types.cpp.o.d"
  "libmmx_cminus.a"
  "libmmx_cminus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_cminus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
