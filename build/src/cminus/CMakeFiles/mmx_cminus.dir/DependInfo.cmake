
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cminus/host_grammar.cpp" "src/cminus/CMakeFiles/mmx_cminus.dir/host_grammar.cpp.o" "gcc" "src/cminus/CMakeFiles/mmx_cminus.dir/host_grammar.cpp.o.d"
  "/root/repo/src/cminus/host_sema.cpp" "src/cminus/CMakeFiles/mmx_cminus.dir/host_sema.cpp.o" "gcc" "src/cminus/CMakeFiles/mmx_cminus.dir/host_sema.cpp.o.d"
  "/root/repo/src/cminus/sema.cpp" "src/cminus/CMakeFiles/mmx_cminus.dir/sema.cpp.o" "gcc" "src/cminus/CMakeFiles/mmx_cminus.dir/sema.cpp.o.d"
  "/root/repo/src/cminus/types.cpp" "src/cminus/CMakeFiles/mmx_cminus.dir/types.cpp.o" "gcc" "src/cminus/CMakeFiles/mmx_cminus.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ext/CMakeFiles/mmx_ext_core.dir/DependInfo.cmake"
  "/root/repo/build/src/attr/CMakeFiles/mmx_attr.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/mmx_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/mmx_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mmx_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mmx_support.dir/DependInfo.cmake"
  "/root/repo/build/src/grammar/CMakeFiles/mmx_grammar.dir/DependInfo.cmake"
  "/root/repo/build/src/lex/CMakeFiles/mmx_lex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
