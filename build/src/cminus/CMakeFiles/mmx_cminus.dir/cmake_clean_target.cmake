file(REMOVE_RECURSE
  "libmmx_cminus.a"
)
