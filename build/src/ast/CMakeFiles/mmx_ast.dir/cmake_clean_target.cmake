file(REMOVE_RECURSE
  "libmmx_ast.a"
)
