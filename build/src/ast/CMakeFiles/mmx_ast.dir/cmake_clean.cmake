file(REMOVE_RECURSE
  "CMakeFiles/mmx_ast.dir/node.cpp.o"
  "CMakeFiles/mmx_ast.dir/node.cpp.o.d"
  "libmmx_ast.a"
  "libmmx_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
