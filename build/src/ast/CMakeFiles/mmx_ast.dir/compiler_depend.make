# Empty compiler generated dependencies file for mmx_ast.
# This may be replaced when dependencies are built.
