# Empty dependencies file for mmx_ast.
# This may be replaced when dependencies are built.
