file(REMOVE_RECURSE
  "libmmx_ext_refcount.a"
)
