# Empty dependencies file for mmx_ext_refcount.
# This may be replaced when dependencies are built.
