file(REMOVE_RECURSE
  "CMakeFiles/mmx_ext_refcount.dir/refcount_ext.cpp.o"
  "CMakeFiles/mmx_ext_refcount.dir/refcount_ext.cpp.o.d"
  "libmmx_ext_refcount.a"
  "libmmx_ext_refcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_ext_refcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
