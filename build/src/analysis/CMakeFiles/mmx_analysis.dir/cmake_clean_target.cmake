file(REMOVE_RECURSE
  "libmmx_analysis.a"
)
