# Empty dependencies file for mmx_analysis.
# This may be replaced when dependencies are built.
