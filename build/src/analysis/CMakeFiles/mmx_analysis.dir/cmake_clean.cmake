file(REMOVE_RECURSE
  "CMakeFiles/mmx_analysis.dir/determinism.cpp.o"
  "CMakeFiles/mmx_analysis.dir/determinism.cpp.o.d"
  "CMakeFiles/mmx_analysis.dir/welldef.cpp.o"
  "CMakeFiles/mmx_analysis.dir/welldef.cpp.o.d"
  "libmmx_analysis.a"
  "libmmx_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
