file(REMOVE_RECURSE
  "libmmx_ext_core.a"
)
