file(REMOVE_RECURSE
  "CMakeFiles/mmx_ext_core.dir/fragment.cpp.o"
  "CMakeFiles/mmx_ext_core.dir/fragment.cpp.o.d"
  "libmmx_ext_core.a"
  "libmmx_ext_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_ext_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
