file(REMOVE_RECURSE
  "CMakeFiles/mmc.dir/mmc_main.cpp.o"
  "CMakeFiles/mmc.dir/mmc_main.cpp.o.d"
  "mmc"
  "mmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
