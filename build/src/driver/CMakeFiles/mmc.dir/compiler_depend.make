# Empty compiler generated dependencies file for mmc.
# This may be replaced when dependencies are built.
