# Empty compiler generated dependencies file for mmx_driver.
# This may be replaced when dependencies are built.
