file(REMOVE_RECURSE
  "CMakeFiles/mmx_driver.dir/translator.cpp.o"
  "CMakeFiles/mmx_driver.dir/translator.cpp.o.d"
  "libmmx_driver.a"
  "libmmx_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
