file(REMOVE_RECURSE
  "libmmx_driver.a"
)
