file(REMOVE_RECURSE
  "libmmx_interp.a"
)
