# Empty compiler generated dependencies file for mmx_interp.
# This may be replaced when dependencies are built.
