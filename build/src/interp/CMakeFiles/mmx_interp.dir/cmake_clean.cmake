file(REMOVE_RECURSE
  "CMakeFiles/mmx_interp.dir/interp.cpp.o"
  "CMakeFiles/mmx_interp.dir/interp.cpp.o.d"
  "libmmx_interp.a"
  "libmmx_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
