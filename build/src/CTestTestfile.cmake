# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("lex")
subdirs("grammar")
subdirs("ast")
subdirs("attr")
subdirs("parse")
subdirs("ext")
subdirs("analysis")
subdirs("runtime")
subdirs("ir")
subdirs("interp")
subdirs("cminus")
subdirs("ext_matrix")
subdirs("ext_refcount")
subdirs("ext_transform")
subdirs("ext_tuple")
subdirs("driver")
