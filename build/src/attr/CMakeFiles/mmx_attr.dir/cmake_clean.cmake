file(REMOVE_RECURSE
  "CMakeFiles/mmx_attr.dir/engine.cpp.o"
  "CMakeFiles/mmx_attr.dir/engine.cpp.o.d"
  "libmmx_attr.a"
  "libmmx_attr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_attr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
