file(REMOVE_RECURSE
  "libmmx_attr.a"
)
