# Empty dependencies file for mmx_attr.
# This may be replaced when dependencies are built.
