file(REMOVE_RECURSE
  "CMakeFiles/mmx_ext_transform.dir/transform_ext.cpp.o"
  "CMakeFiles/mmx_ext_transform.dir/transform_ext.cpp.o.d"
  "libmmx_ext_transform.a"
  "libmmx_ext_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_ext_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
