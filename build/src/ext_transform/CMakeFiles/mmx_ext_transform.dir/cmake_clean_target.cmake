file(REMOVE_RECURSE
  "libmmx_ext_transform.a"
)
