# Empty dependencies file for mmx_ext_transform.
# This may be replaced when dependencies are built.
