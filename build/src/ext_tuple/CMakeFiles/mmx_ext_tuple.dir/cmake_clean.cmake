file(REMOVE_RECURSE
  "CMakeFiles/mmx_ext_tuple.dir/tuple_ext.cpp.o"
  "CMakeFiles/mmx_ext_tuple.dir/tuple_ext.cpp.o.d"
  "libmmx_ext_tuple.a"
  "libmmx_ext_tuple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_ext_tuple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
