# Empty dependencies file for mmx_ext_tuple.
# This may be replaced when dependencies are built.
