file(REMOVE_RECURSE
  "libmmx_ext_tuple.a"
)
