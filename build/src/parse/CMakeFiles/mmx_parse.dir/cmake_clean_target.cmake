file(REMOVE_RECURSE
  "libmmx_parse.a"
)
