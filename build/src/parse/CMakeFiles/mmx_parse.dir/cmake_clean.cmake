file(REMOVE_RECURSE
  "CMakeFiles/mmx_parse.dir/lalr.cpp.o"
  "CMakeFiles/mmx_parse.dir/lalr.cpp.o.d"
  "CMakeFiles/mmx_parse.dir/parser.cpp.o"
  "CMakeFiles/mmx_parse.dir/parser.cpp.o.d"
  "libmmx_parse.a"
  "libmmx_parse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmx_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
