# Empty compiler generated dependencies file for mmx_parse.
# This may be replaced when dependencies are built.
