file(REMOVE_RECURSE
  "CMakeFiles/test_runtime.dir/test_alloc.cpp.o"
  "CMakeFiles/test_runtime.dir/test_alloc.cpp.o.d"
  "CMakeFiles/test_runtime.dir/test_conncomp.cpp.o"
  "CMakeFiles/test_runtime.dir/test_conncomp.cpp.o.d"
  "CMakeFiles/test_runtime.dir/test_eddy.cpp.o"
  "CMakeFiles/test_runtime.dir/test_eddy.cpp.o.d"
  "CMakeFiles/test_runtime.dir/test_kernels.cpp.o"
  "CMakeFiles/test_runtime.dir/test_kernels.cpp.o.d"
  "CMakeFiles/test_runtime.dir/test_matio.cpp.o"
  "CMakeFiles/test_runtime.dir/test_matio.cpp.o.d"
  "CMakeFiles/test_runtime.dir/test_matrix.cpp.o"
  "CMakeFiles/test_runtime.dir/test_matrix.cpp.o.d"
  "CMakeFiles/test_runtime.dir/test_pool.cpp.o"
  "CMakeFiles/test_runtime.dir/test_pool.cpp.o.d"
  "CMakeFiles/test_runtime.dir/test_refcount.cpp.o"
  "CMakeFiles/test_runtime.dir/test_refcount.cpp.o.d"
  "CMakeFiles/test_runtime.dir/test_ssh_synth.cpp.o"
  "CMakeFiles/test_runtime.dir/test_ssh_synth.cpp.o.d"
  "test_runtime"
  "test_runtime.pdb"
  "test_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
