
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/test_alloc.cpp" "tests/runtime/CMakeFiles/test_runtime.dir/test_alloc.cpp.o" "gcc" "tests/runtime/CMakeFiles/test_runtime.dir/test_alloc.cpp.o.d"
  "/root/repo/tests/runtime/test_conncomp.cpp" "tests/runtime/CMakeFiles/test_runtime.dir/test_conncomp.cpp.o" "gcc" "tests/runtime/CMakeFiles/test_runtime.dir/test_conncomp.cpp.o.d"
  "/root/repo/tests/runtime/test_eddy.cpp" "tests/runtime/CMakeFiles/test_runtime.dir/test_eddy.cpp.o" "gcc" "tests/runtime/CMakeFiles/test_runtime.dir/test_eddy.cpp.o.d"
  "/root/repo/tests/runtime/test_kernels.cpp" "tests/runtime/CMakeFiles/test_runtime.dir/test_kernels.cpp.o" "gcc" "tests/runtime/CMakeFiles/test_runtime.dir/test_kernels.cpp.o.d"
  "/root/repo/tests/runtime/test_matio.cpp" "tests/runtime/CMakeFiles/test_runtime.dir/test_matio.cpp.o" "gcc" "tests/runtime/CMakeFiles/test_runtime.dir/test_matio.cpp.o.d"
  "/root/repo/tests/runtime/test_matrix.cpp" "tests/runtime/CMakeFiles/test_runtime.dir/test_matrix.cpp.o" "gcc" "tests/runtime/CMakeFiles/test_runtime.dir/test_matrix.cpp.o.d"
  "/root/repo/tests/runtime/test_pool.cpp" "tests/runtime/CMakeFiles/test_runtime.dir/test_pool.cpp.o" "gcc" "tests/runtime/CMakeFiles/test_runtime.dir/test_pool.cpp.o.d"
  "/root/repo/tests/runtime/test_refcount.cpp" "tests/runtime/CMakeFiles/test_runtime.dir/test_refcount.cpp.o" "gcc" "tests/runtime/CMakeFiles/test_runtime.dir/test_refcount.cpp.o.d"
  "/root/repo/tests/runtime/test_ssh_synth.cpp" "tests/runtime/CMakeFiles/test_runtime.dir/test_ssh_synth.cpp.o" "gcc" "tests/runtime/CMakeFiles/test_runtime.dir/test_ssh_synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/mmx_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
