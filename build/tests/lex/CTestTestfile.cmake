# CMake generated Testfile for 
# Source directory: /root/repo/tests/lex
# Build directory: /root/repo/build/tests/lex
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/lex/test_lex[1]_include.cmake")
