# Empty dependencies file for test_lex.
# This may be replaced when dependencies are built.
