
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lex/test_regex.cpp" "tests/lex/CMakeFiles/test_lex.dir/test_regex.cpp.o" "gcc" "tests/lex/CMakeFiles/test_lex.dir/test_regex.cpp.o.d"
  "/root/repo/tests/lex/test_scanner.cpp" "tests/lex/CMakeFiles/test_lex.dir/test_scanner.cpp.o" "gcc" "tests/lex/CMakeFiles/test_lex.dir/test_scanner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lex/CMakeFiles/mmx_lex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mmx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
