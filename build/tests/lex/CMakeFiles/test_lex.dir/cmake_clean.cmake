file(REMOVE_RECURSE
  "CMakeFiles/test_lex.dir/test_regex.cpp.o"
  "CMakeFiles/test_lex.dir/test_regex.cpp.o.d"
  "CMakeFiles/test_lex.dir/test_scanner.cpp.o"
  "CMakeFiles/test_lex.dir/test_scanner.cpp.o.d"
  "test_lex"
  "test_lex.pdb"
  "test_lex[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
