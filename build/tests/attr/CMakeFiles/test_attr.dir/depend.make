# Empty dependencies file for test_attr.
# This may be replaced when dependencies are built.
