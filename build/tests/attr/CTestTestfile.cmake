# CMake generated Testfile for 
# Source directory: /root/repo/tests/attr
# Build directory: /root/repo/build/tests/attr
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/attr/test_attr[1]_include.cmake")
