# CMake generated Testfile for 
# Source directory: /root/repo/tests/parse
# Build directory: /root/repo/build/tests/parse
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/parse/test_parse[1]_include.cmake")
