file(REMOVE_RECURSE
  "CMakeFiles/test_support.dir/test_bitset.cpp.o"
  "CMakeFiles/test_support.dir/test_bitset.cpp.o.d"
  "CMakeFiles/test_support.dir/test_diag.cpp.o"
  "CMakeFiles/test_support.dir/test_diag.cpp.o.d"
  "CMakeFiles/test_support.dir/test_interner.cpp.o"
  "CMakeFiles/test_support.dir/test_interner.cpp.o.d"
  "CMakeFiles/test_support.dir/test_source.cpp.o"
  "CMakeFiles/test_support.dir/test_source.cpp.o.d"
  "test_support"
  "test_support.pdb"
  "test_support[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
