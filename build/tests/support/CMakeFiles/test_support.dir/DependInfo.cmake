
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/support/test_bitset.cpp" "tests/support/CMakeFiles/test_support.dir/test_bitset.cpp.o" "gcc" "tests/support/CMakeFiles/test_support.dir/test_bitset.cpp.o.d"
  "/root/repo/tests/support/test_diag.cpp" "tests/support/CMakeFiles/test_support.dir/test_diag.cpp.o" "gcc" "tests/support/CMakeFiles/test_support.dir/test_diag.cpp.o.d"
  "/root/repo/tests/support/test_interner.cpp" "tests/support/CMakeFiles/test_support.dir/test_interner.cpp.o" "gcc" "tests/support/CMakeFiles/test_support.dir/test_interner.cpp.o.d"
  "/root/repo/tests/support/test_source.cpp" "tests/support/CMakeFiles/test_support.dir/test_source.cpp.o" "gcc" "tests/support/CMakeFiles/test_support.dir/test_source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mmx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
