file(REMOVE_RECURSE
  "CMakeFiles/test_lang.dir/test_cemit.cpp.o"
  "CMakeFiles/test_lang.dir/test_cemit.cpp.o.d"
  "CMakeFiles/test_lang.dir/test_context_scanning.cpp.o"
  "CMakeFiles/test_lang.dir/test_context_scanning.cpp.o.d"
  "CMakeFiles/test_lang.dir/test_figures.cpp.o"
  "CMakeFiles/test_lang.dir/test_figures.cpp.o.d"
  "CMakeFiles/test_lang.dir/test_host_lang.cpp.o"
  "CMakeFiles/test_lang.dir/test_host_lang.cpp.o.d"
  "CMakeFiles/test_lang.dir/test_lang_property.cpp.o"
  "CMakeFiles/test_lang.dir/test_lang_property.cpp.o.d"
  "CMakeFiles/test_lang.dir/test_matrix_lang.cpp.o"
  "CMakeFiles/test_lang.dir/test_matrix_lang.cpp.o.d"
  "CMakeFiles/test_lang.dir/test_refcount_lang.cpp.o"
  "CMakeFiles/test_lang.dir/test_refcount_lang.cpp.o.d"
  "CMakeFiles/test_lang.dir/test_transform_lang.cpp.o"
  "CMakeFiles/test_lang.dir/test_transform_lang.cpp.o.d"
  "test_lang"
  "test_lang.pdb"
  "test_lang[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
