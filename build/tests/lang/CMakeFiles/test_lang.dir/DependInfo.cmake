
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lang/test_cemit.cpp" "tests/lang/CMakeFiles/test_lang.dir/test_cemit.cpp.o" "gcc" "tests/lang/CMakeFiles/test_lang.dir/test_cemit.cpp.o.d"
  "/root/repo/tests/lang/test_context_scanning.cpp" "tests/lang/CMakeFiles/test_lang.dir/test_context_scanning.cpp.o" "gcc" "tests/lang/CMakeFiles/test_lang.dir/test_context_scanning.cpp.o.d"
  "/root/repo/tests/lang/test_figures.cpp" "tests/lang/CMakeFiles/test_lang.dir/test_figures.cpp.o" "gcc" "tests/lang/CMakeFiles/test_lang.dir/test_figures.cpp.o.d"
  "/root/repo/tests/lang/test_host_lang.cpp" "tests/lang/CMakeFiles/test_lang.dir/test_host_lang.cpp.o" "gcc" "tests/lang/CMakeFiles/test_lang.dir/test_host_lang.cpp.o.d"
  "/root/repo/tests/lang/test_lang_property.cpp" "tests/lang/CMakeFiles/test_lang.dir/test_lang_property.cpp.o" "gcc" "tests/lang/CMakeFiles/test_lang.dir/test_lang_property.cpp.o.d"
  "/root/repo/tests/lang/test_matrix_lang.cpp" "tests/lang/CMakeFiles/test_lang.dir/test_matrix_lang.cpp.o" "gcc" "tests/lang/CMakeFiles/test_lang.dir/test_matrix_lang.cpp.o.d"
  "/root/repo/tests/lang/test_refcount_lang.cpp" "tests/lang/CMakeFiles/test_lang.dir/test_refcount_lang.cpp.o" "gcc" "tests/lang/CMakeFiles/test_lang.dir/test_refcount_lang.cpp.o.d"
  "/root/repo/tests/lang/test_transform_lang.cpp" "tests/lang/CMakeFiles/test_lang.dir/test_transform_lang.cpp.o" "gcc" "tests/lang/CMakeFiles/test_lang.dir/test_transform_lang.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/mmx_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/ext_matrix/CMakeFiles/mmx_ext_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/ext_refcount/CMakeFiles/mmx_ext_refcount.dir/DependInfo.cmake"
  "/root/repo/build/src/ext_transform/CMakeFiles/mmx_ext_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/mmx_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mmx_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/mmx_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/mmx_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/parse/CMakeFiles/mmx_parse.dir/DependInfo.cmake"
  "/root/repo/build/src/cminus/CMakeFiles/mmx_cminus.dir/DependInfo.cmake"
  "/root/repo/build/src/attr/CMakeFiles/mmx_attr.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/mmx_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/ext/CMakeFiles/mmx_ext_core.dir/DependInfo.cmake"
  "/root/repo/build/src/grammar/CMakeFiles/mmx_grammar.dir/DependInfo.cmake"
  "/root/repo/build/src/lex/CMakeFiles/mmx_lex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mmx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
