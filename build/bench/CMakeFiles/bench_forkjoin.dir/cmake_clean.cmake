file(REMOVE_RECURSE
  "CMakeFiles/bench_forkjoin.dir/bench_forkjoin.cpp.o"
  "CMakeFiles/bench_forkjoin.dir/bench_forkjoin.cpp.o.d"
  "bench_forkjoin"
  "bench_forkjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_forkjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
