# Empty compiler generated dependencies file for transform_playground.
# This may be replaced when dependencies are built.
