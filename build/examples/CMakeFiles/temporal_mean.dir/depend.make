# Empty dependencies file for temporal_mean.
# This may be replaced when dependencies are built.
