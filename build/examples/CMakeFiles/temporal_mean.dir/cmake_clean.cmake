file(REMOVE_RECURSE
  "CMakeFiles/temporal_mean.dir/temporal_mean.cpp.o"
  "CMakeFiles/temporal_mean.dir/temporal_mean.cpp.o.d"
  "temporal_mean"
  "temporal_mean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_mean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
