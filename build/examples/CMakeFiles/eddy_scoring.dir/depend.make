# Empty dependencies file for eddy_scoring.
# This may be replaced when dependencies are built.
