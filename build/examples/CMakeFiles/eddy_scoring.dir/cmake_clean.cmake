file(REMOVE_RECURSE
  "CMakeFiles/eddy_scoring.dir/eddy_scoring.cpp.o"
  "CMakeFiles/eddy_scoring.dir/eddy_scoring.cpp.o.d"
  "eddy_scoring"
  "eddy_scoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eddy_scoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
