# Empty compiler generated dependencies file for eddy_components.
# This may be replaced when dependencies are built.
