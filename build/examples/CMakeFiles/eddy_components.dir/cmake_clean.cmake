file(REMOVE_RECURSE
  "CMakeFiles/eddy_components.dir/eddy_components.cpp.o"
  "CMakeFiles/eddy_components.dir/eddy_components.cpp.o.d"
  "eddy_components"
  "eddy_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eddy_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
