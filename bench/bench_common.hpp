// Shared benchmark plumbing: a lazily composed translator and the Fig. 1 /
// Fig. 8 workload programs used across the experiment binaries.
#pragma once

#include <memory>
#include <string>

#include "driver/translator.hpp"
#include "runtime/matio.hpp"
#include "runtime/ssh_synth.hpp"
#include "ext_matrix/matrix_ext.hpp"
#include "ext_refcount/refcount_ext.hpp"
#include "ext_transform/transform_ext.hpp"
#include "interp/interp.hpp"

namespace mmx::bench {

inline driver::Translator& translator(driver::TranslateOptions opts = {}) {
  struct Key {
    bool fusion, slice, par;
    int bounds; // BoundsCheckMode is baked in at compose time
    bool optFuse, optElimTemp, optInplace, optAutopar;
    bool operator<(const Key& o) const {
      return std::tie(fusion, slice, par, bounds, optFuse, optElimTemp,
                      optInplace, optAutopar) <
             std::tie(o.fusion, o.slice, o.par, o.bounds, o.optFuse,
                      o.optElimTemp, o.optInplace, o.optAutopar);
    }
  };
  static std::map<Key, std::unique_ptr<driver::Translator>> cache;
  Key k{opts.fusion,  opts.sliceElimination, opts.autoParallel,
        static_cast<int>(opts.boundsChecks), opts.optFuse,
        opts.optElimTemp, opts.optInplace, opts.optAutopar};
  auto it = cache.find(k);
  if (it == cache.end()) {
    auto t = std::make_unique<driver::Translator>();
    t->addExtension(ext_matrix::matrixExtension());
    t->addExtension(ext_refcount::refcountExtension());
    t->addExtension(ext_transform::transformExtension());
    if (!t->compose(opts))
      throw std::runtime_error(t->renderComposeDiagnostics());
    it = cache.emplace(k, std::move(t)).first;
  }
  return *it->second;
}

/// Writes a synthetic SSH field to /tmp once and returns its path, so the
/// measured programs load it with a cheap readMatrix instead of paying the
/// (serial) synthesizer inside the timed region.
std::string benchDataFile(int64_t nlat, int64_t nlon, int64_t ntime);

/// Fig. 1 temporal-mean program over a pre-generated field, repeating the
/// computation `reps` times so the with-loop dominates the measurement.
inline std::string temporalMeanProgram(int64_t nlat, int64_t nlon,
                                       int64_t ntime,
                                       const std::string& clauses = "",
                                       int reps = 1) {
  return R"(
int main() {
  Matrix float <3> mat = readMatrix(")" +
         benchDataFile(nlat, nlon, ntime) + R"(");
  int m = dimSize(mat, 0);
  int n = dimSize(mat, 1);
  int p = dimSize(mat, 2);
  Matrix float <2> means = init(Matrix float <2>, m, n);
  for (int rep = 0; rep < )" + std::to_string(reps) + R"(; rep++) {
    means = with ([0,0] <= [i,j] < [m,n])
      genarray([m,n],
        (with ([0] <= [k] < [p]) fold(+, 0.0, mat[i,j,k])) / p))" +
         clauses + R"(;
  }
  printFloat(means[0, 0]);
  return 0;
}
)";
}

/// Fig. 8 eddy-scoring program (matrixMap over the time dimension).
inline std::string eddyScoringProgram(int64_t nlat, int64_t nlon,
                                      int64_t ntime) {
  return R"(
(Matrix float <1>, int, int) getTrough(Matrix float <1> ts, int i) {
  int beginning = i;
  int n = dimSize(ts, 0);
  while (i + 1 < n && ts[i] >= ts[i + 1]) { i = i + 1; }
  while (i + 1 < n && ts[i] < ts[i + 1]) { i = i + 1; }
  return (ts[beginning : i], beginning, i);
}
Matrix float <1> computeArea(Matrix float <1> areaOfInterest) {
  float y1 = areaOfInterest[0];
  float y2 = areaOfInterest[end];
  int x2 = dimSize(areaOfInterest, 0) - 1;
  float slope = 0.0;
  if (x2 > 0) { slope = (y1 - y2) / ((float)(0 - x2)); }
  float b = y1;
  Matrix float <1> Line = (0 :: x2) * slope + b;
  float area = with ([0] <= [q] < [dimSize(Line, 0)])
      fold(+, 0.0, Line[q] - areaOfInterest[q]);
  return with ([0] <= [q] < [dimSize(Line, 0)])
      genarray([dimSize(Line, 0)], area);
}
Matrix float <1> scoreTS(Matrix float <1> ts) {
  Matrix float <1> scores = init(Matrix float <1>, dimSize(ts, 0));
  int i = 0;
  int n = dimSize(ts, 0);
  while (i + 1 < n && ts[i] < ts[i + 1]) { i = i + 1; }
  Matrix float <1> trough = init(Matrix float <1>, 1);
  int beginning = 0;
  while (i < n - 1) {
    (trough, beginning, i) = getTrough(ts, i);
    if (i <= beginning) { return scores; }
    scores[beginning : i] = computeArea(trough);
  }
  return scores;
}
int main() {
  Matrix float <3> data = readMatrix(")" +
         benchDataFile(nlat, nlon, ntime) + R"(");
  Matrix float <3> scores = matrixMap(scoreTS, data, [2]);
  printFloat(scores[0, 0, 2]);
  return 0;
}
)";
}

/// Translates once; throws on diagnostics. Keeps the whole result so
/// callers can reach the shapecheck guard plan for Auto-mode backends.
inline driver::TranslateResult compileXc(const std::string& src,
                                         driver::TranslateOptions opts = {}) {
  auto res = translator(opts).translate("bench.xc", src);
  if (!res.ok) throw std::runtime_error(res.renderDiagnostics());
  return res;
}

/// Translates once; throws on diagnostics.
inline std::unique_ptr<ir::Module> compile(const std::string& src,
                                           driver::TranslateOptions opts = {}) {
  return std::move(compileXc(src, opts).module);
}

/// Runs main() once on the given executor.
inline void runOn(const ir::Module& m, rt::Executor& exec) {
  interp::Machine vm(m, exec);
  vm.runMain();
}

/// Runs main() once honoring the translate result's --bounds-checks mode
/// and guard plan (the interpreter-side auto-vs-on comparison).
inline void runOnWithBounds(const driver::TranslateResult& res,
                            rt::Executor& exec) {
  interp::Machine vm(*res.module, exec);
  vm.setBoundsChecks(res.boundsChecks, res.guardPlan);
  vm.runMain();
}

inline std::string benchDataFile(int64_t nlat, int64_t nlon,
                                 int64_t ntime) {
  static std::map<std::string, bool> written;
  std::string path = "/tmp/mmx_bench_" + std::to_string(nlat) + "_" +
                     std::to_string(nlon) + "_" + std::to_string(ntime) +
                     ".mmx";
  if (!written[path]) {
    rt::SshParams p;
    p.nlat = nlat;
    p.nlon = nlon;
    p.ntime = ntime;
    p.numEddies = 4;
    rt::writeMatrixFile(path, rt::synthesizeSsh(p));
    written[path] = true;
  }
  return path;
}

} // namespace mmx::bench

// --- emitted-C benchmarking -------------------------------------------

#include <cstdlib>
#include <fstream>

#include "ir/cemit.hpp"

namespace mmx::bench {

/// Translates + emits C + compiles with the system compiler; returns the
/// binary path (cached per tag). Throws on any failure.
inline std::string compileCBinary(const std::string& src,
                                  driver::TranslateOptions opts,
                                  const std::string& tag) {
  static std::map<std::string, std::string> cache;
  auto it = cache.find(tag);
  if (it != cache.end()) return it->second;
  auto res = compileXc(src, opts);
  ir::CEmitOptions eo;
  eo.boundsChecks = res.boundsChecks;
  eo.plan = res.guardPlan;
  auto c = ir::emitC(*res.module, eo);
  if (!c.ok)
    throw std::runtime_error("emitC: " +
                             (c.errors.empty() ? "?" : c.errors.front()));
  std::string base = "/tmp/mmx_benchc_" + tag;
  std::ofstream(base + ".c") << c.code;
  std::string cmd = "cc -O2 -std=gnu99 -msse4.2 -fopenmp " + base + ".c -o " +
                    base + ".bin -lm 2>" + base + ".err";
  if (std::system(cmd.c_str()) != 0)
    throw std::runtime_error("cc failed for " + tag);
  cache[tag] = base + ".bin";
  return cache[tag];
}

/// Runs a compiled benchmark binary once (stdout discarded).
inline void runCBinary(const std::string& bin) {
  if (std::system((bin + " > /dev/null").c_str()) != 0)
    throw std::runtime_error("benchmark binary failed: " + bin);
}

} // namespace mmx::bench
