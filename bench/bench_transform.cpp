// Experiment C5 (paper §V, Figs. 9-11): the effect of programmer-directed
// transformations on the with-loop's generated code. The paper
// intentionally reports no absolute numbers ("the resulting performance
// is really up to the programmer"); what must reproduce is the mechanism
// and the relative shape: vectorization helps compute-bound inner loops
// (4 x f32 SSE lanes), tiling helps reuse-heavy access patterns, and the
// pipeline composes.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "bench_stats.hpp"

namespace mmx::bench {
namespace {

constexpr int64_t kLat = 32, kLon = 128, kTime = 64;

driver::TranslateOptions manual() {
  driver::TranslateOptions o;
  o.autoParallel = false; // §V: the programmer is in charge
  return o;
}

void runVariant(benchmark::State& state, const std::string& clauses,
                unsigned threads) {
  auto mod = compile(temporalMeanProgram(kLat, kLon, kTime, clauses),
                     manual());
  std::unique_ptr<rt::Executor> exec = rt::makeExecutor(
      threads == 1 ? rt::ExecutorKind::Serial : rt::ExecutorKind::ForkJoin,
      threads);
  for (auto _ : state) runOn(*mod, *exec);
}

void BM_Transform_Baseline(benchmark::State& state) {
  runVariant(state, "", 1);
}
BENCHMARK(BM_Transform_Baseline)->Unit(benchmark::kMillisecond);

void BM_Transform_Split(benchmark::State& state) {
  runVariant(state, " transform { split j by 4, jin, jout; }", 1);
}
BENCHMARK(BM_Transform_Split)->Unit(benchmark::kMillisecond);

void BM_Transform_SplitVectorize(benchmark::State& state) {
  runVariant(state,
             " transform { split j by 4, jin, jout; vectorize jin; }", 1);
}
BENCHMARK(BM_Transform_SplitVectorize)->Unit(benchmark::kMillisecond);

void BM_Transform_Fig9Pipeline(benchmark::State& state) {
  runVariant(state,
             " transform { split j by 4, jin, jout; vectorize jin; "
             "parallelize i; }",
             4);
}
BENCHMARK(BM_Transform_Fig9Pipeline)->Unit(benchmark::kMillisecond);

void BM_Transform_Tile8x8(benchmark::State& state) {
  runVariant(state, " transform { tile i, j by 8, 8; }", 1);
}
BENCHMARK(BM_Transform_Tile8x8)->Unit(benchmark::kMillisecond);

void BM_Transform_Unroll4(benchmark::State& state) {
  runVariant(state, " transform { unroll k by 4; }", 1);
}
BENCHMARK(BM_Transform_Unroll4)->Unit(benchmark::kMillisecond);

void BM_Transform_Reorder(benchmark::State& state) {
  runVariant(state, " transform { reorder j, i; }", 1);
}
BENCHMARK(BM_Transform_Reorder)->Unit(benchmark::kMillisecond);

// Tile-size exploration — "They can more easily experiment with different
// tile sizes ... without having to manually rewrite their code for each
// configuration": a stencil-ish transposed access where tiling matters.
void BM_TileSweep(benchmark::State& state) {
  int64_t tile = state.range(0);
  std::string prog = R"(
int main() {
  Matrix float <2> a = with ([0,0] <= [i,j] < [512,512])
      genarray([512,512], (float)(i + j));
  Matrix float <2> tr = init(Matrix float <2>, 512, 512);
  tr = with ([0,0] <= [i,j] < [512,512])
      genarray([512,512], a[j, i]))" +
                     (tile ? " transform { tile i, j by " +
                                 std::to_string(tile) + ", " +
                                 std::to_string(tile) + "; }"
                           : std::string()) +
                     R"(;
  printFloat(tr[1, 2]);
  return 0;
}
)";
  auto mod = compile(prog, manual());
  rt::SerialExecutor exec;
  for (auto _ : state) runOn(*mod, exec);
  state.counters["tile"] = static_cast<double>(tile);
}
BENCHMARK(BM_TileSweep)
    ->Arg(0)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace mmx::bench
