// Experiment C6 (paper §II, §VI): the cost of the extensible-compiler
// machinery itself — composing grammars, building LALR(1) tables with
// exact lookaheads, running the modular analyses, and parsing through the
// context-aware scanner — as a function of how many extensions the user
// selected. The paper's pitch is that composition is cheap enough to be
// "just another step in the compilation process".
#include <benchmark/benchmark.h>

#include "analysis/determinism.hpp"
#include "analysis/welldef.hpp"
#include "bench_common.hpp"
#include "cminus/host_grammar.hpp"
#include "cminus/sema.hpp"
#include "ext_tuple/tuple_ext.hpp"
#include "bench_stats.hpp"
#include "parse/lalr.hpp"
#include "runtime/pool.hpp"
#include "support/metrics.hpp"

namespace mmx::bench {
namespace {

std::vector<ext::GrammarFragment> fragmentSet(int nExts) {
  std::vector<ext::GrammarFragment> f;
  f.push_back(cm::hostFragment());
  f.push_back(cm::tupleFragment());
  if (nExts >= 1)
    f.push_back(ext_matrix::matrixExtension()->grammarFragment());
  if (nExts >= 2)
    f.push_back(ext_refcount::refcountExtension()->grammarFragment());
  if (nExts >= 3)
    f.push_back(ext_transform::transformExtension()->grammarFragment());
  if (nExts >= 4) f.push_back(cm::tupleAltFragment());
  return f;
}

void BM_ComposeAndBuildTables(benchmark::State& state) {
  int nExts = static_cast<int>(state.range(0));
  auto frags = fragmentSet(nExts);
  for (auto _ : state) {
    grammar::Grammar g;
    DiagnosticEngine diags;
    std::vector<const ext::GrammarFragment*> ptrs;
    for (auto& f : frags) ptrs.push_back(&f);
    if (!ext::composeGrammar(ptrs, g, diags)) state.SkipWithError("compose");
    parse::LalrTables t = parse::LalrTables::build(g);
    benchmark::DoNotOptimize(t.stateCount());
  }
  {
    grammar::Grammar g;
    DiagnosticEngine diags;
    std::vector<const ext::GrammarFragment*> ptrs;
    for (auto& f : frags) ptrs.push_back(&f);
    ext::composeGrammar(ptrs, g, diags);
    parse::LalrTables t = parse::LalrTables::build(g);
    state.counters["extensions"] = nExts;
    state.counters["productions"] = double(g.productions().size());
    state.counters["states"] = double(t.stateCount());
  }
}
BENCHMARK(BM_ComposeAndBuildTables)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_ModularDeterminismAnalysis(benchmark::State& state) {
  auto host = ext::mergeFragments(cm::hostFragment(), cm::tupleFragment(),
                                  "host");
  auto matrix = ext_matrix::matrixExtension()->grammarFragment();
  for (auto _ : state) {
    auto r = analysis::isComposable(host, matrix);
    benchmark::DoNotOptimize(r.composable);
  }
}
BENCHMARK(BM_ModularDeterminismAnalysis)->Unit(benchmark::kMillisecond);

void BM_ParseThroughput(benchmark::State& state) {
  // Parse the Fig. 8 program repeatedly through the full composition.
  auto& t = translator();
  std::string src = eddyScoringProgram(4, 4, 16);
  // Pre-check it parses.
  if (!t.translate("warm.xc", src).ok) state.SkipWithError("translate");
  for (auto _ : state) {
    auto res = t.translate("bench.xc", src);
    benchmark::DoNotOptimize(res.ok);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * src.size());
}
BENCHMARK(BM_ParseThroughput)->Unit(benchmark::kMillisecond);

void BM_MetricsOverhead(benchmark::State& state) {
  // ISSUE 10 satellite: the telemetry tax. The same interpreted Fig. 1
  // with-loop chain runs with the registry dark (Arg 0) and fully lit
  // (Arg 1) — every counter, timer, and histogram hit in the hot paths
  // (pool task latency, allocation size classes, kernel spans) firing on
  // the enabled leg. CI divides the two rows and pins the enabled run at
  // < 3% over baseline; a histogram hit that grows a lock or an
  // allocation shows up here before it shows up in a profile.
  bool lit = state.range(0) != 0;
  static auto mod = compile(temporalMeanProgram(32, 64, 32, "", 2));
  std::unique_ptr<rt::Executor> exec =
      rt::makeExecutor(rt::ExecutorKind::Serial, 1);
  bool was = metrics::enabled();
  metrics::enable(lit);
  for (auto _ : state) runOn(*mod, *exec);
  metrics::enable(was);
  state.counters["metricsEnabled"] = lit ? 1 : 0;
  if (lit) {
    // Attach the histogram row the enabled leg produced, so the baseline
    // check sees the instrumentation actually fired (schema signal, not
    // a timing one).
    metrics::Snapshot snap = metrics::snapshot();
    for (const auto& h : snap.histograms)
      if (h.name == "rt.alloc.size")
        state.counters["rt.alloc.size.count"] = double(h.count);
  }
}
BENCHMARK(BM_MetricsOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_WelldefAnalysis(benchmark::State& state) {
  grammar::Grammar g;
  DiagnosticEngine diags;
  auto frags = fragmentSet(3);
  std::vector<const ext::GrammarFragment*> ptrs;
  for (auto& f : frags) ptrs.push_back(&f);
  ext::composeGrammar(ptrs, g, diags);
  attr::Registry reg;
  cm::Sema sema(diags, reg);
  cm::installHostSemantics(sema);
  ext_matrix::matrixExtension()->installSemantics(sema);
  ext_refcount::refcountExtension()->installSemantics(sema);
  ext_transform::transformExtension()->installSemantics(sema);
  for (auto _ : state) {
    auto r = analysis::checkWellDefined(g, reg);
    benchmark::DoNotOptimize(r.ok);
  }
}
BENCHMARK(BM_WelldefAnalysis)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace mmx::bench
