// Matmul engine benchmarks (ISSUE 4): naive i-k-j versus the tiled,
// packed, SIMD engine, across square and skinny shapes, single-threaded
// and over the fork-join pool — plus the emitted-C blocked matmul under
// increasing OMP_NUM_THREADS. `MMX_STATS_JSON=... ./bench_matmul` also
// dumps the kernel.matmul.* and pool.* counters next to the timings.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>

#include "bench_common.hpp"
#include "bench_stats.hpp"
#include "runtime/backend.hpp"
#include "runtime/gemm.hpp"

namespace mmx::bench {
namespace {

rt::Matrix denseF32(int64_t rows, int64_t cols, uint32_t seed) {
  rt::Matrix m = rt::Matrix::zeros(rt::Elem::F32, {rows, cols});
  uint32_t s = seed * 2654435761u + 1;
  for (int64_t i = 0; i < m.size(); ++i) {
    s = s * 1664525u + 1013904223u;
    m.f32()[i] = static_cast<float>(static_cast<int32_t>(s >> 16) % 97) / 8.0f;
  }
  return m;
}

void setFlops(benchmark::State& state, int64_t m, int64_t k, int64_t n) {
  state.counters["flops"] = benchmark::Counter(
      2.0 * static_cast<double>(m) * static_cast<double>(k) *
          static_cast<double>(n),
      benchmark::Counter::kIsIterationInvariantRate);
}

// ---- square shapes, single thread: the ISSUE's >=3x criterion ---------

void BM_MatmulNaive_F32(benchmark::State& state) {
  int64_t n = state.range(0);
  rt::SerialExecutor ser;
  rt::Matrix a = denseF32(n, n, 1), b = denseF32(n, n, 2);
  for (auto _ : state) {
    rt::Matrix c = rt::matmulNaive(ser, a, b);
    benchmark::DoNotOptimize(c.f32()[0]);
  }
  setFlops(state, n, n, n);
}
BENCHMARK(BM_MatmulNaive_F32)
    ->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_MatmulTiled_F32(benchmark::State& state) {
  int64_t n = state.range(0);
  rt::SerialExecutor ser;
  rt::Matrix a = denseF32(n, n, 1), b = denseF32(n, n, 2);
  for (auto _ : state) {
    rt::Matrix c = rt::matmulTiled(ser, a, b);
    benchmark::DoNotOptimize(c.f32()[0]);
  }
  setFlops(state, n, n, n);
}
BENCHMARK(BM_MatmulTiled_F32)
    ->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// ---- backend registry: per-backend single-thread GEMM (ISSUE 7) -------
// Rows are pinned via BackendOverride, so the row set is identical on
// every MMX_BACKEND matrix leg (the CI baseline gates row presence). A
// backend whose capability probe fails skips with an error instead of
// silently dropping its rows.

void BM_MatmulBackend_F32(benchmark::State& state, const char* backend) {
  int64_t n = state.range(0);
  const rt::KernelBackend* be = rt::findBackend(backend);
  if (!be || !be->available()) {
    state.SkipWithError("backend unavailable on this host");
    return;
  }
  rt::BackendOverride pin(backend);
  rt::SerialExecutor ser;
  rt::Matrix a = denseF32(n, n, 1), b = denseF32(n, n, 2);
  for (auto _ : state) {
    rt::Matrix c = rt::matmul(ser, a, b);
    benchmark::DoNotOptimize(c.f32()[0]);
  }
  setFlops(state, n, n, n);
  state.SetLabel(backend);
}
BENCHMARK_CAPTURE(BM_MatmulBackend_F32, scalar, "scalar")
    ->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MatmulBackend_F32, sse, "sse")
    ->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MatmulBackend_F32, avx, "avx")
    ->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MatmulBackend_F32, avx2fma, "avx2fma")
    ->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

// ---- thread scaling over the 2D tile grid -----------------------------

void BM_MatmulTiled_Threads(benchmark::State& state) {
  unsigned threads = static_cast<unsigned>(state.range(0));
  rt::ForkJoinPool pool(threads);
  rt::Matrix a = denseF32(768, 768, 1), b = denseF32(768, 768, 2);
  for (auto _ : state) {
    rt::Matrix c = rt::matmulTiled(pool, a, b);
    benchmark::DoNotOptimize(c.f32()[0]);
  }
  setFlops(state, 768, 768, 768);
  state.counters["threads"] = threads;
}
BENCHMARK(BM_MatmulTiled_Threads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ---- skinny shapes: the 2D grid must not serialize on the short axis --

void BM_MatmulTallSkinny(benchmark::State& state) {
  // 4096x128 * 128x32: one NC column panel; row panels carry parallelism.
  bool tiled = state.range(0) != 0;
  rt::ForkJoinPool pool(4);
  rt::Matrix a = denseF32(4096, 128, 1), b = denseF32(128, 32, 2);
  for (auto _ : state) {
    rt::Matrix c = tiled ? rt::matmulTiled(pool, a, b)
                         : rt::matmulNaive(pool, a, b);
    benchmark::DoNotOptimize(c.f32()[0]);
  }
  setFlops(state, 4096, 128, 32);
  state.SetLabel(tiled ? "tiled" : "naive");
}
BENCHMARK(BM_MatmulTallSkinny)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_MatmulShortWide(benchmark::State& state) {
  // 32x128 * 128x4096: one MC row panel; column panels carry parallelism.
  bool tiled = state.range(0) != 0;
  rt::ForkJoinPool pool(4);
  rt::Matrix a = denseF32(32, 128, 1), b = denseF32(128, 4096, 2);
  for (auto _ : state) {
    rt::Matrix c = tiled ? rt::matmulTiled(pool, a, b)
                         : rt::matmulNaive(pool, a, b);
    benchmark::DoNotOptimize(c.f32()[0]);
  }
  setFlops(state, 32, 128, 4096);
  state.SetLabel(tiled ? "tiled" : "naive");
}
BENCHMARK(BM_MatmulShortWide)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// ---- emitted C: the blocked OpenMP cores under a thread sweep ---------

std::string matmulDataFile(int64_t rows, int64_t cols, uint32_t seed) {
  static std::map<std::string, bool> written;
  std::string path = "/tmp/mmx_benchmm_" + std::to_string(rows) + "x" +
                     std::to_string(cols) + "_" + std::to_string(seed) +
                     ".mmx";
  if (!written[path]) {
    rt::writeMatrixFile(path, denseF32(rows, cols, seed));
    written[path] = true;
  }
  return path;
}

void BM_EmittedC_MatmulOmp(benchmark::State& state) {
  int64_t n = 512;
  std::string src = R"(
int main() {
  Matrix float <2> a = readMatrix(")" + matmulDataFile(n, n, 1) + R"(");
  Matrix float <2> b = readMatrix(")" + matmulDataFile(n, n, 2) + R"(");
  Matrix float <2> c = a * b;
  printFloat(c[0, 0]);
  return 0;
})";
  std::string bin = compileCBinary(src, {}, "matmul_omp");
  std::string cmd = "OMP_NUM_THREADS=" + std::to_string(state.range(0)) +
                    " " + bin + " > /dev/null";
  for (auto _ : state)
    if (std::system(cmd.c_str()) != 0) {
      state.SkipWithError("emitted matmul binary failed");
      return;
    }
  // The work runs in a child process, so CPU-time-based rate counters
  // would be meaningless here; wall time is the scaling signal.
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_EmittedC_MatmulOmp)
    ->Arg(1)->Arg(2)->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace mmx::bench
