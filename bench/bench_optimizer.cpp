// ISSUE 6 acceptance sweep: the -O1 whole-program optimizer on the
// rep-loop workloads it was built for. The elementwise chain allocates a
// whole-matrix temporary and a result copy per iteration at -O0; at -O1
// fusion absorbs the temporary, in-place rewriting reuses the result
// buffer, and temp elimination deletes the dead allocation — the timing
// pair pins the win, and the pass counters are attached to the -O1 rows
// so the checked-in baseline also records *what* fired (a rewrite
// silently no longer matching shows up as a counter regression even when
// the machine is fast enough to hide the time).
#include <benchmark/benchmark.h>

#include "analysis/depend.hpp"
#include "bench_common.hpp"
#include "bench_stats.hpp"
#include "ir/optimize.hpp"
#include "runtime/pool.hpp"

namespace mmx::bench {
namespace {

driver::TranslateOptions o1Opts() {
  driver::TranslateOptions opts;
  opts.optFuse = opts.optElimTemp = opts.optInplace = true;
  return opts;
}

/// Producer -> temporary -> consumer chain inside a rep loop. `out` is
/// initialized before the loop so its shape is loop-invariant and the
/// in-place pass can retarget the body's allocation.
std::string chainProgram(int m, int n, int reps) {
  std::string M = std::to_string(m), N = std::to_string(n);
  return R"(
int main() {
  int m = )" + M + R"(;
  int n = )" + N + R"(;
  Matrix float <2> base = with ([0,0] <= [i,j] < [m,n])
      genarray([m,n], i * 0.5 + j * 0.25);
  Matrix float <2> out = init(Matrix float <2>, m, n);
  for (int rep = 0; rep < )" + std::to_string(reps) + R"(; rep++) {
    Matrix float <2> tmp = with ([0,0] <= [i,j] < [m,n])
        genarray([m,n], base[i, j] * 2.0 + 1.0);
    out = with ([0,0] <= [i,j] < [m,n])
        genarray([m,n], tmp[i, j] + rep * 1.0);
  }
  printFloat(out[0, 0]);
  return 0;
}
)";
}

constexpr int kM = 48, kN = 96, kReps = 20;

/// Pass counters for the workload, attached to the -O1 rows: translate
/// without the optimizer, then run it directly so OptStats is observable.
ir::OptStats chainStats() {
  auto mod = compile(chainProgram(kM, kN, kReps));
  return ir::optimizeModule(*mod, ir::OptOptions::o1());
}

void attach(benchmark::State& state, const ir::OptStats& s) {
  state.counters["opt.fused"] = double(s.fused);
  state.counters["opt.temps"] = double(s.tempsEliminated);
  state.counters["opt.inplace"] = double(s.inplaceConverted);
  state.counters["opt.aliasBlocked"] = double(s.aliasBlocked);
}

void BM_ElementwiseChainO0(benchmark::State& state) {
  static auto mod = compile(chainProgram(kM, kN, kReps));
  rt::SerialExecutor exec;
  for (auto _ : state) runOn(*mod, exec);
  state.counters["cells"] = double(kM * kN);
}
BENCHMARK(BM_ElementwiseChainO0)->Unit(benchmark::kMillisecond);

void BM_ElementwiseChainO1(benchmark::State& state) {
  static auto mod = compile(chainProgram(kM, kN, kReps), o1Opts());
  rt::SerialExecutor exec;
  for (auto _ : state) runOn(*mod, exec);
  static ir::OptStats s = chainStats();
  attach(state, s);
}
BENCHMARK(BM_ElementwiseChainO1)->Unit(benchmark::kMillisecond);

// The Fig. 1 temporal mean (declare-then-overwrite + nested fold): the
// headline example program, pinned at both levels.
constexpr int64_t kLat = 48, kLon = 96, kTime = 16;

void BM_TemporalMeanO0(benchmark::State& state) {
  static auto mod = compile(temporalMeanProgram(kLat, kLon, kTime, "", 3));
  rt::SerialExecutor exec;
  for (auto _ : state) runOn(*mod, exec);
}
BENCHMARK(BM_TemporalMeanO0)->Unit(benchmark::kMillisecond);

void BM_TemporalMeanO1(benchmark::State& state) {
  static auto mod =
      compile(temporalMeanProgram(kLat, kLon, kTime, "", 3), o1Opts());
  rt::SerialExecutor exec;
  for (auto _ : state) runOn(*mod, exec);
  static ir::OptStats s = [] {
    auto m = compile(temporalMeanProgram(kLat, kLon, kTime, "", 3));
    return ir::optimizeModule(*m, ir::OptOptions::o1());
  }();
  attach(state, s);
}
BENCHMARK(BM_TemporalMeanO1)->Unit(benchmark::kMillisecond);

// ISSUE 8 acceptance chain: the autopar pass on a host-loop workload the
// §III-C auto-parallelizer never touches. The rep loop carries a
// store-store dependence on `out` (every rep overwrites the same cells),
// so autopar must leave it serial and count it blocked; the inner row
// loop is provably independent, so it promotes. Both rows run on the
// same fork-join pool, so the timing delta isolates the promotion; the
// counters are the machine-independent part of the checked-in
// BENCH_autopar.json baseline (exact on promoted, presence on depend.*).
std::string hostChainProgram(int m, int n, int reps) {
  std::string M = std::to_string(m), N = std::to_string(n);
  return R"(
int main() {
  int m = )" + M + R"(;
  int n = )" + N + R"(;
  Matrix float <2> base = with ([0,0] <= [i,j] < [m,n])
      genarray([m,n], i * 0.5 + j * 0.25);
  Matrix float <2> out = init(Matrix float <2>, m, n);
  for (int rep = 0; rep < )" + std::to_string(reps) + R"(; rep++) {
    for (int i = 0; i < m; i++) {
      for (int j = 0; j < n; j++) {
        float s = base[i, j] * 2.0 + rep * 1.0;
        out[i, j] = s + base[i, j] * 0.25;
      }
    }
  }
  printFloat(out[0, 0]);
  return 0;
}
)";
}

driver::TranslateOptions autoparOpts() {
  driver::TranslateOptions opts;
  opts.optAutopar = true; // isolate the pass: no fuse/elim-temp/inplace
  return opts;
}

void attachAutopar(benchmark::State& state) {
  // Pass + dependence counters, recomputed on an unoptimized module so
  // the numbers are observable (and machine-independent for the gate).
  static ir::OptStats os = [] {
    auto m = compile(hostChainProgram(kM, kN, kReps));
    ir::OptOptions oo;
    oo.autopar = true;
    return ir::optimizeModule(*m, oo);
  }();
  static analysis::DependStats ds = [] {
    auto m = compile(hostChainProgram(kM, kN, kReps));
    analysis::DependStats s;
    analysis::Depend(*m).analyzeModule(&s);
    return s;
  }();
  state.counters["opt.autopar.promoted"] = double(os.autoparPromoted);
  state.counters["opt.autopar.blocked"] = double(os.autoparBlocked);
  state.counters["depend.nests"] = double(ds.nests);
  state.counters["depend.vectors"] = double(ds.vectors);
  state.counters["depend.unknown"] = double(ds.unknown);
}

void BM_AutoparHostChainOff(benchmark::State& state) {
  static auto mod = compile(hostChainProgram(kM, kN, kReps));
  rt::ForkJoinPool pool(4);
  for (auto _ : state) runOn(*mod, pool);
}
BENCHMARK(BM_AutoparHostChainOff)->Unit(benchmark::kMillisecond);

void BM_AutoparHostChainOn(benchmark::State& state) {
  static auto mod = compile(hostChainProgram(kM, kN, kReps), autoparOpts());
  rt::ForkJoinPool pool(4);
  for (auto _ : state) runOn(*mod, pool);
  attachAutopar(state);
}
BENCHMARK(BM_AutoparHostChainOn)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace mmx::bench
