// Stats emission for the benchmark binaries: when MMX_STATS_JSON names a
// file, metrics are enabled for the whole run and the flat counter/timer
// JSON (the same format as `mmc --stats-json`) is written there at exit.
// The benches use benchmark_main, so this hooks process start/end from a
// static registrar instead of a custom main().
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "support/metrics.hpp"

namespace mmx::bench {

class StatsJsonAtExit {
public:
  StatsJsonAtExit() {
    const char* path = std::getenv("MMX_STATS_JSON");
    if (!path || !*path) return;
    path_ = path;
    metrics::enable(true);
  }
  ~StatsJsonAtExit() {
    if (path_.empty()) return;
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write %s\n", path_.c_str());
      return;
    }
    out << metrics::renderStatsJson(metrics::snapshot());
  }

private:
  std::string path_;
};

// One registrar per binary (the header is included once per bench .cpp).
inline StatsJsonAtExit g_statsJsonAtExit;

} // namespace mmx::bench
