// Stats emission for the benchmark binaries: when MMX_STATS_JSON names a
// file, metrics are enabled for the whole run and the flat counter/timer
// JSON (the same format as `mmc --stats-json`) is written there at exit.
// The benches use benchmark_main, so this hooks process start/end from a
// static registrar instead of a custom main().
//
// Both outputs a bench binary can produce — the google-benchmark report
// (--benchmark_out) and the flat stats file — are stamped with host.*
// fields (CPU model, core count, compiler, OS), so a checked-in baseline
// records what machine produced it and `mmx-stats diff` can surface an
// apples-to-oranges comparison instead of a phantom regression.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#if __has_include(<sys/utsname.h>)
#include <sys/utsname.h>
#define MMX_BENCH_HAVE_UTSNAME 1
#endif

#include <benchmark/benchmark.h>

#include "support/metrics.hpp"

namespace mmx::bench {

/// Host facts worth pinning to a benchmark result. Values are best-effort:
/// a field that cannot be determined reports "unknown" rather than
/// disappearing, so baseline diffs always see the same key set.
inline std::vector<std::pair<std::string, std::string>> hostInfo() {
  std::string cpu = "unknown";
  std::ifstream cpuinfo("/proc/cpuinfo");
  for (std::string line; std::getline(cpuinfo, line);) {
    if (line.rfind("model name", 0) != 0) continue;
    size_t colon = line.find(':');
    if (colon != std::string::npos) {
      size_t start = line.find_first_not_of(" \t", colon + 1);
      if (start != std::string::npos) cpu = line.substr(start);
    }
    break;
  }
  std::string os = "unknown";
#ifdef MMX_BENCH_HAVE_UTSNAME
  if (utsname u; uname(&u) == 0)
    os = std::string(u.sysname) + " " + u.release;
#endif
  return {
      {"host.cpu", cpu},
      {"host.cores", std::to_string(std::thread::hardware_concurrency())},
#ifdef __VERSION__
      {"host.compiler", __VERSION__},
#else
      {"host.compiler", "unknown"},
#endif
      {"host.os", os},
  };
}

class StatsJsonAtExit {
public:
  StatsJsonAtExit() {
    // Into the google-benchmark report's "context" object, for every run
    // of this binary (AddCustomContext is safe before Initialize()).
    for (const auto& [k, v] : hostInfo()) benchmark::AddCustomContext(k, v);
    const char* path = std::getenv("MMX_STATS_JSON");
    if (!path || !*path) return;
    path_ = path;
    metrics::enable(true);
  }
  ~StatsJsonAtExit() {
    if (path_.empty()) return;
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write %s\n", path_.c_str());
      return;
    }
    // Splice the host.* strings into the flat object right after the
    // opening brace; the numeric counters/timers follow unchanged.
    std::string body = metrics::renderStatsJson(metrics::snapshot());
    std::ostringstream host;
    for (const auto& [k, v] : hostInfo()) {
      host << "  \"" << k << "\": \"";
      for (char c : v) {
        if (c == '"' || c == '\\') host << '\\';
        host << c;
      }
      host << "\",\n";
    }
    std::string hs = host.str();
    size_t brace = body.find("{\n");
    if (brace != std::string::npos) {
      // An empty snapshot renders as "{\n\n}\n": the spliced host block
      // must not leave a trailing comma before the closing brace.
      if (body.compare(brace + 2, 2, "\n}") == 0 && hs.size() >= 2)
        hs.replace(hs.size() - 2, 2, "\n");
      body.insert(brace + 2, hs);
    }
    out << body;
  }

private:
  std::string path_;
};

// One registrar per binary (the header is included once per bench .cpp).
inline StatsJsonAtExit g_statsJsonAtExit;

} // namespace mmx::bench
