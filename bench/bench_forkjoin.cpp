// Experiment C2 (paper §III-C): the enhanced fork-join model — workers
// spawned once and parked in a spin gate — versus the naive model that
// creates and destroys threads per parallel region. The paper adopts the
// former because "if there is a lot of disjoint parallel computation to
// be done, then the program pays the price of creating and destroying
// threads each time".
#include <benchmark/benchmark.h>

#include <atomic>

#include "bench_stats.hpp"
#include "runtime/pool.hpp"

namespace mmx::bench {
namespace {

void tinyBody(void* ctx, int64_t lo, int64_t hi, unsigned) {
  auto* sum = static_cast<std::atomic<int64_t>*>(ctx);
  int64_t s = 0;
  for (int64_t i = lo; i < hi; ++i) s += i;
  sum->fetch_add(s, std::memory_order_relaxed);
}

/// Dispatch latency: many tiny regions — the worst case for per-region
/// thread creation, the paper's motivating scenario.
void BM_EnhancedForkJoin_TinyRegions(benchmark::State& state) {
  unsigned threads = static_cast<unsigned>(state.range(0));
  rt::ForkJoinPool pool(threads);
  std::atomic<int64_t> sum{0};
  for (auto _ : state) pool.parallelFor(0, 64, tinyBody, &sum);
  benchmark::DoNotOptimize(sum.load());
  state.counters["threads"] = threads;
}
BENCHMARK(BM_EnhancedForkJoin_TinyRegions)
    ->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void BM_NaiveForkJoin_TinyRegions(benchmark::State& state) {
  unsigned threads = static_cast<unsigned>(state.range(0));
  rt::NaiveForkJoin naive(threads);
  std::atomic<int64_t> sum{0};
  for (auto _ : state) naive.parallelFor(0, 64, tinyBody, &sum);
  benchmark::DoNotOptimize(sum.load());
  state.counters["threads"] = threads;
}
BENCHMARK(BM_NaiveForkJoin_TinyRegions)
    ->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

/// Larger bodies: the dispatch overhead amortizes; both models converge.
void workBody(void* ctx, int64_t lo, int64_t hi, unsigned) {
  auto* sum = static_cast<std::atomic<double>*>(ctx);
  double s = 0;
  for (int64_t i = lo; i < hi; ++i) s += static_cast<double>(i) * 1.0001;
  double cur = sum->load(std::memory_order_relaxed);
  while (!sum->compare_exchange_weak(cur, cur + s)) {
  }
}

void BM_EnhancedForkJoin_LargeRegions(benchmark::State& state) {
  rt::ForkJoinPool pool(4);
  std::atomic<double> sum{0};
  for (auto _ : state) pool.parallelFor(0, 1 << 18, workBody, &sum);
  state.counters["threads"] = 4;
}
BENCHMARK(BM_EnhancedForkJoin_LargeRegions)->Unit(benchmark::kMicrosecond);

void BM_NaiveForkJoin_LargeRegions(benchmark::State& state) {
  rt::NaiveForkJoin naive(4);
  std::atomic<double> sum{0};
  for (auto _ : state) naive.parallelFor(0, 1 << 18, workBody, &sum);
  state.counters["threads"] = 4;
}
BENCHMARK(BM_NaiveForkJoin_LargeRegions)->Unit(benchmark::kMicrosecond);

/// Raw thread create/join cost, for reference: what the naive model pays
/// per region before any useful work happens.
void BM_RawThreadCreateJoin(benchmark::State& state) {
  for (auto _ : state) {
    std::thread t([] {});
    t.join();
  }
}
BENCHMARK(BM_RawThreadCreateJoin)->Unit(benchmark::kMicrosecond);

} // namespace
} // namespace mmx::bench
