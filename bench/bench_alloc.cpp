// Experiment C4 (paper §III-C): memory-allocator behaviour under the
// matrix workload's allocation pattern. The paper observes that naive
// mutex-protected malloc scales poorly under parallel contention and that
// arena designs behave better. We compare a global-mutex free-list
// allocator against per-thread bump arenas, both standalone and as the
// backing store of the refcount cells (setRcAllocHooks).
#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "runtime/alloc.hpp"
#include "runtime/matrix.hpp"
#include "bench_stats.hpp"
#include "runtime/pool.hpp"
#include "runtime/refcount.hpp"

namespace mmx::bench {
namespace {

constexpr int kAllocsPerIter = 512;
constexpr size_t kBytes = 4096; // a small with-loop temporary

void BM_MutexAllocator_1Thread(benchmark::State& state) {
  auto& a = rt::MutexAllocator::instance();
  for (auto _ : state) {
    for (int i = 0; i < kAllocsPerIter; ++i) {
      void* p = a.allocate(kBytes);
      benchmark::DoNotOptimize(p);
      a.deallocate(p);
    }
  }
  a.trim();
  state.counters["locks/iter"] = 2.0 * kAllocsPerIter;
}
BENCHMARK(BM_MutexAllocator_1Thread)->Unit(benchmark::kMicrosecond);

void BM_ArenaAllocator_1Thread(benchmark::State& state) {
  auto& a = rt::ArenaAllocator::instance();
  for (auto _ : state) {
    for (int i = 0; i < kAllocsPerIter; ++i) {
      void* p = a.allocate(kBytes);
      benchmark::DoNotOptimize(p);
      a.deallocate(p);
    }
    a.reset();
  }
  state.counters["locks/iter"] = 0;
}
BENCHMARK(BM_ArenaAllocator_1Thread)->Unit(benchmark::kMicrosecond);

template <class AllocFn, class FreeFn>
void contend(unsigned threads, AllocFn&& alloc, FreeFn&& dealloc) {
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < threads; ++t)
    ts.emplace_back([&] {
      for (int i = 0; i < kAllocsPerIter; ++i) {
        void* p = alloc(kBytes);
        benchmark::DoNotOptimize(p);
        dealloc(p);
      }
    });
  for (auto& t : ts) t.join();
}

void BM_MutexAllocator_Contended(benchmark::State& state) {
  auto& a = rt::MutexAllocator::instance();
  unsigned threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state)
    contend(threads, [&](size_t b) { return a.allocate(b); },
            [&](void* p) { a.deallocate(p); });
  a.trim();
  state.counters["threads"] = threads;
}
BENCHMARK(BM_MutexAllocator_Contended)
    ->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void BM_ArenaAllocator_Contended(benchmark::State& state) {
  auto& a = rt::ArenaAllocator::instance();
  unsigned threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    contend(threads, [&](size_t b) { return a.allocate(b); },
            [&](void* p) { a.deallocate(p); });
    a.reset();
  }
  state.counters["threads"] = threads;
}
BENCHMARK(BM_ArenaAllocator_Contended)
    ->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

/// Matrix churn through the refcount cells, with each allocator behind
/// them — the actual §III-C scenario (with-loop temporaries).
void matrixChurn(rt::Executor& exec) {
  exec.run(0, 256, [](int64_t lo, int64_t hi, unsigned) {
    for (int64_t i = lo; i < hi; ++i) {
      rt::Matrix m = rt::Matrix::zeros(rt::Elem::F32, {32, 8});
      m.f32()[0] = static_cast<float>(i);
      benchmark::DoNotOptimize(m.f32());
    } // released here
  });
}

void BM_MatrixChurn_DefaultAllocator(benchmark::State& state) {
  rt::ForkJoinPool pool(4);
  for (auto _ : state) matrixChurn(pool);
}
BENCHMARK(BM_MatrixChurn_DefaultAllocator)->Unit(benchmark::kMicrosecond);

void BM_MatrixChurn_MutexAllocator(benchmark::State& state) {
  rt::setRcAllocHooks({rt::mutexAllocHook, rt::mutexFreeHook});
  rt::ForkJoinPool pool(4);
  for (auto _ : state) matrixChurn(pool);
  rt::setRcAllocHooks({});
  rt::MutexAllocator::instance().trim();
}
BENCHMARK(BM_MatrixChurn_MutexAllocator)->Unit(benchmark::kMicrosecond);

void BM_MatrixChurn_ArenaAllocator(benchmark::State& state) {
  rt::setRcAllocHooks({rt::arenaAllocHook, rt::arenaFreeHook});
  rt::ForkJoinPool pool(4);
  for (auto _ : state) {
    matrixChurn(pool);
    rt::ArenaAllocator::instance().reset();
  }
  rt::setRcAllocHooks({});
}
BENCHMARK(BM_MatrixChurn_ArenaAllocator)->Unit(benchmark::kMicrosecond);

} // namespace
} // namespace mmx::bench
