// Experiment C4 (paper §III-C): memory-allocator behaviour under the
// matrix workload's allocation pattern. The paper observes that naive
// mutex-protected malloc scales poorly under parallel contention and that
// arena designs behave better. ISSUE 9 promotes that observation into the
// production memory subsystem (runtime/memsys.hpp): the rows below compare
// the three selectable strategies — system (per-block new/delete), cache
// (thread-caching magazines over size classes), arena (per-thread bump
// chunks) — on raw parallel churn, on matrix churn through the refcount
// cells, and on an interpreted with-loop chain, plus the legacy
// global-mutex free list as the paper's contention strawman.
//
// Under MMX_STATS_JSON the run also lands the machine-independent
// rt.alloc.cache.{hits,misses,flushes} counters (bench_stats.hpp).
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_common.hpp"
#include "bench_stats.hpp"
#include "runtime/alloc.hpp"
#include "runtime/matrix.hpp"
#include "runtime/memsys.hpp"
#include "runtime/pool.hpp"
#include "runtime/refcount.hpp"

namespace mmx::bench {
namespace {

constexpr int kAllocsPerIter = 512;
constexpr size_t kBytes = 4096; // a small with-loop temporary

// --- raw strategy churn (the headline system-vs-cache comparison) -------

/// One churn burst: with-loop-temporary sizes through a small live
/// window, so magazines see both immediate reuse and depth. Runs on
/// google-benchmark's own threads (->Threads(n)) — spawn cost stays
/// outside the timed region, unlike hand-rolled std::thread fan-out.
void rawChurnBurst(unsigned t) {
  void* window[8] = {};
  for (int i = 0; i < kAllocsPerIter; ++i) {
    size_t bytes = 64 + static_cast<size_t>((t * 37 + i * 61) % 4096);
    void* p = rt::msAlloc(bytes);
    static_cast<char*>(p)[0] = static_cast<char>(i);
    benchmark::DoNotOptimize(p);
    void*& slot = window[i % 8];
    if (slot) rt::msFree(slot);
    slot = p;
  }
  for (void* p : window)
    if (p) rt::msFree(p);
}

/// Setup/Teardown run once per benchmark run, before the worker threads
/// start and after they join — the safe points to flip the process-wide
/// selection and return the cached pages.
void pinSystem(const benchmark::State&) { rt::selectAllocator("system"); }
void pinCache(const benchmark::State&) { rt::selectAllocator("cache"); }
void pinArena(const benchmark::State&) { rt::selectAllocator("arena"); }
void unpin(const benchmark::State&) {
  rt::msTrim();
  rt::selectAllocator("auto");
}

void memsysChurn(benchmark::State& state) {
  rt::MsCacheStats before = rt::msCacheStats();
  for (auto _ : state)
    rawChurnBurst(static_cast<unsigned>(state.thread_index()));
  rt::MsCacheStats after = rt::msCacheStats();
  uint64_t lookups = (after.hits - before.hits) +
                     (after.misses - before.misses);
  if (lookups) // cache only; system/arena never touch the magazines
    state.counters["cache.hitRate"] = benchmark::Counter(
        double(after.hits - before.hits) / double(lookups),
        benchmark::Counter::kAvgThreads);
}

void BM_MemsysChurn_System(benchmark::State& state) { memsysChurn(state); }
BENCHMARK(BM_MemsysChurn_System)
    ->Setup(pinSystem)->Teardown(unpin)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();

void BM_MemsysChurn_Cache(benchmark::State& state) { memsysChurn(state); }
BENCHMARK(BM_MemsysChurn_Cache)
    ->Setup(pinCache)->Teardown(unpin)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();

/// Arena frees are deferred, so an open-ended churn loop would only grow:
/// the arena row runs its intended phase pattern instead — one burst,
/// then the quiescent-point trim that recycles the chunks — and stays
/// single-threaded (trim requires no concurrent allocators).
void BM_MemsysChurn_ArenaPhase(benchmark::State& state) {
  for (auto _ : state) {
    rawChurnBurst(0);
    rt::msTrim();
  }
}
BENCHMARK(BM_MemsysChurn_ArenaPhase)
    ->Setup(pinArena)->Teardown(unpin)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();

// --- the paper's strawman: one mutex around every alloc -----------------

void BM_MutexAllocator_Contended(benchmark::State& state) {
  auto& a = rt::MutexAllocator::instance();
  for (auto _ : state) {
    for (int i = 0; i < kAllocsPerIter; ++i) {
      void* p = a.allocate(kBytes);
      benchmark::DoNotOptimize(p);
      a.deallocate(p);
    }
  }
  if (state.thread_index() == 0) {
    a.trim();
    state.counters["locks/alloc"] = 2;
  }
}
BENCHMARK(BM_MutexAllocator_Contended)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();

// --- matrix churn through the refcount cells (rcAlloc backing store) ----

/// The actual §III-C scenario: with-loop temporaries allocated and
/// released inside a parallel region, through rcAlloc's default path.
void matrixChurn(rt::Executor& exec) {
  exec.run(0, 256, [](int64_t lo, int64_t hi, unsigned) {
    for (int64_t i = lo; i < hi; ++i) {
      rt::Matrix m = rt::Matrix::zeros(rt::Elem::F32, {32, 8});
      m.f32()[0] = static_cast<float>(i);
      benchmark::DoNotOptimize(m.f32());
    } // released here
  });
}

/// `trimEachIter` is the arena contract: between exec.run() calls the
/// pool workers are idle, so the quiescent-point trim that hands the
/// deferred chunks back is legal — and part of what the row measures.
void matrixChurnUnder(benchmark::State& state, const char* strategy,
                      bool trimEachIter = false) {
  rt::AllocatorOverride pin(strategy);
  rt::ForkJoinPool pool(4);
  for (auto _ : state) {
    matrixChurn(pool);
    if (trimEachIter) rt::msTrim();
  }
  rt::msTrim();
}

void BM_MatrixChurn_System(benchmark::State& state) {
  matrixChurnUnder(state, "system");
}
BENCHMARK(BM_MatrixChurn_System)->Unit(benchmark::kMicrosecond);

void BM_MatrixChurn_Cache(benchmark::State& state) {
  matrixChurnUnder(state, "cache");
}
BENCHMARK(BM_MatrixChurn_Cache)->Unit(benchmark::kMicrosecond);

void BM_MatrixChurn_Arena(benchmark::State& state) {
  matrixChurnUnder(state, "arena", /*trimEachIter=*/true);
}
BENCHMARK(BM_MatrixChurn_Arena)->Unit(benchmark::kMicrosecond);

/// Explicit hook installation still bypasses the subsystem entirely —
/// the pre-memsys comparison rows kept as a reference point.
void BM_MatrixChurn_MutexHooks(benchmark::State& state) {
  rt::setRcAllocHooks({rt::mutexAllocHook, rt::mutexFreeHook});
  rt::ForkJoinPool pool(4);
  for (auto _ : state) matrixChurn(pool);
  rt::setRcAllocHooks({});
  rt::MutexAllocator::instance().trim();
}
BENCHMARK(BM_MatrixChurn_MutexHooks)->Unit(benchmark::kMicrosecond);

// --- interpreted with-loop chain under each strategy --------------------

/// A file-free chain of with-loop temporaries: every iteration allocates
/// a fresh [n,n] genarray result and folds it away, so the interpreter's
/// alloc/free cycle dominates once the arithmetic is this cheap.
std::string withLoopChainProgram() {
  return R"(
int main() {
  int n = 96;
  Matrix float <2> a = init(Matrix float <2>, n, n);
  a = with ([0,0] <= [i,j] < [n,n]) genarray([n,n], i * 0.25 + j);
  float acc = 0.0;
  for (int rep = 0; rep < 24; rep = rep + 1) {
    Matrix float <2> t = init(Matrix float <2>, n, n);
    t = with ([0,0] <= [i,j] < [n,n])
        genarray([n,n], a[i, j] * 1.0001);
    acc = acc + with ([0,0] <= [i,j] < [n,n]) fold(+, 0.0, t[i, j]);
  }
  printFloat(acc);
  return 0;
}
)";
}

void withLoopChainUnder(benchmark::State& state, const char* strategy,
                        bool trimEachIter = false) {
  static auto mod = compile(withLoopChainProgram());
  rt::AllocatorOverride pin(strategy);
  rt::ForkJoinPool pool(4);
  for (auto _ : state) {
    runOn(*mod, pool);
    if (trimEachIter) rt::msTrim();
  }
  rt::msTrim();
}

void BM_WithLoopChain_System(benchmark::State& state) {
  withLoopChainUnder(state, "system");
}
BENCHMARK(BM_WithLoopChain_System)->Unit(benchmark::kMillisecond);

void BM_WithLoopChain_Cache(benchmark::State& state) {
  withLoopChainUnder(state, "cache");
}
BENCHMARK(BM_WithLoopChain_Cache)->Unit(benchmark::kMillisecond);

void BM_WithLoopChain_Arena(benchmark::State& state) {
  withLoopChainUnder(state, "arena", /*trimEachIter=*/true);
}
BENCHMARK(BM_WithLoopChain_Arena)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace mmx::bench
