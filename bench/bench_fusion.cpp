// Experiment C3 (paper §III-A4): the high-level optimizations that make
// the language-extension approach beat a library. (a) With-loop/assignment
// fusion: "a library implementation ... would likely evaluate the result
// of the with-loops into a temporary variable which is then copied" — the
// extension moves the assignment and avoids the extraneous copy. (b) Fold
// slice elimination: "the matrix indexing in line 11 ... was removed"
// because the fold iterates one dimension of mat directly instead of a
// copied slice.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "bench_stats.hpp"

namespace mmx::bench {
namespace {

constexpr int64_t kLat = 48, kLon = 96, kTime = 48;

/// Fusion workload: the with-loop result is the same size as the work
/// done (element-wise update), so the library's extra temporary copy is a
/// constant fraction of the runtime rather than noise.
std::string elementwiseProgram(int reps) {
  return R"(
int main() {
  Matrix float <3> mat = readMatrix(")" +
         benchDataFile(kLat, kLon, kTime) + R"(");
  int m = dimSize(mat, 0);
  int n = dimSize(mat, 1);
  Matrix float <2> out = init(Matrix float <2>, m, n);
  for (int rep = 0; rep < )" + std::to_string(reps) + R"(; rep++) {
    out = with ([0,0] <= [i,j] < [m,n])
        genarray([m,n], mat[i, j, 0] * 2.0 + 1.0);
  }
  printFloat(out[0, 0]);
  return 0;
}
)";
}

void BM_Fused(benchmark::State& state) {
  static auto mod = compile(elementwiseProgram(20));
  rt::SerialExecutor exec;
  for (auto _ : state) runOn(*mod, exec);
  state.counters["cells"] = double(kLat * kLon);
}
BENCHMARK(BM_Fused)->Unit(benchmark::kMillisecond);

void BM_UnfusedLibraryCopy(benchmark::State& state) {
  driver::TranslateOptions opts;
  opts.fusion = false; // temp-then-copy, as a library would behave
  static auto mod = compile(elementwiseProgram(20), opts);
  rt::SerialExecutor exec;
  for (auto _ : state) runOn(*mod, exec);
}
BENCHMARK(BM_UnfusedLibraryCopy)->Unit(benchmark::kMillisecond);

void BM_SliceEliminated(benchmark::State& state) {
  static auto mod = compile(temporalMeanProgram(kLat, kLon, kTime, "", 3));
  rt::SerialExecutor exec;
  for (auto _ : state) runOn(*mod, exec);
}
BENCHMARK(BM_SliceEliminated)->Unit(benchmark::kMillisecond);

void BM_SliceMaterialized(benchmark::State& state) {
  driver::TranslateOptions opts;
  opts.sliceElimination = false; // selector machinery per element access
  static auto mod =
      compile(temporalMeanProgram(kLat, kLon, kTime, "", 3), opts);
  rt::SerialExecutor exec;
  for (auto _ : state) runOn(*mod, exec);
}
BENCHMARK(BM_SliceMaterialized)->Unit(benchmark::kMillisecond);

// The explicit library-style formulation a user would write without the
// extension's cross-construct view: extract (copy) each point's time
// series, then fold over the copy — the materialized slice the paper's
// optimization removes.
void BM_ExplicitSliceProgram(benchmark::State& state) {
  static auto mod = compile(R"(
float sumSlice(Matrix float <1> ts) {
  return with ([0] <= [k] < [dimSize(ts, 0)]) fold(+, 0.0, ts[k]);
}
int main() {
  Matrix float <3> mat = readMatrix(")" +
                            benchDataFile(kLat, kLon, kTime) + R"(");
  int m = dimSize(mat, 0);
  int n = dimSize(mat, 1);
  int p = dimSize(mat, 2);
  Matrix float <2> means = init(Matrix float <2>, m, n);
  for (int rep = 0; rep < 3; rep++) {
    means = with ([0,0] <= [i,j] < [m,n])
      genarray([m,n], sumSlice(mat[i, j, :]) / p);
  }
  printFloat(means[0, 0]);
  return 0;
}
)");
  rt::SerialExecutor exec;
  for (auto _ : state) runOn(*mod, exec);
}
BENCHMARK(BM_ExplicitSliceProgram)->Unit(benchmark::kMillisecond);

// ---- the same comparisons at emitted-C speed ---------------------------
// The paper's optimizations live in the *generated C*; the interpreter
// numbers above under-state them (tree-walking overhead dominates). These
// variants compile the emitted C with the system compiler and run the
// binaries (timings include ~1 ms of process startup).

constexpr int64_t cLat = 96, cLon = 192, cTime = 96;

void BM_EmittedC_SliceEliminated(benchmark::State& state) {
  std::string bin =
      compileCBinary(temporalMeanProgram(cLat, cLon, cTime, "", 40), {},
                     "slice_on");
  for (auto _ : state) runCBinary(bin);
}
BENCHMARK(BM_EmittedC_SliceEliminated)->Unit(benchmark::kMillisecond);

void BM_EmittedC_SliceMaterialized(benchmark::State& state) {
  driver::TranslateOptions opts;
  opts.sliceElimination = false;
  std::string bin =
      compileCBinary(temporalMeanProgram(cLat, cLon, cTime, "", 40), opts,
                     "slice_off");
  for (auto _ : state) runCBinary(bin);
}
BENCHMARK(BM_EmittedC_SliceMaterialized)->Unit(benchmark::kMillisecond);

void BM_EmittedC_Fused(benchmark::State& state) {
  std::string bin =
      compileCBinary(elementwiseProgram(4000), {}, "fuse_on");
  for (auto _ : state) runCBinary(bin);
}
BENCHMARK(BM_EmittedC_Fused)->Unit(benchmark::kMillisecond);

void BM_EmittedC_UnfusedLibraryCopy(benchmark::State& state) {
  driver::TranslateOptions opts;
  opts.fusion = false;
  std::string bin =
      compileCBinary(elementwiseProgram(4000), opts, "fuse_off");
  for (auto _ : state) runCBinary(bin);
}
BENCHMARK(BM_EmittedC_UnfusedLibraryCopy)->Unit(benchmark::kMillisecond);

// ---- runtime-guard elision (ISSUE 3) -----------------------------------
// The affine-index kernels above are exactly the programs where the
// shapecheck pass proves every guard redundant: --bounds-checks=auto
// drops the per-access checks from the emitted C, on keeps the
// historical (byte-identical) output. CI writes this pair to
// BENCH_shapecheck.json.

void BM_EmittedC_BoundsOn(benchmark::State& state) {
  driver::TranslateOptions opts;
  opts.boundsChecks = ir::BoundsCheckMode::On;
  std::string bin =
      compileCBinary(temporalMeanProgram(cLat, cLon, cTime, "", 40), opts,
                     "bounds_on");
  for (auto _ : state) runCBinary(bin);
}
BENCHMARK(BM_EmittedC_BoundsOn)->Unit(benchmark::kMillisecond);

void BM_EmittedC_BoundsAuto(benchmark::State& state) {
  driver::TranslateOptions opts;
  opts.boundsChecks = ir::BoundsCheckMode::Auto;
  std::string bin =
      compileCBinary(temporalMeanProgram(cLat, cLon, cTime, "", 40), opts,
                     "bounds_auto");
  for (auto _ : state) runCBinary(bin);
}
BENCHMARK(BM_EmittedC_BoundsAuto)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace mmx::bench
