// Experiment C1 (paper §V, first paragraph): "the performance of the
// parallel code generated from the matrix constructs described above
// scales nearly linearly with the number of cores on the machine with two
// 6-core processors". This harness sweeps the thread count over the two
// headline workloads (Fig. 1 temporal mean, Fig. 8 eddy scoring).
//
// NOTE on this container: the paper's testbed had 12 cores; this
// reproduction environment exposes a single core, so wall-clock speedup
// is expected to be flat here. The sweep demonstrates the harness and the
// absence of slowdown from the enhanced fork-join machinery; on a
// multi-core host the same binary exhibits the paper's near-linear curve.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "bench_stats.hpp"
#include "runtime/kernels.hpp"
#include "runtime/ssh_synth.hpp"

namespace mmx::bench {
namespace {

void BM_TemporalMeanThreads(benchmark::State& state) {
  static auto mod = compile(temporalMeanProgram(48, 96, 48));
  unsigned threads = static_cast<unsigned>(state.range(0));
  std::unique_ptr<rt::Executor> exec = rt::makeExecutor(
      threads == 1 ? rt::ExecutorKind::Serial : rt::ExecutorKind::ForkJoin,
      threads);
  for (auto _ : state) runOn(*mod, *exec);
  state.counters["threads"] = threads;
  state.counters["cells"] = 48.0 * 96 * 48;
}
BENCHMARK(BM_TemporalMeanThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMillisecond);

void BM_EddyScoringThreads(benchmark::State& state) {
  static auto mod = compile(eddyScoringProgram(16, 16, 64));
  unsigned threads = static_cast<unsigned>(state.range(0));
  std::unique_ptr<rt::Executor> exec = rt::makeExecutor(
      threads == 1 ? rt::ExecutorKind::Serial : rt::ExecutorKind::ForkJoin,
      threads);
  for (auto _ : state) runOn(*mod, *exec);
  state.counters["threads"] = threads;
  state.counters["series"] = 16.0 * 16;
}
BENCHMARK(BM_EddyScoringThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMillisecond);

// The runtime-level kernel scaling (no interpreter overhead): the shape
// the generated pthread C code exhibits on real cores.
void BM_KernelSumThreads(benchmark::State& state) {
  unsigned threads = static_cast<unsigned>(state.range(0));
  rt::SshParams p;
  p.nlat = 64;
  p.nlon = 128;
  p.ntime = 64;
  static rt::Matrix ssh = rt::synthesizeSsh(p);
  std::unique_ptr<rt::Executor> exec = rt::makeExecutor(
      threads == 1 ? rt::ExecutorKind::Serial : rt::ExecutorKind::ForkJoin,
      threads);
  rt::Matrix out;
  for (auto _ : state) {
    rt::sumInnermost3D(*exec, ssh, out, true);
    benchmark::DoNotOptimize(out.f32());
  }
  state.counters["threads"] = threads;
  state.SetBytesProcessed(int64_t(state.iterations()) * ssh.size() * 4);
}
BENCHMARK(BM_KernelSumThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMillisecond);

// ---- guard elision across the thread sweep (ISSUE 3) -------------------
// The interpreter-side auto-vs-on pair: `auto` consults the shapecheck
// guard plan, `on` keeps every runtime check. Same workload as
// BM_TemporalMeanThreads, so the elision win composes with scaling.

void BM_TemporalMeanBoundsOn(benchmark::State& state) {
  driver::TranslateOptions opts;
  opts.boundsChecks = ir::BoundsCheckMode::On;
  static auto res = compileXc(temporalMeanProgram(48, 96, 48), opts);
  unsigned threads = static_cast<unsigned>(state.range(0));
  std::unique_ptr<rt::Executor> exec = rt::makeExecutor(
      threads == 1 ? rt::ExecutorKind::Serial : rt::ExecutorKind::ForkJoin,
      threads);
  for (auto _ : state) runOnWithBounds(res, *exec);
  state.counters["threads"] = threads;
}
BENCHMARK(BM_TemporalMeanBoundsOn)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_TemporalMeanBoundsAuto(benchmark::State& state) {
  driver::TranslateOptions opts;
  opts.boundsChecks = ir::BoundsCheckMode::Auto;
  static auto res = compileXc(temporalMeanProgram(48, 96, 48), opts);
  unsigned threads = static_cast<unsigned>(state.range(0));
  std::unique_ptr<rt::Executor> exec = rt::makeExecutor(
      threads == 1 ? rt::ExecutorKind::Serial : rt::ExecutorKind::ForkJoin,
      threads);
  for (auto _ : state) runOnWithBounds(res, *exec);
  state.counters["threads"] = threads;
}
BENCHMARK(BM_TemporalMeanBoundsAuto)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace mmx::bench
