#include "interp/interp.hpp"

#include <atomic>
#include <cmath>
#include <cstring>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "runtime/conncomp.hpp"
#include "runtime/eddy.hpp"
#include "runtime/backend.hpp"
#include "runtime/kernels.hpp"
#include "runtime/matio.hpp"
#include "runtime/simd.hpp"
#include "runtime/ssh_synth.hpp"
#include "support/metrics.hpp"

namespace mmx::interp {

using ir::ArithOp;
using ir::CmpKind;
using ir::Expr;
using ir::Stmt;
using ir::Ty;
using rt::Matrix;

ir::Ty tyOf(const Value& v) {
  switch (v.index()) {
    case 1: return Ty::I32;
    case 2: return Ty::F32;
    case 3: return Ty::Bool;
    case 4: return Ty::Mat;
    case 5: return Ty::Str;
    default: return Ty::Void;
  }
}

namespace {

[[noreturn]] void fail(const std::string& msg) { throw RuntimeError(msg); }

/// True on pool worker threads while a parallel region runs: nested
/// parallel loops (including those inside functions called from the
/// region) must run serially, never re-enter the pool.
thread_local bool t_onWorkerThread = false;

/// Grain for the interpreter's own tight element loops (scalar-op-matrix
/// fallbacks): matches the runtime kernels' threshold below which a pool
/// round-trip costs more than the loop body.
constexpr int64_t kScalarLoopGrain = 4096;

int32_t asI(const Value& v) {
  if (auto* p = std::get_if<int32_t>(&v)) return *p;
  if (auto* p = std::get_if<bool>(&v)) return *p ? 1 : 0;
  fail("expected int value");
}
float asF(const Value& v) {
  if (auto* p = std::get_if<float>(&v)) return *p;
  if (auto* p = std::get_if<int32_t>(&v)) return static_cast<float>(*p);
  fail("expected float value");
}
bool asB(const Value& v) {
  if (auto* p = std::get_if<bool>(&v)) return *p;
  if (auto* p = std::get_if<int32_t>(&v)) return *p != 0;
  fail("expected bool value");
}
const Matrix& asM(const Value& v) {
  if (auto* p = std::get_if<Matrix>(&v)) return *p;
  fail("expected matrix value");
}
const std::string& asS(const Value& v) {
  if (auto* p = std::get_if<std::string>(&v)) return *p;
  fail("expected string value");
}

rt::BinOp toRtBin(ArithOp op) {
  switch (op) {
    case ArithOp::Add: return rt::BinOp::Add;
    case ArithOp::Sub: return rt::BinOp::Sub;
    case ArithOp::Mul:
    case ArithOp::EwMul: return rt::BinOp::Mul;
    case ArithOp::Div: return rt::BinOp::Div;
    case ArithOp::Mod: return rt::BinOp::Mod;
    case ArithOp::Min: return rt::BinOp::Min;
    case ArithOp::Max: return rt::BinOp::Max;
  }
  fail("bad arith op");
}

rt::CmpOp toRtCmp(CmpKind op) {
  switch (op) {
    case CmpKind::Lt: return rt::CmpOp::Lt;
    case CmpKind::Le: return rt::CmpOp::Le;
    case CmpKind::Gt: return rt::CmpOp::Gt;
    case CmpKind::Ge: return rt::CmpOp::Ge;
    case CmpKind::Eq: return rt::CmpOp::Eq;
    case CmpKind::Ne: return rt::CmpOp::Ne;
  }
  fail("bad cmp op");
}

CmpKind mirrorCmp(CmpKind op) {
  switch (op) {
    case CmpKind::Lt: return CmpKind::Gt;
    case CmpKind::Le: return CmpKind::Ge;
    case CmpKind::Gt: return CmpKind::Lt;
    case CmpKind::Ge: return CmpKind::Le;
    default: return op;
  }
}

template <class T> T scalarArith(ArithOp op, T a, T b) {
  switch (op) {
    case ArithOp::Add: return a + b;
    case ArithOp::Sub: return a - b;
    case ArithOp::Mul:
    case ArithOp::EwMul: return a * b;
    case ArithOp::Div:
      if constexpr (std::is_integral_v<T>) {
        if (b == 0) fail("integer division by zero");
        return a / b;
      } else {
        return a / b;
      }
    case ArithOp::Mod:
      if constexpr (std::is_integral_v<T>) {
        if (b == 0) fail("integer modulo by zero");
        return a % b;
      } else {
        return std::fmod(a, b);
      }
    case ArithOp::Min: return a < b ? a : b;
    case ArithOp::Max: return a > b ? a : b;
  }
  fail("bad arith op");
}

template <class T> bool scalarCmp(CmpKind op, T a, T b) {
  switch (op) {
    case CmpKind::Lt: return a < b;
    case CmpKind::Le: return a <= b;
    case CmpKind::Gt: return a > b;
    case CmpKind::Ge: return a >= b;
    case CmpKind::Eq: return a == b;
    case CmpKind::Ne: return a != b;
  }
  fail("bad cmp op");
}

/// Resolved per-dimension selector.
struct Selector {
  std::vector<int64_t> idxs;
  bool keep = true; // scalar dims are dropped from the result rank
};

/// 4-lane vector value.
struct VVal {
  bool isF = false;
  rt::Vec4f f{};
  rt::Vec4i i{};

  static VVal ofF(rt::Vec4f v) {
    VVal r;
    r.isF = true;
    r.f = v;
    return r;
  }
  static VVal ofI(rt::Vec4i v) {
    VVal r;
    r.i = v;
    return r;
  }
  rt::Vec4f toF() const {
    if (isF) return f;
    return {_mm_cvtepi32_ps(i.v)};
  }
};

} // namespace

/// Stateless serial executor used for matrix kernels evaluated inside an
/// already-parallel region: re-entering the fork-join pool from a worker
/// would corrupt the active region's work descriptor.
rt::SerialExecutor g_serialExec;

/// Per-call execution context.
class Exec {
public:
  Exec(Machine& m, const ir::Function& f, bool inParallel)
      : m_(m), f_(f), inParallel_(inParallel || t_onWorkerThread) {}

  // Statement/lane counts are plain members bumped unconditionally (an
  // increment is cheaper than re-checking metrics::enabled() per
  // statement) and batched into the registry once per call frame.
  ~Exec() {
    if (!metrics::enabled() || (stmts_ == 0 && laneOps_ == 0)) return;
    static const metrics::Counter stmts = metrics::counter("interp.stmts");
    static const metrics::Counter lanes =
        metrics::counter("interp.vectorLaneOps");
    if (stmts_) stmts.add(stmts_);
    if (laneOps_) lanes.add(laneOps_);
  }

  std::vector<Value> run(std::vector<Value> args) {
    if (args.size() != f_.numParams)
      fail("call to " + f_.name + ": expected " +
           std::to_string(f_.numParams) + " arguments, got " +
           std::to_string(args.size()));
    locals_.resize(f_.locals.size());
    for (size_t i = 0; i < args.size(); ++i) locals_[i] = std::move(args[i]);
    Flow fl = exec(*f_.body);
    if (fl != Flow::Return && !f_.rets.empty())
      fail(f_.name + ": control reached end of non-void function");
    return std::move(rets_);
  }

private:
  enum class Flow { Normal, Break, Continue, Return };

  /// True when the runtime guard at `site` (the IR node's address, the
  /// key the shapecheck pass recorded) should be skipped this run.
  bool skipGuard(const void* site) const {
    if (m_.boundsChecks_ == ir::BoundsCheckMode::On) return false;
    if (m_.boundsChecks_ == ir::BoundsCheckMode::Off) return true;
    return m_.guardPlan_ && m_.guardPlan_->blessed(site);
  }

  // ---- statements -----------------------------------------------------
  Flow exec(const Stmt& s) {
    ++stmts_;
    switch (s.k) {
      case Stmt::K::Block:
        for (const auto& k : s.kids) {
          if (!k) continue;
          Flow fl = exec(*k);
          if (fl != Flow::Normal) return fl;
        }
        return Flow::Normal;
      case Stmt::K::Assign:
        locals_[s.slot] = eval(*s.exprs[0]);
        return Flow::Normal;
      case Stmt::K::StoreFlat: {
        const Matrix& mtx = asM(locals_[s.slot]);
        int64_t idx = asI(eval(*s.exprs[0]));
        if (!skipGuard(&s) && (idx < 0 || idx >= mtx.size()))
          fail("flat index " + std::to_string(idx) + " out of bounds for " +
               mtx.shapeString());
        Value v = eval(*s.exprs[1]);
        storeElem(mtx, idx, v);
        return Flow::Normal;
      }
      case Stmt::K::IndexStore:
        execIndexStore(s);
        return Flow::Normal;
      case Stmt::K::For:
        return execFor(s);
      case Stmt::K::While:
        while (asB(eval(*s.exprs[0]))) {
          Flow fl = exec(*s.kids[0]);
          if (fl == Flow::Break) break;
          if (fl == Flow::Return) return fl;
        }
        return Flow::Normal;
      case Stmt::K::If:
        if (asB(eval(*s.exprs[0]))) return exec(*s.kids[0]);
        if (s.kids.size() > 1 && s.kids[1]) return exec(*s.kids[1]);
        return Flow::Normal;
      case Stmt::K::Ret:
        rets_.clear();
        for (const auto& e : s.exprs) rets_.push_back(eval(*e));
        return Flow::Return;
      case Stmt::K::CallStmt:
        eval(*s.exprs[0]);
        return Flow::Normal;
      case Stmt::K::CallAssign: {
        std::vector<Value> args;
        args.reserve(s.exprs.size());
        for (const auto& e : s.exprs) args.push_back(eval(*e));
        std::vector<Value> res = m_.call(s.callee, std::move(args));
        if (res.size() != s.dsts.size())
          fail(s.callee + " returned " + std::to_string(res.size()) +
               " values, expected " + std::to_string(s.dsts.size()));
        for (size_t i = 0; i < res.size(); ++i)
          locals_[s.dsts[i]] = std::move(res[i]);
        return Flow::Normal;
      }
      case Stmt::K::Break:
        return Flow::Break;
      case Stmt::K::Continue:
        return Flow::Continue;
    }
    fail("bad statement kind");
  }

  Flow execFor(const Stmt& s) {
    int64_t lo = asI(eval(*s.exprs[0]));
    int64_t hi = asI(eval(*s.exprs[1]));

    // Parallel regions always go through the executor — also at one
    // thread, where SerialExecutor runs the chunk inline. That keeps
    // 1-thread semantics identical to N-thread (workers get a frame
    // copy) and gives every region a pool trace span.
    if (s.parallel && !inParallel_ && hi > lo) {
      execParallelFor(s, lo, hi);
      return Flow::Normal;
    }
    if (s.vecWidth == 4 && hi - lo >= 4) return execVectorFor(s, lo, hi);

    for (int64_t i = lo; i < hi; ++i) {
      locals_[s.slot] = static_cast<int32_t>(i);
      Flow fl = exec(*s.kids[0]);
      if (fl == Flow::Break) break;
      if (fl == Flow::Return) return fl;
    }
    return Flow::Normal;
  }

  void execParallelFor(const Stmt& s, int64_t lo, int64_t hi) {
    // Each worker gets a private copy of the frame (matrix handles share
    // their buffers — with-loop semantics guarantee disjoint writes). The
    // generated pthread C behaves the same way: scalars are captured by
    // value in the thread closure, matrix data is shared.
    std::atomic<bool> failed{false};
    std::string errMsg;
    std::mutex errMu;

    struct Ctx {
      const Stmt* s;
      Exec* self;
      std::atomic<bool>* failed;
      std::string* errMsg;
      std::mutex* errMu;
    } ctx{&s, this, &failed, &errMsg, &errMu};

    // Grain 2: a one-iteration "parallel" loop runs inline on the calling
    // thread instead of paying a pool release/park round-trip; anything
    // larger still forks (interpreted iterations are expensive).
    m_.exec_.parallelForGrain(
        lo, hi, /*minGrain=*/2,
        [](void* c, int64_t clo, int64_t chi, unsigned) {
          auto* x = static_cast<Ctx*>(c);
          bool wasWorker = t_onWorkerThread;
          t_onWorkerThread = true;
          try {
            Exec worker(x->self->m_, x->self->f_, /*inParallel=*/true);
            worker.locals_ = x->self->locals_;
            for (int64_t i = clo; i < chi; ++i) {
              worker.locals_[x->s->slot] = static_cast<int32_t>(i);
              if (x->s->vecWidth == 4) {
                // parallel + vectorized: vectorize within each chunk
                // handled by the scalar path here; chunk-level
                // vectorization happens when the loops are split.
              }
              worker.exec(*x->s->kids[0]);
            }
          } catch (const std::exception& e) {
            std::lock_guard<std::mutex> lock(*x->errMu);
            if (!x->failed->exchange(true)) *x->errMsg = e.what();
          }
          t_onWorkerThread = wasWorker;
        },
        &ctx);

    if (failed.load()) fail("parallel loop: " + errMsg);
  }

  Flow execVectorFor(const Stmt& s, int64_t lo, int64_t hi) {
    int64_t i = lo;
    for (; i + 4 <= hi; i += 4) {
      vecEnv_.clear();
      vecVar_ = s.slot;
      vecBase_ = i;
      execVec(*s.kids[0]);
      vecVar_ = -1;
    }
    for (; i < hi; ++i) { // scalar remainder
      locals_[s.slot] = static_cast<int32_t>(i);
      Flow fl = exec(*s.kids[0]);
      if (fl == Flow::Break) break;
      if (fl == Flow::Return) return fl;
    }
    return Flow::Normal;
  }

  // ---- vector mode (paper §V vectorize) --------------------------------
  void execVec(const Stmt& s) {
    switch (s.k) {
      case Stmt::K::Block:
        for (const auto& k : s.kids)
          if (k) execVec(*k);
        return;
      case Stmt::K::Assign:
        vecEnv_[s.slot] = evalVec(*s.exprs[0]);
        return;
      case Stmt::K::For: {
        // Serial inner loop; its body stays in vector mode. Bounds may
        // reference values assigned in the vector environment but must be
        // invariant across the four lanes.
        int64_t lo = laneInvariantInt(*s.exprs[0]);
        int64_t hi = laneInvariantInt(*s.exprs[1]);
        for (int64_t i = lo; i < hi; ++i) {
          locals_[s.slot] = static_cast<int32_t>(i);
          execVec(*s.kids[0]);
        }
        return;
      }
      case Stmt::K::StoreFlat: {
        const Matrix& mtx = asM(locals_[s.slot]);
        VVal idx = evalVec(*s.exprs[0]);
        VVal val = evalVec(*s.exprs[1]);
        storeVec(mtx, idx, val);
        return;
      }
      default:
        fail("statement is not vectorizable (vectorize applies to loops "
             "whose bodies are arithmetic assignments)");
    }
  }

  /// Evaluates an int expression inside a vectorized region, requiring
  /// the same value in every lane (loop bounds, matrix operands' shapes).
  int64_t laneInvariantInt(const Expr& e) {
    VVal v = evalVec(e);
    if (v.isF) fail("loop bound must be an integer expression");
    alignas(16) int32_t lanes[4];
    v.i.store(lanes);
    if (lanes[0] != lanes[1] || lanes[0] != lanes[2] || lanes[0] != lanes[3])
      fail("inner loop bound varies across vector lanes; this loop nest "
           "cannot be vectorized this way");
    return lanes[0];
  }

  VVal evalVec(const Expr& e) {
    switch (e.k) {
      case Expr::K::ConstI: return VVal::ofI(rt::Vec4i::splat(e.i));
      case Expr::K::ConstF: return VVal::ofF(rt::Vec4f::splat(e.f));
      case Expr::K::Var: {
        if (e.slot == vecVar_) {
          alignas(16) int32_t lanes[4] = {
              static_cast<int32_t>(vecBase_), static_cast<int32_t>(vecBase_ + 1),
              static_cast<int32_t>(vecBase_ + 2),
              static_cast<int32_t>(vecBase_ + 3)};
          return VVal::ofI(rt::Vec4i::load(lanes));
        }
        auto it = vecEnv_.find(e.slot);
        if (it != vecEnv_.end()) return it->second;
        const Value& v = locals_[e.slot];
        if (tyOf(v) == Ty::F32) return VVal::ofF(rt::Vec4f::splat(asF(v)));
        return VVal::ofI(rt::Vec4i::splat(asI(v)));
      }
      case Expr::K::Arith: {
        VVal a = evalVec(*e.args[0]);
        VVal b = evalVec(*e.args[1]);
        laneOps_ += 4;
        if (e.ty == Ty::F32) return VVal::ofF(vecArithF(e.aop, a.toF(), b.toF()));
        return vecArithI(e.aop, a, b);
      }
      case Expr::K::Cast:
        if (e.ty == Ty::F32) return VVal::ofF(evalVec(*e.args[0]).toF());
        return VVal::ofI(
            rt::Vec4i{_mm_cvttps_epi32(evalVec(*e.args[0]).toF().v)});
      case Expr::K::Neg: {
        VVal a = evalVec(*e.args[0]);
        if (e.ty == Ty::F32)
          return VVal::ofF(rt::Vec4f::zero() - a.toF());
        return VVal::ofI(rt::Vec4i::zero() - a.i);
      }
      case Expr::K::DimSize:
        return VVal::ofI(rt::Vec4i::splat(asI(eval(e))));
      case Expr::K::LoadFlat: {
        Matrix mtx = asM(eval(*e.args[0]));
        VVal idx = evalVec(*e.args[1]);
        return loadVec(mtx, idx, e.ty);
      }
      default:
        fail("expression is not vectorizable");
    }
  }

  static rt::Vec4f vecArithF(ArithOp op, rt::Vec4f a, rt::Vec4f b) {
    switch (op) {
      case ArithOp::Add: return a + b;
      case ArithOp::Sub: return a - b;
      case ArithOp::Mul:
      case ArithOp::EwMul: return a * b;
      case ArithOp::Div: return a / b;
      case ArithOp::Min: return a.min(b);
      case ArithOp::Max: return a.max(b);
      case ArithOp::Mod: break;
    }
    fail("operator has no vector form");
  }

  static VVal vecArithI(ArithOp op, const VVal& a, const VVal& b) {
    switch (op) {
      case ArithOp::Add: return VVal::ofI(a.i + b.i);
      case ArithOp::Sub: return VVal::ofI(a.i - b.i);
      case ArithOp::Mul:
      case ArithOp::EwMul: return VVal::ofI(a.i * b.i);
      default: {
        // Lane-wise scalar fallback (Div/Mod/Min/Max on ints).
        alignas(16) int32_t la[4], lb[4], lo[4];
        a.i.store(la);
        b.i.store(lb);
        for (int k = 0; k < 4; ++k) lo[k] = scalarArith(op, la[k], lb[k]);
        return VVal::ofI(rt::Vec4i::load(lo));
      }
    }
  }

  VVal loadVec(const Matrix& m, const VVal& idx, Ty elemTy) {
    if (m.elem() == rt::Elem::Bool) fail("bool matrices are not vectorizable");
    alignas(16) int32_t lanes[4];
    idx.i.store(lanes);
    bool contig = lanes[1] == lanes[0] + 1 && lanes[2] == lanes[0] + 2 &&
                  lanes[3] == lanes[0] + 3;
    for (int k = 0; k < 4; ++k)
      if (lanes[k] < 0 || lanes[k] >= m.size())
        fail("vector load out of bounds");
    if (elemTy == Ty::F32) {
      if (contig) return VVal::ofF(rt::Vec4f::load(m.f32() + lanes[0]));
      alignas(16) float g[4];
      for (int k = 0; k < 4; ++k) g[k] = m.f32()[lanes[k]];
      return VVal::ofF(rt::Vec4f::load(g));
    }
    if (contig) return VVal::ofI(rt::Vec4i::load(m.i32() + lanes[0]));
    alignas(16) int32_t g[4];
    for (int k = 0; k < 4; ++k) g[k] = m.i32()[lanes[k]];
    return VVal::ofI(rt::Vec4i::load(g));
  }

  void storeVec(const Matrix& m, const VVal& idx, const VVal& val) {
    if (m.elem() == rt::Elem::Bool) fail("bool matrices are not vectorizable");
    alignas(16) int32_t lanes[4];
    idx.i.store(lanes);
    for (int k = 0; k < 4; ++k)
      if (lanes[k] < 0 || lanes[k] >= m.size())
        fail("vector store out of bounds");
    bool contig = lanes[1] == lanes[0] + 1 && lanes[2] == lanes[0] + 2 &&
                  lanes[3] == lanes[0] + 3;
    if (m.elem() == rt::Elem::F32) {
      rt::Vec4f v = val.toF();
      if (contig) {
        v.store(m.f32() + lanes[0]);
      } else {
        for (int k = 0; k < 4; ++k) m.f32()[lanes[k]] = v.lane(k);
      }
    } else {
      if (val.isF) fail("storing float vector into int matrix");
      if (contig) {
        val.i.store(m.i32() + lanes[0]);
      } else {
        for (int k = 0; k < 4; ++k) m.i32()[lanes[k]] = val.i.lane(k);
      }
    }
  }

  // ---- expressions ---------------------------------------------------
  Value eval(const Expr& e) {
    switch (e.k) {
      case Expr::K::ConstI: return e.i;
      case Expr::K::ConstF: return e.f;
      case Expr::K::ConstB: return e.i != 0;
      case Expr::K::ConstS: return e.s;
      case Expr::K::Var: return locals_[e.slot];
      case Expr::K::Arith: return evalArith(e);
      case Expr::K::Cmp: return evalCmp(e);
      case Expr::K::Logic: {
        bool a = asB(eval(*e.args[0]));
        if (e.lop == ir::LogicOp::And)
          return a && asB(eval(*e.args[1]));
        return a || asB(eval(*e.args[1]));
      }
      case Expr::K::Not: return !asB(eval(*e.args[0]));
      case Expr::K::Neg: {
        Value v = eval(*e.args[0]);
        if (tyOf(v) == Ty::F32) return -asF(v);
        if (tyOf(v) == Ty::Mat) {
          Matrix m = asM(v);
          Matrix out;
          if (m.elem() == rt::Elem::F32)
            rt::ew(kexec(), rt::BinOp::Mul, m, -1.f, out, m_.simdKernels_);
          else
            rt::ew(kexec(), rt::BinOp::Mul, m, int32_t{-1}, out,
                   m_.simdKernels_);
          return out;
        }
        return -asI(v);
      }
      case Expr::K::Cast: {
        Value v = eval(*e.args[0]);
        if (e.ty == Ty::F32) return asF(v);
        if (e.ty == Ty::I32) {
          if (tyOf(v) == Ty::F32) return static_cast<int32_t>(asF(v));
          return asI(v);
        }
        if (e.ty == Ty::Bool) return asB(v);
        fail("unsupported cast");
      }
      case Expr::K::Call: return evalCall(e);
      case Expr::K::Index: return evalIndex(e);
      case Expr::K::RangeLit: {
        int32_t a = asI(eval(*e.args[0]));
        int32_t b = asI(eval(*e.args[1]));
        int64_t n = b >= a ? b - a + 1 : 0;
        Matrix m = Matrix::zeros(rt::Elem::I32, {n});
        for (int64_t k = 0; k < n; ++k) m.i32()[k] = a + static_cast<int32_t>(k);
        return m;
      }
      case Expr::K::DimSize: {
        Value hold;
        const Matrix& m = matOperand(*e.args[0], hold);
        int32_t d = asI(eval(*e.args[1]));
        if (!skipGuard(&e) && (d < 0 || static_cast<uint32_t>(d) >= m.rank()))
          fail("dimSize: dimension " + std::to_string(d) + " out of range for " +
               m.shapeString());
        return static_cast<int32_t>(m.dim(static_cast<uint32_t>(d)));
      }
      case Expr::K::LoadFlat: {
        Value hold;
        const Matrix& m = matOperand(*e.args[0], hold);
        int64_t idx = asI(eval(*e.args[1]));
        if (!skipGuard(&e) && (idx < 0 || idx >= m.size()))
          fail("flat index " + std::to_string(idx) + " out of bounds for " +
               m.shapeString());
        return loadElem(m, idx);
      }
    }
    fail("bad expression kind");
  }

  /// Matrix operand access without copying the handle when it is a plain
  /// variable reference (the hot case in lowered with-loop bodies —
  /// copying would cost two atomic refcount operations per element).
  const Matrix& matOperand(const Expr& e, Value& hold) {
    if (e.k == Expr::K::Var) return asM(locals_[e.slot]);
    hold = eval(e);
    return asM(hold);
  }

  static Value loadElem(const Matrix& m, int64_t idx) {
    switch (m.elem()) {
      case rt::Elem::I32: return m.i32()[idx];
      case rt::Elem::F32: return m.f32()[idx];
      case rt::Elem::Bool: return m.boolean()[idx] != 0;
    }
    fail("bad elem kind");
  }

  static void storeElem(const Matrix& m, int64_t idx, const Value& v) {
    switch (m.elem()) {
      case rt::Elem::I32: m.i32()[idx] = asI(v); return;
      case rt::Elem::F32: m.f32()[idx] = asF(v); return;
      case rt::Elem::Bool: m.boolean()[idx] = asB(v) ? 1 : 0; return;
    }
    fail("bad elem kind");
  }

  Value evalArith(const Expr& e) {
    Value a = eval(*e.args[0]);
    Value b = eval(*e.args[1]);
    bool aMat = tyOf(a) == Ty::Mat, bMat = tyOf(b) == Ty::Mat;

    if (aMat && bMat) {
      const Matrix& ma = asM(a);
      const Matrix& mb = asM(b);
      if (e.aop == ArithOp::Mul && ma.rank() == 2 && mb.rank() == 2)
        return rt::matmul(kexec(), ma, mb); // linear-algebra '*'
      Matrix out;
      rt::ew(kexec(), toRtBin(e.aop), ma, mb, out, m_.simdKernels_);
      return out;
    }
    if (aMat || bMat) return matScalarArith(e.aop, a, b, aMat);

    if (e.ty == Ty::F32 || tyOf(a) == Ty::F32 || tyOf(b) == Ty::F32)
      return scalarArith(e.aop, asF(a), asF(b));
    return scalarArith(e.aop, asI(a), asI(b));
  }

  Value matScalarArith(ArithOp op, const Value& a, const Value& b,
                       bool matFirst) {
    const Matrix& m = asM(matFirst ? a : b);
    const Value& s = matFirst ? b : a;
    Matrix out;
    if (matFirst) {
      if (m.elem() == rt::Elem::F32)
        rt::ew(kexec(), toRtBin(op), m, asF(s), out, m_.simdKernels_);
      else
        rt::ew(kexec(), toRtBin(op), m, asI(s), out, m_.simdKernels_);
      return out;
    }
    // scalar (op) matrix: commutative ops reuse the kernel; Sub/Div/Mod
    // fall back to an element loop.
    if (op == ArithOp::Add || op == ArithOp::Mul || op == ArithOp::EwMul ||
        op == ArithOp::Min || op == ArithOp::Max)
      return matScalarArith(op, b, a, true);
    out = Matrix::zeros(m.elem(), m.dims());
    int64_t n = m.size();
    if (m.elem() == rt::Elem::F32) {
      float sv = asF(s);
      const float* src = m.f32();
      float* dst = out.f32();
      kexec().run(0, n, kScalarLoopGrain,
                  [&](int64_t lo, int64_t hi, unsigned) {
        for (int64_t i = lo; i < hi; ++i) dst[i] = scalarArith(op, sv, src[i]);
      });
    } else {
      int32_t sv = asI(s);
      const int32_t* src = m.i32();
      int32_t* dst = out.i32();
      kexec().run(0, n, kScalarLoopGrain,
                  [&](int64_t lo, int64_t hi, unsigned) {
        for (int64_t i = lo; i < hi; ++i) dst[i] = scalarArith(op, sv, src[i]);
      });
    }
    return out;
  }

  Value evalCmp(const Expr& e) {
    Value a = eval(*e.args[0]);
    Value b = eval(*e.args[1]);
    bool aMat = tyOf(a) == Ty::Mat, bMat = tyOf(b) == Ty::Mat;
    if (aMat && bMat) {
      Matrix out;
      rt::ewCompare(kexec(), toRtCmp(e.cop), asM(a), asM(b), out);
      return out;
    }
    if (aMat || bMat) {
      const Matrix& m = asM(aMat ? a : b);
      const Value& s = aMat ? b : a;
      CmpKind op = aMat ? e.cop : mirrorCmp(e.cop);
      Matrix out;
      if (m.elem() == rt::Elem::F32)
        rt::ewCompareScalarF(kexec(), toRtCmp(op), m, asF(s), out);
      else
        rt::ewCompareScalarI(kexec(), toRtCmp(op), m, asI(s), out);
      return out;
    }
    if (tyOf(a) == Ty::F32 || tyOf(b) == Ty::F32)
      return scalarCmp(e.cop, asF(a), asF(b));
    return scalarCmp(e.cop, asI(a), asI(b));
  }

  // ---- MATLAB indexing (§III-A3) ---------------------------------------
  std::vector<Selector> resolveSelectors(const Matrix& m,
                                         const std::vector<ir::IndexDim>& dims,
                                         bool skipChecks = false) {
    if (!skipChecks && dims.size() != m.rank())
      fail("indexing a " + m.shapeString() + " matrix with " +
           std::to_string(dims.size()) + " selectors");
    std::vector<Selector> sel(dims.size());
    for (size_t d = 0; d < dims.size(); ++d) {
      int64_t n = m.dim(static_cast<uint32_t>(d));
      switch (dims[d].kind) {
        case ir::IndexDim::Kind::Scalar: {
          int64_t i = asI(eval(*dims[d].a));
          if (!skipChecks && (i < 0 || i >= n))
            fail("index " + std::to_string(i) + " out of bounds for dim " +
                 std::to_string(d) + " of " + m.shapeString());
          sel[d].idxs = {i};
          sel[d].keep = false;
          break;
        }
        case ir::IndexDim::Kind::Range: {
          int64_t a = asI(eval(*dims[d].a));
          int64_t b = asI(eval(*dims[d].b)); // inclusive, per the paper
          if (!skipChecks && (a < 0 || b >= n || a > b + 1))
            fail("range " + std::to_string(a) + ":" + std::to_string(b) +
                 " out of bounds for dim " + std::to_string(d) + " of " +
                 m.shapeString());
          for (int64_t i = a; i <= b; ++i) sel[d].idxs.push_back(i);
          break;
        }
        case ir::IndexDim::Kind::All:
          for (int64_t i = 0; i < n; ++i) sel[d].idxs.push_back(i);
          break;
        case ir::IndexDim::Kind::Mask: {
          Matrix mask = asM(eval(*dims[d].a));
          if (!skipChecks && (mask.elem() != rt::Elem::Bool ||
                              mask.rank() != 1 || mask.dim(0) != n))
            fail("logical index for dim " + std::to_string(d) +
                 " must be a bool vector of length " + std::to_string(n));
          for (int64_t i = 0; i < n; ++i)
            if (mask.boolean()[i]) sel[d].idxs.push_back(i);
          break;
        }
      }
    }
    return sel;
  }

  /// Iterates the Cartesian product of the selectors, invoking
  /// fn(flatSrcOffset) in row-major order of the selected space.
  template <class Fn>
  void forEachSelected(const Matrix& m, const std::vector<Selector>& sel,
                       Fn&& fn) {
    size_t rank = sel.size();
    for (const auto& s : sel)
      if (s.idxs.empty()) return; // empty selection selects nothing
    std::vector<size_t> cursor(rank, 0);
    std::vector<int64_t> idx(rank);
    for (;;) {
      for (size_t d = 0; d < rank; ++d) idx[d] = sel[d].idxs[cursor[d]];
      fn(m.offsetOf(idx.data()));
      // Odometer increment.
      size_t d = rank;
      while (d > 0) {
        --d;
        if (++cursor[d] < sel[d].idxs.size()) break;
        cursor[d] = 0;
        if (d == 0) return;
      }
    }
  }

  Value evalIndex(const Expr& e) {
    Matrix m = asM(eval(*e.args[0]));
    auto sel = resolveSelectors(m, e.dims, skipGuard(&e));

    std::vector<int64_t> outDims;
    for (const auto& s : sel)
      if (s.keep) outDims.push_back(static_cast<int64_t>(s.idxs.size()));

    if (outDims.empty()) {
      // All-scalar selectors: a single element.
      std::vector<int64_t> idx;
      for (const auto& s : sel) idx.push_back(s.idxs[0]);
      return loadElem(m, m.offsetOf(idx.data()));
    }

    Matrix out = Matrix::zeros(m.elem(), outDims);
    size_t esz = rt::elemSize(m.elem());
    char* dst = out.data<char>();
    const char* src = m.data<char>();
    int64_t k = 0;
    forEachSelected(m, sel, [&](int64_t off) {
      std::memcpy(dst + k * esz, src + off * esz, esz);
      ++k;
    });
    return out;
  }

  void execIndexStore(const Stmt& s) {
    Matrix m = asM(locals_[s.slot]);
    bool blessed = skipGuard(&s);
    auto sel = resolveSelectors(m, s.dims, blessed);
    Value v = eval(*s.exprs[0]);

    int64_t count = 1;
    for (const auto& x : sel) count *= static_cast<int64_t>(x.idxs.size());

    if (tyOf(v) != Ty::Mat) {
      // Scalar broadcast into the selected cells.
      forEachSelected(m, sel, [&](int64_t off) { storeElem(m, off, v); });
      return;
    }
    const Matrix& src = asM(v);
    if (!blessed && src.size() != count)
      fail("indexed assignment: selected " + std::to_string(count) +
           " cells but the value has " + std::to_string(src.size()) +
           " elements");
    if (!blessed && src.elem() != m.elem())
      fail("indexed assignment: element kind mismatch");
    size_t esz = rt::elemSize(m.elem());
    const char* sp = src.data<char>();
    char* dp = m.data<char>();
    int64_t k = 0;
    forEachSelected(m, sel, [&](int64_t off) {
      std::memcpy(dp + off * esz, sp + k * esz, esz);
      ++k;
    });
  }

  // ---- builtins ---------------------------------------------------------
  Value evalCall(const Expr& e) {
    auto arg = [&](size_t i) { return eval(*e.args[i]); };
    const std::string& c = e.s;

    if (c == "readMatrix") return rt::readMatrixFile(asS(arg(0)));
    if (c == "writeMatrix") {
      Value path = arg(0);
      rt::writeMatrixFile(asS(path), asM(arg(1)));
      return {};
    }
    if (c == "initMatrix") {
      // initMatrix(elemKind, dims...)
      auto kind = static_cast<rt::Elem>(asI(arg(0)));
      std::vector<int64_t> dims;
      for (size_t i = 1; i < e.args.size(); ++i) dims.push_back(asI(arg(i)));
      // Results the shape analysis proved fully written (every cell
      // stored before any read) skip the zeroing pass: first touch then
      // happens on the threads that compute the cells. Everything else
      // zeroes with parallel first-touch when large enough.
      if (m_.guardPlan_ && m_.guardPlan_->fullyWritten.count(&e))
        return Matrix::uninit(kind, dims);
      return Matrix::zeros(kind, dims, m_.exec_);
    }
    if (c == "cloneMatrix") return asM(arg(0)).clone();
    if (c == "connComp") return rt::connectedComponents(asM(arg(0)));
    if (c == "detectEddies")
      return rt::detectEddies2D(asM(arg(0)), asF(arg(1)), asF(arg(2)),
                                asF(arg(3)), asI(arg(4)), asI(arg(5)));
    if (c == "synthSsh") {
      rt::SshParams p;
      p.nlat = asI(arg(0));
      p.nlon = asI(arg(1));
      p.ntime = asI(arg(2));
      p.seed = static_cast<uint64_t>(asI(arg(3)));
      p.numEddies = asI(arg(4));
      return rt::synthesizeSsh(p);
    }
    if (c == "checkGenBounds") {
      int32_t hi = asI(arg(0));
      int32_t dim = asI(arg(1));
      if (!skipGuard(&e) && hi > dim)
        fail("genarray: generator upper bound " + std::to_string(hi) +
             " exceeds result dimension " + std::to_string(dim) +
             " (the shape must be a superset of the generator)");
      return {};
    }
    if (c == "checkMatrixMeta") {
      Matrix m = asM(arg(0));
      auto wantElem = static_cast<rt::Elem>(asI(arg(1)));
      auto wantRank = static_cast<uint32_t>(asI(arg(2)));
      if (!skipGuard(&e) && (m.elem() != wantElem || m.rank() != wantRank))
        fail("matrix metadata mismatch: value is " + m.shapeString() +
             " but the declared type expects " +
             std::string(rt::elemName(wantElem)) + " rank " +
             std::to_string(wantRank));
      return m;
    }
    if (c == "rcLive") return static_cast<int32_t>(rt::rcLiveBlocks());
    if (c == "matToFloat") {
      Matrix m = asM(arg(0));
      if (m.elem() == rt::Elem::F32) return m;
      if (m.elem() != rt::Elem::I32) fail("matToFloat: int matrix required");
      Matrix out = Matrix::zeros(rt::Elem::F32, m.dims());
      const int32_t* src = m.i32();
      float* dst = out.f32();
      for (int64_t i = 0; i < m.size(); ++i)
        dst[i] = static_cast<float>(src[i]);
      return out;
    }
    if (c == "numThreads") return static_cast<int32_t>(m_.exec_.threads());
    if (c == "refCount") {
      // The evaluated argument itself holds one reference; report the
      // count as the program sees it (declared handles only).
      Value v = arg(0);
      return asM(v).useCount() - 1;
    }
    if (c == "sqrtF") return std::sqrt(asF(arg(0)));
    if (c == "absF") return std::fabs(asF(arg(0)));
    if (c == "absI") return std::abs(asI(arg(0)));
    if (c == "printInt") {
      appendOut(std::to_string(asI(arg(0))) + "\n");
      return {};
    }
    if (c == "printFloat") {
      std::ostringstream o;
      o << asF(arg(0)) << '\n';
      appendOut(o.str());
      return {};
    }
    if (c == "printBool") {
      appendOut(asB(arg(0)) ? "true\n" : "false\n");
      return {};
    }
    if (c == "printStr") {
      appendOut(asS(arg(0)) + "\n");
      return {};
    }
    if (c == "printShape") {
      appendOut(asM(arg(0)).shapeString() + "\n");
      return {};
    }
    fail("unknown builtin '" + c + "'");
  }

  void appendOut(const std::string& s) {
    std::lock_guard<std::mutex> lock(outMu_);
    m_.out_ += s;
  }

  /// Executor for whole-matrix kernel operations: the pool at top level,
  /// serial inside parallel regions (no nested pool entry).
  rt::Executor& kexec() {
    if (inParallel_ || t_onWorkerThread) return g_serialExec;
    return m_.exec_;
  }

  Machine& m_;
  const ir::Function& f_;
  std::vector<Value> locals_;
  std::vector<Value> rets_;
  bool inParallel_;

  std::unordered_map<int32_t, VVal> vecEnv_;
  int32_t vecVar_ = -1;
  int64_t vecBase_ = 0;

  uint64_t stmts_ = 0;
  uint64_t laneOps_ = 0;

  static std::mutex outMu_;
};

std::mutex Exec::outMu_;

Machine::Machine(const ir::Module& module, rt::Executor& exec)
    : mod_(module), exec_(exec) {}

std::vector<Value> Machine::call(const std::string& name,
                                 std::vector<Value> args) {
  const ir::Function* f = mod_.find(name);
  if (!f) throw RuntimeError("call to unknown function '" + name + "'");
  Exec e(*this, *f, /*inParallel=*/false);
  return e.run(std::move(args));
}

int Machine::runMain() {
  std::vector<Value> r = call("main", {});
  if (r.empty()) return 0;
  if (auto* p = std::get_if<int32_t>(&r[0])) return *p;
  return 0;
}

} // namespace mmx::interp
