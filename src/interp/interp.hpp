// Interpreter for the lowered IR. The same IR that the C emitter prints is
// executed here on the matrix runtime: parallel-annotated for-loops run on
// the fork-join pool, vectorize-annotated loops execute 4 lanes at a time
// with SSE, matrix expressions call the runtime kernels. This makes every
// paper experiment runnable with no external compiler in the loop.
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "ir/guards.hpp"
#include "ir/ir.hpp"
#include "runtime/matrix.hpp"
#include "runtime/pool.hpp"

namespace mmx::interp {

/// A runtime value of the extended language.
using Value =
    std::variant<std::monostate, int32_t, float, bool, rt::Matrix, std::string>;

ir::Ty tyOf(const Value& v);

/// Raised for runtime failures the paper defines as checked at run time
/// (genarray shape-superset violations, index out of bounds, rank
/// mismatches) and for interpreter-internal errors.
struct RuntimeError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Captured stdout of print* builtins (examples print through this so
/// tests can assert on program output).
class Machine {
public:
  /// `exec` runs parallel loops; pass a SerialExecutor for 1-thread runs.
  Machine(const ir::Module& module, rt::Executor& exec);

  /// Calls a function by name. Returns its (possibly tuple) results.
  std::vector<Value> call(const std::string& name, std::vector<Value> args);

  /// Convenience: runs main() and returns its int exit code (0 if void).
  int runMain();

  /// Output accumulated by print builtins.
  const std::string& output() const { return out_; }
  void clearOutput() { out_.clear(); }

  /// Use SIMD kernels for whole-matrix operations (default true).
  void setSimdKernels(bool on) { simdKernels_ = on; }

  /// Bounds-check policy (ISSUE 3). `On` (default) keeps every runtime
  /// guard; `Off` drops them all; `Auto` consults the shapecheck guard
  /// plan and skips only the sites the analysis proved can never fire.
  void setBoundsChecks(ir::BoundsCheckMode mode,
                       std::shared_ptr<const ir::GuardPlan> plan = nullptr) {
    boundsChecks_ = mode;
    guardPlan_ = std::move(plan);
  }

  rt::Executor& executor() { return exec_; }

private:
  friend class Exec; // defined in interp.cpp
  const ir::Module& mod_;
  rt::Executor& exec_;
  std::string out_;
  bool simdKernels_ = true;
  ir::BoundsCheckMode boundsChecks_ = ir::BoundsCheckMode::On;
  std::shared_ptr<const ir::GuardPlan> guardPlan_;
};

} // namespace mmx::interp
