// Tuple extension packaging (paper §III-B, §VI-A). The bare-paren tuple
// syntax fails the modular determinism analysis (its initial '(' is a host
// terminal, not a marking terminal), so the Translator packages it with
// the host. This module provides the paper's suggested *fix* as an
// independently composable extension: tuples delimited with "(|" and "|)",
// which passes isComposable. Its semantics are the host tuple semantics
// (the alt productions dispatch to the same handlers).
#pragma once

#include "ext/extension.hpp"

namespace mmx::ext_tuple {

/// The "(| ... |)" tuple extension (passes the determinism analysis).
ext::ExtensionPtr tupleAltExtension();

} // namespace mmx::ext_tuple
