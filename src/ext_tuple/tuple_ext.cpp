#include "ext_tuple/tuple_ext.hpp"

#include "cminus/host_grammar.hpp"
#include "cminus/sema.hpp"

namespace mmx::ext_tuple {

namespace {

class TupleAltExtension final : public ext::LanguageExtension {
public:
  std::string name() const override { return "tuple_alt"; }
  ext::GrammarFragment grammarFragment() const override {
    return cm::tupleAltFragment();
  }
  void installSemantics(cm::Sema&) const override {
    // aty_tuple / aprim_tuple handlers are registered by the host install
    // (shared with the host-packaged bare-paren syntax); destructuring and
    // returns go through the host assignment/return statements.
  }
};

} // namespace

ext::ExtensionPtr tupleAltExtension() {
  return std::make_unique<TupleAltExtension>();
}

} // namespace mmx::ext_tuple
