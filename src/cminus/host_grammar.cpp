#include "cminus/host_grammar.hpp"

namespace mmx::cm {

using ext::GrammarFragment;

namespace {

void kw(GrammarFragment& f, const char* text) {
  f.terminals.push_back({std::string("'") + text + "'", text, true, 10, false});
}
void punct(GrammarFragment& f, const char* text) {
  f.terminals.push_back({std::string("'") + text + "'", text, true, 5, false});
}
void prod(GrammarFragment& f, const char* name, const char* lhs,
          std::vector<std::string> rhs) {
  f.productions.push_back({lhs, std::move(rhs), name});
}

} // namespace

GrammarFragment hostFragment() {
  GrammarFragment f;
  f.name = "host";
  f.startNT = "TU";

  // --- terminals --------------------------------------------------------
  f.terminals.push_back({"WS", "[ \\t\\r\\n]+", false, 0, true});
  f.terminals.push_back({"LINE_COMMENT", "//[^\\n]*", false, 0, true});
  f.terminals.push_back(
      {"BLOCK_COMMENT", "/\\*([^*]|\\*+[^*/])*\\*+/", false, 0, true});
  f.terminals.push_back({"ID", "[A-Za-z_][A-Za-z0-9_]*", false, 0, false});
  f.terminals.push_back(
      {"FLOATLIT", "[0-9]+\\.[0-9]+([eE][+\\-]?[0-9]+)?", false, 0, false});
  f.terminals.push_back({"INTLIT", "[0-9]+", false, 0, false});
  f.terminals.push_back(
      {"STRLIT", "\"([^\"\\\\\\n]|\\\\.)*\"", false, 0, false});
  // ':' and '::' are one token (ranges, whole-dimension selector).
  f.terminals.push_back({"RANGEOP", "::?", false, 5, false});

  for (const char* k :
       {"int", "float", "bool", "void", "if", "else", "while", "for",
        "return", "break", "continue", "true", "false"})
    kw(f, k);
  for (const char* p :
       {"(", ")", "{", "}", "[", "]", ";", ",", "=", "+", "-", "*", "/", "%",
        "<", ">", "<=", ">=", "==", "!=", "&&", "||", "!", "++", "--"})
    punct(f, p);

  // --- nonterminals -----------------------------------------------------
  for (const char* n :
       {"TU", "DeclSeq", "FnDecl", "RetType", "TypeE", "ParamsOpt", "Params",
        "Param", "Block", "StmtSeq", "Stmt", "Open", "Closed", "Simple",
        "ForInit", "ForStep", "Expr", "OrE", "AndE", "CmpE", "AddE", "MulE",
        "Unary", "Postfix", "Primary", "ArgsOpt", "ExprList", "IndexList",
        "IndexElem"})
    f.nonterminals.push_back(n);

  // --- declarations -----------------------------------------------------
  prod(f, "tu", "TU", {"DeclSeq"});
  prod(f, "declseq_one", "DeclSeq", {"FnDecl"});
  prod(f, "declseq_cons", "DeclSeq", {"DeclSeq", "FnDecl"});
  prod(f, "fn_decl", "FnDecl",
       {"RetType", "ID", "'('", "ParamsOpt", "')'", "Block"});
  prod(f, "retty_type", "RetType", {"TypeE"});
  prod(f, "retty_void", "RetType", {"'void'"});
  prod(f, "ty_int", "TypeE", {"'int'"});
  prod(f, "ty_float", "TypeE", {"'float'"});
  prod(f, "ty_bool", "TypeE", {"'bool'"});
  prod(f, "paramsopt_none", "ParamsOpt", {});
  prod(f, "paramsopt_some", "ParamsOpt", {"Params"});
  prod(f, "params_one", "Params", {"Param"});
  prod(f, "params_cons", "Params", {"Params", "','", "Param"});
  prod(f, "param", "Param", {"TypeE", "ID"});

  // --- statements -------------------------------------------------------
  prod(f, "block", "Block", {"'{'", "StmtSeq", "'}'"});
  prod(f, "block_empty", "Block", {"'{'", "'}'"});
  prod(f, "stmtseq_one", "StmtSeq", {"Stmt"});
  prod(f, "stmtseq_cons", "StmtSeq", {"StmtSeq", "Stmt"});
  prod(f, "stmt_open", "Stmt", {"Open"});
  prod(f, "stmt_closed", "Stmt", {"Closed"});
  prod(f, "closed_simple", "Closed", {"Simple"});
  prod(f, "closed_ifelse", "Closed",
       {"'if'", "'('", "Expr", "')'", "Closed", "'else'", "Closed"});
  prod(f, "open_if", "Open", {"'if'", "'('", "Expr", "')'", "Stmt"});
  prod(f, "open_ifelse", "Open",
       {"'if'", "'('", "Expr", "')'", "Closed", "'else'", "Open"});
  prod(f, "closed_while", "Closed",
       {"'while'", "'('", "Expr", "')'", "Closed"});
  prod(f, "open_while", "Open", {"'while'", "'('", "Expr", "')'", "Open"});
  prod(f, "closed_for", "Closed",
       {"'for'", "'('", "ForInit", "';'", "Expr", "';'", "ForStep", "')'",
        "Closed"});
  prod(f, "open_for", "Open",
       {"'for'", "'('", "ForInit", "';'", "Expr", "';'", "ForStep", "')'",
        "Open"});
  prod(f, "forinit_decl", "ForInit", {"TypeE", "ID", "'='", "Expr"});
  prod(f, "forinit_assign", "ForInit", {"Expr", "'='", "Expr"});
  prod(f, "forstep_inc", "ForStep", {"Expr", "'++'"});
  prod(f, "forstep_dec", "ForStep", {"Expr", "'--'"});
  prod(f, "forstep_assign", "ForStep", {"Expr", "'='", "Expr"});

  prod(f, "simple_vardecl_init", "Simple",
       {"TypeE", "ID", "'='", "Expr", "';'"});
  prod(f, "simple_vardecl", "Simple", {"TypeE", "ID", "';'"});
  prod(f, "simple_assign", "Simple", {"Expr", "'='", "Expr", "';'"});
  prod(f, "simple_expr", "Simple", {"Expr", "';'"});
  prod(f, "simple_ret_void", "Simple", {"'return'", "';'"});
  prod(f, "simple_ret", "Simple", {"'return'", "Expr", "';'"});
  prod(f, "simple_break", "Simple", {"'break'", "';'"});
  prod(f, "simple_continue", "Simple", {"'continue'", "';'"});
  prod(f, "simple_inc", "Simple", {"Expr", "'++'", "';'"});
  prod(f, "simple_dec", "Simple", {"Expr", "'--'", "';'"});
  prod(f, "simple_block", "Simple", {"Block"});

  // --- expressions --------------------------------------------------------
  prod(f, "expr_pass", "Expr", {"OrE"});
  prod(f, "or_or", "OrE", {"OrE", "'||'", "AndE"});
  prod(f, "or_pass", "OrE", {"AndE"});
  prod(f, "and_and", "AndE", {"AndE", "'&&'", "CmpE"});
  prod(f, "and_pass", "AndE", {"CmpE"});
  prod(f, "cmp_lt", "CmpE", {"CmpE", "'<'", "AddE"});
  prod(f, "cmp_le", "CmpE", {"CmpE", "'<='", "AddE"});
  prod(f, "cmp_gt", "CmpE", {"CmpE", "'>'", "AddE"});
  prod(f, "cmp_ge", "CmpE", {"CmpE", "'>='", "AddE"});
  prod(f, "cmp_eq", "CmpE", {"CmpE", "'=='", "AddE"});
  prod(f, "cmp_ne", "CmpE", {"CmpE", "'!='", "AddE"});
  prod(f, "cmp_pass", "CmpE", {"AddE"});
  prod(f, "add_add", "AddE", {"AddE", "'+'", "MulE"});
  prod(f, "add_sub", "AddE", {"AddE", "'-'", "MulE"});
  prod(f, "add_pass", "AddE", {"MulE"});
  prod(f, "mul_mul", "MulE", {"MulE", "'*'", "Unary"});
  prod(f, "mul_div", "MulE", {"MulE", "'/'", "Unary"});
  prod(f, "mul_mod", "MulE", {"MulE", "'%'", "Unary"});
  prod(f, "mul_pass", "MulE", {"Unary"});
  prod(f, "un_neg", "Unary", {"'-'", "Unary"});
  prod(f, "un_not", "Unary", {"'!'", "Unary"});
  prod(f, "un_cast", "Unary", {"'('", "TypeE", "')'", "Unary"});
  prod(f, "un_pass", "Unary", {"Postfix"});
  prod(f, "post_call", "Postfix", {"Postfix", "'('", "ArgsOpt", "')'"});
  prod(f, "post_index", "Postfix", {"Postfix", "'['", "IndexList", "']'"});
  prod(f, "post_pass", "Postfix", {"Primary"});
  prod(f, "argsopt_none", "ArgsOpt", {});
  prod(f, "argsopt_some", "ArgsOpt", {"ExprList"});
  prod(f, "exprlist_one", "ExprList", {"Expr"});
  prod(f, "exprlist_cons", "ExprList", {"ExprList", "','", "Expr"});
  prod(f, "indexlist_one", "IndexList", {"IndexElem"});
  prod(f, "indexlist_cons", "IndexList", {"IndexList", "','", "IndexElem"});
  prod(f, "ixe_expr", "IndexElem", {"Expr"});
  prod(f, "ixe_range", "IndexElem", {"Expr", "RANGEOP", "Expr"});
  prod(f, "ixe_all", "IndexElem", {"RANGEOP"});
  prod(f, "prim_id", "Primary", {"ID"});
  prod(f, "prim_int", "Primary", {"INTLIT"});
  prod(f, "prim_float", "Primary", {"FLOATLIT"});
  prod(f, "prim_str", "Primary", {"STRLIT"});
  prod(f, "prim_true", "Primary", {"'true'"});
  prod(f, "prim_false", "Primary", {"'false'"});
  prod(f, "prim_paren", "Primary", {"'('", "Expr", "')'"});
  prod(f, "prim_range", "Primary", {"'('", "Expr", "RANGEOP", "Expr", "')'"});

  return f;
}

GrammarFragment tupleFragment() {
  GrammarFragment f;
  f.name = "tuple";
  f.nonterminals.push_back("TypeList");
  // Tuple types: (int, float, bool). Two or more members, so `(int)`
  // stays a cast.
  prod(f, "ty_tuple", "TypeE", {"'('", "TypeList", "')'"});
  prod(f, "typelist_two", "TypeList", {"TypeE", "','", "TypeE"});
  prod(f, "typelist_cons", "TypeList", {"TypeList", "','", "TypeE"});
  // Anonymous construction (x, y, z) — also the destructuring LHS
  // (a, b, c) = f(); the assignment statement's semantics decides.
  prod(f, "prim_tuple", "Primary",
       {"'('", "Expr", "','", "ExprList", "')'"});
  return f;
}

GrammarFragment tupleAltFragment() {
  GrammarFragment f;
  f.name = "tuple_alt";
  f.terminals.push_back({"'(|'", "(|", true, 6, false});
  f.terminals.push_back({"'|)'", "|)", true, 6, false});
  f.nonterminals.push_back("ATypeList");
  prod(f, "aty_tuple", "TypeE", {"'(|'", "ATypeList", "'|)'"});
  prod(f, "atypelist_two", "ATypeList", {"TypeE", "','", "TypeE"});
  prod(f, "atypelist_cons", "ATypeList", {"ATypeList", "','", "TypeE"});
  prod(f, "aprim_tuple", "Primary",
       {"'(|'", "Expr", "','", "ExprList", "'|)'"});
  return f;
}

} // namespace mmx::cm
