#include "cminus/types.hpp"

#include <sstream>
#include <stdexcept>

namespace mmx::cm {

Type Type::elementType() const {
  if (k == K::Matrix || k == K::RefPtr) return scalarOfElem(elem);
  throw std::logic_error("elementType of non-aggregate type " + str());
}

bool operator==(const Type& a, const Type& b) {
  if (a.k != b.k) return false;
  switch (a.k) {
    case Type::K::Matrix: return a.elem == b.elem && a.rank == b.rank;
    case Type::K::RefPtr: return a.elem == b.elem;
    case Type::K::Tuple: return a.elems == b.elems;
    default: return true;
  }
}

std::string Type::str() const {
  switch (k) {
    case K::Error: return "<error>";
    case K::Void: return "void";
    case K::Int: return "int";
    case K::Float: return "float";
    case K::Bool: return "bool";
    case K::Str: return "string";
    case K::MatrixAny: return "Matrix <any>";
    case K::Matrix: {
      std::ostringstream o;
      o << "Matrix " << rt::elemName(elem) << " <" << rank << ">";
      return o.str();
    }
    case K::RefPtr: {
      std::ostringstream o;
      o << "refptr " << rt::elemName(elem);
      return o.str();
    }
    case K::Tuple: {
      std::ostringstream o;
      o << '(';
      for (size_t i = 0; i < elems.size(); ++i)
        o << (i ? ", " : "") << elems[i].str();
      o << ')';
      return o.str();
    }
  }
  return "?";
}

rt::Elem elemOfScalar(const Type& t) {
  switch (t.k) {
    case Type::K::Int: return rt::Elem::I32;
    case Type::K::Float: return rt::Elem::F32;
    case Type::K::Bool: return rt::Elem::Bool;
    default:
      throw std::logic_error("no element kind for type " + t.str());
  }
}

Type scalarOfElem(rt::Elem e) {
  switch (e) {
    case rt::Elem::I32: return Type::intTy();
    case rt::Elem::F32: return Type::floatTy();
    case rt::Elem::Bool: return Type::boolTy();
  }
  return Type::error();
}

} // namespace mmx::cm
