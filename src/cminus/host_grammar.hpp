// The CMINUS host-language grammar fragment ("a rather complete subset of
// ANSI C"): functions, scalar types, control flow (dangling-else resolved
// with the open/closed refactoring so the composed grammar stays LALR(1)),
// a stratified expression grammar, and the generic subscript / range
// "syntax carriers" whose semantics the matrix extension supplies.
//
// The tuple extension's *syntax* is packaged as a separate fragment that
// the default translator always composes with the host: as §VI-A notes,
// tuples' leading '(' is not a marking terminal, so the tuple fragment
// fails the modular determinism analysis and is therefore shipped with the
// host rather than as an independent extension. tupleAltFragment() is the
// paper's suggested fix ("(|" / "|)" delimiters), which passes.
#pragma once

#include "ext/fragment.hpp"

namespace mmx::cm {

/// The host fragment. Start symbol: TU.
ext::GrammarFragment hostFragment();

/// Tuple syntax with bare parens (fails isComposable; packaged with host).
ext::GrammarFragment tupleFragment();

/// Tuple syntax with "(|" and "|)" (passes isComposable; used by the
/// analysis tests to reproduce the paper's discussion).
ext::GrammarFragment tupleAltFragment();

} // namespace mmx::cm
