// The extended-C type system. The host contributes the scalar types; the
// matrix extension contributes Matrix<elem, rank>; the tuple extension
// contributes tuples; the refcount extension contributes refptr<elem>.
// (In Silver these kinds arrive with their extensions; here the kind enum
// is centralized but each kind's semantics live with its extension module.)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/matrix.hpp"

namespace mmx::cm {

/// A checked type.
struct Type {
  enum class K : uint8_t {
    Error,     // poisoned: produced after a reported error, never re-reported
    Void,
    Int,
    Float,
    Bool,
    Str,
    Matrix,    // elem + rank          (matrix extension)
    MatrixAny, // matrix of unknown elem/rank (readMatrix's result;
               // assignment inserts a runtime metadata check)
    Tuple,     // elems                (tuple extension)
    RefPtr,    // elem, rank-1 buffer  (refcount extension)
  };

  K k = K::Error;
  rt::Elem elem = rt::Elem::F32; // Matrix / RefPtr
  uint32_t rank = 0;             // Matrix
  std::vector<Type> elems;       // Tuple

  static Type error() { return {}; }
  static Type voidTy() { return Type{K::Void, rt::Elem::F32, 0, {}}; }
  static Type intTy() { return Type{K::Int, rt::Elem::F32, 0, {}}; }
  static Type floatTy() { return Type{K::Float, rt::Elem::F32, 0, {}}; }
  static Type boolTy() { return Type{K::Bool, rt::Elem::F32, 0, {}}; }
  static Type strTy() { return Type{K::Str, rt::Elem::F32, 0, {}}; }
  static Type matrix(rt::Elem e, uint32_t rank) {
    return Type{K::Matrix, e, rank, {}};
  }
  static Type matrixAny() { return Type{K::MatrixAny, rt::Elem::F32, 0, {}}; }
  static Type tuple(std::vector<Type> elems) {
    Type t{K::Tuple, rt::Elem::F32, 0, std::move(elems)};
    return t;
  }
  static Type refptr(rt::Elem e) { return Type{K::RefPtr, e, 1, {}}; }

  bool isError() const { return k == K::Error; }
  bool isMatrix() const { return k == K::Matrix || k == K::MatrixAny; }
  bool isScalarNumeric() const { return k == K::Int || k == K::Float; }
  bool isScalar() const {
    return k == K::Int || k == K::Float || k == K::Bool;
  }

  /// The scalar type of one element (Matrix/RefPtr only).
  Type elementType() const;

  friend bool operator==(const Type& a, const Type& b);
  friend bool operator!=(const Type& a, const Type& b) { return !(a == b); }

  std::string str() const;
};

/// Scalar type <-> matrix element kind.
rt::Elem elemOfScalar(const Type& t);
Type scalarOfElem(rt::Elem e);

} // namespace mmx::cm
