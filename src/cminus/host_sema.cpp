// Host-language semantics: scalar expressions and operators, control flow
// (including canonical-for detection so parallelizable counted loops lower
// to ir::For), calls, and the tuple semantics that §VI-A packages with the
// host. Registered per production name; extensions override or extend via
// the same interface.
#include <cassert>

#include "cminus/sema.hpp"

namespace mmx::cm {

namespace {

constexpr const char* kExt = "host";

// --- small helpers ------------------------------------------------------

/// Flattens left-recursive lists (X -> X , e | e) into element nodes.
std::vector<ast::NodePtr> flattenList(const ast::NodePtr& n,
                                      std::string_view consName,
                                      std::string_view oneName) {
  std::vector<ast::NodePtr> out;
  const ast::Node* cur = n.get();
  std::vector<ast::NodePtr> stack;
  ast::NodePtr node = n;
  while (node->is(consName)) {
    stack.push_back(node->kids.back());
    node = node->child(0);
  }
  (void)cur;
  if (node->is(oneName))
    out.push_back(node->child(0));
  else
    out.push_back(node); // already an element
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) out.push_back(*it);
  return out;
}

std::vector<ast::NodePtr> exprListElems(const ast::NodePtr& n) {
  return flattenList(n, "exprlist_cons", "exprlist_one");
}

void passExpr(Sema& s, const char* prod) {
  s.defineExpr(prod, [](Sema& s2, const ast::NodePtr& n) {
    return s2.expr(n->child(0));
  }, kExt);
}

void passStmt(Sema& s, const char* prod) {
  s.defineStmt(prod, [](Sema& s2, const ast::NodePtr& n) {
    s2.stmt(n->child(0));
  }, kExt);
}

// --- numeric operator helpers ------------------------------------------

ExprRes numericBin(Sema& s, ir::ArithOp op, ExprRes a, ExprRes b,
                   SourceRange r) {
  if (a.bad() || b.bad()) return ExprRes::error();
  if (auto hooked = s.tryBinHooks(op, a, b, r)) return std::move(*hooked);
  if (!a.type.isScalarNumeric() || !b.type.isScalarNumeric()) {
    s.error(r, std::string("operator '") + ir::arithName(op) +
                   "' is not defined for " + a.type.str() + " and " +
                   b.type.str());
    return ExprRes::error();
  }
  Type out = (a.type.k == Type::K::Float || b.type.k == Type::K::Float)
                 ? Type::floatTy()
                 : Type::intTy();
  a = s.coerce(std::move(a), out, r);
  b = s.coerce(std::move(b), out, r);
  if (a.bad() || b.bad()) return ExprRes::error();
  return {out, ir::arith(op, std::move(a.code), std::move(b.code),
                         Sema::lowerTy(out))};
}

ExprRes numericCmp(Sema& s, ir::CmpKind op, ExprRes a, ExprRes b,
                   SourceRange r) {
  if (a.bad() || b.bad()) return ExprRes::error();
  if (auto hooked = s.tryCmpHooks(op, a, b, r)) return std::move(*hooked);
  bool bothBool = a.type.k == Type::K::Bool && b.type.k == Type::K::Bool;
  if (bothBool && (op == ir::CmpKind::Eq || op == ir::CmpKind::Ne)) {
    return {Type::boolTy(),
            ir::cmp(op, std::move(a.code), std::move(b.code))};
  }
  if (!a.type.isScalarNumeric() || !b.type.isScalarNumeric()) {
    s.error(r, std::string("comparison '") + ir::cmpName(op) +
                   "' is not defined for " + a.type.str() + " and " +
                   b.type.str());
    return ExprRes::error();
  }
  Type wide = (a.type.k == Type::K::Float || b.type.k == Type::K::Float)
                  ? Type::floatTy()
                  : Type::intTy();
  a = s.coerce(std::move(a), wide, r);
  b = s.coerce(std::move(b), wide, r);
  if (a.bad() || b.bad()) return ExprRes::error();
  return {Type::boolTy(), ir::cmp(op, std::move(a.code), std::move(b.code))};
}

void binOp(Sema& s, const char* prod, ir::ArithOp op) {
  s.defineExpr(prod, [op](Sema& s2, const ast::NodePtr& n) {
    return numericBin(s2, op, s2.expr(n->child(0)), s2.expr(n->child(2)),
                      n->range);
  }, kExt);
}

void cmpOp(Sema& s, const char* prod, ir::CmpKind op) {
  s.defineExpr(prod, [op](Sema& s2, const ast::NodePtr& n) {
    return numericCmp(s2, op, s2.expr(n->child(0)), s2.expr(n->child(2)),
                      n->range);
  }, kExt);
}

// --- assignment ---------------------------------------------------------

/// Unwraps pass-through chains to the first "interesting" production.
const ast::NodePtr& significant(const ast::NodePtr& n) {
  static const std::vector<std::string_view> chains = {
      "expr_pass", "or_pass", "and_pass", "cmp_pass",
      "add_pass",  "mul_pass", "un_pass", "post_pass"};
  const ast::NodePtr* cur = &n;
  for (;;) {
    bool advanced = false;
    for (auto c : chains)
      if ((*cur)->is(c)) {
        cur = &(*cur)->child(0);
        advanced = true;
        break;
      }
    if (!advanced) return *cur;
  }
}

/// Assigns `src` (already coerced) into a declared variable.
void storeToVar(Sema& s, VarInfo* v, ExprRes src) {
  if (src.bad()) return;
  s.emit(ir::assign(v->slots[0], std::move(src.code)));
}

/// Tuple-literal node (bare or alt syntax), or null.
bool isTupleLiteral(const ast::NodePtr& n) {
  return n->is("prim_tuple") || n->is("aprim_tuple");
}

/// Elements of a tuple literal: '(' Expr ',' ExprList ')'.
std::vector<ast::NodePtr> tupleLiteralElems(const ast::NodePtr& n) {
  std::vector<ast::NodePtr> out;
  out.push_back(n->child(1));
  for (auto& e : exprListElems(n->child(3))) out.push_back(e);
  return out;
}

/// Lowers RHS values of tuple type into destination slots. Handles:
/// tuple-returning calls, tuple variables, and tuple literals.
void assignTupleInto(Sema& s, const std::vector<Type>& dstTypes,
                     const std::vector<int32_t>& dstSlots,
                     const ast::NodePtr& rhs) {
  const ast::NodePtr& r = significant(rhs);

  if (isTupleLiteral(r)) {
    auto elems = tupleLiteralElems(r);
    if (elems.size() != dstTypes.size()) {
      s.error(rhs->range, "tuple arity mismatch: expected " +
                              std::to_string(dstTypes.size()) + " elements, "
                              "found " + std::to_string(elems.size()));
      return;
    }
    // Evaluate into temporaries first ((a, b) = (b, a) must swap).
    std::vector<int32_t> tmps;
    for (size_t i = 0; i < elems.size(); ++i) {
      ExprRes e = s.coerce(s.expr(elems[i]), dstTypes[i], elems[i]->range);
      if (e.bad()) return;
      int32_t t = s.newTemp(dstTypes[i]);
      s.emit(ir::assign(t, std::move(e.code)));
      tmps.push_back(t);
    }
    for (size_t i = 0; i < tmps.size(); ++i)
      s.emit(ir::assign(dstSlots[i],
                        ir::var(tmps[i], Sema::lowerTy(dstTypes[i]))));
    return;
  }

  if (r->is("post_call")) {
    std::string callee(Sema::idText(r->child(0)));
    const FuncSig* sig = callee.empty() ? nullptr : s.findFunction(callee);
    if (sig && sig->rets.size() == dstTypes.size() && sig->rets.size() > 1) {
      // Direct multi-value call.
      std::vector<ir::ExprPtr> args;
      std::vector<ast::NodePtr> argNodes;
      if (r->child(2)->is("argsopt_some"))
        argNodes = exprListElems(r->child(2)->child(0));
      if (argNodes.size() != sig->params.size()) {
        s.error(r->range, "call to '" + callee + "': expected " +
                              std::to_string(sig->params.size()) +
                              " arguments, found " +
                              std::to_string(argNodes.size()));
        return;
      }
      for (size_t i = 0; i < argNodes.size(); ++i) {
        ExprRes a =
            s.coerce(s.expr(argNodes[i]), sig->params[i], argNodes[i]->range);
        if (a.bad()) return;
        args.push_back(std::move(a.code));
      }
      for (size_t i = 0; i < dstTypes.size(); ++i) {
        if (sig->rets[i] != dstTypes[i]) {
          s.error(rhs->range, "tuple element " + std::to_string(i) +
                                  ": cannot assign " + sig->rets[i].str() +
                                  " to " + dstTypes[i].str());
          return;
        }
      }
      s.emit(ir::callAssign(dstSlots, callee, std::move(args)));
      return;
    }
  }

  // Tuple variable?
  std::string name(Sema::idText(r));
  if (!name.empty()) {
    VarInfo* v = s.lookupVar(name);
    if (v && v->type.k == Type::K::Tuple) {
      if (v->type.elems != dstTypes) {
        s.error(rhs->range, "cannot assign " + v->type.str() + " here");
        return;
      }
      for (size_t i = 0; i < dstSlots.size(); ++i)
        s.emit(ir::assign(dstSlots[i],
                          ir::var(v->slots[i], Sema::lowerTy(dstTypes[i]))));
      return;
    }
  }

  s.error(rhs->range,
          "the right-hand side of a tuple assignment must be a tuple "
          "literal, a tuple variable, or a call to a tuple-returning "
          "function");
}

// --- calls ----------------------------------------------------------------

ExprRes lowerCall(Sema& s, const ast::NodePtr& n) {
  // post_call: Postfix ( ArgsOpt )
  std::string callee(Sema::idText(n->child(0)));
  if (callee.empty()) {
    s.error(n->range, "called expression is not a function name");
    return ExprRes::error();
  }
  std::vector<ast::NodePtr> argNodes;
  if (n->child(2)->is("argsopt_some"))
    argNodes = exprListElems(n->child(2)->child(0));

  // Builtins first (extensions register these).
  if (s.hasBuiltin(callee)) {
    std::vector<ExprRes> args;
    for (auto& a : argNodes) args.push_back(s.expr(a));
    // The builtin handler reports its own errors.
    return s.builtinCall(callee, n, std::move(args));
  }

  const FuncSig* sig = s.findFunction(callee);
  if (!sig) {
    s.error(n->range, "call to undeclared function '" + callee + "'");
    return ExprRes::error();
  }
  if (argNodes.size() != sig->params.size()) {
    s.error(n->range, "call to '" + callee + "': expected " +
                          std::to_string(sig->params.size()) +
                          " arguments, found " +
                          std::to_string(argNodes.size()));
    return ExprRes::error();
  }
  std::vector<ir::ExprPtr> args;
  for (size_t i = 0; i < argNodes.size(); ++i) {
    ExprRes a =
        s.coerce(s.expr(argNodes[i]), sig->params[i], argNodes[i]->range);
    if (a.bad()) return ExprRes::error();
    args.push_back(std::move(a.code));
  }

  if (sig->rets.empty()) {
    s.emit(ir::callAssign({}, callee, std::move(args)));
    return {Type::voidTy(), ir::constI(0)};
  }
  if (sig->rets.size() > 1) {
    s.error(n->range, "tuple-returning function '" + callee +
                          "' must be destructured with (a, b, ...) = " +
                          callee + "(...)");
    return ExprRes::error();
  }
  int32_t tmp = s.newTemp(sig->rets[0], "call");
  s.emit(ir::callAssign({tmp}, callee, std::move(args)));
  return {sig->rets[0], ir::var(tmp, Sema::lowerTy(sig->rets[0]))};
}

// --- for-loop canonicalization -----------------------------------------

/// Matches `for (int i = LO; i < HI; i++)` / `for (i = LO; i < HI; i++)`.
struct CanonicalFor {
  bool ok = false;
  std::string var;
  bool declares = false;
  ast::NodePtr lo, hi;
};

CanonicalFor matchCanonicalFor(const ast::NodePtr& init,
                               const ast::NodePtr& cond,
                               const ast::NodePtr& step) {
  CanonicalFor c;
  if (init->is("forinit_decl")) {
    if (!init->child(0)->is("ty_int")) return c;
    c.var = std::string(init->child(1)->text());
    c.declares = true;
    c.lo = init->child(3);
  } else if (init->is("forinit_assign")) {
    std::string v(Sema::idText(init->child(0)));
    if (v.empty()) return c;
    c.var = v;
    c.lo = init->child(2);
  } else {
    return c;
  }
  const ast::NodePtr& cc = significant(cond);
  if (!cc->is("cmp_lt")) return c;
  if (std::string(Sema::idText(cc->child(0))) != c.var) return c;
  c.hi = cc->child(2);
  if (!step->is("forstep_inc")) return c;
  if (std::string(Sema::idText(step->child(0))) != c.var) return c;
  c.ok = true;
  return c;
}

void lowerFor(Sema& s, const ast::NodePtr& n) {
  // closed_for/open_for: for ( ForInit ; Expr ; ForStep ) Body
  const ast::NodePtr& init = n->child(2);
  const ast::NodePtr& cond = n->child(4);
  const ast::NodePtr& step = n->child(6);
  const ast::NodePtr& body = n->child(8);

  s.pushScope();
  CanonicalFor c = matchCanonicalFor(init, cond, step);
  if (c.ok) {
    ExprRes lo = s.coerce(s.expr(c.lo), Type::intTy(), c.lo->range);
    ExprRes hi = s.coerce(s.expr(c.hi), Type::intTy(), c.hi->range);
    int32_t slot;
    if (c.declares) {
      VarInfo* v = s.declareVar(c.var, Type::intTy(), init->range);
      slot = v->slots[0];
    } else {
      VarInfo* v = s.lookupVar(c.var);
      if (!v || v->type.k != Type::K::Int) {
        s.error(init->range, "for-loop variable '" + c.var +
                                 "' must be a declared int");
        s.popScope();
        return;
      }
      slot = v->slots[0];
    }
    if (!lo.bad() && !hi.bad()) {
      s.pushBlock();
      s.stmt(body);
      ir::StmtPtr b = s.popBlock();
      s.emit(ir::forLoop(slot, std::move(lo.code), std::move(hi.code),
                         std::move(b), c.var));
    }
    s.popScope();
    return;
  }

  // General form: init; while (cond) { body; step; }. `continue` would
  // skip the step here, so it is rejected in non-canonical for-loops.
  if (ast::findFirst(body, "simple_continue"))
    s.error(body->range,
            "continue is only supported in canonical for-loops "
            "(for (int i = lo; i < hi; i++))");

  if (init->is("forinit_decl")) {
    Type t = s.typeExpr(init->child(0));
    VarInfo* v = s.declareVar(std::string(init->child(1)->text()), t,
                              init->range);
    ExprRes e = s.coerce(s.expr(init->child(3)), t, init->range);
    if (!e.bad()) storeToVar(s, v, std::move(e));
  } else {
    std::string v(Sema::idText(init->child(0)));
    VarInfo* vi = v.empty() ? nullptr : s.lookupVar(v);
    if (!vi) {
      s.error(init->range, "for-loop init assigns to an unknown variable");
    } else {
      ExprRes e = s.coerce(s.expr(init->child(2)), vi->type, init->range);
      if (!e.bad()) storeToVar(s, vi, std::move(e));
    }
  }
  ExprRes condE = s.coerce(s.expr(cond), Type::boolTy(), cond->range);
  if (condE.bad()) {
    s.popScope();
    return;
  }
  s.pushBlock();
  s.stmt(body);
  // step
  if (step->is("forstep_inc") || step->is("forstep_dec")) {
    std::string v(Sema::idText(step->child(0)));
    VarInfo* vi = v.empty() ? nullptr : s.lookupVar(v);
    if (vi && vi->type.k == Type::K::Int) {
      s.emit(ir::assign(
          vi->slots[0],
          ir::arith(step->is("forstep_inc") ? ir::ArithOp::Add
                                            : ir::ArithOp::Sub,
                    ir::var(vi->slots[0], ir::Ty::I32), ir::constI(1),
                    ir::Ty::I32)));
    } else {
      s.error(step->range, "for-step must increment a declared int");
    }
  } else { // forstep_assign
    std::string v(Sema::idText(step->child(0)));
    VarInfo* vi = v.empty() ? nullptr : s.lookupVar(v);
    if (!vi) {
      s.error(step->range, "for-step assigns to an unknown variable");
    } else {
      ExprRes e = s.coerce(s.expr(step->child(2)), vi->type, step->range);
      if (!e.bad()) storeToVar(s, vi, std::move(e));
    }
  }
  ir::StmtPtr b = s.popBlock();
  s.emit(ir::whileLoop(std::move(condE.code), std::move(b)));
  s.popScope();
}

} // namespace

void installHostSemantics(Sema& s) {
  // ---- types ----------------------------------------------------------
  s.defineType("ty_int",
               [](Sema&, const ast::NodePtr&) { return Type::intTy(); },
               kExt);
  s.defineType("ty_float",
               [](Sema&, const ast::NodePtr&) { return Type::floatTy(); },
               kExt);
  s.defineType("ty_bool",
               [](Sema&, const ast::NodePtr&) { return Type::boolTy(); },
               kExt);
  s.defineType("retty_type", [](Sema& s2, const ast::NodePtr& n) {
    return s2.typeExpr(n->child(0));
  }, kExt);

  // ---- pass-through chains ---------------------------------------------
  for (const char* p : {"expr_pass", "or_pass", "and_pass", "cmp_pass",
                        "add_pass", "mul_pass", "un_pass", "post_pass"})
    passExpr(s, p);
  for (const char* p : {"stmt_open", "stmt_closed", "closed_simple",
                        "simple_block"})
    passStmt(s, p);

  // ---- literals & identifiers -------------------------------------------
  s.defineExpr("prim_int", [](Sema&, const ast::NodePtr& n) {
    return ExprRes{Type::intTy(),
                   ir::constI(static_cast<int32_t>(
                       std::stoll(std::string(n->child(0)->text()))))};
  }, kExt);
  s.defineExpr("prim_float", [](Sema&, const ast::NodePtr& n) {
    return ExprRes{Type::floatTy(),
                   ir::constF(std::stof(std::string(n->child(0)->text())))};
  }, kExt);
  s.defineExpr("prim_true", [](Sema&, const ast::NodePtr&) {
    return ExprRes{Type::boolTy(), ir::constB(true)};
  }, kExt);
  s.defineExpr("prim_false", [](Sema&, const ast::NodePtr&) {
    return ExprRes{Type::boolTy(), ir::constB(false)};
  }, kExt);
  s.defineExpr("prim_str", [](Sema&, const ast::NodePtr& n) {
    std::string raw(n->child(0)->text());
    std::string out;
    for (size_t i = 1; i + 1 < raw.size(); ++i) {
      if (raw[i] == '\\' && i + 2 < raw.size()) {
        ++i;
        switch (raw[i]) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default: out += raw[i];
        }
      } else {
        out += raw[i];
      }
    }
    return ExprRes{Type::strTy(), ir::constS(std::move(out))};
  }, kExt);
  s.defineExpr("prim_id", [](Sema& s2, const ast::NodePtr& n) {
    std::string name(n->child(0)->text());
    VarInfo* v = s2.lookupVar(name);
    if (!v) {
      s2.error(n->range, "use of undeclared variable '" + name + "'");
      return ExprRes::error();
    }
    if (v->type.k == Type::K::Tuple) {
      s2.error(n->range, "tuple variable '" + name +
                             "' can only be destructured or returned");
      return ExprRes::error();
    }
    return ExprRes{v->type, ir::var(v->slots[0], Sema::lowerTy(v->type))};
  }, kExt);
  s.defineExpr("prim_paren", [](Sema& s2, const ast::NodePtr& n) {
    return s2.expr(n->child(1));
  }, kExt);

  // Range literal (lo :: hi): inclusive 1-D int matrix — syntax carried by
  // the host, meaning defined here since it is type-closed.
  s.defineExpr("prim_range", [](Sema& s2, const ast::NodePtr& n) {
    ExprRes lo = s2.coerce(s2.expr(n->child(1)), Type::intTy(),
                           n->child(1)->range);
    ExprRes hi = s2.coerce(s2.expr(n->child(3)), Type::intTy(),
                           n->child(3)->range);
    if (lo.bad() || hi.bad()) return ExprRes::error();
    auto e = std::make_unique<ir::Expr>();
    e->k = ir::Expr::K::RangeLit;
    e->ty = ir::Ty::Mat;
    e->args.push_back(std::move(lo.code));
    e->args.push_back(std::move(hi.code));
    return ExprRes{Type::matrix(rt::Elem::I32, 1), std::move(e)};
  }, kExt);

  // ---- operators ----------------------------------------------------------
  binOp(s, "add_add", ir::ArithOp::Add);
  binOp(s, "add_sub", ir::ArithOp::Sub);
  binOp(s, "mul_mul", ir::ArithOp::Mul);
  binOp(s, "mul_div", ir::ArithOp::Div);
  binOp(s, "mul_mod", ir::ArithOp::Mod);
  cmpOp(s, "cmp_lt", ir::CmpKind::Lt);
  cmpOp(s, "cmp_le", ir::CmpKind::Le);
  cmpOp(s, "cmp_gt", ir::CmpKind::Gt);
  cmpOp(s, "cmp_ge", ir::CmpKind::Ge);
  cmpOp(s, "cmp_eq", ir::CmpKind::Eq);
  cmpOp(s, "cmp_ne", ir::CmpKind::Ne);

  s.defineExpr("or_or", [](Sema& s2, const ast::NodePtr& n) {
    ExprRes a = s2.coerce(s2.expr(n->child(0)), Type::boolTy(), n->range);
    ExprRes b = s2.coerce(s2.expr(n->child(2)), Type::boolTy(), n->range);
    if (a.bad() || b.bad()) return ExprRes::error();
    return ExprRes{Type::boolTy(), ir::logic(ir::LogicOp::Or,
                                             std::move(a.code),
                                             std::move(b.code))};
  }, kExt);
  s.defineExpr("and_and", [](Sema& s2, const ast::NodePtr& n) {
    ExprRes a = s2.coerce(s2.expr(n->child(0)), Type::boolTy(), n->range);
    ExprRes b = s2.coerce(s2.expr(n->child(2)), Type::boolTy(), n->range);
    if (a.bad() || b.bad()) return ExprRes::error();
    return ExprRes{Type::boolTy(), ir::logic(ir::LogicOp::And,
                                             std::move(a.code),
                                             std::move(b.code))};
  }, kExt);

  s.defineExpr("un_neg", [](Sema& s2, const ast::NodePtr& n) {
    ExprRes a = s2.expr(n->child(1));
    if (a.bad()) return ExprRes::error();
    if (a.type.isMatrix())
      return ExprRes{a.type, ir::negE(std::move(a.code), ir::Ty::Mat)};
    if (!a.type.isScalarNumeric()) {
      s2.error(n->range, "unary '-' needs a numeric operand, found " +
                             a.type.str());
      return ExprRes::error();
    }
    return ExprRes{a.type,
                   ir::negE(std::move(a.code), Sema::lowerTy(a.type))};
  }, kExt);
  s.defineExpr("un_not", [](Sema& s2, const ast::NodePtr& n) {
    ExprRes a = s2.coerce(s2.expr(n->child(1)), Type::boolTy(), n->range);
    if (a.bad()) return ExprRes::error();
    return ExprRes{Type::boolTy(), ir::notE(std::move(a.code))};
  }, kExt);
  s.defineExpr("un_cast", [](Sema& s2, const ast::NodePtr& n) {
    Type to = s2.typeExpr(n->child(1));
    ExprRes a = s2.expr(n->child(3));
    if (a.bad() || to.isError()) return ExprRes::error();
    if (!to.isScalar() || !a.type.isScalar()) {
      s2.error(n->range, "cast from " + a.type.str() + " to " + to.str() +
                             " is not supported");
      return ExprRes::error();
    }
    return ExprRes{to, ir::cast(Sema::lowerTy(to), std::move(a.code))};
  }, kExt);

  s.defineExpr("post_call", lowerCall, kExt);

  // Indexing syntax is carried by the host but given meaning by the
  // matrix/refcount extensions (they re-register this production).
  s.defineExpr("post_index", [](Sema& s2, const ast::NodePtr& n) {
    ExprRes base = s2.expr(n->child(0));
    if (base.bad()) return ExprRes::error();
    s2.error(n->range, "no composed extension defines indexing for type " +
                           base.type.str());
    return ExprRes::error();
  }, kExt);

  // ---- statements ----------------------------------------------------------
  s.defineStmt("block", [](Sema& s2, const ast::NodePtr& n) {
    s2.pushScope();
    s2.stmt(n->child(1));
    s2.popScope();
  }, kExt);
  s.defineStmt("block_empty", [](Sema&, const ast::NodePtr&) {}, kExt);
  s.defineStmt("stmtseq_one", [](Sema& s2, const ast::NodePtr& n) {
    s2.stmt(n->child(0));
  }, kExt);
  s.defineStmt("stmtseq_cons", [](Sema& s2, const ast::NodePtr& n) {
    s2.stmt(n->child(0));
    s2.stmt(n->child(1));
  }, kExt);

  auto vardecl = [](Sema& s2, const ast::NodePtr& n) {
    Type t = s2.typeExpr(n->child(0));
    std::string name(n->child(1)->text());
    VarInfo* v = s2.declareVar(name, t, n->range);
    bool hasInit = n->arity() == 5;
    if (t.k == Type::K::Tuple) {
      if (hasInit) assignTupleInto(s2, t.elems, v->slots, n->child(3));
      return;
    }
    if (hasInit) {
      ExprRes e = s2.coerce(s2.expr(n->child(3)), t, n->child(3)->range);
      if (!e.bad()) storeToVar(s2, v, std::move(e));
    } else if (t.isMatrix()) {
      // Matrices have no usable default value; requiring initialization
      // catches use-before-init at compile time.
      s2.error(n->range,
               "matrix variable '" + name + "' must be initialized");
    }
  };
  s.defineStmt("simple_vardecl_init", vardecl, kExt);
  s.defineStmt("simple_vardecl", vardecl, kExt);

  s.defineStmt("simple_assign", [](Sema& s2, const ast::NodePtr& n) {
    const ast::NodePtr& lhs = n->child(0);
    const ast::NodePtr& rhs = n->child(2);
    if (s2.tryAssignHooks(lhs, rhs)) return;

    const ast::NodePtr& l = significant(lhs);
    if (isTupleLiteral(l)) {
      // (a, b, c) = ... destructuring.
      std::vector<Type> types;
      std::vector<int32_t> slots;
      for (auto& e : tupleLiteralElems(l)) {
        std::string name(Sema::idText(e));
        VarInfo* v = name.empty() ? nullptr : s2.lookupVar(name);
        if (!v) {
          s2.error(e->range,
                   "destructuring targets must be declared variables");
          return;
        }
        if (v->type.k == Type::K::Tuple) {
          s2.error(e->range, "cannot destructure into a tuple variable");
          return;
        }
        types.push_back(v->type);
        slots.push_back(v->slots[0]);
      }
      assignTupleInto(s2, types, slots, rhs);
      return;
    }

    std::string name(Sema::idText(l));
    if (!name.empty()) {
      VarInfo* v = s2.lookupVar(name);
      if (!v) {
        s2.error(l->range, "assignment to undeclared variable '" + name +
                               "'");
        return;
      }
      if (v->type.k == Type::K::Tuple) {
        assignTupleInto(s2, v->type.elems, v->slots, rhs);
        return;
      }
      ExprRes e = s2.coerce(s2.expr(rhs), v->type, rhs->range);
      if (!e.bad()) storeToVar(s2, v, std::move(e));
      return;
    }
    s2.error(lhs->range, "expression is not assignable");
  }, kExt);

  s.defineStmt("simple_expr", [](Sema& s2, const ast::NodePtr& n) {
    const ast::NodePtr& e = significant(n->child(0));
    if (e->is("post_call")) {
      ExprRes r = s2.expr(e);
      // Value-returning builtins used as statements still run for their
      // effects; discard pure results.
      if (!r.bad() && r.code && r.code->k == ir::Expr::K::Call)
        s2.emit(ir::callStmt(std::move(r.code)));
      return;
    }
    ExprRes r = s2.expr(n->child(0));
    (void)r; // pure expression statement: checked, then dropped
  }, kExt);

  auto incdec = [](Sema& s2, const ast::NodePtr& n) {
    std::string name(Sema::idText(n->child(0)));
    VarInfo* v = name.empty() ? nullptr : s2.lookupVar(name);
    if (!v || v->type.k != Type::K::Int) {
      s2.error(n->range, "++/-- needs a declared int variable");
      return;
    }
    bool inc = n->is("simple_inc") || n->is("forstep_inc");
    s2.emit(ir::assign(
        v->slots[0],
        ir::arith(inc ? ir::ArithOp::Add : ir::ArithOp::Sub,
                  ir::var(v->slots[0], ir::Ty::I32), ir::constI(1),
                  ir::Ty::I32)));
  };
  s.defineStmt("simple_inc", incdec, kExt);
  s.defineStmt("simple_dec", incdec, kExt);

  s.defineStmt("simple_ret_void", [](Sema& s2, const ast::NodePtr& n) {
    if (!s2.currentRets().empty()) {
      s2.error(n->range, "non-void function must return a value");
      return;
    }
    s2.emit(ir::ret({}));
  }, kExt);
  s.defineStmt("simple_ret", [](Sema& s2, const ast::NodePtr& n) {
    const auto& rets = s2.currentRets();
    if (rets.empty()) {
      s2.error(n->range, "void function cannot return a value");
      return;
    }
    const ast::NodePtr& rhs = n->child(1);
    if (rets.size() > 1) {
      // Tuple return: evaluate into temps, then return them.
      std::vector<int32_t> tmps;
      for (const Type& t : rets) tmps.push_back(s2.newTemp(t, "ret"));
      assignTupleInto(s2, rets, tmps, rhs);
      std::vector<ir::ExprPtr> vals;
      for (size_t i = 0; i < rets.size(); ++i)
        vals.push_back(ir::var(tmps[i], Sema::lowerTy(rets[i])));
      s2.emit(ir::ret(std::move(vals)));
      return;
    }
    ExprRes e = s2.coerce(s2.expr(rhs), rets[0], rhs->range);
    if (e.bad()) return;
    std::vector<ir::ExprPtr> vals;
    vals.push_back(std::move(e.code));
    s2.emit(ir::ret(std::move(vals)));
  }, kExt);

  s.defineStmt("simple_break", [](Sema& s2, const ast::NodePtr&) {
    auto b = std::make_unique<ir::Stmt>();
    b->k = ir::Stmt::K::Break;
    s2.emit(std::move(b));
  }, kExt);
  s.defineStmt("simple_continue", [](Sema& s2, const ast::NodePtr&) {
    auto c = std::make_unique<ir::Stmt>();
    c->k = ir::Stmt::K::Continue;
    s2.emit(std::move(c));
  }, kExt);

  auto ifHandler = [](Sema& s2, const ast::NodePtr& n) {
    ExprRes cond = s2.coerce(s2.expr(n->child(2)), Type::boolTy(),
                             n->child(2)->range);
    bool hasElse = n->arity() > 5;
    if (cond.bad()) return;
    s2.pushBlock();
    s2.pushScope();
    s2.stmt(n->child(4));
    s2.popScope();
    ir::StmtPtr thenB = s2.popBlock();
    ir::StmtPtr elseB;
    if (hasElse) {
      s2.pushBlock();
      s2.pushScope();
      s2.stmt(n->child(6));
      s2.popScope();
      elseB = s2.popBlock();
    }
    s2.emit(ir::ifStmt(std::move(cond.code), std::move(thenB),
                       std::move(elseB)));
  };
  s.defineStmt("open_if", ifHandler, kExt);
  s.defineStmt("open_ifelse", ifHandler, kExt);
  s.defineStmt("closed_ifelse", ifHandler, kExt);

  auto whileHandler = [](Sema& s2, const ast::NodePtr& n) {
    ExprRes cond = s2.coerce(s2.expr(n->child(2)), Type::boolTy(),
                             n->child(2)->range);
    if (cond.bad()) return;
    s2.pushBlock();
    s2.pushScope();
    s2.stmt(n->child(4));
    s2.popScope();
    ir::StmtPtr body = s2.popBlock();
    s2.emit(ir::whileLoop(std::move(cond.code), std::move(body)));
  };
  s.defineStmt("closed_while", whileHandler, kExt);
  s.defineStmt("open_while", whileHandler, kExt);

  s.defineStmt("closed_for", lowerFor, kExt);
  s.defineStmt("open_for", lowerFor, kExt);

  // ---- host builtins ------------------------------------------------------
  auto print1 = [](const char* callee, Type want) {
    return [callee, want](Sema& s2, const ast::NodePtr& n,
                          std::vector<ExprRes> args) -> ExprRes {
      if (args.size() != 1 || args[0].bad()) {
        if (args.size() != 1)
          s2.error(n->range, std::string(callee) + " takes one argument");
        return ExprRes::error();
      }
      ExprRes a = s2.coerce(std::move(args[0]), want, n->range);
      if (a.bad()) return ExprRes::error();
      std::vector<ir::ExprPtr> irArgs;
      irArgs.push_back(std::move(a.code));
      return ExprRes{Type::voidTy(),
                     ir::call(callee, std::move(irArgs), ir::Ty::Void)};
    };
  };
  s.defineBuiltin("printInt", print1("printInt", Type::intTy()));
  s.defineBuiltin("printFloat", print1("printFloat", Type::floatTy()));
  s.defineBuiltin("printBool", print1("printBool", Type::boolTy()));
  s.defineBuiltin("printStr", print1("printStr", Type::strTy()));
  // ---- tuple syntax semantics (packaged with the host, §VI-A) -----------
  auto tupleTypeH = [](Sema& s2, const ast::NodePtr& n) {
    // ty_tuple: ( TypeList )  /  aty_tuple: (| ATypeList |)
    std::vector<Type> elems;
    std::function<void(const ast::NodePtr&)> walk =
        [&](const ast::NodePtr& tl) {
          if (tl->is("typelist_two") || tl->is("atypelist_two")) {
            elems.push_back(s2.typeExpr(tl->child(0)));
            elems.push_back(s2.typeExpr(tl->child(2)));
          } else { // *_cons
            walk(tl->child(0));
            elems.push_back(s2.typeExpr(tl->child(2)));
          }
        };
    walk(n->child(1));
    for (const Type& t : elems)
      if (t.k == Type::K::Tuple) {
        s2.error(n->range, "nested tuple types are not supported");
        return Type::error();
      }
    return Type::tuple(std::move(elems));
  };
  s.defineType("ty_tuple", tupleTypeH, "tuple");
  s.defineType("aty_tuple", tupleTypeH, "tuple_alt");

  auto tupleExprErr = [](Sema& s2, const ast::NodePtr& n) {
    s2.error(n->range,
             "tuple expressions may only appear as destructuring targets, "
             "initializers of tuple variables, or return values");
    return ExprRes::error();
  };
  s.defineExpr("prim_tuple", tupleExprErr, "tuple");
  s.defineExpr("aprim_tuple", tupleExprErr, "tuple_alt");

  s.defineBuiltin("numThreads",
                  [](Sema& s2, const ast::NodePtr& n,
                     std::vector<ExprRes> args) -> ExprRes {
                    if (!args.empty()) {
                      s2.error(n->range, "numThreads takes no arguments");
                      return ExprRes::error();
                    }
                    return ExprRes{Type::intTy(),
                                   ir::call("numThreads", {}, ir::Ty::I32)};
                  });
}

} // namespace mmx::cm
