#include "cminus/sema.hpp"

#include <cassert>

#include "support/metrics.hpp"

namespace mmx::cm {

Sema::Sema(DiagnosticEngine& diags, attr::Registry& attrReg)
    : diags_(diags), attrReg_(attrReg) {
  // Declare the core attributes the handlers implement; every
  // defineExpr/defineStmt/defineType mirrors an equation into the
  // registry so the modular well-definedness analysis sees the real
  // coverage (paper §VI-B).
  typeAttr_ = attrReg_.declare<int>("type", attr::AttrKind::Synthesized, "host");
  codeAttr_ = attrReg_.declare<int>("code", attr::AttrKind::Synthesized, "host");
  stmtAttr_ =
      attrReg_.declare<int>("translation", attr::AttrKind::Synthesized, "host");
  for (const char* nt : {"Expr", "OrE", "AndE", "CmpE", "AddE", "MulE",
                         "Unary", "Postfix", "Primary"}) {
    attrReg_.occursOn(typeAttr_.id, nt);
    attrReg_.occursOn(codeAttr_.id, nt);
  }
  for (const char* nt : {"Stmt", "Open", "Closed", "Simple", "Block"})
    attrReg_.occursOn(stmtAttr_.id, nt);
}

void Sema::defineExpr(const std::string& prod, ExprHandler h,
                      const std::string& ext) {
  prodExt_[prod] = ext;
  attrReg_.synRaw(prod, typeAttr_.id,
                  [](const ast::NodePtr&, attr::Evaluator&) {
                    return std::any(0);
                  });
  attrReg_.synRaw(prod, codeAttr_.id,
                  [](const ast::NodePtr&, attr::Evaluator&) {
                    return std::any(0);
                  });
  exprH_[prod] = std::move(h);
}

void Sema::defineStmt(const std::string& prod, StmtHandler h,
                      const std::string& ext) {
  prodExt_[prod] = ext;
  attrReg_.synRaw(prod, stmtAttr_.id,
                  [](const ast::NodePtr&, attr::Evaluator&) {
                    return std::any(0);
                  });
  stmtH_[prod] = std::move(h);
}

void Sema::defineType(const std::string& prod, TypeHandler h,
                      const std::string& ext) {
  prodExt_[prod] = ext;
  typeH_[prod] = std::move(h);
}

const std::string* Sema::extensionOf(const std::string& prod) const {
  auto it = prodExt_.find(prod);
  return it == prodExt_.end() || it->second.empty() ? nullptr : &it->second;
}

void Sema::defineBuiltin(const std::string& name, CallHandler h) {
  builtins_[name] = std::move(h);
}

bool Sema::hasBuiltin(const std::string& name) const {
  return builtins_.count(name) > 0;
}

ExprRes Sema::builtinCall(const std::string& name, const ast::NodePtr& n,
                          std::vector<ExprRes> args) {
  auto it = builtins_.find(name);
  if (it == builtins_.end()) {
    error(n->range, "unknown builtin '" + name + "'");
    return ExprRes::error();
  }
  return it->second(*this, n, std::move(args));
}

std::optional<ExprRes> Sema::tryBinHooks(ir::ArithOp op, ExprRes& a,
                                         ExprRes& b, SourceRange r) {
  for (auto& h : binHooks_) {
    auto res = h(*this, op, a, b, r);
    if (res) return res;
  }
  return std::nullopt;
}

std::optional<ExprRes> Sema::tryCmpHooks(ir::CmpKind op, ExprRes& a,
                                         ExprRes& b, SourceRange r) {
  for (auto& h : cmpHooks_) {
    auto res = h(*this, op, a, b, r);
    if (res) return res;
  }
  return std::nullopt;
}

bool Sema::tryAssignHooks(const ast::NodePtr& lhs, const ast::NodePtr& rhs) {
  for (auto& h : assignHooks_)
    if (h(*this, lhs, rhs)) return true;
  return false;
}

ExprRes Sema::expr(const ast::NodePtr& n) {
  std::string kind(n->kind());
  auto it = exprH_.find(kind);
  if (it == exprH_.end()) {
    error(n->range, "no semantics registered for expression production '" +
                        kind + "'");
    return ExprRes::error();
  }
  // Diagnostics emitted by the handler record the extension that owns
  // this production (structured-diagnostics satellite of ISSUE 2).
  if (const std::string* ext = extensionOf(kind)) {
    DiagnosticEngine::OriginScope scope(diags_, *ext);
    return it->second(*this, n);
  }
  return it->second(*this, n);
}

void Sema::stmt(const ast::NodePtr& n) {
  std::string kind(n->kind());
  auto it = stmtH_.find(kind);
  if (it == stmtH_.end()) {
    error(n->range, "no semantics registered for statement production '" +
                        kind + "'");
    return;
  }
  // Everything emitted while this statement lowers reports against its
  // source range (restored afterwards: parents keep emitting glue after
  // their children lower).
  SourceRange prev = curStmtRange_;
  curStmtRange_ = n->range;
  if (const std::string* ext = extensionOf(kind)) {
    DiagnosticEngine::OriginScope scope(diags_, *ext);
    it->second(*this, n);
  } else {
    it->second(*this, n);
  }
  curStmtRange_ = prev;
}

Type Sema::typeExpr(const ast::NodePtr& n) {
  std::string kind(n->kind());
  auto it = typeH_.find(kind);
  if (it == typeH_.end()) {
    error(n->range, "no semantics registered for type production '" +
                        kind + "'");
    return Type::error();
  }
  if (const std::string* ext = extensionOf(kind)) {
    DiagnosticEngine::OriginScope scope(diags_, *ext);
    return it->second(*this, n);
  }
  return it->second(*this, n);
}

void Sema::declareFunction(const std::string& name, FuncSig sig,
                           SourceRange r) {
  if (functions_.count(name)) {
    error(r, "function '" + name + "' is declared twice");
    return;
  }
  if (builtins_.count(name))
    error(r, "function '" + name + "' collides with a builtin");
  functions_[name] = std::move(sig);
}

const FuncSig* Sema::findFunction(const std::string& name) const {
  auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : &it->second;
}

void Sema::pushScope() { scopes_.emplace_back(); }
void Sema::popScope() { scopes_.pop_back(); }

VarInfo* Sema::declareVar(const std::string& name, const Type& t,
                          SourceRange r) {
  assert(!scopes_.empty());
  if (scopes_.back().count(name)) {
    error(r, "variable '" + name + "' is already declared in this scope");
    return &scopes_.back()[name];
  }
  VarInfo info;
  info.type = t;
  info.declared = r;
  if (t.k == Type::K::Tuple) {
    for (size_t i = 0; i < t.elems.size(); ++i) {
      int32_t slot =
          fn_->addLocal(name + "." + std::to_string(i), lowerTy(t.elems[i]));
      stampMatrixMeta(*fn_, slot, t.elems[i]);
      info.slots.push_back(slot);
    }
  } else {
    int32_t slot = fn_->addLocal(name, lowerTy(t));
    stampMatrixMeta(*fn_, slot, t);
    info.slots.push_back(slot);
  }
  auto [it, ok] = scopes_.back().emplace(name, std::move(info));
  (void)ok;
  return &it->second;
}

VarInfo* Sema::lookupVar(const std::string& name) {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    auto f = it->find(name);
    if (f != it->end()) return &f->second;
  }
  return nullptr;
}

void Sema::emit(ir::StmtPtr s) {
  assert(!blockStack_.empty());
  if (s && !s->range.valid()) s->range = curStmtRange_;
  blockStack_.back().push_back(std::move(s));
}

void Sema::pushBlock() { blockStack_.emplace_back(); }

ir::StmtPtr Sema::popBlock() {
  assert(!blockStack_.empty());
  auto stmts = std::move(blockStack_.back());
  blockStack_.pop_back();
  return ir::block(std::move(stmts));
}

int32_t Sema::newTemp(const Type& t, const char* hint) {
  int32_t slot = fn_->addLocal(std::string("%") + hint +
                                   std::to_string(fn_->locals.size()),
                               lowerTy(t));
  stampMatrixMeta(*fn_, slot, t);
  return slot;
}

void Sema::stampMatrixMeta(ir::Function& f, int32_t slot, const Type& t) {
  // Declared matrix metadata for the analyses: a Mat slot whose static type
  // is concrete can only ever hold values of that element kind and rank
  // (MatrixAny-to-Matrix coercions pass through checkMatrixMeta first).
  if (t.k == Type::K::Matrix) {
    f.locals[slot].matRank = static_cast<int32_t>(t.rank);
    f.locals[slot].matElem = static_cast<int32_t>(t.elem);
  } else if (t.k == Type::K::RefPtr) {
    f.locals[slot].matRank = 1;
    f.locals[slot].matElem = static_cast<int32_t>(t.elem);
  }
}

ir::Ty Sema::lowerTy(const Type& t) {
  switch (t.k) {
    case Type::K::Void: return ir::Ty::Void;
    case Type::K::Int: return ir::Ty::I32;
    case Type::K::Float: return ir::Ty::F32;
    case Type::K::Bool: return ir::Ty::Bool;
    case Type::K::Str: return ir::Ty::Str;
    case Type::K::Matrix:
    case Type::K::MatrixAny:
    case Type::K::RefPtr: return ir::Ty::Mat;
    case Type::K::Tuple:
    case Type::K::Error: return ir::Ty::Void; // never materialized directly
  }
  return ir::Ty::Void;
}

ExprRes Sema::coerce(ExprRes r, const Type& want, SourceRange where) {
  if (r.bad() || want.isError()) return ExprRes::error();
  if (r.type == want) return r;
  // int -> float implicit widening.
  if (r.type.k == Type::K::Int && want.k == Type::K::Float) {
    r.type = Type::floatTy();
    r.code = ir::cast(ir::Ty::F32, std::move(r.code));
    return r;
  }
  // MatrixAny -> concrete matrix: runtime metadata check.
  if (r.type.k == Type::K::MatrixAny && want.k == Type::K::Matrix) {
    std::vector<ir::ExprPtr> args;
    args.push_back(std::move(r.code));
    args.push_back(ir::constI(static_cast<int32_t>(want.elem)));
    args.push_back(ir::constI(static_cast<int32_t>(want.rank)));
    r.code = ir::call("checkMatrixMeta", std::move(args), ir::Ty::Mat);
    r.type = want;
    return r;
  }
  error(where, "type mismatch: expected " + want.str() + ", found " +
                   r.type.str());
  return ExprRes::error();
}

std::string_view Sema::idText(const ast::NodePtr& n) {
  const ast::Node* cur = n.get();
  while (cur && !cur->isToken()) {
    if (cur->kids.size() != 1) {
      if (cur->is("prim_id")) {
        cur = cur->kids[0].get();
        continue;
      }
      return {};
    }
    cur = cur->kids[0].get();
  }
  return cur ? cur->text() : std::string_view{};
}

bool Sema::translate(const ast::NodePtr& tu, ir::Module& out) {
  mod_ = &out;

  // Pass 1 is the interface-level typecheck (signatures, declared types);
  // pass 2 checks bodies while lowering them. The phase split mirrors how
  // --time-report and --trace-json present the pipeline.
  std::vector<ast::NodePtr> decls;
  {
    metrics::ScopedTimer typecheckTimer("typecheck");

    // Pass 1: collect function signatures.
    decls = ast::findAll(tu, "fn_decl");
    for (const auto& d : decls) {
      // fn_decl: RetType ID ( ParamsOpt ) Block
      std::string name(d->child(1)->text());
      FuncSig sig;
      const ast::NodePtr& retN = d->child(0);
      if (retN->is("retty_void")) {
        // no returns
      } else {
        Type rt = typeExpr(retN->child(0));
        if (rt.k == Type::K::Tuple)
          sig.rets = rt.elems;
        else if (!rt.isError())
          sig.rets = {rt};
      }
      // Params.
      for (const auto& p : ast::findAll(d->child(3), "param")) {
        Type pt = typeExpr(p->child(0));
        if (pt.k == Type::K::Tuple) {
          error(p->range, "tuple-typed parameters are not supported");
          pt = Type::error();
        }
        sig.params.push_back(pt);
        sig.paramNames.emplace_back(p->child(1)->text());
      }
      declareFunction(name, std::move(sig), d->range);
    }

    if (!findFunction("main"))
      diags_.error({}, "program has no main function");
  }

  // Pass 2: lower bodies.
  {
    metrics::ScopedTimer lowerTimer("lower");
    for (const auto& d : decls) lowerFunction(d);
  }

  mod_ = nullptr;
  return !diags_.hasErrors();
}

void Sema::lowerFunction(const ast::NodePtr& d) {
  std::string name(d->child(1)->text());
  const FuncSig* sig = findFunction(name);
  if (!sig) return;

  fn_ = mod_->add(name);
  fn_->numParams = sig->params.size();
  for (const Type& t : sig->rets) fn_->rets.push_back(lowerTy(t));
  curRets_ = sig->rets;

  pushScope();
  // Parameters become the first locals, in order.
  for (size_t i = 0; i < sig->params.size(); ++i) {
    VarInfo info;
    info.type = sig->params[i];
    info.slots.push_back(
        fn_->addLocal(sig->paramNames[i], lowerTy(sig->params[i])));
    scopes_.back()[sig->paramNames[i]] = std::move(info);
  }

  pushBlock();
  stmt(d->child(5)); // Block
  fn_->body = popBlock();
  popScope();

  fn_ = nullptr;
  curRets_.clear();
}

} // namespace mmx::cm
