// Extensible semantic analysis + lowering for the composed language.
//
// Handlers are keyed by production name — the C++ rendering of attribute
// equations keyed by production (every defineExpr/defineStmt/defineType
// call is mirrored into an attr::Registry so the modular well-definedness
// analysis checks real declarations). Extensions contribute:
//   - handlers for their own productions (with-loops, matrixMap, ...),
//   - operator hooks that overload the host's +, *, <, = on their types
//     (paper §III-A2), and
//   - builtin function signatures (readMatrix, dimSize, ...).
#pragma once

#include <any>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ast/node.hpp"
#include "attr/engine.hpp"
#include "cminus/types.hpp"
#include "ir/ir.hpp"
#include "support/diag.hpp"

namespace mmx::cm {

/// A checked, lowered expression.
struct ExprRes {
  Type type;
  ir::ExprPtr code;

  static ExprRes error() { return {Type::error(), nullptr}; }
  bool bad() const { return type.isError() || !code; }
};

/// Per-variable binding. Tuples occupy several consecutive IR slots.
struct VarInfo {
  Type type;
  std::vector<int32_t> slots;
  SourceRange declared;
};

/// User-function signature (rets.size() > 1 models a tuple return).
struct FuncSig {
  std::vector<Type> params;
  std::vector<Type> rets;
  std::vector<std::string> paramNames;
};

class Sema {
public:
  Sema(DiagnosticEngine& diags, attr::Registry& attrReg);

  // --- handler registration ------------------------------------------
  using ExprHandler = std::function<ExprRes(Sema&, const ast::NodePtr&)>;
  using StmtHandler = std::function<void(Sema&, const ast::NodePtr&)>;
  using TypeHandler = std::function<Type(Sema&, const ast::NodePtr&)>;
  /// Builtin call: fully checked+lowered by the callback.
  using CallHandler =
      std::function<ExprRes(Sema&, const ast::NodePtr& callNode,
                            std::vector<ExprRes> args)>;

  void defineExpr(const std::string& prod, ExprHandler h,
                  const std::string& ext);
  void defineStmt(const std::string& prod, StmtHandler h,
                  const std::string& ext);
  void defineType(const std::string& prod, TypeHandler h,
                  const std::string& ext);
  /// Name of the extension that registered handlers for `prod`, or
  /// nullptr when unknown/empty. Diagnostic origin stamping uses this.
  const std::string* extensionOf(const std::string& prod) const;

  void defineBuiltin(const std::string& name, CallHandler h);
  bool hasBuiltin(const std::string& name) const;
  /// Invokes a registered builtin handler (call sites use hasBuiltin first).
  ExprRes builtinCall(const std::string& name, const ast::NodePtr& n,
                      std::vector<ExprRes> args);

  // --- operator overload hooks (extensions try first) -------------------
  using BinHook = std::function<std::optional<ExprRes>(
      Sema&, ir::ArithOp, ExprRes&, ExprRes&, SourceRange)>;
  using CmpHook = std::function<std::optional<ExprRes>(
      Sema&, ir::CmpKind, ExprRes&, ExprRes&, SourceRange)>;
  /// Whole-statement assignment hook; returns true when handled (the
  /// matrix extension uses this for with-loop/assignment fusion).
  using AssignHook = std::function<bool(Sema&, const ast::NodePtr& lhs,
                                        const ast::NodePtr& rhs)>;
  void addBinHook(BinHook h) { binHooks_.push_back(std::move(h)); }
  void addCmpHook(CmpHook h) { cmpHooks_.push_back(std::move(h)); }
  void addAssignHook(AssignHook h) { assignHooks_.push_back(std::move(h)); }

  std::optional<ExprRes> tryBinHooks(ir::ArithOp op, ExprRes& a, ExprRes& b,
                                     SourceRange r);
  std::optional<ExprRes> tryCmpHooks(ir::CmpKind op, ExprRes& a, ExprRes& b,
                                     SourceRange r);
  bool tryAssignHooks(const ast::NodePtr& lhs, const ast::NodePtr& rhs);

  // --- dispatch -----------------------------------------------------------
  ExprRes expr(const ast::NodePtr& n);
  void stmt(const ast::NodePtr& n);
  Type typeExpr(const ast::NodePtr& n);

  // --- functions --------------------------------------------------------
  void declareFunction(const std::string& name, FuncSig sig, SourceRange r);
  const FuncSig* findFunction(const std::string& name) const;

  // --- environment -----------------------------------------------------
  void pushScope();
  void popScope();
  /// Declares a variable in the current scope, allocating IR slots.
  VarInfo* declareVar(const std::string& name, const Type& t, SourceRange r);
  VarInfo* lookupVar(const std::string& name);

  // --- lowering state -----------------------------------------------------
  ir::Function* fn() { return fn_; }
  const ir::Module* module() const { return mod_; }
  /// Statements emitted so far in the current function, outermost block
  /// first. Hooks that run mid-lowering (the §V transformation verifier)
  /// use this as the lexical context for resolving loop-invariant temps —
  /// fn()->body is not assembled yet at that point.
  std::vector<const ir::Stmt*> emittedStmts() const {
    std::vector<const ir::Stmt*> out;
    for (const auto& blk : blockStack_)
      for (const auto& s : blk)
        if (s) out.push_back(s.get());
    return out;
  }
  /// Appends a statement to the innermost open block.
  void emit(ir::StmtPtr s);
  /// Opens a fresh statement sink; popBlock returns it as a Block.
  void pushBlock();
  ir::StmtPtr popBlock();
  /// Fresh unnamed temporary.
  int32_t newTemp(const Type& t, const char* hint = "t");
  /// Stamps ir::Local::matRank/matElem from the static type of a slot.
  static void stampMatrixMeta(ir::Function& f, int32_t slot, const Type& t);

  // --- `end` context (innermost matrix index dimension) ------------------
  struct IndexCtx {
    int32_t matSlot = -1;
    uint32_t dim = 0;
    Type matType;
  };
  void pushIndexCtx(IndexCtx c) { indexCtx_.push_back(c); }
  void popIndexCtx() { indexCtx_.pop_back(); }
  const IndexCtx* currentIndexCtx() const {
    return indexCtx_.empty() ? nullptr : &indexCtx_.back();
  }

  // --- diagnostics -------------------------------------------------------
  void error(SourceRange r, const std::string& msg) { diags_.error(r, msg); }
  DiagnosticEngine& diags() { return diags_; }

  // --- options (DESIGN.md ablation switches) ----------------------------
  bool fusionEnabled = true;          // §III-A4 assignment fusion
  bool sliceEliminationEnabled = true; // §III-A4 fold slice elimination
  bool autoParallelEnabled = true;     // §III-C parallel code generation
  bool warnShape = true;               // -Wshape: warn on proven violations
  bool strictShape = false;            // proven shape violations are errors
  bool warnTransform = true;           // -Wtransform: warn on illegal clauses
  bool strictTransform = false;        // illegal transform clauses are errors

  // --- whole-program translation ------------------------------------------
  /// Lowers a parsed translation unit into `out`. Returns false when
  /// errors were reported (module contents are then unspecified).
  bool translate(const ast::NodePtr& tu, ir::Module& out);

  // --- shared helpers ----------------------------------------------------
  static ir::Ty lowerTy(const Type& t);
  /// Implicit int->float coercion toward `want` (error otherwise).
  ExprRes coerce(ExprRes r, const Type& want, SourceRange where);
  /// Identifier text of a node expected to be a single-token leaf chain.
  static std::string_view idText(const ast::NodePtr& n);

  /// The function currently being lowered started returning values of
  /// these types (used by `return`).
  const std::vector<Type>& currentRets() const { return curRets_; }

  // Set by translate(); extensions may inspect the grammar if needed.
  attr::Registry& attrRegistry() { return attrReg_; }

  /// Cross-extension data (e.g. the matrix extension publishes its
  /// WithTail hook table here so the transform extension can extend the
  /// set of transformation specifications, paper §V).
  std::map<std::string, std::any> extensionData;

private:
  friend struct HostSemantics;
  void lowerFunction(const ast::NodePtr& fnDecl);

  DiagnosticEngine& diags_;
  attr::Registry& attrReg_;
  attr::Attribute<int> typeAttr_, codeAttr_, stmtAttr_;

  std::map<std::string, ExprHandler> exprH_;
  std::map<std::string, StmtHandler> stmtH_;
  std::map<std::string, TypeHandler> typeH_;
  std::map<std::string, std::string> prodExt_; // production -> extension

  std::map<std::string, CallHandler> builtins_;
  std::vector<BinHook> binHooks_;
  std::vector<CmpHook> cmpHooks_;
  std::vector<AssignHook> assignHooks_;

  std::map<std::string, FuncSig> functions_;

  ir::Module* mod_ = nullptr;
  ir::Function* fn_ = nullptr;
  /// Range of the source statement currently being lowered; emit() stamps
  /// it onto IR statements so analyses can report against the source.
  SourceRange curStmtRange_{};
  std::vector<Type> curRets_;
  std::vector<std::vector<ir::StmtPtr>> blockStack_;
  std::vector<std::map<std::string, VarInfo>> scopes_;
  std::vector<IndexCtx> indexCtx_;
};

/// Installs the host language's semantics (statements, expressions,
/// operators on scalars, calls, host builtins) into a Sema.
void installHostSemantics(Sema& s);

} // namespace mmx::cm
