// Context-aware scanner in the style of Copper [Van Wyk & Schwerdfeger,
// GPCE'07]: the parser supplies, at each step, the set of terminals that are
// valid in the current LR state, and the scanner matches ONLY those. This is
// what lets independently developed extensions reuse keywords (e.g. `end`
// is a keyword inside matrix index brackets but an ordinary identifier
// elsewhere).
//
// Disambiguation: maximal munch first, then higher lexical precedence
// (keywords are declared with higher precedence than identifiers); a
// same-length, same-precedence ambiguity is a scanner error.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lex/regex.hpp"
#include "support/bitset.hpp"
#include "support/diag.hpp"
#include "support/source.hpp"

namespace mmx::lex {

/// Index of a terminal within a LexSpec / composed grammar.
using TerminalId = uint32_t;

/// Declaration of one terminal symbol.
struct TerminalDef {
  std::string name;     // display name, e.g. "ID", "'with'"
  std::string pattern;  // regex, or literal text when `literal`
  bool literal = false; // keywords/operators: no metacharacters
  int precedence = 0;   // higher wins length ties (keywords > ID)
  bool layout = false;  // whitespace/comments: always valid, discarded
};

/// The terminal vocabulary of a composed language.
class LexSpec {
public:
  /// Adds a terminal; returns its id. Name collisions are the caller's
  /// responsibility (the grammar composer checks them).
  TerminalId add(TerminalDef def);

  const TerminalDef& def(TerminalId t) const { return defs_[t]; }
  size_t count() const { return defs_.size(); }

private:
  std::vector<TerminalDef> defs_;
};

/// One scanned token.
struct Token {
  TerminalId term = 0;
  SourceRange range;
  std::string_view text;
};

/// Result of a scan step.
struct ScanResult {
  enum class Status { Ok, Eof, NoMatch, Ambiguous };
  Status status = Status::Eof;
  Token token;                      // valid when Ok
  std::vector<TerminalId> matched;  // when Ambiguous: the tied terminals
};

/// Compiled scanner. Immutable and shareable after construction; scanning
/// state (the cursor) lives in ScanCursor so one scanner can serve many
/// parses.
class Scanner {
public:
  /// Compiles every terminal's DFA. Throws std::invalid_argument on a
  /// malformed regex.
  explicit Scanner(const LexSpec& spec);

  size_t terminalCount() const { return dfas_.size(); }

  /// Scans one token at `pos` in `text`, considering only terminals with a
  /// set bit in `allowed` (layout terminals are always considered and
  /// skipped). Advances `pos` past layout and the matched token.
  ScanResult scan(std::string_view text, FileId file, size_t& pos,
                  const DynBitset& allowed) const;

  /// Convenience: scan with *all* terminals allowed (context-free mode,
  /// used by tests to demonstrate why context-awareness is needed).
  ScanResult scanAny(std::string_view text, FileId file, size_t& pos) const;

private:
  struct Entry {
    Dfa dfa;
    int precedence;
    bool layout;
  };
  std::vector<Entry> dfas_;
  std::vector<TerminalId> layoutTerms_;
};

} // namespace mmx::lex
