#include "lex/scanner.hpp"

#include "support/metrics.hpp"

namespace mmx::lex {

TerminalId LexSpec::add(TerminalDef def) {
  defs_.push_back(std::move(def));
  return static_cast<TerminalId>(defs_.size() - 1);
}

Scanner::Scanner(const LexSpec& spec) {
  dfas_.reserve(spec.count());
  for (TerminalId t = 0; t < spec.count(); ++t) {
    const TerminalDef& d = spec.def(t);
    auto re = d.literal ? literalRegex(d.pattern) : parseRegex(d.pattern);
    dfas_.push_back({compileRegex(*re), d.precedence, d.layout});
    if (d.layout) layoutTerms_.push_back(t);
  }
}

ScanResult Scanner::scan(std::string_view text, FileId file, size_t& pos,
                         const DynBitset& allowed) const {
  // Skip maximal runs of layout.
  for (;;) {
    size_t best = 0;
    for (TerminalId t : layoutTerms_) {
      size_t len = dfas_[t].dfa.longestMatch(text, pos);
      if (len > best) best = len;
    }
    if (best == 0) break;
    pos += best;
  }

  if (pos >= text.size()) {
    ScanResult r;
    r.status = ScanResult::Status::Eof;
    r.token.range = {{file, static_cast<uint32_t>(pos)},
                     static_cast<uint32_t>(pos)};
    return r;
  }

  size_t bestLen = 0;
  int bestPrec = 0;
  std::vector<TerminalId> winners;
  for (TerminalId t = 0; t < dfas_.size(); ++t) {
    if (dfas_[t].layout) continue;
    if (t < allowed.size() && !allowed.test(t)) continue;
    size_t len = dfas_[t].dfa.longestMatch(text, pos);
    if (len == 0) continue;
    if (len > bestLen ||
        (len == bestLen && dfas_[t].precedence > bestPrec)) {
      bestLen = len;
      bestPrec = dfas_[t].precedence;
      winners.clear();
      winners.push_back(t);
    } else if (len == bestLen && dfas_[t].precedence == bestPrec) {
      winners.push_back(t);
    }
  }

  ScanResult r;
  if (winners.empty()) {
    r.status = ScanResult::Status::NoMatch;
    r.token.range = {{file, static_cast<uint32_t>(pos)},
                     static_cast<uint32_t>(pos + 1)};
    r.token.text = text.substr(pos, 1);
    return r;
  }
  if (winners.size() > 1) {
    r.status = ScanResult::Status::Ambiguous;
    r.matched = winners;
    r.token.range = {{file, static_cast<uint32_t>(pos)},
                     static_cast<uint32_t>(pos + bestLen)};
    r.token.text = text.substr(pos, bestLen);
    return r;
  }
  r.status = ScanResult::Status::Ok;
  r.token.term = winners[0];
  r.token.range = {{file, static_cast<uint32_t>(pos)},
                   static_cast<uint32_t>(pos + bestLen)};
  r.token.text = text.substr(pos, bestLen);

  if (metrics::enabled()) {
    static const metrics::Counter tokens = metrics::counter("lex.tokens");
    static const metrics::Counter resolved =
        metrics::counter("lex.contextResolved");
    tokens.add();
    // A token counts as context-resolved when a terminal the parse state
    // excluded would also have matched at least this long here — i.e. the
    // Copper-style restriction, not lexical precedence, decided the scan
    // (e.g. `end` as ID outside matrix index brackets). Only measured
    // when metrics are on; the extra DFA runs cost nothing when off.
    for (TerminalId t = 0; t < dfas_.size(); ++t) {
      if (dfas_[t].layout || t == winners[0]) continue;
      if (t >= allowed.size() || allowed.test(t)) continue; // not excluded
      if (dfas_[t].dfa.longestMatch(text, pos) >= bestLen) {
        resolved.add();
        break;
      }
    }
  }

  pos += bestLen;
  return r;
}

ScanResult Scanner::scanAny(std::string_view text, FileId file,
                            size_t& pos) const {
  DynBitset all(dfas_.size());
  for (size_t i = 0; i < dfas_.size(); ++i) all.set(i);
  return scan(text, file, pos, all);
}

} // namespace mmx::lex
