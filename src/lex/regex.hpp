// A small regular-expression engine sufficient for C-family tokens:
// literals, escapes, character classes, '.', grouping, '|', '*', '+', '?'.
// Regexes compile to Thompson NFAs and then to per-terminal DFAs; the
// context-aware scanner (scanner.hpp) runs only the DFAs the parser state
// permits.
#pragma once

#include <bitset>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mmx::lex {

/// Byte-class regex AST.
struct RegexNode {
  enum class Kind { Class, Concat, Alt, Star, Plus, Opt, Empty };
  Kind kind = Kind::Empty;
  std::bitset<256> cls;                        // Kind::Class
  std::vector<std::unique_ptr<RegexNode>> kids; // Concat/Alt/Star/Plus/Opt
};

/// Parses a regex. Throws std::invalid_argument with a description on
/// malformed input (terminal definitions are compile-time data for the
/// translator, so hard failure is appropriate).
std::unique_ptr<RegexNode> parseRegex(std::string_view pattern);

/// Builds a regex that matches exactly the literal string `s` (used for
/// keywords and operators; no metacharacter interpretation).
std::unique_ptr<RegexNode> literalRegex(std::string_view s);

/// A deterministic finite automaton over bytes. State 0 is the start state.
/// `next[s*256+b]` is the successor or kDead.
struct Dfa {
  static constexpr int32_t kDead = -1;
  uint32_t numStates = 0;
  std::vector<int32_t> next;     // numStates * 256
  std::vector<uint8_t> accepting; // numStates

  int32_t step(int32_t s, uint8_t b) const { return next[size_t(s) * 256 + b]; }

  /// Longest-match length of this DFA against text starting at `pos`,
  /// or 0 if no (non-empty) match.
  size_t longestMatch(std::string_view text, size_t pos) const;
};

/// Compiles a regex AST to a DFA via Thompson construction + subset
/// construction. Empty-string-accepting regexes are allowed but the scanner
/// ignores empty matches.
Dfa compileRegex(const RegexNode& re);

} // namespace mmx::lex
