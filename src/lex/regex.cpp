#include "lex/regex.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <queue>
#include <stdexcept>

namespace mmx::lex {

namespace {

std::unique_ptr<RegexNode> makeClass(std::bitset<256> cls) {
  auto n = std::make_unique<RegexNode>();
  n->kind = RegexNode::Kind::Class;
  n->cls = cls;
  return n;
}

std::unique_ptr<RegexNode> makeNode(RegexNode::Kind k,
                                    std::vector<std::unique_ptr<RegexNode>> kids) {
  auto n = std::make_unique<RegexNode>();
  n->kind = k;
  n->kids = std::move(kids);
  return n;
}

/// Recursive-descent regex parser over the supported subset.
class RegexParser {
public:
  explicit RegexParser(std::string_view s) : s_(s) {}

  std::unique_ptr<RegexNode> parse() {
    auto n = parseAlt();
    if (pos_ != s_.size())
      fail("unexpected character");
    return n;
  }

private:
  [[noreturn]] void fail(const std::string& why) {
    throw std::invalid_argument("regex \"" + std::string(s_) + "\" at offset " +
                                std::to_string(pos_) + ": " + why);
  }

  bool atEnd() const { return pos_ >= s_.size(); }
  char peek() const { return s_[pos_]; }

  std::unique_ptr<RegexNode> parseAlt() {
    std::vector<std::unique_ptr<RegexNode>> alts;
    alts.push_back(parseConcat());
    while (!atEnd() && peek() == '|') {
      ++pos_;
      alts.push_back(parseConcat());
    }
    if (alts.size() == 1) return std::move(alts[0]);
    return makeNode(RegexNode::Kind::Alt, std::move(alts));
  }

  std::unique_ptr<RegexNode> parseConcat() {
    std::vector<std::unique_ptr<RegexNode>> seq;
    while (!atEnd() && peek() != '|' && peek() != ')')
      seq.push_back(parsePostfix());
    if (seq.empty()) return makeNode(RegexNode::Kind::Empty, {});
    if (seq.size() == 1) return std::move(seq[0]);
    return makeNode(RegexNode::Kind::Concat, std::move(seq));
  }

  std::unique_ptr<RegexNode> parsePostfix() {
    auto n = parseAtom();
    while (!atEnd()) {
      char c = peek();
      RegexNode::Kind k;
      if (c == '*') k = RegexNode::Kind::Star;
      else if (c == '+') k = RegexNode::Kind::Plus;
      else if (c == '?') k = RegexNode::Kind::Opt;
      else break;
      ++pos_;
      std::vector<std::unique_ptr<RegexNode>> kid;
      kid.push_back(std::move(n));
      n = makeNode(k, std::move(kid));
    }
    return n;
  }

  std::unique_ptr<RegexNode> parseAtom() {
    if (atEnd()) fail("expected atom");
    char c = s_[pos_];
    if (c == '(') {
      ++pos_;
      auto n = parseAlt();
      if (atEnd() || peek() != ')') fail("missing ')'");
      ++pos_;
      return n;
    }
    if (c == '[') return parseCharClass();
    if (c == '.') {
      ++pos_;
      std::bitset<256> cls;
      cls.set();
      cls.reset(static_cast<uint8_t>('\n'));
      return makeClass(cls);
    }
    if (c == '\\') {
      ++pos_;
      std::bitset<256> cls;
      cls.set(static_cast<uint8_t>(parseEscape()));
      return makeClass(cls);
    }
    if (c == '*' || c == '+' || c == '?' || c == ')' || c == ']')
      fail("unexpected metacharacter");
    ++pos_;
    std::bitset<256> cls;
    cls.set(static_cast<uint8_t>(c));
    return makeClass(cls);
  }

  char parseEscape() {
    if (atEnd()) fail("dangling escape");
    char c = s_[pos_++];
    switch (c) {
      case 'n': return '\n';
      case 't': return '\t';
      case 'r': return '\r';
      case '0': return '\0';
      default: return c; // \\, \*, \[, \", ... — the character itself
    }
  }

  std::unique_ptr<RegexNode> parseCharClass() {
    assert(peek() == '[');
    ++pos_;
    bool negate = false;
    if (!atEnd() && peek() == '^') { negate = true; ++pos_; }
    std::bitset<256> cls;
    bool first = true;
    while (true) {
      if (atEnd()) fail("missing ']'");
      char c = peek();
      if (c == ']' && !first) { ++pos_; break; }
      first = false;
      char lo;
      if (c == '\\') { ++pos_; lo = parseEscape(); }
      else { lo = c; ++pos_; }
      if (!atEnd() && peek() == '-' && pos_ + 1 < s_.size() && s_[pos_ + 1] != ']') {
        ++pos_; // '-'
        char hi;
        if (peek() == '\\') { ++pos_; hi = parseEscape(); }
        else { hi = peek(); ++pos_; }
        if (static_cast<uint8_t>(hi) < static_cast<uint8_t>(lo))
          fail("inverted range in character class");
        for (int b = static_cast<uint8_t>(lo); b <= static_cast<uint8_t>(hi); ++b)
          cls.set(static_cast<size_t>(b));
      } else {
        cls.set(static_cast<uint8_t>(lo));
      }
    }
    if (negate) cls.flip();
    return makeClass(cls);
  }

  std::string_view s_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Thompson NFA

struct Nfa {
  // Transitions: state -> list of (class, target). Epsilon edges separate.
  struct Edge { std::bitset<256> cls; uint32_t to; };
  std::vector<std::vector<Edge>> edges;
  std::vector<std::vector<uint32_t>> eps;
  uint32_t start = 0, accept = 0;

  uint32_t newState() {
    edges.emplace_back();
    eps.emplace_back();
    return static_cast<uint32_t>(edges.size() - 1);
  }
};

/// Builds the fragment for `n` between fresh states; returns (in, out).
std::pair<uint32_t, uint32_t> build(Nfa& nfa, const RegexNode& n) {
  using K = RegexNode::Kind;
  switch (n.kind) {
    case K::Class: {
      uint32_t a = nfa.newState(), b = nfa.newState();
      nfa.edges[a].push_back({n.cls, b});
      return {a, b};
    }
    case K::Empty: {
      uint32_t a = nfa.newState(), b = nfa.newState();
      nfa.eps[a].push_back(b);
      return {a, b};
    }
    case K::Concat: {
      auto [in, out] = build(nfa, *n.kids.front());
      for (size_t i = 1; i < n.kids.size(); ++i) {
        auto [ki, ko] = build(nfa, *n.kids[i]);
        nfa.eps[out].push_back(ki);
        out = ko;
      }
      return {in, out};
    }
    case K::Alt: {
      uint32_t a = nfa.newState(), b = nfa.newState();
      for (const auto& k : n.kids) {
        auto [ki, ko] = build(nfa, *k);
        nfa.eps[a].push_back(ki);
        nfa.eps[ko].push_back(b);
      }
      return {a, b};
    }
    case K::Star: {
      uint32_t a = nfa.newState(), b = nfa.newState();
      auto [ki, ko] = build(nfa, *n.kids[0]);
      nfa.eps[a].push_back(ki);
      nfa.eps[a].push_back(b);
      nfa.eps[ko].push_back(ki);
      nfa.eps[ko].push_back(b);
      return {a, b};
    }
    case K::Plus: {
      auto [ki, ko] = build(nfa, *n.kids[0]);
      uint32_t b = nfa.newState();
      nfa.eps[ko].push_back(ki);
      nfa.eps[ko].push_back(b);
      return {ki, b};
    }
    case K::Opt: {
      uint32_t a = nfa.newState(), b = nfa.newState();
      auto [ki, ko] = build(nfa, *n.kids[0]);
      nfa.eps[a].push_back(ki);
      nfa.eps[a].push_back(b);
      nfa.eps[ko].push_back(b);
      return {a, b};
    }
  }
  throw std::logic_error("unreachable regex kind");
}

void epsClosure(const Nfa& nfa, std::vector<uint32_t>& states) {
  std::vector<uint8_t> seen(nfa.eps.size(), 0);
  std::queue<uint32_t> q;
  for (uint32_t s : states) { seen[s] = 1; q.push(s); }
  while (!q.empty()) {
    uint32_t s = q.front();
    q.pop();
    for (uint32_t t : nfa.eps[s])
      if (!seen[t]) { seen[t] = 1; q.push(t); states.push_back(t); }
  }
  std::sort(states.begin(), states.end());
}

} // namespace

std::unique_ptr<RegexNode> parseRegex(std::string_view pattern) {
  return RegexParser(pattern).parse();
}

std::unique_ptr<RegexNode> literalRegex(std::string_view s) {
  std::vector<std::unique_ptr<RegexNode>> seq;
  for (char c : s) {
    std::bitset<256> cls;
    cls.set(static_cast<uint8_t>(c));
    seq.push_back(makeClass(cls));
  }
  if (seq.empty()) return makeNode(RegexNode::Kind::Empty, {});
  if (seq.size() == 1) return std::move(seq[0]);
  return makeNode(RegexNode::Kind::Concat, std::move(seq));
}

Dfa compileRegex(const RegexNode& re) {
  Nfa nfa;
  auto [in, out] = build(nfa, re);
  nfa.start = in;
  nfa.accept = out;

  // Subset construction.
  Dfa dfa;
  std::map<std::vector<uint32_t>, int32_t> ids;
  std::vector<std::vector<uint32_t>> subsets;

  std::vector<uint32_t> start{nfa.start};
  epsClosure(nfa, start);
  ids[start] = 0;
  subsets.push_back(start);

  for (size_t cur = 0; cur < subsets.size(); ++cur) {
    // Materialize the row lazily: compute successors per byte. To avoid a
    // 256x inner NFA walk we group bytes by the union of matching edges.
    const auto subset = subsets[cur];
    dfa.next.resize((cur + 1) * 256, Dfa::kDead);
    bool acc = false;
    for (uint32_t s : subset)
      if (s == nfa.accept) acc = true;
    dfa.accepting.push_back(acc ? 1 : 0);

    for (int b = 0; b < 256; ++b) {
      std::vector<uint32_t> tgt;
      for (uint32_t s : subset)
        for (const auto& e : nfa.edges[s])
          if (e.cls.test(static_cast<size_t>(b))) tgt.push_back(e.to);
      if (tgt.empty()) continue;
      std::sort(tgt.begin(), tgt.end());
      tgt.erase(std::unique(tgt.begin(), tgt.end()), tgt.end());
      epsClosure(nfa, tgt);
      auto [it, inserted] = ids.emplace(tgt, static_cast<int32_t>(subsets.size()));
      if (inserted) subsets.push_back(tgt);
      dfa.next[cur * 256 + static_cast<size_t>(b)] = it->second;
    }
  }
  dfa.numStates = static_cast<uint32_t>(subsets.size());
  dfa.next.resize(dfa.numStates * 256, Dfa::kDead);
  return dfa;
}

size_t Dfa::longestMatch(std::string_view text, size_t pos) const {
  int32_t s = 0;
  size_t best = 0;
  size_t i = pos;
  while (i < text.size()) {
    s = step(s, static_cast<uint8_t>(text[i]));
    if (s == kDead) break;
    ++i;
    if (accepting[static_cast<size_t>(s)]) best = i - pos;
  }
  return best;
}

} // namespace mmx::lex
