#include "driver/translator.hpp"

#include <set>

#include <algorithm>
#include <tuple>

#include "analysis/depend.hpp"
#include "analysis/lint.hpp"
#include "analysis/parsafe.hpp"
#include "analysis/shapecheck.hpp"
#include "cminus/host_grammar.hpp"
#include "cminus/sema.hpp"
#include "ir/optimize.hpp"
#include "parse/lalr.hpp"
#include "support/metrics.hpp"

namespace mmx::driver {

bool TranslateResult::hasErrors() const {
  for (const auto& d : diagnostics)
    if (d.severity == Severity::Error) return true;
  return false;
}

std::string TranslateResult::renderDiagnostics() const {
  return mmx::renderDiagnostics(diagnostics, sourceManager.get());
}

Translator::Translator() = default;
Translator::~Translator() = default;

void Translator::addExtension(ext::ExtensionPtr e) {
  extensions_.push_back(std::move(e));
}

bool Translator::compose(TranslateOptions opts) {
  metrics::ScopedTimer composeTimer("compose");
  opts_ = opts;
  composeDiags_.clear();

  // Duplicate extension registrations compose into nonsense grammars
  // (every symbol "clashes with itself"); reject them up front with the
  // offending extension named in the structured diagnostic.
  std::set<std::string> extNames;
  for (const auto& e : extensions_) {
    if (!extNames.insert(e->name()).second) {
      DiagnosticEngine::OriginScope origin(composeDiags_, e->name());
      composeDiags_.error({}, "extension '" + e->name() +
                                  "' registered more than once");
    }
  }
  if (composeDiags_.hasErrors()) return false;

  ext::GrammarFragment host = cm::hostFragment();
  ext::GrammarFragment tuple = cm::tupleFragment(); // host-packaged (§VI-A)
  std::vector<ext::GrammarFragment> extFrags;
  for (const auto& e : extensions_) extFrags.push_back(e->grammarFragment());

  std::vector<const ext::GrammarFragment*> all{&host, &tuple};
  for (const auto& f : extFrags) all.push_back(&f);

  grammar_ = grammar::Grammar();
  if (!ext::composeGrammar(all, grammar_, composeDiags_)) return false;

  parser_ = std::make_unique<parse::Parser>(grammar_);
  {
    static const metrics::Counter states = metrics::counter("parse.lalrStates");
    static const metrics::Counter conflicts =
        metrics::counter("parse.lalrConflicts");
    states.add(parser_->tables().stateCount());
    conflicts.add(parser_->tables().conflicts().size());
  }
  if (!parser_->tables().conflicts().empty()) {
    for (const auto& c : parser_->tables().conflicts())
      composeDiags_.error({}, "composition is not LALR(1): " + c.description);
    return false;
  }

  attrReg_ = std::make_unique<attr::Registry>();
  sema_ = std::make_unique<cm::Sema>(composeDiags_, *attrReg_);
  sema_->fusionEnabled = opts.fusion;
  sema_->sliceEliminationEnabled = opts.sliceElimination;
  sema_->autoParallelEnabled = opts.autoParallel;
  sema_->warnShape = opts.warnShape;
  sema_->strictShape = opts.strictShape;
  sema_->warnTransform = opts.warnTransform;
  sema_->strictTransform = opts.strictTransform;
  cm::installHostSemantics(*sema_);
  for (const auto& e : extensions_) e->installSemantics(*sema_);

  composed_ = true;
  return !composeDiags_.hasErrors();
}

std::string Translator::renderComposeDiagnostics() const {
  return composeDiags_.render(composeSm_);
}

TranslateResult Translator::translate(const std::string& name,
                                      const std::string& source) {
  TranslateResult res;
  if (!composed_) {
    res.diagnostics.push_back(
        {Severity::Error, {}, "translator was not composed", ""});
    return res;
  }
  res.sourceManager = std::make_shared<SourceManager>();
  SourceManager& sm = *res.sourceManager;
  DiagnosticEngine diags;
  FileId file = sm.add(name, source);

  {
    metrics::ScopedTimer parseTimer("parse");
    res.tree = parser_->parse(sm, file, diags);
  }
  if (!res.tree) {
    res.diagnostics = diags.take();
    return res;
  }

  // Fresh Sema per program (function tables are per-program) with the same
  // handler registrations: rebuild from the installed extension set.
  attr::Registry reg;
  cm::Sema sema(diags, reg);
  sema.fusionEnabled = opts_.fusion;
  sema.sliceEliminationEnabled = opts_.sliceElimination;
  sema.autoParallelEnabled = opts_.autoParallel;
  sema.warnShape = opts_.warnShape;
  sema.strictShape = opts_.strictShape;
  sema.warnTransform = opts_.warnTransform;
  sema.strictTransform = opts_.strictTransform;
  cm::installHostSemantics(sema);
  for (const auto& e : extensions_) e->installSemantics(sema);

  auto mod = std::make_unique<ir::Module>();
  bool ok = sema.translate(res.tree, *mod); // typecheck + lower phases
  ir::OptStats optStats;
  if (ok) {
    {
      // Whole-program optimizer (ISSUE 6): fusion / temp elimination /
      // in-place rewriting over the lowered IR, before parallel-safety
      // enforcement (fused nests get re-verified and demoted like any
      // other loop) and before shapecheck (the guard plan is keyed by
      // statement addresses of the final IR). At -O0 no pass is enabled
      // and optimizeModule only registers its counters.
      metrics::ScopedTimer wpoTimer("optimizer");
      ir::OptOptions oo;
      oo.fuse = opts_.optFuse;
      oo.elimTemp = opts_.optElimTemp;
      oo.inplace = opts_.optInplace;
      oo.autopar = opts_.optAutopar;
      optStats = ir::optimizeModule(*mod, oo);
    }
    // Post-lowering parallel-safety enforcement: loops the §III-C
    // auto-parallelizer or a `parallelize` clause marked parallel are
    // demoted to serial unless the race analysis proves them safe.
    {
      metrics::ScopedTimer optTimer("optimize");
      analysis::ParSafeOptions po;
      po.warnParallel = opts_.warnParallel;
      po.strictParallel = opts_.strictParallel;
      analysis::enforceParallelSafety(*mod, diags, po);
    }
    {
      // Symbolic shape & bounds verification over the final IR (after
      // transforms and demotions): fills the guard plan Auto-mode
      // backends consult and reports proven violations per -Wshape /
      // --strict-shape.
      metrics::ScopedTimer shapeTimer("shapecheck");
      auto plan = std::make_shared<ir::GuardPlan>();
      analysis::ShapeCheckOptions so;
      so.warnShape = opts_.warnShape;
      so.strictShape = opts_.strictShape;
      analysis::ShapeCheckStats st =
          analysis::checkShapes(*mod, *plan, diags, so);
      res.guardPlan = std::move(plan);
      static const metrics::Counter elided =
          metrics::counter("shapecheck.guards.elided");
      static const metrics::Counter kept =
          metrics::counter("shapecheck.guards.kept");
      static const metrics::Counter violations =
          metrics::counter("shapecheck.guards.violations");
      static const metrics::Counter pairs =
          metrics::counter("shapecheck.refcount.elidedPairs");
      static const metrics::Counter fullWrites =
          metrics::counter("shapecheck.genarray.fullyWritten");
      fullWrites.add(res.guardPlan->fullyWritten.size());
      elided.add(st.guardsSafe);
      kept.add(st.guardsKept());
      violations.add(st.guardsViolating);
      pairs.add(st.borrowedParams);
    }
    {
      // Whole-module dependence analysis: feeds the depend.* counters and
      // the --analyze report. Skipped when neither consumer is active.
      static const metrics::Counter cNests = metrics::counter("depend.nests");
      static const metrics::Counter cVectors =
          metrics::counter("depend.vectors");
      static const metrics::Counter cUnknown =
          metrics::counter("depend.unknown");
      if (opts_.analyze || metrics::enabled()) {
        metrics::ScopedTimer dependTimer("depend");
        analysis::Depend dep(*mod);
        analysis::DependStats ds;
        std::vector<analysis::NestDeps> nests = dep.analyzeModule(&ds);
        cNests.add(ds.nests);
        cVectors.add(ds.vectors);
        cUnknown.add(ds.unknown);
        if (opts_.analyze)
          res.analysisReport += analysis::renderDependReport(nests);
      }
    }
    if (opts_.analyze) {
      metrics::ScopedTimer analyzeTimer("analyze");
      analysis::ParSafe ps(*mod);
      res.analysisReport =
          analysis::renderAnalysis(*mod, ps.analyzeAll()) +
          res.analysisReport;
      res.analysisReport +=
          "optimizer: fused=" + std::to_string(optStats.fused) +
          " temps-eliminated=" + std::to_string(optStats.tempsEliminated) +
          " inplace=" + std::to_string(optStats.inplaceConverted) +
          " alias-blocked=" + std::to_string(optStats.aliasBlocked) +
          " autopar-promoted=" + std::to_string(optStats.autoparPromoted) +
          " autopar-blocked=" + std::to_string(optStats.autoparBlocked) +
          "\n";
      analysis::LintOptions lo;
      lo.deadMatrix = opts_.warnDeadMatrix;
      analysis::lintModule(*mod, diags, lo);
    }
  }
  res.diagnostics = diags.take();
  if (opts_.analyze) {
    // Analyze mode runs parsafe and the dependence verifier over the same
    // nests; identical findings (same pass, location, text) would render
    // twice. Stable-sort by (location, pass) and drop exact duplicates —
    // operating on groups (a warning/error plus its trailing notes) so
    // witness notes stay attached to the finding they explain.
    using Group = std::pair<size_t, size_t>; // [begin, end) indices
    std::vector<Group> groups;
    for (size_t i = 0; i < res.diagnostics.size();) {
      size_t j = i + 1;
      while (j < res.diagnostics.size() &&
             res.diagnostics[j].severity == Severity::Note)
        ++j;
      groups.push_back({i, j});
      i = j;
    }
    auto key = [&](const Group& g) {
      const Diagnostic& d = res.diagnostics[g.first];
      return std::make_tuple(d.range.begin.file, d.range.begin.offset,
                             d.extension);
    };
    std::stable_sort(groups.begin(), groups.end(),
                     [&](const Group& a, const Group& b) {
                       return key(a) < key(b);
                     });
    auto sameDiag = [](const Diagnostic& a, const Diagnostic& b) {
      return a.severity == b.severity &&
             a.range.begin.file == b.range.begin.file &&
             a.range.begin.offset == b.range.begin.offset &&
             a.range.end == b.range.end && a.message == b.message &&
             a.extension == b.extension;
    };
    std::vector<Diagnostic> out;
    for (size_t g = 0; g < groups.size(); ++g) {
      if (g > 0) {
        const Group& p = groups[g - 1];
        const Group& c = groups[g];
        if (c.second - c.first == p.second - p.first) {
          bool dup = true;
          for (size_t k = 0; dup && k < c.second - c.first; ++k)
            dup = sameDiag(res.diagnostics[p.first + k],
                           res.diagnostics[c.first + k]);
          if (dup) continue;
        }
      }
      for (size_t k = groups[g].first; k < groups[g].second; ++k)
        out.push_back(res.diagnostics[k]);
    }
    res.diagnostics = std::move(out);
  }
  res.boundsChecks = opts_.boundsChecks;
  if (!ok || res.hasErrors()) return res;
  res.ok = true;
  res.module = std::move(mod);
  return res;
}

} // namespace mmx::driver
