#include "driver/invocation.hpp"

#include <algorithm>
#include <functional>
#include <sstream>
#include <vector>

#include "runtime/backend.hpp"
#include "runtime/memsys.hpp"

namespace mmx::driver {

namespace {

/// --backend help text listing the registered backend names (built once;
/// FlagSpec stores a const char*).
const char* backendHelp() {
  static const std::string text = [] {
    std::string s = "kernel backend: ";
    for (const std::string& n : rt::backendNames()) s += n + ", ";
    s += "or auto = best available (default auto; $MMX_BACKEND overrides "
         "auto)";
    return s;
  }();
  return text.c_str();
}

/// --alloc help text listing the memsys allocator names.
const char* allocHelp() {
  static const std::string text = [] {
    std::string s = "matrix allocator: ";
    for (const std::string& n : rt::allocatorNames()) s += n + ", ";
    s += "or auto = cache (default auto; $MMX_ALLOC overrides auto)";
    return s;
  }();
  return text.c_str();
}

/// Strict positive-integer parse: the whole string must be digits.
bool parsePositive(const std::string& s, unsigned& out) {
  if (s.empty() || s.size() > 9) return false;
  unsigned v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<unsigned>(c - '0');
  }
  if (v == 0) return false;
  out = v;
  return true;
}

/// One row of the flag table. `apply` consumes the flag's value (empty for
/// valueless flags) and reports problems through its return value.
struct FlagSpec {
  const char* flag;    // e.g. "--threads"
  const char* metavar; // nullptr for valueless flags
  const char* help;
  std::function<std::string(CompilerInvocation&, const std::string&)> apply;
};

/// THE table: every mmc option, once. parseArgv and helpText both walk it.
const std::vector<FlagSpec>& flagTable() {
  auto set = [](bool CompilerInvocation::*field, bool value) {
    return [field, value](CompilerInvocation& inv,
                          const std::string&) -> std::string {
      inv.*field = value;
      return {};
    };
  };
  auto setOpt = [](bool TranslateOptions::*field, bool value) {
    return [field, value](CompilerInvocation& inv,
                          const std::string&) -> std::string {
      inv.opts.*field = value;
      return {};
    };
  };
  static const std::vector<FlagSpec> table = {
      {"--emit-ir", nullptr, "print the lowered loop IR and exit",
       set(&CompilerInvocation::emitIr, true)},
      {"--emit-c", nullptr, "print plain parallel C (OpenMP+SSE) and exit",
       set(&CompilerInvocation::emitC, true)},
      {"--analyze", nullptr,
       "print the parallel-safety report + IR lints and exit",
       set(&CompilerInvocation::analyze, true)},
      {"--threads", "N", "run with N threads (default 1)",
       [](CompilerInvocation& inv, const std::string& v) -> std::string {
         if (!parsePositive(v, inv.threads))
           return "invalid --threads value '" + v +
                  "' (expected a positive integer)";
         return {};
       }},
      {"--executor", "KIND",
       "executor: serial, forkjoin, or naive (default: serial for 1 "
       "thread, forkjoin beyond)",
       [](CompilerInvocation& inv, const std::string& v) -> std::string {
         auto k = rt::executorKindFromString(v);
         if (!k)
           return "invalid --executor value '" + v +
                  "' (expected serial, forkjoin, or naive)";
         inv.executor = *k;
         inv.executorExplicit = true;
         return {};
       }},
      {"-O0", nullptr,
       "disable the whole-program optimizer (default; output is "
       "byte-identical to the unoptimized pipeline)",
       [](CompilerInvocation& inv, const std::string&) -> std::string {
         inv.opts.optFuse = inv.opts.optElimTemp = inv.opts.optInplace =
             inv.opts.optAutopar = false;
         return {};
       }},
      {"-O1", nullptr,
       "enable all optimizer passes (fuse, elim-temp, inplace, autopar)",
       [](CompilerInvocation& inv, const std::string&) -> std::string {
         inv.opts.optFuse = inv.opts.optElimTemp = inv.opts.optInplace =
             inv.opts.optAutopar = true;
         return {};
       }},
      {"--opt", "LIST",
       "enable individual optimizer passes: comma-separated fuse, "
       "elim-temp, inplace, autopar (or none)",
       [](CompilerInvocation& inv, const std::string& v) -> std::string {
         inv.opts.optFuse = inv.opts.optElimTemp = inv.opts.optInplace =
             inv.opts.optAutopar = false;
         size_t pos = 0;
         while (pos <= v.size()) {
           size_t comma = v.find(',', pos);
           std::string p = v.substr(
               pos, comma == std::string::npos ? std::string::npos
                                               : comma - pos);
           if (p == "fuse")
             inv.opts.optFuse = true;
           else if (p == "elim-temp")
             inv.opts.optElimTemp = true;
           else if (p == "inplace")
             inv.opts.optInplace = true;
           else if (p == "autopar")
             inv.opts.optAutopar = true;
           else if (p != "none" && !p.empty())
             return "invalid --opt pass '" + p +
                    "' (expected fuse, elim-temp, inplace, autopar, or none)";
           if (comma == std::string::npos) break;
           pos = comma + 1;
         }
         return {};
       }},
      {"--no-fusion", nullptr, "disable with-loop/assignment fusion (ablation)",
       setOpt(&TranslateOptions::fusion, false)},
      {"--no-parallel", nullptr, "disable parallel code generation (ablation)",
       setOpt(&TranslateOptions::autoParallel, false)},
      {"--no-slice-elim", nullptr, "disable fold slice elimination (ablation)",
       setOpt(&TranslateOptions::sliceElimination, false)},
      {"--strict-parallel", nullptr,
       "treat an unsafe `parallelize` clause as an error",
       setOpt(&TranslateOptions::strictParallel, true)},
      {"-Wparallel", nullptr, "warn when loops are demoted to serial (default)",
       setOpt(&TranslateOptions::warnParallel, true)},
      {"-Wno-parallel", nullptr, "silence loop-demotion warnings",
       setOpt(&TranslateOptions::warnParallel, false)},
      {"--bounds-checks", "MODE",
       "runtime guards: on, off, or auto = elide proven-safe guards "
       "(default auto)",
       [](CompilerInvocation& inv, const std::string& v) -> std::string {
         if (v == "on")
           inv.opts.boundsChecks = ir::BoundsCheckMode::On;
         else if (v == "off")
           inv.opts.boundsChecks = ir::BoundsCheckMode::Off;
         else if (v == "auto")
           inv.opts.boundsChecks = ir::BoundsCheckMode::Auto;
         else
           return "invalid --bounds-checks value '" + v +
                  "' (expected on, off, or auto)";
         return {};
       }},
      {"--strict-shape", nullptr,
       "treat proven shape/bounds violations as errors",
       setOpt(&TranslateOptions::strictShape, true)},
      {"--strict-transform", nullptr,
       "treat transformation clauses that cannot be proven legal as errors",
       setOpt(&TranslateOptions::strictTransform, true)},
      {"-Wtransform", nullptr,
       "warn on transformation clauses that cannot be proven legal (default)",
       setOpt(&TranslateOptions::warnTransform, true)},
      {"-Wno-transform", nullptr,
       "silence transformation-legality warnings",
       setOpt(&TranslateOptions::warnTransform, false)},
      {"-Wshape", nullptr,
       "warn on proven shape/bounds violations (default)",
       setOpt(&TranslateOptions::warnShape, true)},
      {"-Wno-shape", nullptr, "silence proven shape/bounds warnings",
       setOpt(&TranslateOptions::warnShape, false)},
      {"-Wdead-matrix", nullptr,
       "warn on matrices allocated but never read (default; --analyze)",
       setOpt(&TranslateOptions::warnDeadMatrix, true)},
      {"-Wno-dead-matrix", nullptr,
       "silence allocated-but-dead matrix warnings",
       setOpt(&TranslateOptions::warnDeadMatrix, false)},
      {"--instrument", "MODE",
       "compile profiling into emitted C: off, counters, or trace "
       "(default off; see $MMX_PROF_JSON / $MMX_PROF_TRACE)",
       [](CompilerInvocation& inv, const std::string& v) -> std::string {
         if (v == "off")
           inv.instrument = ir::InstrumentMode::Off;
         else if (v == "counters")
           inv.instrument = ir::InstrumentMode::Counters;
         else if (v == "trace")
           inv.instrument = ir::InstrumentMode::Trace;
         else
           return "invalid --instrument value '" + v +
                  "' (expected off, counters, or trace)";
         return {};
       }},
      {"--backend", "NAME", backendHelp(),
       [](CompilerInvocation& inv, const std::string& v) -> std::string {
         if (v.empty()) return "--backend requires a value";
         // Names are validated against the registry by the driver (a
         // structured diagnostic, so embedders see it too), not here.
         inv.backend = v;
         return {};
       }},
      {"--alloc", "NAME", allocHelp(),
       [](CompilerInvocation& inv, const std::string& v) -> std::string {
         if (v.empty()) return "--alloc requires a value";
         // Names are validated against the memsys registry by the driver
         // (a structured diagnostic), not here.
         inv.alloc = v;
         return {};
       }},
      {"--time-report", nullptr,
       "print a phase-timing + counter table to stderr",
       set(&CompilerInvocation::timeReport, true)},
      {"--stats-json", "FILE", "write flat counter/timer JSON to FILE",
       [](CompilerInvocation& inv, const std::string& v) -> std::string {
         inv.statsJsonPath = v;
         return {};
       }},
      {"--trace-json", "FILE",
       "write Chrome trace-event JSON to FILE (about:tracing / Perfetto)",
       [](CompilerInvocation& inv, const std::string& v) -> std::string {
         inv.traceJsonPath = v;
         return {};
       }},
      {"--perf-counters", nullptr,
       "sample hardware PMU counters (cycles, instructions, cache/branch "
       "misses) around kernel spans; skips gracefully when unavailable",
       set(&CompilerInvocation::perfCounters, true)},
      {"--help", nullptr, "show this help",
       set(&CompilerInvocation::showHelp, true)},
  };
  return table;
}

} // namespace

CompilerInvocation::ParseResult
CompilerInvocation::parseArgv(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    // Value-taking flags accept both `--flag value` and `--flag=value`.
    std::string joined;
    bool hasJoined = false;
    if (size_t eq = a.find('='); eq != std::string::npos && a.size() > 1 &&
                                 a[0] == '-') {
      joined = a.substr(eq + 1);
      hasJoined = true;
      a.resize(eq);
    }
    const FlagSpec* spec = nullptr;
    for (const FlagSpec& f : flagTable())
      if (a == f.flag) {
        spec = &f;
        break;
      }
    if (spec) {
      if (hasJoined && !spec->metavar)
        return {false, std::string(spec->flag) + " does not take a value"};
      std::string value;
      if (spec->metavar) {
        if (hasJoined) {
          value = joined;
        } else {
          if (i + 1 >= argc)
            return {false, std::string(spec->flag) + " requires a value"};
          value = argv[++i];
        }
      }
      std::string err = spec->apply(*this, value);
      if (!err.empty()) return {false, err};
      continue;
    }
    if (hasJoined) a += "=" + joined; // restore for the error message
    if (!a.empty() && a[0] == '-')
      return {false, "unknown option '" + a + "'"};
    if (!inputPath.empty())
      return {false, "unexpected extra input file '" + a +
                         "' (already have '" + inputPath + "')"};
    inputPath = a;
  }
  opts.analyze = analyze;
  if (!showHelp && inputPath.empty()) return {false, "no input file"};
  return {};
}

std::string CompilerInvocation::helpText() {
  std::ostringstream out;
  out << "usage: mmc <file.xc> [options]\n\noptions:\n";
  size_t w = 0;
  auto label = [](const FlagSpec& f) {
    std::string s = f.flag;
    if (f.metavar) s += std::string(" <") + f.metavar + ">";
    return s;
  };
  for (const FlagSpec& f : flagTable()) w = std::max(w, label(f).size());
  for (const FlagSpec& f : flagTable()) {
    std::string l = label(f);
    out << "  " << l << std::string(w - l.size() + 2, ' ') << f.help << "\n";
  }
  return out.str();
}

} // namespace mmx::driver
