// mmc: the extended-C translator CLI. Run `mmc --help` for the full flag
// list — it is generated from the CompilerInvocation table, the single
// declaration of every option. Composes the host with the matrix,
// refcount, transform, and alt-tuple extensions, translates the program,
// and runs it on the interpreter.
//
// Observability: --time-report prints a phase/counters table to stderr;
// --stats-json <file> writes flat counters; --trace-json <file> writes
// Chrome trace-event JSON (open in about:tracing or Perfetto).
#include <atomic>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string_view>

#include "driver/invocation.hpp"
#include "driver/translator.hpp"
#include "ir/cemit.hpp"
#include "ext_matrix/matrix_ext.hpp"
#include "ext_refcount/refcount_ext.hpp"
#include "ext_transform/transform_ext.hpp"
#include "interp/interp.hpp"
#include "runtime/backend.hpp"
#include "runtime/memsys.hpp"
#include "support/crash.hpp"
#include "support/diag.hpp"
#include "support/metrics.hpp"
#include "support/perf.hpp"

namespace {

int usage(const std::string& problem) {
  if (!problem.empty()) std::cerr << "mmc: " << problem << "\n";
  std::cerr << mmx::driver::CompilerInvocation::helpText();
  return 2;
}

// Abnormal-exit flush state (ISSUE 10 satellite): every controlled path
// calls emitMetrics directly; the atexit/terminate hooks below catch the
// rest (exit() from a library, an unhandled exception, mmx_fail-style
// aborts) so --stats-json is not silently lost.
const mmx::driver::CompilerInvocation* g_flushInv = nullptr;
std::atomic<bool> g_metricsFlushed{false};

/// Writes the requested observability outputs; returns false (with a
/// message on stderr) when a file cannot be written.
bool emitMetrics(const mmx::driver::CompilerInvocation& inv) {
  mmx::metrics::stopIntervalExport(); // final JSONL delta before the dump
  if (!inv.metricsRequested()) return true;
  if (g_metricsFlushed.exchange(true)) return true; // already written
  // Under --analyze, include zero-valued counters: consumers of the
  // per-pass sections (opt.*, shapecheck.*) key off their presence.
  mmx::metrics::Snapshot snap = mmx::metrics::snapshot(inv.analyze);
  if (inv.timeReport) std::cerr << mmx::metrics::renderTimeReport(snap);
  auto writeFile = [](const std::string& path,
                      const std::string& body) -> bool {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "mmc: cannot write " << path << "\n";
      return false;
    }
    out << body;
    return true;
  };
  if (!inv.statsJsonPath.empty() &&
      !writeFile(inv.statsJsonPath, mmx::metrics::renderStatsJson(snap)))
    return false;
  if (!inv.traceJsonPath.empty() &&
      !writeFile(inv.traceJsonPath, mmx::metrics::renderTraceJson(snap)))
    return false;
  return true;
}

void flushMetricsAtExit() {
  if (g_flushInv) emitMetrics(*g_flushInv);
}

/// Starts the continuous exporter (ISSUE 10 pillar 4) when
/// $MMX_STATS_INTERVAL_MS is a positive integer. The JSONL lands at
/// $MMX_STATS_JSONL (default mmx_stats.jsonl). Implies metrics.
bool maybeStartIntervalExport() {
  const char* ms = std::getenv("MMX_STATS_INTERVAL_MS");
  if (!ms || !*ms) return false;
  long interval = std::strtol(ms, nullptr, 10);
  if (interval <= 0) return false;
  const char* path = std::getenv("MMX_STATS_JSONL");
  mmx::metrics::enable(true);
  return mmx::metrics::startIntervalExport(
      path && *path ? path : "mmx_stats.jsonl",
      static_cast<unsigned>(interval));
}

/// Deliberate-fault hook for the crash-recorder fixtures: translating a
/// real program first gives the dump counters and spans to carry.
void maybeDebugCrash() {
  const char* mode = std::getenv("MMX_DEBUG_CRASH");
  if (!mode) return;
  if (std::string_view(mode) == "segv") {
    volatile int* p = nullptr;
    *p = 42; // SIGSEGV through the installed flight recorder
  } else if (std::string_view(mode) == "abort") {
    std::abort();
  }
}

} // namespace

int main(int argc, char** argv) {
  // Static: the atexit flush hook below reads it after main's frame is
  // gone (exit() runs handlers once locals are already destroyed).
  static mmx::driver::CompilerInvocation inv;
  auto parsed = inv.parseArgv(argc, argv);
  if (!parsed.ok) return usage(parsed.error);
  if (inv.showHelp) {
    std::cout << mmx::driver::CompilerInvocation::helpText();
    return 0;
  }

  // Flight recorder first (ISSUE 10 pillar 3): $MMX_CRASH_JSON arms the
  // SIGSEGV/SIGABRT/SIGFPE/SIGBUS dump before any real work runs.
  mmx::crash::installFromEnv();

  // Validate the kernel backend selection (--backend, falling back to
  // $MMX_BACKEND under auto) up front: an unknown or unavailable name is
  // a structured diagnostic, not a usage error, and it also gates
  // --emit-c (the emitted program selects the same backend at startup).
  if (std::string err = mmx::rt::backendSelectionError(inv.backend);
      !err.empty()) {
    mmx::Diagnostic d;
    d.severity = mmx::Severity::Error;
    d.message = err;
    d.extension = "backend";
    std::cerr << mmx::renderDiagnostic(d, nullptr);
    return 2;
  }
  // Same pre-flight for the matrix allocator (--alloc, falling back to
  // $MMX_ALLOC under auto): emitted programs select the same strategy at
  // startup, so an unknown name fails here for --emit-c too.
  if (std::string err = mmx::rt::allocatorSelectionError(inv.alloc);
      !err.empty()) {
    mmx::Diagnostic d;
    d.severity = mmx::Severity::Error;
    d.message = err;
    d.extension = "alloc";
    std::cerr << mmx::renderDiagnostic(d, nullptr);
    return 2;
  }

  std::ifstream in(inv.inputPath);
  if (!in) {
    std::cerr << "mmc: cannot open " << inv.inputPath << "\n";
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  if (inv.metricsRequested()) mmx::metrics::enable(true);
  if (inv.perfCounters) mmx::perf::setRequested(true);
  maybeStartIntervalExport();
  // Abnormal-exit insurance: whatever path leaves the process — a clean
  // return, exit() from a library, or an unhandled exception — the
  // requested stats files get written exactly once.
  g_flushInv = &inv;
  std::atexit(flushMetricsAtExit);
  std::set_terminate([] {
    flushMetricsAtExit();
    std::abort();
  });

  mmx::driver::Translator t;
  t.addExtension(mmx::ext_matrix::matrixExtension());
  t.addExtension(mmx::ext_refcount::refcountExtension());
  t.addExtension(mmx::ext_transform::transformExtension());
  if (!t.compose(inv.opts)) {
    std::cerr << t.renderComposeDiagnostics();
    emitMetrics(inv);
    return 1;
  }
  auto res = t.translate(inv.inputPath, buf.str());
  std::cerr << res.renderDiagnostics();
  maybeDebugCrash();
  // Under --strict-transform an illegal transformation clause is a compile
  // error with its own exit code (2, like usage/backend problems) so CI
  // can distinguish "clause proven illegal" from ordinary translation
  // failures.
  auto strictTransformFailure = [&res, &inv] {
    if (!inv.opts.strictTransform) return false;
    for (const auto& d : res.diagnostics)
      if (d.severity == mmx::Severity::Error && d.extension == "transform")
        return true;
    return false;
  };
  if (inv.analyze) {
    // The report (whatever was produced before translation stopped) still
    // prints, and the exit code reflects any error-severity diagnostic —
    // not just outright translation failure — so CI can gate on analysis.
    std::cout << res.analysisReport;
    if (!emitMetrics(inv)) return 2;
    if (res.ok && !res.hasErrors()) return 0;
    return strictTransformFailure() ? 2 : 1;
  }
  if (!res.ok) {
    emitMetrics(inv);
    return strictTransformFailure() ? 2 : 1;
  }
  if (inv.emitIr) {
    std::cout << mmx::ir::dump(*res.module);
    return emitMetrics(inv) ? 0 : 2;
  }
  if (inv.emitC) {
    std::string code;
    {
      mmx::metrics::ScopedTimer emitTimer("emit");
      mmx::ir::CEmitOptions eo;
      eo.boundsChecks = res.boundsChecks;
      eo.plan = res.guardPlan;
      eo.instrument = inv.instrument;
      eo.sourceManager = res.sourceManager;
      eo.backend = inv.backend;
      eo.alloc = inv.alloc;
      auto c = mmx::ir::emitC(*res.module, eo);
      if (!c.ok) {
        for (const auto& e : c.errors)
          std::cerr << "emit error: " << e << "\n";
        emitMetrics(inv);
        return 1;
      }
      code = std::move(c.code);
    }
    std::cout << code;
    return emitMetrics(inv) ? 0 : 2;
  }
  try {
    std::unique_ptr<mmx::rt::Executor> exec = inv.runtimeConfig().make();
    mmx::interp::Machine vm(*res.module, *exec);
    vm.setBoundsChecks(res.boundsChecks, res.guardPlan);
    int code;
    {
      mmx::metrics::ScopedTimer runTimer("run");
      code = vm.runMain();
    }
    std::cout << vm.output();
    if (!emitMetrics(inv)) return 2;
    return code;
  } catch (const std::exception& e) {
    std::cerr << "runtime error: " << e.what() << "\n";
    emitMetrics(inv);
    return 3;
  }
}
