// mmc: the extended-C translator CLI. Usage:
//   mmc <file.xc> [--emit-ir] [--threads N] [--no-fusion] [--no-parallel]
//                 [--no-slice-elim]
// Composes the host with the matrix, refcount, transform, and alt-tuple
// extensions, translates the program, and runs it on the interpreter.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "driver/translator.hpp"
#include "ir/cemit.hpp"
#include "ext_matrix/matrix_ext.hpp"
#include "ext_refcount/refcount_ext.hpp"
#include "ext_transform/transform_ext.hpp"
#include "interp/interp.hpp"

int main(int argc, char** argv) {
  std::string path;
  bool emitIr = false;
  bool emitC = false;
  unsigned threads = 1;
  mmx::driver::TranslateOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--emit-ir") emitIr = true;
    else if (a == "--emit-c") emitC = true;
    else if (a == "--threads" && i + 1 < argc) threads = std::stoul(argv[++i]);
    else if (a == "--no-fusion") opts.fusion = false;
    else if (a == "--no-parallel") opts.autoParallel = false;
    else if (a == "--no-slice-elim") opts.sliceElimination = false;
    else path = a;
  }
  if (path.empty()) {
    std::cerr << "usage: mmc <file.xc> [--emit-ir] [--emit-c] [--threads N] "
                 "[--no-fusion] [--no-parallel] [--no-slice-elim]\n";
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::cerr << "mmc: cannot open " << path << "\n";
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  mmx::driver::Translator t;
  t.addExtension(mmx::ext_matrix::matrixExtension());
  t.addExtension(mmx::ext_refcount::refcountExtension());
  t.addExtension(mmx::ext_transform::transformExtension());
  if (!t.compose(opts)) {
    std::cerr << t.composeDiagnostics();
    return 1;
  }
  auto res = t.translate(path, buf.str());
  if (!res.ok) {
    std::cerr << res.diagnostics;
    return 1;
  }
  if (emitIr) {
    std::cout << mmx::ir::dump(*res.module);
    return 0;
  }
  if (emitC) {
    auto c = mmx::ir::emitC(*res.module);
    if (!c.ok) {
      for (const auto& e : c.errors) std::cerr << "emit error: " << e << "\n";
      return 1;
    }
    std::cout << c.code;
    return 0;
  }
  try {
    std::unique_ptr<mmx::rt::Executor> exec;
    if (threads > 1)
      exec = std::make_unique<mmx::rt::ForkJoinPool>(threads);
    else
      exec = std::make_unique<mmx::rt::SerialExecutor>();
    mmx::interp::Machine vm(*res.module, *exec);
    int code = vm.runMain();
    std::cout << vm.output();
    return code;
  } catch (const std::exception& e) {
    std::cerr << "runtime error: " << e.what() << "\n";
    return 3;
  }
}
