// mmc: the extended-C translator CLI. Usage:
//   mmc <file.xc> [--emit-ir] [--emit-c] [--analyze] [--threads N]
//                 [--no-fusion] [--no-parallel] [--no-slice-elim]
//                 [--strict-parallel] [-Wparallel] [-Wno-parallel]
// Composes the host with the matrix, refcount, transform, and alt-tuple
// extensions, translates the program, and runs it on the interpreter.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "driver/translator.hpp"
#include "ir/cemit.hpp"
#include "ext_matrix/matrix_ext.hpp"
#include "ext_refcount/refcount_ext.hpp"
#include "ext_transform/transform_ext.hpp"
#include "interp/interp.hpp"

namespace {

int usage(const char* problem) {
  if (problem) std::cerr << "mmc: " << problem << "\n";
  std::cerr << "usage: mmc <file.xc> [--emit-ir] [--emit-c] [--analyze] "
               "[--threads N]\n"
               "           [--no-fusion] [--no-parallel] [--no-slice-elim]\n"
               "           [--strict-parallel] [-Wparallel] [-Wno-parallel]\n";
  return 2;
}

/// Strict positive-integer parse: the whole string must be digits.
bool parseThreads(const std::string& s, unsigned& out) {
  if (s.empty() || s.size() > 9) return false;
  unsigned v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<unsigned>(c - '0');
  }
  if (v == 0) return false;
  out = v;
  return true;
}

} // namespace

int main(int argc, char** argv) {
  std::string path;
  bool emitIr = false;
  bool emitC = false;
  bool analyze = false;
  unsigned threads = 1;
  mmx::driver::TranslateOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--emit-ir") emitIr = true;
    else if (a == "--emit-c") emitC = true;
    else if (a == "--analyze") analyze = true;
    else if (a == "--threads") {
      if (i + 1 >= argc)
        return usage("--threads requires a value");
      std::string v = argv[++i];
      if (!parseThreads(v, threads))
        return usage(("invalid --threads value '" + v +
                      "' (expected a positive integer)")
                         .c_str());
    } else if (a == "--no-fusion") opts.fusion = false;
    else if (a == "--no-parallel") opts.autoParallel = false;
    else if (a == "--no-slice-elim") opts.sliceElimination = false;
    else if (a == "--strict-parallel") opts.strictParallel = true;
    else if (a == "-Wparallel") opts.warnParallel = true;
    else if (a == "-Wno-parallel") opts.warnParallel = false;
    else if (!a.empty() && a[0] == '-')
      return usage(("unknown option '" + a + "'").c_str());
    else if (!path.empty())
      return usage(("unexpected extra input file '" + a + "' (already have '" +
                    path + "')")
                       .c_str());
    else path = a;
  }
  if (path.empty()) return usage(nullptr);
  std::ifstream in(path);
  if (!in) {
    std::cerr << "mmc: cannot open " << path << "\n";
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  opts.analyze = analyze;
  mmx::driver::Translator t;
  t.addExtension(mmx::ext_matrix::matrixExtension());
  t.addExtension(mmx::ext_refcount::refcountExtension());
  t.addExtension(mmx::ext_transform::transformExtension());
  if (!t.compose(opts)) {
    std::cerr << t.composeDiagnostics();
    return 1;
  }
  auto res = t.translate(path, buf.str());
  if (!res.diagnostics.empty()) std::cerr << res.diagnostics;
  if (!res.ok) return 1;
  if (analyze) {
    std::cout << res.analysisReport;
    return 0;
  }
  if (emitIr) {
    std::cout << mmx::ir::dump(*res.module);
    return 0;
  }
  if (emitC) {
    auto c = mmx::ir::emitC(*res.module);
    if (!c.ok) {
      for (const auto& e : c.errors) std::cerr << "emit error: " << e << "\n";
      return 1;
    }
    std::cout << c.code;
    return 0;
  }
  try {
    std::unique_ptr<mmx::rt::Executor> exec;
    if (threads > 1)
      exec = std::make_unique<mmx::rt::ForkJoinPool>(threads);
    else
      exec = std::make_unique<mmx::rt::SerialExecutor>();
    mmx::interp::Machine vm(*res.module, *exec);
    int code = vm.runMain();
    std::cout << vm.output();
    return code;
  } catch (const std::exception& e) {
    std::cerr << "runtime error: " << e.what() << "\n";
    return 3;
  }
}
