// mmc: the extended-C translator CLI. Run `mmc --help` for the full flag
// list — it is generated from the CompilerInvocation table, the single
// declaration of every option. Composes the host with the matrix,
// refcount, transform, and alt-tuple extensions, translates the program,
// and runs it on the interpreter.
//
// Observability: --time-report prints a phase/counters table to stderr;
// --stats-json <file> writes flat counters; --trace-json <file> writes
// Chrome trace-event JSON (open in about:tracing or Perfetto).
#include <fstream>
#include <iostream>
#include <sstream>

#include "driver/invocation.hpp"
#include "driver/translator.hpp"
#include "ir/cemit.hpp"
#include "ext_matrix/matrix_ext.hpp"
#include "ext_refcount/refcount_ext.hpp"
#include "ext_transform/transform_ext.hpp"
#include "interp/interp.hpp"
#include "runtime/backend.hpp"
#include "runtime/memsys.hpp"
#include "support/diag.hpp"
#include "support/metrics.hpp"

namespace {

int usage(const std::string& problem) {
  if (!problem.empty()) std::cerr << "mmc: " << problem << "\n";
  std::cerr << mmx::driver::CompilerInvocation::helpText();
  return 2;
}

/// Writes the requested observability outputs; returns false (with a
/// message on stderr) when a file cannot be written.
bool emitMetrics(const mmx::driver::CompilerInvocation& inv) {
  if (!inv.metricsRequested()) return true;
  // Under --analyze, include zero-valued counters: consumers of the
  // per-pass sections (opt.*, shapecheck.*) key off their presence.
  mmx::metrics::Snapshot snap = mmx::metrics::snapshot(inv.analyze);
  if (inv.timeReport) std::cerr << mmx::metrics::renderTimeReport(snap);
  auto writeFile = [](const std::string& path,
                      const std::string& body) -> bool {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "mmc: cannot write " << path << "\n";
      return false;
    }
    out << body;
    return true;
  };
  if (!inv.statsJsonPath.empty() &&
      !writeFile(inv.statsJsonPath, mmx::metrics::renderStatsJson(snap)))
    return false;
  if (!inv.traceJsonPath.empty() &&
      !writeFile(inv.traceJsonPath, mmx::metrics::renderTraceJson(snap)))
    return false;
  return true;
}

} // namespace

int main(int argc, char** argv) {
  mmx::driver::CompilerInvocation inv;
  auto parsed = inv.parseArgv(argc, argv);
  if (!parsed.ok) return usage(parsed.error);
  if (inv.showHelp) {
    std::cout << mmx::driver::CompilerInvocation::helpText();
    return 0;
  }

  // Validate the kernel backend selection (--backend, falling back to
  // $MMX_BACKEND under auto) up front: an unknown or unavailable name is
  // a structured diagnostic, not a usage error, and it also gates
  // --emit-c (the emitted program selects the same backend at startup).
  if (std::string err = mmx::rt::backendSelectionError(inv.backend);
      !err.empty()) {
    mmx::Diagnostic d;
    d.severity = mmx::Severity::Error;
    d.message = err;
    d.extension = "backend";
    std::cerr << mmx::renderDiagnostic(d, nullptr);
    return 2;
  }
  // Same pre-flight for the matrix allocator (--alloc, falling back to
  // $MMX_ALLOC under auto): emitted programs select the same strategy at
  // startup, so an unknown name fails here for --emit-c too.
  if (std::string err = mmx::rt::allocatorSelectionError(inv.alloc);
      !err.empty()) {
    mmx::Diagnostic d;
    d.severity = mmx::Severity::Error;
    d.message = err;
    d.extension = "alloc";
    std::cerr << mmx::renderDiagnostic(d, nullptr);
    return 2;
  }

  std::ifstream in(inv.inputPath);
  if (!in) {
    std::cerr << "mmc: cannot open " << inv.inputPath << "\n";
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  if (inv.metricsRequested()) mmx::metrics::enable(true);

  mmx::driver::Translator t;
  t.addExtension(mmx::ext_matrix::matrixExtension());
  t.addExtension(mmx::ext_refcount::refcountExtension());
  t.addExtension(mmx::ext_transform::transformExtension());
  if (!t.compose(inv.opts)) {
    std::cerr << t.renderComposeDiagnostics();
    emitMetrics(inv);
    return 1;
  }
  auto res = t.translate(inv.inputPath, buf.str());
  std::cerr << res.renderDiagnostics();
  // Under --strict-transform an illegal transformation clause is a compile
  // error with its own exit code (2, like usage/backend problems) so CI
  // can distinguish "clause proven illegal" from ordinary translation
  // failures.
  auto strictTransformFailure = [&res, &inv] {
    if (!inv.opts.strictTransform) return false;
    for (const auto& d : res.diagnostics)
      if (d.severity == mmx::Severity::Error && d.extension == "transform")
        return true;
    return false;
  };
  if (inv.analyze) {
    // The report (whatever was produced before translation stopped) still
    // prints, and the exit code reflects any error-severity diagnostic —
    // not just outright translation failure — so CI can gate on analysis.
    std::cout << res.analysisReport;
    if (!emitMetrics(inv)) return 2;
    if (res.ok && !res.hasErrors()) return 0;
    return strictTransformFailure() ? 2 : 1;
  }
  if (!res.ok) {
    emitMetrics(inv);
    return strictTransformFailure() ? 2 : 1;
  }
  if (inv.emitIr) {
    std::cout << mmx::ir::dump(*res.module);
    return emitMetrics(inv) ? 0 : 2;
  }
  if (inv.emitC) {
    std::string code;
    {
      mmx::metrics::ScopedTimer emitTimer("emit");
      mmx::ir::CEmitOptions eo;
      eo.boundsChecks = res.boundsChecks;
      eo.plan = res.guardPlan;
      eo.instrument = inv.instrument;
      eo.sourceManager = res.sourceManager;
      eo.backend = inv.backend;
      eo.alloc = inv.alloc;
      auto c = mmx::ir::emitC(*res.module, eo);
      if (!c.ok) {
        for (const auto& e : c.errors)
          std::cerr << "emit error: " << e << "\n";
        emitMetrics(inv);
        return 1;
      }
      code = std::move(c.code);
    }
    std::cout << code;
    return emitMetrics(inv) ? 0 : 2;
  }
  try {
    std::unique_ptr<mmx::rt::Executor> exec = inv.runtimeConfig().make();
    mmx::interp::Machine vm(*res.module, *exec);
    vm.setBoundsChecks(res.boundsChecks, res.guardPlan);
    int code;
    {
      mmx::metrics::ScopedTimer runTimer("run");
      code = vm.runMain();
    }
    std::cout << vm.output();
    if (!emitMetrics(inv)) return 2;
    return code;
  } catch (const std::exception& e) {
    std::cerr << "runtime error: " << e.what() << "\n";
    emitMetrics(inv);
    return 3;
  }
}
