// The translator pipeline (paper §II): compose the host specification with
// the user-chosen extension specifications, build the custom parser, then
// translate extended-C programs down to the plain-parallel-C level (our
// loop IR), which can be executed directly (interp/) or printed as C
// (ir/cemit). Composition runs the modular analyses and refuses to build
// a translator whose composition has LALR conflicts.
//
// Observability (ISSUE 2): every pipeline phase runs under a
// metrics::ScopedTimer (compose / parse / typecheck / lower / optimize /
// analyze) so --time-report, --stats-json, and --trace-json can account
// for where translation time goes. Diagnostics are structured
// (std::vector<Diagnostic> with severity, range, and originating
// extension); the classic rendered string is derived on demand.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "attr/engine.hpp"
#include "ext/extension.hpp"
#include "grammar/grammar.hpp"
#include "ir/guards.hpp"
#include "ir/ir.hpp"
#include "parse/parser.hpp"
#include "support/diag.hpp"

namespace mmx::driver {

/// Options threaded into the matrix extension's lowering (the DESIGN.md
/// ablation switches).
struct TranslateOptions {
  bool fusion = true;           // §III-A4 with-loop/assignment fusion
  bool sliceElimination = true; // §III-A4 fold slice elimination
  bool autoParallel = true;     // §III-C parallel code generation
  bool warnParallel = true;     // -Wparallel: warn when loops are demoted
  bool strictParallel = false;  // unsafe `parallelize` is an error
  bool analyze = false;         // collect the --analyze report + IR lints
  /// --bounds-checks mode the backends should honor; Auto consults the
  /// shapecheck guard plan attached to the TranslateResult.
  ir::BoundsCheckMode boundsChecks = ir::BoundsCheckMode::Auto;
  bool warnShape = true;   // -Wshape: warn on proven shape violations
  bool strictShape = false; // proven shape violations are errors
  bool warnTransform = true;   // -Wtransform: warn on illegal §V clauses
  bool strictTransform = false; // illegal transform clauses are errors
  // Whole-program optimizer passes (ISSUE 6). All off by default: -O0
  // output stays byte-identical to the unoptimized pipeline. `-O1` turns
  // all three on; `--opt=fuse,elim-temp,inplace` picks individually.
  bool optFuse = false;     // producer/consumer with-loop fusion
  bool optElimTemp = false; // whole-matrix temporary elimination
  bool optInplace = false;  // copy-then-mutate -> in-place rewriting
  bool optAutopar = false;  // promote dependence-free serial loops
  bool warnDeadMatrix = true; // -Wdead-matrix: allocated-but-dead matrices
};

/// Result of translating one program.
struct TranslateResult {
  bool ok = false;
  std::unique_ptr<ir::Module> module; // valid when ok
  ast::NodePtr tree;                  // parse tree (valid when parsed)
  /// Structured diagnostics (always populated; severity + source range +
  /// originating extension name).
  std::vector<Diagnostic> diagnostics;
  /// Resolves the diagnostics' source ranges; null only for the
  /// translate-before-compose error path.
  std::shared_ptr<SourceManager> sourceManager;
  std::string analysisReport; // parallel-safety report (analyze)
  /// Shapecheck verdicts: guard sites proven redundant and parameters
  /// whose retain/release pair codegen may drop. Valid when ok; shared
  /// with the backends (emitC options, the interpreter Machine).
  std::shared_ptr<const ir::GuardPlan> guardPlan;
  /// The mode translation ran under, for backends driven off the result.
  ir::BoundsCheckMode boundsChecks = ir::BoundsCheckMode::Auto;

  bool hasErrors() const;
  /// Derived convenience: the classic "file:line:col: severity: message"
  /// rendering (mmc output is unchanged from the string-first API).
  std::string renderDiagnostics() const;
};

class Translator {
public:
  /// A translator over the host language (with the paper's host-packaged
  /// tuple syntax). Call addExtension() for each chosen extension, then
  /// compose().
  Translator();
  ~Translator();

  Translator(const Translator&) = delete;
  Translator& operator=(const Translator&) = delete;

  void addExtension(ext::ExtensionPtr e);

  /// Composes grammar + semantics and builds the parser. Returns false
  /// (with composeDiagnostics()) on duplicate extension names, symbol
  /// clashes, or LALR conflicts in the composition.
  bool compose(TranslateOptions opts = {});

  /// Parses + checks + lowers one source buffer.
  TranslateResult translate(const std::string& name,
                            const std::string& source);

  /// Structured diagnostics from compose().
  const std::vector<Diagnostic>& composeDiagnostics() const {
    return composeDiags_.all();
  }
  /// Rendered convenience form of composeDiagnostics().
  std::string renderComposeDiagnostics() const;

  const grammar::Grammar& grammar() const { return grammar_; }
  const parse::Parser* parser() const { return parser_.get(); }

private:
  std::vector<ext::ExtensionPtr> extensions_;
  grammar::Grammar grammar_;
  std::unique_ptr<parse::Parser> parser_;
  std::unique_ptr<attr::Registry> attrReg_;
  std::unique_ptr<cm::Sema> sema_;
  DiagnosticEngine composeDiags_;
  SourceManager composeSm_;
  bool composed_ = false;
  TranslateOptions opts_;
};

} // namespace mmx::driver
