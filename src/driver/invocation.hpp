// CompilerInvocation: one declarative description of an mmc run. A single
// flag table in invocation.cpp drives argv parsing, the --help text, and
// defaulting (previously TranslateOptions and ad-hoc mmc_main flag code
// duplicated each other). Tools embedding the pipeline (tests, benches)
// can fill the struct directly and skip argv entirely.
#pragma once

#include <memory>
#include <string>

#include "driver/translator.hpp"
#include "ir/cemit.hpp"
#include "runtime/backend.hpp"
#include "runtime/pool.hpp"

namespace mmx::driver {

struct CompilerInvocation {
  std::string inputPath;
  TranslateOptions opts;

  // Output selection.
  bool emitIr = false;
  bool emitC = false;
  bool analyze = false;
  bool showHelp = false;

  // Execution.
  unsigned threads = 1;
  rt::ExecutorKind executor = rt::ExecutorKind::ForkJoin;
  bool executorExplicit = false; // --executor given (else derived from threads)
  std::string backend = "auto";  // --backend: kernel backend name or "auto"
  std::string alloc = "auto";    // --alloc: matrix allocator name or "auto"

  // Observability (ISSUE 2, ISSUE 10).
  bool timeReport = false;       // --time-report: human table on stderr
  std::string statsJsonPath;     // --stats-json <file>: flat counters
  std::string traceJsonPath;     // --trace-json <file>: Chrome trace events
  bool perfCounters = false;     // --perf-counters: PMU sampling around
                                 //   kernel spans (perf_event_open)

  // Runtime profiling compiled into emitted C (ISSUE 5). Off leaves the
  // --emit-c output byte-identical to an uninstrumented build.
  ir::InstrumentMode instrument = ir::InstrumentMode::Off;

  /// True when any observability output was requested (the metrics
  /// registry is only enabled in that case — no-op otherwise).
  /// --perf-counters counts: its pmu.* rows land in the same registry.
  bool metricsRequested() const {
    return timeReport || !statsJsonPath.empty() || !traceJsonPath.empty() ||
           perfCounters;
  }

  /// The runtime configuration this invocation resolves to: --executor
  /// wins (otherwise serial for 1 thread, the enhanced fork-join pool
  /// beyond) plus the --backend kernel selection. runtimeConfig().make()
  /// is the one construction point for drivers (ISSUE 7).
  rt::RuntimeConfig runtimeConfig() const {
    rt::RuntimeConfig c;
    c.executor = executorExplicit
                     ? executor
                     : (threads > 1 ? rt::ExecutorKind::ForkJoin
                                    : rt::ExecutorKind::Serial);
    c.threads = threads;
    c.backend = backend;
    c.alloc = alloc;
    return c;
  }

  /// DEPRECATED (ISSUE 7, kept for one PR): builds the executor without
  /// applying the backend selection; use runtimeConfig().make().
  std::unique_ptr<rt::Executor> makeExecutor() const {
    rt::RuntimeConfig c = runtimeConfig();
    return rt::makeExecutor(c.executor, c.threads);
  }

  struct ParseResult {
    bool ok = true;
    std::string error; // set when !ok
  };

  /// Parses argv (argv[0] is skipped) into this invocation. Unknown
  /// options, missing/invalid values, and extra positionals fail with a
  /// message; defaults come from the member initializers above.
  ParseResult parseArgv(int argc, const char* const* argv);

  /// Usage text generated from the same flag table parseArgv() uses.
  static std::string helpText();
};

} // namespace mmx::driver
