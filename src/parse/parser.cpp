#include "parse/parser.hpp"

#include <sstream>

#include "support/metrics.hpp"

namespace mmx::parse {

Parser::Parser(const grammar::Grammar& g)
    : g_(g), tables_(LalrTables::build(g)), scanner_(g.lexSpec()) {}

ast::NodePtr Parser::parse(const SourceManager& sm, FileId file,
                           DiagnosticEngine& diags) const {
  std::string_view text = sm.text(file);
  size_t pos = 0;

  std::vector<uint32_t> states{0};
  std::vector<ast::NodePtr> values;

  const size_t eofCol = tables_.eofColumn();

  // One-token lookahead, refreshed per state (context-aware: the token we
  // scan depends on the state we scan it in).
  std::optional<lex::Token> look;
  size_t lookPos = pos; // cursor after consuming `look`

  auto scanFor = [&](uint32_t state) -> bool {
    if (look) return true;
    size_t p = pos;
    lex::ScanResult r =
        scanner_.scan(text, file, p, tables_.validTerminals(state));
    switch (r.status) {
      case lex::ScanResult::Status::Ok:
        look = r.token;
        lookPos = p;
        return true;
      case lex::ScanResult::Status::Eof:
        look.reset();
        lookPos = p;
        return true; // EOF handled by caller via eof column
      case lex::ScanResult::Status::NoMatch: {
        std::ostringstream msg;
        msg << "no valid token here; expected one of: "
            << tables_.expectedTerminals(g_, state);
        diags.error(r.token.range, msg.str());
        return false;
      }
      case lex::ScanResult::Status::Ambiguous: {
        std::ostringstream msg;
        msg << "lexically ambiguous token '" << r.token.text << "' matches";
        for (auto t : r.matched) msg << ' ' << g_.lexSpec().def(t).name;
        msg << " (add lexical precedence to the extension's terminals)";
        diags.error(r.token.range, msg.str());
        return false;
      }
    }
    return false;
  };

  // Shift/reduce activity, batched into the metrics registry on exit
  // (thread-local aggregation keeps the loop itself branch-free).
  uint64_t shifts = 0, reduces = 0;
  struct Flush {
    const uint64_t *shifts, *reduces;
    ~Flush() {
      if (!metrics::enabled()) return;
      static const metrics::Counter s = metrics::counter("parse.shifts");
      static const metrics::Counter r = metrics::counter("parse.reduces");
      s.add(*shifts);
      r.add(*reduces);
    }
  } flush{&shifts, &reduces};

  for (;;) {
    uint32_t state = states.back();
    if (!scanFor(state)) return nullptr;

    uint32_t col;
    if (look)
      col = look->term;
    else
      col = static_cast<uint32_t>(eofCol);

    Action a = tables_.action(state, col);
    switch (a.kind) {
      case Action::Kind::Shift: {
        ++shifts;
        values.push_back(ast::makeLeaf(*look));
        states.push_back(a.target);
        pos = lookPos;
        look.reset();
        break;
      }
      case Action::Kind::Reduce: {
        ++reduces;
        const grammar::Production& p = g_.production(a.target);
        size_t n = p.rhs.size();
        std::vector<ast::NodePtr> kids(values.end() - n, values.end());
        values.erase(values.end() - n, values.end());
        states.erase(states.end() - n, states.end());

        SourceRange r;
        if (!kids.empty()) {
          r.begin = kids.front()->range.begin;
          r.end = kids.back()->range.end;
        } else {
          uint32_t off = look ? look->range.begin.offset
                              : static_cast<uint32_t>(pos);
          r = {{file, off}, off};
        }
        values.push_back(ast::makeNode(&p, std::move(kids), r));

        int32_t next = tables_.gotoState(states.back(), p.lhs);
        if (next < 0) {
          diags.error(r, "internal parser error: missing goto after reduce " +
                             p.name);
          return nullptr;
        }
        states.push_back(static_cast<uint32_t>(next));
        break;
      }
      case Action::Kind::Accept:
        return values.back();
      case Action::Kind::Error: {
        std::ostringstream msg;
        if (look)
          msg << "unexpected token '" << look->text << "'";
        else
          msg << "unexpected end of input";
        msg << "; expected one of: " << tables_.expectedTerminals(g_, state);
        SourceRange where =
            look ? look->range
                 : SourceRange{{file, static_cast<uint32_t>(pos)},
                               static_cast<uint32_t>(pos)};
        diags.error(where, msg.str());
        return nullptr;
      }
    }
  }
}

} // namespace mmx::parse
