// LALR(1) table construction in the style of Copper: exact LALR lookaheads
// via the kernel-item propagation algorithm (Aho et al., Algorithm 4.63),
// conflict reporting precise enough to drive the modular determinism
// analysis (analysis/determinism.hpp), and per-state valid-terminal sets
// that feed the context-aware scanner.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grammar/grammar.hpp"
#include "support/bitset.hpp"

namespace mmx::parse {

namespace detail { class LalrBuilder; }

/// An LR item: dot position within a production. prod == kAugmented refers
/// to the internal augmented production S' -> S.
struct Item {
  uint32_t prod = 0;
  uint32_t dot = 0;
  friend auto operator<=>(const Item&, const Item&) = default;
};

/// One parse action.
struct Action {
  enum class Kind : uint8_t { Error, Shift, Reduce, Accept };
  Kind kind = Kind::Error;
  uint32_t target = 0; // Shift: next state; Reduce: production id
  friend bool operator==(const Action&, const Action&) = default;
};

/// A table conflict (the composed grammar is not LALR(1) at this cell).
struct Conflict {
  enum class Kind { ShiftReduce, ReduceReduce };
  Kind kind;
  uint32_t state;
  uint32_t terminal;      // column (may be the EOF column)
  Action kept, dropped;   // resolution applied (shift wins; lower prod id wins)
  std::string description;
  /// Extensions owning the clashing productions — the determinism analysis
  /// uses this to decide whether a conflict crosses extension boundaries.
  std::string extensionA, extensionB;
};

/// Immutable LALR(1) tables for a composed grammar.
class LalrTables {
public:
  /// Builds tables. `g` must have computeFirstSets() already run.
  static LalrTables build(const grammar::Grammar& g);

  size_t stateCount() const { return numStates_; }
  size_t eofColumn() const { return nTerm_; }

  /// Action for (state, terminal column). Column eofColumn() is end of input.
  Action action(uint32_t state, uint32_t termCol) const {
    return action_[size_t(state) * (nTerm_ + 1) + termCol];
  }

  /// Goto for (state, nonterminal) or -1.
  int32_t gotoState(uint32_t state, uint32_t nt) const {
    return goto_[size_t(state) * nNT_ + nt];
  }

  /// Terminals the scanner may match in `state` (excludes EOF column).
  const DynBitset& validTerminals(uint32_t state) const {
    return validTerms_[state];
  }

  /// True if end-of-input is acceptable (reduce/accept) in `state`.
  bool eofValid(uint32_t state) const {
    return action(state, static_cast<uint32_t>(nTerm_)).kind != Action::Kind::Error;
  }

  const std::vector<Conflict>& conflicts() const { return conflicts_; }

  /// Kernel items of a state, for diagnostics.
  const std::vector<Item>& kernel(uint32_t state) const { return kernels_[state]; }

  /// Human-readable "expected TOKEN, TOKEN, ..." list for a state.
  std::string expectedTerminals(const grammar::Grammar& g, uint32_t state) const;

private:
  friend class detail::LalrBuilder;
  size_t numStates_ = 0, nTerm_ = 0, nNT_ = 0;
  std::vector<Action> action_;
  std::vector<int32_t> goto_;
  std::vector<DynBitset> validTerms_;
  std::vector<Conflict> conflicts_;
  std::vector<std::vector<Item>> kernels_;
};

} // namespace mmx::parse
