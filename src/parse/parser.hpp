// Table-driven LALR(1) parser integrated with the context-aware scanner.
// At every step the scanner is restricted to the current state's valid
// terminals — the Copper discipline that makes keyword-sharing extensions
// compose (e.g. `end` scans as a keyword only inside matrix index brackets).
//
// The parser builds generic ast::Node trees: one interior node per reduce
// (chain productions are preserved; semantics skip through them), one leaf
// per shifted token.
#pragma once

#include <optional>

#include "ast/node.hpp"
#include "grammar/grammar.hpp"
#include "lex/scanner.hpp"
#include "parse/lalr.hpp"
#include "support/diag.hpp"

namespace mmx::parse {

/// A compiled parser for one composed grammar. Immutable after
/// construction; parse() is re-entrant (no shared mutable state).
class Parser {
public:
  /// Builds scanner + tables. The grammar must outlive the parser.
  /// LALR conflicts are tolerated here (resolved shift-first) but exposed
  /// via tables().conflicts(); the driver refuses to build translators
  /// whose *composition* introduced conflicts (see analysis/).
  explicit Parser(const grammar::Grammar& g);

  /// Parses `file`'s text from the source manager. Returns the tree for
  /// the start symbol, or nullptr after reporting diagnostics.
  ast::NodePtr parse(const SourceManager& sm, FileId file,
                     DiagnosticEngine& diags) const;

  const LalrTables& tables() const { return tables_; }
  const grammar::Grammar& grammar() const { return g_; }

private:
  const grammar::Grammar& g_;
  LalrTables tables_;
  lex::Scanner scanner_;
};

} // namespace mmx::parse
