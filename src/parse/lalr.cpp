#include "parse/lalr.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <sstream>
#include <stdexcept>

namespace mmx::parse {

using grammar::Grammar;
using grammar::GSym;
using grammar::Production;

namespace detail {

constexpr uint32_t kAugmented = 0xfffffffeu;

/// Builder holding the LR(0) automaton plus LALR lookahead machinery.
class LalrBuilder {
public:
  explicit LalrBuilder(const Grammar& g)
      : g_(g),
        nTerm_(g.terminalCount()),
        nNT_(g.nonterminalCount()),
        augRhs_{GSym::nonterm(g.start())} {}

  LalrTables run();

private:
  // --- production access (handles the augmented production) --------------
  const GSym* rhs(uint32_t prod) const {
    if (prod == kAugmented) return augRhs_.data();
    return g_.production(prod).rhs.data();
  }
  size_t rhsLen(uint32_t prod) const {
    if (prod == kAugmented) return 1;
    return g_.production(prod).rhs.size();
  }

  // --- LR(0) ----------------------------------------------------------
  /// LR(0) closure of a kernel: returns all items (kernel + derived).
  std::vector<Item> closure0(const std::vector<Item>& kernel) const;
  void buildLr0();

  // --- LALR lookaheads -----------------------------------------------------
  /// LR(1) closure over (item, lookahead-set) pairs. Lookahead sets use
  /// nTerm_+2 columns: [0,nTerm_) terminals, nTerm_ = EOF, nTerm_+1 = probe.
  struct LItem {
    Item item;
    DynBitset la;
  };
  std::vector<LItem> closure1(const std::vector<LItem>& seed) const;
  void computeLookaheads();

  // --- tables ------------------------------------------------------------
  LalrTables fillTables();

  void recordAction(std::vector<Action>& action, uint32_t state, uint32_t col,
                    Action a, std::vector<Conflict>& conflicts,
                    uint32_t reduceProdForDiag);

  std::string itemToString(const Item& it) const;

  const Grammar& g_;
  size_t nTerm_, nNT_;
  std::array<GSym, 1> augRhs_;

  // LR(0) automaton.
  std::vector<std::vector<Item>> kernels_;               // per state, sorted
  std::map<std::vector<Item>, uint32_t> stateIds_;
  std::vector<std::map<uint32_t, uint32_t>> gotoTerm_;   // state -> term -> state
  std::vector<std::map<uint32_t, uint32_t>> gotoNT_;     // state -> nt -> state

  // Lookaheads per (state, kernel item index).
  std::vector<std::vector<DynBitset>> la_;
  // Propagation links: (state, kidx) -> list of (state, kidx).
  std::vector<std::vector<std::vector<std::pair<uint32_t, uint32_t>>>> links_;
};

std::vector<Item> LalrBuilder::closure0(const std::vector<Item>& kernel) const {
  std::vector<Item> items = kernel;
  std::vector<uint8_t> ntAdded(nNT_, 0);
  for (size_t i = 0; i < items.size(); ++i) {
    const Item it = items[i];
    if (it.dot >= rhsLen(it.prod)) continue;
    GSym s = rhs(it.prod)[it.dot];
    if (s.isTerm() || ntAdded[s.idx]) continue;
    ntAdded[s.idx] = 1;
    for (uint32_t p : g_.productionsOf(s.idx))
      items.push_back({p, 0});
  }
  return items;
}

void LalrBuilder::buildLr0() {
  std::vector<Item> k0{{kAugmented, 0}};
  stateIds_[k0] = 0;
  kernels_.push_back(k0);
  gotoTerm_.emplace_back();
  gotoNT_.emplace_back();

  for (uint32_t cur = 0; cur < kernels_.size(); ++cur) {
    auto items = closure0(kernels_[cur]);
    // Group items by the symbol after the dot.
    std::map<std::pair<int, uint32_t>, std::vector<Item>> moved;
    for (const Item& it : items) {
      if (it.dot >= rhsLen(it.prod)) continue;
      GSym s = rhs(it.prod)[it.dot];
      moved[{s.isTerm() ? 0 : 1, s.idx}].push_back({it.prod, it.dot + 1});
    }
    for (auto& [key, kern] : moved) {
      std::sort(kern.begin(), kern.end());
      kern.erase(std::unique(kern.begin(), kern.end()), kern.end());
      auto [slot, inserted] =
          stateIds_.emplace(kern, static_cast<uint32_t>(kernels_.size()));
      if (inserted) {
        kernels_.push_back(kern);
        gotoTerm_.emplace_back();
        gotoNT_.emplace_back();
      }
      if (key.first == 0)
        gotoTerm_[cur][key.second] = slot->second;
      else
        gotoNT_[cur][key.second] = slot->second;
    }
  }
}

std::vector<LalrBuilder::LItem> LalrBuilder::closure1(
    const std::vector<LItem>& seed) const {
  // Map (prod, dot) -> index in result.
  std::vector<LItem> items;
  std::map<Item, size_t> index;
  std::vector<size_t> work;

  auto add = [&](Item it, const DynBitset& la) {
    auto f = index.find(it);
    if (f == index.end()) {
      index[it] = items.size();
      items.push_back({it, la});
      work.push_back(items.size() - 1);
    } else if (items[f->second].la.merge(la)) {
      work.push_back(f->second);
    }
  };

  for (const auto& s : seed) add(s.item, s.la);

  while (!work.empty()) {
    size_t i = work.back();
    work.pop_back();
    Item it = items[i].item;
    DynBitset la = items[i].la; // copy: items may reallocate below
    if (it.dot >= rhsLen(it.prod)) continue;
    GSym s = rhs(it.prod)[it.dot];
    if (s.isTerm()) continue;
    // FIRST(beta . la)
    DynBitset firstBeta(nTerm_ + 2);
    g_.firstOfSeq(rhs(it.prod) + it.dot + 1, rhsLen(it.prod) - it.dot - 1, la,
                  firstBeta);
    for (uint32_t p : g_.productionsOf(s.idx)) add({p, 0}, firstBeta);
  }
  return items;
}

void LalrBuilder::computeLookaheads() {
  const size_t cols = nTerm_ + 2; // terminals + EOF + probe
  const size_t probe = nTerm_ + 1;

  la_.resize(kernels_.size());
  links_.resize(kernels_.size());
  for (uint32_t s = 0; s < kernels_.size(); ++s) {
    la_[s].assign(kernels_[s].size(), DynBitset(cols));
    links_[s].assign(kernels_[s].size(), {});
  }

  auto kernelIndex = [&](uint32_t state, Item it) -> uint32_t {
    const auto& k = kernels_[state];
    auto f = std::lower_bound(k.begin(), k.end(), it);
    if (f == k.end() || !(*f == it))
      throw std::logic_error("LALR: kernel item not found");
    return static_cast<uint32_t>(f - k.begin());
  };

  // Spontaneous lookaheads + propagation links (Algorithm 4.63).
  for (uint32_t s = 0; s < kernels_.size(); ++s) {
    for (uint32_t ki = 0; ki < kernels_[s].size(); ++ki) {
      DynBitset seedLa(cols);
      seedLa.set(probe);
      auto closure = closure1({{kernels_[s][ki], seedLa}});
      for (const auto& ci : closure) {
        if (ci.item.dot >= rhsLen(ci.item.prod)) continue;
        GSym x = rhs(ci.item.prod)[ci.item.dot];
        uint32_t tgtState = x.isTerm() ? gotoTerm_[s].at(x.idx)
                                       : gotoNT_[s].at(x.idx);
        uint32_t tgtIdx =
            kernelIndex(tgtState, {ci.item.prod, ci.item.dot + 1});
        ci.la.forEach([&](size_t t) {
          if (t == probe)
            links_[s][ki].push_back({tgtState, tgtIdx});
          else
            la_[tgtState][tgtIdx].set(t);
        });
      }
    }
  }

  // EOF on the augmented start item.
  la_[0][kernelIndex(0, {kAugmented, 0})].set(nTerm_);

  // Propagate to fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t s = 0; s < kernels_.size(); ++s)
      for (uint32_t ki = 0; ki < kernels_[s].size(); ++ki)
        for (auto [ts, tk] : links_[s][ki])
          if (la_[ts][tk].merge(la_[s][ki])) changed = true;
  }
}

std::string LalrBuilder::itemToString(const Item& it) const {
  std::ostringstream out;
  if (it.prod == kAugmented) {
    out << "S' ->";
  } else {
    const Production& p = g_.production(it.prod);
    out << g_.nonterminalName(p.lhs) << " [" << p.name << "] ->";
  }
  for (size_t i = 0; i < rhsLen(it.prod); ++i) {
    if (i == it.dot) out << " .";
    out << ' ' << g_.symbolName(rhs(it.prod)[i]);
  }
  if (it.dot == rhsLen(it.prod)) out << " .";
  return out.str();
}

void LalrBuilder::recordAction(std::vector<Action>& action, uint32_t state,
                           uint32_t col, Action a,
                           std::vector<Conflict>& conflicts,
                           uint32_t reduceProdForDiag) {
  Action& cell = action[size_t(state) * (nTerm_ + 1) + col];
  if (cell.kind == Action::Kind::Error) {
    cell = a;
    return;
  }
  if (cell == a) return;

  // Conflict. Resolution: shift beats reduce; between reduces the lower
  // production id wins (stable, but still reported as a conflict).
  Conflict c;
  c.state = state;
  c.terminal = col;
  auto extOf = [&](const Action& x) -> std::string {
    if (x.kind == Action::Kind::Reduce) return g_.production(x.target).extension;
    return "";
  };
  if (cell.kind == Action::Kind::Shift || a.kind == Action::Kind::Shift) {
    c.kind = Conflict::Kind::ShiftReduce;
    Action shift = cell.kind == Action::Kind::Shift ? cell : a;
    Action red = cell.kind == Action::Kind::Shift ? a : cell;
    c.kept = shift;
    c.dropped = red;
    c.extensionA = extOf(red);
    c.extensionB = ""; // shift side: terminal, attribute below
    cell = shift;
  } else {
    c.kind = Conflict::Kind::ReduceReduce;
    Action keep = cell.target < a.target ? cell : a;
    Action drop = cell.target < a.target ? a : cell;
    c.kept = keep;
    c.dropped = drop;
    c.extensionA = extOf(keep);
    c.extensionB = extOf(drop);
    cell = keep;
  }
  std::ostringstream d;
  d << (c.kind == Conflict::Kind::ShiftReduce ? "shift/reduce"
                                              : "reduce/reduce")
    << " conflict in state " << state << " on "
    << (col == nTerm_ ? std::string("<eof>")
                      : std::string(g_.lexSpec().def(col).name));
  if (reduceProdForDiag != kAugmented)
    d << " (reduce " << g_.production(reduceProdForDiag).name << ")";
  c.description = d.str();
  conflicts.push_back(std::move(c));
}

LalrTables LalrBuilder::fillTables() {
  LalrTables t;
  t.numStates_ = kernels_.size();
  t.nTerm_ = nTerm_;
  t.nNT_ = nNT_;
  t.action_.assign(t.numStates_ * (nTerm_ + 1), Action{});
  t.goto_.assign(t.numStates_ * nNT_, -1);
  t.kernels_ = kernels_;

  for (uint32_t s = 0; s < kernels_.size(); ++s) {
    for (auto [term, tgt] : gotoTerm_[s])
      recordAction(t.action_, s, term,
                   {Action::Kind::Shift, tgt}, t.conflicts_, kAugmented);
    for (auto [nt, tgt] : gotoNT_[s])
      t.goto_[size_t(s) * nNT_ + nt] = static_cast<int32_t>(tgt);

    // Reduce/accept: LR(1) closure of the kernel with final lookaheads.
    std::vector<LItem> seed;
    for (uint32_t ki = 0; ki < kernels_[s].size(); ++ki)
      seed.push_back({kernels_[s][ki], la_[s][ki]});
    for (const auto& ci : closure1(seed)) {
      if (ci.item.dot < rhsLen(ci.item.prod)) continue;
      if (ci.item.prod == kAugmented) {
        recordAction(t.action_, s, static_cast<uint32_t>(nTerm_),
                     {Action::Kind::Accept, 0}, t.conflicts_, kAugmented);
        continue;
      }
      ci.la.forEach([&](size_t col) {
        if (col > nTerm_) return; // probe column never reaches here
        recordAction(t.action_, s, static_cast<uint32_t>(col),
                     {Action::Kind::Reduce, ci.item.prod}, t.conflicts_,
                     ci.item.prod);
      });
    }
  }

  // Per-state valid-terminal sets for the context-aware scanner.
  t.validTerms_.reserve(t.numStates_);
  for (uint32_t s = 0; s < t.numStates_; ++s) {
    DynBitset v(nTerm_);
    for (uint32_t c = 0; c < nTerm_; ++c)
      if (t.action_[size_t(s) * (nTerm_ + 1) + c].kind != Action::Kind::Error)
        v.set(c);
    t.validTerms_.push_back(std::move(v));
  }
  return t;
}

LalrTables LalrBuilder::run() {
  buildLr0();
  computeLookaheads();
  return fillTables();
}

} // namespace detail

LalrTables LalrTables::build(const Grammar& g) {
  return detail::LalrBuilder(g).run();
}

std::string LalrTables::expectedTerminals(const Grammar& g,
                                          uint32_t state) const {
  std::ostringstream out;
  bool first = true;
  validTerminals(state).forEach([&](size_t t) {
    if (!first) out << ", ";
    first = false;
    out << g.lexSpec().def(static_cast<uint32_t>(t)).name;
  });
  if (eofValid(state)) {
    if (!first) out << ", ";
    out << "<eof>";
  }
  return out.str();
}

} // namespace mmx::parse
