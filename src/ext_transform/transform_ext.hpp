// The explicit program-transformation extension (paper §V): a `transform`
// tail on with-loops lets the programmer direct how the generated loop
// nest is restructured — split / vectorize / parallelize / reorder — plus
// `tile`, which is *derived* from two splits and a reorder exactly as the
// paper describes new transformation specifications being added.
//
// Split uses a min() bound on the inner loop, so non-divisible extents are
// handled exactly (the paper assumes divisibility "to keep the example
// simple"; we keep the same generated shape and add the remainder guard).
#pragma once

#include "ext/extension.hpp"

namespace mmx::ext_transform {

ext::ExtensionPtr transformExtension();

} // namespace mmx::ext_transform
