#include "ext_transform/transform_ext.hpp"

#include <algorithm>
#include <functional>
#include <memory>

#include "analysis/depend.hpp"
#include "cminus/sema.hpp"
#include "ext_matrix/matrix_ext.hpp"

namespace mmx::ext_transform {

using cm::Sema;

namespace {

ext::GrammarFragment transformFragment() {
  ext::GrammarFragment f;
  f.name = "transform";
  auto kw = [&](const char* t) {
    f.terminals.push_back({std::string("'") + t + "'", t, true, 10, false});
  };
  kw("transform");
  kw("split");
  kw("by");
  kw("vectorize");
  kw("parallelize");
  kw("reorder");
  kw("tile");
  kw("unroll");
  kw("interchange");
  for (const char* n : {"TransformSeq", "TransformStmt", "TransformK",
                        "TIdList"})
    f.nonterminals.push_back(n);
  auto prod = [&](const char* name, const char* lhs,
                  std::vector<std::string> rhs) {
    f.productions.push_back({lhs, std::move(rhs), name});
  };
  prod("withtail_transform", "WithTail",
       {"'transform'", "'{'", "TransformSeq", "'}'"});
  prod("transformseq_one", "TransformSeq", {"TransformStmt"});
  prod("transformseq_cons", "TransformSeq",
       {"TransformSeq", "TransformStmt"});
  prod("tstmt", "TransformStmt", {"TransformK", "';'"});
  prod("tr_split", "TransformK",
       {"'split'", "ID", "'by'", "INTLIT", "','", "ID", "','", "ID"});
  prod("tr_vectorize", "TransformK", {"'vectorize'", "ID"});
  prod("tr_parallelize", "TransformK", {"'parallelize'", "ID"});
  prod("tr_reorder", "TransformK", {"'reorder'", "TIdList"});
  prod("tr_tile", "TransformK",
       {"'tile'", "ID", "','", "ID", "'by'", "INTLIT", "','", "INTLIT"});
  prod("tr_unroll", "TransformK", {"'unroll'", "ID", "'by'", "INTLIT"});
  prod("tr_interchange", "TransformK", {"'interchange'", "ID", "','", "ID"});
  prod("tidlist_one", "TIdList", {"ID"});
  prod("tidlist_cons", "TIdList", {"TIdList", "','", "ID"});
  return f;
}

// --- IR loop rewriting ----------------------------------------------------

/// Applies `f` to the unique For named `name` within the nest; returns
/// false if no such loop exists.
bool rewriteLoop(ir::StmtPtr& node, const std::string& name,
                 const std::function<ir::StmtPtr(ir::StmtPtr)>& f) {
  if (!node) return false;
  if (node->k == ir::Stmt::K::For && node->loopName == name) {
    node = f(std::move(node));
    return true;
  }
  for (auto& k : node->kids)
    if (rewriteLoop(k, name, f)) return true;
  return false;
}

ir::Stmt* findLoop(ir::Stmt* node, const std::string& name) {
  if (!node) return nullptr;
  if (node->k == ir::Stmt::K::For && node->loopName == name) return node;
  for (auto& k : node->kids)
    if (ir::Stmt* r = findLoop(k.get(), name)) return r;
  return nullptr;
}

/// Prepends `st` at the innermost body along the pure For chain starting
/// at `body` (loop-index reconstructions sink below inner loops so nests
/// stay perfectly nested for reorder/tile).
void insertAtInnermost(ir::StmtPtr& body, ir::StmtPtr st) {
  ir::StmtPtr* cur = &body;
  while (*cur && (*cur)->k == ir::Stmt::K::For) cur = &(*cur)->kids[0];
  if (*cur && (*cur)->k == ir::Stmt::K::Block) {
    // If the block's sole statement is a For, keep descending.
    if ((*cur)->kids.size() == 1 && (*cur)->kids[0] &&
        (*cur)->kids[0]->k == ir::Stmt::K::For) {
      insertAtInnermost((*cur)->kids[0], std::move(st));
      return;
    }
    (*cur)->kids.insert((*cur)->kids.begin(), std::move(st));
    return;
  }
  std::vector<ir::StmtPtr> kids;
  kids.push_back(std::move(st));
  kids.push_back(std::move(*cur));
  *cur = ir::block(std::move(kids));
}

/// split X by N, Xin, Xout (paper Fig. 9/10): X's range is covered by
/// Xout x Xin blocks of N; X is reconstructed as lo + Xout*N + Xin. The
/// inner bound min(N, total - Xout*N) handles non-divisible extents.
bool applySplit(Sema& s, ir::StmtPtr& nest, const std::string& x, int n,
                const std::string& inName, const std::string& outName) {
  int32_t xinSlot = s.fn()->addLocal("%" + inName, ir::Ty::I32);
  int32_t xoutSlot = s.fn()->addLocal("%" + outName, ir::Ty::I32);

  return rewriteLoop(nest, x, [&](ir::StmtPtr orig) -> ir::StmtPtr {
    int32_t xSlot = orig->slot;
    ir::ExprPtr lo = std::move(orig->exprs[0]);
    ir::ExprPtr hi = std::move(orig->exprs[1]);
    ir::StmtPtr body = std::move(orig->kids[0]);

    auto total = [&]() {
      return ir::arith(ir::ArithOp::Sub, ir::cloneExpr(*hi),
                       ir::cloneExpr(*lo), ir::Ty::I32);
    };
    // X = lo + (Xout * N + Xin), sunk to the innermost body.
    ir::ExprPtr xVal = ir::arith(
        ir::ArithOp::Add, ir::cloneExpr(*lo),
        ir::arith(ir::ArithOp::Add,
                  ir::arith(ir::ArithOp::Mul,
                            ir::var(xoutSlot, ir::Ty::I32), ir::constI(n),
                            ir::Ty::I32),
                  ir::var(xinSlot, ir::Ty::I32), ir::Ty::I32),
        ir::Ty::I32);
    insertAtInnermost(body, ir::assign(xSlot, std::move(xVal)));

    // inner: for Xin in [0, min(N, total - Xout*N))
    ir::ExprPtr innerHi = ir::arith(
        ir::ArithOp::Min, ir::constI(n),
        ir::arith(ir::ArithOp::Sub, total(),
                  ir::arith(ir::ArithOp::Mul,
                            ir::var(xoutSlot, ir::Ty::I32), ir::constI(n),
                            ir::Ty::I32),
                  ir::Ty::I32),
        ir::Ty::I32);
    ir::StmtPtr inner = ir::forLoop(xinSlot, ir::constI(0),
                                    std::move(innerHi), std::move(body),
                                    inName);
    // outer: for Xout in [0, ceil(total / N))
    ir::ExprPtr outerHi = ir::arith(
        ir::ArithOp::Div,
        ir::arith(ir::ArithOp::Add, total(), ir::constI(n - 1), ir::Ty::I32),
        ir::constI(n), ir::Ty::I32);
    return ir::forLoop(xoutSlot, ir::constI(0), std::move(outerHi),
                       std::move(inner), outName);
  });
}

/// unroll X by N: the loop body is replicated N times per iteration of a
/// coarsened loop, with a remainder loop covering non-divisible extents —
/// a transformation specification *added after the fact*, like `tile`
/// demonstrating that the set of specifications is itself extensible.
bool applyUnroll(Sema& s, ir::StmtPtr& nest, const std::string& x, int n,
                 SourceRange r) {
  int32_t xoutSlot = s.fn()->addLocal("%" + x + "_u", ir::Ty::I32);
  bool found = rewriteLoop(nest, x, [&](ir::StmtPtr orig) -> ir::StmtPtr {
    int32_t xSlot = orig->slot;
    ir::ExprPtr lo = std::move(orig->exprs[0]);
    ir::ExprPtr hi = std::move(orig->exprs[1]);
    ir::StmtPtr body = std::move(orig->kids[0]);

    auto total = [&]() {
      return ir::arith(ir::ArithOp::Sub, ir::cloneExpr(*hi),
                       ir::cloneExpr(*lo), ir::Ty::I32);
    };
    // Main loop: for xout in [0, total/N), body copies k = 0..N-1 with
    // X = lo + xout*N + k.
    std::vector<ir::StmtPtr> copies;
    for (int k = 0; k < n; ++k) {
      copies.push_back(ir::assign(
          xSlot,
          ir::arith(ir::ArithOp::Add, ir::cloneExpr(*lo),
                    ir::arith(ir::ArithOp::Add,
                              ir::arith(ir::ArithOp::Mul,
                                        ir::var(xoutSlot, ir::Ty::I32),
                                        ir::constI(n), ir::Ty::I32),
                              ir::constI(k), ir::Ty::I32),
                    ir::Ty::I32)));
      copies.push_back(ir::cloneStmt(*body));
    }
    ir::ExprPtr mainHi = ir::arith(ir::ArithOp::Div, total(), ir::constI(n),
                                   ir::Ty::I32);
    ir::StmtPtr mainLoop =
        ir::forLoop(xoutSlot, ir::constI(0), std::move(mainHi),
                    ir::block(std::move(copies)), x + "_u");

    // Remainder: for X in [lo + (total/N)*N, hi).
    ir::ExprPtr remLo = ir::arith(
        ir::ArithOp::Add, ir::cloneExpr(*lo),
        ir::arith(ir::ArithOp::Mul,
                  ir::arith(ir::ArithOp::Div, total(), ir::constI(n),
                            ir::Ty::I32),
                  ir::constI(n), ir::Ty::I32),
        ir::Ty::I32);
    ir::StmtPtr remLoop = ir::forLoop(xSlot, std::move(remLo), std::move(hi),
                                      std::move(body), x);

    std::vector<ir::StmtPtr> both;
    both.push_back(std::move(mainLoop));
    both.push_back(std::move(remLoop));
    return ir::block(std::move(both));
  });
  if (!found)
    s.error(r, "unroll: no loop named '" + x + "' in this with-loop");
  return found;
}

/// Checks a loop body only contains vectorizable statements.
bool vectorizable(const ir::Stmt& st) {
  switch (st.k) {
    case ir::Stmt::K::Block:
      for (const auto& k : st.kids)
        if (k && !vectorizable(*k)) return false;
      return true;
    case ir::Stmt::K::Assign:
    case ir::Stmt::K::StoreFlat:
      return true;
    case ir::Stmt::K::For:
      return vectorizable(*st.kids[0]);
    default:
      return false;
  }
}

/// reorder a, b, c, ...: the named loops must form a perfect nest (in any
/// order); they are rebuilt outermost-to-innermost as listed.
bool applyReorder(Sema& s, ir::StmtPtr& nest,
                  const std::vector<std::string>& order, SourceRange r) {
  if (order.empty()) return true;
  // Find the outermost loop of the set and walk the perfect chain.
  ir::Stmt* top = nullptr;
  std::string topName;
  for (const auto& nm : order) {
    ir::Stmt* l = findLoop(nest.get(), nm);
    if (!l) {
      s.error(r, "reorder: no loop named '" + nm + "' in this with-loop");
      return false;
    }
    // The outermost of the set is the one that contains all others.
    bool containsAll = true;
    for (const auto& other : order)
      if (other != nm && !findLoop(l, other)) containsAll = false;
    if (containsAll) {
      top = l;
      topName = nm;
    }
  }
  if (!top) {
    s.error(r, "reorder: loops do not form a nest");
    return false;
  }

  // Collect the chain: each loop's body must lead directly to the next.
  std::vector<ir::StmtPtr> loops;
  auto rewriteOk = rewriteLoop(nest, topName,
                               [&](ir::StmtPtr l) -> ir::StmtPtr {
    ir::StmtPtr cur = std::move(l);
    for (size_t i = 0; i < order.size(); ++i) {
      if (!cur || cur->k != ir::Stmt::K::For ||
          std::find(order.begin(), order.end(), cur->loopName) ==
              order.end()) {
        s.error(r, "reorder: the named loops are not perfectly nested");
        // Re-assemble what we have to avoid losing the tree.
        while (!loops.empty()) {
          ir::StmtPtr inner = std::move(cur);
          cur = std::move(loops.back());
          loops.pop_back();
          cur->kids[0] = std::move(inner);
        }
        return cur;
      }
      ir::StmtPtr body = std::move(cur->kids[0]);
      loops.push_back(std::move(cur));
      cur = std::move(body);
    }
    // `cur` is the innermost body. Rebuild in the requested order.
    ir::StmtPtr rebuilt = std::move(cur);
    for (size_t i = order.size(); i-- > 0;) {
      // Find the collected loop with this name.
      auto it = std::find_if(loops.begin(), loops.end(),
                             [&](const ir::StmtPtr& p) {
                               return p->loopName == order[i];
                             });
      ir::StmtPtr loop = std::move(*it);
      loops.erase(it);
      loop->kids[0] = std::move(rebuilt);
      rebuilt = std::move(loop);
    }
    return rebuilt;
  });
  return rewriteOk;
}

// --- transformation legality (dependence-analysis verifier) ---------------
//
// Every clause is checked against the nest's dependence vectors *before*
// the rewrite. `split` and `unroll` preserve the sequential execution
// order and are trivially legal; `parallelize`/`vectorize` need the loop
// to carry no dependence; `reorder`/`interchange` must keep every vector
// lexicographically positive under the new order; `tile` needs the two
// loops permutable. Illegal clauses are diagnosed (warning by default,
// error under --strict-transform) with the witness access pair attached
// as notes, then still applied in warning mode so output matches the
// historical behaviour (the -Wshape precedent).
struct LegalityCtx {
  Sema& s;
  std::unique_ptr<analysis::Depend> dep;

  bool enabled() const { return s.warnTransform || s.strictTransform; }

  analysis::Depend& depend() {
    if (!dep) dep = std::make_unique<analysis::Depend>(*s.module());
    return *dep;
  }

  /// Dependences of every For nest inside `nest` (clauses like unroll can
  /// turn the root into a Block of loops), against the statements lowered
  /// so far as invariant-resolution context.
  std::vector<analysis::NestDeps> analyze(const ir::Stmt& nest) {
    std::vector<analysis::NestDeps> out;
    std::vector<const ir::Stmt*> ctx = s.emittedStmts();
    std::function<void(const ir::Stmt&)> rec = [&](const ir::Stmt& st) {
      if (st.k == ir::Stmt::K::For) {
        out.push_back(depend().analyzeNest(*s.fn(), st, &ctx));
        return;
      }
      for (auto& k : st.kids)
        if (k) rec(*k);
    };
    rec(nest);
    return out;
  }

  static const analysis::NestDeps* nestOf(
      const std::vector<analysis::NestDeps>& nds, const ir::Stmt* loop) {
    for (auto& nd : nds)
      if (std::find(nd.loops.begin(), nd.loops.end(), loop) !=
          nd.loops.end())
        return &nd;
    return nullptr;
  }

  void report(SourceRange r, const std::string& msg,
              const analysis::DepVector* w) {
    DiagnosticEngine::OriginScope origin(s.diags(), "transform");
    if (s.strictTransform)
      s.diags().error(r, msg);
    else
      s.diags().warning(r, msg);
    if (w) {
      if (w->src.range.valid())
        s.diags().note(w->src.range,
                       std::string("witness: ") +
                           (w->src.write ? "store to '" : "load of '") +
                           w->src.mat + "' here");
      if (w->dst.range.valid())
        s.diags().note(w->dst.range,
                       std::string("witness: ") +
                           (w->dst.write ? "store to '" : "load of '") +
                           w->dst.mat + "' here");
    }
  }
};

/// parallelize / vectorize: the named loop must carry no dependence.
bool checkIterIndependent(LegalityCtx& lc, const ir::StmtPtr& nest,
                          const std::string& x, const char* clause,
                          SourceRange r) {
  if (!lc.enabled()) return true;
  ir::Stmt* l = findLoop(nest.get(), x);
  if (!l) return true;  // the apply path reports the structural error
  auto nds = lc.analyze(*nest);
  const analysis::NestDeps* nd = LegalityCtx::nestOf(nds, l);
  if (!nd) return true;
  for (auto& v : nd->vectors) {
    if (!v.possiblyCarriedBy(l)) continue;
    std::string detail = v.fullyKnown()
                             ? "distance " + v.render()
                             : "distance " + v.render() + ", unresolved";
    lc.report(r,
              std::string(clause) + " '" + x +
                  "': loop-carried dependence on '" + v.src.mat + "' (" +
                  detail + "); iterations are not independent",
              &v);
    return false;
  }
  return true;
}

/// reorder / interchange: every vector must stay lexicographically
/// positive once the named loops are rebuilt in the listed order.
bool checkPermutation(LegalityCtx& lc, const ir::StmtPtr& nest,
                      const std::vector<std::string>& order,
                      const char* clause, SourceRange r) {
  if (!lc.enabled() || order.empty()) return true;
  std::vector<const ir::Stmt*> named;
  for (auto& nm : order) {
    ir::Stmt* l = findLoop(nest.get(), nm);
    if (!l) return true;  // structural error reported by the apply path
    named.push_back(l);
  }
  auto nds = lc.analyze(*nest);
  const analysis::NestDeps* nd = LegalityCtx::nestOf(nds, named[0]);
  if (!nd) return true;
  if (nd->hasIO || nd->hasEscape) {
    lc.report(r,
              std::string(clause) +
                  ": cannot verify legality: the loop nest performs IO or "
                  "calls with unknown effects",
              nullptr);
    return false;
  }
  for (auto& v : nd->vectors) {
    std::vector<size_t> pos;
    for (auto* l : named) {
      auto it = std::find(v.chain.begin(), v.chain.end(), l);
      if (it != v.chain.end())
        pos.push_back(static_cast<size_t>(it - v.chain.begin()));
    }
    if (pos.empty()) continue;
    bool legal = true;
    if (pos.size() != named.size()) {
      legal = false;  // partial overlap — cannot model the permutation
    } else {
      // The named loops occupy chain slots `slots` (outer->inner); after
      // the reorder slot slots[k] holds named[k]'s component.
      std::vector<size_t> slots = pos;
      std::sort(slots.begin(), slots.end());
      std::vector<int64_t> dist = v.dist;
      std::vector<bool> known = v.known;
      for (size_t k = 0; k < pos.size(); ++k) {
        dist[slots[k]] = v.dist[pos[k]];
        known[slots[k]] = v.known[pos[k]];
      }
      legal = false;
      for (size_t i = 0; i < dist.size(); ++i) {
        if (known[i] && dist[i] > 0) {
          legal = true;
          break;
        }
        if (known[i] && dist[i] == 0) continue;
        break;  // unknown or negative leading component
      }
    }
    if (!legal) {
      lc.report(r,
                std::string(clause) +
                    ": the new loop order reverses a dependence on '" +
                    v.src.mat + "' (distance " + v.render() + ")",
                &v);
      return false;
    }
  }
  return true;
}

/// tile x,y: both loops' components must be known non-negative for every
/// vector not already carried by a loop outside the pair.
bool checkTile(LegalityCtx& lc, const ir::StmtPtr& nest, const std::string& x,
               const std::string& y, SourceRange r) {
  if (!lc.enabled()) return true;
  ir::Stmt* lx = findLoop(nest.get(), x);
  ir::Stmt* ly = findLoop(nest.get(), y);
  if (!lx || !ly) return true;
  auto nds = lc.analyze(*nest);
  const analysis::NestDeps* nd = LegalityCtx::nestOf(nds, lx);
  if (!nd) return true;
  if (nd->hasIO || nd->hasEscape) {
    lc.report(r,
              "tile: cannot verify legality: the loop nest performs IO or "
              "calls with unknown effects",
              nullptr);
    return false;
  }
  for (auto& v : nd->vectors) {
    auto ix = std::find(v.chain.begin(), v.chain.end(), lx);
    auto iy = std::find(v.chain.begin(), v.chain.end(), ly);
    if (ix == v.chain.end() && iy == v.chain.end()) continue;
    size_t px = ix == v.chain.end() ? v.chain.size()
                                    : static_cast<size_t>(ix - v.chain.begin());
    size_t py = iy == v.chain.end() ? v.chain.size()
                                    : static_cast<size_t>(iy - v.chain.begin());
    size_t first = std::min(px, py);
    bool carriedOutside = false;
    bool outsideUnclear = false;
    for (size_t i = 0; i < first; ++i) {
      if (!v.known[i] || v.dist[i] < 0) {
        outsideUnclear = true;
        break;
      }
      if (v.dist[i] > 0) {
        carriedOutside = true;
        break;
      }
    }
    if (carriedOutside) continue;  // the outer loop keeps the order
    bool ok = !outsideUnclear;
    if (ok && px < v.chain.size() && (!v.known[px] || v.dist[px] < 0))
      ok = false;
    if (ok && py < v.chain.size() && (!v.known[py] || v.dist[py] < 0))
      ok = false;
    if (!ok) {
      lc.report(r,
                "tile: dependence on '" + v.src.mat + "' (distance " +
                    v.render() + ") is not permutable at '" + x + "','" + y +
                    "'",
                &v);
      return false;
    }
  }
  return true;
}

/// The hook installed into the matrix extension's WithTail table.
ir::StmtPtr transformHook(Sema& s, const ast::NodePtr& tail,
                          ir::StmtPtr nest) {
  // withtail_transform: transform { TransformSeq }
  std::vector<ast::NodePtr> stmts;
  ast::NodePtr seq = tail->child(2);
  while (seq->is("transformseq_cons")) {
    stmts.push_back(seq->child(1));
    seq = seq->child(0);
  }
  stmts.push_back(seq->child(0));
  std::reverse(stmts.begin(), stmts.end());

  LegalityCtx lc{s, nullptr};

  for (const auto& ts : stmts) {
    const ast::NodePtr& t = ts->child(0);
    if (t->is("tr_split")) {
      std::string x(t->child(1)->text());
      int n = std::stoi(std::string(t->child(3)->text()));
      std::string inName(t->child(5)->text());
      std::string outName(t->child(7)->text());
      if (n < 1) {
        s.error(t->range, "split factor must be positive");
        continue;
      }
      if (!applySplit(s, nest, x, n, inName, outName))
        s.error(t->range, "split: no loop named '" + x +
                              "' in this with-loop (transformation indices "
                              "must correspond to generated loops)");
    } else if (t->is("tr_vectorize")) {
      std::string x(t->child(1)->text());
      ir::Stmt* l = findLoop(nest.get(), x);
      if (!l) {
        s.error(t->range, "vectorize: no loop named '" + x + "'");
        continue;
      }
      if (!vectorizable(*l->kids[0])) {
        s.error(t->range,
                "vectorize: loop '" + x + "' contains control flow or "
                "calls; only arithmetic assignment bodies vectorize");
        continue;
      }
      checkIterIndependent(lc, nest, x, "vectorize", t->range);
      l->vecWidth = 4; // 128-bit SSE, 4 x f32 (paper §V)
    } else if (t->is("tr_parallelize")) {
      std::string x(t->child(1)->text());
      ir::Stmt* l = findLoop(nest.get(), x);
      if (!l) {
        s.error(t->range, "parallelize: no loop named '" + x + "'");
        continue;
      }
      checkIterIndependent(lc, nest, x, "parallelize", t->range);
      l->parallel = true;
      l->parSrc = ir::Stmt::Par::Explicit;
      if (!l->range.valid()) l->range = t->range;
    } else if (t->is("tr_reorder")) {
      std::vector<std::string> order;
      ast::NodePtr il = t->child(1);
      std::vector<ast::NodePtr> ids;
      while (il->is("tidlist_cons")) {
        ids.push_back(il->child(2));
        il = il->child(0);
      }
      ids.push_back(il->child(0));
      std::reverse(ids.begin(), ids.end());
      for (auto& id : ids) order.emplace_back(id->text());
      checkPermutation(lc, nest, order, "reorder", t->range);
      applyReorder(s, nest, order, t->range);
    } else if (t->is("tr_unroll")) {
      std::string x(t->child(1)->text());
      int n = std::stoi(std::string(t->child(3)->text()));
      if (n < 1) {
        s.error(t->range, "unroll factor must be positive");
        continue;
      }
      // unroll (like split) replays the iterations in their original
      // sequential order — legal for every dependence pattern.
      applyUnroll(s, nest, x, n, t->range);
    } else if (t->is("tr_interchange")) {
      // Derived transformation: an adjacent-pair reorder with the swap
      // legality check (the second §V clause built on the primitives).
      std::string a(t->child(1)->text());
      std::string b(t->child(3)->text());
      ir::Stmt* la = findLoop(nest.get(), a);
      ir::Stmt* lb = findLoop(nest.get(), b);
      if (!la || !lb) {
        s.error(t->range, "interchange: no loop named '" +
                              (la ? b : a) + "' in this with-loop");
        continue;
      }
      if (la == lb) {
        s.error(t->range, "interchange: loops must be distinct");
        continue;
      }
      std::vector<std::string> order;
      if (findLoop(la, b))
        order = {b, a};  // a is currently outer; swap
      else if (findLoop(lb, a))
        order = {a, b};
      else {
        s.error(t->range, "interchange: loops '" + a + "' and '" + b +
                              "' do not form a nest");
        continue;
      }
      checkPermutation(lc, nest, order, "interchange", t->range);
      applyReorder(s, nest, order, t->range);
    } else if (t->is("tr_tile")) {
      // Derived transformation: two splits + a reorder (paper §V's
      // example of adding new transformation specifications).
      std::string x(t->child(1)->text());
      std::string y(t->child(3)->text());
      int n = std::stoi(std::string(t->child(5)->text()));
      int m = std::stoi(std::string(t->child(7)->text()));
      if (n < 1 || m < 1) {
        s.error(t->range, "tile factors must be positive");
        continue;
      }
      checkTile(lc, nest, x, y, t->range);
      bool ok = applySplit(s, nest, x, n, x + "in", x + "out") &&
                applySplit(s, nest, y, m, y + "in", y + "out");
      if (!ok) {
        s.error(t->range, "tile: loops '" + x + "'/'" + y +
                              "' not found in this with-loop");
        continue;
      }
      applyReorder(s, nest, {x + "out", y + "out", x + "in", y + "in"},
                   t->range);
    } else {
      s.error(t->range, "unknown transformation '" + std::string(t->kind()) +
                            "'");
    }
  }
  return nest;
}

void installTransformSemantics(Sema& s) {
  auto it = s.extensionData.find(ext_matrix::kWithTailHooksKey);
  if (it == s.extensionData.end()) {
    // The transform extension extends the matrix constructs (§V); without
    // them there is nothing to hook.
    s.extensionData[ext_matrix::kWithTailHooksKey] =
        ext_matrix::WithTailHookMap{};
    it = s.extensionData.find(ext_matrix::kWithTailHooksKey);
  }
  auto& hooks = *std::any_cast<ext_matrix::WithTailHookMap>(&it->second);
  hooks["withtail_transform"] = transformHook;
}

class TransformExtension final : public ext::LanguageExtension {
public:
  std::string name() const override { return "transform"; }
  ext::GrammarFragment grammarFragment() const override {
    return transformFragment();
  }
  void installSemantics(cm::Sema& sema) const override {
    installTransformSemantics(sema);
  }
};

} // namespace

ext::ExtensionPtr transformExtension() {
  return std::make_unique<TransformExtension>();
}

} // namespace mmx::ext_transform
