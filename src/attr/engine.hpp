// Attribute-grammar engine in the style of Silver: declared synthesized and
// inherited attributes, equations keyed by production, demand-driven
// memoized evaluation with cycle detection, and higher-order attributes
// (attribute values that are themselves trees, evaluable after seeding
// their inherited context with seedInherited()).
//
// Extensions contribute: new attribute declarations (with an occurs-on set),
// equations for their own productions, *aspect* equations adding behaviour
// for host productions, and defaults. The modular well-definedness analysis
// (analysis/welldef.hpp) checks the composed registry for completeness.
#pragma once

#include <any>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ast/node.hpp"
#include "attr/store.hpp"
#include "support/diag.hpp"

namespace mmx::attr {

enum class AttrKind { Synthesized, Inherited };

/// Typed handle to a declared attribute.
template <class T> struct Attribute {
  AttrId id = 0;
};

class Evaluator;

/// Equation body: computes the attribute value for `self`.
using EvalFn = std::function<std::any(const ast::NodePtr& self, Evaluator&)>;

/// Declarations + equations for a composed language. Populated by the host
/// and each chosen extension after grammar composition.
class Registry {
public:
  /// Declares an attribute. `extension` records the contributing fragment.
  template <class T>
  Attribute<T> declare(std::string name, AttrKind kind, std::string extension) {
    return Attribute<T>{declareRaw(std::move(name), kind, std::move(extension))};
  }
  AttrId declareRaw(std::string name, AttrKind kind, std::string extension);

  /// Declares that attribute `a` occurs on nonterminal `nt` (by grammar
  /// name). The well-definedness analysis checks every production of `nt`
  /// has an equation (or the attribute has a default).
  void occursOn(AttrId a, std::string nt);

  /// Synthesized equation for production `prodName`.
  template <class T>
  void syn(const std::string& prodName, Attribute<T> a, EvalFn fn) {
    synRaw(prodName, a.id, std::move(fn));
  }
  void synRaw(const std::string& prodName, AttrId a, EvalFn fn);

  /// Inherited equation: production `prodName` defines attribute `a` for
  /// its `childIdx`-th child.
  template <class T>
  void inh(const std::string& prodName, size_t childIdx, Attribute<T> a,
           EvalFn fn) {
    inhRaw(prodName, childIdx, a.id, std::move(fn));
  }
  void inhRaw(const std::string& prodName, size_t childIdx, AttrId a, EvalFn fn);

  /// Default synthesized equation used when a production has no specific
  /// one (Silver's `default` / aspect-with-default pattern).
  void synDefault(AttrId a, EvalFn fn);

  /// Marks an inherited attribute as copy-propagated: a node without a
  /// specific equation receives its parent's value (Silver's autocopy).
  void inhAutoCopy(AttrId a);

  // --- introspection (used by Evaluator and the well-definedness check) ---
  struct AttrDecl {
    AttrId id;
    std::string name;
    AttrKind kind;
    std::string extension;
    std::vector<std::string> occurs;
    bool hasDefault = false;
    bool autocopy = false;
  };
  const std::vector<AttrDecl>& attributes() const { return decls_; }
  const AttrDecl& decl(AttrId a) const { return decls_[a]; }

  const EvalFn* findSyn(const std::string& prodName, AttrId a) const;
  const EvalFn* findInh(const std::string& prodName, size_t childIdx,
                        AttrId a) const;
  const EvalFn* findSynDefault(AttrId a) const;
  bool isAutoCopy(AttrId a) const { return decls_[a].autocopy; }

private:
  std::vector<AttrDecl> decls_;
  std::map<std::pair<std::string, AttrId>, EvalFn> synEq_;
  std::map<std::tuple<std::string, size_t, AttrId>, EvalFn> inhEq_;
  std::map<AttrId, EvalFn> synDefault_;
};

/// Thrown when demand evaluation revisits an in-progress slot.
struct CycleError : std::runtime_error {
  using std::runtime_error::runtime_error;
};
/// Thrown when no equation, default, or seed defines a demanded attribute.
struct MissingEquation : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Demand-driven evaluator over one tree (or several: state is per-node).
class Evaluator {
public:
  explicit Evaluator(const Registry& reg) : reg_(reg) {}

  /// Demands attribute `a` on `n`; memoizes into the node's store.
  const std::any& getRaw(const ast::NodePtr& n, AttrId a);

  template <class T> const T& get(const ast::NodePtr& n, Attribute<T> a) {
    return std::any_cast<const T&>(getRaw(n, a.id));
  }

  /// Seeds an inherited attribute on a (typically detached) tree root —
  /// how higher-order attribute trees receive their context.
  void seedInherited(const ast::NodePtr& root, AttrId a, std::any value);
  template <class T>
  void seed(const ast::NodePtr& root, Attribute<T> a, T value) {
    seedInherited(root, a.id, std::any(std::move(value)));
  }

  const Registry& registry() const { return reg_; }

private:
  const std::any& evalSyn(const ast::NodePtr& n, AttrId a, AttrStore::Slot& s);
  const std::any& evalInh(const ast::NodePtr& n, AttrId a, AttrStore::Slot& s);

  const Registry& reg_;
};

} // namespace mmx::attr
