#include "attr/engine.hpp"

#include <stdexcept>

#include "support/metrics.hpp"

namespace mmx::attr {

namespace {

// Demand-driven evaluation telemetry: cache hits measure how much the
// memoisation in AttrStore saves over naive re-evaluation.
void countCacheHit() {
  static const metrics::Counter c = metrics::counter("attr.cacheHits");
  c.add();
}
void countEval() {
  static const metrics::Counter c = metrics::counter("attr.evals");
  c.add();
}

} // namespace

AttrId Registry::declareRaw(std::string name, AttrKind kind,
                            std::string extension) {
  AttrDecl d;
  d.id = static_cast<AttrId>(decls_.size());
  d.name = std::move(name);
  d.kind = kind;
  d.extension = std::move(extension);
  decls_.push_back(std::move(d));
  return decls_.back().id;
}

void Registry::occursOn(AttrId a, std::string nt) {
  decls_.at(a).occurs.push_back(std::move(nt));
}

void Registry::synRaw(const std::string& prodName, AttrId a, EvalFn fn) {
  if (decls_.at(a).kind != AttrKind::Synthesized)
    throw std::logic_error("syn equation for inherited attribute " +
                           decls_[a].name);
  synEq_[{prodName, a}] = std::move(fn);
}

void Registry::inhRaw(const std::string& prodName, size_t childIdx, AttrId a,
                      EvalFn fn) {
  if (decls_.at(a).kind != AttrKind::Inherited)
    throw std::logic_error("inh equation for synthesized attribute " +
                           decls_[a].name);
  inhEq_[{prodName, childIdx, a}] = std::move(fn);
}

void Registry::synDefault(AttrId a, EvalFn fn) {
  decls_.at(a).hasDefault = true;
  synDefault_[a] = std::move(fn);
}

void Registry::inhAutoCopy(AttrId a) {
  if (decls_.at(a).kind != AttrKind::Inherited)
    throw std::logic_error("autocopy on synthesized attribute " +
                           decls_[a].name);
  decls_.at(a).autocopy = true;
}

const EvalFn* Registry::findSyn(const std::string& prodName, AttrId a) const {
  auto it = synEq_.find({prodName, a});
  return it == synEq_.end() ? nullptr : &it->second;
}

const EvalFn* Registry::findInh(const std::string& prodName, size_t childIdx,
                                AttrId a) const {
  auto it = inhEq_.find({prodName, childIdx, a});
  return it == inhEq_.end() ? nullptr : &it->second;
}

const EvalFn* Registry::findSynDefault(AttrId a) const {
  auto it = synDefault_.find(a);
  return it == synDefault_.end() ? nullptr : &it->second;
}

const std::any& Evaluator::getRaw(const ast::NodePtr& n, AttrId a) {
  AttrStore::Slot& s = n->store.slot(a);
  switch (s.state) {
    case AttrStore::State::Done:
      if (metrics::enabled()) countCacheHit();
      return s.value;
    case AttrStore::State::InProgress:
      throw CycleError("cycle evaluating attribute '" + reg_.decl(a).name +
                       "' on " + std::string(n->kind()));
    case AttrStore::State::Empty:
      break;
  }
  return reg_.decl(a).kind == AttrKind::Synthesized ? evalSyn(n, a, s)
                                                    : evalInh(n, a, s);
}

void Evaluator::seedInherited(const ast::NodePtr& root, AttrId a,
                              std::any value) {
  if (reg_.decl(a).kind != AttrKind::Inherited)
    throw std::logic_error("seedInherited on synthesized attribute " +
                           reg_.decl(a).name);
  AttrStore::Slot& s = root->store.slot(a);
  s.value = std::move(value);
  s.state = AttrStore::State::Done;
}

const std::any& Evaluator::evalSyn(const ast::NodePtr& n, AttrId a,
                                   AttrStore::Slot& s) {
  const EvalFn* fn = nullptr;
  if (n->prod) fn = reg_.findSyn(n->prod->name, a);
  if (!fn) fn = reg_.findSynDefault(a);
  if (!fn)
    throw MissingEquation("no equation for synthesized attribute '" +
                          reg_.decl(a).name + "' on production '" +
                          std::string(n->kind()) + "'");
  if (metrics::enabled()) countEval();
  s.state = AttrStore::State::InProgress;
  s.value = (*fn)(n, *this);
  s.state = AttrStore::State::Done;
  return s.value;
}

const std::any& Evaluator::evalInh(const ast::NodePtr& n, AttrId a,
                                   AttrStore::Slot& s) {
  ast::Node* parent = n->parent;
  if (!parent)
    throw MissingEquation("inherited attribute '" + reg_.decl(a).name +
                          "' demanded on a root that was never seeded (" +
                          std::string(n->kind()) + ")");
  // Child index within the parent.
  size_t idx = 0;
  bool found = false;
  for (size_t i = 0; i < parent->kids.size(); ++i)
    if (parent->kids[i].get() == n.get()) { idx = i; found = true; break; }
  if (!found)
    throw std::logic_error("node not among its parent's children");

  const EvalFn* fn =
      parent->prod ? reg_.findInh(parent->prod->name, idx, a) : nullptr;
  // Recover a shared_ptr for the parent. Parents always outlive children
  // during evaluation; the aliasing constructor gives a non-owning handle.
  ast::NodePtr parentPtr(ast::NodePtr{}, parent);
  if (metrics::enabled()) countEval();
  s.state = AttrStore::State::InProgress;
  if (fn) {
    // Equations are written from the parent's perspective.
    s.value = (*fn)(parentPtr, *this);
  } else if (reg_.isAutoCopy(a)) {
    s.value = getRaw(parentPtr, a);
  } else {
    s.state = AttrStore::State::Empty;
    throw MissingEquation("no equation for inherited attribute '" +
                          reg_.decl(a).name + "' on child " +
                          std::to_string(idx) + " of production '" +
                          std::string(parent->prod ? parent->prod->name
                                                   : "<token>") +
                          "'");
  }
  s.state = AttrStore::State::Done;
  return s.value;
}

} // namespace mmx::attr
