// Per-node attribute storage: memoized slots with evaluation state for
// cycle detection. Kept separate from the engine so ast::Node can embed a
// store without depending on evaluation.
#pragma once

#include <any>
#include <cstdint>
#include <unordered_map>

namespace mmx::attr {

/// Identifies a declared attribute within a Registry.
using AttrId = uint32_t;

/// One node's attribute slots.
class AttrStore {
public:
  enum class State : uint8_t { Empty, InProgress, Done };

  struct Slot {
    State state = State::Empty;
    std::any value;
  };

  Slot& slot(AttrId a) { return slots_[a]; }
  const Slot* find(AttrId a) const {
    auto it = slots_.find(a);
    return it == slots_.end() ? nullptr : &it->second;
  }
  void clear() { slots_.clear(); }

private:
  std::unordered_map<AttrId, Slot> slots_;
};

} // namespace mmx::attr
