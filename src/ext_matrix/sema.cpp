// Semantic analysis and lowering of the matrix extension. With-loops
// expand into annotated for-loop nests (the approximate translation of
// Fig. 3); the §III-A4 optimizations — with-loop/assignment fusion and
// fold slice elimination — and §III-C auto-parallelization are applied
// here, each behind a Sema option so the benches can ablate them.
#include <functional>

#include "cminus/sema.hpp"
#include "ext_matrix/matrix_ext.hpp"
#include "support/metrics.hpp"

namespace mmx::ext_matrix {

using cm::ExprRes;
using cm::Sema;
using cm::Type;
using cm::VarInfo;

namespace {

constexpr const char* kExt = "matrix";

// Optimization counters (§III-A4/§III-C): how often each rewrite fired
// during lowering. Only touched when metrics are on.
void countOpt(const char* which) {
  if (!metrics::enabled()) return;
  metrics::counter(which).add();
}

// --- local tree helpers (mirrors host_sema's internal ones) ---------------

std::vector<ast::NodePtr> listElems(const ast::NodePtr& n,
                                    std::string_view consName,
                                    std::string_view oneName) {
  std::vector<ast::NodePtr> stack;
  ast::NodePtr node = n;
  while (node->is(consName)) {
    stack.push_back(node->kids.back());
    node = node->child(0);
  }
  std::vector<ast::NodePtr> out;
  if (node->is(oneName))
    out.push_back(node->child(0));
  else
    out.push_back(node);
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) out.push_back(*it);
  return out;
}

std::vector<ast::NodePtr> exprListElems(const ast::NodePtr& n) {
  return listElems(n, "exprlist_cons", "exprlist_one");
}
std::vector<ast::NodePtr> idListElems(const ast::NodePtr& n) {
  return listElems(n, "midlist_cons", "midlist_one");
}
std::vector<ast::NodePtr> indexListElems(const ast::NodePtr& n) {
  return listElems(n, "indexlist_cons", "indexlist_one");
}

const ast::NodePtr& significant(const ast::NodePtr& n) {
  static const std::vector<std::string_view> chains = {
      "expr_pass", "or_pass", "and_pass", "cmp_pass",
      "add_pass",  "mul_pass", "un_pass", "post_pass"};
  const ast::NodePtr* cur = &n;
  for (;;) {
    bool advanced = false;
    for (auto c : chains)
      if ((*cur)->is(c)) {
        cur = &(*cur)->child(0);
        advanced = true;
        break;
      }
    if (!advanced) return *cur;
  }
}

/// Materializes an expression into a slot (no-op for plain variables).
int32_t materialize(Sema& s, ExprRes& e, const char* hint) {
  if (e.code->k == ir::Expr::K::Var) return e.code->slot;
  int32_t slot = s.newTemp(e.type, hint);
  s.emit(ir::assign(slot, std::move(e.code)));
  e.code = ir::var(slot, Sema::lowerTy(e.type));
  return slot;
}

/// Evaluates an int expression into a fresh slot; returns the slot.
int32_t intTemp(Sema& s, const ast::NodePtr& n, const char* hint,
                bool& okFlag) {
  ExprRes e = s.coerce(s.expr(n), Type::intTy(), n->range);
  if (e.bad()) {
    okFlag = false;
    return -1;
  }
  int32_t slot = s.newTemp(Type::intTy(), hint);
  s.emit(ir::assign(slot, std::move(e.code)));
  return slot;
}

// --- matrix type handling -------------------------------------------------

rt::Elem elemOfNode(const ast::NodePtr& elemTy) {
  if (elemTy->is("melem_int")) return rt::Elem::I32;
  if (elemTy->is("melem_bool")) return rt::Elem::Bool;
  return rt::Elem::F32;
}

// --- operator hooks (overloading, §III-A2) ------------------------------

/// True when the type participates in matrix arithmetic.
bool matLike(const Type& t) { return t.isMatrix(); }

/// Promotes an int matrix to float (MATLAB-style widening when combined
/// with a float scalar), in place.
void promoteMatToFloat(ExprRes& m) {
  std::vector<ir::ExprPtr> args;
  args.push_back(std::move(m.code));
  m.code = ir::call("matToFloat", std::move(args), ir::Ty::Mat);
  m.type = Type::matrix(rt::Elem::F32, m.type.rank);
}

std::optional<ExprRes> matrixBin(Sema& s, ir::ArithOp op, ExprRes& a,
                                 ExprRes& b, SourceRange r) {
  if (!matLike(a.type) && !matLike(b.type)) return std::nullopt;
  auto err = [&](const std::string& m) {
    s.error(r, m);
    return std::optional<ExprRes>(ExprRes::error());
  };
  if (a.type.k == Type::K::MatrixAny || b.type.k == Type::K::MatrixAny)
    return err("assign the result of readMatrix to a typed Matrix variable "
               "before using it in arithmetic");

  if (matLike(a.type) && matLike(b.type)) {
    if (a.type.elem == rt::Elem::Bool || b.type.elem == rt::Elem::Bool)
      return err("arithmetic on bool matrices is not defined");
    if (a.type.elem != b.type.elem)
      return err("matrix operands must have the same element type: " +
                 a.type.str() + " vs " + b.type.str());
    if (op == ir::ArithOp::Mul) {
      // Linear-algebra multiplication (paper: '*' is matrix multiply).
      if (a.type.rank != 2 || b.type.rank != 2)
        return err("matrix multiplication '*' needs two rank-2 matrices; "
                   "use '.*' for element-wise multiplication");
      return ExprRes{Type::matrix(a.type.elem, 2),
                     ir::arith(op, std::move(a.code), std::move(b.code),
                               ir::Ty::Mat)};
    }
    if (a.type.rank != b.type.rank)
      return err("element-wise operator needs matrices of the same rank: " +
                 a.type.str() + " vs " + b.type.str());
    return ExprRes{a.type, ir::arith(op, std::move(a.code),
                                     std::move(b.code), ir::Ty::Mat)};
  }

  // Matrix (op) scalar / scalar (op) matrix broadcast.
  ExprRes& m = matLike(a.type) ? a : b;
  ExprRes& sc = matLike(a.type) ? b : a;
  if (m.type.elem == rt::Elem::Bool)
    return err("arithmetic on bool matrices is not defined");
  if (m.type.elem == rt::Elem::I32 && sc.type.k == Type::K::Float)
    promoteMatToFloat(m); // int matrix + float scalar widens the matrix
  Type scalarWant = m.type.elementType();
  sc = s.coerce(std::move(sc), scalarWant, r);
  if (sc.bad()) return ExprRes::error();
  return ExprRes{m.type, ir::arith(op, std::move(a.code), std::move(b.code),
                                   ir::Ty::Mat)};
}

std::optional<ExprRes> matrixCmp(Sema& s, ir::CmpKind op, ExprRes& a,
                                 ExprRes& b, SourceRange r) {
  if (!matLike(a.type) && !matLike(b.type)) return std::nullopt;
  auto err = [&](const std::string& m) {
    s.error(r, m);
    return std::optional<ExprRes>(ExprRes::error());
  };
  if (a.type.k == Type::K::MatrixAny || b.type.k == Type::K::MatrixAny)
    return err("assign the result of readMatrix to a typed Matrix variable "
               "before comparing it");
  uint32_t rank;
  if (matLike(a.type) && matLike(b.type)) {
    if (a.type.elem != b.type.elem || a.type.rank != b.type.rank)
      return err("comparison needs matrices of the same type and rank: " +
                 a.type.str() + " vs " + b.type.str());
    rank = a.type.rank;
  } else {
    ExprRes& m = matLike(a.type) ? a : b;
    ExprRes& sc = matLike(a.type) ? b : a;
    if (m.type.elem == rt::Elem::Bool)
      return err("ordering comparisons on bool matrices are not defined");
    if (m.type.elem == rt::Elem::I32 && sc.type.k == Type::K::Float)
      promoteMatToFloat(m);
    sc = s.coerce(std::move(sc), m.type.elementType(), r);
    if (sc.bad()) return ExprRes::error();
    rank = m.type.rank;
  }
  return ExprRes{Type::matrix(rt::Elem::Bool, rank),
                 ir::cmp(op, std::move(a.code), std::move(b.code),
                         ir::Ty::Mat)};
}

// --- indexing (§III-A3) --------------------------------------------------

struct LoweredSelectors {
  std::vector<ir::IndexDim> dims;
  uint32_t keptRank = 0;
  bool allScalar = true;
  bool ok = false;
};

LoweredSelectors lowerSelectors(Sema& s, int32_t matSlot, const Type& matTy,
                                const std::vector<ast::NodePtr>& elems) {
  LoweredSelectors out;
  for (size_t d = 0; d < elems.size(); ++d) {
    const ast::NodePtr& e = elems[d];
    s.pushIndexCtx({matSlot, static_cast<uint32_t>(d), matTy});
    ir::IndexDim dim;
    if (e->is("ixe_all")) {
      dim.kind = ir::IndexDim::Kind::All;
      out.keptRank++;
      out.allScalar = false;
    } else if (e->is("ixe_range")) {
      ExprRes lo = s.coerce(s.expr(e->child(0)), Type::intTy(), e->range);
      ExprRes hi = s.coerce(s.expr(e->child(2)), Type::intTy(), e->range);
      if (lo.bad() || hi.bad()) {
        s.popIndexCtx();
        return out;
      }
      dim.kind = ir::IndexDim::Kind::Range;
      dim.a = std::move(lo.code);
      dim.b = std::move(hi.code);
      out.keptRank++;
      out.allScalar = false;
    } else { // ixe_expr
      ExprRes v = s.expr(e->child(0));
      if (v.bad()) {
        s.popIndexCtx();
        return out;
      }
      if (v.type.k == Type::K::Int) {
        dim.kind = ir::IndexDim::Kind::Scalar;
        dim.a = std::move(v.code);
      } else if (v.type.k == Type::K::Matrix &&
                 v.type.elem == rt::Elem::Bool && v.type.rank == 1) {
        dim.kind = ir::IndexDim::Kind::Mask;
        dim.a = std::move(v.code);
        out.keptRank++;
        out.allScalar = false;
      } else {
        s.error(e->range, "index selector must be an int or a rank-1 bool "
                          "matrix (logical indexing), found " +
                              v.type.str());
        s.popIndexCtx();
        return out;
      }
    }
    s.popIndexCtx();
    out.dims.push_back(std::move(dim));
  }
  out.ok = true;
  return out;
}

/// Row-major flat offset for all-scalar selectors:
/// ((i0 * d1 + i1) * d2 + i2) ... using runtime DimSize.
ir::ExprPtr flatOffset(int32_t matSlot, std::vector<ir::IndexDim>& dims) {
  ir::ExprPtr flat;
  for (size_t d = 0; d < dims.size(); ++d) {
    ir::ExprPtr idx = std::move(dims[d].a);
    if (!flat) {
      flat = std::move(idx);
    } else {
      flat = ir::arith(
          ir::ArithOp::Add,
          ir::arith(ir::ArithOp::Mul, std::move(flat),
                    ir::dimSize(ir::var(matSlot, ir::Ty::Mat),
                                ir::constI(static_cast<int32_t>(d))),
                    ir::Ty::I32),
          std::move(idx), ir::Ty::I32);
    }
  }
  return flat;
}

ExprRes lowerIndexExpr(Sema& s, const ast::NodePtr& n) {
  // post_index: Postfix [ IndexList ]
  ExprRes base = s.expr(n->child(0));
  if (base.bad()) return ExprRes::error();

  Type bt = base.type;
  uint32_t rank;
  rt::Elem elem;
  if (bt.k == Type::K::Matrix || bt.k == Type::K::RefPtr) {
    rank = bt.k == Type::K::RefPtr ? 1 : bt.rank;
    elem = bt.elem;
  } else if (bt.k == Type::K::MatrixAny) {
    s.error(n->range, "assign the result of readMatrix to a typed Matrix "
                      "variable before indexing it");
    return ExprRes::error();
  } else {
    s.error(n->range, "type " + bt.str() + " cannot be indexed");
    return ExprRes::error();
  }

  auto elems = indexListElems(n->child(2));
  if (elems.size() != rank) {
    s.error(n->range, "indexing a rank-" + std::to_string(rank) + " " +
                          bt.str() + " with " + std::to_string(elems.size()) +
                          " selectors");
    return ExprRes::error();
  }

  int32_t baseSlot = materialize(s, base, "mat");
  LoweredSelectors sel = lowerSelectors(s, baseSlot, bt, elems);
  if (!sel.ok) return ExprRes::error();

  if (sel.allScalar) {
    Type et = cm::scalarOfElem(elem);
    if (s.sliceEliminationEnabled) {
      // Direct flat load — the §III-A4 fast path (Fig. 3 uses exactly
      // this shape).
      countOpt("matrix.sliceElims");
      ir::ExprPtr flat = flatOffset(baseSlot, sel.dims);
      return ExprRes{et, ir::loadFlat(ir::var(baseSlot, ir::Ty::Mat),
                                      std::move(flat), Sema::lowerTy(et))};
    }
    // Unoptimized path: full selector machinery even for one element.
    auto e = std::make_unique<ir::Expr>();
    e->k = ir::Expr::K::Index;
    e->ty = Sema::lowerTy(et);
    e->args.push_back(ir::var(baseSlot, ir::Ty::Mat));
    e->dims = std::move(sel.dims);
    return ExprRes{et, std::move(e)};
  }

  auto e = std::make_unique<ir::Expr>();
  e->k = ir::Expr::K::Index;
  e->ty = ir::Ty::Mat;
  e->args.push_back(ir::var(baseSlot, ir::Ty::Mat));
  e->dims = std::move(sel.dims);
  return ExprRes{Type::matrix(elem, sel.keptRank), std::move(e)};
}

// --- with-loops (§III-A4) --------------------------------------------------

struct GeneratorInfo {
  bool ok = false;
  std::vector<int32_t> lo, hiEx; // slots: inclusive lower, exclusive upper
  std::vector<std::string> ids;
  std::vector<int32_t> ivars; // loop variable slots
};

GeneratorInfo lowerGenerator(Sema& s, const ast::NodePtr& gen) {
  GeneratorInfo g;
  auto lowers = exprListElems(gen->child(1));
  auto ids = idListElems(gen->child(5));
  auto uppers = exprListElems(gen->child(9));
  bool leftIncl = gen->child(3)->is("mrelb_le");
  bool rightExcl = gen->child(7)->is("mrelb_lt");

  if (lowers.size() != ids.size() || uppers.size() != ids.size()) {
    s.error(gen->range,
            "with-loop generator: the lower bound has " +
                std::to_string(lowers.size()) + " expressions, the upper " +
                std::to_string(uppers.size()) + ", but " +
                std::to_string(ids.size()) + " index variables are given");
    return g;
  }

  bool ok = true;
  for (size_t d = 0; d < ids.size(); ++d) {
    int32_t lo = intTemp(s, lowers[d], "wlo", ok);
    if (!ok) return g;
    if (!leftIncl) {
      s.emit(ir::assign(lo, ir::arith(ir::ArithOp::Add,
                                      ir::var(lo, ir::Ty::I32), ir::constI(1),
                                      ir::Ty::I32)));
    }
    int32_t hi = intTemp(s, uppers[d], "whi", ok);
    if (!ok) return g;
    if (!rightExcl) {
      s.emit(ir::assign(hi, ir::arith(ir::ArithOp::Add,
                                      ir::var(hi, ir::Ty::I32), ir::constI(1),
                                      ir::Ty::I32)));
    }
    g.lo.push_back(lo);
    g.hiEx.push_back(hi);
    g.ids.emplace_back(ids[d]->text());
  }
  g.ok = true;
  return g;
}

/// Wraps `body` into the generator's loop nest, innermost-first.
ir::StmtPtr buildNest(const GeneratorInfo& g, ir::StmtPtr body) {
  ir::StmtPtr cur = std::move(body);
  for (size_t d = g.ids.size(); d-- > 0;) {
    cur = ir::forLoop(g.ivars[d], ir::var(g.lo[d], ir::Ty::I32),
                      ir::var(g.hiEx[d], ir::Ty::I32), std::move(cur),
                      g.ids[d]);
  }
  return cur;
}

/// Applies the WithTail: auto-parallelize for the plain tail, or dispatch
/// to a registered transformation hook (paper §V).
ir::StmtPtr applyTail(Sema& s, const ast::NodePtr& tail, ir::StmtPtr nest,
                      bool allowAutoParallel) {
  if (tail->is("withtail_none")) {
    if (allowAutoParallel && s.autoParallelEnabled &&
        nest->k == ir::Stmt::K::For) {
      countOpt("matrix.autoParallel");
      nest->parallel = true;
      nest->parSrc = ir::Stmt::Par::Auto;
    }
    return nest;
  }
  auto it = s.extensionData.find(kWithTailHooksKey);
  if (it != s.extensionData.end()) {
    auto& hooks = *std::any_cast<WithTailHookMap>(&it->second);
    auto h = hooks.find(std::string(tail->kind()));
    if (h != hooks.end()) return h->second(s, tail, std::move(nest));
  }
  s.error(tail->range, "no transformation extension handles '" +
                           std::string(tail->kind()) + "'");
  return nest;
}

ir::ArithOp foldOpOf(const ast::NodePtr& n) {
  if (n->is("mfold_add")) return ir::ArithOp::Add;
  if (n->is("mfold_mul")) return ir::ArithOp::Mul;
  if (n->is("mfold_min")) return ir::ArithOp::Min;
  return ir::ArithOp::Max;
}

ExprRes lowerWith(Sema& s, const ast::NodePtr& n) {
  const ast::NodePtr& gen = n->child(2);
  const ast::NodePtr& op = n->child(4);

  GeneratorInfo g = lowerGenerator(s, gen);
  if (!g.ok) return ExprRes::error();
  size_t rank = g.ids.size();

  s.pushScope();
  for (size_t d = 0; d < rank; ++d) {
    VarInfo* v = s.declareVar(g.ids[d], Type::intTy(), gen->range);
    g.ivars.push_back(v->slots[0]);
  }

  ExprRes result = ExprRes::error();
  if (op->is("mwithop_genarray")) {
    auto shapeNodes = exprListElems(op->child(3));
    const ast::NodePtr& bodyNode = op->child(6);
    const ast::NodePtr& tail = op->child(8);
    if (shapeNodes.size() != rank) {
      s.error(op->range, "genarray shape has " +
                             std::to_string(shapeNodes.size()) +
                             " dimensions but the generator defines " +
                             std::to_string(rank) + " index variables");
      s.popScope();
      return ExprRes::error();
    }
    // Shape temps (evaluated outside the loop-variable scope visually,
    // but loop variables may not appear in them anyway per checking).
    bool ok = true;
    std::vector<int32_t> shape;
    for (auto& sn : shapeNodes) {
      shape.push_back(intTemp(s, sn, "wsh", ok));
      if (!ok) {
        s.popScope();
        return ExprRes::error();
      }
    }

    // Lower the element expression into the innermost loop body.
    s.pushBlock();
    ExprRes body = s.expr(bodyNode);
    if (body.bad() || !body.type.isScalar()) {
      if (!body.bad())
        s.error(bodyNode->range,
                "genarray element expression must be scalar, found " +
                    body.type.str());
      s.popBlock();
      s.popScope();
      return ExprRes::error();
    }
    rt::Elem elem = cm::elemOfScalar(body.type);
    Type resTy = Type::matrix(elem, static_cast<uint32_t>(rank));
    int32_t res = s.newTemp(resTy, "wres");

    // Flat offset over the *shape* dims: ((i0*s1)+i1)*s2 + ...
    ir::ExprPtr flat = ir::var(g.ivars[0], ir::Ty::I32);
    for (size_t d = 1; d < rank; ++d) {
      flat = ir::arith(
          ir::ArithOp::Add,
          ir::arith(ir::ArithOp::Mul, std::move(flat),
                    ir::var(shape[d], ir::Ty::I32), ir::Ty::I32),
          ir::var(g.ivars[d], ir::Ty::I32), ir::Ty::I32);
    }
    s.emit(ir::storeFlat(res, std::move(flat), std::move(body.code)));
    ir::StmtPtr innerBody = s.popBlock();

    // Result allocation + the runtime superset check, ahead of the nest.
    std::vector<ir::ExprPtr> initArgs;
    initArgs.push_back(ir::constI(static_cast<int32_t>(elem)));
    for (size_t d = 0; d < rank; ++d)
      initArgs.push_back(ir::var(shape[d], ir::Ty::I32));
    s.emit(ir::assign(res, ir::call("initMatrix", std::move(initArgs),
                                    ir::Ty::Mat)));
    for (size_t d = 0; d < rank; ++d) {
      std::vector<ir::ExprPtr> chk;
      chk.push_back(ir::var(g.hiEx[d], ir::Ty::I32));
      chk.push_back(ir::var(shape[d], ir::Ty::I32));
      s.emit(ir::callStmt(ir::call("checkGenBounds", std::move(chk),
                                   ir::Ty::Void)));
    }

    ir::StmtPtr nest = buildNest(g, std::move(innerBody));
    nest = applyTail(s, tail, std::move(nest), /*allowAutoParallel=*/true);
    s.emit(std::move(nest));
    result = ExprRes{resTy, ir::var(res, ir::Ty::Mat)};
  } else { // mwithop_fold
    ir::ArithOp fop = foldOpOf(op->child(2));
    const ast::NodePtr& baseNode = op->child(4);
    const ast::NodePtr& bodyNode = op->child(6);
    const ast::NodePtr& tail = op->child(8);

    ExprRes base = s.expr(baseNode);
    if (base.bad() || !base.type.isScalarNumeric()) {
      if (!base.bad())
        s.error(baseNode->range, "fold base value must be numeric, found " +
                                     base.type.str());
      s.popScope();
      return ExprRes::error();
    }
    int32_t acc = s.newTemp(base.type, "wacc");
    s.emit(ir::assign(acc, std::move(base.code)));

    s.pushBlock();
    ExprRes body =
        s.coerce(s.expr(bodyNode), base.type, bodyNode->range);
    if (body.bad()) {
      s.popBlock();
      s.popScope();
      return ExprRes::error();
    }
    s.emit(ir::assign(
        acc, ir::arith(fop, ir::var(acc, Sema::lowerTy(base.type)),
                       std::move(body.code), Sema::lowerTy(base.type))));
    ir::StmtPtr innerBody = s.popBlock();

    ir::StmtPtr nest = buildNest(g, std::move(innerBody));
    // Folds stay serial (the enclosing genarray loop is the parallel one);
    // a transform tail may still restructure them.
    nest = applyTail(s, tail, std::move(nest), /*allowAutoParallel=*/false);
    s.emit(std::move(nest));
    result = ExprRes{base.type, ir::var(acc, Sema::lowerTy(base.type))};
  }

  s.popScope();
  return result;
}

// --- matrixMap (§III-A5) --------------------------------------------------

ExprRes lowerMatrixMap(Sema& s, const ast::NodePtr& n) {
  // prim_matrixmap: matrixMap ( ID , Expr , [ ExprList ] )
  std::string fname(n->child(2)->text());
  ExprRes src = s.expr(n->child(4));
  if (src.bad()) return ExprRes::error();
  if (src.type.k != Type::K::Matrix) {
    s.error(n->range, "matrixMap needs a typed matrix, found " +
                          src.type.str());
    return ExprRes::error();
  }
  uint32_t rank = src.type.rank;

  // Mapped dimensions: int literals, unique, ascending, in range.
  std::vector<uint32_t> mapped;
  for (auto& d : exprListElems(n->child(7))) {
    const ast::NodePtr& lit = significant(d);
    if (!lit->is("prim_int")) {
      s.error(d->range, "matrixMap dimensions must be integer literals");
      return ExprRes::error();
    }
    mapped.push_back(
        static_cast<uint32_t>(std::stoul(std::string(lit->child(0)->text()))));
  }
  for (size_t i = 0; i < mapped.size(); ++i) {
    if (mapped[i] >= rank) {
      s.error(n->range, "matrixMap dimension " + std::to_string(mapped[i]) +
                            " is out of range for " + src.type.str());
      return ExprRes::error();
    }
    if (i && mapped[i] <= mapped[i - 1]) {
      s.error(n->range, "matrixMap dimensions must be strictly ascending");
      return ExprRes::error();
    }
  }

  // The mapped function: Matrix<e, k> -> Matrix<e, k> (result is the same
  // size and rank as the input, §III-A5).
  const cm::FuncSig* sig = s.findFunction(fname);
  if (!sig) {
    s.error(n->range, "matrixMap: unknown function '" + fname + "'");
    return ExprRes::error();
  }
  Type sliceTy =
      Type::matrix(src.type.elem, static_cast<uint32_t>(mapped.size()));
  if (sig->params.size() != 1 || !(sig->params[0] == sliceTy) ||
      sig->rets.size() != 1 || !(sig->rets[0] == sliceTy)) {
    s.error(n->range, "matrixMap: '" + fname + "' must have signature " +
                          sliceTy.str() + " -> " + sliceTy.str());
    return ExprRes::error();
  }

  int32_t srcSlot = materialize(s, src, "mmsrc");

  // Result: same shape and element type.
  std::vector<ir::ExprPtr> initArgs;
  initArgs.push_back(ir::constI(static_cast<int32_t>(src.type.elem)));
  for (uint32_t d = 0; d < rank; ++d)
    initArgs.push_back(
        ir::dimSize(ir::var(srcSlot, ir::Ty::Mat), ir::constI(d)));
  int32_t res = s.newTemp(src.type, "mmres");
  s.emit(ir::assign(res, ir::call("initMatrix", std::move(initArgs),
                                  ir::Ty::Mat)));

  // Iterate the product of the non-mapped dimensions.
  std::vector<uint32_t> others;
  for (uint32_t d = 0; d < rank; ++d)
    if (std::find(mapped.begin(), mapped.end(), d) == mapped.end())
      others.push_back(d);

  int32_t total = s.newTemp(Type::intTy(), "mmtot");
  {
    ir::ExprPtr prod = ir::constI(1);
    for (uint32_t d : others)
      prod = ir::arith(ir::ArithOp::Mul, std::move(prod),
                       ir::dimSize(ir::var(srcSlot, ir::Ty::Mat),
                                   ir::constI(static_cast<int32_t>(d))),
                       ir::Ty::I32);
    s.emit(ir::assign(total, std::move(prod)));
  }

  int32_t t = s.fn()->addLocal("%mm_t", ir::Ty::I32);
  int32_t sliceSlot = s.newTemp(sliceTy, "mmslice");

  s.pushBlock();
  // Decompose t: for others in reverse order, idx = t' % dim; t' /= dim.
  std::vector<int32_t> idxSlots(rank, -1);
  int32_t rem = s.newTemp(Type::intTy(), "mmrem");
  s.emit(ir::assign(rem, ir::var(t, ir::Ty::I32)));
  for (size_t i = others.size(); i-- > 0;) {
    uint32_t d = others[i];
    int32_t idx = s.newTemp(Type::intTy(), "mmidx");
    idxSlots[d] = idx;
    s.emit(ir::assign(
        idx, ir::arith(ir::ArithOp::Mod, ir::var(rem, ir::Ty::I32),
                       ir::dimSize(ir::var(srcSlot, ir::Ty::Mat),
                                   ir::constI(static_cast<int32_t>(d))),
                       ir::Ty::I32)));
    s.emit(ir::assign(
        rem, ir::arith(ir::ArithOp::Div, ir::var(rem, ir::Ty::I32),
                       ir::dimSize(ir::var(srcSlot, ir::Ty::Mat),
                                   ir::constI(static_cast<int32_t>(d))),
                       ir::Ty::I32)));
  }

  auto makeDims = [&]() {
    std::vector<ir::IndexDim> dims;
    for (uint32_t d = 0; d < rank; ++d) {
      ir::IndexDim dim;
      if (idxSlots[d] < 0) {
        dim.kind = ir::IndexDim::Kind::All;
      } else {
        dim.kind = ir::IndexDim::Kind::Scalar;
        dim.a = ir::var(idxSlots[d], ir::Ty::I32);
      }
      dims.push_back(std::move(dim));
    }
    return dims;
  };

  // slice = src[ ..., :, ... ]
  {
    auto e = std::make_unique<ir::Expr>();
    e->k = ir::Expr::K::Index;
    e->ty = ir::Ty::Mat;
    e->args.push_back(ir::var(srcSlot, ir::Ty::Mat));
    e->dims = makeDims();
    s.emit(ir::assign(sliceSlot, std::move(e)));
  }
  // slice = f(slice)
  {
    std::vector<ir::ExprPtr> args;
    args.push_back(ir::var(sliceSlot, ir::Ty::Mat));
    s.emit(ir::callAssign({sliceSlot}, fname, std::move(args)));
  }
  // res[ same selectors ] = slice
  {
    auto st = std::make_unique<ir::Stmt>();
    st->k = ir::Stmt::K::IndexStore;
    st->slot = res;
    st->dims = makeDims();
    st->exprs.push_back(ir::var(sliceSlot, ir::Ty::Mat));
    s.emit(std::move(st));
  }
  ir::StmtPtr body = s.popBlock();

  ir::StmtPtr loop = ir::forLoop(t, ir::constI(0),
                                 ir::var(total, ir::Ty::I32), std::move(body),
                                 "mm_t");
  if (s.autoParallelEnabled) {
    countOpt("matrix.autoParallel");
    loop->parallel = true;
    loop->parSrc = ir::Stmt::Par::Auto;
  }
  s.emit(std::move(loop));

  return ExprRes{src.type, ir::var(res, ir::Ty::Mat)};
}

// --- assignment hook: fusion + indexed stores --------------------------

bool matrixAssignHook(Sema& s, const ast::NodePtr& lhs,
                      const ast::NodePtr& rhs) {
  const ast::NodePtr& l = significant(lhs);
  const ast::NodePtr& r = significant(rhs);

  // means = with (...) ...  — with-loop/assignment fusion (§III-A4).
  // Only when the target is a whole variable: indexed targets fall
  // through to the region-store path below.
  if (r->is("prim_with") && !l->is("post_index")) {
    std::string name(Sema::idText(l));
    if (name.empty()) return false;
    VarInfo* v = s.lookupVar(name);
    if (!v || !(v->type.k == Type::K::Matrix ||
                v->type.isScalarNumeric()))
      return false;
    ExprRes e = lowerWith(s, r);
    if (e.bad()) return true; // error already reported
    e = s.coerce(std::move(e), v->type, rhs->range);
    if (e.bad()) return true;
    if (s.fusionEnabled || !e.type.isMatrix()) {
      // Fused: the with-loop's buffer simply becomes the variable.
      if (e.type.isMatrix()) countOpt("matrix.fusions");
      s.emit(ir::assign(v->slots[0], std::move(e.code)));
    } else {
      // Library semantics: materialize a temporary, then copy it into
      // the destination — the extraneous copy the paper's fusion avoids.
      std::vector<ir::ExprPtr> args;
      args.push_back(std::move(e.code));
      s.emit(ir::assign(v->slots[0], ir::call("cloneMatrix", std::move(args),
                                              ir::Ty::Mat)));
    }
    return true;
  }

  // m[ ... ] = value — MATLAB indexing on the left-hand side.
  if (l->is("post_index")) {
    std::string name(Sema::idText(l->child(0)));
    VarInfo* v = name.empty() ? nullptr : s.lookupVar(name);
    if (!v) {
      s.error(l->range,
              "the target of an indexed assignment must be a declared "
              "matrix variable");
      return true;
    }
    if (!(v->type.k == Type::K::Matrix || v->type.k == Type::K::RefPtr)) {
      s.error(l->range, "type " + v->type.str() + " cannot be indexed");
      return true;
    }
    uint32_t rank = v->type.k == Type::K::RefPtr ? 1 : v->type.rank;
    auto elems = indexListElems(l->child(2));
    if (elems.size() != rank) {
      s.error(l->range, "indexing a rank-" + std::to_string(rank) + " " +
                            v->type.str() + " with " +
                            std::to_string(elems.size()) + " selectors");
      return true;
    }
    LoweredSelectors sel = lowerSelectors(s, v->slots[0], v->type, elems);
    if (!sel.ok) return true;

    Type elemTy = cm::scalarOfElem(v->type.elem);
    ExprRes val = s.expr(rhs);
    if (val.bad()) return true;

    if (sel.allScalar) {
      val = s.coerce(std::move(val), elemTy, rhs->range);
      if (val.bad()) return true;
      ir::ExprPtr flat = flatOffset(v->slots[0], sel.dims);
      s.emit(ir::storeFlat(v->slots[0], std::move(flat),
                           std::move(val.code)));
      return true;
    }

    // Region store: scalar broadcast or matching matrix.
    if (val.type.isScalar()) {
      val = s.coerce(std::move(val), elemTy, rhs->range);
      if (val.bad()) return true;
    } else if (val.type.k == Type::K::Matrix) {
      if (val.type.elem != v->type.elem) {
        s.error(rhs->range, "cannot store " + val.type.str() + " into " +
                                v->type.str());
        return true;
      }
    } else {
      s.error(rhs->range, "cannot store " + val.type.str() +
                              " through matrix indexing");
      return true;
    }
    auto st = std::make_unique<ir::Stmt>();
    st->k = ir::Stmt::K::IndexStore;
    st->slot = v->slots[0];
    st->dims = std::move(sel.dims);
    st->exprs.push_back(std::move(val.code));
    s.emit(std::move(st));
    return true;
  }

  return false;
}

// --- builtins ------------------------------------------------------------

void installBuiltins(Sema& s) {
  s.defineBuiltin("readMatrix", [](Sema& s2, const ast::NodePtr& n,
                                   std::vector<ExprRes> args) -> ExprRes {
    if (args.size() != 1 || args[0].bad() ||
        args[0].type.k != Type::K::Str) {
      s2.error(n->range, "readMatrix takes one string path");
      return ExprRes::error();
    }
    std::vector<ir::ExprPtr> a;
    a.push_back(std::move(args[0].code));
    return ExprRes{Type::matrixAny(),
                   ir::call("readMatrix", std::move(a), ir::Ty::Mat)};
  });
  s.defineBuiltin("writeMatrix", [](Sema& s2, const ast::NodePtr& n,
                                    std::vector<ExprRes> args) -> ExprRes {
    if (args.size() != 2 || args[0].bad() || args[1].bad() ||
        args[0].type.k != Type::K::Str || !args[1].type.isMatrix()) {
      s2.error(n->range, "writeMatrix takes a string path and a matrix");
      return ExprRes::error();
    }
    std::vector<ir::ExprPtr> a;
    a.push_back(std::move(args[0].code));
    a.push_back(std::move(args[1].code));
    return ExprRes{Type::voidTy(),
                   ir::call("writeMatrix", std::move(a), ir::Ty::Void)};
  });
  s.defineBuiltin("dimSize", [](Sema& s2, const ast::NodePtr& n,
                                std::vector<ExprRes> args) -> ExprRes {
    if (args.size() != 2 || args[0].bad() || args[1].bad() ||
        !(args[0].type.isMatrix() || args[0].type.k == Type::K::RefPtr) ||
        args[1].type.k != Type::K::Int) {
      s2.error(n->range, "dimSize takes a matrix and an int dimension");
      return ExprRes::error();
    }
    return ExprRes{Type::intTy(),
                   ir::dimSize(std::move(args[0].code),
                               std::move(args[1].code))};
  });
  s.defineBuiltin("connComp", [](Sema& s2, const ast::NodePtr& n,
                                 std::vector<ExprRes> args) -> ExprRes {
    if (args.size() != 1 || args[0].bad() ||
        !(args[0].type == Type::matrix(rt::Elem::Bool, 2))) {
      s2.error(n->range, "connComp takes a Matrix bool <2>");
      return ExprRes::error();
    }
    std::vector<ir::ExprPtr> a;
    a.push_back(std::move(args[0].code));
    return ExprRes{Type::matrix(rt::Elem::I32, 2),
                   ir::call("connComp", std::move(a), ir::Ty::Mat)};
  });
  s.defineBuiltin("detectEddies", [](Sema& s2, const ast::NodePtr& n,
                                     std::vector<ExprRes> args) -> ExprRes {
    if (args.size() != 6) {
      s2.error(n->range, "detectEddies takes (Matrix float <2>, float lo, "
                         "float hi, float step, int minSize, int maxSize)");
      return ExprRes::error();
    }
    const Type want[] = {Type::matrix(rt::Elem::F32, 2), Type::floatTy(),
                         Type::floatTy(), Type::floatTy(), Type::intTy(),
                         Type::intTy()};
    std::vector<ir::ExprPtr> a;
    for (size_t i = 0; i < 6; ++i) {
      ExprRes c = s2.coerce(std::move(args[i]), want[i], n->range);
      if (c.bad()) return ExprRes::error();
      a.push_back(std::move(c.code));
    }
    return ExprRes{Type::matrix(rt::Elem::I32, 2),
                   ir::call("detectEddies", std::move(a), ir::Ty::Mat)};
  });
  s.defineBuiltin("synthSsh", [](Sema& s2, const ast::NodePtr& n,
                                 std::vector<ExprRes> args) -> ExprRes {
    if (args.size() != 5) {
      s2.error(n->range,
               "synthSsh takes (nlat, nlon, ntime, seed, numEddies)");
      return ExprRes::error();
    }
    std::vector<ir::ExprPtr> a;
    for (auto& arg : args) {
      ExprRes c = s2.coerce(std::move(arg), Type::intTy(), n->range);
      if (c.bad()) return ExprRes::error();
      a.push_back(std::move(c.code));
    }
    return ExprRes{Type::matrix(rt::Elem::F32, 3),
                   ir::call("synthSsh", std::move(a), ir::Ty::Mat)};
  });
  auto scalarMinMax = [](ir::ArithOp op, const char* nm) {
    return [op, nm](Sema& s2, const ast::NodePtr& n,
                    std::vector<ExprRes> args) -> ExprRes {
      if (args.size() != 2 || args[0].bad() || args[1].bad()) {
        if (args.size() != 2)
          s2.error(n->range, std::string(nm) + " takes two arguments");
        return ExprRes::error();
      }
      // Matrix operands go through the element-wise hook.
      if (args[0].type.isMatrix() || args[1].type.isMatrix()) {
        auto r = matrixBin(s2, op, args[0], args[1], n->range);
        if (r) return std::move(*r);
        return ExprRes::error();
      }
      if (!args[0].type.isScalarNumeric() || !args[1].type.isScalarNumeric()) {
        s2.error(n->range, std::string(nm) + " needs numeric operands");
        return ExprRes::error();
      }
      Type out = (args[0].type.k == Type::K::Float ||
                  args[1].type.k == Type::K::Float)
                     ? Type::floatTy()
                     : Type::intTy();
      ExprRes a = s2.coerce(std::move(args[0]), out, n->range);
      ExprRes b = s2.coerce(std::move(args[1]), out, n->range);
      if (a.bad() || b.bad()) return ExprRes::error();
      return ExprRes{out, ir::arith(op, std::move(a.code), std::move(b.code),
                                    Sema::lowerTy(out))};
    };
  };
  s.defineBuiltin("min", scalarMinMax(ir::ArithOp::Min, "min"));
  s.defineBuiltin("max", scalarMinMax(ir::ArithOp::Max, "max"));

  s.defineBuiltin("printShape", [](Sema& s2, const ast::NodePtr& n,
                                   std::vector<ExprRes> args) -> ExprRes {
    if (args.size() != 1 || args[0].bad() || !args[0].type.isMatrix()) {
      s2.error(n->range, "printShape takes a matrix");
      return ExprRes::error();
    }
    std::vector<ir::ExprPtr> a;
    a.push_back(std::move(args[0].code));
    return ExprRes{Type::voidTy(),
                   ir::call("printShape", std::move(a), ir::Ty::Void)};
  });
}

} // namespace

void installMatrixSemantics(Sema& s) {
  // Publish the WithTail hook table for transformation extensions.
  if (!s.extensionData.count(kWithTailHooksKey))
    s.extensionData[kWithTailHooksKey] = WithTailHookMap{};

  // ---- types ----------------------------------------------------------
  s.defineType("ty_matrix", [](Sema& s2, const ast::NodePtr& n) {
    // Matrix ElemTy < INTLIT >
    rt::Elem e = elemOfNode(n->child(1));
    long rank = std::stol(std::string(n->child(3)->text()));
    if (rank < 1 || rank > static_cast<long>(rt::Matrix::kMaxRank)) {
      s2.error(n->range, "matrix rank must be between 1 and " +
                             std::to_string(rt::Matrix::kMaxRank));
      return Type::error();
    }
    return Type::matrix(e, static_cast<uint32_t>(rank));
  }, kExt);

  // ---- operators --------------------------------------------------------
  s.addBinHook(matrixBin);
  s.addCmpHook(matrixCmp);
  s.defineExpr("mul_ewmul", [](Sema& s2, const ast::NodePtr& n) {
    ExprRes a = s2.expr(n->child(0));
    ExprRes b = s2.expr(n->child(2));
    if (a.bad() || b.bad()) return ExprRes::error();
    auto r = matrixBin(s2, ir::ArithOp::EwMul, a, b, n->range);
    if (r) return std::move(*r);
    s2.error(n->range, "'.*' needs at least one matrix operand");
    return ExprRes::error();
  }, kExt);

  // ---- indexing ---------------------------------------------------------
  s.defineExpr("post_index", lowerIndexExpr, kExt);
  s.addAssignHook(matrixAssignHook);

  // ---- with-loop / matrixMap / init / end ------------------------------
  s.defineExpr("prim_with", lowerWith, kExt);
  s.defineExpr("prim_matrixmap", lowerMatrixMap, kExt);
  s.defineExpr("prim_init", [](Sema& s2, const ast::NodePtr& n) {
    Type t = s2.typeExpr(n->child(2));
    if (t.isError()) return ExprRes::error();
    if (t.k != Type::K::Matrix) {
      s2.error(n->range, "init needs a Matrix type, found " + t.str());
      return ExprRes::error();
    }
    auto dims = exprListElems(n->child(4));
    if (dims.size() != t.rank) {
      s2.error(n->range, "init: " + t.str() + " needs " +
                             std::to_string(t.rank) + " dimension sizes, "
                             "found " + std::to_string(dims.size()));
      return ExprRes::error();
    }
    std::vector<ir::ExprPtr> args;
    args.push_back(ir::constI(static_cast<int32_t>(t.elem)));
    for (auto& d : dims) {
      ExprRes e = s2.coerce(s2.expr(d), Type::intTy(), d->range);
      if (e.bad()) return ExprRes::error();
      args.push_back(std::move(e.code));
    }
    return ExprRes{t, ir::call("initMatrix", std::move(args), ir::Ty::Mat)};
  }, kExt);
  s.defineExpr("prim_end", [](Sema& s2, const ast::NodePtr& n) {
    const Sema::IndexCtx* ctx = s2.currentIndexCtx();
    if (!ctx) {
      s2.error(n->range, "'end' is only meaningful inside a matrix index");
      return ExprRes::error();
    }
    return ExprRes{
        Type::intTy(),
        ir::arith(ir::ArithOp::Sub,
                  ir::dimSize(ir::var(ctx->matSlot, ir::Ty::Mat),
                              ir::constI(static_cast<int32_t>(ctx->dim))),
                  ir::constI(1), ir::Ty::I32)};
  }, kExt);

  installBuiltins(s);
}

// Grammar is in grammar.cpp.
ext::GrammarFragment matrixGrammarFragment();

namespace {
class MatrixExtension final : public ext::LanguageExtension {
public:
  std::string name() const override { return "matrix"; }
  ext::GrammarFragment grammarFragment() const override {
    return matrixGrammarFragment();
  }
  void installSemantics(cm::Sema& sema) const override {
    installMatrixSemantics(sema);
  }
};
} // namespace

ext::ExtensionPtr matrixExtension() {
  return std::make_unique<MatrixExtension>();
}

} // namespace mmx::ext_matrix
