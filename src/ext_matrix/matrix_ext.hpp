// The matrix language extension (paper §III): the Matrix type, overloaded
// element-wise arithmetic with scalar broadcast ('*' is linear-algebra
// multiply, '.*' element-wise), MATLAB-style indexing on both sides of
// assignment, SAC-style with-loops (genarray / fold), matrixMap, and the
// matrix builtins (init, dimSize, readMatrix, writeMatrix, ...). Lowering
// expands with-loops into annotated for-loop nests (Fig. 3), applies the
// §III-A4 fusion/slice-elimination optimizations, and auto-parallelizes
// the outermost genarray loop (§III-C).
#pragma once

#include <functional>
#include <map>

#include "ast/node.hpp"
#include "ext/extension.hpp"
#include "ir/ir.hpp"

namespace mmx::cm {
class Sema;
}

namespace mmx::ext_matrix {

/// Creates the extension.
ext::ExtensionPtr matrixExtension();

/// WithTail hook: receives the freshly generated loop nest of a with-loop
/// whose tail matched the hook's production, applies transformations, and
/// returns the replacement nest. Published under Sema::extensionData key
/// "matrix.withTailHooks" as a WithTailHookMap so transformation
/// extensions can register new specifications (paper §V).
using WithTailHook = std::function<ir::StmtPtr(
    cm::Sema&, const ast::NodePtr& tailNode, ir::StmtPtr loopNest)>;
using WithTailHookMap = std::map<std::string, WithTailHook>;

inline constexpr const char* kWithTailHooksKey = "matrix.withTailHooks";

} // namespace mmx::ext_matrix
