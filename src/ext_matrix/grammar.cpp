// Concrete syntax of the matrix extension. Every bridge production into a
// host nonterminal starts with a marking terminal ('Matrix', 'with',
// 'matrixMap', 'init', 'end') or is the operator form MulE -> MulE '.*'
// Unary whose new terminal immediately follows the left-recursive
// nonterminal — both shapes pass the modular determinism analysis.
#include "ext_matrix/matrix_ext.hpp"

namespace mmx::ext_matrix {

ext::GrammarFragment matrixGrammarFragment() {
  ext::GrammarFragment f;
  f.name = "matrix";

  auto kw = [&](const char* t) {
    f.terminals.push_back({std::string("'") + t + "'", t, true, 10, false});
  };
  kw("Matrix");
  kw("with");
  kw("genarray");
  kw("fold");
  kw("matrixMap");
  kw("init");
  kw("end");
  kw("min");
  kw("max");
  f.terminals.push_back({"'.*'", ".*", true, 6, false});

  for (const char* n : {"MElemTy", "MGenerator", "MRelB", "MWithOp",
                        "MFoldOp", "MIdList", "WithTail"})
    f.nonterminals.push_back(n);

  auto prod = [&](const char* name, const char* lhs,
                  std::vector<std::string> rhs) {
    f.productions.push_back({lhs, std::move(rhs), name});
  };

  // Matrix type: Matrix float <3>
  prod("ty_matrix", "TypeE", {"'Matrix'", "MElemTy", "'<'", "INTLIT", "'>'"});
  prod("melem_int", "MElemTy", {"'int'"});
  prod("melem_float", "MElemTy", {"'float'"});
  prod("melem_bool", "MElemTy", {"'bool'"});

  // Element-wise multiplication operator.
  prod("mul_ewmul", "MulE", {"MulE", "'.*'", "Unary"});

  // With-loop (Fig. 2).
  prod("prim_with", "Primary",
       {"'with'", "'('", "MGenerator", "')'", "MWithOp"});
  prod("mgen", "MGenerator",
       {"'['", "ExprList", "']'", "MRelB", "'['", "MIdList", "']'", "MRelB",
        "'['", "ExprList", "']'"});
  prod("mrelb_le", "MRelB", {"'<='"});
  prod("mrelb_lt", "MRelB", {"'<'"});
  prod("midlist_one", "MIdList", {"ID"});
  prod("midlist_cons", "MIdList", {"MIdList", "','", "ID"});
  prod("mwithop_genarray", "MWithOp",
       {"'genarray'", "'('", "'['", "ExprList", "']'", "','", "Expr", "')'",
        "WithTail"});
  prod("mwithop_fold", "MWithOp",
       {"'fold'", "'('", "MFoldOp", "','", "Expr", "','", "Expr", "')'",
        "WithTail"});
  prod("mfold_add", "MFoldOp", {"'+'"});
  prod("mfold_mul", "MFoldOp", {"'*'"});
  prod("mfold_min", "MFoldOp", {"'min'"});
  prod("mfold_max", "MFoldOp", {"'max'"});
  prod("withtail_none", "WithTail", {});

  // matrixMap(f, m, [dims])
  prod("prim_matrixmap", "Primary",
       {"'matrixMap'", "'('", "ID", "','", "Expr", "','", "'['", "ExprList",
        "']'", "')'"});

  // init(Matrix int <2>, 721, 1440)
  prod("prim_init", "Primary",
       {"'init'", "'('", "TypeE", "','", "ExprList", "')'"});

  // `end` inside index selectors (context-aware: a sema check rejects it
  // outside an index).
  prod("prim_end", "Primary", {"'end'"});

  return f;
}

} // namespace mmx::ext_matrix
