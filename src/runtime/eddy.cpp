#include "runtime/eddy.hpp"

#include <stdexcept>

namespace mmx::rt {

Trough getTrough(const float* ts, int n, int i) {
  Trough t;
  t.begin = i;
  // Walk downwards.
  while (i + 1 < n && ts[i] >= ts[i + 1]) i = i + 1;
  // Walk upwards.
  while (i + 1 < n && ts[i] < ts[i + 1]) i = i + 1;
  t.end = i;
  t.values.assign(ts + t.begin, ts + t.end + 1); // inclusive range
  return t;
}

float computeArea(const std::vector<float>& areaOfInterest) {
  if (areaOfInterest.empty()) return 0.f;
  float y1 = areaOfInterest.front();
  float y2 = areaOfInterest.back();
  int x1 = 0;
  int x2 = static_cast<int>(areaOfInterest.size()) - 1;
  if (x1 == x2) return 0.f;
  float m = (y1 - y2) / static_cast<float>(x1 - x2);
  float b = y1 - m * static_cast<float>(x1);
  float area = 0.f;
  for (int x = 0; x <= x2; ++x)
    area += (m * static_cast<float>(x) + b) - areaOfInterest[x];
  return area;
}

void scoreTS(const float* ts, int n, float* out) {
  for (int k = 0; k < n; ++k) out[k] = 0.f;
  if (n < 2) return;
  // Trim until the first local maximum.
  int i = 0;
  while (i + 1 < n && ts[i] < ts[i + 1]) i = i + 1;
  while (i < n - 1) {
    Trough t = getTrough(ts, n, i);
    if (t.end <= t.begin) break; // flat tail: no further troughs
    float area = computeArea(t.values);
    for (int k = t.begin; k <= t.end; ++k) out[k] = area;
    i = t.end;
  }
}

Matrix scoreAllSeries(Executor& exec, const Matrix& ssh) {
  if (ssh.rank() != 3 || ssh.elem() != Elem::F32)
    throw std::invalid_argument("scoreAllSeries: rank-3 f32 required");
  int64_t nlat = ssh.dim(0), nlon = ssh.dim(1), nt = ssh.dim(2);
  Matrix out = Matrix::zeros(Elem::F32, ssh.dims());
  const float* in = ssh.f32();
  float* o = out.f32();
  exec.run(0, nlat * nlon, [&](int64_t lo, int64_t hi, unsigned) {
    for (int64_t ij = lo; ij < hi; ++ij)
      scoreTS(in + ij * nt, static_cast<int>(nt), o + ij * nt);
  });
  return out;
}

} // namespace mmx::rt
