// Tiled, packed, SIMD matmul engine (paper §V: parallel + SSE-vectorized
// matrix kernels). The naive i-k-j reference kernel is kept alongside the
// blocked engine so benches and tests can measure and verify the tiling:
//
//   - A is packed into MR-row strips, B into NR-column strips, per
//     (KC-deep) panel, so the micro-kernel reads both operands stride-1.
//   - The micro-kernel keeps an MR x NR accumulator tile in SSE registers
//     (Vec4f/Vec4i), accumulating over k with mul-then-add rounding.
//   - The macro loop walks the 2D grid of (MC row-panel) x (NC col-panel)
//     tiles through the Executor, so tall-skinny and short-wide shapes
//     parallelize as well as square ones.
//
// Accumulation order per output element is k-ascending within each KC
// panel (bit-identical to the naive kernel when k <= KC); panels are
// combined through a per-panel register accumulator, which reassociates
// f32 sums across KC boundaries (see DESIGN.md "Runtime kernels").
#pragma once

#include "runtime/matrix.hpp"
#include "runtime/pool.hpp"

namespace mmx::rt {

/// Blocking parameters, exposed so tests can target tile edges and the
/// KC accumulation boundary directly.
struct GemmBlocking {
  static constexpr int64_t MR = 4;   ///< micro-tile rows (A strip width)
  static constexpr int64_t NR = 8;   ///< micro-tile cols (two Vec4 lanes)
  static constexpr int64_t MC = 64;  ///< rows per packed A panel (L2)
  static constexpr int64_t KC = 256; ///< panel depth (keeps strips in L1)
  static constexpr int64_t NC = 256; ///< cols per packed B panel
};

namespace detail {

/// Cached cpuid probe; the f32 engine upgrades to the AVX twin-strip
/// micro-kernel when the host allows it.
bool haveAvx();

/// AVX micro-kernel covering two adjacent packed MR-row strips (8 rows)
/// by one full NR-column strip. vmulps/vaddps round exactly like the SSE
/// and scalar mul-then-add, so using it changes no result bit. Defined in
/// gemm_avx.cpp, the one TU built with -mavx; only call when haveAvx().
void microKernelF32Avx(const float* Ap0, const float* Ap1, const float* Bp,
                       int64_t kcLen, float* C, int64_t ldc);

} // namespace detail

/// Reference kernel: the textbook row-parallel i-k-j loop the engine is
/// benchmarked and bit-verified against.
Matrix matmulNaive(Executor& exec, const Matrix& a, const Matrix& b);

/// Cache-blocked, packed, register-tiled product, parallelized over the
/// 2D tile grid. Requires the same shapes as matmulNaive (rank-2, inner
/// dimensions agreeing, f32 or i32).
Matrix matmulTiled(Executor& exec, const Matrix& a, const Matrix& b);

} // namespace mmx::rt
