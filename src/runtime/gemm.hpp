// Tiled, packed, SIMD matmul engine (paper §V: parallel + SSE-vectorized
// matrix kernels). The naive i-k-j reference kernel is kept alongside the
// blocked engine so benches and tests can measure and verify the tiling:
//
//   - A is packed into MR-row strips, B into NR-column strips, per
//     (KC-deep) panel, so the micro-kernel reads both operands stride-1.
//   - The micro-kernel keeps an MR x NR accumulator tile in SSE registers
//     (Vec4f/Vec4i), accumulating over k with mul-then-add rounding.
//   - The macro loop walks the 2D grid of (MC row-panel) x (NC col-panel)
//     tiles through the Executor, so tall-skinny and short-wide shapes
//     parallelize as well as square ones.
//
// Accumulation order per output element is k-ascending within each KC
// panel (bit-identical to the naive kernel when k <= KC); panels are
// combined through a per-panel register accumulator, which reassociates
// f32 sums across KC boundaries (see DESIGN.md "Runtime kernels").
//
// Since ISSUE 7 the engine is a library of raw-buffer GEMM entry points
// consumed by the kernel backends in backend.cpp: the f32 panel kernel is
// parametrized over GemmKernel (SSE micro-tiles, the AVX twin-strip
// pairing, or the AVX2/FMA twin-strip), and the naive reference is
// callable on raw pointers. Policy (which kernel runs) lives in the
// backend registry; this file only provides mechanisms.
#pragma once

#include "runtime/matrix.hpp"
#include "runtime/pool.hpp"

namespace mmx::rt {

/// Blocking parameters, exposed so tests can target tile edges and the
/// KC accumulation boundary directly.
struct GemmBlocking {
  static constexpr int64_t MR = 4;   ///< micro-tile rows (A strip width)
  static constexpr int64_t NR = 8;   ///< micro-tile cols (two Vec4 lanes)
  static constexpr int64_t MC = 64;  ///< rows per packed A panel (L2)
  static constexpr int64_t KC = 256; ///< panel depth (keeps strips in L1)
  static constexpr int64_t NC = 256; ///< cols per packed B panel
};

/// Inner-loop flavour of the tiled f32 engine. Sse and Avx round
/// identically (mul then add); Avx2Fma fuses the multiply-add (single
/// rounding) and so only bit-matches the others on exactly-representable
/// data.
enum class GemmKernel : uint8_t { Sse, Avx, Avx2Fma };

/// Below this many madds the packing setup and the two pool barriers per
/// panel outweigh the multiply; backends run smaller products through the
/// naive kernel (which parallelizes via its own row grain).
constexpr int64_t kMatmulTiledCutoff = 32 * 32 * 32;

namespace detail {

/// Cached cpuid probes for the optional micro-kernels.
bool haveAvx();
bool haveAvx2Fma();

/// AVX micro-kernel covering two adjacent packed MR-row strips (8 rows)
/// by one full NR-column strip. vmulps/vaddps round exactly like the SSE
/// and scalar mul-then-add, so using it changes no result bit. Defined in
/// gemm_avx.cpp, the one TU built with -mavx; only call when haveAvx().
void microKernelF32Avx(const float* Ap0, const float* Ap1, const float* Bp,
                       int64_t kcLen, float* C, int64_t ldc);

/// AVX2/FMA twin of the above: same 8x8 twin-strip shape, vfmadd231ps
/// inner loop (one rounding per madd). Defined in gemm_avx2.cpp, the one
/// TU built with -mavx2 -mfma; only call when haveAvx2Fma().
void microKernelF32Avx2Fma(const float* Ap0, const float* Ap1,
                           const float* Bp, int64_t kcLen, float* C,
                           int64_t ldc);

/// FMA edge kernel: one packed MR strip by one NR strip with mr/nr
/// masking, fmaf accumulation in a padded local tile (same per-element
/// rounding and k order as the twin-strip kernel). gemm_avx2.cpp.
void microKernelF32FmaEdge(const float* Ap, const float* Bp, int64_t kcLen,
                           float* C, int64_t ldc, int64_t mr, int64_t nr);

/// Naive i-k-j row ranges with fused multiply-add accumulation — the
/// small-product path of the avx2fma backend, matching the emitted-C FMA
/// core's rounding. gemm_avx2.cpp; only call when haveAvx2Fma().
void gemmNaiveFmaRowsF32(const float* A, const float* B, float* C, int64_t k,
                         int64_t n, int64_t lo, int64_t hi);
void gemmNaiveFmaRowsF64(const double* A, const double* B, double* C,
                         int64_t k, int64_t n, int64_t lo, int64_t hi);

/// Row grain of the naive kernels (kNaiveGrainWork madds per dispatch) —
/// shared so the avx2fma backend's naive-FMA path parallelizes exactly
/// like gemmNaiveF32.
int64_t naiveGrainRows(int64_t k, int64_t n);

} // namespace detail

/// Shared argument contract of every matmul entry point: rank-2, one
/// element kind (f32 or i32), agreeing inner dimensions. Throws
/// std::invalid_argument.
void checkMatmulArgs(const Matrix& a, const Matrix& b);

// ---- raw-buffer GEMM entry points (backend building blocks) ------------
// Row-major, C is m*n and caller-zeroed (accumulated into), A is m*k,
// B is k*n.

/// Textbook row-parallel i-k-j loops (mul then add).
void gemmNaiveF32(Executor& exec, const float* A, const float* B, float* C,
                  int64_t m, int64_t k, int64_t n);
void gemmNaiveI32(Executor& exec, const int32_t* A, const int32_t* B,
                  int32_t* C, int64_t m, int64_t k, int64_t n);
void gemmNaiveF64(Executor& exec, const double* A, const double* B, double* C,
                  int64_t m, int64_t k, int64_t n);

/// Cache-blocked, packed, register-tiled product, parallelized over the
/// 2D tile grid, with the requested f32 inner kernel (the caller has
/// checked the kernel's cpuid probe).
void gemmTiledF32(Executor& exec, const float* A, const float* B, float* C,
                  int64_t m, int64_t k, int64_t n, GemmKernel kernel);
void gemmTiledI32(Executor& exec, const int32_t* A, const int32_t* B,
                  int32_t* C, int64_t m, int64_t k, int64_t n);

// ---- Matrix-level reference entry points (tests and benches) -----------

/// Reference kernel: the textbook row-parallel i-k-j loop the engine is
/// benchmarked and bit-verified against.
Matrix matmulNaive(Executor& exec, const Matrix& a, const Matrix& b);

/// Cache-blocked, packed, register-tiled product, parallelized over the
/// 2D tile grid. Requires the same shapes as matmulNaive (rank-2, inner
/// dimensions agreeing, f32 or i32). Uses the historical kernel choice
/// (AVX twin-strip when the host has it, SSE otherwise) — bit-identical
/// either way.
Matrix matmulTiled(Executor& exec, const Matrix& a, const Matrix& b);

} // namespace mmx::rt
