// Binary matrix file I/O: the runtime behind the extension's readMatrix /
// writeMatrix built-ins. Format: magic "MMX1", u8 elem kind, u8 rank,
// i64 dims[rank], then raw row-major element data (little-endian host).
#pragma once

#include <string>

#include "runtime/matrix.hpp"

namespace mmx::rt {

/// Writes `m` to `path`. Throws std::runtime_error on I/O failure.
void writeMatrixFile(const std::string& path, const Matrix& m);

/// Reads a matrix written by writeMatrixFile. Throws std::runtime_error on
/// I/O failure or malformed content.
Matrix readMatrixFile(const std::string& path);

} // namespace mmx::rt
