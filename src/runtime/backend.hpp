// Multi-backend kernel registry (ISSUE 7, after ROADMAP's "Alpaka-style"
// item and the GNU-epsilon layered-implementations idea): the runtime's
// compute kernels sit behind a KernelBackend interface, and a process-wide
// registry picks the implementation at runtime — `scalar` (portable naive
// oracle), `sse` (the BLIS-style tiled engine), `avx` (tiled engine with
// the twin-strip AVX micro-kernel), `avx2fma` (8-wide FMA micro-tile).
//
// Selection policy, in precedence order:
//   1. an explicit selectBackend("<name>") — the driver's --backend flag;
//   2. the MMX_BACKEND environment variable (consulted under "auto");
//   3. auto: the highest-priority backend whose capability probe passes.
//
// Rounding contract: all backends share one element-wise and reduction
// accumulation order (the scalar backend emulates the SSE lane striping),
// and `scalar`/`sse`/`avx` GEMM are bit-identical per element whenever
// k <= KC. `avx2fma` fuses multiply-add (single rounding), so its f32/f64
// GEMM only bit-matches the others on exactly-representable data — the
// oracle suites pin that contract.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/kernels.hpp"
#include "runtime/matrix.hpp"
#include "runtime/pool.hpp"

namespace mmx::rt {

/// One kernel implementation. Instances are immortal (registered once,
/// never destroyed); the base class provides the shared SSE element-wise
/// and reduction strips so a backend only overrides what it changes.
class KernelBackend {
public:
  KernelBackend(std::string name, int priority);
  virtual ~KernelBackend() = default;

  KernelBackend(const KernelBackend&) = delete;
  KernelBackend& operator=(const KernelBackend&) = delete;

  std::string_view name() const { return name_; }
  /// Auto-selection rank: higher wins among available() backends.
  int priority() const { return priority_; }
  /// Capability probe (cpuid); an unavailable backend is never selected
  /// implicitly and selecting it explicitly is an error.
  virtual bool available() const = 0;

  // ---- GEMM over raw row-major buffers ---------------------------------
  // C has m*n elements, is caller-zeroed, and is accumulated into; A is
  // m*k, B is k*n. Small products may take a backend-internal naive path
  // (kMatmulTiledCutoff in gemm.hpp).
  virtual void gemmF32(Executor& exec, const float* A, const float* B,
                       float* C, int64_t m, int64_t k, int64_t n) const = 0;
  virtual void gemmI32(Executor& exec, const int32_t* A, const int32_t* B,
                       int32_t* C, int64_t m, int64_t k, int64_t n) const = 0;
  /// f64 is interface-complete for embedders (no f64 Matrix element kind
  /// yet); the base implementation is the naive mul-then-add loop.
  virtual void gemmF64(Executor& exec, const double* A, const double* B,
                       double* C, int64_t m, int64_t k, int64_t n) const;

  // ---- element-wise strips ---------------------------------------------
  // out[i] = a[i] (op) (b ? b[i] : s) for i in [lo, hi). Pure per-element
  // work: every backend must produce identical bits here.
  virtual void ewStripF32(BinOp op, const float* a, const float* b, float s,
                          float* out, int64_t lo, int64_t hi) const;
  virtual void ewStripI32(BinOp op, const int32_t* a, const int32_t* b,
                          int32_t s, int32_t* out, int64_t lo, int64_t hi) const;

  // ---- reduction strips ------------------------------------------------
  // Fold [lo, hi) into one partial starting from the operator's identity.
  // The accumulation order is part of the backend ABI: four lane-striped
  // partial sums over aligned 4-blocks combined pairwise, then the scalar
  // tail (the SSE hadd order) — so every backend reduces bit-identically.
  virtual float reduceStripF32(BinOp op, const float* d, int64_t lo,
                               int64_t hi) const;
  virtual int32_t reduceStripI32(BinOp op, const int32_t* d, int64_t lo,
                                 int64_t hi) const;

  /// "kernel.matmul.<name>": per-backend attribution timer fed by
  /// rt::matmul next to the backend-agnostic "kernel.matmul" site.
  const char* matmulTimerName() const { return matmulTimer_.c_str(); }
  /// "backend.selected.<name>": presence-only counter bumped on selection
  /// and on every matmul dispatch.
  const char* selectedCounterName() const { return selectedCounter_.c_str(); }
  /// "kernel.matmul.<name>.pmu." — rt::matmul appends cycles /
  /// instructions / cacheMisses / branchMisses under --perf-counters
  /// (ISSUE 10 pillar 2).
  const std::string& pmuCounterPrefix() const { return pmuPrefix_; }

private:
  std::string name_;
  int priority_;
  std::string matmulTimer_;
  std::string selectedCounter_;
  std::string pmuPrefix_;
};

// ---- registry -----------------------------------------------------------

/// Registers a backend (must outlive the process). The builtin four are
/// registered automatically; tests register extras to probe the policy.
void registerBackend(const KernelBackend* be);

/// Every registered backend, priority-descending (auto-selection order).
std::vector<const KernelBackend*> backends();

/// Registered names, priority-ascending ("scalar, sse, avx, avx2fma") —
/// the order --help and error messages list them in.
std::vector<std::string> backendNames();

/// nullptr when no backend has that name.
const KernelBackend* findBackend(std::string_view name);

/// Pins the process-wide backend. "auto" re-arms lazy resolution (the
/// MMX_BACKEND environment variable is consulted again at the next
/// activeBackend() call). Throws std::invalid_argument for an unknown
/// name or one whose capability probe fails.
void selectBackend(std::string_view nameOrAuto);

/// The backend every kernel entry point dispatches through. Resolves
/// lazily: explicit selection > $MMX_BACKEND > highest-priority available.
/// Throws std::runtime_error when $MMX_BACKEND names an unknown or
/// unavailable backend.
const KernelBackend& activeBackend();

/// Pre-flight check for drivers: resolves `requested` (a name or "auto")
/// exactly like selectBackend + activeBackend would, returning an empty
/// string on success or the would-be diagnostic message. Never changes
/// the selection.
std::string backendSelectionError(std::string_view requested);

/// RAII selection pin for tests and benches; restores the previous
/// request (including "auto") on destruction.
class BackendOverride {
public:
  explicit BackendOverride(std::string_view name);
  ~BackendOverride();
  BackendOverride(const BackendOverride&) = delete;
  BackendOverride& operator=(const BackendOverride&) = delete;

private:
  std::string prev_;
};

// ---- runtime configuration ---------------------------------------------

/// One configuration surface for "how does this process run kernels":
/// executor kind + thread count + kernel backend. Replaces the scattered
/// rt::makeExecutor / CompilerInvocation::makeExecutor call sites.
struct RuntimeConfig {
  ExecutorKind executor = ExecutorKind::Serial;
  unsigned threads = 1;
  std::string backend = "auto"; // registry name or "auto"
  std::string alloc = "auto";   // matrix allocator name or "auto" (memsys)

  /// Applies the backend and allocator selections process-wide (throws
  /// like selectBackend / selectAllocator) and builds the executor.
  std::unique_ptr<Executor> make() const;
};

// ---- templated element-wise entry point ---------------------------------

/// The one element-wise binary entry (ISSUE 7): Rhs is a same-shape
/// Matrix, a float broadcast, or an int32_t broadcast. Routes strips
/// through activeBackend(); `simd = false` forces the plain scalar loops
/// (the benches' ablation knob). The historical ewBinary /
/// ewBinaryScalarF / ewBinaryScalarI wrappers are deprecated shims over
/// this.
template <class Rhs>
void ew(Executor& exec, BinOp op, const Matrix& a, const Rhs& b, Matrix& out,
        bool simd = true);

extern template void ew<Matrix>(Executor&, BinOp, const Matrix&,
                                const Matrix&, Matrix&, bool);
extern template void ew<float>(Executor&, BinOp, const Matrix&, const float&,
                               Matrix&, bool);
extern template void ew<int32_t>(Executor&, BinOp, const Matrix&,
                                 const int32_t&, Matrix&, bool);

} // namespace mmx::rt
