#include "runtime/conncomp.hpp"

#include <numeric>
#include <stdexcept>
#include <vector>

namespace mmx::rt {

namespace {
/// Union-find with path halving.
struct DisjointSet {
  std::vector<int32_t> parent;

  explicit DisjointSet(size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int32_t find(int32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void unite(int32_t a, int32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[b < a ? a : b] = b < a ? b : a;
  }
};
} // namespace

Matrix connectedComponents(const Matrix& binary, int32_t* outComponents) {
  if (binary.rank() != 2 || binary.elem() != Elem::Bool)
    throw std::invalid_argument("connectedComponents: rank-2 bool required");
  int64_t h = binary.dim(0), w = binary.dim(1);
  const uint8_t* in = binary.boolean();
  Matrix out = Matrix::zeros(Elem::I32, {h, w});
  int32_t* lab = out.i32();

  // Pass 1: provisional labels + equivalences.
  DisjointSet ds(1); // index 0 = background, never united
  int32_t nextLabel = 1;
  for (int64_t i = 0; i < h; ++i) {
    for (int64_t j = 0; j < w; ++j) {
      if (!in[i * w + j]) continue;
      int32_t up = i > 0 ? lab[(i - 1) * w + j] : 0;
      int32_t left = j > 0 ? lab[i * w + j - 1] : 0;
      if (!up && !left) {
        lab[i * w + j] = nextLabel++;
        ds.parent.push_back(lab[i * w + j]);
      } else if (up && left) {
        lab[i * w + j] = up < left ? up : left;
        ds.unite(up, left);
      } else {
        lab[i * w + j] = up ? up : left;
      }
    }
  }

  // Pass 2: resolve equivalences to dense labels.
  std::vector<int32_t> dense(static_cast<size_t>(nextLabel), 0);
  int32_t count = 0;
  for (int64_t k = 0; k < h * w; ++k) {
    if (!lab[k]) continue;
    int32_t root = ds.find(lab[k]);
    if (!dense[root]) dense[root] = ++count;
    lab[k] = dense[root];
  }
  if (outComponents) *outComponents = count;
  return out;
}

Matrix detectEddies2D(const Matrix& ssh2d, float lo, float hi, float step,
                      int64_t minSize, int64_t maxSize) {
  if (ssh2d.rank() != 2 || ssh2d.elem() != Elem::F32)
    throw std::invalid_argument("detectEddies2D: rank-2 f32 required");
  if (step <= 0) throw std::invalid_argument("detectEddies2D: step > 0");
  int64_t h = ssh2d.dim(0), w = ssh2d.dim(1);
  const float* s = ssh2d.f32();

  Matrix result = Matrix::zeros(Elem::I32, {h, w});
  int32_t* res = result.i32();
  Matrix bin = Matrix::zeros(Elem::Bool, {h, w});
  uint8_t* b = bin.boolean();
  int32_t labelBase = 0;

  for (float th = lo; th < hi; th += step) {
    for (int64_t k = 0; k < h * w; ++k) b[k] = s[k] < th;
    int32_t nComp = 0;
    Matrix labels = connectedComponents(bin, &nComp);
    if (!nComp) continue;
    const int32_t* lb = labels.i32();
    // Component sizes at this threshold.
    std::vector<int64_t> size(static_cast<size_t>(nComp) + 1, 0);
    for (int64_t k = 0; k < h * w; ++k) ++size[lb[k]];
    for (int64_t k = 0; k < h * w; ++k) {
      int32_t l = lb[k];
      if (l && !res[k] && size[l] >= minSize && size[l] <= maxSize)
        res[k] = labelBase + l;
    }
    labelBase += nComp;
  }
  return result;
}

} // namespace mmx::rt
