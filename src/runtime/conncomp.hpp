// Connected-component labeling of boolean grids (the connComp function of
// Fig. 4 and the thresholding eddy detector of §IV). Two-pass union-find,
// 4-connectivity; labels are dense positive integers, background is 0.
#pragma once

#include "runtime/matrix.hpp"

namespace mmx::rt {

/// Labels connected components of a rank-2 bool matrix. Returns a rank-2
/// i32 matrix of the same shape; `outComponents` (optional) receives the
/// number of components found.
Matrix connectedComponents(const Matrix& binary, int32_t* outComponents = nullptr);

/// The iterative-thresholding eddy detector sketched in Fig. 4: for each
/// threshold in [lo, hi) step `step`, binarize `ssh2d < threshold` and
/// label; a cell's final label is the one from the first threshold at
/// which it belongs to a component whose size is within [minSize, maxSize]
/// (the "criteria typical of ocean eddies").
Matrix detectEddies2D(const Matrix& ssh2d, float lo, float hi, float step,
                      int64_t minSize, int64_t maxSize);

} // namespace mmx::rt
