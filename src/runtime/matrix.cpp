#include "runtime/matrix.hpp"

#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "runtime/pool.hpp"

namespace mmx::rt {

size_t elemSize(Elem e) {
  switch (e) {
    case Elem::I32: return 4;
    case Elem::F32: return 4;
    case Elem::Bool: return 1;
  }
  return 0;
}

const char* elemName(Elem e) {
  switch (e) {
    case Elem::I32: return "int";
    case Elem::F32: return "float";
    case Elem::Bool: return "bool";
  }
  return "?";
}

static int64_t countOf(const std::vector<int64_t>& dims) {
  int64_t n = 1;
  for (int64_t d : dims) {
    if (d < 0) throw std::invalid_argument("negative matrix dimension");
    n *= d;
  }
  return n;
}

Matrix Matrix::uninit(Elem e, const std::vector<int64_t>& dims) {
  if (dims.empty() || dims.size() > kMaxRank)
    throw std::invalid_argument("matrix rank must be 1.." +
                                std::to_string(kMaxRank));
  int64_t n = countOf(dims);
  size_t bytes = sizeof(Header) + static_cast<size_t>(n) * elemSize(e);
  RcPtr<char> buf = RcPtr<char>::allocateUninit(bytes);
  Matrix m(std::move(buf));
  Header* h = m.hdr();
  std::memset(h, 0, sizeof(Header)); // padding + unused dims deterministic
  h->elem = e;
  h->rank = static_cast<uint32_t>(dims.size());
  for (size_t i = 0; i < dims.size(); ++i) h->dims[i] = dims[i];
  return m;
}

Matrix Matrix::zeros(Elem e, const std::vector<int64_t>& dims) {
  Matrix m = uninit(e, dims);
  std::memset(m.data<char>(), 0,
              static_cast<size_t>(m.size()) * elemSize(e));
  return m;
}

Matrix Matrix::zeros(Elem e, const std::vector<int64_t>& dims,
                     Executor& exec) {
  Matrix m = uninit(e, dims);
  size_t bytes = static_cast<size_t>(m.size()) * elemSize(e);
  if (bytes < kParallelZeroBytes || exec.threads() <= 1) {
    std::memset(m.data<char>(), 0, bytes);
    return m;
  }
  // 1 MiB chunks: large enough that the pool round-trip amortizes, small
  // enough that every worker touches a share of the pages.
  constexpr size_t kChunk = size_t{1} << 20;
  char* d = m.data<char>();
  int64_t chunks = static_cast<int64_t>((bytes + kChunk - 1) / kChunk);
  exec.run(0, chunks, [d, bytes](int64_t lo, int64_t hi, unsigned) {
    size_t from = static_cast<size_t>(lo) * kChunk;
    size_t to = static_cast<size_t>(hi) * kChunk;
    if (to > bytes) to = bytes;
    std::memset(d + from, 0, to - from);
  });
  return m;
}

Matrix Matrix::fromF32(const std::vector<int64_t>& dims,
                       const std::vector<float>& data) {
  Matrix m = zeros(Elem::F32, dims);
  if (static_cast<int64_t>(data.size()) != m.size())
    throw std::invalid_argument("fromF32: data/shape mismatch");
  std::memcpy(m.f32(), data.data(), data.size() * sizeof(float));
  return m;
}

Matrix Matrix::fromI32(const std::vector<int64_t>& dims,
                       const std::vector<int32_t>& data) {
  Matrix m = zeros(Elem::I32, dims);
  if (static_cast<int64_t>(data.size()) != m.size())
    throw std::invalid_argument("fromI32: data/shape mismatch");
  std::memcpy(m.i32(), data.data(), data.size() * sizeof(int32_t));
  return m;
}

Matrix Matrix::fromBool(const std::vector<int64_t>& dims,
                        const std::vector<uint8_t>& data) {
  Matrix m = zeros(Elem::Bool, dims);
  if (static_cast<int64_t>(data.size()) != m.size())
    throw std::invalid_argument("fromBool: data/shape mismatch");
  std::memcpy(m.boolean(), data.data(), data.size());
  return m;
}

std::vector<int64_t> Matrix::dims() const {
  const Header* h = hdr();
  return std::vector<int64_t>(h->dims, h->dims + h->rank);
}

int64_t Matrix::size() const {
  const Header* h = hdr();
  int64_t n = 1;
  for (uint32_t i = 0; i < h->rank; ++i) n *= h->dims[i];
  return n;
}

int64_t Matrix::offsetOf(const int64_t* idx) const {
  const Header* h = hdr();
  int64_t off = 0;
  for (uint32_t i = 0; i < h->rank; ++i) {
    assert(idx[i] >= 0 && idx[i] < h->dims[i]);
    off = off * h->dims[i] + idx[i];
  }
  return off;
}

Matrix Matrix::clone() const {
  if (null()) return {};
  Matrix m = zeros(elem(), dims());
  std::memcpy(m.data<char>(), data<char>(),
              static_cast<size_t>(size()) * elemSize(elem()));
  return m;
}

bool Matrix::equals(const Matrix& o, float tolF32) const {
  if (null() || o.null()) return null() == o.null();
  if (elem() != o.elem() || rank() != o.rank()) return false;
  for (uint32_t d = 0; d < rank(); ++d)
    if (dim(d) != o.dim(d)) return false;
  int64_t n = size();
  switch (elem()) {
    case Elem::F32:
      for (int64_t i = 0; i < n; ++i)
        if (std::fabs(f32()[i] - o.f32()[i]) > tolF32) return false;
      return true;
    case Elem::I32:
      return std::memcmp(i32(), o.i32(), n * 4) == 0;
    case Elem::Bool:
      for (int64_t i = 0; i < n; ++i)
        if ((boolean()[i] != 0) != (o.boolean()[i] != 0)) return false;
      return true;
  }
  return false;
}

std::string Matrix::shapeString() const {
  if (null()) return "<null>";
  std::ostringstream out;
  for (uint32_t i = 0; i < rank(); ++i) {
    if (i) out << 'x';
    out << dim(i);
  }
  out << ' ' << elemName(elem());
  return out.str();
}

} // namespace mmx::rt
