#include "runtime/refcount.hpp"

#include <cstdlib>
#include <new>

namespace mmx::rt {

namespace {

// 16-byte header keeps the payload SSE-aligned; the live 4 bytes are the
// counter, as in the paper ("we attach an extra 4 bytes to every piece of
// memory that gets allocated").
struct alignas(16) RcHeader {
  std::atomic<int32_t> count;
};
static_assert(sizeof(RcHeader) == 16);

RcAllocHooks g_hooks{};
std::atomic<int64_t> g_live{0};

RcHeader* headerOf(const void* payload) noexcept {
  return const_cast<RcHeader*>(reinterpret_cast<const RcHeader*>(payload) - 1);
}

void* rawAlloc(size_t bytes) {
  if (g_hooks.alloc) return g_hooks.alloc(bytes);
  return ::operator new(bytes, std::align_val_t{16});
}

void rawFree(void* p) {
  if (g_hooks.free) {
    g_hooks.free(p);
    return;
  }
  ::operator delete(p, std::align_val_t{16});
}

} // namespace

void setRcAllocHooks(RcAllocHooks hooks) { g_hooks = hooks; }

void* rcAlloc(size_t bytes) {
  auto* h = static_cast<RcHeader*>(rawAlloc(sizeof(RcHeader) + bytes));
  new (h) RcHeader{};
  h->count.store(1, std::memory_order_relaxed);
  g_live.fetch_add(1, std::memory_order_relaxed);
  return h + 1;
}

void rcRetain(void* p) noexcept {
  headerOf(p)->count.fetch_add(1, std::memory_order_relaxed);
}

bool rcRelease(void* p) noexcept {
  if (!p) return false;
  RcHeader* h = headerOf(p);
  // Release ordering so prior writes to the payload are visible to the
  // thread that performs the free; acquire on the final decrement.
  if (h->count.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    g_live.fetch_sub(1, std::memory_order_relaxed);
    h->~RcHeader();
    rawFree(h);
    return true;
  }
  return false;
}

int32_t rcCount(const void* p) noexcept {
  return headerOf(p)->count.load(std::memory_order_relaxed);
}

int64_t rcLiveBlocks() noexcept {
  return g_live.load(std::memory_order_relaxed);
}

} // namespace mmx::rt
