#include "runtime/refcount.hpp"

#include <cstdlib>
#include <new>

#include "runtime/memsys.hpp"
#include "support/metrics.hpp"

namespace mmx::rt {

namespace {

// 16-byte header keeps the payload SSE-aligned; the live 4 bytes are the
// counter, as in the paper ("we attach an extra 4 bytes to every piece of
// memory that gets allocated"). The spare bytes record the payload size so
// release can credit the allocator telemetry without a size map.
struct alignas(16) RcHeader {
  std::atomic<int32_t> count;
  uint32_t pad;
  uint64_t bytes;
};
static_assert(sizeof(RcHeader) == 16);

RcAllocHooks g_hooks{};
std::atomic<int64_t> g_live{0};
std::atomic<uint64_t> g_liveBytes{0};
std::atomic<uint64_t> g_peakBytes{0};

// Parity schema with the emitted-C mmx_prof runtime: instrumented binaries
// dump the same rt.alloc.* / rt.rc.* names, so a dual-backend run of one
// program yields directly comparable counter sets.
const metrics::Counter& allocCounter() {
  static const metrics::Counter c = metrics::counter("rt.alloc.count");
  return c;
}
const metrics::Counter& allocBytesCounter() {
  static const metrics::Counter c = metrics::counter("rt.alloc.bytes");
  return c;
}
// Size-class distribution (ISSUE 10): one record per allocation, whatever
// allocator serves it, so rt.alloc.size.count stays in exact parity with
// the emitted-C mmx_prof alloc hook on single-threaded runs.
const metrics::Histogram& allocSizeHistogram() {
  static const metrics::Histogram h = metrics::histogram("rt.alloc.size");
  return h;
}
const metrics::Counter& retainCounter() {
  static const metrics::Counter c = metrics::counter("rt.rc.retains");
  return c;
}
const metrics::Counter& releaseCounter() {
  static const metrics::Counter c = metrics::counter("rt.rc.releases");
  return c;
}

// Live/peak bytes are gauges: maintained unconditionally by the relaxed
// atomics above (two adds per allocation), polled at snapshot time.
struct GaugeRegistrar {
  GaugeRegistrar() {
    metrics::registerGauge("rt.alloc.liveBytes", [] {
      return g_liveBytes.load(std::memory_order_relaxed);
    });
    metrics::registerGauge("rt.alloc.peakBytes", [] {
      return g_peakBytes.load(std::memory_order_relaxed);
    });
  }
};
const GaugeRegistrar g_gaugeRegistrar;

RcHeader* headerOf(const void* payload) noexcept {
  return const_cast<RcHeader*>(reinterpret_cast<const RcHeader*>(payload) - 1);
}

// Explicit hooks take absolute precedence (the bench/test redirection
// surface); otherwise blocks come from the memory subsystem, whose
// per-block tag keeps frees safe across --alloc strategy changes.
void* rawAlloc(size_t bytes) {
  if (g_hooks.alloc) return g_hooks.alloc(bytes);
  return msAlloc(bytes);
}

void rawFree(void* p) {
  if (g_hooks.free) {
    g_hooks.free(p);
    return;
  }
  msFree(p);
}

} // namespace

void setRcAllocHooks(RcAllocHooks hooks) { g_hooks = hooks; }

void* rcAlloc(size_t bytes) {
  auto* h = static_cast<RcHeader*>(rawAlloc(sizeof(RcHeader) + bytes));
  new (h) RcHeader{};
  h->count.store(1, std::memory_order_relaxed);
  h->bytes = bytes;
  g_live.fetch_add(1, std::memory_order_relaxed);
  uint64_t total = sizeof(RcHeader) + bytes;
  uint64_t live =
      g_liveBytes.fetch_add(total, std::memory_order_relaxed) + total;
  uint64_t peak = g_peakBytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peakBytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
  allocCounter().add();
  allocBytesCounter().add(total);
  allocSizeHistogram().record(total);
  return h + 1;
}

void rcRetain(void* p) noexcept {
  headerOf(p)->count.fetch_add(1, std::memory_order_relaxed);
  retainCounter().add();
}

bool rcRelease(void* p) noexcept {
  if (!p) return false;
  releaseCounter().add();
  RcHeader* h = headerOf(p);
  // Release ordering so prior writes to the payload are visible to the
  // thread that performs the free; acquire on the final decrement.
  if (h->count.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    g_live.fetch_sub(1, std::memory_order_relaxed);
    g_liveBytes.fetch_sub(sizeof(RcHeader) + h->bytes,
                          std::memory_order_relaxed);
    h->~RcHeader();
    rawFree(h);
    return true;
  }
  return false;
}

int32_t rcCount(const void* p) noexcept {
  return headerOf(p)->count.load(std::memory_order_relaxed);
}

int64_t rcLiveBlocks() noexcept {
  return g_live.load(std::memory_order_relaxed);
}

uint64_t rcLiveBytes() noexcept {
  return g_liveBytes.load(std::memory_order_relaxed);
}

uint64_t rcPeakBytes() noexcept {
  return g_peakBytes.load(std::memory_order_relaxed);
}

} // namespace mmx::rt
