// The matrix runtime object (paper §III-A1, §III-C): dense row-major
// storage of int / float / bool elements with arbitrary rank, built on the
// reference-counting cells of refcount.hpp. Matrix handles copy in O(1)
// (retain) — the deep-copy/no-copy distinction is what the paper's
// with-loop fusion optimization is about, and tests assert on it.
#pragma once

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "runtime/refcount.hpp"

namespace mmx::rt {

class Executor;

/// Element kinds supported by the extension ("matrices can only contain
/// integers, booleans, or floating point numbers").
enum class Elem : uint8_t { I32, F32, Bool };

size_t elemSize(Elem e);
const char* elemName(Elem e);

/// A rank-<=8 dense matrix handle. Copying shares the buffer (refcounted);
/// use clone() for a deep copy. Default-constructed handles are null.
class Matrix {
public:
  static constexpr uint32_t kMaxRank = 8;

  Matrix() = default;

  /// Zero-initialized matrix (the extension's init()).
  static Matrix zeros(Elem e, const std::vector<int64_t>& dims);

  /// zeros() with parallel first-touch: buffers at least
  /// kParallelZeroBytes of data are zeroed in chunks through `exec`, so
  /// pages land in the NUMA domains of the threads that will compute on
  /// them. Must not be called from inside a parallel region (the pool is
  /// not nest-safe); bit-identical to the serial zeros().
  static Matrix zeros(Elem e, const std::vector<int64_t>& dims,
                      Executor& exec);

  /// Matrix with a fully-formed header but *uninitialized* element data.
  /// Only for results the caller provably writes in full before any read
  /// (genarray results the shape analysis marks fullyWritten): first
  /// touch then happens on the computing threads, and the zeroing pass is
  /// skipped entirely.
  static Matrix uninit(Elem e, const std::vector<int64_t>& dims);

  /// Parallel first-touch threshold (4 MiB of element data).
  static constexpr size_t kParallelZeroBytes = size_t{4} << 20;

  /// Convenience constructors used by tests and examples.
  static Matrix fromF32(const std::vector<int64_t>& dims,
                        const std::vector<float>& data);
  static Matrix fromI32(const std::vector<int64_t>& dims,
                        const std::vector<int32_t>& data);
  static Matrix fromBool(const std::vector<int64_t>& dims,
                         const std::vector<uint8_t>& data);

  bool null() const { return !buf_; }
  Elem elem() const { return hdr()->elem; }
  uint32_t rank() const { return hdr()->rank; }
  int64_t dim(uint32_t d) const { return hdr()->dims[d]; }
  std::vector<int64_t> dims() const;
  /// Total element count.
  int64_t size() const;

  /// Raw data access (T must match elem()).
  template <class T> T* data() const {
    return reinterpret_cast<T*>(payload() + sizeof(Header));
  }
  float* f32() const { return data<float>(); }
  int32_t* i32() const { return data<int32_t>(); }
  uint8_t* boolean() const { return data<uint8_t>(); }

  /// Row-major linear offset of an index vector.
  int64_t offsetOf(const int64_t* idx) const;

  /// Deep copy (fresh buffer, count 1).
  Matrix clone() const;

  /// Reference count of the underlying buffer (tests/fusion asserts).
  int32_t useCount() const { return buf_.useCount(); }

  /// True if both handles share one buffer.
  bool sharesBufferWith(const Matrix& o) const {
    return buf_.get() == o.buf_.get();
  }

  /// Element-level equality (same elem kind, dims, and contents).
  bool equals(const Matrix& o, float tolF32 = 0.0f) const;

  std::string shapeString() const; // "721x1440x954 f32"

private:
  struct alignas(16) Header {
    uint32_t rank;
    Elem elem;
    uint8_t pad_[11];
    int64_t dims[kMaxRank];
  };
  static_assert(sizeof(Header) % 16 == 0,
                "element data must stay 16-byte aligned for SSE");

  Header* hdr() const { return reinterpret_cast<Header*>(payload()); }
  char* payload() const { return reinterpret_cast<char*>(buf_.get()); }

  explicit Matrix(RcPtr<char> buf) : buf_(std::move(buf)) {}

  RcPtr<char> buf_;
};

} // namespace mmx::rt
