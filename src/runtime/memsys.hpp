// Production memory subsystem (ISSUE 9, paper §III-C): the default
// backing store behind rcAlloc. Three interchangeable strategies sit
// behind one selection surface mirroring the kernel-backend registry
// (backend.hpp):
//
//   system — ::operator new / delete per block (the historical default);
//   cache  — thread-caching size-class allocator: per-thread magazine
//            free-lists over 16-byte size classes with a bounded central
//            depot (the depot mutex is touched only on refill/flush),
//            tcmalloc/Hoard-style as surveyed by the paper;
//   arena  — per-thread bump arenas, frees deferred (profile mode for
//            with-loop temporary churn; memory is reclaimed at trim()).
//
// Selection policy, in precedence order (same shape as backend.hpp):
//   1. an explicit selectAllocator("<name>") — the driver's --alloc flag;
//   2. the MMX_ALLOC environment variable (consulted under "auto");
//   3. auto: "cache".
//
// Every block carries a 16-byte MsHeader tagging which strategy produced
// it, so a block is always returned to its origin allocator even when the
// selection changes mid-process (AllocatorOverride in tests). Explicit
// setRcAllocHooks installations bypass this subsystem entirely.
//
// The same allocator is translated into the cemit prelude (mmx_ms_* in
// cemit.cpp), with identical size-class math and magazine/depot policy so
// the rt.alloc.cache.{hits,misses,flushes} counters match the interpreter
// exactly on single-threaded runs of the same program.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mmx::rt {

enum class AllocKind { System, Cache, Arena };

/// Selectable names, selection order ("system, cache, arena") — the order
/// --help and error messages list them in.
std::vector<std::string> allocatorNames();

/// "system" / "cache" / "arena".
std::string_view allocatorName(AllocKind k);

/// Pins the process-wide allocator strategy. "auto" re-arms lazy
/// resolution (the MMX_ALLOC environment variable is consulted again at
/// the next activeAllocator() call). Throws std::invalid_argument for an
/// unknown name. Live blocks are unaffected: the per-block tag routes
/// each free to its origin strategy.
void selectAllocator(std::string_view nameOrAuto);

/// The strategy new blocks are carved from. Resolves lazily:
/// explicit selection > $MMX_ALLOC > cache. Throws std::runtime_error
/// when $MMX_ALLOC names an unknown strategy.
AllocKind activeAllocator();

/// Pre-flight check for drivers: resolves `requested` (a name or "auto")
/// exactly like selectAllocator + activeAllocator would, returning an
/// empty string on success or the would-be diagnostic message. Never
/// changes the selection.
std::string allocatorSelectionError(std::string_view requested);

/// Raw block interface used by the refcount cells when no explicit
/// RcAllocHooks are installed. Payloads are 16-byte aligned; msFree must
/// receive a pointer from msAlloc (the hidden tag routes it home).
void* msAlloc(std::size_t bytes);
void msFree(void* p) noexcept;

/// Quiescent-point hook: flushes every registered thread magazine and the
/// central depot back to the system, and releases retired arena chunks.
/// Call only while no other thread is allocating (between parallel
/// regions); bumps the rt.alloc.trims gauge.
void msTrim();

/// Bumps rt.alloc.trims — shared with MutexAllocator::trim() and
/// ArenaAllocator::reset() so every allocator's trims land in one gauge.
void noteAllocTrim() noexcept;

/// Machine-independent cache telemetry (also exposed as the
/// rt.alloc.cache.{hits,misses,flushes,cachedBytes} gauges): magazine
/// hits, magazine misses (depot refill or fresh block), magazine→depot
/// flush events, and bytes currently parked in magazines + depot.
struct MsCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t flushes = 0;
  uint64_t cachedBytes = 0;
};
MsCacheStats msCacheStats() noexcept;

/// RAII selection pin for tests and benches; restores the previous
/// request (including "auto") on destruction.
class AllocatorOverride {
public:
  explicit AllocatorOverride(std::string_view name);
  ~AllocatorOverride();
  AllocatorOverride(const AllocatorOverride&) = delete;
  AllocatorOverride& operator=(const AllocatorOverride&) = delete;

private:
  std::string prev_;
};

} // namespace mmx::rt
