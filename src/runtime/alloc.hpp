// Allocators for the §III-C memory-management discussion: a global-mutex
// allocator modelling "naive malloc" contention, and a per-thread arena
// allocator modelling the arena/Hoard-style designs the paper surveys.
// bench_alloc compares them under parallel matrix churn; the refcount
// cells (refcount.hpp) can be pointed at either via setRcAllocHooks.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace mmx::rt {

/// Malloc/free behind one global mutex, with a size-bucketed free list so
/// the measured cost is the *lock contention*, not the underlying malloc.
class MutexAllocator {
public:
  static MutexAllocator& instance();

  void* allocate(size_t bytes);
  void deallocate(void* p);

  /// Frees everything on the free lists (between bench runs). Bumps the
  /// rt.alloc.trims gauge and drops rt.alloc.mutex.cachedBytes to zero.
  void trim();

  uint64_t lockAcquisitions() const { return acquisitions_; }

  /// Bytes currently parked on the free lists (also the
  /// rt.alloc.mutex.cachedBytes gauge).
  uint64_t cachedBytes() const {
    return cachedBytes_.load(std::memory_order_relaxed);
  }

private:
  MutexAllocator() = default;
  ~MutexAllocator();

  struct Block {
    Block* next;
    size_t bytes;
  };
  static constexpr int kBuckets = 24; // size classes 2^4 .. 2^27

  std::mutex mu_;
  Block* freeList_[kBuckets] = {};
  uint64_t acquisitions_ = 0;
  std::atomic<uint64_t> cachedBytes_{0};
};

/// Per-thread bump arenas: allocation is lock-free (thread-local chunk),
/// deallocation is deferred until reset(). Models the allocation pattern
/// of with-loop temporaries: many short-lived buffers freed together.
class ArenaAllocator {
public:
  static ArenaAllocator& instance();

  void* allocate(size_t bytes);
  /// No-op (arena memory is reclaimed wholesale by reset()).
  void deallocate(void* p) noexcept;

  /// Releases every thread's chunks. Call only while no other thread is
  /// allocating (quiescent points between parallel regions). Bumps the
  /// rt.alloc.trims gauge and drops rt.alloc.arena.cachedBytes to zero.
  void reset();

  size_t chunkCount() const;

  /// Bytes currently held in arena chunks (also the
  /// rt.alloc.arena.cachedBytes gauge).
  uint64_t cachedBytes() const {
    return heldBytes_.load(std::memory_order_relaxed);
  }

private:
  ArenaAllocator() = default;
  /// Reclaims every registered arena (process-exit cleanup of the
  /// singleton; thread_local arena pointers are dead by then).
  ~ArenaAllocator();

  struct alignas(16) Chunk {
    Chunk* next;
    size_t used;
    size_t cap;
    size_t pad_; // keeps sizeof(Chunk) a multiple of 16 => payload aligned
    // payload follows
  };
  static_assert(sizeof(Chunk) % 16 == 0);
  struct ThreadArena {
    Chunk* head = nullptr;
  };

  static constexpr size_t kChunkSize = 1 << 20;

  ThreadArena& localArena();

  // Registry of all thread arenas so reset() can reach them.
  std::mutex registryMu_;
  std::vector<ThreadArena*> arenas_;
  std::atomic<uint64_t> heldBytes_{0};
};

// C-style hooks matching rt::RcAllocHooks.
void* mutexAllocHook(size_t bytes);
void mutexFreeHook(void* p);
void* arenaAllocHook(size_t bytes);
void arenaFreeHook(void* p);

} // namespace mmx::rt
