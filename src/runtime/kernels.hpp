// Matrix compute kernels: element-wise arithmetic (scalar and SSE),
// scalar broadcast, comparisons producing boolean matrices, matrix
// multiply, and reductions. The lowered with-loop code calls these for
// whole-matrix operator expressions (m1 + m2, ssh < i, ...); benches
// compare scalar vs SIMD vs parallel variants.
#pragma once

#include <cstdint>

#include "runtime/matrix.hpp"
#include "runtime/pool.hpp"

namespace mmx::rt {

/// Binary element-wise operators of the extension (§III-A2). Mul is
/// element-wise ('.*'); linear-algebra multiply is matmul() below.
enum class BinOp : uint8_t { Add, Sub, Mul, Div, Mod, Min, Max };
/// Comparisons produce Bool matrices (logical indexing, `ssh < i`).
enum class CmpOp : uint8_t { Lt, Le, Gt, Ge, Eq, Ne };

// DEPRECATED (ISSUE 7, kept for one PR): the three historical entry
// points below are thin shims over the templated rt::ew<> in backend.hpp,
// which routes through the active kernel backend. New callers use
// rt::ew(exec, op, a, rhs, out[, simd]).

/// out = a (op) b, all same shape/kind. `exec` splits rows across threads;
/// `simd` selects the active backend's vector strips for f32/i32.
void ewBinary(Executor& exec, BinOp op, const Matrix& a, const Matrix& b,
              Matrix& out, bool simd);

/// out = a (op) scalar-broadcast(s).
void ewBinaryScalarF(Executor& exec, BinOp op, const Matrix& a, float s,
                     Matrix& out, bool simd);
void ewBinaryScalarI(Executor& exec, BinOp op, const Matrix& a, int32_t s,
                     Matrix& out, bool simd);

/// Bool matrix of element-wise comparisons; b broadcast when scalar.
void ewCompare(Executor& exec, CmpOp op, const Matrix& a, const Matrix& b,
               Matrix& out);
void ewCompareScalarF(Executor& exec, CmpOp op, const Matrix& a, float s,
                      Matrix& out);
void ewCompareScalarI(Executor& exec, CmpOp op, const Matrix& a, int32_t s,
                      Matrix& out);

/// Linear-algebra product of two rank-2 matrices (f32 or i32). Dispatches
/// through the active kernel backend (backend.hpp); defined in
/// backend.cpp.
Matrix matmul(Executor& exec, const Matrix& a, const Matrix& b);

/// Full reduction (fold over every element).
float reduceF32(Executor& exec, BinOp op, float init, const Matrix& a,
                bool simd);
int32_t reduceI32(Executor& exec, BinOp op, int32_t init, const Matrix& a);

/// Sum along the innermost dimension of a rank-3 f32 matrix into a rank-2
/// result — the fused temporal-mean kernel of Fig. 1/Fig. 3, exposed
/// directly so benches can compare against the unfused (slice-copying)
/// formulation.
void sumInnermost3D(Executor& exec, const Matrix& a, Matrix& out, bool simd);

} // namespace mmx::rt
