// Process-wide kernel backend registry (ISSUE 7). Mechanisms live in
// gemm.cpp / gemm_avx.cpp / gemm_avx2.cpp and ew_ops.hpp; this file holds
// the policy: the KernelBackend interface defaults, the four builtin
// backends, priority-ordered runtime selection with the
// explicit > $MMX_BACKEND > auto precedence, and the rt::matmul entry
// point that dispatches through the selection.
#include "runtime/backend.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include "runtime/ew_ops.hpp"
#include "runtime/gemm.hpp"
#include "runtime/memsys.hpp"
#include "runtime/simd.hpp"
#include "support/metrics.hpp"
#include "support/perf.hpp"

namespace mmx::rt {

// ---- KernelBackend defaults ---------------------------------------------

KernelBackend::KernelBackend(std::string name, int priority)
    : name_(std::move(name)), priority_(priority),
      matmulTimer_("kernel.matmul." + name_),
      selectedCounter_("backend.selected." + name_),
      pmuPrefix_("kernel.matmul." + name_ + ".pmu.") {}

void KernelBackend::gemmF64(Executor& exec, const double* A, const double* B,
                            double* C, int64_t m, int64_t k,
                            int64_t n) const {
  gemmNaiveF64(exec, A, B, C, m, k, n);
}

void KernelBackend::ewStripF32(BinOp op, const float* a, const float* b,
                               float s, float* out, int64_t lo,
                               int64_t hi) const {
  int64_t i = lo;
  if (detail::simdSupportsF(op)) {
    if (b) {
      for (; i + 4 <= hi; i += 4)
        detail::applyBinV(op, Vec4f::load(a + i), Vec4f::load(b + i))
            .store(out + i);
    } else {
      Vec4f sv = Vec4f::splat(s);
      for (; i + 4 <= hi; i += 4)
        detail::applyBinV(op, Vec4f::load(a + i), sv).store(out + i);
    }
  }
  if (b) {
    for (; i < hi; ++i) out[i] = detail::applyBin(op, a[i], b[i]);
  } else {
    for (; i < hi; ++i) out[i] = detail::applyBin(op, a[i], s);
  }
}

void KernelBackend::ewStripI32(BinOp op, const int32_t* a, const int32_t* b,
                               int32_t s, int32_t* out, int64_t lo,
                               int64_t hi) const {
  int64_t i = lo;
  if (detail::simdSupportsI(op)) {
    if (b) {
      for (; i + 4 <= hi; i += 4)
        detail::applyBinVI(op, Vec4i::load(a + i), Vec4i::load(b + i))
            .store(out + i);
    } else {
      Vec4i sv = Vec4i::splat(s);
      for (; i + 4 <= hi; i += 4)
        detail::applyBinVI(op, Vec4i::load(a + i), sv).store(out + i);
    }
  }
  if (b) {
    for (; i < hi; ++i) out[i] = detail::applyBin(op, a[i], b[i]);
  } else {
    for (; i < hi; ++i) out[i] = detail::applyBin(op, a[i], s);
  }
}

float KernelBackend::reduceStripF32(BinOp op, const float* d, int64_t lo,
                                    int64_t hi) const {
  float acc = detail::identityOf<float>(op);
  int64_t i = lo;
  if (op == BinOp::Add) {
    Vec4f vacc = Vec4f::zero();
    for (; i + 4 <= hi; i += 4) vacc = vacc + Vec4f::load(d + i);
    acc += vacc.hsum();
  }
  for (; i < hi; ++i) acc = detail::applyBin(op, acc, d[i]);
  return acc;
}

int32_t KernelBackend::reduceStripI32(BinOp op, const int32_t* d, int64_t lo,
                                      int64_t hi) const {
  int32_t acc = detail::identityOf<int32_t>(op);
  for (int64_t i = lo; i < hi; ++i) acc = detail::applyBin(op, acc, d[i]);
  return acc;
}

// ---- builtin backends ---------------------------------------------------

namespace {

/// Portable reference backend: plain-C loops only, always available. Its
/// element-wise loops are per-element (identical bits to SSE by
/// construction) and its Add-reduction emulates the SSE lane striping —
/// four stride-4 partial sums over the leading aligned blocks combined as
/// (l0+l1)+(l2+l3), exactly Vec4f::hsum()'s hadd order — so forcing
/// `scalar` changes no output byte.
class ScalarBackend final : public KernelBackend {
public:
  ScalarBackend() : KernelBackend("scalar", 0) {}
  bool available() const override { return true; }

  void gemmF32(Executor& exec, const float* A, const float* B, float* C,
               int64_t m, int64_t k, int64_t n) const override {
    gemmNaiveF32(exec, A, B, C, m, k, n);
  }
  void gemmI32(Executor& exec, const int32_t* A, const int32_t* B,
               int32_t* C, int64_t m, int64_t k, int64_t n) const override {
    gemmNaiveI32(exec, A, B, C, m, k, n);
  }

  void ewStripF32(BinOp op, const float* a, const float* b, float s,
                  float* out, int64_t lo, int64_t hi) const override {
    if (b)
      for (int64_t i = lo; i < hi; ++i)
        out[i] = detail::applyBin(op, a[i], b[i]);
    else
      for (int64_t i = lo; i < hi; ++i) out[i] = detail::applyBin(op, a[i], s);
  }
  void ewStripI32(BinOp op, const int32_t* a, const int32_t* b, int32_t s,
                  int32_t* out, int64_t lo, int64_t hi) const override {
    if (b)
      for (int64_t i = lo; i < hi; ++i)
        out[i] = detail::applyBin(op, a[i], b[i]);
    else
      for (int64_t i = lo; i < hi; ++i) out[i] = detail::applyBin(op, a[i], s);
  }

  float reduceStripF32(BinOp op, const float* d, int64_t lo,
                       int64_t hi) const override {
    float acc = detail::identityOf<float>(op);
    int64_t i = lo;
    if (op == BinOp::Add) {
      float l0 = 0.f, l1 = 0.f, l2 = 0.f, l3 = 0.f;
      for (; i + 4 <= hi; i += 4) {
        l0 += d[i];
        l1 += d[i + 1];
        l2 += d[i + 2];
        l3 += d[i + 3];
      }
      acc += (l0 + l1) + (l2 + l3);
    }
    for (; i < hi; ++i) acc = detail::applyBin(op, acc, d[i]);
    return acc;
  }
};

/// The BLIS-style tiled/packed engine with the SSE 4x8 micro-kernel —
/// the historical default, kept byte-compatible with pre-registry output.
class SseBackend final : public KernelBackend {
public:
  SseBackend() : KernelBackend("sse", 10) {}
  bool available() const override { return true; }

  void gemmF32(Executor& exec, const float* A, const float* B, float* C,
               int64_t m, int64_t k, int64_t n) const override {
    if (m * k * n < kMatmulTiledCutoff)
      gemmNaiveF32(exec, A, B, C, m, k, n);
    else
      gemmTiledF32(exec, A, B, C, m, k, n, GemmKernel::Sse);
  }
  void gemmI32(Executor& exec, const int32_t* A, const int32_t* B,
               int32_t* C, int64_t m, int64_t k, int64_t n) const override {
    if (m * k * n < kMatmulTiledCutoff)
      gemmNaiveI32(exec, A, B, C, m, k, n);
    else
      gemmTiledI32(exec, A, B, C, m, k, n);
  }
};

/// Tiled engine with the AVX twin-strip micro-kernel (vmulps + vaddps):
/// rounds exactly like the SSE path, so it is bit-identical to `sse` and
/// exists purely for throughput.
class AvxBackend final : public KernelBackend {
public:
  AvxBackend() : KernelBackend("avx", 20) {}
  bool available() const override { return detail::haveAvx(); }

  void gemmF32(Executor& exec, const float* A, const float* B, float* C,
               int64_t m, int64_t k, int64_t n) const override {
    if (m * k * n < kMatmulTiledCutoff)
      gemmNaiveF32(exec, A, B, C, m, k, n);
    else
      gemmTiledF32(exec, A, B, C, m, k, n, GemmKernel::Avx);
  }
  void gemmI32(Executor& exec, const int32_t* A, const int32_t* B,
               int32_t* C, int64_t m, int64_t k, int64_t n) const override {
    if (m * k * n < kMatmulTiledCutoff)
      gemmNaiveI32(exec, A, B, C, m, k, n);
    else
      gemmTiledI32(exec, A, B, C, m, k, n);
  }
};

/// Tiled engine with the AVX2/FMA twin-strip micro-kernel. Fused
/// multiply-add rounds once per madd, so f32/f64 results bit-match the
/// other backends only on exactly representable data; small products use
/// the naive-FMA path so the whole backend (and the emitted-C FMA core)
/// rounds uniformly.
class Avx2FmaBackend final : public KernelBackend {
public:
  Avx2FmaBackend() : KernelBackend("avx2fma", 30) {}
  bool available() const override { return detail::haveAvx2Fma(); }

  void gemmF32(Executor& exec, const float* A, const float* B, float* C,
               int64_t m, int64_t k, int64_t n) const override {
    if (m * k * n < kMatmulTiledCutoff)
      exec.run(0, m, detail::naiveGrainRows(k, n),
               [&](int64_t lo, int64_t hi, unsigned) {
                 detail::gemmNaiveFmaRowsF32(A, B, C, k, n, lo, hi);
               });
    else
      gemmTiledF32(exec, A, B, C, m, k, n, GemmKernel::Avx2Fma);
  }
  void gemmI32(Executor& exec, const int32_t* A, const int32_t* B,
               int32_t* C, int64_t m, int64_t k, int64_t n) const override {
    if (m * k * n < kMatmulTiledCutoff)
      gemmNaiveI32(exec, A, B, C, m, k, n);
    else
      gemmTiledI32(exec, A, B, C, m, k, n);
  }
  void gemmF64(Executor& exec, const double* A, const double* B, double* C,
               int64_t m, int64_t k, int64_t n) const override {
    exec.run(0, m, detail::naiveGrainRows(k, n),
             [&](int64_t lo, int64_t hi, unsigned) {
               detail::gemmNaiveFmaRowsF64(A, B, C, k, n, lo, hi);
             });
  }
};

// ---- registry state -----------------------------------------------------

struct Registry {
  std::mutex mu;
  std::vector<const KernelBackend*> list; // registration order
  std::string requested = "auto";         // explicit selection ("auto" = lazy)
};

Registry& registry() {
  // Builtins register on first registry touch, before any test or
  // embedder registration can race them.
  static Registry r;
  static const bool seeded = [] {
    static const ScalarBackend scalar;
    static const SseBackend sse;
    static const AvxBackend avx;
    static const Avx2FmaBackend avx2fma;
    r.list = {&scalar, &sse, &avx, &avx2fma};
    return true;
  }();
  (void)seeded;
  return r;
}

/// Resolved selection cache; null means "resolve on next activeBackend()".
std::atomic<const KernelBackend*> g_active{nullptr};

const KernelBackend* findLocked(const Registry& r, std::string_view name) {
  for (const KernelBackend* be : r.list)
    if (be->name() == name) return be;
  return nullptr;
}

std::string namesLocked(const Registry& r) {
  std::vector<const KernelBackend*> sorted = r.list;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const KernelBackend* a, const KernelBackend* b) {
                     return a->priority() < b->priority();
                   });
  std::string out;
  for (const KernelBackend* be : sorted) {
    if (!out.empty()) out += ", ";
    out += be->name();
  }
  return out;
}

/// Validates one concrete (non-"auto") name. Returns the backend or null
/// with `err` set.
const KernelBackend* lookupLocked(const Registry& r, std::string_view name,
                                  std::string& err) {
  const KernelBackend* be = findLocked(r, name);
  if (!be) {
    err = "unknown backend '" + std::string(name) +
          "' (registered: " + namesLocked(r) + ")";
    return nullptr;
  }
  if (!be->available()) {
    err = "backend '" + std::string(name) +
          "' is not available on this host (missing CPU support)";
    return nullptr;
  }
  return be;
}

/// Resolves the full precedence chain (explicit > env > auto priority)
/// without touching any state. Returns null with `err` set on failure;
/// `viaEnv` reports whether $MMX_BACKEND drove the choice (error wording).
const KernelBackend* resolveLocked(const Registry& r,
                                   std::string_view requested,
                                   std::string& err, bool& viaEnv) {
  viaEnv = false;
  if (requested != "auto") return lookupLocked(r, requested, err);
  const char* env = std::getenv("MMX_BACKEND");
  if (env && *env && std::strcmp(env, "auto") != 0) {
    viaEnv = true;
    const KernelBackend* be = lookupLocked(r, env, err);
    if (!be) err = "MMX_BACKEND: " + err;
    return be;
  }
  const KernelBackend* best = nullptr;
  for (const KernelBackend* be : r.list)
    if (be->available() && (!best || be->priority() > best->priority()))
      best = be;
  if (!best) err = "no kernel backend is available"; // unreachable: scalar
  return best;
}

} // namespace

// ---- registry API -------------------------------------------------------

void registerBackend(const KernelBackend* be) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.list.push_back(be);
  // A new backend can outrank the cached auto choice.
  if (r.requested == "auto") g_active.store(nullptr, std::memory_order_release);
}

std::vector<const KernelBackend*> backends() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<const KernelBackend*> out = r.list;
  std::stable_sort(out.begin(), out.end(),
                   [](const KernelBackend* a, const KernelBackend* b) {
                     return a->priority() > b->priority();
                   });
  return out;
}

std::vector<std::string> backendNames() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<const KernelBackend*> sorted = r.list;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const KernelBackend* a, const KernelBackend* b) {
                     return a->priority() < b->priority();
                   });
  std::vector<std::string> out;
  out.reserve(sorted.size());
  for (const KernelBackend* be : sorted) out.emplace_back(be->name());
  return out;
}

const KernelBackend* findBackend(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return findLocked(r, name);
}

void selectBackend(std::string_view nameOrAuto) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (nameOrAuto == "auto") {
    r.requested = "auto";
    g_active.store(nullptr, std::memory_order_release); // re-read env lazily
    return;
  }
  std::string err;
  const KernelBackend* be = lookupLocked(r, nameOrAuto, err);
  if (!be) throw std::invalid_argument(err);
  r.requested = std::string(nameOrAuto);
  g_active.store(be, std::memory_order_release);
  metrics::counter(be->selectedCounterName()).add();
}

const KernelBackend& activeBackend() {
  if (const KernelBackend* be = g_active.load(std::memory_order_acquire))
    return *be;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (const KernelBackend* be = g_active.load(std::memory_order_acquire))
    return *be;
  std::string err;
  bool viaEnv = false;
  const KernelBackend* be = resolveLocked(r, r.requested, err, viaEnv);
  if (!be) throw std::runtime_error(err);
  g_active.store(be, std::memory_order_release);
  metrics::counter(be->selectedCounterName()).add();
  return *be;
}

std::string backendSelectionError(std::string_view requested) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::string err;
  bool viaEnv = false;
  resolveLocked(r, requested, err, viaEnv);
  return err;
}

namespace {
std::string currentRequest() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.requested;
}
} // namespace

BackendOverride::BackendOverride(std::string_view name)
    : prev_(currentRequest()) {
  selectBackend(name);
}

BackendOverride::~BackendOverride() { selectBackend(prev_); }

std::unique_ptr<Executor> RuntimeConfig::make() const {
  selectBackend(backend);
  selectAllocator(alloc);
  return makeExecutor(executor, threads);
}

// ---- matmul entry point -------------------------------------------------

Matrix matmul(Executor& exec, const Matrix& a, const Matrix& b) {
  checkMatmulArgs(a, b);
  const KernelBackend& be = activeBackend();
  // "kernel.matmul" matches the site the emitted-C mmx_prof runtime
  // records around mmx_matmul, so both runtimes report the same
  // kernel.matmul.{count,ns,max_ns} stats keys; the per-backend twin
  // attributes the same span to the selected backend, and the
  // kernel.matmul.latency_ns histogram (same name in the emitted-C dump)
  // carries the per-call tail the aggregate timer cannot show.
  metrics::ScopedTimer t("kernel.matmul", "kernel");
  metrics::ScopedTimer tb(be.matmulTimerName(), "kernel");
  metrics::counter(be.selectedCounterName()).add();
  static const metrics::Histogram latencyHist =
      metrics::histogram("kernel.matmul.latency_ns");
  uint64_t histStart = metrics::enabled() ? metrics::nowNs() : 0;
  bool pmuArmed = perf::requested() && perf::begin();
  int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  // Parallel first-touch zeroing: large C pages land on the threads that
  // will accumulate into them.
  Matrix out = Matrix::zeros(a.elem(), {m, n}, exec);
  if (a.elem() == Elem::F32)
    be.gemmF32(exec, a.f32(), b.f32(), out.f32(), m, k, n);
  else
    be.gemmI32(exec, a.i32(), b.i32(), out.i32(), m, k, n);
  if (pmuArmed) {
    perf::Sample s = perf::end();
    if (s.ok) {
      const std::string& p = be.pmuCounterPrefix();
      metrics::counter(p + "cycles").add(s.cycles);
      metrics::counter(p + "instructions").add(s.instructions);
      metrics::counter(p + "cacheMisses").add(s.cacheMisses);
      metrics::counter(p + "branchMisses").add(s.branchMisses);
    }
  }
  if (metrics::enabled()) latencyHist.record(metrics::nowNs() - histStart);
  return out;
}

} // namespace mmx::rt
