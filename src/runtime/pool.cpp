#include "runtime/pool.hpp"

#include <algorithm>
#include <immintrin.h>

#include "support/metrics.hpp"

namespace mmx::rt {

namespace {
/// Spin-then-yield wait. Pure spinning deadlocks progress on machines with
/// fewer cores than threads, so after a short busy phase we yield.
template <class Pred> void spinUntil(Pred&& done) {
  for (int i = 0; i < 256; ++i) {
    if (done()) return;
    _mm_pause();
  }
  while (!done()) std::this_thread::yield();
}
/// Static partition shared by both executors.
void staticChunk(int64_t lo, int64_t hi, unsigned tid, unsigned n,
                 int64_t& clo, int64_t& chi) {
  int64_t total = hi - lo;
  int64_t base = total / n;
  int64_t rem = total % n;
  clo = lo + base * tid + std::min<int64_t>(tid, rem);
  chi = clo + base + (tid < static_cast<unsigned>(rem) ? 1 : 0);
}

// Runtime pool metrics (ISSUE 2). All are no-ops while metrics are
// disabled; the clock is only read when enabled.
const metrics::Counter& regionCounter() {
  static const metrics::Counter c = metrics::counter("pool.regions");
  return c;
}
const metrics::Counter& spinCounter() {
  static const metrics::Counter c = metrics::counter("pool.worker.spin_ns");
  return c;
}
const metrics::Counter& workCounter() {
  static const metrics::Counter c = metrics::counter("pool.worker.work_ns");
  return c;
}
const metrics::Counter& stopWaitCounter() {
  static const metrics::Counter c = metrics::counter("pool.stopwait_ns");
  return c;
}
const metrics::Counter& inlinedCounter() {
  static const metrics::Counter c = metrics::counter("pool.inlinedDispatches");
  return c;
}

/// Task-latency distribution (ISSUE 10): every chunk a worker (or the
/// main thread, or a serial executor) executes folds its busy time here,
/// so --stats-json reports pool.task.latency_ns.p50/.p95/.p99 tails that
/// the aggregate work_ns totals flatten away. Sub-grain inlined dispatches
/// are excluded: they are below the measurement floor by construction.
const metrics::Histogram& taskHistogram() {
  static const metrics::Histogram h =
      metrics::histogram("pool.task.latency_ns");
  return h;
}

/// Runs one chunk, recording its latency. Used by every path that does
/// not already measure the chunk for per-worker counters.
void runTimedChunk(RangeFn fn, void* ctx, int64_t lo, int64_t hi,
                   unsigned tid) {
  if (!metrics::enabled()) {
    fn(ctx, lo, hi, tid);
    return;
  }
  uint64_t start = metrics::nowNs();
  fn(ctx, lo, hi, tid);
  taskHistogram().record(metrics::nowNs() - start);
}

/// Per-thread busy/idle counters (ISSUE 5): `pool.t<k>.busy_ns` /
/// `pool.t<k>.idle_ns` split the aggregate spin/work totals by worker, the
/// shape a load-imbalance investigation needs. Registered per worker
/// thread, so the name construction runs once per thread, not per region.
struct WorkerCounters {
  metrics::Counter busy;
  metrics::Counter idle;
  explicit WorkerCounters(unsigned tid)
      : busy(metrics::counter("pool.t" + std::to_string(tid) + ".busy_ns")),
        idle(metrics::counter("pool.t" + std::to_string(tid) + ".idle_ns")) {}
};

/// Emits the per-region span + counter around a region body. The span is
/// emitted by every executor so 1-thread traces still show regions.
template <class Body> void tracedRegion(Body&& body) {
  if (!metrics::enabled()) {
    body();
    return;
  }
  regionCounter().add();
  uint64_t start = metrics::nowNs();
  body();
  metrics::traceSpan("parallelFor", "pool", start, metrics::nowNs() - start);
}

} // namespace

std::string_view toString(ExecutorKind k) {
  switch (k) {
    case ExecutorKind::Serial: return "serial";
    case ExecutorKind::ForkJoin: return "forkjoin";
    case ExecutorKind::Naive: return "naive";
  }
  return "?";
}

std::optional<ExecutorKind> executorKindFromString(std::string_view s) {
  if (s == "serial") return ExecutorKind::Serial;
  if (s == "forkjoin") return ExecutorKind::ForkJoin;
  if (s == "naive") return ExecutorKind::Naive;
  return std::nullopt;
}

std::unique_ptr<Executor> makeExecutor(ExecutorKind k, unsigned threads) {
  switch (k) {
    case ExecutorKind::Serial: return std::make_unique<SerialExecutor>();
    case ExecutorKind::ForkJoin: return std::make_unique<ForkJoinPool>(threads);
    case ExecutorKind::Naive: return std::make_unique<NaiveForkJoin>(threads);
  }
  return nullptr;
}

void Executor::parallelForGrain(int64_t lo, int64_t hi, int64_t minGrain,
                                RangeFn fn, void* ctx) {
  if (hi <= lo) return;
  if (hi - lo < minGrain) {
    inlinedCounter().add();
    fn(ctx, lo, hi, 0);
    return;
  }
  parallelFor(lo, hi, fn, ctx);
}

void SerialExecutor::parallelFor(int64_t lo, int64_t hi, RangeFn fn,
                                 void* ctx) {
  if (hi <= lo) return;
  tracedRegion([&] { runTimedChunk(fn, ctx, lo, hi, 0); });
}

void ForkJoinPool::chunkOf(int64_t lo, int64_t hi, unsigned tid, unsigned n,
                           int64_t& clo, int64_t& chi) {
  staticChunk(lo, hi, tid, n, clo, chi);
}

ForkJoinPool::ForkJoinPool(unsigned nThreads)
    : nThreads_(nThreads ? nThreads : 1) {
  workers_.reserve(nThreads_ - 1);
  for (unsigned t = 1; t < nThreads_; ++t)
    workers_.emplace_back([this, t] { workerLoop(t); });
}

ForkJoinPool::~ForkJoinPool() {
  shutdown_.store(true, std::memory_order_relaxed);
  gen_.fetch_add(1, std::memory_order_release); // release parked workers
  for (auto& w : workers_) w.join();
}

void ForkJoinPool::workerLoop(unsigned tid) {
  uint64_t seen = 0;
  const WorkerCounters wc(tid);
  for (;;) {
    // Park in the spin gate until the main thread advances the generation.
    // When metrics are on, gate time counts as spin and region execution
    // as work — the per-worker split Fig. 9-style overhead studies need.
    uint64_t parked = metrics::enabled() ? metrics::nowNs() : 0;
    spinUntil([&] { return gen_.load(std::memory_order_acquire) != seen; });
    seen = gen_.load(std::memory_order_acquire);
    if (shutdown_.load(std::memory_order_relaxed)) return;

    uint64_t released = 0;
    if (metrics::enabled()) {
      released = metrics::nowNs();
      spinCounter().add(released - parked);
      wc.idle.add(released - parked);
    }

    int64_t clo, chi;
    chunkOf(lo_, hi_, tid, nThreads_, clo, chi);
    if (chi > clo) fn_(ctx_, clo, chi, tid);

    if (released) {
      uint64_t busy = metrics::nowNs() - released;
      workCounter().add(busy);
      wc.busy.add(busy);
      if (chi > clo) {
        taskHistogram().record(busy);
        metrics::traceSpan("chunk", "pool", released, busy);
      }
    }

    // Stop barrier: last one out lets the main thread continue.
    running_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void ForkJoinPool::parallelFor(int64_t lo, int64_t hi, RangeFn fn, void* ctx) {
  if (hi <= lo) return;
  if (nThreads_ == 1) {
    tracedRegion([&] { runTimedChunk(fn, ctx, lo, hi, 0); });
    return;
  }

  tracedRegion([&] {
    // Publish the work item, then open the gate.
    fn_ = fn;
    ctx_ = ctx;
    lo_ = lo;
    hi_ = hi;
    running_.store(nThreads_ - 1, std::memory_order_relaxed);
    gen_.fetch_add(1, std::memory_order_release);

    // Main thread is worker 0.
    int64_t clo, chi;
    chunkOf(lo, hi, 0, nThreads_, clo, chi);
    if (chi > clo) {
      if (metrics::enabled()) {
        static const WorkerCounters wc0(0);
        uint64_t start = metrics::nowNs();
        fn(ctx, clo, chi, 0);
        uint64_t busy = metrics::nowNs() - start;
        wc0.busy.add(busy);
        taskHistogram().record(busy);
        metrics::traceSpan("chunk", "pool", start, busy);
      } else {
        fn(ctx, clo, chi, 0);
      }
    }

    // Wait in the stop barrier for the workers.
    if (metrics::enabled()) {
      uint64_t waitStart = metrics::nowNs();
      spinUntil([&] { return running_.load(std::memory_order_acquire) == 0; });
      stopWaitCounter().add(metrics::nowNs() - waitStart);
    } else {
      spinUntil([&] { return running_.load(std::memory_order_acquire) == 0; });
    }
  });
}

void NaiveForkJoin::parallelFor(int64_t lo, int64_t hi, RangeFn fn,
                                void* ctx) {
  if (hi <= lo) return;
  if (nThreads_ == 1) {
    tracedRegion([&] { runTimedChunk(fn, ctx, lo, hi, 0); });
    return;
  }
  tracedRegion([&] {
    std::vector<std::thread> ts;
    ts.reserve(nThreads_ - 1);
    for (unsigned t = 1; t < nThreads_; ++t) {
      int64_t clo, chi;
      staticChunk(lo, hi, t, nThreads_, clo, chi);
      if (chi > clo)
        ts.emplace_back([=] { runTimedChunk(fn, ctx, clo, chi, t); });
    }
    int64_t clo, chi;
    staticChunk(lo, hi, 0, nThreads_, clo, chi);
    if (chi > clo) runTimedChunk(fn, ctx, clo, chi, 0);
    for (auto& t : ts) t.join();
  });
}

} // namespace mmx::rt
