#include "runtime/pool.hpp"

#include <algorithm>
#include <immintrin.h>

namespace mmx::rt {

namespace {
/// Spin-then-yield wait. Pure spinning deadlocks progress on machines with
/// fewer cores than threads, so after a short busy phase we yield.
template <class Pred> void spinUntil(Pred&& done) {
  for (int i = 0; i < 256; ++i) {
    if (done()) return;
    _mm_pause();
  }
  while (!done()) std::this_thread::yield();
}
/// Static partition shared by both executors.
void staticChunk(int64_t lo, int64_t hi, unsigned tid, unsigned n,
                 int64_t& clo, int64_t& chi) {
  int64_t total = hi - lo;
  int64_t base = total / n;
  int64_t rem = total % n;
  clo = lo + base * tid + std::min<int64_t>(tid, rem);
  chi = clo + base + (tid < static_cast<unsigned>(rem) ? 1 : 0);
}

} // namespace

void ForkJoinPool::chunkOf(int64_t lo, int64_t hi, unsigned tid, unsigned n,
                           int64_t& clo, int64_t& chi) {
  staticChunk(lo, hi, tid, n, clo, chi);
}

ForkJoinPool::ForkJoinPool(unsigned nThreads)
    : nThreads_(nThreads ? nThreads : 1) {
  workers_.reserve(nThreads_ - 1);
  for (unsigned t = 1; t < nThreads_; ++t)
    workers_.emplace_back([this, t] { workerLoop(t); });
}

ForkJoinPool::~ForkJoinPool() {
  shutdown_.store(true, std::memory_order_relaxed);
  gen_.fetch_add(1, std::memory_order_release); // release parked workers
  for (auto& w : workers_) w.join();
}

void ForkJoinPool::workerLoop(unsigned tid) {
  uint64_t seen = 0;
  for (;;) {
    // Park in the spin gate until the main thread advances the generation.
    spinUntil([&] { return gen_.load(std::memory_order_acquire) != seen; });
    seen = gen_.load(std::memory_order_acquire);
    if (shutdown_.load(std::memory_order_relaxed)) return;

    int64_t clo, chi;
    chunkOf(lo_, hi_, tid, nThreads_, clo, chi);
    if (chi > clo) fn_(ctx_, clo, chi, tid);

    // Stop barrier: last one out lets the main thread continue.
    running_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void ForkJoinPool::parallelFor(int64_t lo, int64_t hi, RangeFn fn, void* ctx) {
  if (hi <= lo) return;
  if (nThreads_ == 1) {
    fn(ctx, lo, hi, 0);
    return;
  }

  // Publish the work item, then open the gate.
  fn_ = fn;
  ctx_ = ctx;
  lo_ = lo;
  hi_ = hi;
  running_.store(nThreads_ - 1, std::memory_order_relaxed);
  gen_.fetch_add(1, std::memory_order_release);

  // Main thread is worker 0.
  int64_t clo, chi;
  chunkOf(lo, hi, 0, nThreads_, clo, chi);
  if (chi > clo) fn(ctx, clo, chi, 0);

  // Wait in the stop barrier for the workers.
  spinUntil([&] { return running_.load(std::memory_order_acquire) == 0; });
}

void NaiveForkJoin::parallelFor(int64_t lo, int64_t hi, RangeFn fn,
                                void* ctx) {
  if (hi <= lo) return;
  if (nThreads_ == 1) {
    fn(ctx, lo, hi, 0);
    return;
  }
  std::vector<std::thread> ts;
  ts.reserve(nThreads_ - 1);
  for (unsigned t = 1; t < nThreads_; ++t) {
    int64_t clo, chi;
    staticChunk(lo, hi, t, nThreads_, clo, chi);
    if (chi > clo) ts.emplace_back([=] { fn(ctx, clo, chi, t); });
  }
  int64_t clo, chi;
  staticChunk(lo, hi, 0, nThreads_, clo, chi);
  if (chi > clo) fn(ctx, clo, chi, 0);
  for (auto& t : ts) t.join();
}

} // namespace mmx::rt
