// Thread-caching memory subsystem (ISSUE 9). Mechanism notes:
//
//   - Every block is [MsHeader 16B][payload]; the header tags the strategy
//     that produced the block plus its size class, so msFree routes each
//     block to its origin even if the selection changed in between.
//   - Size classes are geometric: class c holds blocks whose total size
//     (header included) fits 16<<c bytes, c in [0, 24). Anything larger
//     than 16<<23 (128 MiB) bypasses the cache entirely.
//   - cache strategy: a per-thread magazine (singly-linked free list per
//     class, the link stored in the free payload) backed by a central
//     depot. The depot mutex is touched only when a magazine refills or
//     flushes; a thread frees into its *own* magazine, so cross-thread
//     frees migrate blocks between threads through the depot.
//   - All policy constants (magazine capacity, depot capacity, flush
//     half-emptying) are mirrored verbatim by the emitted-C mmx_ms_*
//     runtime in cemit.cpp: single-threaded runs of the same program must
//     produce byte-equal hits/misses/flushes counters in both backends.
//     Touch one side only in lockstep with the other.
//   - In sanitizer builds freed payloads are poisoned with 0xDD so stale
//     reads through recycled blocks surface as wrong values immediately
//     rather than silently seeing the previous matrix's data.
//
// Immortality: the depot, registries, and selection state are heap
// objects that are deliberately never destroyed, so frees from late
// static destructors and exiting threads stay safe, and cached blocks
// remain reachable (LeakSanitizer-quiet) through them.
#include "runtime/memsys.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>
#include <stdexcept>

#include "support/metrics.hpp"

#if !defined(MMX_MS_POISON)
#if defined(__SANITIZE_ADDRESS__)
#define MMX_MS_POISON 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MMX_MS_POISON 1
#endif
#endif
#endif
#ifndef MMX_MS_POISON
#define MMX_MS_POISON 0
#endif

namespace mmx::rt {

namespace {

// ---- block header -------------------------------------------------------

enum : uint32_t {
  kKindSystem = 1,
  kKindCache = 2,
  kKindArena = 3,
  kKindHuge = 4, // cache-mode block too large to class; exact-sized
};

struct alignas(16) MsHeader {
  uint32_t kind;
  uint32_t cls;   // size class (cache blocks only)
  uint64_t bytes; // requested payload size (poison extent, debugging)
};
static_assert(sizeof(MsHeader) == 16);

// ---- size classes (mirrored by the emitted-C runtime) -------------------

constexpr uint32_t kNumClasses = 24;
constexpr size_t kMaxCachedTotal = size_t{16} << (kNumClasses - 1); // 128 MiB

constexpr size_t capOf(uint32_t cls) { return size_t{16} << cls; }

uint32_t classFor(size_t total) {
  uint32_t c = 0;
  while (capOf(c) < total) ++c;
  return c;
}

/// Magazine capacity: ~256 KiB of blocks per class, clamped to [4, 64].
uint32_t magCap(uint32_t cls) {
  size_t n = (size_t{256} << 10) / capOf(cls);
  if (n < 4) return 4;
  if (n > 64) return 64;
  return static_cast<uint32_t>(n);
}

uint32_t depotCap(uint32_t cls) { return 4 * magCap(cls); }

// ---- telemetry ----------------------------------------------------------

std::atomic<uint64_t> g_hits{0};
std::atomic<uint64_t> g_misses{0};
std::atomic<uint64_t> g_flushes{0};
std::atomic<uint64_t> g_cachedBytes{0};
std::atomic<uint64_t> g_trims{0};

struct GaugeRegistrar {
  GaugeRegistrar() {
    metrics::registerGauge("rt.alloc.cache.hits", [] {
      return g_hits.load(std::memory_order_relaxed);
    });
    metrics::registerGauge("rt.alloc.cache.misses", [] {
      return g_misses.load(std::memory_order_relaxed);
    });
    metrics::registerGauge("rt.alloc.cache.flushes", [] {
      return g_flushes.load(std::memory_order_relaxed);
    });
    metrics::registerGauge("rt.alloc.cache.cachedBytes", [] {
      return g_cachedBytes.load(std::memory_order_relaxed);
    });
    metrics::registerGauge("rt.alloc.trims", [] {
      return g_trims.load(std::memory_order_relaxed);
    });
  }
};
const GaugeRegistrar g_gaugeRegistrar;

// ---- raw system blocks --------------------------------------------------

void* sysNew(size_t bytes) { return ::operator new(bytes, std::align_val_t{16}); }
void sysDelete(void* p) noexcept {
  ::operator delete(p, std::align_val_t{16});
}

// Free-list link, stored in the first word of the (dead) payload.
void*& nextOf(MsHeader* h) { return *reinterpret_cast<void**>(h + 1); }

// ---- central depot ------------------------------------------------------

struct Depot {
  std::mutex mu;
  MsHeader* head[kNumClasses] = {};
  // Atomic so the miss path can peek emptiness without the lock; all
  // writes happen under mu.
  std::atomic<uint32_t> count[kNumClasses] = {};
};

Depot& depot() {
  static Depot* d = new Depot;
  return *d;
}

/// Caller holds depot().mu. Pushes one block; evicts to the system when
/// the class is over capacity.
void depotPushLocked(Depot& d, MsHeader* h) {
  uint32_t cls = h->cls;
  nextOf(h) = d.head[cls];
  d.head[cls] = h;
  uint32_t n = d.count[cls].fetch_add(1, std::memory_order_relaxed) + 1;
  while (n > depotCap(cls)) {
    MsHeader* evict = d.head[cls];
    d.head[cls] = static_cast<MsHeader*>(nextOf(evict));
    n = d.count[cls].fetch_sub(1, std::memory_order_relaxed) - 1;
    g_cachedBytes.fetch_sub(capOf(cls), std::memory_order_relaxed);
    sysDelete(evict);
  }
}

// ---- per-thread magazines -----------------------------------------------

struct ThreadCache {
  MsHeader* head[kNumClasses] = {};
  uint32_t count[kNumClasses] = {};

  ThreadCache();
  ~ThreadCache();
};

struct CacheRegistry {
  std::mutex mu;
  std::vector<ThreadCache*> list;
};

CacheRegistry& cacheRegistry() {
  static CacheRegistry* r = new CacheRegistry;
  return *r;
}

/// Null once the thread's cache has been destroyed (late frees during
/// thread/process teardown go straight to the depot).
thread_local ThreadCache* g_tc = nullptr;

ThreadCache::ThreadCache() {
  CacheRegistry& r = cacheRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.list.push_back(this);
  g_tc = this;
}

ThreadCache::~ThreadCache() {
  g_tc = nullptr;
  Depot& d = depot();
  CacheRegistry& r = cacheRegistry();
  std::scoped_lock lock(r.mu, d.mu);
  for (uint32_t cls = 0; cls < kNumClasses; ++cls) {
    while (head[cls]) {
      MsHeader* h = head[cls];
      head[cls] = static_cast<MsHeader*>(nextOf(h));
      depotPushLocked(d, h);
    }
    count[cls] = 0;
  }
  for (auto it = r.list.begin(); it != r.list.end(); ++it)
    if (*it == this) {
      r.list.erase(it);
      break;
    }
}

ThreadCache* threadCache() {
  thread_local ThreadCache tc;
  return g_tc; // null after ~ThreadCache ran for this thread
}

// ---- cache strategy -----------------------------------------------------

void* cacheAlloc(size_t bytes, size_t total) {
  uint32_t cls = classFor(total);
  size_t cap = capOf(cls);
  ThreadCache* tc = threadCache();
  MsHeader* h = nullptr;
  if (tc && tc->head[cls]) {
    g_hits.fetch_add(1, std::memory_order_relaxed);
    h = tc->head[cls];
    tc->head[cls] = static_cast<MsHeader*>(nextOf(h));
    --tc->count[cls];
    g_cachedBytes.fetch_sub(cap, std::memory_order_relaxed);
  } else {
    g_misses.fetch_add(1, std::memory_order_relaxed);
    Depot& d = depot();
    if (d.count[cls].load(std::memory_order_relaxed) > 0) {
      std::lock_guard<std::mutex> lock(d.mu);
      uint32_t want = tc ? magCap(cls) / 2 : 1;
      while (want > 0 && d.head[cls]) {
        MsHeader* b = d.head[cls];
        d.head[cls] = static_cast<MsHeader*>(nextOf(b));
        d.count[cls].fetch_sub(1, std::memory_order_relaxed);
        --want;
        if (!h) {
          h = b; // first refilled block services this allocation
          g_cachedBytes.fetch_sub(cap, std::memory_order_relaxed);
        } else {
          nextOf(b) = tc->head[cls];
          tc->head[cls] = b;
          ++tc->count[cls];
        }
      }
    }
    if (!h) h = static_cast<MsHeader*>(sysNew(cap));
  }
  h->kind = kKindCache;
  h->cls = cls;
  h->bytes = bytes;
  return h + 1;
}

void cacheFree(MsHeader* h) noexcept {
#if MMX_MS_POISON
  std::memset(h + 1, 0xDD, h->bytes);
#endif
  uint32_t cls = h->cls;
  size_t cap = capOf(cls);
  g_cachedBytes.fetch_add(cap, std::memory_order_relaxed);
  ThreadCache* tc = g_tc;
  if (!tc) {
    Depot& d = depot();
    std::lock_guard<std::mutex> lock(d.mu);
    depotPushLocked(d, h);
    return;
  }
  nextOf(h) = tc->head[cls];
  tc->head[cls] = h;
  ++tc->count[cls];
  uint32_t cap_n = magCap(cls);
  if (tc->count[cls] > cap_n) {
    // Flush the older half to the depot; one flush event per overflow.
    g_flushes.fetch_add(1, std::memory_order_relaxed);
    Depot& d = depot();
    std::lock_guard<std::mutex> lock(d.mu);
    while (tc->count[cls] > cap_n / 2) {
      MsHeader* b = tc->head[cls];
      tc->head[cls] = static_cast<MsHeader*>(nextOf(b));
      --tc->count[cls];
      depotPushLocked(d, b);
    }
  }
}

// ---- arena strategy -----------------------------------------------------

struct ArenaChunk {
  ArenaChunk* next;
  size_t cap; // payload capacity after this header
};
static_assert(sizeof(ArenaChunk) % 16 == 0);

struct ArenaState {
  ArenaChunk* chunks = nullptr;
  char* cur = nullptr;
  size_t avail = 0;
};

struct ArenaRegistry {
  std::mutex mu;
  std::vector<ArenaState*> list;
};

ArenaRegistry& arenaRegistry() {
  static ArenaRegistry* r = new ArenaRegistry;
  return *r;
}

constexpr size_t kArenaChunk = size_t{1} << 20;

thread_local ArenaState* g_arena = nullptr;

ArenaState* arenaState() {
  if (!g_arena) {
    // The state object is immortal (the registry keeps it reachable):
    // msTrim() reclaims the chunks, not the bookkeeping.
    g_arena = new ArenaState;
    ArenaRegistry& r = arenaRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.list.push_back(g_arena);
  }
  return g_arena;
}

void* arenaAlloc(size_t bytes, size_t total) {
  total = (total + 15) & ~size_t{15};
  ArenaState* st = arenaState();
  if (st->avail < total) {
    size_t payload = total > kArenaChunk ? total : kArenaChunk;
    auto* c = static_cast<ArenaChunk*>(sysNew(sizeof(ArenaChunk) + payload));
    c->next = st->chunks;
    c->cap = payload;
    st->chunks = c;
    st->cur = reinterpret_cast<char*>(c + 1);
    st->avail = payload;
  }
  auto* h = reinterpret_cast<MsHeader*>(st->cur);
  st->cur += total;
  st->avail -= total;
  h->kind = kKindArena;
  h->cls = 0;
  h->bytes = bytes;
  return h + 1;
}

// ---- selection ----------------------------------------------------------

struct Selection {
  std::mutex mu;
  std::string requested = "auto";
};

Selection& selection() {
  static Selection* s = new Selection;
  return *s;
}

/// -1 = unresolved; otherwise static_cast<int>(AllocKind).
std::atomic<int> g_active{-1};

bool lookupKind(std::string_view name, AllocKind& out, std::string& err) {
  if (name == "system") {
    out = AllocKind::System;
    return true;
  }
  if (name == "cache") {
    out = AllocKind::Cache;
    return true;
  }
  if (name == "arena") {
    out = AllocKind::Arena;
    return true;
  }
  err = "unknown allocator '" + std::string(name) +
        "' (available: system, cache, arena)";
  return false;
}

/// Resolves the full precedence chain (explicit > $MMX_ALLOC > cache)
/// without touching any state.
bool resolveKind(std::string_view requested, AllocKind& out,
                 std::string& err) {
  if (requested != "auto") return lookupKind(requested, out, err);
  const char* env = std::getenv("MMX_ALLOC");
  if (env && *env && std::strcmp(env, "auto") != 0) {
    if (lookupKind(env, out, err)) return true;
    err = "MMX_ALLOC: " + err;
    return false;
  }
  out = AllocKind::Cache;
  return true;
}

} // namespace

// ---- public API ---------------------------------------------------------

std::vector<std::string> allocatorNames() {
  return {"system", "cache", "arena"};
}

std::string_view allocatorName(AllocKind k) {
  switch (k) {
  case AllocKind::System: return "system";
  case AllocKind::Cache: return "cache";
  case AllocKind::Arena: return "arena";
  }
  return "?";
}

void selectAllocator(std::string_view nameOrAuto) {
  Selection& s = selection();
  std::lock_guard<std::mutex> lock(s.mu);
  if (nameOrAuto == "auto") {
    s.requested = "auto";
    g_active.store(-1, std::memory_order_release); // re-read env lazily
    return;
  }
  AllocKind k;
  std::string err;
  if (!lookupKind(nameOrAuto, k, err)) throw std::invalid_argument(err);
  s.requested = std::string(nameOrAuto);
  g_active.store(static_cast<int>(k), std::memory_order_release);
}

AllocKind activeAllocator() {
  int v = g_active.load(std::memory_order_acquire);
  if (v >= 0) return static_cast<AllocKind>(v);
  Selection& s = selection();
  std::lock_guard<std::mutex> lock(s.mu);
  v = g_active.load(std::memory_order_acquire);
  if (v >= 0) return static_cast<AllocKind>(v);
  AllocKind k;
  std::string err;
  if (!resolveKind(s.requested, k, err)) throw std::runtime_error(err);
  g_active.store(static_cast<int>(k), std::memory_order_release);
  return k;
}

std::string allocatorSelectionError(std::string_view requested) {
  Selection& s = selection();
  std::lock_guard<std::mutex> lock(s.mu);
  AllocKind k;
  std::string err;
  resolveKind(requested, k, err);
  return err;
}

void* msAlloc(size_t bytes) {
  // Requested-size distribution of the caching allocator specifically
  // (rt.alloc.size covers every allocator at the refcount layer): the
  // p95/p99 tail shows which size classes the magazine tiers actually
  // absorb versus punt to the system path.
  static const metrics::Histogram sizeHist =
      metrics::histogram("rt.alloc.magazine.size");
  sizeHist.record(bytes);
  size_t total = bytes + sizeof(MsHeader);
  AllocKind k = activeAllocator();
  if (k == AllocKind::Cache) {
    if (total <= kMaxCachedTotal) return cacheAlloc(bytes, total);
    auto* h = static_cast<MsHeader*>(sysNew(total));
    h->kind = kKindHuge;
    h->cls = 0;
    h->bytes = bytes;
    return h + 1;
  }
  if (k == AllocKind::Arena) return arenaAlloc(bytes, total);
  auto* h = static_cast<MsHeader*>(sysNew(total));
  h->kind = kKindSystem;
  h->cls = 0;
  h->bytes = bytes;
  return h + 1;
}

void msFree(void* p) noexcept {
  if (!p) return;
  MsHeader* h = static_cast<MsHeader*>(p) - 1;
  switch (h->kind) {
  case kKindCache:
    cacheFree(h);
    return;
  case kKindArena:
#if MMX_MS_POISON
    std::memset(h + 1, 0xDD, h->bytes);
#endif
    return; // reclaimed wholesale at msTrim()
  default:
    sysDelete(h);
    return;
  }
}

void msTrim() {
  {
    // Quiescent contract: no concurrent allocation, so walking the other
    // threads' magazines is safe.
    Depot& d = depot();
    CacheRegistry& r = cacheRegistry();
    std::scoped_lock lock(r.mu, d.mu);
    for (ThreadCache* tc : r.list)
      for (uint32_t cls = 0; cls < kNumClasses; ++cls) {
        while (tc->head[cls]) {
          MsHeader* h = tc->head[cls];
          tc->head[cls] = static_cast<MsHeader*>(nextOf(h));
          g_cachedBytes.fetch_sub(capOf(cls), std::memory_order_relaxed);
          sysDelete(h);
        }
        tc->count[cls] = 0;
      }
    for (uint32_t cls = 0; cls < kNumClasses; ++cls) {
      while (d.head[cls]) {
        MsHeader* h = d.head[cls];
        d.head[cls] = static_cast<MsHeader*>(nextOf(h));
        g_cachedBytes.fetch_sub(capOf(cls), std::memory_order_relaxed);
        sysDelete(h);
      }
      d.count[cls].store(0, std::memory_order_relaxed);
    }
  }
  {
    ArenaRegistry& r = arenaRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (ArenaState* st : r.list) {
      while (st->chunks) {
        ArenaChunk* c = st->chunks;
        st->chunks = c->next;
        sysDelete(c);
      }
      st->cur = nullptr;
      st->avail = 0;
    }
  }
  noteAllocTrim();
}

void noteAllocTrim() noexcept {
  g_trims.fetch_add(1, std::memory_order_relaxed);
}

MsCacheStats msCacheStats() noexcept {
  MsCacheStats s;
  s.hits = g_hits.load(std::memory_order_relaxed);
  s.misses = g_misses.load(std::memory_order_relaxed);
  s.flushes = g_flushes.load(std::memory_order_relaxed);
  s.cachedBytes = g_cachedBytes.load(std::memory_order_relaxed);
  return s;
}

namespace {
std::string currentAllocRequest() {
  Selection& s = selection();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.requested;
}
} // namespace

AllocatorOverride::AllocatorOverride(std::string_view name)
    : prev_(currentAllocRequest()) {
  selectAllocator(name);
}

AllocatorOverride::~AllocatorOverride() { selectAllocator(prev_); }

} // namespace mmx::rt
