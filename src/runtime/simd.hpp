// 128-bit SSE vector wrappers (paper §V: "we use Intel's SSE which uses
// 128 [bit] vectors. We fill each vector with 4 32-bit single-precision
// floating point numbers"). The vectorize transformation lowers inner
// loops to these operations; the interpreter executes them 4-wide.
#pragma once

#include <cstdint>
#include <immintrin.h>

namespace mmx::rt {

/// Four packed f32 lanes.
struct Vec4f {
  __m128 v;

  static Vec4f load(const float* p) { return {_mm_loadu_ps(p)}; }
  static Vec4f splat(float x) { return {_mm_set1_ps(x)}; }
  static Vec4f zero() { return {_mm_setzero_ps()}; }
  void store(float* p) const { _mm_storeu_ps(p, v); }

  friend Vec4f operator+(Vec4f a, Vec4f b) { return {_mm_add_ps(a.v, b.v)}; }
  friend Vec4f operator-(Vec4f a, Vec4f b) { return {_mm_sub_ps(a.v, b.v)}; }
  friend Vec4f operator*(Vec4f a, Vec4f b) { return {_mm_mul_ps(a.v, b.v)}; }
  friend Vec4f operator/(Vec4f a, Vec4f b) { return {_mm_div_ps(a.v, b.v)}; }

  Vec4f min(Vec4f b) const { return {_mm_min_ps(v, b.v)}; }
  Vec4f max(Vec4f b) const { return {_mm_max_ps(v, b.v)}; }

  /// this + a*b, rounded as a multiply followed by an add (no FMA
  /// contraction) — the tiled matmul micro-kernel relies on this matching
  /// the scalar reference bit for bit.
  Vec4f mulAdd(Vec4f a, Vec4f b) const {
    return {_mm_add_ps(v, _mm_mul_ps(a.v, b.v))};
  }

  float lane(int i) const {
    alignas(16) float t[4];
    _mm_store_ps(t, v);
    return t[i];
  }

  /// Horizontal sum of the four lanes.
  float hsum() const {
    __m128 s = _mm_hadd_ps(v, v);
    s = _mm_hadd_ps(s, s);
    return _mm_cvtss_f32(s);
  }
  float hmin() const {
    __m128 m = _mm_min_ps(v, _mm_movehl_ps(v, v)); // {01∧23} in low lanes
    m = _mm_min_ss(m, _mm_shuffle_ps(m, m, 0x55));
    return _mm_cvtss_f32(m);
  }
  float hmax() const {
    __m128 m = _mm_max_ps(v, _mm_movehl_ps(v, v));
    m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 0x55));
    return _mm_cvtss_f32(m);
  }
};

/// Four packed i32 lanes.
struct Vec4i {
  __m128i v;

  static Vec4i load(const int32_t* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  static Vec4i splat(int32_t x) { return {_mm_set1_epi32(x)}; }
  static Vec4i zero() { return {_mm_setzero_si128()}; }
  void store(int32_t* p) const {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }

  friend Vec4i operator+(Vec4i a, Vec4i b) {
    return {_mm_add_epi32(a.v, b.v)};
  }
  friend Vec4i operator-(Vec4i a, Vec4i b) {
    return {_mm_sub_epi32(a.v, b.v)};
  }
  friend Vec4i operator*(Vec4i a, Vec4i b) {
    return {_mm_mullo_epi32(a.v, b.v)}; // SSE4.1
  }

  /// this + a*b (wrapping i32 lanes).
  Vec4i mulAdd(Vec4i a, Vec4i b) const {
    return {_mm_add_epi32(v, _mm_mullo_epi32(a.v, b.v))};
  }

  int32_t lane(int i) const {
    alignas(16) int32_t t[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(t), v);
    return t[i];
  }
  int32_t hsum() const { return lane(0) + lane(1) + lane(2) + lane(3); }
};

} // namespace mmx::rt
