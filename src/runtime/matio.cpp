#include "runtime/matio.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace mmx::rt {

static constexpr char kMagic[4] = {'M', 'M', 'X', '1'};

void writeMatrixFile(const std::string& path, const Matrix& m) {
  if (m.null()) throw std::runtime_error("writeMatrixFile: null matrix");
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("writeMatrixFile: cannot open " + path);
  f.write(kMagic, 4);
  uint8_t e = static_cast<uint8_t>(m.elem());
  uint8_t r = static_cast<uint8_t>(m.rank());
  f.write(reinterpret_cast<const char*>(&e), 1);
  f.write(reinterpret_cast<const char*>(&r), 1);
  for (uint32_t d = 0; d < m.rank(); ++d) {
    int64_t dim = m.dim(d);
    f.write(reinterpret_cast<const char*>(&dim), 8);
  }
  f.write(m.data<char>(),
          static_cast<std::streamsize>(m.size() * elemSize(m.elem())));
  if (!f) throw std::runtime_error("writeMatrixFile: write failed: " + path);
}

Matrix readMatrixFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("readMatrixFile: cannot open " + path);
  char magic[4];
  f.read(magic, 4);
  if (!f || std::memcmp(magic, kMagic, 4) != 0)
    throw std::runtime_error("readMatrixFile: bad magic in " + path);
  uint8_t e = 0, r = 0;
  f.read(reinterpret_cast<char*>(&e), 1);
  f.read(reinterpret_cast<char*>(&r), 1);
  if (!f || e > 2 || r == 0 || r > Matrix::kMaxRank)
    throw std::runtime_error("readMatrixFile: bad header in " + path);
  std::vector<int64_t> dims(r);
  for (uint8_t d = 0; d < r; ++d) {
    f.read(reinterpret_cast<char*>(&dims[d]), 8);
    if (!f || dims[d] < 0)
      throw std::runtime_error("readMatrixFile: bad dimension in " + path);
  }
  Matrix m = Matrix::zeros(static_cast<Elem>(e), dims);
  f.read(m.data<char>(),
         static_cast<std::streamsize>(m.size() * elemSize(m.elem())));
  if (!f) throw std::runtime_error("readMatrixFile: truncated data in " + path);
  return m;
}

} // namespace mmx::rt
