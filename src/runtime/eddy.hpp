// C++ oracle for the ocean-eddy trough-scoring algorithm of Fig. 8
// (getTrough / computeArea / scoreTS). Integration tests run the paper's
// extended-C program through the translator+interpreter and compare its
// output against these functions, element for element.
#pragma once

#include <vector>

#include "runtime/matrix.hpp"
#include "runtime/pool.hpp"

namespace mmx::rt {

/// A trough: the subsequence [begin, end] of the series between two local
/// maxima (paper Fig. 8, getTrough).
struct Trough {
  std::vector<float> values;
  int begin = 0;
  int end = 0;
};

/// Walks down then up from index i (getTrough). Precondition: i is at a
/// local maximum or the series start after trimming.
Trough getTrough(const float* ts, int n, int i);

/// Area between the peak-to-peak line and the trough (computeArea):
/// sum over the trough of (line(x) - trough(x)).
float computeArea(const std::vector<float>& areaOfInterest);

/// Scores one time series: every point of each trough receives that
/// trough's area (scoreTS). `out` must have n floats.
void scoreTS(const float* ts, int n, float* out);

/// Maps scoreTS over the third dimension of a rank-3 SSH matrix — the
/// matrixMap(scoreTS, data, [2]) of Fig. 8 — in parallel over (lat, lon).
Matrix scoreAllSeries(Executor& exec, const Matrix& ssh);

} // namespace mmx::rt
