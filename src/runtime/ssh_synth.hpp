// Synthetic sea-surface-height data (substitute for the proprietary
// NASA/AVISO satellite SSH product the paper uses, shape 721x1440x954).
// Travelling Gaussian depressions model mesoscale eddies: each leaves the
// trough signature of Fig. 7 in the per-point time series (two local
// maxima around a local minimum), on top of low-amplitude deterministic
// "ocean restlessness" noise. Everything is seeded and reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/matrix.hpp"

namespace mmx::rt {

/// One synthetic eddy track.
struct EddyTrack {
  float lat0, lon0;   // start centre (grid units)
  float vlat, vlon;   // drift per time step (grid units)
  float radius;       // Gaussian sigma (grid units)
  float depth;        // centre depression (positive; subtracted from SSH)
  int t0, t1;         // active time steps [t0, t1)
};

/// Parameters of the synthetic field.
struct SshParams {
  int64_t nlat = 72;
  int64_t nlon = 144;
  int64_t ntime = 96;
  uint64_t seed = 42;
  int numEddies = 6;
  float noiseAmp = 0.05f; // small "bumps" of Fig. 7
  float baseAmp = 0.3f;   // smooth large-scale swell
};

/// Deterministic pseudo-random eddy tracks for the given parameters.
std::vector<EddyTrack> makeTracks(const SshParams& p);

/// Generates the rank-3 f32 SSH matrix (lat x lon x time).
Matrix synthesizeSsh(const SshParams& p);

/// Ground truth: true where some eddy centre is within `radiusScale`
/// sigmas at time t (rank-3 bool, same shape). Used to sanity-check the
/// detection pipeline end to end.
Matrix eddyGroundTruth(const SshParams& p, float radiusScale = 1.0f);

} // namespace mmx::rt
