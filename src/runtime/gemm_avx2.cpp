// AVX2/FMA micro-kernels for the `avx2fma` backend. This is the only
// translation unit built with -mavx2 -mfma (see CMakeLists.txt),
// mirroring the gemm_avx.cpp pattern; every entry point is guarded by
// detail::haveAvx2Fma(), so the rest of the runtime stays plain SSE4.2
// and the binary still runs on hosts without AVX2.
//
// Rounding contract: unlike the AVX twin-strip kernel, vfmadd231ps fuses
// the multiply and add into one rounding, so results are NOT bit-identical
// to the SSE/scalar mul-then-add on arbitrary data — only on exactly
// representable products and partial sums (the oracle tests construct
// such data). Every accumulator still sees its k terms in ascending
// order, and the edge/naive kernels below use the same fused rounding, so
// the backend is internally consistent and matches the emitted-C FMA core
// bit for bit within a KC panel.
#include "runtime/gemm.hpp"

#include <immintrin.h>

namespace mmx::rt::detail {

bool haveAvx2Fma() {
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
}

void microKernelF32Avx2Fma(const float* Ap0, const float* Ap1,
                           const float* Bp, int64_t kcLen, float* C,
                           int64_t ldc) {
  constexpr int64_t MR = GemmBlocking::MR; // 4 rows per packed strip
  __m256 c0 = _mm256_setzero_ps(), c1 = _mm256_setzero_ps();
  __m256 c2 = _mm256_setzero_ps(), c3 = _mm256_setzero_ps();
  __m256 c4 = _mm256_setzero_ps(), c5 = _mm256_setzero_ps();
  __m256 c6 = _mm256_setzero_ps(), c7 = _mm256_setzero_ps();
  const float* b = Bp;
  for (int64_t k = 0; k < kcLen; ++k) {
    __m256 bv = _mm256_loadu_ps(b);
    b += GemmBlocking::NR;
    const float* a0 = Ap0 + k * MR;
    const float* a1 = Ap1 + k * MR;
    c0 = _mm256_fmadd_ps(_mm256_broadcast_ss(a0 + 0), bv, c0);
    c1 = _mm256_fmadd_ps(_mm256_broadcast_ss(a0 + 1), bv, c1);
    c2 = _mm256_fmadd_ps(_mm256_broadcast_ss(a0 + 2), bv, c2);
    c3 = _mm256_fmadd_ps(_mm256_broadcast_ss(a0 + 3), bv, c3);
    c4 = _mm256_fmadd_ps(_mm256_broadcast_ss(a1 + 0), bv, c4);
    c5 = _mm256_fmadd_ps(_mm256_broadcast_ss(a1 + 1), bv, c5);
    c6 = _mm256_fmadd_ps(_mm256_broadcast_ss(a1 + 2), bv, c6);
    c7 = _mm256_fmadd_ps(_mm256_broadcast_ss(a1 + 3), bv, c7);
  }
  __m256 rows[8] = {c0, c1, c2, c3, c4, c5, c6, c7};
  for (int r = 0; r < 8; ++r) {
    float* Cr = C + r * ldc;
    _mm256_storeu_ps(Cr, _mm256_add_ps(_mm256_loadu_ps(Cr), rows[r]));
  }
  _mm256_zeroupper();
}

void microKernelF32FmaEdge(const float* Ap, const float* Bp, int64_t kcLen,
                           float* C, int64_t ldc, int64_t mr, int64_t nr) {
  constexpr int64_t MR = GemmBlocking::MR;
  constexpr int64_t NR = GemmBlocking::NR;
  // Padded local tile, fused accumulation in ascending-k order (the
  // compiler lowers __builtin_fmaf to vfmadd231ss under -mfma), then only
  // the valid region is added to C — same shape as the SSE edge path.
  float tmp[MR * NR] = {};
  for (int64_t k = 0; k < kcLen; ++k) {
    const float* a = Ap + k * MR;
    const float* b = Bp + k * NR;
    for (int64_t r = 0; r < MR; ++r) {
      float av = a[r];
      for (int64_t c = 0; c < NR; ++c)
        tmp[r * NR + c] = __builtin_fmaf(av, b[c], tmp[r * NR + c]);
    }
  }
  for (int64_t r = 0; r < mr; ++r)
    for (int64_t c = 0; c < nr; ++c) C[r * ldc + c] += tmp[r * NR + c];
}

void gemmNaiveFmaRowsF32(const float* A, const float* B, float* C, int64_t k,
                         int64_t n, int64_t lo, int64_t hi) {
  for (int64_t i = lo; i < hi; ++i)
    for (int64_t kk = 0; kk < k; ++kk) {
      float av = A[i * k + kk];
      const float* Brow = B + kk * n;
      float* Orow = C + i * n;
      for (int64_t j = 0; j < n; ++j)
        Orow[j] = __builtin_fmaf(av, Brow[j], Orow[j]);
    }
}

void gemmNaiveFmaRowsF64(const double* A, const double* B, double* C,
                         int64_t k, int64_t n, int64_t lo, int64_t hi) {
  for (int64_t i = lo; i < hi; ++i)
    for (int64_t kk = 0; kk < k; ++kk) {
      double av = A[i * k + kk];
      const double* Brow = B + kk * n;
      double* Orow = C + i * n;
      for (int64_t j = 0; j < n; ++j)
        Orow[j] = __builtin_fma(av, Brow[j], Orow[j]);
    }
}

} // namespace mmx::rt::detail
