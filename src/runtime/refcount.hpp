// Reference-counting cells (paper §III-B): every allocation carries a
// 4-byte counter in front of the payload; retain/release manage lifetime
// and the block is freed when the count reaches zero. The matrix runtime is
// built on these cells (paper §III-C), and the refcount language extension
// lowers its pointer operations to exactly these calls.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace mmx::rt {

/// Allocator hooks so the cells can be redirected at the allocators in
/// alloc.hpp (used by the §III-C allocator-contention bench).
struct RcAllocHooks {
  void* (*alloc)(size_t) = nullptr; // nullptr => ::operator new
  void (*free)(void*) = nullptr;    // nullptr => ::operator delete
};

/// Installs allocator hooks; pass {} to restore the defaults. Not
/// thread-safe; call before parallel work starts.
void setRcAllocHooks(RcAllocHooks hooks);

/// Allocates `bytes` of payload with a hidden counter initialized to 1.
/// The payload is 16-byte aligned (SSE loads on matrix data).
void* rcAlloc(size_t bytes);

/// Increments the counter. `p` must be a payload from rcAlloc.
void rcRetain(void* p) noexcept;

/// Decrements the counter; frees the block at zero. Returns true if freed.
/// Safe to call with nullptr (no-op).
bool rcRelease(void* p) noexcept;

/// Current count (for tests and the refcount-extension semantics).
int32_t rcCount(const void* p) noexcept;

/// Number of live rcAlloc blocks (test invariant: leak detection).
int64_t rcLiveBlocks() noexcept;

/// Bytes currently held by live rcAlloc blocks (headers included), and the
/// process-lifetime high-water mark. Also exposed as the
/// `rt.alloc.liveBytes` / `rt.alloc.peakBytes` metrics gauges.
uint64_t rcLiveBytes() noexcept;
uint64_t rcPeakBytes() noexcept;

/// Typed smart handle over an rcAlloc'd array of T (trivially destructible
/// types only — the runtime stores scalars). Copying retains, destruction
/// releases: the C++-side mirror of the refcount extension's pointers.
template <class T> class RcPtr {
  static_assert(std::is_trivially_destructible_v<T>);

public:
  RcPtr() = default;
  /// Allocates n elements (zero-initialized). T is a trivially-copyable
  /// scalar, so all-zero-bytes IS value initialization — one memset
  /// instead of the historical element-by-element `T{}` loop.
  static RcPtr allocate(size_t n) {
    RcPtr p = allocateUninit(n);
    std::memset(p.ptr_, 0, n * sizeof(T));
    return p;
  }

  /// Allocates n elements without touching the payload. For buffers the
  /// caller provably writes in full before any read (genarray results the
  /// shape analysis marks fullyWritten, pack buffers): skips the zeroing
  /// pass so first touch happens on the thread that computes each page.
  static RcPtr allocateUninit(size_t n) {
    RcPtr p;
    p.ptr_ = static_cast<T*>(rcAlloc(n * sizeof(T)));
    return p;
  }

  RcPtr(const RcPtr& o) noexcept : ptr_(o.ptr_) {
    if (ptr_) rcRetain(ptr_);
  }
  RcPtr(RcPtr&& o) noexcept : ptr_(o.ptr_) { o.ptr_ = nullptr; }
  RcPtr& operator=(const RcPtr& o) noexcept {
    if (this != &o) {
      if (o.ptr_) rcRetain(o.ptr_);
      if (ptr_) rcRelease(ptr_);
      ptr_ = o.ptr_;
    }
    return *this;
  }
  RcPtr& operator=(RcPtr&& o) noexcept {
    if (this != &o) {
      if (ptr_) rcRelease(ptr_);
      ptr_ = o.ptr_;
      o.ptr_ = nullptr;
    }
    return *this;
  }
  ~RcPtr() {
    if (ptr_) rcRelease(ptr_);
  }

  T* get() const noexcept { return ptr_; }
  T& operator[](size_t i) const noexcept { return ptr_[i]; }
  explicit operator bool() const noexcept { return ptr_ != nullptr; }
  int32_t useCount() const noexcept { return ptr_ ? rcCount(ptr_) : 0; }

private:
  T* ptr_ = nullptr;
};

} // namespace mmx::rt
