#include "runtime/alloc.hpp"

#include <cstdlib>
#include <new>

#include "runtime/memsys.hpp"
#include "support/metrics.hpp"

namespace mmx::rt {

namespace {

// Allocator telemetry (ISSUE 5): the §III-C bench allocators surface their
// contention and growth through the same registry as the rc cells, so an
// --stats-json run shows which backend the traffic went through.
const metrics::Counter& mutexLockCounter() {
  static const metrics::Counter c =
      metrics::counter("rt.alloc.mutex.acquisitions");
  return c;
}
const metrics::Counter& mutexReuseCounter() {
  static const metrics::Counter c = metrics::counter("rt.alloc.mutex.reused");
  return c;
}
const metrics::Counter& arenaChunkCounter() {
  static const metrics::Counter c = metrics::counter("rt.alloc.arena.chunks");
  return c;
}
const metrics::Counter& arenaChunkBytesCounter() {
  static const metrics::Counter c =
      metrics::counter("rt.alloc.arena.chunkBytes");
  return c;
}

int bucketFor(size_t bytes) {
  int b = 0;
  size_t cap = 16;
  while (cap < bytes && b < 23) {
    cap <<= 1;
    ++b;
  }
  return b;
}
size_t bucketBytes(int b) { return size_t{16} << b; }

// cachedBytes gauges so long-running stats stay truthful across trims
// (ISSUE 9 satellite): polled at snapshot time, maintained by the
// allocators' atomics.
struct AllocGaugeRegistrar {
  AllocGaugeRegistrar() {
    metrics::registerGauge("rt.alloc.mutex.cachedBytes", [] {
      return MutexAllocator::instance().cachedBytes();
    });
    metrics::registerGauge("rt.alloc.arena.cachedBytes", [] {
      return ArenaAllocator::instance().cachedBytes();
    });
  }
};
const AllocGaugeRegistrar g_allocGaugeRegistrar;
} // namespace

MutexAllocator& MutexAllocator::instance() {
  static MutexAllocator a;
  return a;
}

MutexAllocator::~MutexAllocator() { trim(); }

void* MutexAllocator::allocate(size_t bytes) {
  // Allocation header: bucket index stored in front (16 bytes to keep the
  // payload SSE-aligned).
  int b = bucketFor(bytes + 16);
  std::lock_guard<std::mutex> lock(mu_);
  ++acquisitions_;
  mutexLockCounter().add();
  Block* blk = freeList_[b];
  if (blk) {
    freeList_[b] = blk->next;
    mutexReuseCounter().add();
    cachedBytes_.fetch_sub(bucketBytes(b), std::memory_order_relaxed);
  } else {
    blk = static_cast<Block*>(::operator new(bucketBytes(b),
                                             std::align_val_t{16}));
  }
  blk->bytes = static_cast<size_t>(b);
  return reinterpret_cast<char*>(blk) + 16;
}

void MutexAllocator::deallocate(void* p) {
  if (!p) return;
  Block* blk = reinterpret_cast<Block*>(static_cast<char*>(p) - 16);
  int b = static_cast<int>(blk->bytes);
  std::lock_guard<std::mutex> lock(mu_);
  ++acquisitions_;
  mutexLockCounter().add();
  blk->next = freeList_[b];
  freeList_[b] = blk;
  cachedBytes_.fetch_add(bucketBytes(b), std::memory_order_relaxed);
}

void MutexAllocator::trim() {
  std::lock_guard<std::mutex> lock(mu_);
  for (int b = 0; b < kBuckets; ++b) {
    Block* blk = freeList_[b];
    while (blk) {
      Block* next = blk->next;
      cachedBytes_.fetch_sub(bucketBytes(b), std::memory_order_relaxed);
      ::operator delete(blk, std::align_val_t{16});
      blk = next;
    }
    freeList_[b] = nullptr;
  }
  noteAllocTrim();
}

ArenaAllocator& ArenaAllocator::instance() {
  static ArenaAllocator a;
  return a;
}

ArenaAllocator::~ArenaAllocator() {
  reset();
  std::lock_guard<std::mutex> lock(registryMu_);
  for (ThreadArena* a : arenas_) delete a;
  arenas_.clear();
}

ArenaAllocator::ThreadArena& ArenaAllocator::localArena() {
  thread_local ThreadArena* arena = nullptr;
  if (!arena) {
    arena = new ThreadArena();
    std::lock_guard<std::mutex> lock(registryMu_);
    arenas_.push_back(arena);
  }
  return *arena;
}

void* ArenaAllocator::allocate(size_t bytes) {
  // 16-byte aligned bump pointer.
  size_t need = (bytes + 15) & ~size_t{15};
  ThreadArena& a = localArena();
  Chunk* c = a.head;
  if (!c || c->used + need > c->cap) {
    size_t cap = need > kChunkSize ? need : kChunkSize;
    c = static_cast<Chunk*>(::operator new(sizeof(Chunk) + cap,
                                           std::align_val_t{16}));
    arenaChunkCounter().add();
    arenaChunkBytesCounter().add(cap);
    heldBytes_.fetch_add(cap, std::memory_order_relaxed);
    c->next = a.head;
    c->used = 0;
    c->cap = cap;
    a.head = c;
  }
  void* p = reinterpret_cast<char*>(c + 1) + c->used;
  c->used += need;
  return p;
}

void ArenaAllocator::deallocate(void*) noexcept {}

void ArenaAllocator::reset() {
  std::lock_guard<std::mutex> lock(registryMu_);
  for (ThreadArena* a : arenas_) {
    Chunk* c = a->head;
    while (c) {
      Chunk* next = c->next;
      heldBytes_.fetch_sub(c->cap, std::memory_order_relaxed);
      ::operator delete(c, std::align_val_t{16});
      c = next;
    }
    a->head = nullptr;
  }
  noteAllocTrim();
}

size_t ArenaAllocator::chunkCount() const {
  auto* self = const_cast<ArenaAllocator*>(this);
  std::lock_guard<std::mutex> lock(self->registryMu_);
  size_t n = 0;
  for (ThreadArena* a : self->arenas_)
    for (Chunk* c = a->head; c; c = c->next) ++n;
  return n;
}

void* mutexAllocHook(size_t bytes) {
  return MutexAllocator::instance().allocate(bytes);
}
void mutexFreeHook(void* p) { MutexAllocator::instance().deallocate(p); }
void* arenaAllocHook(size_t bytes) {
  return ArenaAllocator::instance().allocate(bytes);
}
void arenaFreeHook(void* p) { ArenaAllocator::instance().deallocate(p); }

} // namespace mmx::rt
