// AVX twin-strip micro-kernel for the tiled matmul engine. This is the
// only translation unit built with -mavx (see CMakeLists.txt); every call
// is guarded by detail::haveAvx(), so the rest of the runtime stays plain
// SSE4.2 and the binary still runs on hosts without AVX.
//
// Rounding contract: each of the eight row accumulators sees its k terms
// in ascending order as a vmulps followed by a vaddps. Those instructions
// round exactly like mulps/addps and like the scalar reference, so the
// AVX path is bit-identical to the SSE path and to the naive kernel
// within a KC panel — picking it at runtime never changes a result.
#include "runtime/gemm.hpp"

#include <immintrin.h>

namespace mmx::rt::detail {

bool haveAvx() {
  static const bool ok = __builtin_cpu_supports("avx");
  return ok;
}

void microKernelF32Avx(const float* Ap0, const float* Ap1, const float* Bp,
                       int64_t kcLen, float* C, int64_t ldc) {
  constexpr int64_t MR = GemmBlocking::MR; // 4 rows per packed strip
  __m256 c0 = _mm256_setzero_ps(), c1 = _mm256_setzero_ps();
  __m256 c2 = _mm256_setzero_ps(), c3 = _mm256_setzero_ps();
  __m256 c4 = _mm256_setzero_ps(), c5 = _mm256_setzero_ps();
  __m256 c6 = _mm256_setzero_ps(), c7 = _mm256_setzero_ps();
  const float* b = Bp;
  for (int64_t k = 0; k < kcLen; ++k) {
    __m256 bv = _mm256_loadu_ps(b);
    b += GemmBlocking::NR;
    const float* a0 = Ap0 + k * MR;
    const float* a1 = Ap1 + k * MR;
    c0 = _mm256_add_ps(c0, _mm256_mul_ps(_mm256_broadcast_ss(a0 + 0), bv));
    c1 = _mm256_add_ps(c1, _mm256_mul_ps(_mm256_broadcast_ss(a0 + 1), bv));
    c2 = _mm256_add_ps(c2, _mm256_mul_ps(_mm256_broadcast_ss(a0 + 2), bv));
    c3 = _mm256_add_ps(c3, _mm256_mul_ps(_mm256_broadcast_ss(a0 + 3), bv));
    c4 = _mm256_add_ps(c4, _mm256_mul_ps(_mm256_broadcast_ss(a1 + 0), bv));
    c5 = _mm256_add_ps(c5, _mm256_mul_ps(_mm256_broadcast_ss(a1 + 1), bv));
    c6 = _mm256_add_ps(c6, _mm256_mul_ps(_mm256_broadcast_ss(a1 + 2), bv));
    c7 = _mm256_add_ps(c7, _mm256_mul_ps(_mm256_broadcast_ss(a1 + 3), bv));
  }
  __m256 rows[8] = {c0, c1, c2, c3, c4, c5, c6, c7};
  for (int r = 0; r < 8; ++r) {
    float* Cr = C + r * ldc;
    _mm256_storeu_ps(Cr, _mm256_add_ps(_mm256_loadu_ps(Cr), rows[r]));
  }
  _mm256_zeroupper();
}

} // namespace mmx::rt::detail
