#include "runtime/gemm.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "runtime/kernels.hpp"
#include "runtime/simd.hpp"
#include "support/metrics.hpp"

namespace mmx::rt {

namespace {

using GB = GemmBlocking;

const metrics::Counter& tilesCounter() {
  static const metrics::Counter c = metrics::counter("kernel.matmul.tiles");
  return c;
}
const metrics::Counter& packedBytesCounter() {
  static const metrics::Counter c =
      metrics::counter("kernel.matmul.packedBytes");
  return c;
}

int64_t ceilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

// ---- packing ----------------------------------------------------------
// A panel of `mc` rows x `kcLen` cols (A pre-offset to its top-left) into
// MR-row strips: strip s holds kcLen interleaved columns of rows
// [s*MR, s*MR+MR), zero-padded past mc, so the micro-kernel reads MR
// values per k with stride 1.
template <class T>
void packA(const T* A, int64_t lda, int64_t mc, int64_t kcLen, T* Ap) {
  for (int64_t ir = 0; ir < mc; ir += GB::MR) {
    int64_t mr = std::min(GB::MR, mc - ir);
    // Row-contiguous reads, MR-strided writes (the strip stays in cache;
    // the source rows stream).
    if (mr < GB::MR)
      for (int64_t k = 0; k < kcLen * GB::MR; ++k) Ap[k] = T{};
    for (int64_t r = 0; r < mr; ++r) {
      const T* src = A + (ir + r) * lda;
      for (int64_t k = 0; k < kcLen; ++k) Ap[k * GB::MR + r] = src[k];
    }
    Ap += kcLen * GB::MR;
  }
}

// B panel of `kcLen` rows x `nc` cols (B pre-offset) into NR-column
// strips: strip s holds kcLen rows of columns [s*NR, s*NR+NR),
// zero-padded past nc.
template <class T>
void packB(const T* B, int64_t ldb, int64_t kcLen, int64_t nc, T* Bp) {
  for (int64_t jr = 0; jr < nc; jr += GB::NR) {
    int64_t nr = std::min(GB::NR, nc - jr);
    for (int64_t k = 0; k < kcLen; ++k) {
      const T* src = B + k * ldb + jr;
      int64_t c = 0;
      for (; c < nr; ++c) *Bp++ = src[c];
      for (; c < GB::NR; ++c) *Bp++ = T{};
    }
  }
}

// ---- micro-kernels ----------------------------------------------------
// C[0..mr) x [0..nr) += (MR-strip of Ap) * (NR-strip of Bp), kcLen deep.
// The full 4x8 tile lives in eight Vec4 accumulators; edge tiles compute
// the padded tile in a local buffer with the same mul-then-add rounding,
// then add only the valid region to C.

inline void microKernelF32(const float* Ap, const float* Bp, int64_t kcLen,
                           float* C, int64_t ldc, int64_t mr, int64_t nr) {
  if (mr == GB::MR && nr == GB::NR) {
    Vec4f c00 = Vec4f::zero(), c01 = Vec4f::zero();
    Vec4f c10 = Vec4f::zero(), c11 = Vec4f::zero();
    Vec4f c20 = Vec4f::zero(), c21 = Vec4f::zero();
    Vec4f c30 = Vec4f::zero(), c31 = Vec4f::zero();
    // Unrolled by two k steps (pointer-bumped); each accumulator still
    // sees its madds in ascending-k order, so rounding is unchanged.
    const float* a = Ap;
    const float* b = Bp;
    auto step = [&] {
      Vec4f b0 = Vec4f::load(b);
      Vec4f b1 = Vec4f::load(b + 4);
      Vec4f a0 = Vec4f::splat(a[0]);
      c00 = c00.mulAdd(a0, b0);
      c01 = c01.mulAdd(a0, b1);
      Vec4f a1 = Vec4f::splat(a[1]);
      c10 = c10.mulAdd(a1, b0);
      c11 = c11.mulAdd(a1, b1);
      Vec4f a2 = Vec4f::splat(a[2]);
      c20 = c20.mulAdd(a2, b0);
      c21 = c21.mulAdd(a2, b1);
      Vec4f a3 = Vec4f::splat(a[3]);
      c30 = c30.mulAdd(a3, b0);
      c31 = c31.mulAdd(a3, b1);
      a += GB::MR;
      b += GB::NR;
    };
    int64_t k = 0;
    for (; k + 1 < kcLen; k += 2) {
      step();
      step();
    }
    if (k < kcLen) step();
    (Vec4f::load(C) + c00).store(C);
    (Vec4f::load(C + 4) + c01).store(C + 4);
    float* C1 = C + ldc;
    (Vec4f::load(C1) + c10).store(C1);
    (Vec4f::load(C1 + 4) + c11).store(C1 + 4);
    float* C2 = C + 2 * ldc;
    (Vec4f::load(C2) + c20).store(C2);
    (Vec4f::load(C2 + 4) + c21).store(C2 + 4);
    float* C3 = C + 3 * ldc;
    (Vec4f::load(C3) + c30).store(C3);
    (Vec4f::load(C3 + 4) + c31).store(C3 + 4);
    return;
  }
  float tmp[GB::MR * GB::NR] = {};
  for (int64_t k = 0; k < kcLen; ++k) {
    const float* a = Ap + k * GB::MR;
    const float* b = Bp + k * GB::NR;
    for (int64_t r = 0; r < GB::MR; ++r) {
      float av = a[r];
      for (int64_t c = 0; c < GB::NR; ++c) tmp[r * GB::NR + c] += av * b[c];
    }
  }
  for (int64_t r = 0; r < mr; ++r)
    for (int64_t c = 0; c < nr; ++c) C[r * ldc + c] += tmp[r * GB::NR + c];
}

inline void microKernelI32(const int32_t* Ap, const int32_t* Bp,
                           int64_t kcLen, int32_t* C, int64_t ldc, int64_t mr,
                           int64_t nr) {
  if (mr == GB::MR && nr == GB::NR) {
    Vec4i c00 = Vec4i::zero(), c01 = Vec4i::zero();
    Vec4i c10 = Vec4i::zero(), c11 = Vec4i::zero();
    Vec4i c20 = Vec4i::zero(), c21 = Vec4i::zero();
    Vec4i c30 = Vec4i::zero(), c31 = Vec4i::zero();
    for (int64_t k = 0; k < kcLen; ++k) {
      Vec4i b0 = Vec4i::load(Bp + k * GB::NR);
      Vec4i b1 = Vec4i::load(Bp + k * GB::NR + 4);
      const int32_t* a = Ap + k * GB::MR;
      Vec4i a0 = Vec4i::splat(a[0]);
      c00 = c00.mulAdd(a0, b0);
      c01 = c01.mulAdd(a0, b1);
      Vec4i a1 = Vec4i::splat(a[1]);
      c10 = c10.mulAdd(a1, b0);
      c11 = c11.mulAdd(a1, b1);
      Vec4i a2 = Vec4i::splat(a[2]);
      c20 = c20.mulAdd(a2, b0);
      c21 = c21.mulAdd(a2, b1);
      Vec4i a3 = Vec4i::splat(a[3]);
      c30 = c30.mulAdd(a3, b0);
      c31 = c31.mulAdd(a3, b1);
    }
    (Vec4i::load(C) + c00).store(C);
    (Vec4i::load(C + 4) + c01).store(C + 4);
    int32_t* C1 = C + ldc;
    (Vec4i::load(C1) + c10).store(C1);
    (Vec4i::load(C1 + 4) + c11).store(C1 + 4);
    int32_t* C2 = C + 2 * ldc;
    (Vec4i::load(C2) + c20).store(C2);
    (Vec4i::load(C2 + 4) + c21).store(C2 + 4);
    int32_t* C3 = C + 3 * ldc;
    (Vec4i::load(C3) + c30).store(C3);
    (Vec4i::load(C3 + 4) + c31).store(C3 + 4);
    return;
  }
  int32_t tmp[GB::MR * GB::NR] = {};
  for (int64_t k = 0; k < kcLen; ++k) {
    const int32_t* a = Ap + k * GB::MR;
    const int32_t* b = Bp + k * GB::NR;
    for (int64_t r = 0; r < GB::MR; ++r) {
      int32_t av = a[r];
      for (int64_t c = 0; c < GB::NR; ++c) tmp[r * GB::NR + c] += av * b[c];
    }
  }
  for (int64_t r = 0; r < mr; ++r)
    for (int64_t c = 0; c < nr; ++c) C[r * ldc + c] += tmp[r * GB::NR + c];
}

// ---- panel kernels ----------------------------------------------------
// One packed A panel (mc rows) times one NR-column strip of packed B.
// The f32 panel pairs adjacent MR strips into a twin-strip kernel when
// the requested GemmKernel has one (Avx: bit-identical rounding; Avx2Fma:
// fused rounding) and falls back to the matching single-strip kernel for
// the remainder and edges.

void panelF32(const float* Ap, int64_t kcLen, int64_t mc, const float* Bs,
              float* C, int64_t ldc, int64_t nr, GemmKernel kern) {
  const int64_t stripLen = GB::MR * kcLen;
  int64_t ir = 0;
  if (nr == GB::NR && kern != GemmKernel::Sse) {
    auto* twin = kern == GemmKernel::Avx2Fma ? detail::microKernelF32Avx2Fma
                                             : detail::microKernelF32Avx;
    for (; ir + 2 * GB::MR <= mc; ir += 2 * GB::MR) {
      const float* strip = Ap + (ir / GB::MR) * stripLen;
      twin(strip, strip + stripLen, Bs, kcLen, C + ir * ldc, ldc);
    }
  }
  for (; ir < mc; ir += GB::MR) {
    const float* strip = Ap + (ir / GB::MR) * stripLen;
    int64_t mr = std::min(GB::MR, mc - ir);
    if (kern == GemmKernel::Avx2Fma)
      detail::microKernelF32FmaEdge(strip, Bs, kcLen, C + ir * ldc, ldc, mr,
                                    nr);
    else
      microKernelF32(strip, Bs, kcLen, C + ir * ldc, ldc, mr, nr);
  }
}

void panelI32(const int32_t* Ap, int64_t kcLen, int64_t mc,
              const int32_t* Bs, int32_t* C, int64_t ldc, int64_t nr) {
  const int64_t stripLen = GB::MR * kcLen;
  for (int64_t ir = 0; ir < mc; ir += GB::MR)
    microKernelI32(Ap + (ir / GB::MR) * stripLen, Bs, kcLen, C + ir * ldc,
                   ldc, std::min(GB::MR, mc - ir), nr);
}

// ---- pack-buffer slabs ------------------------------------------------
// Reusable per-thread scratch for the packed A/B panels (ISSUE 9): the
// blocked driver used to `new T[]` both packs on every call, which under
// matmul churn dominated the allocator and re-faulted the pages each
// time. The slab grows monotonically and is reused by every subsequent
// GEMM on the calling thread (gemmBlocked is not reentrant per thread).
// Contents are never read before being packed, so reuse is bit-invisible.
template <class T> T* packSlab(size_t elems) {
  struct Slab {
    std::unique_ptr<T[]> buf;
    size_t cap = 0;
  };
  thread_local Slab s;
  if (s.cap < elems) {
    s.buf.reset(new T[elems]);
    s.cap = elems;
  }
  return s.buf.get();
}

// ---- blocked driver ---------------------------------------------------
// For each KC-deep panel: (1) pack every A row-panel and B col-panel once,
// in parallel; (2) walk the (row-panel x col-panel) tile grid in parallel,
// each task running the packed micro-kernels over its MC x NC tile of C.
// C starts zeroed, so every panel accumulates.
template <class T, class Panel>
void gemmBlocked(Executor& exec, const T* A, const T* B, T* C, int64_t m,
                 int64_t k, int64_t n, Panel panel) {
  const int64_t numIc = ceilDiv(m, GB::MC), numJc = ceilDiv(n, GB::NC);
  const int64_t aTileStride = GB::MC * GB::KC; // MC is a multiple of MR
  const int64_t bTileStride = GB::NC * GB::KC; // NC is a multiple of NR
  const size_t aElems = static_cast<size_t>(numIc) * aTileStride;
  T* slab = packSlab<T>(aElems + static_cast<size_t>(numJc) * bTileStride);
  T* const Apack = slab;
  T* const Bpack = slab + aElems;

  // Per-KC-block pack latency (ISSUE 10): the pack pass is the memory-
  // bound phase, so its distribution surfaces bandwidth interference that
  // the compute-dominated kernel.matmul.latency_ns total hides.
  static const metrics::Histogram packHist =
      metrics::histogram("kernel.matmul.pack_ns");

  for (int64_t kc = 0; kc < k; kc += GB::KC) {
    const int64_t kcLen = std::min(GB::KC, k - kc);

    // Pack pass: one task per panel; A panels first, then B panels.
    uint64_t packStart = metrics::enabled() ? metrics::nowNs() : 0;
    exec.run(0, numIc + numJc, /*minGrain=*/2,
             [&](int64_t lo, int64_t hi, unsigned) {
               for (int64_t t = lo; t < hi; ++t) {
                 if (t < numIc) {
                   int64_t ic = t * GB::MC;
                   packA(A + ic * k + kc, k, std::min(GB::MC, m - ic), kcLen,
                         Apack + t * aTileStride);
                 } else {
                   int64_t jc = (t - numIc) * GB::NC;
                   packB(B + kc * n + jc, n, kcLen, std::min(GB::NC, n - jc),
                         Bpack + (t - numIc) * bTileStride);
                 }
               }
             });
    if (metrics::enabled())
      packHist.record(metrics::nowNs() - packStart);
    packedBytesCounter().add(
        static_cast<uint64_t>((ceilDiv(m, GB::MR) * GB::MR +
                               ceilDiv(n, GB::NR) * GB::NR) *
                              kcLen * sizeof(T)));

    // Compute pass over the 2D tile grid (ic-major so consecutive tasks
    // share a packed A panel).
    exec.run(0, numIc * numJc, /*minGrain=*/2,
             [&](int64_t lo, int64_t hi, unsigned) {
               for (int64_t t = lo; t < hi; ++t) {
                 int64_t icT = t / numJc, jcT = t % numJc;
                 int64_t ic = icT * GB::MC, jc = jcT * GB::NC;
                 int64_t mc = std::min(GB::MC, m - ic);
                 int64_t nc = std::min(GB::NC, n - jc);
                 const T* Ap = Apack + icT * aTileStride;
                 const T* Bp = Bpack + jcT * bTileStride;
                 for (int64_t jr = 0; jr < nc; jr += GB::NR) {
                   int64_t nr = std::min(GB::NR, nc - jr);
                   const T* Bs = Bp + (jr / GB::NR) * (GB::NR * kcLen);
                   panel(Ap, kcLen, mc, Bs, C + ic * n + jc + jr, n, nr);
                 }
               }
             });
    tilesCounter().add(static_cast<uint64_t>(numIc * numJc));
  }
}

/// Minimum madds per parallel dispatch of the naive kernel; below this a
/// fork costs more than the multiply (bench_forkjoin).
constexpr int64_t kNaiveGrainWork = 16384;

} // namespace

int64_t detail::naiveGrainRows(int64_t k, int64_t n) {
  int64_t rowWork = std::max<int64_t>(1, k * n);
  return kNaiveGrainWork / rowWork + 1;
}

void checkMatmulArgs(const Matrix& a, const Matrix& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.elem() != b.elem())
    throw std::invalid_argument("matmul: two rank-2 matrices of one kind");
  if (a.dim(1) != b.dim(0))
    throw std::invalid_argument("matmul: inner dimensions disagree");
  if (a.elem() == Elem::Bool)
    throw std::invalid_argument("matmul: bool matrices not supported");
}

void gemmNaiveF32(Executor& exec, const float* A, const float* B, float* C,
                  int64_t m, int64_t k, int64_t n) {
  exec.run(0, m, detail::naiveGrainRows(k, n), [&](int64_t lo, int64_t hi, unsigned) {
    for (int64_t i = lo; i < hi; ++i)
      for (int64_t kk = 0; kk < k; ++kk) {
        float av = A[i * k + kk];
        const float* Brow = B + kk * n;
        float* Orow = C + i * n;
        for (int64_t j = 0; j < n; ++j) Orow[j] += av * Brow[j];
      }
  });
}

void gemmNaiveI32(Executor& exec, const int32_t* A, const int32_t* B,
                  int32_t* C, int64_t m, int64_t k, int64_t n) {
  exec.run(0, m, detail::naiveGrainRows(k, n), [&](int64_t lo, int64_t hi, unsigned) {
    for (int64_t i = lo; i < hi; ++i)
      for (int64_t kk = 0; kk < k; ++kk) {
        int32_t av = A[i * k + kk];
        for (int64_t j = 0; j < n; ++j)
          C[i * n + j] += av * B[kk * n + j];
      }
  });
}

void gemmNaiveF64(Executor& exec, const double* A, const double* B, double* C,
                  int64_t m, int64_t k, int64_t n) {
  exec.run(0, m, detail::naiveGrainRows(k, n), [&](int64_t lo, int64_t hi, unsigned) {
    for (int64_t i = lo; i < hi; ++i)
      for (int64_t kk = 0; kk < k; ++kk) {
        double av = A[i * k + kk];
        const double* Brow = B + kk * n;
        double* Orow = C + i * n;
        for (int64_t j = 0; j < n; ++j) Orow[j] += av * Brow[j];
      }
  });
}

void gemmTiledF32(Executor& exec, const float* A, const float* B, float* C,
                  int64_t m, int64_t k, int64_t n, GemmKernel kernel) {
  gemmBlocked<float>(exec, A, B, C, m, k, n,
                     [kernel](const float* Ap, int64_t kcLen, int64_t mc,
                              const float* Bs, float* Cp, int64_t ldc,
                              int64_t nr) {
                       panelF32(Ap, kcLen, mc, Bs, Cp, ldc, nr, kernel);
                     });
}

void gemmTiledI32(Executor& exec, const int32_t* A, const int32_t* B,
                  int32_t* C, int64_t m, int64_t k, int64_t n) {
  gemmBlocked<int32_t>(exec, A, B, C, m, k, n, panelI32);
}

Matrix matmulNaive(Executor& exec, const Matrix& a, const Matrix& b) {
  checkMatmulArgs(a, b);
  int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Matrix out = Matrix::zeros(a.elem(), {m, n});
  if (a.elem() == Elem::F32)
    gemmNaiveF32(exec, a.f32(), b.f32(), out.f32(), m, k, n);
  else
    gemmNaiveI32(exec, a.i32(), b.i32(), out.i32(), m, k, n);
  return out;
}

Matrix matmulTiled(Executor& exec, const Matrix& a, const Matrix& b) {
  checkMatmulArgs(a, b);
  int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Matrix out = Matrix::zeros(a.elem(), {m, n});
  if (a.elem() == Elem::F32)
    gemmTiledF32(exec, a.f32(), b.f32(), out.f32(), m, k, n,
                 detail::haveAvx() ? GemmKernel::Avx : GemmKernel::Sse);
  else
    gemmTiledI32(exec, a.i32(), b.i32(), out.i32(), m, k, n);
  return out;
}

// rt::matmul lives in backend.cpp: it dispatches through the process-wide
// kernel backend registry (ISSUE 7).

} // namespace mmx::rt
