// Enhanced fork-join thread pool (paper §III-C, after SAC's multithreaded
// runtime): worker threads are spawned once at startup and parked in a
// spin gate; a parallel region releases all of them with a single
// generation-counter store, each executes its static chunk of the
// iteration space, passes through a stop barrier, and re-parks. The main
// thread executes its own chunk and waits in the stop barrier.
//
// NaiveForkJoin is the baseline the paper argues against: it spawns and
// joins fresh threads for every parallel region (bench_forkjoin measures
// the difference).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

namespace mmx::rt {

/// Loop body: [lo, hi) sub-range plus the executing worker id
/// (0 = main thread, 1..N-1 = pool workers).
using RangeFn = void (*)(void* ctx, int64_t lo, int64_t hi, unsigned tid);

/// Abstract fork-join executor so kernels and the interpreter can run on
/// either implementation.
class Executor {
public:
  virtual ~Executor() = default;
  virtual unsigned threads() const = 0;
  /// Stable implementation name ("serial", "forkjoin", "naive") used by
  /// sweeps and reports to label results uniformly.
  virtual std::string_view name() const = 0;
  /// Runs `fn` over [lo, hi) split into one static chunk per thread
  /// (the with-loop partitioning of §III-C).
  virtual void parallelFor(int64_t lo, int64_t hi, RangeFn fn, void* ctx) = 0;

  /// Grain-aware dispatch: ranges shorter than `minGrain` iterations run
  /// inline on the calling thread (tid 0), skipping the pool's
  /// release/park round-trip that dominates tiny regions
  /// (bench_forkjoin). Counted as `pool.inlinedDispatches`. Named
  /// distinctly from parallelFor so subclass overrides don't hide it.
  void parallelForGrain(int64_t lo, int64_t hi, int64_t minGrain, RangeFn fn,
                        void* ctx);

  /// Lambda convenience (Fn: void(int64_t lo, int64_t hi, unsigned tid)).
  template <class Fn> void run(int64_t lo, int64_t hi, Fn&& fn) {
    auto thunk = [](void* c, int64_t l, int64_t h, unsigned t) {
      (*static_cast<Fn*>(c))(l, h, t);
    };
    parallelFor(lo, hi, thunk, &fn);
  }

  /// Grain-aware lambda convenience.
  template <class Fn>
  void run(int64_t lo, int64_t hi, int64_t minGrain, Fn&& fn) {
    auto thunk = [](void* c, int64_t l, int64_t h, unsigned t) {
      (*static_cast<Fn*>(c))(l, h, t);
    };
    parallelForGrain(lo, hi, minGrain, thunk, &fn);
  }
};

/// Serial executor (threads() == 1); baseline for scaling sweeps.
class SerialExecutor final : public Executor {
public:
  unsigned threads() const override { return 1; }
  std::string_view name() const override { return "serial"; }
  void parallelFor(int64_t lo, int64_t hi, RangeFn fn, void* ctx) override;
};

/// The enhanced fork-join pool.
class ForkJoinPool final : public Executor {
public:
  /// Spawns nThreads-1 workers (the main thread is worker 0). nThreads
  /// must be >= 1. Workers spin briefly then yield — correct (if slower)
  /// on machines with fewer cores than threads.
  explicit ForkJoinPool(unsigned nThreads);
  ~ForkJoinPool() override;

  ForkJoinPool(const ForkJoinPool&) = delete;
  ForkJoinPool& operator=(const ForkJoinPool&) = delete;

  unsigned threads() const override { return nThreads_; }
  std::string_view name() const override { return "forkjoin"; }
  void parallelFor(int64_t lo, int64_t hi, RangeFn fn, void* ctx) override;

  /// Number of release/park cycles each worker has completed (tests).
  uint64_t generation() const {
    return gen_.load(std::memory_order_relaxed);
  }

private:
  void workerLoop(unsigned tid);
  static void chunkOf(int64_t lo, int64_t hi, unsigned tid, unsigned n,
                      int64_t& clo, int64_t& chi);

  unsigned nThreads_;
  std::vector<std::thread> workers_;

  // Start gate: workers spin until gen_ advances past their last seen
  // value. Work descriptor is published before the gen_ store (release).
  std::atomic<uint64_t> gen_{0};
  std::atomic<bool> shutdown_{false};

  // Current work item.
  RangeFn fn_ = nullptr;
  void* ctx_ = nullptr;
  int64_t lo_ = 0, hi_ = 0;

  // Stop barrier: count of workers still running the current region.
  std::atomic<unsigned> running_{0};
};

/// Baseline: fork/join per region with fresh std::threads.
class NaiveForkJoin final : public Executor {
public:
  explicit NaiveForkJoin(unsigned nThreads) : nThreads_(nThreads ? nThreads : 1) {}
  unsigned threads() const override { return nThreads_; }
  std::string_view name() const override { return "naive"; }
  void parallelFor(int64_t lo, int64_t hi, RangeFn fn, void* ctx) override;

private:
  unsigned nThreads_;
};

/// The executor implementations selectable by sweeps and the CLI.
enum class ExecutorKind { Serial, ForkJoin, Naive };

/// "serial" / "forkjoin" / "naive" (matches Executor::name()).
std::string_view toString(ExecutorKind k);
std::optional<ExecutorKind> executorKindFromString(std::string_view s);

/// Uniform construction point: interp drivers, benches, tests, and sweeps
/// select executors through this factory instead of naming concrete
/// classes. Serial ignores `threads`; ForkJoin/Naive clamp 0 to 1.
std::unique_ptr<Executor> makeExecutor(ExecutorKind k, unsigned threads);

} // namespace mmx::rt
