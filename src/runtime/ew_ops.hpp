// Element-wise operator primitives shared by the generic kernels
// (kernels.cpp) and the backend strip implementations (backend.cpp):
// scalar apply, 4-wide SSE apply, SIMD support predicates, and fold
// identities. Header-only so both TUs agree on rounding by construction.
//
// Not included by the -mavx/-mavx2 translation units: everything here is
// plain SSE4.2 and must stay runnable on the baseline ISA.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <type_traits>

#include "runtime/kernels.hpp"
#include "runtime/simd.hpp"

namespace mmx::rt::detail {

template <class T> inline T applyBin(BinOp op, T a, T b) {
  switch (op) {
    case BinOp::Add: return a + b;
    case BinOp::Sub: return a - b;
    case BinOp::Mul: return a * b;
    case BinOp::Div: return a / b;
    case BinOp::Mod:
      if constexpr (std::is_integral_v<T>) return a % b;
      else return std::fmod(a, b);
    case BinOp::Min: return a < b ? a : b;
    case BinOp::Max: return a > b ? a : b;
  }
  return T{};
}

inline Vec4f applyBinV(BinOp op, Vec4f a, Vec4f b) {
  switch (op) {
    case BinOp::Add: return a + b;
    case BinOp::Sub: return a - b;
    case BinOp::Mul: return a * b;
    case BinOp::Div: return a / b;
    case BinOp::Min: return a.min(b);
    case BinOp::Max: return a.max(b);
    case BinOp::Mod: break; // no SSE mod; caller falls back to scalar
  }
  return Vec4f::zero();
}

inline Vec4i applyBinVI(BinOp op, Vec4i a, Vec4i b) {
  switch (op) {
    case BinOp::Add: return a + b;
    case BinOp::Sub: return a - b;
    case BinOp::Mul: return a * b;
    default: break; // others fall back to scalar
  }
  return Vec4i::zero();
}

inline bool simdSupportsF(BinOp op) { return op != BinOp::Mod; }
inline bool simdSupportsI(BinOp op) {
  return op == BinOp::Add || op == BinOp::Sub || op == BinOp::Mul;
}

/// Identity element so partial accumulators don't double-apply the fold's
/// base value (it must be folded in exactly once). Only the associative
/// fold operators the extension accepts are listed.
template <class T> inline T identityOf(BinOp op) {
  switch (op) {
    case BinOp::Add: return T{0};
    case BinOp::Mul: return T{1};
    case BinOp::Min: return std::numeric_limits<T>::max();
    case BinOp::Max: return std::numeric_limits<T>::lowest();
    default:
      throw std::invalid_argument("reduce: fold operator must be associative "
                                  "(+, *, min, max)");
  }
}

} // namespace mmx::rt::detail
