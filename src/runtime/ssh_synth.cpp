#include "runtime/ssh_synth.hpp"

#include <algorithm>
#include <cmath>

namespace mmx::rt {

namespace {
/// SplitMix64: small, seedable, reproducible across platforms.
struct SplitMix {
  uint64_t s;
  uint64_t next() {
    s += 0x9e3779b97f4a7c15ull;
    uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  /// Uniform float in [0,1).
  float uni() { return static_cast<float>(next() >> 40) * 0x1p-24f; }
  float range(float lo, float hi) { return lo + (hi - lo) * uni(); }
};

/// Deterministic per-cell noise (hash of coordinates + seed).
float cellNoise(uint64_t seed, int64_t i, int64_t j, int64_t t) {
  SplitMix m{seed ^ (static_cast<uint64_t>(i) * 0x100000001b3ull) ^
             (static_cast<uint64_t>(j) * 0x9e3779b1ull) ^
             (static_cast<uint64_t>(t) * 0x85ebca6bull)};
  return m.uni() * 2.f - 1.f;
}
} // namespace

std::vector<EddyTrack> makeTracks(const SshParams& p) {
  SplitMix rng{p.seed};
  std::vector<EddyTrack> tracks;
  tracks.reserve(p.numEddies);
  for (int e = 0; e < p.numEddies; ++e) {
    EddyTrack t;
    t.lat0 = rng.range(0.15f, 0.85f) * p.nlat;
    t.lon0 = rng.range(0.15f, 0.85f) * p.nlon;
    t.vlat = rng.range(-0.08f, 0.08f);
    t.vlon = rng.range(-0.15f, 0.15f);
    t.radius = rng.range(2.0f, 4.0f);
    t.depth = rng.range(0.8f, 1.6f);
    int span = static_cast<int>(rng.range(0.4f, 0.8f) * p.ntime);
    t.t0 = static_cast<int>(rng.range(0.f, 0.2f) * p.ntime);
    t.t1 = std::min<int>(t.t0 + span, static_cast<int>(p.ntime));
    tracks.push_back(t);
  }
  return tracks;
}

Matrix synthesizeSsh(const SshParams& p) {
  Matrix m = Matrix::zeros(Elem::F32, {p.nlat, p.nlon, p.ntime});
  auto tracks = makeTracks(p);
  float* d = m.f32();
  const float twoPi = 6.2831853f;

  for (int64_t i = 0; i < p.nlat; ++i) {
    for (int64_t j = 0; j < p.nlon; ++j) {
      float* series = d + (i * p.nlon + j) * p.ntime;
      for (int64_t t = 0; t < p.ntime; ++t) {
        // Large-scale swell + small bumps.
        float v = p.baseAmp *
                      std::sin(twoPi * (0.013f * i + 0.007f * j + 0.002f * t)) +
                  p.noiseAmp * cellNoise(p.seed, i, j, t);
        // Eddy depressions.
        for (const EddyTrack& e : tracks) {
          if (t < e.t0 || t >= e.t1) continue;
          float clat = e.lat0 + e.vlat * (t - e.t0);
          float clon = e.lon0 + e.vlon * (t - e.t0);
          float di = i - clat, dj = j - clon;
          float r2 = (di * di + dj * dj) / (2.f * e.radius * e.radius);
          if (r2 < 9.f) v -= e.depth * std::exp(-r2);
        }
        series[t] = v;
      }
    }
  }
  return m;
}

Matrix eddyGroundTruth(const SshParams& p, float radiusScale) {
  Matrix m = Matrix::zeros(Elem::Bool, {p.nlat, p.nlon, p.ntime});
  auto tracks = makeTracks(p);
  uint8_t* d = m.boolean();
  for (int64_t i = 0; i < p.nlat; ++i)
    for (int64_t j = 0; j < p.nlon; ++j)
      for (int64_t t = 0; t < p.ntime; ++t) {
        bool hit = false;
        for (const EddyTrack& e : tracks) {
          if (t < e.t0 || t >= e.t1) continue;
          float clat = e.lat0 + e.vlat * (t - e.t0);
          float clon = e.lon0 + e.vlon * (t - e.t0);
          float di = i - clat, dj = j - clon;
          float r = radiusScale * e.radius;
          if (di * di + dj * dj <= r * r) { hit = true; break; }
        }
        d[(i * p.nlon + j) * p.ntime + t] = hit;
      }
  return m;
}

} // namespace mmx::rt
