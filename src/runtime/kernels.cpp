#include "runtime/kernels.hpp"

#include <stdexcept>
#include <type_traits>
#include <vector>

#include "runtime/backend.hpp"
#include "runtime/ew_ops.hpp"
#include "runtime/simd.hpp"

namespace mmx::rt {

namespace {

void requireSameShape(const Matrix& a, const Matrix& b, const char* what) {
  if (a.elem() != b.elem() || a.rank() != b.rank())
    throw std::invalid_argument(std::string(what) + ": kind/rank mismatch");
  for (uint32_t d = 0; d < a.rank(); ++d)
    if (a.dim(d) != b.dim(d))
      throw std::invalid_argument(std::string(what) + ": shape mismatch");
}

template <class T> bool applyCmp(CmpOp op, T a, T b) {
  switch (op) {
    case CmpOp::Lt: return a < b;
    case CmpOp::Le: return a <= b;
    case CmpOp::Gt: return a > b;
    case CmpOp::Ge: return a >= b;
    case CmpOp::Eq: return a == b;
    case CmpOp::Ne: return a != b;
  }
  return false;
}

// Generic element-wise driver: b may be null (scalar broadcast via sf/si).
// The SIMD strips come from the active kernel backend; `simd = false`
// forces the plain scalar loops below (the benches' ablation knob).
struct EwCtx {
  BinOp op;
  const Matrix* a;
  const Matrix* b;
  Matrix* out;
  float sf;
  int32_t si;
  bool simd;
  const KernelBackend* be;
};

void ewRangeF(EwCtx& c, int64_t lo, int64_t hi) {
  const float* a = c.a->f32();
  const float* b = c.b ? c.b->f32() : nullptr;
  float* o = c.out->f32();
  if (c.simd) {
    c.be->ewStripF32(c.op, a, b, c.sf, o, lo, hi);
    return;
  }
  if (b) {
    for (int64_t i = lo; i < hi; ++i) o[i] = detail::applyBin(c.op, a[i], b[i]);
  } else {
    for (int64_t i = lo; i < hi; ++i) o[i] = detail::applyBin(c.op, a[i], c.sf);
  }
}

void ewRangeI(EwCtx& c, int64_t lo, int64_t hi) {
  const int32_t* a = c.a->i32();
  const int32_t* b = c.b ? c.b->i32() : nullptr;
  int32_t* o = c.out->i32();
  if (c.simd) {
    c.be->ewStripI32(c.op, a, b, c.si, o, lo, hi);
    return;
  }
  if (b) {
    for (int64_t i = lo; i < hi; ++i) o[i] = detail::applyBin(c.op, a[i], b[i]);
  } else {
    for (int64_t i = lo; i < hi; ++i) o[i] = detail::applyBin(c.op, a[i], c.si);
  }
}

/// Minimum elements per parallel dispatch: below this the pool's
/// release/park round-trip costs more than the loop (bench_forkjoin), so
/// grain-aware dispatch runs the body inline on the calling thread.
constexpr int64_t kEwGrain = 4096;

void ewDispatch(Executor& exec, EwCtx& c) {
  int64_t n = c.a->size();
  exec.run(0, n, kEwGrain, [&c](int64_t lo, int64_t hi, unsigned) {
    if (c.a->elem() == Elem::F32)
      ewRangeF(c, lo, hi);
    else
      ewRangeI(c, lo, hi);
  });
}

void ensureOut(Matrix& out, Elem e, const Matrix& like) {
  if (out.null() || out.elem() != e || out.size() != like.size() ||
      out.rank() != like.rank())
    out = Matrix::zeros(e, like.dims());
}

} // namespace

template <class Rhs>
void ew(Executor& exec, BinOp op, const Matrix& a, const Rhs& b, Matrix& out,
        bool simd) {
  const KernelBackend* be = &activeBackend();
  if constexpr (std::is_same_v<Rhs, Matrix>) {
    requireSameShape(a, b, "ewBinary");
    if (a.elem() == Elem::Bool)
      throw std::invalid_argument("ewBinary: arithmetic on bool matrix");
    ensureOut(out, a.elem(), a);
    EwCtx c{op, &a, &b, &out, 0.f, 0, simd, be};
    ewDispatch(exec, c);
  } else if constexpr (std::is_same_v<Rhs, float>) {
    if (a.elem() != Elem::F32)
      throw std::invalid_argument("ewBinaryScalarF: f32 matrix required");
    ensureOut(out, Elem::F32, a);
    EwCtx c{op, &a, nullptr, &out, b, 0, simd, be};
    ewDispatch(exec, c);
  } else {
    static_assert(std::is_same_v<Rhs, int32_t>,
                  "ew: Rhs must be Matrix, float, or int32_t");
    if (a.elem() != Elem::I32)
      throw std::invalid_argument("ewBinaryScalarI: i32 matrix required");
    ensureOut(out, Elem::I32, a);
    EwCtx c{op, &a, nullptr, &out, 0.f, b, simd, be};
    ewDispatch(exec, c);
  }
}

template void ew<Matrix>(Executor&, BinOp, const Matrix&, const Matrix&,
                         Matrix&, bool);
template void ew<float>(Executor&, BinOp, const Matrix&, const float&,
                        Matrix&, bool);
template void ew<int32_t>(Executor&, BinOp, const Matrix&, const int32_t&,
                          Matrix&, bool);

// Deprecated shims (one PR, per ISSUE 7): the historical three-way entry
// points forward to the templated ew<>.

void ewBinary(Executor& exec, BinOp op, const Matrix& a, const Matrix& b,
              Matrix& out, bool simd) {
  ew(exec, op, a, b, out, simd);
}

void ewBinaryScalarF(Executor& exec, BinOp op, const Matrix& a, float s,
                     Matrix& out, bool simd) {
  ew(exec, op, a, s, out, simd);
}

void ewBinaryScalarI(Executor& exec, BinOp op, const Matrix& a, int32_t s,
                     Matrix& out, bool simd) {
  ew(exec, op, a, s, out, simd);
}

namespace {
struct CmpCtx {
  CmpOp op;
  const Matrix* a;
  const Matrix* b;
  Matrix* out;
  float sf;
  int32_t si;
};

void cmpRange(CmpCtx& c, int64_t lo, int64_t hi) {
  uint8_t* o = c.out->boolean();
  if (c.a->elem() == Elem::F32) {
    const float* a = c.a->f32();
    if (c.b) {
      const float* b = c.b->f32();
      for (int64_t i = lo; i < hi; ++i) o[i] = applyCmp(c.op, a[i], b[i]);
    } else {
      for (int64_t i = lo; i < hi; ++i) o[i] = applyCmp(c.op, a[i], c.sf);
    }
  } else {
    const int32_t* a = c.a->i32();
    if (c.b) {
      const int32_t* b = c.b->i32();
      for (int64_t i = lo; i < hi; ++i) o[i] = applyCmp(c.op, a[i], b[i]);
    } else {
      for (int64_t i = lo; i < hi; ++i) o[i] = applyCmp(c.op, a[i], c.si);
    }
  }
}
} // namespace

void ewCompare(Executor& exec, CmpOp op, const Matrix& a, const Matrix& b,
               Matrix& out) {
  requireSameShape(a, b, "ewCompare");
  ensureOut(out, Elem::Bool, a);
  CmpCtx c{op, &a, &b, &out, 0.f, 0};
  exec.run(0, a.size(), kEwGrain,
           [&c](int64_t lo, int64_t hi, unsigned) { cmpRange(c, lo, hi); });
}

void ewCompareScalarF(Executor& exec, CmpOp op, const Matrix& a, float s,
                      Matrix& out) {
  ensureOut(out, Elem::Bool, a);
  CmpCtx c{op, &a, nullptr, &out, s, 0};
  exec.run(0, a.size(), kEwGrain,
           [&c](int64_t lo, int64_t hi, unsigned) { cmpRange(c, lo, hi); });
}

void ewCompareScalarI(Executor& exec, CmpOp op, const Matrix& a, int32_t s,
                      Matrix& out) {
  ensureOut(out, Elem::Bool, a);
  CmpCtx c{op, &a, nullptr, &out, 0.f, s};
  exec.run(0, a.size(), kEwGrain,
           [&c](int64_t lo, int64_t hi, unsigned) { cmpRange(c, lo, hi); });
}

// matmul lives in backend.cpp: it dispatches through the kernel backend
// registry to the tiled/packed engine (gemm.cpp) or the naive reference.

float reduceF32(Executor& exec, BinOp op, float init, const Matrix& a,
                bool simd) {
  if (a.elem() != Elem::F32)
    throw std::invalid_argument("reduceF32: f32 matrix required");
  const float ident = detail::identityOf<float>(op);
  const KernelBackend& be = activeBackend();
  unsigned nt = exec.threads();
  std::vector<float> partial(nt, ident);
  const float* d = a.f32();
  exec.run(0, a.size(), kEwGrain,
           [&](int64_t lo, int64_t hi, unsigned tid) {
    if (simd) {
      partial[tid] = be.reduceStripF32(op, d, lo, hi);
      return;
    }
    float acc = ident;
    for (int64_t i = lo; i < hi; ++i) acc = detail::applyBin(op, acc, d[i]);
    partial[tid] = acc;
  });
  float r = init;
  for (float p : partial) r = detail::applyBin(op, r, p);
  return r;
}

int32_t reduceI32(Executor& exec, BinOp op, int32_t init, const Matrix& a) {
  if (a.elem() != Elem::I32)
    throw std::invalid_argument("reduceI32: i32 matrix required");
  const KernelBackend& be = activeBackend();
  unsigned nt = exec.threads();
  std::vector<int32_t> partial(nt, detail::identityOf<int32_t>(op));
  const int32_t* d = a.i32();
  exec.run(0, a.size(), kEwGrain,
           [&](int64_t lo, int64_t hi, unsigned tid) {
    partial[tid] = be.reduceStripI32(op, d, lo, hi);
  });
  int32_t r = init;
  for (int32_t p : partial) r = detail::applyBin(op, r, p);
  return r;
}

void sumInnermost3D(Executor& exec, const Matrix& a, Matrix& out, bool simd) {
  if (a.rank() != 3 || a.elem() != Elem::F32)
    throw std::invalid_argument("sumInnermost3D: rank-3 f32 required");
  int64_t m = a.dim(0), n = a.dim(1), p = a.dim(2);
  if (out.null() || out.rank() != 2 || out.dim(0) != m || out.dim(1) != n)
    out = Matrix::zeros(Elem::F32, {m, n});
  const float* D = a.f32();
  float* O = out.f32();
  int64_t grain = kEwGrain / (p > 0 ? p : 1) + 1;
  // Stays on the shared SSE row-sum (not backend-routed): its hadd order
  // is the bit-contract every backend's reduceStripF32 emulates anyway,
  // and the fused kernel predates the registry.
  exec.run(0, m * n, grain, [&](int64_t lo, int64_t hi, unsigned) {
    for (int64_t ij = lo; ij < hi; ++ij) {
      const float* row = D + ij * p;
      float acc = 0.f;
      int64_t k = 0;
      if (simd) {
        Vec4f vacc = Vec4f::zero();
        for (; k + 4 <= p; k += 4) vacc = vacc + Vec4f::load(row + k);
        acc = vacc.hsum();
      }
      for (; k < p; ++k) acc += row[k];
      O[ij] = acc;
    }
  });
}

} // namespace mmx::rt
