#include "runtime/kernels.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "runtime/simd.hpp"

namespace mmx::rt {

namespace {

void requireSameShape(const Matrix& a, const Matrix& b, const char* what) {
  if (a.elem() != b.elem() || a.rank() != b.rank())
    throw std::invalid_argument(std::string(what) + ": kind/rank mismatch");
  for (uint32_t d = 0; d < a.rank(); ++d)
    if (a.dim(d) != b.dim(d))
      throw std::invalid_argument(std::string(what) + ": shape mismatch");
}

template <class T> T applyBin(BinOp op, T a, T b) {
  switch (op) {
    case BinOp::Add: return a + b;
    case BinOp::Sub: return a - b;
    case BinOp::Mul: return a * b;
    case BinOp::Div: return a / b;
    case BinOp::Mod:
      if constexpr (std::is_integral_v<T>) return a % b;
      else return std::fmod(a, b);
    case BinOp::Min: return a < b ? a : b;
    case BinOp::Max: return a > b ? a : b;
  }
  return T{};
}

template <class T> bool applyCmp(CmpOp op, T a, T b) {
  switch (op) {
    case CmpOp::Lt: return a < b;
    case CmpOp::Le: return a <= b;
    case CmpOp::Gt: return a > b;
    case CmpOp::Ge: return a >= b;
    case CmpOp::Eq: return a == b;
    case CmpOp::Ne: return a != b;
  }
  return false;
}

Vec4f applyBinV(BinOp op, Vec4f a, Vec4f b) {
  switch (op) {
    case BinOp::Add: return a + b;
    case BinOp::Sub: return a - b;
    case BinOp::Mul: return a * b;
    case BinOp::Div: return a / b;
    case BinOp::Min: return a.min(b);
    case BinOp::Max: return a.max(b);
    case BinOp::Mod: break; // no SSE mod; caller falls back to scalar
  }
  return Vec4f::zero();
}

Vec4i applyBinVI(BinOp op, Vec4i a, Vec4i b) {
  switch (op) {
    case BinOp::Add: return a + b;
    case BinOp::Sub: return a - b;
    case BinOp::Mul: return a * b;
    default: break; // others fall back to scalar
  }
  return Vec4i::zero();
}

bool simdSupportsF(BinOp op) { return op != BinOp::Mod; }
bool simdSupportsI(BinOp op) {
  return op == BinOp::Add || op == BinOp::Sub || op == BinOp::Mul;
}

// Generic element-wise driver: b may be null (scalar broadcast via sb).
struct EwCtx {
  BinOp op;
  const Matrix* a;
  const Matrix* b;
  Matrix* out;
  float sf;
  int32_t si;
  bool simd;
};

void ewRangeF(EwCtx& c, int64_t lo, int64_t hi) {
  const float* a = c.a->f32();
  float* o = c.out->f32();
  int64_t i = lo;
  if (c.simd && simdSupportsF(c.op)) {
    if (c.b) {
      const float* b = c.b->f32();
      for (; i + 4 <= hi; i += 4)
        applyBinV(c.op, Vec4f::load(a + i), Vec4f::load(b + i)).store(o + i);
    } else {
      Vec4f s = Vec4f::splat(c.sf);
      for (; i + 4 <= hi; i += 4)
        applyBinV(c.op, Vec4f::load(a + i), s).store(o + i);
    }
  }
  if (c.b) {
    const float* b = c.b->f32();
    for (; i < hi; ++i) o[i] = applyBin(c.op, a[i], b[i]);
  } else {
    for (; i < hi; ++i) o[i] = applyBin(c.op, a[i], c.sf);
  }
}

void ewRangeI(EwCtx& c, int64_t lo, int64_t hi) {
  const int32_t* a = c.a->i32();
  int32_t* o = c.out->i32();
  int64_t i = lo;
  if (c.simd && simdSupportsI(c.op)) {
    if (c.b) {
      const int32_t* b = c.b->i32();
      for (; i + 4 <= hi; i += 4)
        applyBinVI(c.op, Vec4i::load(a + i), Vec4i::load(b + i)).store(o + i);
    } else {
      Vec4i s = Vec4i::splat(c.si);
      for (; i + 4 <= hi; i += 4)
        applyBinVI(c.op, Vec4i::load(a + i), s).store(o + i);
    }
  }
  if (c.b) {
    const int32_t* b = c.b->i32();
    for (; i < hi; ++i) o[i] = applyBin(c.op, a[i], b[i]);
  } else {
    for (; i < hi; ++i) o[i] = applyBin(c.op, a[i], c.si);
  }
}

/// Minimum elements per parallel dispatch: below this the pool's
/// release/park round-trip costs more than the loop (bench_forkjoin), so
/// grain-aware dispatch runs the body inline on the calling thread.
constexpr int64_t kEwGrain = 4096;

void ewDispatch(Executor& exec, EwCtx& c) {
  int64_t n = c.a->size();
  exec.run(0, n, kEwGrain, [&c](int64_t lo, int64_t hi, unsigned) {
    if (c.a->elem() == Elem::F32)
      ewRangeF(c, lo, hi);
    else
      ewRangeI(c, lo, hi);
  });
}

void ensureOut(Matrix& out, Elem e, const Matrix& like) {
  if (out.null() || out.elem() != e || out.size() != like.size() ||
      out.rank() != like.rank())
    out = Matrix::zeros(e, like.dims());
}

} // namespace

void ewBinary(Executor& exec, BinOp op, const Matrix& a, const Matrix& b,
              Matrix& out, bool simd) {
  requireSameShape(a, b, "ewBinary");
  if (a.elem() == Elem::Bool)
    throw std::invalid_argument("ewBinary: arithmetic on bool matrix");
  ensureOut(out, a.elem(), a);
  EwCtx c{op, &a, &b, &out, 0.f, 0, simd};
  ewDispatch(exec, c);
}

void ewBinaryScalarF(Executor& exec, BinOp op, const Matrix& a, float s,
                     Matrix& out, bool simd) {
  if (a.elem() != Elem::F32)
    throw std::invalid_argument("ewBinaryScalarF: f32 matrix required");
  ensureOut(out, Elem::F32, a);
  EwCtx c{op, &a, nullptr, &out, s, 0, simd};
  ewDispatch(exec, c);
}

void ewBinaryScalarI(Executor& exec, BinOp op, const Matrix& a, int32_t s,
                     Matrix& out, bool simd) {
  if (a.elem() != Elem::I32)
    throw std::invalid_argument("ewBinaryScalarI: i32 matrix required");
  ensureOut(out, Elem::I32, a);
  EwCtx c{op, &a, nullptr, &out, 0.f, s, simd};
  ewDispatch(exec, c);
}

namespace {
struct CmpCtx {
  CmpOp op;
  const Matrix* a;
  const Matrix* b;
  Matrix* out;
  float sf;
  int32_t si;
};

void cmpRange(CmpCtx& c, int64_t lo, int64_t hi) {
  uint8_t* o = c.out->boolean();
  if (c.a->elem() == Elem::F32) {
    const float* a = c.a->f32();
    if (c.b) {
      const float* b = c.b->f32();
      for (int64_t i = lo; i < hi; ++i) o[i] = applyCmp(c.op, a[i], b[i]);
    } else {
      for (int64_t i = lo; i < hi; ++i) o[i] = applyCmp(c.op, a[i], c.sf);
    }
  } else {
    const int32_t* a = c.a->i32();
    if (c.b) {
      const int32_t* b = c.b->i32();
      for (int64_t i = lo; i < hi; ++i) o[i] = applyCmp(c.op, a[i], b[i]);
    } else {
      for (int64_t i = lo; i < hi; ++i) o[i] = applyCmp(c.op, a[i], c.si);
    }
  }
}
} // namespace

void ewCompare(Executor& exec, CmpOp op, const Matrix& a, const Matrix& b,
               Matrix& out) {
  requireSameShape(a, b, "ewCompare");
  ensureOut(out, Elem::Bool, a);
  CmpCtx c{op, &a, &b, &out, 0.f, 0};
  exec.run(0, a.size(), kEwGrain,
           [&c](int64_t lo, int64_t hi, unsigned) { cmpRange(c, lo, hi); });
}

void ewCompareScalarF(Executor& exec, CmpOp op, const Matrix& a, float s,
                      Matrix& out) {
  ensureOut(out, Elem::Bool, a);
  CmpCtx c{op, &a, nullptr, &out, s, 0};
  exec.run(0, a.size(), kEwGrain,
           [&c](int64_t lo, int64_t hi, unsigned) { cmpRange(c, lo, hi); });
}

void ewCompareScalarI(Executor& exec, CmpOp op, const Matrix& a, int32_t s,
                      Matrix& out) {
  ensureOut(out, Elem::Bool, a);
  CmpCtx c{op, &a, nullptr, &out, 0.f, s};
  exec.run(0, a.size(), kEwGrain,
           [&c](int64_t lo, int64_t hi, unsigned) { cmpRange(c, lo, hi); });
}

// matmul lives in gemm.cpp: the tiled/packed engine plus the naive
// reference it dispatches to for small products.

namespace {
/// Identity element so partial accumulators don't double-apply the fold's
/// base value (it must be folded in exactly once). Only the associative
/// fold operators the extension accepts are listed.
template <class T> T identityOf(BinOp op) {
  switch (op) {
    case BinOp::Add: return T{0};
    case BinOp::Mul: return T{1};
    case BinOp::Min: return std::numeric_limits<T>::max();
    case BinOp::Max: return std::numeric_limits<T>::lowest();
    default:
      throw std::invalid_argument("reduce: fold operator must be associative "
                                  "(+, *, min, max)");
  }
}
} // namespace

float reduceF32(Executor& exec, BinOp op, float init, const Matrix& a,
                bool simd) {
  if (a.elem() != Elem::F32)
    throw std::invalid_argument("reduceF32: f32 matrix required");
  const float ident = identityOf<float>(op);
  unsigned nt = exec.threads();
  std::vector<float> partial(nt, ident);
  const float* d = a.f32();
  exec.run(0, a.size(), kEwGrain,
           [&](int64_t lo, int64_t hi, unsigned tid) {
    float acc = ident;
    int64_t i = lo;
    if (simd && op == BinOp::Add) {
      Vec4f vacc = Vec4f::zero();
      for (; i + 4 <= hi; i += 4) vacc = vacc + Vec4f::load(d + i);
      acc += vacc.hsum();
    }
    for (; i < hi; ++i) acc = applyBin(op, acc, d[i]);
    partial[tid] = acc;
  });
  float r = init;
  for (float p : partial) r = applyBin(op, r, p);
  return r;
}

int32_t reduceI32(Executor& exec, BinOp op, int32_t init, const Matrix& a) {
  if (a.elem() != Elem::I32)
    throw std::invalid_argument("reduceI32: i32 matrix required");
  const int32_t ident = identityOf<int32_t>(op);
  unsigned nt = exec.threads();
  std::vector<int32_t> partial(nt, ident);
  const int32_t* d = a.i32();
  exec.run(0, a.size(), kEwGrain,
           [&](int64_t lo, int64_t hi, unsigned tid) {
    int32_t acc = ident;
    for (int64_t i = lo; i < hi; ++i) acc = applyBin(op, acc, d[i]);
    partial[tid] = acc;
  });
  int32_t r = init;
  for (int32_t p : partial) r = applyBin(op, r, p);
  return r;
}

void sumInnermost3D(Executor& exec, const Matrix& a, Matrix& out, bool simd) {
  if (a.rank() != 3 || a.elem() != Elem::F32)
    throw std::invalid_argument("sumInnermost3D: rank-3 f32 required");
  int64_t m = a.dim(0), n = a.dim(1), p = a.dim(2);
  if (out.null() || out.rank() != 2 || out.dim(0) != m || out.dim(1) != n)
    out = Matrix::zeros(Elem::F32, {m, n});
  const float* D = a.f32();
  float* O = out.f32();
  int64_t grain = kEwGrain / (p > 0 ? p : 1) + 1;
  exec.run(0, m * n, grain, [&](int64_t lo, int64_t hi, unsigned) {
    for (int64_t ij = lo; ij < hi; ++ij) {
      const float* row = D + ij * p;
      float acc = 0.f;
      int64_t k = 0;
      if (simd) {
        Vec4f vacc = Vec4f::zero();
        for (; k + 4 <= p; k += 4) vacc = vacc + Vec4f::load(row + k);
        acc = vacc.hsum();
      }
      for (; k < p; ++k) acc += row[k];
      O[ij] = acc;
    }
  });
}

} // namespace mmx::rt
