#include "analysis/liveness.hpp"

namespace mmx::analysis {

namespace {

struct LiveTransfer {
  using State = SlotSet;

  Liveness& out;

  State copy(const State& s) { return s; }
  bool join(State& a, const State& b) { return a.unionWith(b); }

  void transfer(const ir::Stmt& s, State& st) {
    // Record the live-after set before rewriting it into live-before.
    auto it = out.liveAfter.find(&s);
    if (it == out.liveAfter.end())
      out.liveAfter.emplace(&s, st);
    else
      it->second.unionWith(st);
    // Kill writes first so `x = x + 1` still reports x live-before.
    for (int32_t w : writtenSlots(s)) st.set(w, false);
    for (int32_t r : readSlots(s)) st.set(r);
  }
};

} // namespace

Liveness computeLiveness(const ir::Function& f) {
  Liveness out;
  if (!f.body) return out;
  LiveTransfer t{out};
  BackwardEngine<LiveTransfer> bwd(t);
  bwd.run(*f.body, SlotSet(f.locals.size()), SlotSet(f.locals.size()));
  return out;
}

} // namespace mmx::analysis
