// Modular well-definedness analysis for attribute grammars (paper §VI-B,
// after Kaminski & Van Wyk [SLE'12]): guarantees the *composed* attribute
// grammar has a defining equation for every attribute occurrence.
//
// Two levels:
//  - checkWellDefined: completeness of the composed AG — every synthesized
//    attribute has an equation (or default) on every production of every
//    nonterminal it occurs on, and every inherited occurrence is supplied
//    by its parent productions (or autocopy).
//  - checkModularWellDefined: additionally enforces the modular rule that
//    lets extensions compose without seeing each other: an attribute
//    introduced by extension X and occurring on a host nonterminal must
//    carry a default equation, because productions added by some other
//    extension Y can never have X-specific equations.
#pragma once

#include <string>
#include <vector>

#include "attr/engine.hpp"
#include "grammar/grammar.hpp"

namespace mmx::analysis {

struct WelldefResult {
  bool ok = false;
  std::vector<std::string> problems;
};

WelldefResult checkWellDefined(const grammar::Grammar& g,
                               const attr::Registry& reg);

WelldefResult checkModularWellDefined(const grammar::Grammar& g,
                                      const attr::Registry& reg);

} // namespace mmx::analysis
